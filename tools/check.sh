#!/usr/bin/env bash
# One-shot health check, nine tiers:
#   1. Release build: unit-test tier + unit-time toy scenarios vs goldens.
#   2. ASan+UBSan build (-DOOBP_SANITIZE=ON): unit-test tier under the
#      sanitizers (catches lifetime bugs in the event slab / callback moves).
#   3. Serve: serve-labeled ctest tier + the serve_* scenarios against their
#      goldens (BENCH_serve_*.json), which pin the headline serving claim —
#      ooo-backprop co-run tightens inference p99 at <= 2% training cost.
#   4. Perf smoke + regression gate: one `oobp bench --perf --check` pass
#      over the default perf set with the golden gate on — asserts the fast
#      path still produces the exact golden values AND that per-scenario
#      event counts match bench/perf_baseline.json (inflation hard-fails;
#      wall-clock bands are informational, Release builds only).
#   5. Fleet: fleet-labeled ctest tier (router/autoscaler unit batteries +
#      fleet_golden_test's --jobs byte-identity and validator replay) plus
#      the fleet_* scenarios against their goldens (BENCH_fleet_*.json),
#      which pin the fleet headline — the 64-replica ooo co-run holds
#      inference p99 flat (<= 10% growth) as load doubles while the
#      in-order baseline degrades (see DESIGN.md §10).
#   6. Fuzz smoke: validate-labeled ctest tier (all golden scenarios
#      replayed under the SimValidator) plus 200 seeds of the differential
#      fuzzer under ASan/UBSan at a fixed base seed, parallelised across
#      cores with --jobs 0 (the merged report is byte-identical to a serial
#      run, so failures still reproduce with
#      `oobp fuzz --seeds 1 --base-seed <seed>`; see DESIGN.md §8-9), and
#      another 200 ASan seeds restricted to the fleet fuzz family (random
#      fleets, metamorphic add-a-replica check; every second seed runs —
#      each surviving seed also re-runs its fleet sharded (sim_threads 2)
#      and diffs every serving metric against the single-threaded result).
#   7. Sharded sim under ThreadSanitizer (-DOOBP_SANITIZE_THREAD=ON):
#      sharded-labeled ctest tier (worker-pool/Chandy–Misra units plus the
#      --sim-threads byte-identity battery with perturbed scheduling) and a
#      fleet fuzz smoke, all on the TSan build — the worker pool, the
#      shared seq counter, and the channel drains must be TSan-clean. The
#      Release build then re-runs the fleet + cluster goldens and the perf
#      gate at --sim-threads 8: sharded results must match the goldens and
#      the event-count baseline byte-for-byte (counts are thread-invariant;
#      wall-clock bands stay informational, see DESIGN.md §11).
#   8. Snapshot store: `oobp snapshot build` + `verify` on the Release
#      build, then the fig07 + fleet goldens replayed from the snapshot
#      (results must stay byte-identical to the snapshot-less tiers above),
#      the store-labeled ctest tier (format roundtrip + every corruption
#      path) on the ASan build, and `snapshot startup`, which emits the
#      cold-vs-snapshot BENCH_startup.json timings (see DESIGN.md §12).
#   9. Search baseline + two-tier evaluation pipeline: search-labeled ctest
#      tier (the 200-seed searched-schedule property battery, the
#      search_gap_* golden/byte-identity tests, the analytic-evaluator
#      bit-exactness battery, and the parallel-trajectory byte-identity
#      test at threads 1/4/8), the search_gap_* scenarios replayed against
#      their goldens with and without the snapshot from tier 8 (the
#      optimality-gap metrics must be byte-identical either way), the
#      two-tier scenarios (search_deep_fig07, search_eval_fidelity,
#      search_eval_perf) against their goldens, a perf smoke of the
#      analytic evaluator gated by the perf baseline's analytic-evals count
#      and evals/sec floor, a TSan run of the parallel trajectory portfolio
#      (threads > beam-count collapse included), and 200 ASan seeds of the
#      search fuzz family (differential searched-vs-heuristic under the
#      SimValidator, beam-monotonicity metamorphic, two-tier bit-identity
#      incl. threads=3 and zero audit error; every second seed runs — see
#      DESIGN.md §13-14).
#
# Tier matrix (tier x build):
#   tier 1, 3, 4, 5 -> Release build    (speed; golden gates are exact)
#   tier 2, 6       -> ASan+UBSan build (memory-safety of slab/fluid/fuzz paths)
#   tier 7          -> TSan build       (data races in the sharded coordinator)
#   tier 8          -> Release (build/verify/replay/startup) + ASan (store
#                      tests; mmap + validation ladder under the sanitizers)
#   tier 9          -> Release (search goldens + gap-report replay) + ASan
#                      (search fuzz smoke)
#
# Usage: tools/check.sh [build-dir [asan-build-dir [tsan-build-dir]]]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-check}"
ASAN_DIR="${2:-${REPO_ROOT}/build-asan}"
TSAN_DIR="${3:-${REPO_ROOT}/build-tsan}"

# --- Tier 1: Release + unit tests + golden gate --------------------------
cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j"$(nproc)"

ctest --test-dir "${BUILD_DIR}" -L unit --output-on-failure

"${BUILD_DIR}/tools/oobp" bench --filter 'fig0[456]*' --jobs 0 \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

# --- Tier 2: ASan + UBSan unit tests -------------------------------------
cmake -S "${REPO_ROOT}" -B "${ASAN_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DOOBP_SANITIZE=ON
cmake --build "${ASAN_DIR}" -j"$(nproc)"

ctest --test-dir "${ASAN_DIR}" -L unit --output-on-failure

# --- Tier 3: serving subsystem: serve tests + serve goldens ---------------
ctest --test-dir "${BUILD_DIR}" -L serve --output-on-failure

"${BUILD_DIR}/tools/oobp" bench --filter 'serve_*' --jobs 0 \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

# --- Tier 4: perf smoke with golden gate + event-count regression gate ----
"${BUILD_DIR}/tools/oobp" bench --perf --warmup 0 --repeats 1 --jobs 0 \
    --check="${REPO_ROOT}/bench/perf_baseline.json" \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

# --- Tier 5: fleet: router/autoscaler/golden tests + fleet goldens --------
ctest --test-dir "${BUILD_DIR}" -L fleet --output-on-failure

"${BUILD_DIR}/tools/oobp" bench --filter 'fleet_*,cluster_*' --jobs 0 \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

# --- Tier 6: fuzz smoke: validator replay + 200 seeds under ASan ----------
ctest --test-dir "${BUILD_DIR}" -L validate --output-on-failure

"${ASAN_DIR}/tools/oobp" fuzz --seeds 200 --base-seed 1 --jobs 0

"${ASAN_DIR}/tools/oobp" fuzz --seeds 200 --base-seed 1 --jobs 0 \
    --checks=fleet

# --- Tier 7: sharded sim: TSan build + sharded goldens at --sim-threads 8 -
cmake -S "${REPO_ROOT}" -B "${TSAN_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DOOBP_SANITIZE_THREAD=ON
cmake --build "${TSAN_DIR}" -j"$(nproc)"

ctest --test-dir "${TSAN_DIR}" -L sharded --output-on-failure

"${TSAN_DIR}/tools/oobp" fuzz --seeds 20 --base-seed 1 --jobs 0 \
    --checks=fleet

"${BUILD_DIR}/tools/oobp" bench --filter 'fleet_*,cluster_*' --jobs 0 \
    --sim-threads 8 \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

"${BUILD_DIR}/tools/oobp" bench --perf --warmup 0 --repeats 1 --jobs 0 \
    --sim-threads 8 \
    --check="${REPO_ROOT}/bench/perf_baseline.json" \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

# --- Tier 8: snapshot store: build/verify/replay/startup + ASan store tier
SNAPSHOT="${BUILD_DIR}/oobp.snapshot"
(cd "${REPO_ROOT}" && "${BUILD_DIR}/tools/oobp" snapshot build \
    --out="${SNAPSHOT}")

"${BUILD_DIR}/tools/oobp" snapshot verify --path="${SNAPSHOT}"

"${BUILD_DIR}/tools/oobp" bench --filter 'fig07*' --jobs 0 \
    --snapshot="${SNAPSHOT}" \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

"${BUILD_DIR}/tools/oobp" bench --filter 'fleet_*' --jobs 0 \
    --snapshot="${SNAPSHOT}" --sim-threads 8 \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

ctest --test-dir "${ASAN_DIR}" -L store --output-on-failure

"${BUILD_DIR}/tools/oobp" snapshot startup --path="${SNAPSHOT}" \
    --out="${BUILD_DIR}"

# --- Tier 9: search baseline: goldens + gap-report replay + fuzz smoke ----
ctest --test-dir "${BUILD_DIR}" -L search --output-on-failure

"${BUILD_DIR}/tools/oobp" bench --filter 'search_gap_*' --jobs 0 \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

"${BUILD_DIR}/tools/oobp" bench --filter 'search_gap_*' --jobs 0 \
    --snapshot="${SNAPSHOT}" \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

# Two-tier pipeline goldens: deep-budget gap refresh, analytic-vs-simulator
# fidelity (rank corr >= 0.95, rel err <= 5%), and the eval-perf counters.
"${BUILD_DIR}/tools/oobp" bench \
    --filter 'search_deep_fig07,search_eval_fidelity,search_eval_perf' \
    --jobs 0 --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

# Analytic-evaluator perf smoke: the deterministic eval count must match
# the baseline exactly and Release throughput must clear the evals/sec
# floor (bench/perf_baseline.json, "analytic_per_sec_floor").
"${BUILD_DIR}/tools/oobp" bench --perf --warmup 0 --repeats 1 --jobs 0 \
    --filter search_eval_perf \
    --check="${REPO_ROOT}/bench/perf_baseline.json" \
    --out "${BUILD_DIR}"

# Parallel trajectory portfolio under TSan: more workers than trajectories
# exercises the pool's cap; the run only has to be race-free (scores are
# byte-identity-checked by search_threads_identity_test in the ctest tier).
"${TSAN_DIR}/tools/oobp" search --model=densenet121 --eval=two-tier \
    --beam=4 --budget=150 --seed=7 --threads=8

"${ASAN_DIR}/tools/oobp" fuzz --seeds 200 --base-seed 1 --jobs 0 \
    --checks=search

echo "check.sh: all green"
