#!/usr/bin/env bash
# One-shot health check: configure, build, run the unit-test tier, then run
# the unit-time toy scenarios against their golden files.
#
# Usage: tools/check.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j"$(nproc)"

ctest --test-dir "${BUILD_DIR}" -L unit --output-on-failure

"${BUILD_DIR}/tools/oobp" bench --filter 'fig0[456]*' --jobs 0 \
    --out "${BUILD_DIR}" --golden "${REPO_ROOT}/bench/golden"

echo "check.sh: all green"
