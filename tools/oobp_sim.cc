// oobp_sim — command-line driver for the out-of-order backprop simulator.
//
// Runs any of the training modes on any zoo model and prints throughput,
// utilization and memory; optionally exports a Chrome trace.
//
//   oobp_sim single   --model=densenet121 --batch=32 [--image=224]
//                     [--system=xla|ooo|nimble] [--gpu=v100|p100|titanxp]
//   oobp_sim dp       --model=resnet50 --batch=128 --gpus=16
//                     [--scheme=byteps|horovod] [--k=-1 (search)|0..L]
//                     [--cluster=puba|priva|privb]
//   oobp_sim pipeline --model=bert24 --batch=96 --gpus=4 --micro=4
//                     [--strategy=gpipe|dapple|pipedream|megatron|ooo1|ooo2]
//   oobp_sim hybrid   --model=bert24 --gpus=8 --replicas=2 [--k=0]
//   oobp_sim replay   --model=densenet121 --schedule=<file>
//   oobp_sim search   --model=densenet121 --batch=32 [--gpu=v100|p100|titanxp]
//                     [--beam=N] [--seed=N] [--budget=N] [--snapshot[=<path>]]
//                     [--eval=exact|two-tier] [--audit-interval=N]
//                     [--threads=N | --sim-threads=N]
//                     [--export-schedule=<file>]
//                     (search-based scheduler baseline, see src/search;
//                     prints the heuristic-vs-searched optimality gap and
//                     machine-verifies every schedule with
//                     CheckIterationSchedule. --eval=two-tier scores
//                     candidates with the incremental analytic evaluator
//                     and defaults the budget to 4000; --threads runs the
//                     trajectory portfolio on a worker pool, byte-identical
//                     for any N)
//   oobp_sim bench    [--list] [--filter=<glob>] [--jobs=N] [--out=<dir>]
//                     [--golden[=<dir>]] [--perf] [--check[=<baseline>]]
//                     [--param k=v]  (see src/runner; --check gates perf
//                     event counts against bench/perf_baseline.json)
//   oobp_sim fuzz     [--seeds=N] [--base-seed=N] [--jobs=N] [--checks=<glob>]
//                     [--no-serve] [--snapshot[=<path>]] [--verbose]
//                     (seeded differential fuzzer, see src/validate; --jobs=0
//                     uses all cores, report is byte-identical to --jobs=1)
//   oobp_sim snapshot <build|info|verify|startup> [--flags]
//                     (binary snapshot of the model zoo, cost models,
//                     precomputed schedules, goldens, and perf baseline;
//                     see src/runner/snapshot_build.h and src/store)
//
// Common flags: --trace=<path.json> exports the execution timeline;
// `single --system=ooo --export-schedule=<file>` saves the computed
// schedule in the artifact text format for later replay.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/core/corun_profiler.h"
#include "src/core/joint_scheduler.h"
#include "src/core/k_search.h"
#include "src/core/region.h"
#include "src/core/reverse_k.h"
#include "src/core/schedule_io.h"
#include "src/nn/model_zoo.h"
#include "src/runner/runner.h"
#include "src/runner/snapshot_build.h"
#include "src/runtime/data_parallel_engine.h"
#include "src/runtime/hybrid_engine.h"
#include "src/runtime/pipeline_engine.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/search/evaluator.h"
#include "src/search/search.h"
#include "src/store/snapshot.h"
#include "src/validate/fuzzer.h"
#include "src/validate/schedule_checker.h"

namespace oobp {
namespace {

// Minimal --key=value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        continue;
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }
  std::string Get(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  int GetInt(const std::string& key, int def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atoi(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

NnModel MakeModel(const std::string& name, int batch, int image) {
  if (name == "resnet50") {
    return ResNet(50, batch, image);
  }
  if (name == "resnet101") {
    return ResNet(101, batch, image);
  }
  if (name == "resnet152") {
    return ResNet(152, batch, image);
  }
  if (name == "densenet121") {
    return DenseNet(121, 32, batch, image);
  }
  if (name == "densenet121-k12") {
    return DenseNet(121, 12, batch, image);
  }
  if (name == "densenet169") {
    return DenseNet(169, 32, batch, image);
  }
  if (name == "mobilenet") {
    return MobileNetV3Large(1.0, batch, image);
  }
  if (name == "mobilenet-a025") {
    return MobileNetV3Large(0.25, batch, image);
  }
  if (name == "bert12") {
    return Bert(12, batch);
  }
  if (name == "bert24") {
    return Bert(24, batch);
  }
  if (name == "bert48") {
    return Bert(48, batch);
  }
  if (name == "gpt3") {
    return Gpt3Medium(batch);
  }
  if (name == "rnn") {
    return RnnModel(16, batch);
  }
  if (name == "ffnn") {
    return Ffnn(16, batch);
  }
  std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
  std::exit(2);
}

GpuSpec MakeGpu(const std::string& name) {
  if (name == "p100") {
    return GpuSpec::P100();
  }
  if (name == "titanxp") {
    return GpuSpec::TitanXp();
  }
  return GpuSpec::V100();
}

ClusterSpec MakeCluster(const std::string& name) {
  if (name == "priva") {
    return ClusterSpec::PrivA();
  }
  if (name == "privb") {
    return ClusterSpec::PrivB();
  }
  if (name == "pubb") {
    return ClusterSpec::PubB();
  }
  return ClusterSpec::PubA();
}

void PrintMetrics(const TrainMetrics& m) {
  std::printf("throughput:    %.1f samples/s\n", m.throughput);
  std::printf("iteration:     %.2f ms\n", ToMs(m.iteration_time));
  std::printf("utilization:   %.1f%%\n", 100.0 * m.gpu_utilization);
  std::printf("peak memory:   %.0f MB%s\n", m.peak_memory_bytes / 1e6,
              m.oom ? "  ** OUT OF MEMORY **" : "");
  if (m.comm_comp_ratio > 0) {
    std::printf("comm/compute:  %.2f\n", m.comm_comp_ratio);
  }
}

void MaybeWriteTrace(const TraceRecorder& trace, const Flags& flags) {
  const std::string path = flags.Get("trace", "");
  if (path.empty()) {
    return;
  }
  std::map<int, std::string> tracks;
  for (const TraceEvent& ev : trace.events()) {
    if (tracks.find(ev.track) == tracks.end()) {
      tracks[ev.track] = "track " + std::to_string(ev.track);
    }
  }
  tracks[0] = "main stream / GPU0";
  if (trace.WriteChromeJson(path, tracks)) {
    std::printf("trace written to %s\n", path.c_str());
  }
}

int RunSingle(const Flags& flags) {
  const NnModel model = MakeModel(flags.Get("model", "densenet121"),
                                  flags.GetInt("batch", 32),
                                  flags.GetInt("image", 224));
  const TrainGraph graph(&model);
  const GpuSpec gpu = MakeGpu(flags.Get("gpu", "v100"));
  const std::string system = flags.Get("system", "ooo");

  SingleGpuConfig config;
  config.gpu = gpu;
  config.profile = system == "nimble" ? SystemProfile::PyTorchNimble()
                                      : SystemProfile::TensorFlowXla();
  config.precompiled_issue = system != "xla";

  TraceRecorder trace;
  TrainMetrics metrics;
  if (system == "ooo") {
    const JointScheduleResult sched = MakeOooSchedule(graph, gpu, config.profile);
    const std::string export_path = flags.Get("export-schedule", "");
    if (!export_path.empty() &&
        WriteScheduleFile(export_path, sched.schedule, model.name,
                          model.num_layers())) {
      std::printf("schedule written to %s\n", export_path.c_str());
    }
    metrics = SingleGpuEngine(config).Run(model, sched.schedule, &trace);
  } else {
    metrics =
        SingleGpuEngine(config).Run(model, ConventionalIteration(graph), &trace);
  }
  std::printf("single-GPU %s on %s, %s\n", model.name.c_str(),
              gpu.name.c_str(), system.c_str());
  PrintMetrics(metrics);
  MaybeWriteTrace(trace, flags);
  return 0;
}

int RunReplay(const Flags& flags) {
  const NnModel model = MakeModel(flags.Get("model", "densenet121"),
                                  flags.GetInt("batch", 32),
                                  flags.GetInt("image", 224));
  const auto sched =
      ReadScheduleFile(flags.Get("schedule", ""), model.num_layers());
  if (!sched.has_value()) {
    std::fprintf(stderr, "cannot read --schedule file (or layer mismatch)\n");
    return 2;
  }
  SingleGpuConfig config;
  config.gpu = MakeGpu(flags.Get("gpu", "v100"));
  config.profile = SystemProfile::TensorFlowXla();
  config.precompiled_issue = true;
  TraceRecorder trace;
  const TrainMetrics metrics = SingleGpuEngine(config).Run(model, *sched, &trace);
  std::printf("replayed schedule for %s\n", model.name.c_str());
  PrintMetrics(metrics);
  MaybeWriteTrace(trace, flags);
  return 0;
}

int RunDataParallel(const Flags& flags) {
  const NnModel model = MakeModel(flags.Get("model", "resnet50"),
                                  flags.GetInt("batch", 128),
                                  flags.GetInt("image", 224));
  const TrainGraph graph(&model);

  DataParallelConfig config;
  config.cluster = MakeCluster(flags.Get("cluster", "puba"));
  config.num_gpus = flags.GetInt("gpus", 16);
  config.scheme = flags.Get("scheme", "byteps") == "horovod"
                      ? CommScheme::kHorovod
                      : CommScheme::kBytePS;
  const DataParallelEngine engine(config);

  int k = flags.GetInt("k", -1);
  if (k < 0) {
    const KSearchResult search = SearchBestK(model.num_layers(), [&](int kk) {
      return engine.Run(model, ReverseFirstK(graph, kk).order).throughput;
    });
    k = search.best_k;
    std::printf("k search: best k = %d (%zu probes)\n", k,
                search.evaluations.size());
  }
  TraceRecorder trace;
  const TrainMetrics metrics =
      engine.Run(model, ReverseFirstK(graph, k).order, &trace);
  std::printf("data-parallel %s on %d x %s (%s), k=%d\n", model.name.c_str(),
              config.num_gpus, config.cluster.gpu.name.c_str(),
              config.cluster.name.c_str(), k);
  PrintMetrics(metrics);
  MaybeWriteTrace(trace, flags);
  return 0;
}

PipelineStrategy ParseStrategy(const std::string& s) {
  if (s == "gpipe") {
    return PipelineStrategy::kGPipe;
  }
  if (s == "dapple") {
    return PipelineStrategy::kDapple;
  }
  if (s == "pipedream") {
    return PipelineStrategy::kPipeDream;
  }
  if (s == "megatron") {
    return PipelineStrategy::kMegatron;
  }
  if (s == "megatron-ff") {
    return PipelineStrategy::kMegatronFF;
  }
  if (s == "ooo1") {
    return PipelineStrategy::kOooPipe1;
  }
  return PipelineStrategy::kOooPipe2;
}

int RunPipeline(const Flags& flags) {
  const int micro_batches = flags.GetInt("micro", 4);
  const int batch = flags.GetInt("batch", 96);
  const NnModel micro = MakeModel(flags.Get("model", "bert24"),
                                  std::max(1, batch / micro_batches),
                                  flags.GetInt("image", 224));
  PipelineConfig config;
  config.cluster = MakeCluster(flags.Get("cluster", "pubb"));
  config.num_gpus = flags.GetInt("gpus", 4);
  config.num_micro_batches = micro_batches;
  config.modulo_group_size = flags.GetInt("group", 1);
  config.reverse_first_k = flags.GetInt("k", 0);

  const PipelineStrategy strategy =
      ParseStrategy(flags.Get("strategy", "ooo2"));
  TraceRecorder trace;
  const PipelineResult r =
      PipelineEngine(config).Run(micro, strategy, &trace);
  std::printf("pipeline %s: %s on %d GPUs, %d micro-batches\n",
              PipelineStrategyName(strategy), micro.name.c_str(),
              config.num_gpus, micro_batches);
  PrintMetrics(r.metrics);
  if (r.weight_versions > 1) {
    std::printf("weight versions (staleness): %d\n", r.weight_versions);
  }
  MaybeWriteTrace(trace, flags);
  return 0;
}

int RunHybrid(const Flags& flags) {
  const NnModel micro =
      MakeModel(flags.Get("model", "bert24"), flags.GetInt("batch", 16),
                flags.GetInt("image", 224));
  HybridConfig config;
  config.pipeline.cluster = MakeCluster(flags.Get("cluster", "pubb"));
  config.pipeline.num_gpus = flags.GetInt("gpus", 8);
  config.pipeline.num_micro_batches =
      flags.GetInt("micro", config.pipeline.num_gpus);
  config.pipeline.reverse_first_k = flags.GetInt("k", 0);
  config.dp_groups = flags.GetInt("replicas", 2);

  const PipelineStrategy strategy =
      ParseStrategy(flags.Get("strategy", "ooo2"));
  const HybridResult r = HybridEngine(config).Run(micro, strategy);
  std::printf("hybrid %s: %s, %d-stage pipe x %d replicas (%d GPUs)\n",
              PipelineStrategyName(strategy), micro.name.c_str(),
              config.pipeline.num_gpus, config.dp_groups, r.total_gpus);
  PrintMetrics(r.metrics);
  std::printf("pipeline makespan: %.2f ms, exposed sync: %.2f ms\n",
              ToMs(r.pipeline_makespan), ToMs(r.exposed_sync));
  return 0;
}

int RunSearch(const Flags& flags) {
  const NnModel model = MakeModel(flags.Get("model", "densenet121"),
                                  flags.GetInt("batch", 32),
                                  flags.GetInt("image", 224));
  const TrainGraph graph(&model);
  const GpuSpec gpu = MakeGpu(flags.Get("gpu", "v100"));
  const SystemProfile profile = SystemProfile::TensorFlowXla();

  const std::string snapshot = flags.Get("snapshot", "");
  if (!snapshot.empty()) {
    // Like `fuzz --snapshot`: skip the registry check (this mode registers
    // no scenarios); a stored search result with a matching content key is
    // reused, everything else is computed in-process.
    const std::string path = snapshot == "1" ? kDefaultSnapshotPath : snapshot;
    std::string error;
    if (ActivateSnapshot(path, /*expected_registry_hash=*/0,
                         /*check_registry=*/false,
                         &error) == SnapshotActivation::kError) {
      std::fprintf(stderr, "search: snapshot: %s\n", error.c_str());
      return 2;
    }
  }

  SearchOptions options;
  options.beam = flags.GetInt("beam", 4);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.budget = flags.GetInt("budget", 400);
  // --threads (alias --sim-threads, matching the bench runner) parallelizes
  // the trajectory portfolio; results are byte-identical for any value.
  options.threads =
      std::max(1, flags.GetInt("threads", flags.GetInt("sim-threads", 1)));
  const std::string eval_mode = flags.Get("eval", "exact");
  if (eval_mode == "two-tier") {
    options.eval_mode = SearchEvalMode::kTwoTier;
    options.budget = flags.GetInt("budget", 4000);
  } else if (eval_mode != "exact") {
    std::fprintf(stderr, "search: unknown --eval=%s (exact|two-tier)\n",
                 eval_mode.c_str());
    return 2;
  }
  options.audit_interval = flags.GetInt("audit-interval", 256);

  ScheduleEvaluator eval(&model, gpu, profile);
  const TimeNs conventional_time =
      eval.IterationTime(ConventionalIteration(graph));
  const JointScheduleResult ooo = SnapshotOooSchedule(graph, gpu, profile);
  const TimeNs ooo_time = eval.IterationTime(ooo.schedule);
  const JointScheduleResult searched =
      SnapshotSearchSchedule(graph, gpu, profile, options);
  const TimeNs search_time = eval.IterationTime(searched.schedule);

  // Machine-verify both schedules; a violation is a hard failure.
  const std::pair<const char*, const IterationSchedule*> checked[] = {
      {"ooo", &ooo.schedule}, {"searched", &searched.schedule}};
  for (const auto& [label, schedule] : checked) {
    const ScheduleCheckReport report = CheckIterationSchedule(graph, *schedule);
    if (!report.ok()) {
      std::fprintf(stderr, "search: %s schedule failed verification:\n%s\n",
                   label, report.ToString().c_str());
      return 1;
    }
  }

  std::printf("schedule search: %s on %s (beam=%d seed=%d budget=%d "
              "eval=%s)\n",
              model.name.c_str(), gpu.name.c_str(), options.beam,
              static_cast<int>(options.seed), options.budget,
              eval_mode.c_str());
  std::printf("conventional:  %.3f ms/iter\n", ToMs(conventional_time));
  std::printf("ooo heuristic: %.3f ms/iter  (%.3fx)\n", ToMs(ooo_time),
              static_cast<double>(conventional_time) / ooo_time);
  std::printf("searched:      %.3f ms/iter  (%.3fx)\n", ToMs(search_time),
              static_cast<double>(conventional_time) / search_time);
  std::printf("optimality gap: %.2f%% (heuristic above searched best)\n",
              100.0 * (static_cast<double>(ooo_time) - search_time) /
                  static_cast<double>(search_time));
  std::printf("peak memory:   %.0f MB (searched), %.0f MB (ooo)\n",
              searched.peak_memory / 1e6, ooo.peak_memory / 1e6);
  std::printf("schedules verified: CheckIterationSchedule ok\n");

  const std::string export_path = flags.Get("export-schedule", "");
  if (!export_path.empty() &&
      WriteScheduleFile(export_path, searched.schedule, model.name,
                        model.num_layers())) {
    std::printf("schedule written to %s\n", export_path.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: oobp_sim <mode> [--flags]\n"
      "\n"
      "modes:\n"
      "  single    one training iteration of a zoo model on one GPU under\n"
      "            the xla / ooo / nimble execution systems\n"
      "  dp        data-parallel training across N GPUs (byteps / horovod\n"
      "            gradient sync, reverse-k search)\n"
      "  pipeline  pipeline-parallel training (gpipe / dapple / pipedream /\n"
      "            megatron / ooo1 / ooo2 schedules)\n"
      "  hybrid    pipeline stages replicated into data-parallel groups\n"
      "  replay    re-run an exported schedule artifact against the\n"
      "            simulator and diff the timings\n"
      "  search    seeded beam/local-search scheduler baseline over op\n"
      "            orderings and stream assignments; reports the\n"
      "            MakeOooSchedule-vs-searched optimality gap\n"
      "  bench     scenario runner: paper figures, serving, sweeps, fleet,\n"
      "            cluster; golden comparison and the perf harness\n"
      "            (`bench --help` lists its flags)\n"
      "  fuzz      seeded differential fuzzer over schedules, memory,\n"
      "            training, DAG, link, serving, and fleet checkers\n"
      "            (`fuzz --help` lists its flags)\n"
      "  snapshot  build / info / verify / startup for the binary snapshot\n"
      "            of models, cost points, precomputed schedules, goldens,\n"
      "            and the perf baseline (`snapshot --help` for details)\n"
      "\n"
      "see the header comment of tools/oobp_sim.cc for per-mode flags\n");
  return 2;
}

}  // namespace
}  // namespace oobp

int main(int argc, char** argv) {
  if (argc < 2) {
    return oobp::Usage();
  }
  const std::string mode = argv[1];
  const oobp::Flags flags(argc, argv);
  if (mode == "single") {
    return oobp::RunSingle(flags);
  }
  if (mode == "dp") {
    return oobp::RunDataParallel(flags);
  }
  if (mode == "pipeline") {
    return oobp::RunPipeline(flags);
  }
  if (mode == "hybrid") {
    return oobp::RunHybrid(flags);
  }
  if (mode == "replay") {
    return oobp::RunReplay(flags);
  }
  if (mode == "search") {
    return oobp::RunSearch(flags);
  }
  if (mode == "bench") {
    return oobp::BenchMain(argc, argv);
  }
  if (mode == "fuzz") {
    return oobp::FuzzMain(argc, argv);
  }
  if (mode == "snapshot") {
    return oobp::SnapshotMain(argc, argv);
  }
  return oobp::Usage();
}
