#!/usr/bin/env bash
# Wall-clock perf harness for the simulator core: Release build, then
# `oobp bench --perf` over the default perf set — fig07/fig10 training,
# serve_*, the fig13/ana_* sweeps, and the steady_* replay scenarios
# (override with --filter). Emits <build-dir>/BENCH_sim_perf.json; the
# report's "host" object records hardware_concurrency, compiler, and build
# type so numbers from different machines aren't compared blindly. See
# src/runner/perf.h for the schema and DESIGN.md §6/§9 for how to read the
# numbers. Pass --check to gate event counts against bench/perf_baseline.json.
#
# Usage: tools/perf.sh [build-dir] [extra `oobp bench` flags...]
#   tools/perf.sh                        # default perf set, 1 warmup, 3 repeats
#   tools/perf.sh build-perf --filter='fig10_*' --repeats=5
#   tools/perf.sh build-perf --check     # also run the perf regression gate
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build-perf"
if [[ $# -gt 0 && $1 != --* ]]; then
  BUILD_DIR="$1"
  shift
fi

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target oobp

"${BUILD_DIR}/tools/oobp" bench --perf --out "${BUILD_DIR}" "$@"
echo "perf.sh: wrote ${BUILD_DIR}/BENCH_sim_perf.json"
