#!/usr/bin/env bash
# Wall-clock perf harness for the simulator core: Release build, then
# `oobp bench --perf` over the fig07 scenarios (override with --filter).
# Emits <build-dir>/BENCH_sim_perf.json; see src/runner/perf.h for the
# schema and DESIGN.md §6 for how to read the numbers.
#
# Usage: tools/perf.sh [build-dir] [extra `oobp bench` flags...]
#   tools/perf.sh                        # fig07 scenarios, 1 warmup, 3 repeats
#   tools/perf.sh build-perf --filter='fig10_*' --repeats=5
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build-perf"
if [[ $# -gt 0 && $1 != --* ]]; then
  BUILD_DIR="$1"
  shift
fi

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target oobp

"${BUILD_DIR}/tools/oobp" bench --perf --out "${BUILD_DIR}" "$@"
echo "perf.sh: wrote ${BUILD_DIR}/BENCH_sim_perf.json"
