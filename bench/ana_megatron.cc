// Section 8.4.2 / Section 9: comparison against Megatron-2's interleaved
// pipeline schedule for BERT-48 pre-training.
//
// Paper: OOO-Pipe2 is 13.6-29.2% faster than Megatron 2 on 8/16/24 GPUs;
// grafting gradient fast-forwarding alone onto Megatron improves it by
// 20.4% on average (max 27.5%) — evidence that interleaved placement
// without ooo backprop "has very limited performance impact because of the
// increased communication overhead". Megatron also cannot run BERT-48 on
// 32 GPUs (48 transformers not divisible), which our chunked assignment
// reproduces as an imbalanced schedule.

#include "bench/bench_common.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/pipeline_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Analysis (Sec 8.4.2)", "Megatron-2 interleaved vs OOO-Pipe2");

  Table table({"GPUs", "GPipe", "Megatron2", "Megatron+FF", "OOO-Pipe2",
               "OOO/Mega", "FF gain"});
  std::vector<double> ff_gains, ooo_vs_mega;
  for (const int gpus : {8, 16, 24}) {
    const int micro_batches = gpus;
    NnModel micro = Bert(48, std::max(1, 512 / micro_batches));
    // Pre-training: embedding/LM-head GEMMs are tensor-parallel (see
    // fig13); quarter the head cost for every system equally.
    Layer& head = micro.layers.back();
    head.fwd_flops /= 4;
    head.dgrad_flops /= 4;
    head.wgrad_flops /= 4;
    head.fwd_bytes /= 4;
    head.dgrad_bytes /= 4;
    head.wgrad_bytes /= 4;
    head.stash_bytes /= 4;

    PipelineConfig config;
    config.cluster = ClusterSpec::PubB(5);
    config.num_gpus = gpus;
    config.num_micro_batches = micro_batches;
    const PipelineEngine engine(config);

    const double gpipe =
        engine.Run(micro, PipelineStrategy::kGPipe).metrics.throughput;
    const double mega =
        engine.Run(micro, PipelineStrategy::kMegatron).metrics.throughput;
    const double mega_ff =
        engine.Run(micro, PipelineStrategy::kMegatronFF).metrics.throughput;
    const double ooo =
        engine.Run(micro, PipelineStrategy::kOooPipe2).metrics.throughput;
    table.Row({StrFormat("%d", gpus), StrFormat("%.0f", gpipe),
               StrFormat("%.0f", mega), StrFormat("%.0f", mega_ff),
               StrFormat("%.0f", ooo), StrFormat("%.2fx", ooo / mega),
               StrFormat("%.2fx", mega_ff / mega)});
    ff_gains.push_back(mega_ff / mega);
    ooo_vs_mega.push_back(ooo / mega);
  }

  double ff_avg = 0, ooo_max = 0;
  for (size_t i = 0; i < ff_gains.size(); ++i) {
    ff_avg += ff_gains[i] / ff_gains.size();
    ooo_max = std::max(ooo_max, ooo_vs_mega[i]);
  }
  std::printf("\n");
  ShapeCheck("fast-forwarding on Megatron, avg gain (paper 1.204)", 1.204,
             ff_avg);
  ShapeCheck("OOO-Pipe2 vs Megatron, max (paper 1.292)", 1.292, ooo_max);
  return 0;
}
