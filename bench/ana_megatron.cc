// Section 8.4.2: Megatron-2 interleaved schedules vs OOO-Pipe2 on BERT-48
// pre-training. The sweep lives in src/runner/sweep_scenarios.cc as the
// "ana_megatron" scenario (models shared via src/nn/model_cache.h); this
// binary runs it serially.

#include "src/runner/runner.h"

int main() { return oobp::RunStandaloneBench("ana_megatron"); }
