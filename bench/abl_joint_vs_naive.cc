// Ablation: multi-region joint scheduling (Algorithm 1) vs the "pragmatic"
// naive sub-stream variant that moves weight gradients to the sub stream in
// conventional order without reordering. Section 8.2: for DenseNet-121 the
// naive variant reaches 1.39x over XLA while the full scheduler reaches
// 1.54x (k=12, batch=32).

#include "bench/bench_common.h"
#include "src/core/corun_profiler.h"
#include "src/core/joint_scheduler.h"
#include "src/core/region.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/single_gpu_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Ablation", "joint scheduling vs naive sub-stream");

  Table table({"model", "XLA", "naive", "joint", "naive/XLA", "joint/XLA"});
  double dn_naive = 0, dn_joint = 0;
  struct Case {
    const char* label;
    NnModel model;
  };
  for (Case c : {Case{"DenseNet121-k12/b32", DenseNet(121, 12, 32, 32)},
                 Case{"DenseNet121-k32/b32", DenseNet(121, 32, 32, 32)},
                 Case{"MobileNet-a0.25/b32", MobileNetV3Large(0.25, 32)}}) {
    const TrainGraph graph(&c.model);
    const GpuSpec gpu = GpuSpec::V100();
    const SystemProfile xla = SystemProfile::TensorFlowXla();

    const double base = SingleGpuEngine({gpu, xla, false})
                            .Run(c.model, ConventionalIteration(graph))
                            .throughput;
    const double naive = SingleGpuEngine({gpu, xla, true})
                             .Run(c.model, NaiveSubStreamIteration(graph))
                             .throughput;
    const CostModel cost(gpu, xla);
    const CorunProfiler profiler(graph, cost, BuildRegions(graph));
    const JointScheduleResult sched = MultiRegionJointSchedule(graph, profiler);
    const double joint = SingleGpuEngine({gpu, xla, true})
                             .Run(c.model, sched.schedule)
                             .throughput;
    table.Row({c.label, StrFormat("%.0f", base), StrFormat("%.0f", naive),
               StrFormat("%.0f", joint), StrFormat("%.2fx", naive / base),
               StrFormat("%.2fx", joint / base)});
    if (std::string(c.label).find("k12") != std::string::npos) {
      dn_naive = naive / base;
      dn_joint = joint / base;
    }
  }

  ShapeCheck("naive sub-stream gain, DenseNet k12 (paper 1.39)", 1.39, dn_naive);
  ShapeCheck("joint scheduling gain, DenseNet k12 (paper 1.54)", 1.54, dn_joint);
  ShapeCheck("joint >= naive (reordering adds value)", 1.0,
             dn_joint >= dn_naive * 0.999 ? 1.0 : 0.0);
  return 0;
}
