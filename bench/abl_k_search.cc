// Ablation: the concave Δk-halving search vs an exhaustive k sweep for
// reverse first-k scheduling (Section 5.1: "the above heuristic search can
// efficiently find the optimal k"). Reports search quality (fraction of the
// exhaustive optimum reached) and probe counts.

#include "bench/bench_common.h"
#include "src/core/k_search.h"
#include "src/core/reverse_k.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/data_parallel_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Ablation", "concave k search vs exhaustive sweep");

  Table table({"model", "GPUs", "L", "probes", "k*", "k(exh)", "quality"});
  double worst_quality = 1.0;
  struct Case {
    const char* label;
    NnModel model;
    int gpus;
  };
  for (Case c : {Case{"ResNet-50", ResNet(50, 128), 16},
                 Case{"ResNet-101", ResNet(101, 96), 16},
                 Case{"ResNet-50", ResNet(50, 128), 32}}) {
    const TrainGraph graph(&c.model);
    DataParallelConfig config;
    config.cluster = ClusterSpec::PubA();
    config.num_gpus = c.gpus;
    config.measured_iterations = 2;
    const DataParallelEngine engine(config);

    auto throughput = [&](int k) {
      return engine.Run(c.model, ReverseFirstK(graph, k).order).throughput;
    };
    const KSearchResult search = SearchBestK(c.model.num_layers(), throughput);

    // Exhaustive sweep at stride 1 over all k.
    double exhaustive_best = 0;
    int exhaustive_k = 0;
    for (int k = 0; k <= c.model.num_layers(); ++k) {
      const double t = throughput(k);
      if (t > exhaustive_best) {
        exhaustive_best = t;
        exhaustive_k = k;
      }
    }
    const double quality = search.best_throughput / exhaustive_best;
    worst_quality = std::min(worst_quality, quality);
    table.Row({c.label, StrFormat("%d", c.gpus),
               StrFormat("%d", c.model.num_layers()),
               StrFormat("%zu", search.evaluations.size()),
               StrFormat("%d", search.best_k), StrFormat("%d", exhaustive_k),
               StrFormat("%.3f", quality)});
  }

  ShapeCheck("search reaches >=99% of exhaustive optimum", 0.99, worst_quality);
  return 0;
}
