// Figure 8: the multi-region joint schedule for DenseNet-121 — scheduling
// regions R1..Rn over the main stream (S1: dO + forward) and where each
// DenseBlock's weight gradients land on the sub stream (S2). The paper's
// schedule delays DenseBlock-4's weight gradients into the *forward*
// computation of DenseBlock-1 of the next iteration.

#include <map>

#include "bench/bench_common.h"
#include "src/core/corun_profiler.h"
#include "src/core/joint_scheduler.h"
#include "src/core/region.h"
#include "src/nn/model_zoo.h"

int main() {
  using namespace oobp;
  BenchHeader("Figure 8", "DenseNet-121 region/stream schedule");

  const NnModel model = DenseNet(121, 32, 32, /*image=*/224);
  const TrainGraph graph(&model);
  const CostModel cost(GpuSpec::V100(), SystemProfile::TensorFlowXla());
  const CorunProfiler profiler(graph, cost, BuildRegions(graph));

  const MemoryTimeline conv_mem =
      EstimateBackpropMemory(model, ConventionalIteration(graph).MergedOrder());

  auto summarize = [&](const char* title, const JointScheduleResult& result,
                       int* delayed_out) {
    std::printf("\n%s\n", title);
    std::map<int, std::map<std::string, int>> region_sources;
    int delayed_into_forward = 0;
    for (size_t i = 0; i < result.assigned_ops.size(); ++i) {
      const int layer = result.assigned_ops[i].layer;
      const int region = result.assigned_region[i];
      ++region_sources[region][model.layers[layer].block];
      if (profiler.region(region).kind == Region::Kind::kForward) {
        ++delayed_into_forward;
      }
    }
    Table table({"region", "kind", "main ops", "T_main(ms)", "dW placed"});
    for (int r = 0; r < profiler.num_regions(); ++r) {
      const Region& region = profiler.region(r);
      std::string placed;
      for (const auto& [block, count] : region_sources[r]) {
        placed += StrFormat("%s:%d ", block.c_str(), count);
      }
      if (placed.empty()) {
        placed = "-";
      }
      table.Row({region.name,
                 region.kind == Region::Kind::kBackward ? "bwd" : "fwd",
                 StrFormat("%zu", region.main_ops.size()),
                 StrFormat("%.2f", ToMs(profiler.MainDuration(r))), placed});
    }
    std::printf("pre-scheduled regions: %d, dW in forward regions: %d, "
                "activation peak %.0f MB (conv %.0f MB)\n",
                result.pre_scheduled_regions, delayed_into_forward,
                result.peak_memory / 1e6, conv_mem.peak / 1e6);
    if (delayed_out != nullptr) {
      *delayed_out = delayed_into_forward;
    }
  };

  // Unconstrained: the list scheduler freely delays weight gradients past
  // the backward pass (the paper's Figure 8 structure).
  int delayed_unconstrained = 0;
  const JointScheduleResult unconstrained =
      MultiRegionJointSchedule(graph, profiler, {});
  summarize("-- unconstrained schedule --", unconstrained,
            &delayed_unconstrained);

  // With the paper's 1.1x memory cap the fallback pre-schedules leading
  // backward regions until the peak fits.
  JointScheduleOptions opts;
  opts.memory_cap_bytes = static_cast<int64_t>(1.1 * conv_mem.peak);
  const JointScheduleResult capped =
      MultiRegionJointSchedule(graph, profiler, opts);
  summarize("-- with 1.1x memory cap --", capped, nullptr);

  ShapeCheck("unconstrained: dW delayed past backprop (paper: DB4 -> fwd)",
             1.0, delayed_unconstrained > 0 ? 1.0 : 0.0);
  ShapeCheck("capped: peak within 1.1x of conventional", 1.1,
             static_cast<double>(capped.peak_memory) / conv_mem.peak);
  return 0;
}
