// Figure 13: scalability of pipeline-parallel pre-training on the Pub-B
// cluster (8x V100 per node, NVLink + 25GbE).
//
// (a) Weak scaling: BERT-12 on 8 GPUs, BERT-24 on 16, BERT-48 on 32 —
//     GPipe vs PipeDream vs OOO-Pipe2. Paper: OOO-Pipe2 is 1.73x GPipe at
//     8 GPUs and 41-45% faster at 16-32; 14-25% over PipeDream, whose best
//     configuration stashes up to 32 weight versions.
// (b) Strong scaling: BERT-24/48 from 8 to 32 GPUs (throughput ~2.5x for
//     4x GPUs); GPT-3 Medium on 12-36 GPUs, where 4 extra GPUs serve the
//     output-embedding layer (modeled by scaling that layer's cost by 1/4)
//     and scaling is limited because 24 decoders do not divide evenly.

#include <functional>
#include <map>

#include "bench/bench_common.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/pipeline_engine.h"

namespace {

using namespace oobp;

PipelineEngine MakeEngine(int gpus, int micro_batches) {
  PipelineConfig config;
  config.cluster = ClusterSpec::PubB(5);
  config.num_gpus = gpus;
  config.num_micro_batches = micro_batches;
  return PipelineEngine(config);
}

// Pre-training runs shard the input/output embedding GEMMs across a
// tensor-parallel group (Megatron-style; the paper dedicates 4 GPUs to
// GPT-3's embedding). Model that by quartering the head layer's cost —
// applied to every system equally.
NnModel WithShardedHead(NnModel model) {
  Layer& head = model.layers.back();
  head.fwd_flops /= 4;
  head.dgrad_flops /= 4;
  head.wgrad_flops /= 4;
  head.fwd_bytes /= 4;
  head.dgrad_bytes /= 4;
  head.wgrad_bytes /= 4;
  head.fwd_blocks /= 4;
  head.stash_bytes /= 4;
  return model;
}

}  // namespace

int main() {
  using namespace oobp;
  BenchHeader("Figure 13(a)", "weak scaling: BERT-{12,24,48} on 8/16/32 V100");

  struct WeakPoint {
    int gpus;
    int bert;
    int global_batch;
  };
  const std::vector<WeakPoint> weak = {{8, 12, 512}, {16, 24, 768},
                                       {32, 48, 1024}};
  std::vector<double> ooo_vs_gpipe, ooo_vs_pd;
  Table table_a({"GPUs", "model", "GPipe", "PipeDream", "OOO-Pipe2",
                 "vs GPipe", "vs PD"});
  for (const WeakPoint& p : weak) {
    const int micro_batches = p.gpus;
    const NnModel micro = WithShardedHead(
        Bert(p.bert, std::max(1, p.global_batch / micro_batches)));
    const PipelineEngine engine = MakeEngine(p.gpus, micro_batches);
    const double gpipe =
        engine.Run(micro, PipelineStrategy::kGPipe).metrics.throughput;
    const PipelineResult pd = engine.Run(micro, PipelineStrategy::kPipeDream);
    const double ooo =
        engine.Run(micro, PipelineStrategy::kOooPipe2).metrics.throughput;
    table_a.Row({StrFormat("%d", p.gpus), StrFormat("BERT-%d", p.bert),
                 StrFormat("%.0f", gpipe),
                 StrFormat("%.0f(v%d)", pd.metrics.throughput,
                           pd.weight_versions),
                 StrFormat("%.0f", ooo), StrFormat("%.2fx", ooo / gpipe),
                 StrFormat("%.2fx", ooo / pd.metrics.throughput)});
    ooo_vs_gpipe.push_back(ooo / gpipe);
    ooo_vs_pd.push_back(ooo / pd.metrics.throughput);
  }

  BenchHeader("Figure 13(b)", "strong scaling: BERT-24/48 and GPT-3 Medium");
  std::map<std::pair<int, int>, double> strong;  // (bert, gpus) -> tp
  for (const int bert : {24, 48}) {
    Table table({"GPUs", "model", "OOO-Pipe2 seqs/s"});
    for (const int gpus : {8, 16, 32}) {
      if (gpus > bert) {
        continue;  // more GPUs than transformer layers
      }
      const int micro_batches = 2 * gpus;
      const NnModel micro =
          WithShardedHead(Bert(bert, std::max(1, 512 / micro_batches)));
      const double tp = MakeEngine(gpus, micro_batches)
                            .Run(micro, PipelineStrategy::kOooPipe2)
                            .metrics.throughput;
      strong[{bert, gpus}] = tp;
      table.Row({StrFormat("%d", gpus), StrFormat("BERT-%d", bert),
                 StrFormat("%.0f", tp)});
    }
  }

  // GPT-3 Medium: the big output embedding runs on a dedicated 4-GPU
  // tensor-parallel group, modeled by quartering its compute cost.
  {
    Table table({"GPUs(+4)", "model", "OOO-Pipe2 seqs/s"});
    // 26 pipeline layers (embed + 24 decoders + head) bound the stage count.
    for (const int gpus : {8, 12, 16, 24}) {
      const int micro_batches = 2 * gpus;
      const NnModel micro =
          WithShardedHead(Gpt3Medium(std::max(1, 96 / micro_batches)));
      const double tp = MakeEngine(gpus, micro_batches)
                            .Run(micro, PipelineStrategy::kOooPipe2)
                            .metrics.throughput;
      table.Row({StrFormat("%d+4", gpus), "GPT-3(M)", StrFormat("%.1f", tp)});
    }
  }

  std::printf("\n");
  ShapeCheck("weak scaling, 8 GPUs: OOO vs GPipe (paper 1.73)", 1.73,
             ooo_vs_gpipe[0]);
  ShapeCheck("weak scaling, 16 GPUs: OOO vs GPipe (paper ~1.43)", 1.43,
             ooo_vs_gpipe[1]);
  ShapeCheck("weak scaling, 32 GPUs: OOO vs GPipe (paper ~1.43)", 1.43,
             ooo_vs_gpipe[2]);
  ShapeCheck("OOO vs PipeDream at 16-32 GPUs (paper 1.14-1.25)", 1.2,
             (ooo_vs_pd[1] + ooo_vs_pd[2]) / 2);
  ShapeCheck("BERT-24 strong scaling 8->16 GPUs (~1.6x of the 2.5x/4x curve)",
             1.6, strong[{24, 16}] / strong[{24, 8}]);
  ShapeCheck("BERT-48 strong scaling 8->32 GPUs (paper ~2.5x)", 2.5,
             strong[{48, 32}] / strong[{48, 8}]);
  return 0;
}
