// Figure 13: pipeline-parallel scaling. The weak-scaling sweep (13a,
// GPipe vs PipeDream vs OOO-Pipe2 on BERT-{12,24,48}) and the strong-scaling
// sweeps (13b, BERT and GPT-3 Medium) live in src/runner/sweep_scenarios.cc
// as the "fig13_*" scenarios; this binary runs them all serially. Use
// `oobp bench --filter='fig13_*' --jobs=N` to spread the scaling points over
// a thread pool, or add --golden for the regression gate.

#include "src/runner/runner.h"

int main() { return oobp::RunStandaloneBench("fig13_*"); }
