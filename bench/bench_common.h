// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) the series/rows the paper's figure reports and
// (b) a "paper vs measured" shape check where the paper states a number.
// Absolute throughputs are not expected to match (our substrate is a
// simulator); speedup *ratios* and orderings are.

#ifndef OOBP_BENCH_BENCH_COMMON_H_
#define OOBP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/str_util.h"

namespace oobp {

// Prints a section header for a reproduced figure or table.
inline void BenchHeader(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

// Prints one "paper vs measured" shape-check line.
inline void ShapeCheck(const std::string& what, double paper, double measured) {
  const double rel = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  [shape] %-46s paper %6.2f  measured %6.2f  (x%.2f)\n",
              what.c_str(), paper, measured, rel);
}

// Simple fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 12)
      : headers_(std::move(headers)), width_(col_width) {
    for (const std::string& h : headers_) {
      std::printf("%s", PadLeft(h, static_cast<size_t>(width_)).c_str());
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) const {
    for (const std::string& c : cells) {
      std::printf("%s", PadLeft(c, static_cast<size_t>(width_)).c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace oobp

#endif  // OOBP_BENCH_BENCH_COMMON_H_
