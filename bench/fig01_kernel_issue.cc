// Figure 1: kernel issue overhead vs execution time for the convolutions of
// DenseNet-121, per DenseBlock (Intel Xeon + V100 in the paper).
//
// The paper's observation: for DenseBlock-3 and -4, per-op issue overhead is
// up to 4x the kernel execution time, and those two blocks are two thirds of
// the execution — so the executor, not the GPU, bounds training.

#include <map>

#include "bench/bench_common.h"
#include "src/nn/cost_model.h"
#include "src/nn/model_zoo.h"

int main() {
  using namespace oobp;
  BenchHeader("Figure 1", "kernel issue overhead vs execution (DenseNet-121)");

  const NnModel model = DenseNet(121, 32, 32, /*image=*/224);
  // The paper measures the eager frameworks (TF/PyTorch/MXNet): per
  // primitive op issue cost.
  const CostModel cost(GpuSpec::V100(), SystemProfile::TensorFlow());

  struct BlockStats {
    TimeNs exec = 0;
    TimeNs issue = 0;
    int convs = 0;
    double worst_ratio = 0.0;
  };
  std::map<std::string, BlockStats> blocks;
  TimeNs total_exec = 0;
  for (const Layer& l : model.layers) {
    if (!l.block.starts_with("denseblock")) {
      continue;
    }
    const KernelCost kc = cost.Cost(l, TrainOpType::kForward);
    BlockStats& b = blocks[l.block];
    b.exec += kc.duration;
    b.issue += kc.issue_latency;
    ++b.convs;
    b.worst_ratio = std::max(
        b.worst_ratio, static_cast<double>(kc.issue_latency) / kc.duration);
    total_exec += kc.duration;
  }

  Table table({"block", "convs", "exec(us)", "issue(us)", "issue/exec",
               "worst"});
  double db34_ratio = 0.0;
  TimeNs db34_exec = 0;
  for (const auto& [name, b] : blocks) {
    table.Row({name, StrFormat("%d", b.convs), StrFormat("%.0f", ToUs(b.exec)),
               StrFormat("%.0f", ToUs(b.issue)),
               StrFormat("%.2f", static_cast<double>(b.issue) / b.exec),
               StrFormat("%.1fx", b.worst_ratio)});
    if (name == "denseblock3" || name == "denseblock4") {
      db34_ratio = std::max(b.worst_ratio, db34_ratio);
      db34_exec += b.exec;
    }
  }

  // Paper: issue overhead up to 4x execution for DenseBlock-3/4 convs.
  ShapeCheck("worst issue/exec ratio in DenseBlock-3/4 (~4x)", 4.0, db34_ratio);
  // Paper: "the two DenseBlocks take up two thirds of the total execution" —
  // they hold two thirds of the convolutions, so once training is issue-
  // bound their wall share matches their op share.
  int convs_34 = 0, convs_total = 0;
  for (const auto& [name, b] : blocks) {
    convs_total += b.convs;
    if (name == "denseblock3" || name == "denseblock4") {
      convs_34 += b.convs;
    }
  }
  ShapeCheck("DenseBlock-3/4 share of convolutions (~0.67)", 0.67,
             static_cast<double>(convs_34) / convs_total);
  std::printf("  (pure-execution share of DenseBlock-3/4: %.2f)\n",
              static_cast<double>(db34_exec) / static_cast<double>(total_exec));
  return 0;
}
