// Figure 11(b): BERT-24 pipeline training on four V100s across three
// interconnects — NVLink (50 GB/s), PCIe 3.0 (16 GB/s), 10GbE (1.25 GB/s).
// The paper measures modulo-allocation communication-to-computation ratios
// of 0.05 / 0.16 / 1.8 and applies group-2 modulo allocation on Ethernet;
// OOO-Pipe2 beats GPipe by 70% / 58% / 48%.

#include "bench/bench_common.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/pipeline_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Figure 11(b)", "BERT-24 across interconnects (4x V100)");

  const int micro_batches = 4;
  const NnModel micro = Bert(24, 96 / micro_batches);

  struct Net {
    LinkSpec link;
    int group;  // modulo granularity (paper: 2 transformers on Ethernet)
    double paper_gain;
    double paper_ratio;
  };
  const std::vector<Net> nets = {
      {LinkSpec::NvLink(), 1, 1.70, 0.05},
      {LinkSpec::PcIe3(), 1, 1.58, 0.16},
      {LinkSpec::Eth10G(), 2, 1.48, 1.8},
  };

  Table table({"network", "GPipe", "PipeDream", "OOO-Pipe2", "comm/comp",
               "gain"});
  std::vector<double> gains;
  std::vector<double> ratios;
  for (const Net& net : nets) {
    PipelineConfig config;
    config.cluster = ClusterSpec::PubB(1);
    config.num_gpus = 4;
    config.num_micro_batches = micro_batches;
    config.use_link_override = true;
    config.link_override = net.link;
    config.modulo_group_size = net.group;

    const PipelineEngine engine(config);
    const double gpipe =
        engine.Run(micro, PipelineStrategy::kGPipe).metrics.throughput;
    const double pd =
        engine.Run(micro, PipelineStrategy::kPipeDream).metrics.throughput;
    const PipelineResult p2 = engine.Run(micro, PipelineStrategy::kOooPipe2);
    table.Row({net.link.name, StrFormat("%.1f", gpipe), StrFormat("%.1f", pd),
               StrFormat("%.1f", p2.metrics.throughput),
               StrFormat("%.2f", p2.comm_comp_ratio),
               StrFormat("%.2fx", p2.metrics.throughput / gpipe)});
    gains.push_back(p2.metrics.throughput / gpipe);
    ratios.push_back(p2.comm_comp_ratio);
  }

  // Fine-grained modulo on Ethernet for comparison (paper: throughput halves
  // without grouping).
  {
    PipelineConfig config;
    config.cluster = ClusterSpec::PubB(1);
    config.num_gpus = 4;
    config.num_micro_batches = micro_batches;
    config.use_link_override = true;
    config.link_override = LinkSpec::Eth10G();
    config.modulo_group_size = 1;
    const double fine = PipelineEngine(config)
                            .Run(micro, PipelineStrategy::kOooPipe2)
                            .metrics.throughput;
    config.modulo_group_size = 2;
    const double grouped = PipelineEngine(config)
                               .Run(micro, PipelineStrategy::kOooPipe2)
                               .metrics.throughput;
    std::printf("\n10GbE modulo granularity: per-transformer %.1f vs group-2 "
                "%.1f seqs/s (%.2fx from grouping)\n",
                fine, grouped, grouped / fine);
  }

  std::printf("\n");
  ShapeCheck("NVLink gain over GPipe (paper 1.70)", 1.70, gains[0]);
  ShapeCheck("PCIe gain over GPipe (paper 1.58)", 1.58, gains[1]);
  ShapeCheck("10GbE gain over GPipe (paper 1.48)", 1.48, gains[2]);
  ShapeCheck("comm/comp on NVLink (paper 0.05)", 0.05, ratios[0]);
  ShapeCheck("comm/comp on PCIe (paper 0.16)", 0.16, ratios[1]);
  return 0;
}
