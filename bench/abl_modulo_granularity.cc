// Ablation: modulo-allocation grouping granularity vs interconnect
// bandwidth (the design choice behind Section 8.4.1's "communication
// overhead" experiment). Fine-grained modulo maximizes overlap but
// multiplies inter-GPU traffic; grouping trades pipeline stalls for
// bandwidth. On NVLink the optimum is per-layer; on 10GbE it shifts to
// group size ~2 (the paper's choice).

#include "bench/bench_common.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/pipeline_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Ablation", "modulo allocation grouping vs interconnect");

  const NnModel micro = Bert(24, 24);

  struct Net {
    LinkSpec link;
  };
  int best_group_nvlink = 0, best_group_eth = 0;
  for (const LinkSpec& link :
       {LinkSpec::NvLink(), LinkSpec::PcIe3(), LinkSpec::Eth10G()}) {
    std::printf("\ninterconnect: %s (%.2f GB/s)\n", link.name.c_str(),
                link.bandwidth_gbps);
    Table table({"group", "seqs/s", "comm/comp"});
    double best_tp = 0;
    int best_group = 0;
    for (int group : {1, 2, 3, 4, 6}) {
      PipelineConfig config;
      config.cluster = ClusterSpec::PubB(1);
      config.num_gpus = 4;
      config.num_micro_batches = 4;
      config.use_link_override = true;
      config.link_override = link;
      config.modulo_group_size = group;
      const PipelineResult r =
          PipelineEngine(config).Run(micro, PipelineStrategy::kOooPipe2);
      table.Row({StrFormat("%d", group),
                 StrFormat("%.1f", r.metrics.throughput),
                 StrFormat("%.2f", r.comm_comp_ratio)});
      if (r.metrics.throughput > best_tp) {
        best_tp = r.metrics.throughput;
        best_group = group;
      }
    }
    std::printf("best group size: %d\n", best_group);
    if (link.name == "NVLink") {
      best_group_nvlink = best_group;
    }
    if (link.name == "10GbE") {
      best_group_eth = best_group;
    }
  }

  ShapeCheck("optimal group on NVLink (paper: 1 transformer)", 1.0,
             best_group_nvlink);
  ShapeCheck("optimal group on 10GbE (paper: 2 transformers)", 2.0,
             best_group_eth);
  return 0;
}
