// Figure 6: pipeline parallelism with micro-batches — the Figure 5 network
// (8 layers / 2 GPUs), mini-batch split into two micro-batches A and B;
// (a) GPipe, (b) + gradient fast-forwarding, (c) + modulo allocation.
// Prints ASCII timelines reconstructed from the execution trace.

#include <algorithm>
#include <map>

#include "bench/bench_common.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/pipeline_engine.h"
#include "src/trace/trace.h"

namespace {

using namespace oobp;

// Renders per-GPU tracks as text, one column per `unit` of simulated time.
void RenderAscii(const TraceRecorder& trace, int gpus, TimeNs unit) {
  for (int g = 0; g < gpus; ++g) {
    std::string line = StrFormat("GPU%d |", g);
    TimeNs cursor = 0;
    for (const TraceEvent& ev : trace.TrackEvents(g)) {
      while (cursor + unit / 2 < ev.start) {
        line += "    .";
        cursor += unit;
      }
      // Label: layer index + micro-batch letter (F upper-case, bwd lower).
      std::string label = ev.name.substr(0, ev.name.find('#'));
      label.resize(5, ' ');
      line += label;
      cursor = ev.end();
    }
    std::printf("%s\n", line.c_str());
  }
}

PipelineResult RunAndPrint(const PipelineEngine& engine, const NnModel& model,
                           PipelineStrategy s, TimeNs* unit) {
  TraceRecorder trace;
  const PipelineResult r = engine.Run(model, s, &trace);
  std::printf("\n(%s) iteration %.3f ms, utilization %.0f%%\n",
              PipelineStrategyName(s), ToMs(r.metrics.iteration_time),
              100 * r.metrics.gpu_utilization);
  if (*unit == 0 && !trace.events().empty()) {
    *unit = trace.events().front().duration;
  }
  RenderAscii(trace, engine.config().num_gpus, std::max<TimeNs>(*unit, 1));
  return r;
}

}  // namespace

int main() {
  using namespace oobp;
  BenchHeader("Figure 6", "pipeline parallelism with 2 micro-batches");

  const NnModel model = Ffnn(8, 128, 4096);  // micro-batch model
  PipelineConfig config;
  config.cluster = ClusterSpec::PubB(1);
  config.num_gpus = 2;
  config.num_micro_batches = 2;
  config.use_link_override = true;
  config.link_override = {"ideal", 10000.0, 0};

  const PipelineEngine engine(config);
  TimeNs unit = 0;
  const PipelineResult a = RunAndPrint(engine, model, PipelineStrategy::kGPipe, &unit);
  const PipelineResult b =
      RunAndPrint(engine, model, PipelineStrategy::kOooPipe1, &unit);
  const PipelineResult c =
      RunAndPrint(engine, model, PipelineStrategy::kOooPipe2, &unit);

  std::printf("\n");
  ShapeCheck("fast-forwarding speedup over GPipe (>1)", 1.15,
             static_cast<double>(a.metrics.iteration_time) /
                 b.metrics.iteration_time);
  ShapeCheck("+ modulo allocation speedup over GPipe (>1.3)", 1.45,
             static_cast<double>(a.metrics.iteration_time) /
                 c.metrics.iteration_time);
  return 0;
}
