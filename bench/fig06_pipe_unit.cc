// Figure 6: pipeline parallelism with two micro-batches. The experiment
// lives in src/runner/paper_scenarios.cc as "fig06_pipe_unit"; this binary
// is a thin wrapper kept for `make fig06_pipe_unit` workflows.

#include "src/runner/runner.h"

int main() { return oobp::RunStandaloneBench("fig06_pipe_unit"); }
