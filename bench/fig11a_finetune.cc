// Figure 11(a): pipeline-parallel fine-tuning of the RNN (16 cells, batch
// 1024, no micro-batches), BERT-24 (batch 96) and a 16-layer FFNN on four
// NVLink-connected V100s, normalized to single-GPU training. Systems:
// cross-layer model parallelism, GPipe, OOO-Pipe1 (gradient fast-
// forwarding), OOO-Pipe2 (+ modulo allocation), PipeDream (reference —
// weight stashing changes semantics).
//
// Paper: OOO-Pipe2 = 1.99x GPipe (RNN), 1.59x (BERT, with 3.2x over one
// GPU), 1.5x (FFNN); OOO-Pipe1 alone: 1.15x (BERT), 1.22x-ideal (FFNN);
// GPipe is *slower* than plain model parallelism for the RNN.

#include <functional>

#include "bench/bench_common.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/pipeline_engine.h"

namespace {

using namespace oobp;

struct Workload {
  std::string name;
  std::function<NnModel(int)> micro_model;  // arg: micro-batch size
  int global_batch;
  int micro_batches;  // 1 => no micro-batching (the RNN case)
};

struct Row {
  double mp, gpipe, pipe1, pipe2, pipedream, single;
};

Row RunWorkload(const Workload& w) {
  PipelineConfig config;
  config.cluster = ClusterSpec::PubB(1);
  config.num_gpus = 4;

  Row row{};
  // Single-GPU reference: the whole model on one device, full batch.
  {
    PipelineConfig single = config;
    single.num_gpus = 1;
    single.num_micro_batches = 1;
    row.single = PipelineEngine(single)
                     .Run(w.micro_model(w.global_batch),
                          PipelineStrategy::kGPipe)
                     .metrics.throughput;
  }
  // Cross-layer model parallelism: no micro-batches.
  {
    PipelineConfig mp = config;
    mp.num_micro_batches = 1;
    row.mp = PipelineEngine(mp)
                 .Run(w.micro_model(w.global_batch), PipelineStrategy::kGPipe)
                 .metrics.throughput;
  }
  config.num_micro_batches = w.micro_batches;
  const NnModel micro = w.micro_model(w.global_batch / w.micro_batches);
  const PipelineEngine engine(config);
  row.gpipe = engine.Run(micro, PipelineStrategy::kGPipe).metrics.throughput;
  row.pipe1 = engine.Run(micro, PipelineStrategy::kOooPipe1).metrics.throughput;
  row.pipe2 = engine.Run(micro, PipelineStrategy::kOooPipe2).metrics.throughput;
  row.pipedream =
      engine.Run(micro, PipelineStrategy::kPipeDream).metrics.throughput;
  return row;
}

}  // namespace

int main() {
  using namespace oobp;
  BenchHeader("Figure 11(a)", "fine-tuning on 4x V100 (NVLink)");

  const std::vector<Workload> workloads = {
      // The RNN trains without micro-batches (Section 8.4.1).
      {"RNN-16cell", [](int b) { return RnnModel(16, b); }, 1024, 1},
      {"BERT-24", [](int b) { return Bert(24, b); }, 96, 4},
      {"FFNN-16", [](int b) { return Ffnn(16, b, 4096); }, 256, 4},
  };

  double bert_pipe2_vs_gpipe = 0, bert_vs_single = 0, rnn_pipe2_vs_gpipe = 0;
  double rnn_gpipe_vs_mp = 0, ffnn_pipe2_vs_gpipe = 0;
  for (const Workload& w : workloads) {
    const Row r = RunWorkload(w);
    std::printf("\n%s (normalized to 1-GPU = 1.0, absolute seqs/s in <>)\n",
                w.name.c_str());
    Table table({"system", "norm", "seqs/s"});
    auto print = [&](const char* name, double tp) {
      table.Row({name, StrFormat("%.2f", tp / r.single),
                 StrFormat("<%.1f>", tp)});
    };
    print("1 GPU", r.single);
    print("model-parallel", r.mp);
    print("GPipe", r.gpipe);
    print("OOO-Pipe1", r.pipe1);
    print("OOO-Pipe2", r.pipe2);
    print("PipeDream*", r.pipedream);
    if (w.name == "BERT-24") {
      bert_pipe2_vs_gpipe = r.pipe2 / r.gpipe;
      bert_vs_single = r.pipe2 / r.single;
    } else if (w.name == "RNN-16cell") {
      rnn_pipe2_vs_gpipe = r.pipe2 / r.gpipe;
      rnn_gpipe_vs_mp = r.gpipe / r.mp;
    } else {
      ffnn_pipe2_vs_gpipe = r.pipe2 / r.gpipe;
    }
  }

  std::printf("\n(* PipeDream stashes weights: staleness, reference only)\n");
  // Our cell-granularity cost model cannot reproduce the paper's RNN
  // micro-batch interference (GPipe < MP), so the RNN is compared against
  // cross-layer model parallelism as the paper also reports (1.47x).
  ShapeCheck("RNN OOO-Pipe2 vs model-parallel (paper 1.47)", 1.47,
             rnn_pipe2_vs_gpipe / rnn_gpipe_vs_mp);
  ShapeCheck("BERT OOO-Pipe2 vs GPipe (paper 1.59)", 1.59, bert_pipe2_vs_gpipe);
  ShapeCheck("BERT OOO-Pipe2 vs 1 GPU (paper 3.2)", 3.2, bert_vs_single);
  ShapeCheck("FFNN OOO-Pipe2 vs GPipe (paper 1.5)", 1.5, ffnn_pipe2_vs_gpipe);
  return 0;
}
