// Figure 10: data-parallel scaling (Horovod / BytePS / OOO-BytePS) on the
// three clusters of Table 2. The experiment lives in
// src/runner/paper_scenarios.cc, split per cluster as "fig10_*" scenarios;
// this binary runs them all serially.

#include "src/runner/runner.h"

int main() { return oobp::RunStandaloneBench("fig10_*"); }
