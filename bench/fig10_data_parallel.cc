// Figure 10: data-parallel training throughput of ResNet-50/101 on the
// three clusters of Table 2 — (a) 8x Titan XP + 10GbE, (b) 20x P100 +
// 20GbE, (c) 48x V100 (Pub-A, NVLink + 10GbE) — for Horovod, BytePS and
// OOO-BytePS (reverse first-k with the concave k search).
//
// Paper bands: OOO-BytePS / BytePS = 1.10-1.27x at 16-48 GPUs; up to 15.3%
// on Titan XP at 8 GPUs; BytePS far ahead of Horovod everywhere at scale.

#include <vector>

#include "bench/bench_common.h"
#include "src/core/k_search.h"
#include "src/core/reverse_k.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/data_parallel_engine.h"

namespace {

using namespace oobp;

struct ClusterRun {
  const char* title;
  ClusterSpec cluster;
  std::vector<int> gpu_counts;
  int batch50, batch101;
};

void RunCluster(const ClusterRun& run, std::vector<double>* gains_16plus) {
  for (const int depth : {50, 101}) {
    const int batch = depth == 50 ? run.batch50 : run.batch101;
    const NnModel model = ResNet(depth, batch);
    const TrainGraph graph(&model);
    std::printf("\n%s — ResNet-%d, batch %d/GPU\n", run.title, depth, batch);
    Table table({"GPUs", "Horovod", "BytePS", "OOO-BytePS", "k*", "gain"});
    for (int gpus : run.gpu_counts) {
      DataParallelConfig config;
      config.cluster = run.cluster;
      config.num_gpus = gpus;

      config.scheme = CommScheme::kHorovod;
      const double hvd = DataParallelEngine(config)
                             .Run(model, graph.ConventionalBackprop())
                             .throughput;
      config.scheme = CommScheme::kBytePS;
      const DataParallelEngine byteps(config);
      const double bps =
          byteps.Run(model, graph.ConventionalBackprop()).throughput;
      const KSearchResult search = SearchBestK(model.num_layers(), [&](int k) {
        return byteps.Run(model, ReverseFirstK(graph, k).order).throughput;
      });
      const double ooo = search.best_throughput;
      table.Row({StrFormat("%d", gpus), StrFormat("%.0f", hvd),
                 StrFormat("%.0f", bps), StrFormat("%.0f", ooo),
                 StrFormat("%d", search.best_k),
                 StrFormat("%.2fx", ooo / bps)});
      if (gpus >= 16) {
        gains_16plus->push_back(ooo / bps);
      }
    }
  }
}

}  // namespace

int main() {
  using namespace oobp;
  BenchHeader("Figure 10", "data-parallel scaling: Horovod / BytePS / OOO-BytePS");

  std::vector<double> gains_16plus;
  RunCluster({"(a) Priv-A: Titan XP x8, PCIe + 10GbE", ClusterSpec::PrivA(),
              {1, 2, 4, 8}, 64, 64},
             &gains_16plus);
  RunCluster({"(b) Priv-B: P100 x20, PCIe + 20GbE", ClusterSpec::PrivB(),
              {1, 4, 8, 16, 20}, 64, 64},
             &gains_16plus);
  RunCluster({"(c) Pub-A: V100 x48, NVLink + 10GbE", ClusterSpec::PubA(),
              {1, 4, 8, 16, 32, 48}, 128, 96},
             &gains_16plus);

  std::printf("\n");
  double lo = 10.0, hi = 0.0;
  for (double g : gains_16plus) {
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  ShapeCheck("min OOO/BytePS gain at 16+ GPUs (paper >= 1.05)", 1.10, lo);
  ShapeCheck("max OOO/BytePS gain at 16+ GPUs (paper <= 1.27)", 1.27, hi);
  return 0;
}
