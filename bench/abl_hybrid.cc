// Section 6 / Section 8.4.2: combining data- and pipeline-parallel training.
// The paper reports that adding data parallelism to DAPPLE and OOO-Pipe2
// "similarly improved [both] by 30-35%", and sketches combining reverse
// first-k with gradient fast-forwarding (optimal k left as future work —
// here we sweep it).

#include "bench/bench_common.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/hybrid_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Ablation (Sec 6)", "hybrid data+pipeline parallel training");

  const NnModel micro = Bert(24, 16);

  auto make = [&](int dp_groups, PipelineStrategy, int k) {
    HybridConfig config;
    config.pipeline.cluster = ClusterSpec::PubB(5);
    config.pipeline.num_gpus = 8;
    config.pipeline.num_micro_batches = 8;
    config.pipeline.reverse_first_k = k;
    config.dp_groups = dp_groups;
    return config;
  };

  // Replication factor sweep for DAPPLE vs OOO-Pipe2 (both 8-GPU pipes).
  Table table({"replicas", "GPUs", "system", "seqs/s", "exposed(ms)",
               "vs 1-rep"});
  double dapple_gain2 = 0, ooo_gain2 = 0;
  for (PipelineStrategy s :
       {PipelineStrategy::kDapple, PipelineStrategy::kOooPipe2}) {
    double single = 0;
    for (int g : {1, 2, 4}) {
      const HybridResult r = HybridEngine(make(g, s, 0)).Run(micro, s);
      if (g == 1) {
        single = r.metrics.throughput;
      }
      table.Row({StrFormat("%d", g), StrFormat("%d", r.total_gpus),
                 PipelineStrategyName(s),
                 StrFormat("%.0f", r.metrics.throughput),
                 StrFormat("%.1f", ToMs(r.exposed_sync)),
                 StrFormat("%.2fx", r.metrics.throughput / single)});
      if (g == 2) {
        if (s == PipelineStrategy::kDapple) {
          dapple_gain2 = r.metrics.throughput / single;
        } else {
          ooo_gain2 = r.metrics.throughput / single;
        }
      }
    }
  }

  // Reverse-first-k sweep inside the deferred pool (Section 6's combined
  // scheduling; the paper leaves finding the optimal k as future work).
  std::printf("\nreverse-first-k inside OOO-Pipe2's deferred pool, 2 replicas:\n");
  Table ktable({"k", "seqs/s", "exposed(ms)"});
  double best_k_gain = 0;
  double k0_tp = 0;
  for (int k : {0, 4, 8, 16, 26}) {
    const HybridResult r = HybridEngine(make(2, PipelineStrategy::kOooPipe2, k))
                               .Run(micro, PipelineStrategy::kOooPipe2);
    if (k == 0) {
      k0_tp = r.metrics.throughput;
    }
    best_k_gain = std::max(best_k_gain, r.metrics.throughput / k0_tp);
    ktable.Row({StrFormat("%d", k), StrFormat("%.0f", r.metrics.throughput),
                StrFormat("%.1f", ToMs(r.exposed_sync))});
  }

  std::printf("\n");
  ShapeCheck("DAPPLE gain from 2x replication (paper ~1.3-1.35)", 1.32,
             dapple_gain2);
  ShapeCheck("OOO-Pipe2 gain from 2x replication (paper ~1.3-1.35)", 1.32,
             ooo_gain2);
  ShapeCheck("reverse-first-k in the pool never hurts (>=1.0)", 1.0,
             best_k_gain);
  return 0;
}
