// Figure 5: cross-layer model parallelism, 8 layers / 2 GPUs (unit-time
// makespans 23 / 19 / 16). The experiment lives in
// src/runner/paper_scenarios.cc as "fig05_mp_unit"; this binary is a thin
// wrapper kept for `make fig05_mp_unit` workflows.

#include "src/runner/runner.h"

int main() { return oobp::RunStandaloneBench("fig05_mp_unit"); }
