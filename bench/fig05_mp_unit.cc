// Figure 5: cross-layer model parallelism of an 8-layer network on 2 GPUs
// (no micro-batches) — (a) conventional, (b) gradient fast-forwarding,
// (c) + modulo allocation. The paper's unit-time makespans: 23 / 19 / 16
// (1.21x and 1.44x over conventional).

#include "bench/bench_common.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/pipeline_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Figure 5", "cross-layer model parallelism, 8 layers / 2 GPUs");

  const NnModel model = Ffnn(8, 256, 4096);
  PipelineConfig config;
  config.cluster = ClusterSpec::PubB(1);
  config.num_gpus = 2;
  config.num_micro_batches = 1;  // cross-layer MP: no micro-batches
  config.use_link_override = true;
  config.link_override = {"ideal", 10000.0, 0};

  const PipelineEngine engine(config);
  const PipelineResult a = engine.Run(model, PipelineStrategy::kGPipe);
  const PipelineResult b = engine.Run(model, PipelineStrategy::kOooPipe1);
  const PipelineResult c = engine.Run(model, PipelineStrategy::kOooPipe2);

  Table table({"execution", "iter(ms)", "util", "speedup"});
  auto row = [&](const char* name, const PipelineResult& r) {
    table.Row({name, StrFormat("%.3f", ToMs(r.metrics.iteration_time)),
               StrFormat("%.0f%%", 100 * r.metrics.gpu_utilization),
               StrFormat("%.2fx", static_cast<double>(a.metrics.iteration_time) /
                                      r.metrics.iteration_time)});
  };
  row("(a) conventional MP", a);
  row("(b) + fast-forwarding", b);
  row("(c) + modulo alloc", c);

  ShapeCheck("(b) speedup (paper: 23/19 = 1.21)", 23.0 / 19.0,
             static_cast<double>(a.metrics.iteration_time) /
                 b.metrics.iteration_time);
  ShapeCheck("(c) speedup (paper: 23/16 = 1.44)", 23.0 / 16.0,
             static_cast<double>(a.metrics.iteration_time) /
                 c.metrics.iteration_time);
  return 0;
}
