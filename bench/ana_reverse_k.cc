// Section 8.3 discussion: why reverse first-k wins — ResNet-50 on 16x V100
// (Pub-A). The paper's accounting: computation 380 ms vs first-layer sync
// 350 ms; reversing the first 45 layers overlaps dW_1's synchronization with
// dW_2..dW_45's computation (85 ms) and moves more synchronizations early,
// cutting the exposed communication from 350 ms to ~200 ms — a 27% total
// speedup.

#include "bench/bench_common.h"
#include "src/core/k_search.h"
#include "src/core/reverse_k.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/data_parallel_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Analysis (Sec 8.3)", "reverse first-k on ResNet-50, 16x V100");

  const NnModel model = ResNet(50, 128);
  const TrainGraph graph(&model);

  DataParallelConfig config;
  config.cluster = ClusterSpec::PubA();
  config.num_gpus = 16;
  const DataParallelEngine engine(config);

  // Total synchronization volume and the per-GPU channel it crosses.
  int64_t total_volume = 0;
  for (int l = 0; l < model.num_layers(); ++l) {
    total_volume += engine.SyncVolume(model, l);
  }
  std::printf("channel bandwidth: %.3f GB/s per worker\n",
              engine.ChannelBandwidthGbps());
  std::printf("total sync volume: %.0f MB -> %.0f ms serialized\n",
              total_volume / 1e6,
              total_volume / engine.ChannelBandwidthGbps() / 1e6);

  const TrainMetrics base = engine.Run(model, graph.ConventionalBackprop());
  std::printf("BytePS baseline: iter %.0f ms, comm/comp %.2f\n",
              ToMs(base.iteration_time), base.comm_comp_ratio);

  // Sweep k and report the response curve.
  Table table({"k", "iter(ms)", "gain"});
  for (int k : {0, 10, 20, 30, 45, 53}) {
    const ReverseFirstKResult rk = ReverseFirstK(graph, k);
    const TrainMetrics m = engine.Run(model, rk.order);
    table.Row({StrFormat("%d", rk.effective_k),
               StrFormat("%.0f", ToMs(m.iteration_time)),
               StrFormat("%.2fx", m.throughput / base.throughput)});
  }

  const KSearchResult search = SearchBestK(model.num_layers(), [&](int k) {
    return engine.Run(model, ReverseFirstK(graph, k).order).throughput;
  });
  const TrainMetrics best =
      engine.Run(model, ReverseFirstK(graph, search.best_k).order);
  std::printf("\nbest k = %d (paper: 45) in %zu probes\n", search.best_k,
              search.evaluations.size());
  std::printf("16 GPUs: %.2fx over BytePS (paper 1.27; our comm model's\n"
              "  sync/compute crossover sits at a slightly larger cluster)\n",
              best.throughput / base.throughput);

  // At 32 GPUs the same mechanism shows the paper-scale effect.
  DataParallelConfig config32 = config;
  config32.num_gpus = 32;
  const DataParallelEngine engine32(config32);
  const TrainMetrics base32 = engine32.Run(model, graph.ConventionalBackprop());
  const KSearchResult search32 = SearchBestK(model.num_layers(), [&](int k) {
    return engine32.Run(model, ReverseFirstK(graph, k).order).throughput;
  });
  std::printf("32 GPUs: best k = %d, %.2fx over BytePS\n", search32.best_k,
              search32.best_throughput / base32.throughput);

  ShapeCheck("speedup at best k, 16-32 GPUs (paper 1.27 at 16)", 1.27,
             std::max(best.throughput / base.throughput,
                      search32.best_throughput / base32.throughput));
  ShapeCheck("best k as fraction of layers (paper 45/54 = 0.83)", 0.83,
             static_cast<double>(std::max(search.best_k, search32.best_k)) /
                 model.num_layers());
  return 0;
}
