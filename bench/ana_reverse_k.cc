// Section 8.3: data-parallel reverse first-k response curve and the concave
// search over k. The experiment lives in src/runner/sweep_scenarios.cc as
// the "ana_reverse_k" scenario; this binary runs it serially.

#include "src/runner/runner.h"

int main() { return oobp::RunStandaloneBench("ana_reverse_k"); }
