// Figure 2: training timeline of DenseNet-121 — kernel issue activity on the
// host (top) and kernel executions on the GPU (bottom). The paper's point:
// the issue overhead is masked early in the forward pass but the masking
// disappears by the end of DenseBlock-4, where kernels are short.
//
// This bench runs the baseline execution, exports a Chrome trace
// (fig02_timeline.json — load it in chrome://tracing or Perfetto), and
// prints the per-phase GPU idle fraction that the masking analysis predicts.

#include "bench/bench_common.h"
#include "src/core/schedule.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/trace/trace.h"

int main() {
  using namespace oobp;
  BenchHeader("Figure 2", "issue/execution timeline of DenseNet-121");

  const NnModel model = DenseNet(121, 32, 32, /*image=*/224);
  const TrainGraph graph(&model);

  SingleGpuConfig config;
  config.gpu = GpuSpec::V100();
  config.profile = SystemProfile::TensorFlow();
  config.precompiled_issue = false;
  config.measured_iterations = 1;

  TraceRecorder trace;
  const SingleGpuEngine engine(config);
  const TrainMetrics metrics =
      engine.Run(model, ConventionalIteration(graph), &trace);

  // GPU idle per window: the masking effect (issue overhead hidden behind
  // queued kernels) erodes where kernels are short, exposing host latency.
  const TimeNs makespan = trace.Makespan();
  constexpr int kWindows = 12;
  Table table({"window", "busy(ms)", "idle(ms)", "idle%"});
  double max_idle = 0.0, min_idle = 1.0;
  for (int q = 0; q < kWindows; ++q) {
    const TimeNs begin = makespan * q / kWindows;
    const TimeNs end = makespan * (q + 1) / kWindows;
    const TimeNs busy = trace.BusyTime(/*track=*/0, begin, end);
    const TimeNs idle = (end - begin) - busy;
    const double idle_frac = static_cast<double>(idle) / (end - begin);
    table.Row({StrFormat("W%d", q + 1), StrFormat("%.2f", ToMs(busy)),
               StrFormat("%.2f", ToMs(idle)), StrFormat("%.1f%%", 100 * idle_frac)});
    max_idle = std::max(max_idle, idle_frac);
    min_idle = std::min(min_idle, idle_frac);
  }
  std::printf("iteration: %.2f ms, %zu kernel + issue events\n",
              ToMs(metrics.iteration_time), trace.events().size());

  trace.WriteChromeJson("fig02_timeline.json",
                        {{0, "GPU main stream"}, {100, "CPU issue thread"}});
  std::printf("chrome trace written to fig02_timeline.json\n");

  // Shape: some windows are issue-bound (GPU starves on the host) while
  // others are masked — the contrast Figure 2 illustrates.
  ShapeCheck("peak window idle fraction (issue-exposed region)", 0.15,
             max_idle);
  ShapeCheck("idle contrast across windows (masked vs exposed, >4)", 4.0,
             max_idle / std::max(min_idle, 1e-2));
  return 0;
}
