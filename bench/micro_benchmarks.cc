// Google-benchmark micro-benchmarks for the infrastructure itself: event
// engine throughput, fluid-processor reallocation, and the cost of the
// paper's scheduling algorithms (these run once per model+GPU pair, so they
// must be cheap relative to training).

#include <benchmark/benchmark.h>

#include "src/core/corun_profiler.h"
#include "src/core/joint_scheduler.h"
#include "src/core/region.h"
#include "src/core/reverse_k.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/pipeline_engine.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/sim/engine.h"
#include "src/sim/fluid.h"

namespace oobp {
namespace {

void BM_SimEngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    SimEngine engine;
    int64_t count = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.ScheduleAt(i, [&count] { ++count; });
    }
    engine.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimEngineEventThroughput);

void BM_FluidProcessorChurn(benchmark::State& state) {
  for (auto _ : state) {
    SimEngine engine;
    FluidProcessor proc(&engine, 1520.0);
    for (int i = 0; i < 1000; ++i) {
      proc.Add(1000.0 * (1 + i % 7), 100.0 + i % 400, i % 2, nullptr);
    }
    engine.Run();
    benchmark::DoNotOptimize(proc.busy_integral());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FluidProcessorChurn);

void BM_Algorithm1JointSchedule(benchmark::State& state) {
  const NnModel model = DenseNet(121, 32, 32, 224);
  const TrainGraph graph(&model);
  const CostModel cost(GpuSpec::V100(), SystemProfile::TensorFlowXla());
  const CorunProfiler profiler(graph, cost, BuildRegions(graph));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiRegionJointSchedule(graph, profiler));
  }
}
BENCHMARK(BM_Algorithm1JointSchedule);

void BM_Algorithm2ReverseFirstK(benchmark::State& state) {
  const NnModel model = ResNet(101, 96);
  const TrainGraph graph(&model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReverseFirstK(graph, 45, 8LL << 30));
  }
}
BENCHMARK(BM_Algorithm2ReverseFirstK);

void BM_SingleGpuIterationSim(benchmark::State& state) {
  const NnModel model = DenseNet(121, 32, 32, 224);
  const TrainGraph graph(&model);
  const SingleGpuEngine engine(
      {GpuSpec::V100(), SystemProfile::TensorFlowXla(), true, 2});
  const IterationSchedule sched = ConventionalIteration(graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(model, sched));
  }
}
BENCHMARK(BM_SingleGpuIterationSim);

void BM_PipelineIterationSim(benchmark::State& state) {
  const NnModel micro = Bert(24, 8);
  PipelineConfig config;
  config.cluster = ClusterSpec::PubB(1);
  config.num_gpus = 4;
  config.num_micro_batches = 4;
  const PipelineEngine engine(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(micro, PipelineStrategy::kOooPipe2));
  }
}
BENCHMARK(BM_PipelineIterationSim);

}  // namespace
}  // namespace oobp

BENCHMARK_MAIN();
