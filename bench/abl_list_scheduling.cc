// Section 5.1, last paragraph: reverse first-k vs an explicit list
// scheduler for data-parallel training. The list scheduler needs per-layer
// synchronization-time estimates; reverse first-k only needs a throughput
// probe for k. This bench quantifies both the schedule quality and the
// estimate sensitivity (what happens when sync estimates are off by 2-4x).

#include "bench/bench_common.h"
#include "src/core/k_search.h"
#include "src/core/list_dp_scheduler.h"
#include "src/core/reverse_k.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/data_parallel_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Ablation (Sec 5.1)", "reverse first-k vs DP list scheduling");

  const NnModel model = ResNet(50, 128);
  const TrainGraph graph(&model);
  const CostModel cost(GpuSpec::V100(), SystemProfile::TensorFlow());

  DataParallelConfig config;
  config.cluster = ClusterSpec::PubA();
  config.num_gpus = 32;
  const DataParallelEngine engine(config);

  const TrainMetrics conv = engine.Run(model, graph.ConventionalBackprop());

  const KSearchResult search = SearchBestK(model.num_layers(), [&](int k) {
    return engine.Run(model, ReverseFirstK(graph, k).order).throughput;
  });

  std::vector<TimeNs> ideal(model.num_layers());
  for (int l = 0; l < model.num_layers(); ++l) {
    ideal[l] = engine.IdealSyncTime(model, l);
  }

  Table table({"schedule", "sync estimate", "img/s", "vs conv"});
  table.Row({"conventional", "-", StrFormat("%.0f", conv.throughput), "1.00x"});
  table.Row({"reverse-k", StrFormat("probe k*=%d", search.best_k),
             StrFormat("%.0f", search.best_throughput),
             StrFormat("%.2fx", search.best_throughput / conv.throughput)});

  double list_exact = 0;
  for (double scale : {1.0, 0.25, 4.0}) {
    std::vector<TimeNs> est(ideal);
    for (TimeNs& t : est) {
      t = static_cast<TimeNs>(t * scale);
    }
    const ListDpResult list =
        ListScheduleDataParallel(graph, BuildListDpInputs(model, cost, est));
    const TrainMetrics m = engine.Run(model, list.order);
    if (scale == 1.0) {
      list_exact = m.throughput;
    }
    table.Row({"list-sched", StrFormat("%.2fx of ideal", scale),
               StrFormat("%.0f", m.throughput),
               StrFormat("%.2fx", m.throughput / conv.throughput)});
  }

  std::printf("\n");
  ShapeCheck("reverse-k >= list scheduling with exact estimates", 1.0,
             search.best_throughput / list_exact);
  ShapeCheck("list scheduling improves on conventional when estimates hold",
             1.05, list_exact / conv.throughput);
  return 0;
}
