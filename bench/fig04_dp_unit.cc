// Figure 4: data-parallel scheduling on a uniform toy network —
// (a) conventional wait-free backprop with FIFO communication,
// (b) prioritized parameter communication,
// (c) prioritized communication + reordered computation (reverse first-k).
//
// The paper's unit-time analysis: (c) beats (a) by ~16% and (b) by ~12%.
// We reproduce the toy with a uniform FFNN whose per-layer sync time is
// comparable to its per-layer gradient compute time.

#include "bench/bench_common.h"
#include "src/core/reverse_k.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/data_parallel_engine.h"

int main() {
  using namespace oobp;
  BenchHeader("Figure 4", "data-parallel schedules on a uniform toy model");

  const NnModel model = Ffnn(5, 512, 8192);
  const TrainGraph graph(&model);

  DataParallelConfig config;
  // A single NVLink node keeps per-layer sync comparable to per-layer
  // gradient compute, matching the figure's unit-time proportions.
  config.cluster = ClusterSpec::PubB(1);
  config.num_gpus = 8;
  config.commit_window_bytes = 96LL << 20;

  // (a) FIFO: Horovod with immediate per-tensor flush (no batching delay).
  DataParallelConfig fifo = config;
  fifo.scheme = CommScheme::kHorovod;
  fifo.fusion_cycle = 1;          // flush essentially immediately
  fifo.fusion_buffer_bytes = 1;   // one tensor per flush
  const TrainMetrics a =
      DataParallelEngine(fifo).Run(model, graph.ConventionalBackprop());

  // (b) prioritized communication (BytePS), conventional order.
  config.scheme = CommScheme::kBytePS;
  const DataParallelEngine byteps(config);
  const TrainMetrics b = byteps.Run(model, graph.ConventionalBackprop());

  // (c) + reordered computation: reverse the first 3 of 5 layers, exactly
  // the paper's example.
  const ReverseFirstKResult rk = ReverseFirstK(graph, 3);
  const TrainMetrics c = byteps.Run(model, rk.order);

  Table table({"schedule", "iter(ms)", "samples/s"});
  table.Row({"(a) conventional", StrFormat("%.2f", ToMs(a.iteration_time)),
             StrFormat("%.0f", a.throughput)});
  table.Row({"(b) prio comm", StrFormat("%.2f", ToMs(b.iteration_time)),
             StrFormat("%.0f", b.throughput)});
  table.Row({"(c) prio comm+comp", StrFormat("%.2f", ToMs(c.iteration_time)),
             StrFormat("%.0f", c.throughput)});

  ShapeCheck("(c) vs (a) speedup (paper toy: 1.16)", 1.16,
             c.throughput / a.throughput);
  ShapeCheck("(c) vs (b) speedup (paper toy: 1.12)", 1.12,
             c.throughput / b.throughput);
  return 0;
}
