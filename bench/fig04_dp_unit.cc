// Figure 4: data-parallel scheduling on a uniform toy network. The full
// experiment lives in src/runner/paper_scenarios.cc as "fig04_dp_unit";
// this binary is a thin wrapper kept for `make fig04_dp_unit` workflows.

#include "src/runner/runner.h"

int main() { return oobp::RunStandaloneBench("fig04_dp_unit"); }
