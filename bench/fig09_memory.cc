// Figure 9: temporary-memory usage through the backpropagation of
// DenseNet-121 — conventional backprop vs multi-stream ooo computation,
// sampled at each layer's output-gradient computation. The paper: the ooo
// execution holds up to ~200 MB more memory late in backprop (DenseBlock-4's
// delayed weight gradients) but its *peak*, which occurs at the start of
// backprop, grows by only ~10 MB (~0.1%).

#include "bench/bench_common.h"
#include "src/core/corun_profiler.h"
#include "src/core/joint_scheduler.h"
#include "src/core/memory_model.h"
#include "src/core/region.h"
#include "src/nn/model_zoo.h"

int main() {
  using namespace oobp;
  BenchHeader("Figure 9", "backprop memory: conventional vs ooo (DenseNet-121)");

  const NnModel model = DenseNet(121, 32, 64, /*image=*/224);
  const TrainGraph graph(&model);
  const CostModel cost(GpuSpec::V100(), SystemProfile::TensorFlowXla());
  const CorunProfiler profiler(graph, cost, BuildRegions(graph));

  const IterationSchedule conventional = ConventionalIteration(graph);
  const MemoryTimeline conv =
      EstimateBackpropMemory(model, conventional.MergedOrder());

  // The Figure 8 schedule: DenseBlock-4's weight gradients are delayed to
  // run alongside the next iteration's forward pass of DenseBlock-1. For
  // the memory curve this is equivalent to moving them after the rest of
  // backprop.
  JointScheduleOptions opts;
  opts.memory_cap_bytes = static_cast<int64_t>(1.1 * conv.peak);
  const JointScheduleResult joint = MultiRegionJointSchedule(graph, profiler, opts);
  IterationSchedule fig8_sched;
  {
    std::vector<ScheduledOp> delayed;
    for (const TrainOp& op : graph.ConventionalBackprop()) {
      if (op.type == TrainOpType::kWeightGrad &&
          model.layers[op.layer].block == "denseblock4") {
        delayed.push_back({op, kSubStream, -1});
      } else {
        fig8_sched.ops.push_back({op, kMainStream, -1});
      }
    }
    fig8_sched.ops.insert(fig8_sched.ops.end(), delayed.begin(), delayed.end());
  }
  const MemoryTimeline ooo =
      EstimateBackpropMemory(model, fig8_sched.MergedOrder());
  const IterationSchedule& sched_schedule = fig8_sched;

  // Sample usage at each dO op (the figure's x-axis), downsampled for print.
  auto at_dgrad = [&](const IterationSchedule& s, const MemoryTimeline& tl) {
    std::vector<std::pair<int, int64_t>> samples;  // (layer, usage)
    const auto merged = s.MergedOrder();
    for (size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].type == TrainOpType::kOutputGrad) {
        samples.emplace_back(merged[i].layer, tl.usage_after[i]);
      }
    }
    return samples;
  };
  const auto conv_samples = at_dgrad(conventional, conv);
  const auto ooo_samples = at_dgrad(sched_schedule, ooo);

  Table table({"dO layer", "conv(MB)", "ooo(MB)", "delta(MB)"});
  int64_t max_delta = 0;
  for (size_t i = 0; i < conv_samples.size(); i += 12) {
    const int64_t delta = ooo_samples[i].second - conv_samples[i].second;
    max_delta = std::max(max_delta, delta);
    table.Row({StrFormat("%d", conv_samples[i].first),
               StrFormat("%.0f", conv_samples[i].second / 1e6),
               StrFormat("%.0f", ooo_samples[i].second / 1e6),
               StrFormat("%+.0f", delta / 1e6)});
  }
  for (size_t i = 0; i < conv_samples.size(); ++i) {
    max_delta = std::max(max_delta, ooo_samples[i].second - conv_samples[i].second);
  }

  std::printf("\npeak: conventional %.0f MB, ooo %.0f MB (+%.2f%%)\n",
              conv.peak_total() / 1e6, (ooo.peak + conv.base) / 1e6,
              100.0 * (ooo.peak - conv.peak) /
                  static_cast<double>(conv.peak_total()));
  std::printf("joint scheduler under the same cap: peak %.0f MB "
              "(pre-scheduled %d regions)\n",
              (joint.peak_memory + conv.base) / 1e6,
              joint.pre_scheduled_regions);
  std::printf("max mid-backprop excess of ooo over conventional: %.0f MB\n",
              max_delta / 1e6);

  ShapeCheck("peak increase stays under the 10%% cap", 0.10,
             static_cast<double>(ooo.peak - conv.peak) /
                 static_cast<double>(conv.peak));
  ShapeCheck("mid-backprop excess is real but bounded (paper ~200MB)", 200.0,
             max_delta / 1e6);
  return 0;
}
