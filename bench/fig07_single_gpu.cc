// Figure 7: single-GPU training throughput on a V100, normalized to
// TensorFlow XLA, for DenseNet-121/169, MobileNet V3 and ResNet-50/101 at
// batch 32 and 64. Systems: XLA, XLA+Opt1 (pre-compiled kernel issue),
// OOO-XLA = XLA+Opt1+Opt2 (multi-stream ooo computation), and Nimble.
//
// Paper bands: OOO-XLA/XLA = 1.09-1.21 (DenseNet-121), 1.07-1.19
// (MobileNet), 1.03-1.06 (ResNet); maxima 1.54x (DenseNet k=12 b=32) and
// 1.58x (MobileNet a=0.25 b=32); Nimble OOMs at batch 64 for most models.

#include <functional>
#include <optional>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/corun_profiler.h"
#include "src/core/joint_scheduler.h"
#include "src/core/region.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/single_gpu_engine.h"

namespace {

using namespace oobp;

struct Result {
  double xla = 0, opt1 = 0, ooo = 0;
  std::optional<double> nimble;
  bool ooo_oom = false;
};

Result RunConfig(const NnModel& model) {
  const TrainGraph graph(&model);
  const GpuSpec gpu = GpuSpec::V100();
  const SystemProfile xla = SystemProfile::TensorFlowXla();
  Result r;

  const IterationSchedule conventional = ConventionalIteration(graph);
  const TrainMetrics m_xla =
      SingleGpuEngine({gpu, xla, /*precompiled_issue=*/false}).Run(model, conventional);
  const TrainMetrics m_opt1 =
      SingleGpuEngine({gpu, xla, /*precompiled_issue=*/true}).Run(model, conventional);

  const CostModel cost(gpu, xla);
  const CorunProfiler profiler(graph, cost, BuildRegions(graph));
  JointScheduleOptions opts;
  const MemoryTimeline conv_mem =
      EstimateBackpropMemory(model, conventional.MergedOrder());
  opts.memory_cap_bytes = static_cast<int64_t>(1.1 * conv_mem.peak);
  const JointScheduleResult sched = MultiRegionJointSchedule(graph, profiler, opts);
  const TrainMetrics m_ooo =
      SingleGpuEngine({gpu, xla, /*precompiled_issue=*/true}).Run(model, sched.schedule);

  const TrainMetrics m_nimble =
      SingleGpuEngine({gpu, SystemProfile::PyTorchNimble(), true})
          .Run(model, conventional);

  r.xla = m_xla.oom ? 0 : m_xla.throughput;
  r.opt1 = m_opt1.oom ? 0 : m_opt1.throughput;
  r.ooo = m_ooo.oom ? 0 : m_ooo.throughput;
  r.ooo_oom = m_ooo.oom;
  if (!m_nimble.oom) {
    r.nimble = m_nimble.throughput;
  }
  return r;
}

}  // namespace

int main() {
  using namespace oobp;
  BenchHeader("Figure 7", "single-GPU throughput vs XLA (V100)");

  struct Entry {
    std::string label;
    std::function<NnModel(int)> make;
  };
  const std::vector<Entry> entries = {
      {"DenseNet-121(k24)", [](int b) { return DenseNet(121, 24, b, 32); }},
      {"DenseNet-169(k32)", [](int b) { return DenseNet(169, 32, b, 32); }},
      {"MobileNetV3(a.75)", [](int b) { return MobileNetV3Large(0.75, b); }},
      {"ResNet-50", [](int b) { return ResNet(50, b); }},
      {"ResNet-101", [](int b) { return ResNet(101, b); }},
  };

  Table table({"model", "batch", "XLA", "+Opt1", "OOO-XLA", "Nimble",
               "OOO/XLA"});
  std::vector<double> densenet_gain, mobilenet_gain, resnet_gain;
  for (const Entry& entry : entries) {
    for (int batch : {32, 64}) {
      const Result r = RunConfig(entry.make(batch));
      table.Row({entry.label, StrFormat("%d", batch),
                 StrFormat("%.0f", r.xla), StrFormat("%.2f", r.opt1 / r.xla),
                 r.ooo_oom ? "N/A" : StrFormat("%.2f", r.ooo / r.xla),
                 r.nimble ? StrFormat("%.2f", *r.nimble / r.xla) : "N/A",
                 StrFormat("%.2fx", r.ooo / r.xla)});
      const double gain = r.ooo / r.xla;
      if (entry.label.starts_with("DenseNet")) {
        densenet_gain.push_back(gain);
      } else if (entry.label.starts_with("MobileNet")) {
        mobilenet_gain.push_back(gain);
      } else {
        resnet_gain.push_back(gain);
      }
    }
  }

  // Maximum-speedup configurations the paper calls out separately.
  const Result k12 = RunConfig(DenseNet(121, 12, 32, 32));
  const Result a025 = RunConfig(MobileNetV3Large(0.25, 32));

  std::printf("\n");
  ShapeCheck("DenseNet OOO/XLA upper (paper 1.21)", 1.21,
             *std::max_element(densenet_gain.begin(), densenet_gain.end()));
  ShapeCheck("MobileNet OOO/XLA upper (paper 1.19)", 1.19,
             *std::max_element(mobilenet_gain.begin(), mobilenet_gain.end()));
  ShapeCheck("ResNet OOO/XLA upper (paper 1.06)", 1.06,
             *std::max_element(resnet_gain.begin(), resnet_gain.end()));
  ShapeCheck("max gain DenseNet-121 k=12 b=32 (paper 1.54)", 1.54,
             k12.ooo / k12.xla);
  ShapeCheck("max gain MobileNet a=0.25 b=32 (paper 1.58)", 1.58,
             a025.ooo / a025.xla);

  // Nimble memory behaviour: OOM at batch 64 for the large CNNs.
  const Result nimble64 = RunConfig(ResNet(101, 64));
  std::printf("  [shape] Nimble ResNet-101 batch=64: %s (paper: N/A)\n",
              nimble64.nimble ? "ran" : "OOM");
  return 0;
}
