// Figure 7: single-GPU training throughput vs XLA on a V100. The experiment
// lives in src/runner/paper_scenarios.cc, split per model family as
// "fig07_*" scenarios; this binary runs them all serially.

#include "src/runner/runner.h"

int main() { return oobp::RunStandaloneBench("fig07_*"); }
