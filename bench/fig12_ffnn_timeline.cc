// Figure 12: execution timelines of pipeline-parallel training of the FFNN
// (8 layers shown in the paper; the analysis model is 16 layers) on 4 GPUs
// with 4 micro-batches — (a) GPipe, (b) OOO-Pipe1 (gradient fast-
// forwarding), (c) OOO-Pipe2 (+ modulo allocation).
//
// Paper (16-layer FFNN): fast-forwarding gives 1.22x over GPipe in the
// ideal analysis and 1.18x measured; + modulo allocation gives 1.62x ideal
// and 1.5x measured (communication and kernel-time variance eat the rest).

#include "bench/bench_common.h"
#include "src/nn/model_zoo.h"
#include "src/runtime/pipeline_engine.h"
#include "src/trace/trace.h"

namespace {

using namespace oobp;

void Render(const TraceRecorder& trace, int gpus, TimeNs unit) {
  for (int g = 0; g < gpus; ++g) {
    std::string line = StrFormat("  GPU%d |", g);
    TimeNs cursor = 0;
    for (const TraceEvent& ev : trace.TrackEvents(g)) {
      while (cursor + unit / 2 < ev.start) {
        line += " .... ";
        cursor += unit;
      }
      std::string label = ev.name.substr(0, ev.name.find('#'));
      label.resize(6, ' ');
      line += label;
      cursor = ev.end();
    }
    std::printf("%s\n", line.c_str());
    if (line.size() > 600) {
      break;  // keep output readable for wide schedules
    }
  }
}

}  // namespace

int main() {
  using namespace oobp;
  BenchHeader("Figure 12", "FFNN pipeline timelines (GPipe / OOO-Pipe1 / OOO-Pipe2)");

  PipelineConfig config;
  config.cluster = ClusterSpec::PubB(1);
  config.num_gpus = 4;
  config.num_micro_batches = 4;
  config.use_link_override = true;
  config.link_override = {"ideal", 10000.0, 0};

  // 8-layer rendering (the figure) ...
  {
    const NnModel small = Ffnn(8, 64, 4096);
    const PipelineEngine engine(config);
    for (PipelineStrategy s :
         {PipelineStrategy::kGPipe, PipelineStrategy::kOooPipe1,
          PipelineStrategy::kOooPipe2}) {
      TraceRecorder trace;
      const PipelineResult r = engine.Run(small, s, &trace);
      std::printf("\n(%s) iteration %.3f ms\n", PipelineStrategyName(s),
                  ToMs(r.metrics.iteration_time));
      const TimeNs unit = trace.events().empty() ? 1 : trace.events()[0].duration;
      Render(trace, config.num_gpus, unit);
    }
  }

  // ... and the 16-layer analysis numbers.
  const NnModel model = Ffnn(16, 64, 4096);
  const PipelineEngine engine(config);
  const double gpipe =
      engine.Run(model, PipelineStrategy::kGPipe).metrics.throughput;
  const double pipe1 =
      engine.Run(model, PipelineStrategy::kOooPipe1).metrics.throughput;
  const double pipe2 =
      engine.Run(model, PipelineStrategy::kOooPipe2).metrics.throughput;

  std::printf("\n16-layer FFNN: GPipe %.0f, OOO-Pipe1 %.0f, OOO-Pipe2 %.0f "
              "samples/s\n",
              gpipe, pipe1, pipe2);
  ShapeCheck("fast-forwarding vs GPipe (paper ideal 1.22)", 1.22,
             pipe1 / gpipe);
  ShapeCheck("+ modulo allocation vs GPipe (paper ideal 1.62)", 1.62,
             pipe2 / gpipe);
  return 0;
}
