// Section 8.2: per-region co-run capacity analysis for DenseNet-121. The
// experiment lives in src/runner/sweep_scenarios.cc as the "ana_corun"
// scenario; this binary runs it serially.

#include "src/runner/runner.h"

int main() { return oobp::RunStandaloneBench("ana_corun"); }
