// Section 8.2 discussion: why multi-stream co-scheduling helps — per-region
// analysis of DenseNet-121 on the V100. The paper contrasts a region whose
// main-stream kernels saturate the SMs (R2: the sub-stream can only absorb
// the kernel execution overhead, ~6% speedup) with one whose kernels leave
// slots free (R5: DenseBlock-4 dW kernels at 448 of 1,520 blocks, ~10%).

#include "bench/bench_common.h"
#include "src/core/corun_profiler.h"
#include "src/core/region.h"
#include "src/hw/gpu.h"
#include "src/nn/model_zoo.h"

int main() {
  using namespace oobp;
  BenchHeader("Analysis (Sec 8.2)", "per-region co-run capacity, DenseNet-121");

  const NnModel model = DenseNet(121, 32, 32, /*image=*/224);
  const TrainGraph graph(&model);
  const GpuSpec gpu = GpuSpec::V100();
  const CostModel cost(gpu, SystemProfile::TensorFlowXla());
  const CorunProfiler profiler(graph, cost, BuildRegions(graph));
  const double capacity = gpu.slot_capacity();

  Table table({"region", "T_main(ms)", "avg occ%", "best dW", "speedup"});
  double best_low_occ_speedup = 0.0;   // regions with free slots
  double best_high_occ_speedup = 0.0;  // saturated regions
  for (int r = 0; r < profiler.num_regions(); ++r) {
    const Region& region = profiler.region(r);
    // Average effective occupancy of the region's main kernels.
    double occ_sum = 0.0;
    for (const TrainOp& op : region.main_ops) {
      const KernelCost kc = cost.Cost(model.layers[op.layer], op.type);
      occ_sum += EffectiveOccupancy(kc.thread_blocks, capacity) / capacity;
    }
    const double avg_occ = occ_sum / region.main_ops.size();

    double best = 1.0;
    int best_layer = -1;
    for (int l = 0; l < model.num_layers(); ++l) {
      if (!graph.HasWgrad(l)) {
        continue;
      }
      const double p =
          profiler.SpeedupAt(r, {TrainOpType::kWeightGrad, l}, 0);
      if (p > best) {
        best = p;
        best_layer = l;
      }
    }
    table.Row({region.name, StrFormat("%.2f", ToMs(profiler.MainDuration(r))),
               StrFormat("%.0f%%", 100 * avg_occ),
               best_layer >= 0 ? model.layers[best_layer].name : "-",
               StrFormat("%.2fx", best)});
    if (avg_occ > 0.9) {
      best_high_occ_speedup = std::max(best_high_occ_speedup, best);
    } else {
      best_low_occ_speedup = std::max(best_low_occ_speedup, best);
    }
  }

  // Paper's thread-block anecdote: DenseBlock-4 3x3 dW kernels run a few
  // hundred blocks against the 1,520-slot capacity.
  for (const Layer& l : model.layers) {
    if (l.block == "denseblock4" && l.name.ends_with("conv3x3")) {
      std::printf("\n%s: dW kernel %.0f thread blocks (capacity %d)\n",
                  l.name.c_str(), l.wgrad_blocks, gpu.slot_capacity());
      break;
    }
  }

  ShapeCheck("best speedup in an underutilized region (paper ~1.10)", 1.10,
             best_low_occ_speedup);
  std::printf("  (saturated regions: best co-run speedup %.2fx — overhead-"
              "only, paper ~1.06)\n",
              best_high_occ_speedup);
  return 0;
}
