// Simulated GPU device: priority streams feeding a fluid SM-slot processor.
//
// Kernels are enqueued onto streams at simulation time (the CpuLauncher does
// this with realistic per-op issue latency). Within a stream kernels execute
// strictly in order — CUDA stream semantics. A kernel starts once
//   (a) it reaches the head of its stream,
//   (b) every cross-stream dependency has completed (cudaStreamWaitEvent),
// then pays the per-kernel execution overhead (SM setup gap) and finally
// occupies up to `thread_blocks` SM slots until its work drains. Slots are
// shared with concurrently running kernels of other streams by priority
// (see sim/fluid.h), reproducing main-stream / sub-stream co-execution.

#ifndef OOBP_SRC_HW_GPU_H_
#define OOBP_SRC_HW_GPU_H_

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/hw/gpu_spec.h"
#include "src/sim/engine.h"
#include "src/sim/fluid.h"
#include "src/trace/trace.h"

namespace oobp {

using StreamId = int;
using KernelId = int64_t;

// Average SM-slot occupancy of a kernel with `blocks` thread blocks on a
// device with `capacity` slots. Thread blocks execute in ceil(blocks /
// capacity) waves, and the last wave runs partially empty — the "tail
// underutilization" of Section 2. A kernel with 1,600 blocks on a 1,520-slot
// device averages only 800 occupied slots, leaving room for a co-scheduled
// sub-stream kernel; one with an exact multiple of the capacity leaves none.
inline double EffectiveOccupancy(double blocks, double capacity) {
  const double waves = blocks <= capacity ? 1.0 : std::ceil(blocks / capacity);
  return blocks / waves;
}

struct KernelDesc {
  std::string name;
  std::string category;      // trace category: "fwd", "dO", "dW", ...
  TimeNs solo_duration = 0;  // execution time when run alone on the device
  double thread_blocks = 0;  // occupancy cap (SM slots the kernel can fill)
  std::vector<KernelId> deps;  // cross-stream dependencies (must be enqueued)
};

class Gpu;

// Passive per-event observer, attached by the validation layer (see
// src/hw/validation_hooks.h and src/validate/). Callbacks fire after the
// GPU's own bookkeeping for the event, so observers can query the public
// accessors for consistent state. Observers must not mutate the GPU. An
// attached observer must outlive the Gpu (the destructor notifies it).
class GpuObserver {
 public:
  virtual ~GpuObserver() = default;
  // `deps` is the resolved dependency span for this enqueue (valid only for
  // the duration of the call; it may differ from KernelDescOf(id).deps when
  // the span-based Enqueue overload was used).
  virtual void OnKernelEnqueued(const Gpu& gpu, KernelId id,
                                const KernelId* deps, size_t num_deps) {
    (void)gpu, (void)id, (void)deps, (void)num_deps;
  }
  virtual void OnKernelStarted(const Gpu& gpu, KernelId id) {
    (void)gpu, (void)id;
  }
  virtual void OnKernelFinished(const Gpu& gpu, KernelId id) {
    (void)gpu, (void)id;
  }
  virtual void OnGpuDestroyed(const Gpu& gpu) { (void)gpu; }
};

class Gpu {
 public:
  // `trace` may be null. Stream `s` traces onto track `trace_track_base + s`.
  Gpu(SimEngine* engine, GpuSpec spec, TraceRecorder* trace = nullptr,
      int trace_track_base = 0);
  ~Gpu();
  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  // Lower `priority` preempts higher in SM slot allocation.
  StreamId CreateStream(int priority);

  // Enqueues at the current simulation time; returns a handle usable as a
  // dependency of later kernels. Dependencies must already be enqueued.
  KernelId Enqueue(StreamId stream, KernelDesc desc);

  // Same, with dependencies passed as a span instead of desc.deps. A caller
  // issuing many kernels can reuse one scratch buffer; the ids are consumed
  // during the call and not retained.
  KernelId Enqueue(StreamId stream, KernelDesc desc, const KernelId* deps,
                   size_t num_deps);

  // Pre-sizes the kernel table for `n` further Enqueue calls (optional; a
  // launcher that knows its sequence length avoids repeated regrowth of the
  // per-kernel records).
  void ReserveKernels(size_t n) { kernels_.reserve(kernels_.size() + n); }

  bool Done(KernelId id) const;
  // Completion timestamp; kernel must be done.
  TimeNs CompletionTime(KernelId id) const;
  // Execution start timestamp (after the per-kernel setup gap); the kernel
  // must have started. The serving metrics use start/completion pairs to
  // separate queueing from contended execution time.
  TimeNs StartTime(KernelId id) const;

  // Called once per kernel completion, after internal bookkeeping; multiple
  // listeners run in registration order.
  void AddKernelDoneListener(std::function<void(KernelId)> cb) {
    done_listeners_.push_back(std::move(cb));
  }

  const GpuSpec& spec() const { return spec_; }
  int num_streams() const { return static_cast<int>(streams_.size()); }
  size_t kernels_enqueued() const { return kernels_.size(); }
  size_t kernels_completed() const { return completed_; }

  // SM-slot busy integral (slot-ns); divide by capacity * elapsed for
  // utilization.
  double SmBusyIntegral() const { return slots_.busy_integral(); }

  // Records every SM busy-integral increment (see FluidProcessor::
  // set_busy_recorder); used by the steady-state replay optimization to
  // re-fold the exact utilization of an extrapolated run.
  void SetBusyRecorder(std::vector<BusyIncrement>* recorder) {
    slots_.set_busy_recorder(recorder);
  }

  // Read-only accessors for validators and tests.
  const SimEngine& engine() const { return *engine_; }
  const FluidProcessor& slots() const { return slots_; }
  bool Started(KernelId id) const;
  StreamId KernelStream(KernelId id) const;
  TimeNs KernelEnqueueTime(KernelId id) const;
  const KernelDesc& KernelDescOf(KernelId id) const;
  int StreamPriority(StreamId stream) const;

  // At most one observer; pass nullptr to detach. Normally installed through
  // the thread-local validation hooks, not called directly.
  void SetObserver(GpuObserver* observer) { observer_ = observer; }

 private:
  struct Kernel {
    KernelDesc desc;
    StreamId stream = 0;
    TimeNs enqueue_time = 0;
    TimeNs start_time = -1;  // after setup overhead
    TimeNs done_time = -1;
    bool started = false;
    bool done = false;
    int deps_pending = 0;
    // Kernels waiting on this one. Nearly every kernel has exactly one
    // dependent (its stream successor's cross-stream wait), so the first is
    // stored inline and only the rare extras hit the heap.
    KernelId first_dependent = -1;
    std::vector<KernelId> more_dependents;

    void AddDependent(KernelId id) {
      if (first_dependent < 0) {
        first_dependent = id;
      } else {
        more_dependents.push_back(id);
      }
    }
  };
  struct Stream {
    int priority = 0;
    std::deque<KernelId> queue;  // head is next to run
    bool head_dispatched = false;
  };

  // Starts the stream head if it is ready; otherwise waits for deps.
  void MaybeDispatch(StreamId stream);
  void BeginExecution(KernelId id);
  void FinishKernel(KernelId id);

  SimEngine* engine_;
  GpuSpec spec_;
  TraceRecorder* trace_;
  int trace_track_base_;
  FluidProcessor slots_;
  std::vector<Stream> streams_;
  std::vector<Kernel> kernels_;
  size_t completed_ = 0;
  std::vector<std::function<void(KernelId)>> done_listeners_;
  GpuObserver* observer_ = nullptr;
};

}  // namespace oobp

#endif  // OOBP_SRC_HW_GPU_H_
