// Cross-LP communication channel for the sharded simulator.
//
// A CommChannel wraps a priority-preemptive Link (src/hw/link.h) that lives
// entirely inside the *source* logical process: transfers are submitted and
// serialized on the source LP's SimEngine, so the link's chunking,
// priority-preemption, and commit-window behavior are simulated exactly as
// in the single-engine case. What crosses the LP boundary is only the
// completed delivery: when a transfer finishes at source time d, the
// delivery callback is buffered in an outbox, and the ShardedSim
// coordinator injects it into the destination LP's engine at time d between
// conservative-sync rounds (workers quiesced, channel index order — fully
// deterministic).
//
// Lookahead accounting (the Chandy–Misra bound): the channel reports two
// quantities the coordinator's fixed-point horizon computation combines
// (src/sim/sharded.h):
//
//     PendingBound = earliest outbox delivery time, and — if a transfer is
//                    in flight — the next source event time (its completion
//                    IS a source event); TimeNs max when neither applies
//     latency      = the link's propagation latency: any *future* Transfer()
//                    is made by some source event and pays this latency
//                    before its first chunk, so it is the channel's
//                    lookahead window
//
// This is also why Link::latency must be >= 1ns for cross-LP channels: it is
// the strictly positive lookahead window that lets the destination run
// ahead of the source at all, and it guarantees exact-time microsteps (see
// src/sim/sharded.h) never generate same-time cross-LP deliveries.

#ifndef OOBP_SRC_HW_COMM_CHANNEL_H_
#define OOBP_SRC_HW_COMM_CHANNEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/hw/link.h"
#include "src/sim/engine.h"
#include "src/sim/sharded.h"

namespace oobp {

class CommChannel : public CrossLpChannel {
 public:
  // `src_engine` must be LP `src_lp`'s engine; the Link is constructed on
  // it. Deliveries are injected into dst by the coordinator, never by this
  // class on its own.
  CommChannel(SimEngine* src_engine, int src_lp, int dst_lp, LinkSpec spec,
              int64_t chunk_bytes = 1 << 20,
              int64_t commit_window_bytes = 0);

  // Submits `bytes` on the link (lower `priority` first) and arranges for
  // `on_delivered` to run in the destination LP at the completion time.
  // Must be called from the source LP's execution context (i.e. inside one
  // of its event callbacks, or while the coordinator holds the barrier).
  Link::TransferId Send(int64_t bytes, int priority, std::string name,
                        SimEngine::Callback on_delivered);

  // CrossLpChannel:
  int src_lp() const override { return src_lp_; }
  int dst_lp() const override { return dst_lp_; }
  TimeNs latency() const override { return link_.spec().latency; }
  TimeNs PendingBound() const override;
  size_t DrainInto(SimEngine* dst) override;
  size_t undelivered() const override {
    return outbox_.size() + static_cast<size_t>(inflight_);
  }

  const Link& link() const { return link_; }
  int64_t total_sent_bytes() const { return total_sent_bytes_; }
  int64_t deliveries() const { return deliveries_; }

 private:
  struct Delivery {
    TimeNs time = 0;
    SimEngine::Callback cb;
  };

  SimEngine* src_engine_;
  const int src_lp_;
  const int dst_lp_;
  Link link_;
  std::vector<Delivery> outbox_;  // completion order == source event order
  int64_t inflight_ = 0;
  int64_t total_sent_bytes_ = 0;
  int64_t deliveries_ = 0;
};

}  // namespace oobp

#endif  // OOBP_SRC_HW_COMM_CHANNEL_H_
