#include "src/hw/gpu.h"

#include <algorithm>
#include <utility>

#include "src/hw/validation_hooks.h"

namespace oobp {

Gpu::Gpu(SimEngine* engine, GpuSpec spec, TraceRecorder* trace,
         int trace_track_base)
    : engine_(engine),
      spec_(std::move(spec)),
      trace_(trace),
      trace_track_base_(trace_track_base),
      slots_(engine, static_cast<double>(spec_.slot_capacity())) {
  OOBP_CHECK(engine != nullptr);
  OOBP_CHECK_GT(spec_.slot_capacity(), 0);
  if (HwValidationHooks* hooks = ActiveHwValidationHooks()) {
    hooks->OnGpuCreated(this);
  }
}

Gpu::~Gpu() {
  if (observer_ != nullptr) {
    observer_->OnGpuDestroyed(*this);
  }
}

StreamId Gpu::CreateStream(int priority) {
  Stream s;
  s.priority = priority;
  streams_.push_back(std::move(s));
  return static_cast<StreamId>(streams_.size() - 1);
}

KernelId Gpu::Enqueue(StreamId stream, KernelDesc desc) {
  // desc.deps survives the move below (the buffer travels with the vector),
  // so the span stays valid for the duration of the call.
  const KernelId* deps = desc.deps.data();
  const size_t num_deps = desc.deps.size();
  return Enqueue(stream, std::move(desc), deps, num_deps);
}

KernelId Gpu::Enqueue(StreamId stream, KernelDesc desc, const KernelId* deps,
                      size_t num_deps) {
  OOBP_CHECK_GE(stream, 0);
  OOBP_CHECK_LT(stream, static_cast<StreamId>(streams_.size()));
  OOBP_CHECK_GE(desc.solo_duration, 0);
  OOBP_CHECK_GT(desc.thread_blocks, 0.0);

  const KernelId id = static_cast<KernelId>(kernels_.size());
  Kernel k;
  k.stream = stream;
  k.enqueue_time = engine_->now();
  for (size_t d = 0; d < num_deps; ++d) {
    const KernelId dep = deps[d];
    OOBP_CHECK_GE(dep, 0);
    OOBP_CHECK_LT(dep, id) << "dependencies must be enqueued before dependents";
    if (!kernels_[dep].done) {
      ++k.deps_pending;
      kernels_[dep].AddDependent(id);
    }
  }
  k.desc = std::move(desc);
  kernels_.push_back(std::move(k));
  streams_[stream].queue.push_back(id);
  MaybeDispatch(stream);
  if (observer_ != nullptr) {
    observer_->OnKernelEnqueued(*this, id, deps, num_deps);
  }
  return id;
}

bool Gpu::Done(KernelId id) const {
  OOBP_CHECK_GE(id, 0);
  OOBP_CHECK_LT(id, static_cast<KernelId>(kernels_.size()));
  return kernels_[id].done;
}

TimeNs Gpu::CompletionTime(KernelId id) const {
  OOBP_CHECK(Done(id));
  return kernels_[id].done_time;
}

TimeNs Gpu::StartTime(KernelId id) const {
  OOBP_CHECK_GE(id, 0);
  OOBP_CHECK_LT(id, static_cast<KernelId>(kernels_.size()));
  OOBP_CHECK(kernels_[id].started);
  return kernels_[id].start_time;
}

bool Gpu::Started(KernelId id) const {
  OOBP_CHECK_GE(id, 0);
  OOBP_CHECK_LT(id, static_cast<KernelId>(kernels_.size()));
  return kernels_[id].started;
}

StreamId Gpu::KernelStream(KernelId id) const {
  OOBP_CHECK_GE(id, 0);
  OOBP_CHECK_LT(id, static_cast<KernelId>(kernels_.size()));
  return kernels_[id].stream;
}

TimeNs Gpu::KernelEnqueueTime(KernelId id) const {
  OOBP_CHECK_GE(id, 0);
  OOBP_CHECK_LT(id, static_cast<KernelId>(kernels_.size()));
  return kernels_[id].enqueue_time;
}

const KernelDesc& Gpu::KernelDescOf(KernelId id) const {
  OOBP_CHECK_GE(id, 0);
  OOBP_CHECK_LT(id, static_cast<KernelId>(kernels_.size()));
  return kernels_[id].desc;
}

int Gpu::StreamPriority(StreamId stream) const {
  OOBP_CHECK_GE(stream, 0);
  OOBP_CHECK_LT(stream, static_cast<StreamId>(streams_.size()));
  return streams_[stream].priority;
}

void Gpu::MaybeDispatch(StreamId stream) {
  Stream& s = streams_[stream];
  if (s.head_dispatched || s.queue.empty()) {
    return;
  }
  const KernelId id = s.queue.front();
  Kernel& k = kernels_[id];
  if (k.deps_pending > 0) {
    return;  // FinishKernel of the last dependency re-triggers dispatch
  }
  s.head_dispatched = true;
  // Per-kernel SM setup gap before the kernel occupies slots.
  engine_->ScheduleAfter(spec_.kernel_exec_overhead,
                         [this, id] { BeginExecution(id); });
}

void Gpu::BeginExecution(KernelId id) {
  Kernel& k = kernels_[id];
  k.started = true;
  k.start_time = engine_->now();
  const double max_rate = EffectiveOccupancy(
      k.desc.thread_blocks, static_cast<double>(spec_.slot_capacity()));
  // A kernel running alone progresses at `max_rate` slots, so its total work
  // in slot-ns equals solo_duration * max_rate.
  const double work = static_cast<double>(k.desc.solo_duration) * max_rate;
  const int priority = streams_[k.stream].priority;
  slots_.Add(work, max_rate, priority, [this, id] { FinishKernel(id); });
  if (observer_ != nullptr) {
    observer_->OnKernelStarted(*this, id);
  }
}

void Gpu::FinishKernel(KernelId id) {
  // Callbacks below (dependents, on_kernel_done_) may Enqueue new kernels and
  // reallocate kernels_, so copy everything needed out of the record first.
  StreamId stream;
  KernelId first_dependent;
  std::vector<KernelId> more_dependents;
  {
    Kernel& k = kernels_[id];
    k.done = true;
    k.done_time = engine_->now();
    ++completed_;
    stream = k.stream;
    // The dependent list is never read again once the kernel is done (later
    // Enqueues see k.done and skip it), so steal it instead of copying.
    first_dependent = k.first_dependent;
    more_dependents = std::move(k.more_dependents);

    if (trace_ != nullptr) {
      TraceEvent ev;
      ev.name = k.desc.name;
      ev.category = k.desc.category;
      ev.track = trace_track_base_ + k.stream;
      ev.start = k.start_time;
      ev.duration = k.done_time - k.start_time;
      trace_->Add(ev);
    }
  }
  if (observer_ != nullptr) {
    observer_->OnKernelFinished(*this, id);
  }

  Stream& s = streams_[stream];
  OOBP_CHECK(!s.queue.empty());
  OOBP_CHECK_EQ(s.queue.front(), id);
  s.queue.pop_front();
  s.head_dispatched = false;

  // Wake dependents whose last dependency this was.
  const auto wake = [this](KernelId dep_id) {
    Kernel& d = kernels_[dep_id];
    OOBP_CHECK_GT(d.deps_pending, 0);
    if (--d.deps_pending == 0) {
      MaybeDispatch(d.stream);
    }
  };
  if (first_dependent >= 0) {
    wake(first_dependent);
  }
  for (KernelId dep_id : more_dependents) {
    wake(dep_id);
  }
  for (const auto& listener : done_listeners_) {
    listener(id);
  }
  MaybeDispatch(stream);
}

}  // namespace oobp
