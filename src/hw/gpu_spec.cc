#include "src/hw/gpu_spec.h"

namespace oobp {

GpuSpec GpuSpec::V100() {
  GpuSpec spec;
  spec.name = "V100";
  spec.num_sms = 80;
  // The paper reports the V100 SMs "are capable of running 1,520 of the
  // thread blocks" for the DenseBlock-4 weight-gradient kernels, i.e. 19
  // resident blocks per SM at that kernel's occupancy.
  spec.blocks_per_sm = 19;
  spec.fp32_tflops = 15.7;
  spec.mem_bandwidth_gbps = 900.0;
  spec.mem_bytes = 16LL * 1024 * 1024 * 1024;
  spec.kernel_exec_overhead = Us(1.5);
  return spec;
}

GpuSpec GpuSpec::P100() {
  GpuSpec spec;
  spec.name = "P100";
  spec.num_sms = 56;
  spec.blocks_per_sm = 16;
  spec.fp32_tflops = 9.5;
  spec.mem_bandwidth_gbps = 732.0;
  spec.mem_bytes = 16LL * 1024 * 1024 * 1024;
  spec.kernel_exec_overhead = Us(1.8);
  return spec;
}

GpuSpec GpuSpec::TitanXp() {
  GpuSpec spec;
  spec.name = "TitanXp";
  spec.num_sms = 30;
  spec.blocks_per_sm = 16;
  spec.fp32_tflops = 12.1;
  spec.mem_bandwidth_gbps = 548.0;
  spec.mem_bytes = 12LL * 1024 * 1024 * 1024;
  spec.kernel_exec_overhead = Us(2.0);
  return spec;
}

}  // namespace oobp
