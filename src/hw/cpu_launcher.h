// CPU-side kernel issue model (the deep learning framework's executor).
//
// Deep learning systems traverse the computation graph on the host and
// asynchronously issue GPU kernels; when per-kernel issue latency exceeds
// kernel execution time the GPU starves (Section 2, Figures 1 and 2). The
// launcher models two regimes:
//  * kPerOp      — each kernel costs its own host issue latency, issued
//                  back-to-back by a single executor thread (TensorFlow /
//                  PyTorch / MXNet executors);
//  * kPrecompiled — the whole sequence was captured into an executable graph
//                  and is enqueued after one small graph-launch latency
//                  (CUDA Graph API; the paper's "pre-compiled kernel issue",
//                  also used by Nimble).

#ifndef OOBP_SRC_HW_CPU_LAUNCHER_H_
#define OOBP_SRC_HW_CPU_LAUNCHER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/hw/gpu.h"
#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace oobp {

// One kernel to issue. Dependencies are expressed as indices into the issue
// sequence (they must point at earlier items); the launcher resolves them to
// KernelIds at enqueue time. Dependencies are stored inline (a kernel waits
// on at most a handful of events), so building an issue sequence performs no
// per-item allocation.
struct IssueItem {
  static constexpr int kMaxDeps = 4;

  StreamId stream = 0;
  std::string name;
  std::string category;
  TimeNs solo_duration = 0;
  double thread_blocks = 1.0;
  size_t dep_items[kMaxDeps];
  int num_deps = 0;
  TimeNs issue_latency = 0;  // host-side cost to issue this kernel (kPerOp)

  void AddDep(size_t item_index) {
    OOBP_CHECK_LT(num_deps, kMaxDeps);
    dep_items[num_deps++] = item_index;
  }
};

class CpuLauncher {
 public:
  enum class Mode {
    kPerOp,
    kPrecompiled,
  };

  // `trace` may be null; issue activity is recorded on `issue_track`.
  // `max_outstanding` bounds how many issued-but-unfinished kernels the
  // executor may have in flight in kPerOp mode (0 = unbounded): real
  // framework executors only run a bounded distance ahead of the GPU, which
  // is why issue latency becomes visible in short-kernel regions (Figure 2).
  CpuLauncher(SimEngine* engine, Gpu* gpu, Mode mode,
              TimeNs graph_launch_latency = Us(5),
              TraceRecorder* trace = nullptr, int issue_track = 100,
              int max_outstanding = 0);

  // Starts issuing `items` at the current simulation time. `on_issued(i, id)`
  // reports the KernelId assigned to item i; `on_all_issued` fires when the
  // executor thread finishes the sequence. At most one Launch may be active.
  void Launch(std::vector<IssueItem> items,
              std::function<void(size_t, KernelId)> on_issued = nullptr,
              std::function<void()> on_all_issued = nullptr);

  bool active() const { return active_; }
  // Host time spent issuing during the last (or current) launch.
  TimeNs issue_busy_time() const { return issue_busy_; }

 private:
  void IssueNext();
  KernelId EnqueueItem(size_t index);

  SimEngine* engine_;
  Gpu* gpu_;
  Mode mode_;
  TimeNs graph_launch_latency_;
  TraceRecorder* trace_;
  int issue_track_;
  int max_outstanding_;

  bool active_ = false;
  bool blocked_on_queue_ = false;
  int in_flight_ = 0;
  size_t next_index_ = 0;
  TimeNs issue_busy_ = 0;
  std::vector<IssueItem> items_;
  std::vector<KernelId> item_kernel_ids_;
  std::function<void(size_t, KernelId)> on_issued_;
  std::function<void()> on_all_issued_;
};

}  // namespace oobp

#endif  // OOBP_SRC_HW_CPU_LAUNCHER_H_
