// Point-to-point communication link with chunked, priority-preemptive
// transfer scheduling.
//
// The link serializes bytes at a fixed bandwidth. Messages are split into
// chunks; after each chunk the link re-selects the highest-priority pending
// message, so a newly arrived high-priority transfer preempts a bulk one at
// chunk granularity. This is the semantics communication schedulers such as
// BytePS / ByteScheduler / P3 implement (tensor partitioning + priority
// queues), which reverse first-k scheduling builds on. A message pays the
// propagation latency once, ahead of its first chunk.

#ifndef OOBP_SRC_HW_LINK_H_
#define OOBP_SRC_HW_LINK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "src/common/time.h"
#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace oobp {

struct LinkSpec {
  std::string name;
  double bandwidth_gbps = 0.0;  // GB/s (bytes * 1e9 per second)
  TimeNs latency = 0;           // per-message propagation latency

  // Interconnects from the paper's evaluation (Section 8.4.1 gives the
  // NVLink/PCIe/Ethernet bandwidths used for the BERT-24 experiment).
  static LinkSpec NvLink();   // 50 GB/s
  static LinkSpec PcIe3();    // 16 GB/s
  static LinkSpec Eth10G();   // 1.25 GB/s
  static LinkSpec Eth20G();   // 2.5 GB/s
  static LinkSpec Eth25G();   // 3.125 GB/s
};

class Link;

// Passive per-transfer observer, attached by the validation layer (see
// src/hw/validation_hooks.h and src/validate/). Same contract as GpuObserver:
// callbacks fire after the link's own bookkeeping, observers must not mutate
// the link and must outlive it.
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  virtual void OnTransferSubmitted(const Link& link, int64_t id, int64_t bytes,
                                   int priority) {
    (void)link, (void)id, (void)bytes, (void)priority;
  }
  virtual void OnTransferCompleted(const Link& link, int64_t id) {
    (void)link, (void)id;
  }
  virtual void OnLinkDestroyed(const Link& link) { (void)link; }
};

class Link {
 public:
  using TransferId = int64_t;

  // `trace` may be null; transfers are recorded on `track`.
  //
  // `commit_window_bytes` models the transport's non-preemptible queue
  // (socket buffers, RDMA work queues, the server-side pipeline): messages
  // are drawn from the priority queue into a FIFO "committed" region of at
  // most this many bytes, inside which reordering is no longer possible. A
  // high-priority message therefore bypasses the *backlog* but still waits
  // for up to one window of committed bytes — the reason the paper's
  // first-layer synchronization takes hundreds of milliseconds even under
  // priority scheduling (Section 8.3). 0 = fully preemptible at chunk
  // granularity.
  Link(SimEngine* engine, LinkSpec spec, int64_t chunk_bytes = 1 << 20,
       TraceRecorder* trace = nullptr, int track = 200,
       int64_t commit_window_bytes = 0);
  ~Link();
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Submits a transfer; lower `priority` values transmit first. The returned
  // id identifies the transfer in queries.
  TransferId Transfer(int64_t bytes, int priority, std::string name,
                      std::function<void()> on_complete);

  bool Done(TransferId id) const;
  bool idle() const { return !busy_; }
  size_t pending() const { return pending_.size(); }
  TimeNs busy_time() const { return busy_time_; }
  const LinkSpec& spec() const { return spec_; }
  const SimEngine& engine() const { return *engine_; }

  // At most one observer; pass nullptr to detach. Normally installed through
  // the thread-local validation hooks, not called directly.
  void SetObserver(LinkObserver* observer) { observer_ = observer; }

  // Nanoseconds to move `bytes` at link bandwidth (excluding latency).
  TimeNs SerializationTime(int64_t bytes) const;

 private:
  struct Message {
    int64_t remaining = 0;
    int64_t total = 0;
    int priority = 0;
    TransferId seq = 0;
    std::string name;
    TimeNs first_start = -1;
    bool latency_paid = false;
    std::function<void()> on_complete;
  };

  // Moves messages from the priority queue into the committed FIFO while the
  // window has room, then transmits the committed head.
  void RefillAndStart();
  void StartNextChunk();

  SimEngine* engine_;
  LinkSpec spec_;
  int64_t chunk_bytes_;
  TraceRecorder* trace_;
  int track_;
  int64_t commit_window_bytes_;

  bool busy_ = false;
  TimeNs busy_time_ = 0;
  TransferId next_id_ = 1;
  // Priority-ordered backlog, keyed by (priority, seq).
  std::map<std::pair<int, TransferId>, Message> pending_;
  // Non-preemptible committed region (FIFO), bounded by the commit window.
  std::deque<Message> committed_;
  int64_t committed_bytes_ = 0;
  int64_t completed_count_ = 0;
  std::map<TransferId, bool> done_;
  LinkObserver* observer_ = nullptr;
};

}  // namespace oobp

#endif  // OOBP_SRC_HW_LINK_H_
