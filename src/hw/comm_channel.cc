#include "src/hw/comm_channel.h"

#include <limits>
#include <utility>

#include "src/common/check.h"

namespace oobp {

namespace {
constexpr TimeNs kNever = std::numeric_limits<TimeNs>::max();
}  // namespace

CommChannel::CommChannel(SimEngine* src_engine, int src_lp, int dst_lp,
                         LinkSpec spec, int64_t chunk_bytes,
                         int64_t commit_window_bytes)
    : src_engine_(src_engine),
      src_lp_(src_lp),
      dst_lp_(dst_lp),
      link_(src_engine, spec, chunk_bytes, /*trace=*/nullptr, /*track=*/200,
            commit_window_bytes) {
  OOBP_CHECK(src_engine != nullptr);
  // The propagation latency is the channel's lookahead window; zero-latency
  // cross-LP channels would force fully serial execution and break the
  // microstep's strictly-later-delivery guarantee.
  OOBP_CHECK_GE(spec.latency, 1);
  OOBP_CHECK_NE(src_lp, dst_lp);
}

Link::TransferId CommChannel::Send(int64_t bytes, int priority,
                                   std::string name,
                                   SimEngine::Callback on_delivered) {
  ++inflight_;
  total_sent_bytes_ += bytes;
  // The completion callback runs inside the source LP (it is a source
  // engine event); it only moves the delivery into the outbox. The
  // coordinator later re-schedules it at the same timestamp on the
  // destination engine, preserving the delivery time exactly.
  auto cb = std::make_shared<SimEngine::Callback>(std::move(on_delivered));
  return link_.Transfer(bytes, priority, std::move(name), [this, cb] {
    outbox_.push_back({src_engine_->now(), std::move(*cb)});
    --inflight_;
  });
}

TimeNs CommChannel::PendingBound() const {
  // Outbox completion order follows source event order, so the front entry
  // is the earliest buffered delivery. An in-flight transfer's completion
  // is itself a pending source event, so the next source event time
  // lower-bounds it.
  TimeNs bound = outbox_.empty() ? kNever : outbox_.front().time;
  if (inflight_ > 0) {
    bound = std::min(bound, src_engine_->NextEventTime());
  }
  return bound;
}

size_t CommChannel::DrainInto(SimEngine* dst) {
  const size_t count = outbox_.size();
  for (Delivery& d : outbox_) {
    dst->ScheduleAt(d.time, std::move(d.cb));
  }
  outbox_.clear();
  deliveries_ += static_cast<int64_t>(count);
  return count;
}

}  // namespace oobp
