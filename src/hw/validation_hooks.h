// Thread-local attachment point for simulation validators.
//
// The validation layer (src/validate) wants to observe every simulated
// device a scenario constructs without the engines having to thread a
// validator pointer through every config struct. Devices announce their
// construction here; when no hooks are installed (the default) the check is
// a single null-pointer test per device *construction* — the per-event hot
// path is an untaken `observer_ == nullptr` branch, so golden outputs stay
// byte-identical with validation off.
//
// The registration is thread-local because the parallel scenario runner
// executes scenarios on a thread pool: each scenario's simulations are
// single-threaded, so a per-thread active validator is race-free and two
// concurrently running scenarios can be validated independently.

#ifndef OOBP_SRC_HW_VALIDATION_HOOKS_H_
#define OOBP_SRC_HW_VALIDATION_HOOKS_H_

namespace oobp {

class Gpu;
class Link;

// Implemented by the validation layer; devices built while hooks are active
// report themselves so the validator can attach per-event observers.
class HwValidationHooks {
 public:
  virtual ~HwValidationHooks() = default;
  virtual void OnGpuCreated(Gpu* gpu) = 0;
  virtual void OnLinkCreated(Link* link) = 0;
};

// The calling thread's active hooks; nullptr (the default) disables
// validation.
HwValidationHooks* ActiveHwValidationHooks();

// Installs `hooks` for this thread and returns the previous value so the
// caller can restore it (ValidationScope in src/validate does this
// RAII-style). Passing nullptr deactivates validation.
HwValidationHooks* SetHwValidationHooks(HwValidationHooks* hooks);

}  // namespace oobp

#endif  // OOBP_SRC_HW_VALIDATION_HOOKS_H_
