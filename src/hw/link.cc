#include "src/hw/link.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/hw/validation_hooks.h"

namespace oobp {

LinkSpec LinkSpec::NvLink() { return {"NVLink", 50.0, Us(2)}; }
LinkSpec LinkSpec::PcIe3() { return {"PCIe3", 16.0, Us(5)}; }
LinkSpec LinkSpec::Eth10G() { return {"10GbE", 1.25, Us(25)}; }
LinkSpec LinkSpec::Eth20G() { return {"20GbE", 2.5, Us(25)}; }
LinkSpec LinkSpec::Eth25G() { return {"25GbE", 3.125, Us(25)}; }

Link::Link(SimEngine* engine, LinkSpec spec, int64_t chunk_bytes,
           TraceRecorder* trace, int track, int64_t commit_window_bytes)
    : engine_(engine),
      spec_(std::move(spec)),
      chunk_bytes_(chunk_bytes),
      trace_(trace),
      track_(track),
      commit_window_bytes_(commit_window_bytes) {
  OOBP_CHECK(engine != nullptr);
  OOBP_CHECK_GT(spec_.bandwidth_gbps, 0.0);
  OOBP_CHECK_GT(chunk_bytes, 0);
  OOBP_CHECK_GE(commit_window_bytes, 0);
  if (HwValidationHooks* hooks = ActiveHwValidationHooks()) {
    hooks->OnLinkCreated(this);
  }
}

Link::~Link() {
  if (observer_ != nullptr) {
    observer_->OnLinkDestroyed(*this);
  }
}

TimeNs Link::SerializationTime(int64_t bytes) const {
  OOBP_CHECK_GE(bytes, 0);
  if (bytes == 0) {
    return 0;
  }
  // bandwidth_gbps is GB/s == bytes/ns.
  const double ns = static_cast<double>(bytes) / spec_.bandwidth_gbps;
  return std::max<TimeNs>(1, static_cast<TimeNs>(std::ceil(ns)));
}

Link::TransferId Link::Transfer(int64_t bytes, int priority, std::string name,
                                std::function<void()> on_complete) {
  OOBP_CHECK_GT(bytes, 0);
  const TransferId id = next_id_++;
  Message msg;
  msg.remaining = bytes;
  msg.total = bytes;
  msg.priority = priority;
  msg.seq = id;
  msg.name = std::move(name);
  msg.on_complete = std::move(on_complete);
  pending_.emplace(std::make_pair(priority, id), std::move(msg));
  done_[id] = false;
  if (observer_ != nullptr) {
    observer_->OnTransferSubmitted(*this, id, bytes, priority);
  }
  RefillAndStart();
  return id;
}

bool Link::Done(TransferId id) const {
  auto it = done_.find(id);
  OOBP_CHECK(it != done_.end()) << "unknown transfer id " << id;
  return it->second;
}

void Link::RefillAndStart() {
  // Draw the highest-priority pending messages into the committed FIFO. With
  // no window configured, commit one message at a time so each chunk
  // boundary re-consults the priority queue (full preemptibility).
  if (commit_window_bytes_ == 0) {
    if (committed_.empty() && !pending_.empty()) {
      committed_.push_back(std::move(pending_.begin()->second));
      committed_bytes_ += committed_.back().remaining;
      pending_.erase(pending_.begin());
    }
  } else {
    while (!pending_.empty() && committed_bytes_ < commit_window_bytes_) {
      committed_.push_back(std::move(pending_.begin()->second));
      committed_bytes_ += committed_.back().remaining;
      pending_.erase(pending_.begin());
    }
  }
  StartNextChunk();
}

void Link::StartNextChunk() {
  if (busy_ || committed_.empty()) {
    return;
  }
  busy_ = true;
  Message& msg = committed_.front();

  const int64_t chunk = std::min<int64_t>(chunk_bytes_, msg.remaining);
  TimeNs duration = SerializationTime(chunk);
  if (!msg.latency_paid) {
    duration += spec_.latency;
    msg.latency_paid = true;
    msg.first_start = engine_->now();
  }
  busy_time_ += duration;

  engine_->ScheduleAfter(duration, [this, chunk] {
    busy_ = false;
    OOBP_CHECK(!committed_.empty());
    Message& m = committed_.front();
    m.remaining -= chunk;
    committed_bytes_ -= chunk;
    if (m.remaining <= 0) {
      if (trace_ != nullptr) {
        TraceEvent ev;
        ev.name = m.name;
        ev.category = "comm";
        ev.track = track_;
        ev.start = m.first_start;
        ev.duration = engine_->now() - m.first_start;
        ev.args["bytes"] = std::to_string(m.total);
        trace_->Add(ev);
      }
      done_[m.seq] = true;
      ++completed_count_;
      if (observer_ != nullptr) {
        observer_->OnTransferCompleted(*this, m.seq);
      }
      auto cb = std::move(m.on_complete);
      committed_.pop_front();
      if (cb) {
        cb();
      }
    } else if (commit_window_bytes_ == 0) {
      // Fully preemptible mode: return the partially sent message to the
      // priority queue so a newly arrived higher-priority transfer can cut
      // in at the chunk boundary.
      Message back = std::move(committed_.front());
      committed_.pop_front();
      committed_bytes_ -= back.remaining;
      pending_.emplace(std::make_pair(back.priority, back.seq),
                       std::move(back));
    }
    RefillAndStart();
  });
}

}  // namespace oobp
