#include "src/hw/validation_hooks.h"

namespace oobp {

namespace {
thread_local HwValidationHooks* t_active_hooks = nullptr;
}  // namespace

HwValidationHooks* ActiveHwValidationHooks() { return t_active_hooks; }

HwValidationHooks* SetHwValidationHooks(HwValidationHooks* hooks) {
  HwValidationHooks* prev = t_active_hooks;
  t_active_hooks = hooks;
  return prev;
}

}  // namespace oobp
