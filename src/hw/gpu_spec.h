// Static GPU hardware parameters and presets for the three GPU models the
// paper evaluates on (NVIDIA Titan XP, P100, V100).
//
// Only properties the scheduling behaviour depends on are modelled:
//  * slot capacity (SMs x resident thread blocks per SM) — determines when a
//    kernel underutilizes the device and how much a co-scheduled sub-stream
//    kernel can absorb (Section 2, "idling SMs");
//  * peak FLOP rate and memory bandwidth — the roofline cost model converts
//    per-op FLOPs/bytes into kernel durations;
//  * kernel execution overhead — the 1-2us SM setup gap between consecutive
//    kernel executions (Section 2);
//  * memory capacity — drives the OOM entries of Figure 7.

#ifndef OOBP_SRC_HW_GPU_SPEC_H_
#define OOBP_SRC_HW_GPU_SPEC_H_

#include <cstdint>
#include <string>

#include "src/common/time.h"

namespace oobp {

struct GpuSpec {
  std::string name;
  int num_sms = 0;
  int blocks_per_sm = 0;          // resident thread-block capacity per SM
  double fp32_tflops = 0.0;       // peak arithmetic rate
  double mem_bandwidth_gbps = 0.0;  // GB/s, device memory
  int64_t mem_bytes = 0;          // device memory capacity
  TimeNs kernel_exec_overhead = 0;  // per-kernel SM setup gap

  int slot_capacity() const { return num_sms * blocks_per_sm; }

  // Presets matching the paper's evaluation hardware (Table 1/2).
  static GpuSpec V100();
  static GpuSpec P100();
  static GpuSpec TitanXp();
};

}  // namespace oobp

#endif  // OOBP_SRC_HW_GPU_SPEC_H_
