#include "src/hw/cpu_launcher.h"

#include <utility>

#include "src/common/check.h"

namespace oobp {

CpuLauncher::CpuLauncher(SimEngine* engine, Gpu* gpu, Mode mode,
                         TimeNs graph_launch_latency, TraceRecorder* trace,
                         int issue_track, int max_outstanding)
    : engine_(engine),
      gpu_(gpu),
      mode_(mode),
      graph_launch_latency_(graph_launch_latency),
      trace_(trace),
      issue_track_(issue_track),
      max_outstanding_(max_outstanding) {
  OOBP_CHECK(engine != nullptr);
  OOBP_CHECK(gpu != nullptr);
  OOBP_CHECK_GE(max_outstanding, 0);
  gpu_->AddKernelDoneListener([this](KernelId) {
    if (in_flight_ > 0) {
      --in_flight_;
    }
    if (blocked_on_queue_ && in_flight_ < max_outstanding_) {
      blocked_on_queue_ = false;
      IssueNext();
    }
  });
}

void CpuLauncher::Launch(std::vector<IssueItem> items,
                         std::function<void(size_t, KernelId)> on_issued,
                         std::function<void()> on_all_issued) {
  OOBP_CHECK(!active_) << "a launch is already in progress";
  active_ = true;
  next_index_ = 0;
  issue_busy_ = 0;
  items_ = std::move(items);
  item_kernel_ids_.assign(items_.size(), -1);
  gpu_->ReserveKernels(items_.size());
  on_issued_ = std::move(on_issued);
  on_all_issued_ = std::move(on_all_issued);

  if (mode_ == Mode::kPrecompiled) {
    // One graph launch enqueues the entire captured sequence.
    issue_busy_ = graph_launch_latency_;
    engine_->ScheduleAfter(graph_launch_latency_, [this] {
      if (trace_ != nullptr && !items_.empty()) {
        TraceEvent ev;
        ev.name = "graph_launch";
        ev.category = "issue";
        ev.track = issue_track_;
        ev.start = engine_->now() - graph_launch_latency_;
        ev.duration = graph_launch_latency_;
        trace_->Add(ev);
      }
      for (size_t i = 0; i < items_.size(); ++i) {
        EnqueueItem(i);
      }
      active_ = false;
      if (on_all_issued_) {
        on_all_issued_();
      }
    });
    return;
  }
  IssueNext();
}

void CpuLauncher::IssueNext() {
  if (next_index_ >= items_.size()) {
    active_ = false;
    if (on_all_issued_) {
      on_all_issued_();
    }
    return;
  }
  if (max_outstanding_ > 0 && in_flight_ >= max_outstanding_) {
    blocked_on_queue_ = true;  // resume from the kernel-done listener
    return;
  }
  const size_t index = next_index_++;
  const TimeNs latency = items_[index].issue_latency;
  issue_busy_ += latency;
  engine_->ScheduleAfter(latency, [this, index, latency] {
    if (trace_ != nullptr) {
      TraceEvent ev;
      ev.name = "issue:" + items_[index].name;
      ev.category = "issue";
      ev.track = issue_track_;
      ev.start = engine_->now() - latency;
      ev.duration = latency;
      trace_->Add(ev);
    }
    EnqueueItem(index);
    IssueNext();
  });
}

KernelId CpuLauncher::EnqueueItem(size_t index) {
  IssueItem& item = items_[index];
  KernelDesc desc;
  // The item is never read again after this call (any trace event naming it
  // was emitted by the caller first), so its labels can be stolen.
  desc.name = std::move(item.name);
  desc.category = std::move(item.category);
  desc.solo_duration = item.solo_duration;
  desc.thread_blocks = item.thread_blocks;
  KernelId deps[IssueItem::kMaxDeps];
  for (int d = 0; d < item.num_deps; ++d) {
    const size_t dep = item.dep_items[d];
    OOBP_CHECK_LT(dep, index) << "dependency must precede dependent in issue order";
    OOBP_CHECK_GE(item_kernel_ids_[dep], 0);
    deps[d] = item_kernel_ids_[dep];
  }
  const KernelId id = gpu_->Enqueue(item.stream, std::move(desc), deps,
                                    static_cast<size_t>(item.num_deps));
  ++in_flight_;
  item_kernel_ids_[index] = id;
  if (on_issued_) {
    on_issued_(index, id);
  }
  return id;
}

}  // namespace oobp
