// Cluster topology descriptions matching Table 2 of the paper.
//
// A cluster is `num_nodes` machines with `gpus_per_node` GPUs each; GPUs in
// one node talk over `intra_node` (NVLink or PCIe), GPUs in different nodes
// over `inter_node` (Ethernet). Engines ask LinkBetween() for the spec of
// the bottleneck hop between two ranks.

#ifndef OOBP_SRC_HW_CLUSTER_H_
#define OOBP_SRC_HW_CLUSTER_H_

#include <string>

#include "src/common/check.h"
#include "src/hw/gpu_spec.h"
#include "src/hw/link.h"

namespace oobp {

struct ClusterSpec {
  std::string name;
  GpuSpec gpu;
  int gpus_per_node = 1;
  int num_nodes = 1;
  LinkSpec intra_node;
  LinkSpec inter_node;
  // Aggregate switch-fabric capacity in GB/s shared by all cross-node
  // traffic (0 = non-blocking fabric). Small private clusters are fabric-
  // limited: with n workers in an all-to-all parameter exchange, each sees
  // at most switch_bandwidth_gbps / n.
  double switch_bandwidth_gbps = 0.0;

  int total_gpus() const { return gpus_per_node * num_nodes; }
  int NodeOf(int rank) const {
    OOBP_CHECK_GE(rank, 0);
    OOBP_CHECK_LT(rank, total_gpus());
    return rank / gpus_per_node;
  }
  // Spec of the narrowest hop between two distinct ranks.
  LinkSpec LinkBetween(int rank_a, int rank_b) const {
    OOBP_CHECK_NE(rank_a, rank_b);
    return NodeOf(rank_a) == NodeOf(rank_b) ? intra_node : inter_node;
  }

  // Table 2 presets. `num_nodes` may be lowered to run on a cluster subset
  // (the scaling figures sweep GPU counts).
  static ClusterSpec PrivA(int nodes = 8);     // Titan XP (1x8), PCIe + 10GbE
  static ClusterSpec PrivB(int nodes = 20);    // P100 (1x20), PCIe + 20GbE
  static ClusterSpec PubA(int nodes = 12);     // V100 (4x12), NVLink + 10GbE
  static ClusterSpec PubB(int nodes = 5);      // V100 (8x5), NVLink + 25GbE
};

}  // namespace oobp

#endif  // OOBP_SRC_HW_CLUSTER_H_
