#include "src/hw/cluster.h"

namespace oobp {

ClusterSpec ClusterSpec::PrivA(int nodes) {
  ClusterSpec c;
  c.name = "Priv-A";
  c.gpu = GpuSpec::TitanXp();
  c.gpus_per_node = 1;
  c.num_nodes = nodes;
  c.intra_node = LinkSpec::PcIe3();
  c.inter_node = LinkSpec::Eth10G();
  c.switch_bandwidth_gbps = 4.0;  // modest ToR switch in the 8-node lab
  return c;
}

ClusterSpec ClusterSpec::PrivB(int nodes) {
  ClusterSpec c;
  c.name = "Priv-B";
  c.gpu = GpuSpec::P100();
  c.gpus_per_node = 1;
  c.num_nodes = nodes;
  c.intra_node = LinkSpec::PcIe3();
  c.inter_node = LinkSpec::Eth20G();
  c.switch_bandwidth_gbps = 6.0;  // 20 nodes oversubscribe the fabric
  return c;
}

ClusterSpec ClusterSpec::PubA(int nodes) {
  ClusterSpec c;
  c.name = "Pub-A";
  c.gpu = GpuSpec::V100();
  c.gpus_per_node = 4;
  c.num_nodes = nodes;
  c.intra_node = LinkSpec::NvLink();
  c.inter_node = LinkSpec::Eth10G();
  return c;
}

ClusterSpec ClusterSpec::PubB(int nodes) {
  ClusterSpec c;
  c.name = "Pub-B";
  c.gpu = GpuSpec::V100();
  c.gpus_per_node = 8;
  c.num_nodes = nodes;
  c.intra_node = LinkSpec::NvLink();
  c.inter_node = LinkSpec::Eth25G();
  return c;
}

}  // namespace oobp
