#include "src/search/fast_eval.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/hw/gpu.h"  // EffectiveOccupancy
#include "src/nn/model_cache.h"

namespace oobp {

namespace {

// Mirrors ScheduleEvaluator: one warm-up plus two measured iterations.
constexpr int kIterations = 3;
// Mirrors FluidProcessor's completion threshold exactly.
constexpr double kWorkEpsilon = 1e-6;
constexpr TimeNs kNoTime = std::numeric_limits<TimeNs>::max();
// Role-cursor / memory-liveness checkpoint spacing (schedule positions).
constexpr size_t kMetaStride = 32;
// Minimum item-index gap between consecutive sweep checkpoints.
constexpr int32_t kSweepStride = 16;

std::atomic<uint64_t> g_total_analytic_evals{0};

bool SameOp(const ScheduledOp& a, const ScheduledOp& b) {
  return a.op == b.op && a.stream == b.stream &&
         a.wait_for_index == b.wait_for_index;
}

// First position where `ops` disagrees with the cached copy (or one of them
// ends); min(sizes) when the shorter is a prefix of the longer.
size_t DiffPosition(const std::vector<ScheduledOp>& cached,
                    const std::vector<ScheduledOp>& ops) {
  const size_t bound = std::min(cached.size(), ops.size());
  size_t p = 0;
  while (p < bound && SameOp(cached[p], ops[p])) {
    ++p;
  }
  return p;
}

// Memory-liveness bit packing: per layer, (act_consumers + 1) in bits 0-1,
// grad_consumers in bits 2-3, grad_alloc bit 4, stash_live bit 5.
uint8_t PackLayer(int act_consumers, int grad_consumers, bool grad_alloc,
                  bool stash_live) {
  return static_cast<uint8_t>((act_consumers + 1) | (grad_consumers << 2) |
                              (grad_alloc ? 16 : 0) | (stash_live ? 32 : 0));
}

}  // namespace

FastScheduleEvaluator::FastScheduleEvaluator(const NnModel* model,
                                             const GpuSpec& gpu,
                                             const SystemProfile& profile)
    : model_(model),
      cost_(CachedCostModel(gpu, profile)),
      capacity_(static_cast<double>(gpu.slot_capacity())),
      exec_overhead_(gpu.kernel_exec_overhead),
      t0_(profile.graph_launch_latency) {
  OOBP_CHECK(model_ != nullptr);
  cost_table_.resize(static_cast<size_t>(model_->num_layers()) * 4);
  mem_initial_ = ColdInitMemState(&mem_init_packed_);
}

uint64_t FastScheduleEvaluator::TotalAnalyticEvals() {
  return g_total_analytic_evals.load(std::memory_order_relaxed);
}

// Replicates the schedule-independent prologue of EstimateBackpropMemory.
int64_t FastScheduleEvaluator::ColdInitMemState(
    std::vector<uint8_t>* packed) const {
  const int L = model_->num_layers();
  packed->assign(static_cast<size_t>(L), 0);
  int64_t live = 0;
  for (int j = 0; j < L; ++j) {
    const Layer& layer = model_->layers[static_cast<size_t>(j)];
    live += layer.output_bytes + layer.stash_bytes;
    const int act =
        j + 1 < L
            ? (model_->layers[static_cast<size_t>(j + 1)].has_params() ? 1 : 0)
            : 0;
    const int grad = 1 + (layer.has_params() ? 1 : 0);
    (*packed)[static_cast<size_t>(j)] =
        PackLayer(act, grad, /*grad_alloc=*/false, /*stash_live=*/true);
  }
  if (L > 0) {
    live += model_->layers[static_cast<size_t>(L - 1)].output_bytes;
    (*packed)[static_cast<size_t>(L - 1)] |= 16;  // grad_alloc[L-1]
  }
  return live;
}

int64_t FastScheduleEvaluator::PeakMemory(const IterationSchedule& schedule) {
  const size_t n = schedule.ops.size();
  const size_t p_diff = DiffPosition(mem_ops_, schedule.ops);
  if (p_diff == n && mem_ops_.size() == n && last_peak_ >= 0) {
    return last_peak_;
  }
  const int L = model_->num_layers();

  // Resume the liveness walk from the latest checkpoint at or before the
  // first differing position; everything after is replayed with the exact
  // integer operations of EstimateBackpropMemory.
  mem_ckpts_.resize(
      std::min(mem_ckpts_.size(), p_diff / kMetaStride + 1));
  size_t start = 0;
  int64_t live = mem_initial_;
  int64_t peak = mem_initial_;
  std::vector<uint8_t> state = mem_init_packed_;
  if (!mem_ckpts_.empty()) {
    const MemCkpt& c = mem_ckpts_.back();
    start = static_cast<size_t>(c.pos);
    live = c.live;
    peak = c.peak;
    state = c.packed;
  }

  const auto act_of = [&](int j) {
    return static_cast<int>(state[static_cast<size_t>(j)] & 3) - 1;
  };
  const auto set_act = [&](int j, int v) {
    uint8_t& b = state[static_cast<size_t>(j)];
    b = static_cast<uint8_t>((b & ~3) | (v + 1));
  };
  const auto free_activation = [&](int j) {
    if (j >= 0 && j < L) {
      live -= model_->layers[static_cast<size_t>(j)].output_bytes;
    }
  };
  const auto consume_grad = [&](int i) {
    uint8_t& b = state[static_cast<size_t>(i)];
    const int grad = (b >> 2) & 3;
    OOBP_CHECK_GT(grad, 0);
    b = static_cast<uint8_t>((b & ~12) | ((grad - 1) << 2));
    if (grad - 1 == 0 && (b & 16) != 0) {
      live -= model_->layers[static_cast<size_t>(i)].output_bytes;
    }
  };

  for (size_t p = start; p < n; ++p) {
    if (p % kMetaStride == 0 && p / kMetaStride == mem_ckpts_.size()) {
      mem_ckpts_.push_back({static_cast<int32_t>(p), live, peak, state});
    }
    const ScheduledOp& s = schedule.ops[p];
    if (s.op.type != TrainOpType::kOutputGrad &&
        s.op.type != TrainOpType::kWeightGrad) {
      continue;  // never raises the peak (no workspace, no allocation)
    }
    const int i = s.op.layer;
    OOBP_CHECK_GE(i, 0);
    OOBP_CHECK_LT(i, L);
    const Layer& layer = model_->layers[static_cast<size_t>(i)];

    if (s.op.type == TrainOpType::kOutputGrad) {
      if (i > 0 && (state[static_cast<size_t>(i - 1)] & 16) == 0) {
        live += model_->layers[static_cast<size_t>(i - 1)].output_bytes;
        state[static_cast<size_t>(i - 1)] |= 16;
      }
      peak = std::max(peak, live + layer.workspace_bytes);
      if ((state[static_cast<size_t>(i)] & 32) != 0) {
        live -= layer.stash_bytes;
        state[static_cast<size_t>(i)] &=
            static_cast<uint8_t>(~uint8_t{32});
      }
      consume_grad(i);
      if (i > 0 && act_of(i - 1) == 0) {
        free_activation(i - 1);
        set_act(i - 1, -1);
      }
      if (i == L - 1) {
        free_activation(L - 1);
      }
    } else {  // kWeightGrad
      peak = std::max(peak, live + layer.workspace_bytes);
      consume_grad(i);
      if (i > 0) {
        OOBP_CHECK_EQ(act_of(i - 1), 1)
            << "dW[" << i << "] scheduled twice or input already freed";
        free_activation(i - 1);
        set_act(i - 1, -1);
      }
    }
  }

  mem_ops_.resize(n);
  std::copy(schedule.ops.begin() + static_cast<ptrdiff_t>(p_diff),
            schedule.ops.end(),
            mem_ops_.begin() + static_cast<ptrdiff_t>(p_diff));
  last_peak_ = peak;
  return peak;
}

void FastScheduleEvaluator::RebuildMeta(const IterationSchedule& schedule,
                                        size_t p_diff) {
  const size_t n = schedule.ops.size();
  const int L = model_->num_layers();
  meta_.resize(n);

  // Restore the role cursor from the latest snapshot at or before p_diff.
  meta_ckpts_.resize(
      std::min(meta_ckpts_.size(), p_diff / kMetaStride + 1));
  SchedulePrefixState cur;
  size_t start = 0;
  if (meta_ckpts_.empty()) {
    cur.Reset(L);
  } else {
    cur = meta_ckpts_.back();
    start = static_cast<size_t>(cur.next_pos);
  }

  for (size_t p = start; p < n; ++p) {
    if (p % kMetaStride == 0 && p / kMetaStride == meta_ckpts_.size()) {
      meta_ckpts_.push_back(cur);
    }
    if (p >= p_diff) {
      const ScheduledOp& s = schedule.ops[p];
      const int i = s.op.layer;
      OOBP_CHECK_GE(i, 0);
      OOBP_CHECK_LT(i, L);
      CostEntry& ce =
          cost_table_[static_cast<size_t>(i) * 4 +
                      static_cast<size_t>(s.op.type)];
      if (!ce.init) {
        const KernelCost kc =
            cost_->Cost(model_->layers[static_cast<size_t>(i)], s.op.type);
        ce.dur = kc.duration;
        ce.occ = EffectiveOccupancy(kc.thread_blocks, capacity_);
        ce.work = static_cast<double>(ce.dur) * ce.occ;
        ce.init = true;
      }
      PosMeta m;
      m.dur = ce.dur;
      m.occ = ce.occ;
      m.work = ce.work;
      m.stream = s.stream == kSubStream ? 1 : 0;
      // Dependency wiring: positionally identical to BuildTrainIssuePlan
      // (src/runtime/single_gpu_engine.cc); item of position q in iteration
      // t is t*n + q, so same-iteration deps are stored as positions and the
      // single cross-iteration case (the loss gradient / final dW waiting on
      // the previous iteration's forward pass) as a flag.
      int num_deps = 0;
      const auto add_dep = [&](int32_t q) {
        OOBP_CHECK_LT(num_deps, 2) << "more than two positional deps";
        m.dep[num_deps++] = q;
      };
      switch (s.op.type) {
        case TrainOpType::kForward:
          if (i > 0 && cur.fwd_pos[static_cast<size_t>(i - 1)] != -1) {
            add_dep(cur.fwd_pos[static_cast<size_t>(i - 1)]);
          }
          if (cur.update_pos[static_cast<size_t>(i)] != -1) {
            add_dep(cur.update_pos[static_cast<size_t>(i)]);
          }
          break;
        case TrainOpType::kOutputGrad:
          if (i + 1 < L) {
            if (cur.dgrad_pos[static_cast<size_t>(i + 1)] != -1) {
              add_dep(cur.dgrad_pos[static_cast<size_t>(i + 1)]);
            }
          } else {
            m.dep_prev_fwd = true;
          }
          break;
        case TrainOpType::kWeightGrad:
          if (i + 1 < L) {
            OOBP_CHECK_NE(cur.dgrad_pos[static_cast<size_t>(i + 1)], -1)
                << "dW[" << i << "] issued before dO[" << i + 1 << "]";
            add_dep(cur.dgrad_pos[static_cast<size_t>(i + 1)]);
          } else {
            m.dep_prev_fwd = true;
          }
          if (s.wait_for_index >= 0) {
            OOBP_CHECK_LT(s.wait_for_index, static_cast<int>(p));
            add_dep(s.wait_for_index);
          }
          break;
        case TrainOpType::kWeightUpdate:
          OOBP_CHECK_NE(cur.wgrad_pos[static_cast<size_t>(i)], -1);
          add_dep(cur.wgrad_pos[static_cast<size_t>(i)]);
          break;
      }
      meta_[p] = m;
    }
    cur.Advance(schedule.ops[p]);
  }
  OOBP_CHECK_GT(L, 0);
  fwd_last_pos_ = cur.fwd_pos[static_cast<size_t>(L - 1)];
}

TimeNs FastScheduleEvaluator::IterationTime(const IterationSchedule& schedule) {
  const size_t n = schedule.ops.size();
  OOBP_CHECK_GT(n, 0u);
  ++evaluations_;
  g_total_analytic_evals.fetch_add(1, std::memory_order_relaxed);

  const size_t p_diff = DiffPosition(time_ops_, schedule.ops);
  if (p_diff == n && time_ops_.size() == n && last_time_ >= 0) {
    return last_time_;
  }

  RebuildMeta(schedule, p_diff);
  // Stream sequences are ascending position lists, so the shared prefix
  // keeps its entries and ranks; drop everything from the first difference
  // and re-append.
  rank_.resize(n);
  for (auto& sq : seq_) {
    sq.erase(std::lower_bound(sq.begin(), sq.end(),
                              static_cast<int32_t>(p_diff)),
             sq.end());
  }
  for (size_t p = p_diff; p < n; ++p) {
    const int s = meta_[p].stream;
    rank_[p] = static_cast<int32_t>(seq_[s].size());
    seq_[s].push_back(static_cast<int32_t>(p));
  }
  while (!sweep_ckpts_.empty() &&
         sweep_ckpts_.back().next_item > static_cast<int32_t>(p_diff)) {
    sweep_ckpts_.pop_back();
  }
  // The steady-state anchor survives the same way a checkpoint does: its
  // history only read positions up to anchor_key_, so a candidate whose
  // first difference lies beyond it shares the anchor bit-for-bit.
  if (anchor_valid_ && static_cast<int32_t>(p_diff) <= anchor_key_) {
    anchor_valid_ = false;
  }

  last_time_ = RunSweep(n);
  time_ops_.resize(n);
  std::copy(schedule.ops.begin() + static_cast<ptrdiff_t>(p_diff),
            schedule.ops.end(),
            time_ops_.begin() + static_cast<ptrdiff_t>(p_diff));
  return last_time_;
}

TimeNs FastScheduleEvaluator::RunSweep(size_t n) {
  const int32_t num_items = static_cast<int32_t>(kIterations * n);
  const int32_t ni = static_cast<int32_t>(n);
  const uint64_t len[2] = {seq_[0].size(), seq_[1].size()};
  OOBP_CHECK_GE(fwd_last_pos_, 0);

  SweepState st;
  if (!sweep_ckpts_.empty()) {
    st = sweep_ckpts_.back().state;
  } else {
    st.now = t0_;
  }

  // Division-free cursors and in-flight iteration tags, re-derived on every
  // (re)start. Checkpoints are only ever pushed while max_disp < n — no
  // item of a later iteration dispatched yet — so a restored state has both
  // stream cursors still inside their first pass (ptr <= len) and every
  // in-flight slot in iteration 0; the derivations below are exact.
  uint64_t idx[2];              // ptr[s] % len[s], kept incrementally
  int32_t itr[2];               // ptr[s] / len[s] (head's iteration)
  int32_t pend_it[2] = {0, 0};  // iteration of pend[s]
  int32_t run_it[2] = {0, 0};   // iteration of run[s]
  for (int s = 0; s < 2; ++s) {
    OOBP_CHECK_LE(st.ptr[s], len[s]);
    if (len[s] == 0) {
      idx[s] = 0;
      itr[s] = kIterations;  // stream never dispatches
    } else if (st.ptr[s] == len[s]) {
      idx[s] = 0;
      itr[s] = 1;
    } else {
      idx[s] = st.ptr[s];
      itr[s] = 0;
    }
  }

  const auto head_item = [&](int s) -> int32_t {
    if (itr[s] >= kIterations) {
      return -1;
    }
    return itr[s] * ni + seq_[s][idx[s]];
  };
  // An item is complete iff its stream already dispatched past it and it is
  // not one of the (at most four) in-flight slots — no per-item flags, so
  // checkpoints stay O(1). Callers always know the item's (iteration,
  // position) pair, keeping this free of integer division.
  const auto item_done = [&](int32_t iter, int32_t p) {
    const int s = meta_[static_cast<size_t>(p)].stream;
    const uint64_t flat =
        static_cast<uint64_t>(iter) * len[s] +
        static_cast<uint64_t>(rank_[static_cast<size_t>(p)]);
    if (flat >= st.ptr[s]) {
      return false;
    }
    const int32_t item = iter * ni + p;
    return item != st.pend[0] && item != st.pend[1] && item != st.run[0] &&
           item != st.run[1];
  };
  const auto deps_done = [&](int32_t t, int32_t p) {
    const PosMeta& m = meta_[static_cast<size_t>(p)];
    for (const int32_t d : m.dep) {
      if (d >= 0 && !item_done(t, d)) {
        return false;
      }
    }
    if (m.dep_prev_fwd && t > 0) {
      if (!item_done(t - 1, fwd_last_pos_)) {
        return false;
      }
    }
    return true;
  };
  // Priority-greedy slot allocation, exactly FluidProcessor::Reallocate():
  // the main stream (priority 0) is allocated before the sub stream.
  const auto rates = [&](double r[2]) {
    double free = capacity_;
    for (int s = 0; s < 2; ++s) {
      r[s] = st.run[s] >= 0 ? std::min(st.occ[s], free) : 0.0;
      free -= r[s];
    }
  };

  // --- steady-state periodicity skip ---------------------------------------
  // Iteration t+1's backward cannot start before iteration t's last forward
  // (F_{L-1}) completes: dO[L-1] / the final dW carries the cross-iteration
  // dep, every other backward op transitively depends on it, and streams
  // run their items strictly sequentially. So the machine state right after
  // that completion is a natural per-iteration anchor: no item of iteration
  // t+2 can have been dispatched yet. If the anchors of iterations 0 and 1
  // are equal modulo the shift (item indices + n, stream cursors + one
  // pass, times + delta), the pipeline has reached its steady-state period
  // and the whole segment anchor(1) -> anchor(2) is a delta-shifted replica
  // of anchor(0) -> anchor(1) — every float op lands on identical values —
  // so iteration 2's middle is fast-forwarded by applying the shift
  // directly and resuming the fixpoint in place. Any mismatch simply
  // falls back to simulating all three iterations; the skip never
  // approximates.
  //
  // The iteration-0 anchor persists across candidates (anchor_st_ /
  // anchor_key_, invalidated in IterationTime): a sweep resuming from a
  // checkpoint past that completion still compares against the cached
  // anchor, whose history is untouched by any mutation beyond the key.
  bool skipped = false;

  const auto norm_equal = [&]() -> bool {
    for (int s = 0; s < 2; ++s) {
      // Anchor cursors are re-derived from the stored dispatch counts the
      // same way the restart block above does it: at the anchor both
      // streams are still in their first pass (asserted at capture).
      if (len[s] == 0) {
        if (st.ptr[s] != anchor_st_.ptr[s] || itr[s] != kIterations) {
          return false;
        }
      } else {
        const uint64_t a_idx =
            anchor_st_.ptr[s] == len[s] ? 0 : anchor_st_.ptr[s];
        const int32_t a_itr = anchor_st_.ptr[s] == len[s] ? 1 : 0;
        if (st.ptr[s] != anchor_st_.ptr[s] + len[s] || itr[s] != a_itr + 1 ||
            idx[s] != a_idx) {
          return false;
        }
      }
      // Every in-flight slot at the anchor is an iteration-0 item, so the
      // matching slot here must be the same position one iteration up.
      if ((st.pend[s] >= 0) != (anchor_st_.pend[s] >= 0)) {
        return false;
      }
      if (st.pend[s] >= 0 &&
          (st.pend[s] != anchor_st_.pend[s] + ni || pend_it[s] != 1 ||
           st.pend_at[s] - st.now !=
               anchor_st_.pend_at[s] - anchor_st_.now)) {
        return false;
      }
      if ((st.run[s] >= 0) != (anchor_st_.run[s] >= 0)) {
        return false;
      }
      if (st.run[s] >= 0 &&
          (st.run[s] != anchor_st_.run[s] + ni || run_it[s] != 1 ||
           st.rem[s] != anchor_st_.rem[s] ||
           st.occ[s] != anchor_st_.occ[s])) {
        return false;
      }
    }
    // Stale seq values of empty slots are never read again (a begin always
    // overwrites first), so the only order-relevant residue is which of the
    // two last begins came first.
    return (st.started_seq[1] < st.started_seq[0]) ==
           (anchor_st_.started_seq[1] < anchor_st_.started_seq[0]);
  };

  const auto apply_shift = [&] {
    const TimeNs delta = st.now - anchor_st_.now;
    const uint32_t comp_delta = st.completed - anchor_st_.completed;
    // Completions in the skipped segment replicate the previous segment's
    // one iteration up: iter_end[2] becomes the mirrored iter_end[1] and
    // iter_end[1] absorbs the mirror of the iteration-0 stragglers (if the
    // previous segment raised iter_end[0], the same completions recur at
    // +delta; otherwise every mirrored time is already <= iter_end[1]).
    st.iter_end[2] = st.iter_end[1] + delta;
    if (st.iter_end[0] > anchor_st_.iter_end[0]) {
      st.iter_end[1] = std::max(st.iter_end[1], st.iter_end[0] + delta);
    }
    st.now += delta;
    st.completed += comp_delta;
    st.max_disp += ni;
    for (int s = 0; s < 2; ++s) {
      st.ptr[s] += len[s];
      if (len[s] > 0) {
        ++itr[s];
      }
      if (st.pend[s] >= 0) {
        st.pend[s] += ni;
        st.pend_at[s] += delta;
      }
      if (st.run[s] >= 0) {
        st.run[s] += ni;
      }
      ++pend_it[s];
      ++run_it[s];
    }
  };

  // Called from the completion scan right after the last forward of
  // iteration `t` completes — before any same-instant dispatch, so no
  // iteration-(t+2) item is in flight yet.
  const auto on_anchor = [&](int32_t t) {
    if (t == 0) {
      anchor_st_ = st;
      anchor_valid_ = true;
      // Everything simulated so far only read schedule positions up to the
      // dispatched maximum and the two stream heads (heads advance
      // monotonically, so the current ones bound every consultation).
      int32_t key = st.max_disp;
      for (int s = 0; s < 2; ++s) {
        OOBP_CHECK_LE(st.ptr[s], len[s]);
        if (itr[s] < kIterations) {
          key = std::max(key, seq_[s][idx[s]]);
        }
      }
      anchor_key_ = key;
    } else if (anchor_valid_ && norm_equal()) {
      apply_shift();
      skipped = true;
    }
  };

  // Processes everything due at st.now to a fixpoint: fluid completions (in
  // job-seq order, as FluidProcessor::Advance does), execution begins whose
  // setup gap elapsed, then dispatches of ready stream heads. A zero
  // exec-overhead spec chains dispatch -> begin at one instant, hence the
  // loop.
  const auto process_now = [&] {
    bool again = true;
    while (again) {
      // A pass orders its scans completion -> begin -> dispatch, which is
      // exactly the enabling order: completions unblock begins' streams and
      // dispatches' deps, begins only occupy slots, dispatches change
      // nothing observable until their begin. So one pass reaches the
      // fixpoint except for the two same-instant chains flagged below: a
      // zero-overhead dispatch whose begin is already due, and a zero-work
      // begin whose completion is already due.
      again = false;
      int order[2] = {0, 1};
      if (st.run[0] >= 0 && st.run[1] >= 0 &&
          st.started_seq[1] < st.started_seq[0]) {
        order[0] = 1;
        order[1] = 0;
      }
      for (const int s : order) {
        if (st.run[s] >= 0 && st.rem[s] <= kWorkEpsilon) {
          const int32_t done_pos = st.run[s] - run_it[s] * ni;
          const int32_t done_it = run_it[s];
          st.run[s] = -1;
          TimeNs& end = st.iter_end[static_cast<size_t>(run_it[s])];
          end = std::max(end, st.now);
          ++st.completed;
          if (done_pos == fwd_last_pos_ && done_it < 2 && !skipped) {
            on_anchor(done_it);
          }
        }
      }
      for (int s = 0; s < 2; ++s) {
        if (st.pend[s] >= 0 && st.pend_at[s] <= st.now) {
          const int32_t item = st.pend[s];
          const PosMeta& m =
              meta_[static_cast<size_t>(item - pend_it[s] * ni)];
          st.pend[s] = -1;
          st.run[s] = item;
          run_it[s] = pend_it[s];
          st.occ[s] = m.occ;
          st.rem[s] = m.work;
          st.started_seq[s] = st.next_seq++;
          again = again || m.work <= kWorkEpsilon;
        }
      }
      for (int s = 0; s < 2; ++s) {
        if (st.pend[s] >= 0 || st.run[s] >= 0) {
          continue;  // stream occupied (head_dispatched semantics)
        }
        const int32_t head = head_item(s);
        if (head < 0 || !deps_done(itr[s], seq_[s][idx[s]])) {
          continue;
        }
        if (head > st.max_disp) {
          // The machine state at this instant depends only on items with a
          // smaller index; snapshot it so a candidate differing first at a
          // later position can resume here. Only first-iteration keys are
          // useful — a mutation always perturbs iteration 0.
          if (head < ni &&
              (sweep_ckpts_.empty() ||
               head >= sweep_ckpts_.back().next_item + kSweepStride)) {
            sweep_ckpts_.push_back({head, st});
          }
          st.max_disp = head;
        }
        ++st.ptr[s];
        st.pend[s] = head;
        pend_it[s] = itr[s];
        st.pend_at[s] = st.now + exec_overhead_;
        if (++idx[s] == len[s]) {
          idx[s] = 0;
          ++itr[s];
        }
        again = again || exec_overhead_ == 0;
      }
    }
  };

  process_now();  // cold start / checkpoint re-dispatch
  while (st.completed < static_cast<uint32_t>(num_items)) {
    // Next wake: the earliest fluid completion (exactly the simulator's
    // wake formula) or pending execution begin. The rates are computed
    // once and reused for the work integration below — they are a pure
    // function of state, so this matches the original double evaluation.
    double r[2];
    rates(r);
    TimeNs next = kNoTime;
    double min_tta = -1.0;
    for (int s = 0; s < 2; ++s) {
      if (st.run[s] >= 0 && r[s] > 0.0) {
        const double tta = st.rem[s] / r[s];
        if (min_tta < 0.0 || tta < min_tta) {
          min_tta = tta;
        }
      }
    }
    if (min_tta >= 0.0) {
      const TimeNs max_delay = std::numeric_limits<TimeNs>::max() - st.now;
      next = min_tta >= static_cast<double>(max_delay)
                 ? st.now + max_delay
                 : st.now + std::max<TimeNs>(
                                1, static_cast<TimeNs>(std::ceil(min_tta)));
    }
    for (int s = 0; s < 2; ++s) {
      if (st.pend[s] >= 0) {
        next = std::min(next, st.pend_at[s]);
      }
    }
    OOBP_CHECK_LT(next, kNoTime) << "analytic sweep deadlocked";
    OOBP_CHECK_GT(next, st.now);
    const double dt = static_cast<double>(next - st.now);
    bool completion = false;
    for (int s = 0; s < 2; ++s) {
      if (st.run[s] >= 0) {
        st.rem[s] = std::max(0.0, st.rem[s] - r[s] * dt);
        completion = completion || st.rem[s] <= kWorkEpsilon;
      }
    }
    st.now = next;
    if (!completion) {
      // Begin-only wake: the fluid wake always lands on a completion (the
      // integration above drives the argmin stream to zero), so `next` came
      // from a pend_at. Without a completion no dependency changed, hence
      // no stream can newly dispatch — a full fixpoint pass would only
      // perform these pend -> run transitions. Doing them inline (in the
      // same s order) is exact; the sole exception is a zero-work kernel,
      // which would complete at this same instant and needs the full pass.
      bool fast = true;
      for (int s = 0; s < 2; ++s) {
        if (st.pend[s] >= 0 && st.pend_at[s] <= st.now &&
            meta_[static_cast<size_t>(st.pend[s] - pend_it[s] * ni)].work <=
                kWorkEpsilon) {
          fast = false;
        }
      }
      if (fast) {
        for (int s = 0; s < 2; ++s) {
          if (st.pend[s] >= 0 && st.pend_at[s] <= st.now) {
            const int32_t item = st.pend[s];
            const PosMeta& m =
                meta_[static_cast<size_t>(item - pend_it[s] * ni)];
            st.pend[s] = -1;
            st.run[s] = item;
            run_it[s] = pend_it[s];
            st.occ[s] = m.occ;
            st.rem[s] = m.work;
            st.started_seq[s] = st.next_seq++;
          }
        }
        continue;
      }
    }
    process_now();
  }

  return (st.iter_end[kIterations - 1] - st.iter_end[0]) / (kIterations - 1);
}

}  // namespace oobp

