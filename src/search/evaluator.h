// Lightweight schedule scoring for the search-based scheduler baseline.
//
// ScheduleEvaluator simulates one IterationSchedule on the event-driven GPU
// model — the same SimEngine + fluid scheduler + CpuLauncher stack
// SingleGpuEngine uses — but trimmed for throughput: no tracing, no replay
// detection, precompiled issue only, three iterations (one warm-up, two
// measured). The fast simulator core (DESIGN.md §2, 8M+ events/sec) makes
// thousands of candidate evaluations cheap, which is what the beam/local
// search in src/search/search.h spends its budget on.
//
// Determinism: the evaluation is a pure function of (model, gpu, profile,
// schedule) — every call builds a fresh SimEngine, so scores are
// bit-reproducible across runs, --jobs threads, and machines.

#ifndef OOBP_SRC_SEARCH_EVALUATOR_H_
#define OOBP_SRC_SEARCH_EVALUATOR_H_

#include <cstdint>
#include <memory>

#include "src/common/time.h"
#include "src/core/schedule.h"
#include "src/hw/gpu_spec.h"
#include "src/nn/cost_model.h"
#include "src/nn/layer.h"

namespace oobp {

class ScheduleEvaluator {
 public:
  // `model` must outlive the evaluator. The cost model is taken from the
  // process-wide cache (CachedCostModel), so evaluators share the point
  // with the engines and the snapshot store.
  ScheduleEvaluator(const NnModel* model, const GpuSpec& gpu,
                    const SystemProfile& profile);

  // Simulated steady-state time of one training iteration under `schedule`:
  // three iterations are simulated and the mean of the last two is returned
  // (iteration 0 absorbs the cold launcher queue).
  TimeNs IterationTime(const IterationSchedule& schedule);

  // Activation-memory peak (bytes, excluding weights/optimizer base) of the
  // schedule's merged issue order, from the shared memory model. Free — does
  // not count as an evaluation.
  int64_t PeakMemory(const IterationSchedule& schedule) const;

  // Number of IterationTime calls so far (the search budget currency).
  int64_t evaluations() const { return evaluations_; }

  const NnModel& model() const { return *model_; }
  const GpuSpec& gpu() const { return gpu_; }
  const SystemProfile& profile() const { return profile_; }

 private:
  const NnModel* model_;
  GpuSpec gpu_;
  SystemProfile profile_;
  std::shared_ptr<const CostModel> cost_;
  int64_t evaluations_ = 0;
};

}  // namespace oobp

#endif  // OOBP_SRC_SEARCH_EVALUATOR_H_
