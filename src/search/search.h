// Search-based scheduler baseline (DESIGN.md §13).
//
// The paper's schedulers are hand-designed heuristics; this module measures
// the headroom they leave by searching the same schedule space directly —
// op orderings and main/sub stream assignments for one training iteration —
// scored by simulated iteration time (ScheduleEvaluator).
//
// Search space. A candidate is a *genotype*: one gene per parameterized
// layer placing that layer's weight-gradient + update pair (dW_i, U_i)
// against a fixed backbone [dO_{L-1} .. dO_0, F_0 .. F_{L-1}]. The gene is
// (slot, stream): the pair is issued directly after backbone op `slot`, on
// the main or sub stream. Slots are clamped to the dependency window
//   min_slot(i) = position of dO_{i+1}   (dW_i consumes dO_{i+1}'s output)
//   max_slot(i) = position of F_i - 1    (F_i consumes U_i's result)
// so *every* decodable genotype satisfies the training-graph dependencies —
// the search can never emit an invalid schedule, only a slow one. This is
// exactly the space MakeOooSchedule explores (it also only moves dW/U pairs
// and assigns streams); the conventional schedule is the genotype with
// slot_i = position of dO_i, all ops on the main stream.
//
// Algorithm. A portfolio of `beam` independent, deterministic trajectories:
//   * trajectory 0 is pure greedy coordinate descent (no randomness):
//     repeated sweeps over the genes, each trying a fixed move set, keeping
//     strict improvements, until a sweep makes no progress or the budget is
//     exhausted;
//   * trajectories 1..beam-1 are seeded local searches: start from the
//     MakeOooSchedule-derived genotype, sweep with the greedy move set plus
//     random moves, then random-walk with strict-improvement acceptance.
// The result is the best of the conventional baseline and all trajectories.
// By construction the search is (a) never worse than the in-order baseline,
// (b) monotone in `beam` (beam B+1 evaluates a superset of candidates),
// (c) equal to pure greedy at beam=1, and (d) bit-deterministic for a fixed
// (model, gpu, profile, beam, seed, budget) — no wall-clock, no global rng.
//
// Memory. Candidates whose activation peak exceeds memory_cap_factor x the
// conventional schedule's peak are rejected without consuming evaluation
// budget (the memory model is closed-form; only scored evaluations are
// budgeted). The peak itself comes from the incremental liveness walk in
// FastScheduleEvaluator — bit-identical to EstimateBackpropMemory but
// resumed from the last common schedule prefix instead of recomputed from
// scratch per candidate.
//
// Evaluation modes (DESIGN.md §14). kExact is the PR-9 pipeline: every
// candidate is scored by the event-driven simulator and budget counts
// simulator runs — goldens pin this mode bit-for-bit. kTwoTier scores
// candidates with the incremental analytic evaluator (Tier A; budget counts
// analytic evaluations), memoized in a per-trajectory content-addressed
// CandidateCache, and invokes the exact simulator (Tier B) only for (a)
// each trajectory's final best — the only number allowed to escape a
// trajectory — and (b) a deterministic 1-in-audit_interval sample of
// analytic scores, whose relative error feeds SearchStats. Since the
// analytic recurrence replays the simulator's floating-point arithmetic
// exactly, the audit error is 0 unless the two implementations drift — the
// fidelity tests and pinned scenario stats exist to catch exactly that.
//
// Parallelism. The `threads` option runs the independent trajectories on a
// WorkerPool (src/sim/worker_pool.h). Each trajectory owns its evaluators,
// cache, and Rng; outcomes are merged in trajectory index order after the
// pool quiesces, so results are byte-identical at any thread count (the
// same guarantee — and the same pool — as the sharded simulator).
//
// Verification. Every returned schedule is checked against
// TrainGraph::ValidateBackpropOrder here, and callers (scenarios, CLI,
// fuzzer, tests) feed it through the full CheckIterationSchedule gate —
// a violation is a hard failure, not a score penalty.

#ifndef OOBP_SRC_SEARCH_SEARCH_H_
#define OOBP_SRC_SEARCH_SEARCH_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/core/joint_scheduler.h"
#include "src/core/schedule.h"
#include "src/nn/train_graph.h"
#include "src/search/evaluator.h"

namespace oobp {

enum class SearchEvalMode {
  kExact,    // every candidate simulator-scored (the golden-pinned mode)
  kTwoTier,  // analytic Tier A + simulator Tier B (trajectory bests, audits)
};

struct SearchOptions {
  int beam = 4;         // independent trajectories (>= 1)
  uint64_t seed = 1;    // base seed for trajectories >= 1
  int budget = 200;     // scored evaluations per trajectory (>= 0)
  // Peak activation-memory cap as a multiple of the conventional schedule's
  // peak; the paper's schedulers use 1.1x. Must be >= 1.0 so the
  // conventional fallback is always admissible.
  double memory_cap_factor = 1.1;
  // Candidate scoring pipeline; see the header comment. kExact keeps the
  // PR-9 behavior bit-for-bit and is what the search_gap_* goldens pin.
  SearchEvalMode eval_mode = SearchEvalMode::kExact;
  // Worker threads for the trajectory portfolio (>= 1; capped at `beam`).
  // Results are byte-identical for every value.
  int threads = 1;
  // kTwoTier only: every audit_interval-th analytic evaluation (per
  // trajectory) is re-scored by the simulator and the relative error is
  // accumulated into SearchStats. <= 0 disables auditing. The audit is a
  // safety net, not a correction — Tier A is bit-exact against the
  // simulator and the analytic score is always the one used and cached —
  // so a sparse sample suffices and keeps Tier-B time off the search's
  // critical path.
  int audit_interval = 256;
};

// Bookkeeping of one search run, aggregated across trajectories.
struct SearchStats {
  int64_t sim_evals = 0;        // simulator scores (== budget spend in kExact)
  int64_t analytic_evals = 0;   // Tier-A scores (== budget spend in kTwoTier)
  uint64_t cache_hits = 0;      // candidate-cache hits (kTwoTier)
  uint64_t cache_misses = 0;    // candidate-cache misses (kTwoTier)
  int64_t memory_rejections = 0;  // candidates over the cap (never budgeted)
  int64_t audit_samples = 0;    // Tier-B audits of analytic scores
  double audit_mean_rel_err = 0.0;  // mean |analytic - sim| / sim over audits
  double audit_max_rel_err = 0.0;   // worst audited relative error
};

// One (slot, stream) placement of a parameterized layer's dW+U pair.
struct WgradGene {
  int layer = 0;
  int slot = 0;    // backbone index the pair is issued after
  int stream = kMainStream;

  friend bool operator==(const WgradGene&, const WgradGene&) = default;
};

// Genes in descending layer order (the decoder's tie-break order).
using Genotype = std::vector<WgradGene>;

// The genotype that decodes to ConventionalIteration(graph) exactly.
Genotype ConventionalGenotype(const TrainGraph& graph);

// Decodes a genotype into an issue schedule: backbone ops in order, each
// slot's genes appended after their backbone op in descending layer order,
// U_i directly after dW_i on the same stream. Slots are clamped to the
// dependency window, so any genotype decodes to a valid schedule.
IterationSchedule DecodeGenotype(const TrainGraph& graph,
                                 const Genotype& genotype);

// Inclusive slot window for layer `layer` (see header comment).
int MinSlot(const TrainGraph& graph, int layer);
int MaxSlot(const TrainGraph& graph, int layer);

struct SearchResult {
  IterationSchedule schedule;    // best schedule found
  Genotype genotype;             // its genotype
  TimeNs best_time = 0;          // simulated iteration time of `schedule`
  TimeNs conventional_time = 0;  // simulated time of the in-order baseline
  int64_t peak_memory = 0;       // activation peak of `schedule`
  int64_t evaluations = 0;       // total simulator evaluations spent
  SearchStats stats;             // per-run evaluation pipeline bookkeeping
};

// Pure greedy coordinate descent (trajectory 0 only; `options.beam` and
// `options.seed` are ignored). SearchSchedule with beam=1 returns the same
// schedule byte-for-byte.
SearchResult GreedySchedule(const TrainGraph& graph, const GpuSpec& gpu,
                            const SystemProfile& profile,
                            const SearchOptions& options = {});

// The full portfolio search (see header comment).
SearchResult SearchSchedule(const TrainGraph& graph, const GpuSpec& gpu,
                            const SystemProfile& profile,
                            const SearchOptions& options = {});

// SearchSchedule with snapshot fall-through: a stored schedule whose
// content key (SearchKeyHash) matches is materialized from the active
// snapshot; otherwise the search runs and the result is captured when
// recording. Only the schedule and its peak are stored — consumers re-score
// with ScheduleEvaluator, so reported metrics are byte-identical with and
// without a snapshot.
JointScheduleResult SnapshotSearchSchedule(const TrainGraph& graph,
                                           const GpuSpec& gpu,
                                           const SystemProfile& profile,
                                           const SearchOptions& options = {});

}  // namespace oobp

#endif  // OOBP_SRC_SEARCH_SEARCH_H_
