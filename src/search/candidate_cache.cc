#include "src/search/candidate_cache.h"

#include <utility>

#include "src/common/check.h"

namespace oobp {

namespace {
// splitmix64 finalizer: the same mixer the sharded-sim perturbation uses.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

uint64_t CandidateCache::Hash(const Genotype& genotype) {
  uint64_t h = 0x67656E6FULL;  // "geno"
  h = Mix(h ^ genotype.size());
  for (const WgradGene& g : genotype) {
    h = Mix(h ^ static_cast<uint64_t>(static_cast<uint32_t>(g.layer)));
    h = Mix(h ^ static_cast<uint64_t>(static_cast<uint32_t>(g.slot)));
    h = Mix(h ^ static_cast<uint64_t>(static_cast<uint32_t>(g.stream)));
  }
  return h;
}

const CandidateCache::Score* CandidateCache::Lookup(const Genotype& genotype) {
  return Lookup(genotype, Hash(genotype));
}

const CandidateCache::Score* CandidateCache::Lookup(const Genotype& genotype,
                                                    uint64_t hash) {
  const auto it = buckets_.find(hash);
  if (it != buckets_.end()) {
    for (const Entry& e : it->second) {
      if (e.genotype == genotype) {
        ++hits_;
        return &e.score;
      }
    }
  }
  ++misses_;
  return nullptr;
}

void CandidateCache::Insert(const Genotype& genotype, Score score) {
  Insert(genotype, score, Hash(genotype));
}

void CandidateCache::Insert(const Genotype& genotype, Score score,
                            uint64_t hash) {
  std::vector<Entry>& bucket = buckets_[hash];
  for (const Entry& e : bucket) {
    OOBP_CHECK(!(e.genotype == genotype)) << "genotype cached twice";
  }
  bucket.push_back({genotype, score});
  ++size_;
}

}  // namespace oobp
