// Incremental analytic schedule evaluator — the Tier-A scorer of the
// two-tier search evaluation pipeline (DESIGN.md §14).
//
// FastScheduleEvaluator computes the same steady-state iteration time as
// ScheduleEvaluator (src/search/evaluator.h) without instantiating a
// SimEngine per candidate. The insight is that the trimmed evaluation
// workload is a closed two-stream system: in kPrecompiled mode the launcher
// enqueues every kernel at one instant (graph_launch_latency), so the full
// discrete-event simulation collapses to a tiny state machine — at most one
// running and one dispatched-but-not-started kernel per stream plus the
// single fluid wake-up timer. Replaying exactly the floating-point
// operations the FluidProcessor performs (rate = min(max_rate, free) in
// priority order, remaining = max(0, remaining - rate*dt) at every event
// boundary, completion at remaining <= 1e-6, wake at now + max(1,
// ceil(min remaining/rate))) makes the analytic makespan BIT-IDENTICAL to
// the simulator's — not an approximation — while running one to two orders
// of magnitude faster.
//
// Incrementality: the local-search mutators flip one WgradGene at a time,
// so consecutive candidates share a long schedule prefix. The evaluator
// keeps, per instance:
//   * role-cursor snapshots (SchedulePrefixState, src/core/schedule.h)
//     every few positions, so per-position dependency metadata — the same
//     wiring BuildTrainIssuePlan derives — is rebuilt only from the first
//     differing position onward;
//   * sweep checkpoints: complete machine states captured whenever a
//     first-iteration item with a new maximum index is dispatched. At that
//     instant the machine state provably depends only on earlier schedule
//     positions, so a later candidate that differs first at position p can
//     resume from the latest checkpoint with key <= p and re-simulate only
//     the suffix;
//   * an incremental activation-memory walk replaying
//     EstimateBackpropMemory (src/core/memory_model.h) bit-for-bit with
//     position-keyed liveness checkpoints, so the memory-cap test the
//     search applies to every candidate is also prefix-incremental.
//
// Instances are not thread-safe (each search trajectory owns one); the
// process-wide analytic-evaluation counter is atomic and feeds the perf
// harness (bench/perf_baseline.json evals/sec floor).

#ifndef OOBP_SRC_SEARCH_FAST_EVAL_H_
#define OOBP_SRC_SEARCH_FAST_EVAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/time.h"
#include "src/core/schedule.h"
#include "src/hw/gpu_spec.h"
#include "src/nn/cost_model.h"
#include "src/nn/layer.h"

namespace oobp {

class FastScheduleEvaluator {
 public:
  // Bumped whenever the analytic recurrence changes in a way that could
  // alter scores; keyed into the candidate cache and the snapshot store's
  // SearchKeyHash so persisted results never cross evaluator versions.
  static constexpr int kVersion = 1;

  // `model` must outlive the evaluator; the cost model comes from the
  // process-wide cache, shared with the engines and ScheduleEvaluator.
  FastScheduleEvaluator(const NnModel* model, const GpuSpec& gpu,
                        const SystemProfile& profile);

  // Steady-state time of one training iteration: bit-identical to
  // ScheduleEvaluator::IterationTime on the same (model, gpu, profile,
  // schedule). Incremental against the previously evaluated schedule.
  TimeNs IterationTime(const IterationSchedule& schedule);

  // Activation-memory peak of the schedule's merged order: bit-identical to
  // EstimateBackpropMemory(model, schedule.MergedOrder()).peak, incremental
  // against the previously measured schedule.
  int64_t PeakMemory(const IterationSchedule& schedule);

  // Analytic evaluations performed by this instance.
  int64_t evaluations() const { return evaluations_; }

  // Process-wide analytic evaluation count (all instances, all threads);
  // the perf harness samples deltas of this the way it samples simulator
  // event counts.
  static uint64_t TotalAnalyticEvals();

  const NnModel& model() const { return *model_; }

 private:
  // Per-position issue metadata: the dependency wiring BuildTrainIssuePlan
  // derives, expressed in schedule positions (iteration-invariant; item
  // index of position p in iteration t is t*n + p).
  struct PosMeta {
    TimeNs dur = 0;            // solo duration
    double occ = 0.0;          // EffectiveOccupancy(thread_blocks, capacity)
    double work = 0.0;         // dur * occ: initial fluid `remaining`
    int32_t dep[2] = {-1, -1};  // same-iteration dependency positions
    uint8_t stream = 0;        // kMainStream / kSubStream
    bool dep_prev_fwd = false;  // also depends on prior iteration's last F
  };

  // Complete machine state of the analytic sweep; small enough to snapshot.
  struct SweepState {
    TimeNs now = 0;
    // Dispatched item count per stream (flat index into the per-stream
    // issue sequence across iterations). The dispatched/completed tests
    // derive from these cursors plus the in-flight slots below, so no
    // per-item done flags need checkpointing.
    uint64_t ptr[2] = {0, 0};
    int32_t pend[2] = {-1, -1};   // dispatched, paying exec overhead
    TimeNs pend_at[2] = {0, 0};   // its execution start time
    int32_t run[2] = {-1, -1};    // occupying fluid slots
    double rem[2] = {0.0, 0.0};   // remaining work (rate*ns)
    double occ[2] = {0.0, 0.0};   // max_rate of the running kernel
    uint64_t started_seq[2] = {0, 0};  // fluid job seq (completion order)
    uint64_t next_seq = 1;        // mirrors FluidProcessor::next_id_
    uint32_t completed = 0;
    int32_t max_disp = -1;        // highest item index dispatched so far
    TimeNs iter_end[3] = {0, 0, 0};  // per-iteration completion maxima
  };
  struct SweepCkpt {
    int32_t next_item = 0;  // the item about to be dispatched (the key)
    SweepState state;
  };

  // Activation-memory liveness at a schedule position, packed: per layer
  // 6 bits (act_consumers+1, grad_consumers, grad_alloc, stash_live).
  struct MemCkpt {
    int32_t pos = 0;  // state before consuming ops[pos]
    int64_t live = 0;
    int64_t peak = 0;
    std::vector<uint8_t> packed;
  };

  // Lazily memoized kernel cost per (layer, op type): position metadata is
  // position-independent apart from dependency wiring, so the cost model is
  // consulted once per pair instead of once per rebuilt position.
  struct CostEntry {
    TimeNs dur = 0;
    double occ = 0.0;
    double work = 0.0;
    bool init = false;
  };

  void RebuildMeta(const IterationSchedule& schedule, size_t p_diff);
  TimeNs RunSweep(size_t n);
  int64_t ColdInitMemState(std::vector<uint8_t>* packed) const;

  const NnModel* model_;
  std::shared_ptr<const CostModel> cost_;
  std::vector<CostEntry> cost_table_;  // [layer * 4 + op type]
  double capacity_ = 0.0;
  TimeNs exec_overhead_ = 0;
  TimeNs t0_ = 0;  // graph launch latency: the instant all items enqueue
  int64_t evaluations_ = 0;

  // --- iteration-time path state (diffed against time_ops_) ---
  std::vector<ScheduledOp> time_ops_;
  TimeNs last_time_ = -1;
  std::vector<PosMeta> meta_;
  std::vector<SchedulePrefixState> meta_ckpts_;  // every kMetaStride positions
  int32_t fwd_last_pos_ = -1;  // position of F_{L-1} (cross-iteration dep)
  std::vector<int32_t> seq_[2];       // per-stream issue order (positions)
  std::vector<int32_t> rank_;         // position -> index within its stream
  std::vector<SweepCkpt> sweep_ckpts_;
  // Steady-state anchor (RunSweep): machine state right after iteration 0's
  // last forward completed. At that instant every in-flight item is still in
  // iteration 0 and both cursors are in their first pass, so the state plus
  // the maximum schedule position read so far fully describes it; like the
  // sweep checkpoints it stays valid across candidates whose first differing
  // position lies beyond that key.
  SweepState anchor_st_;
  bool anchor_valid_ = false;
  int32_t anchor_key_ = -1;

  // --- memory path state (diffed against mem_ops_) ---
  std::vector<ScheduledOp> mem_ops_;
  int64_t last_peak_ = -1;
  int64_t mem_initial_ = 0;  // schedule-independent initial live bytes
  std::vector<uint8_t> mem_init_packed_;
  std::vector<MemCkpt> mem_ckpts_;
};

}  // namespace oobp

#endif  // OOBP_SRC_SEARCH_FAST_EVAL_H_
