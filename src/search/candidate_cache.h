// Content-addressed cache of analytic candidate scores (DESIGN.md §14).
//
// The local-search trajectories revisit genotypes constantly — greedy sweeps
// re-try the same moves every pass, and random walks frequently undo a step
// — so the two-tier evaluation pipeline memoizes Tier-A results per
// genotype. The key is the full genotype content (layer, slot, stream per
// gene); a 64-bit mix of that content buckets the entries and an exact
// genotype comparison guards against collisions, so a hit is guaranteed to
// return the bit-identical score the cold evaluation produced. Rejections
// (memory cap) are cached too, as ScheduleEvaluator-style sentinel times, so
// a revisited infeasible candidate costs one lookup instead of a memory
// walk.
//
// The cache never evicts: a search trajectory touches at most
// budget + O(genes * sweeps) genotypes, each entry is a few dozen bytes, and
// determinism is simpler to argue when a score, once computed, is the score
// forever. Each trajectory owns a private cache (no sharing across threads),
// which keeps the parallel portfolio byte-identical at any thread count.
//
// Only the two-tier (analytic) mode uses this cache. Exact mode must not:
// caching simulator scores would change how many budgeted evaluations a
// trajectory consumes and thereby its candidate sequence, breaking the
// pinned search_gap_* goldens.

#ifndef OOBP_SRC_SEARCH_CANDIDATE_CACHE_H_
#define OOBP_SRC_SEARCH_CANDIDATE_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/search/search.h"

namespace oobp {

class CandidateCache {
 public:
  struct Score {
    TimeNs time = 0;       // analytic iteration time, or the reject sentinel
    int64_t peak = 0;      // activation-memory peak
  };

  // Returns the cached score or nullptr; counts a hit or a miss. The
  // pointer is invalidated by the next Insert. The two-argument form takes
  // the precomputed content hash so the miss path can reuse it for Insert
  // instead of rehashing the genotype.
  const Score* Lookup(const Genotype& genotype);
  const Score* Lookup(const Genotype& genotype, uint64_t hash);

  // Inserts a score for `genotype`; the genotype must not already be cached
  // (every miss is evaluated exactly once). `hash` must equal
  // Hash(genotype).
  void Insert(const Genotype& genotype, Score score);
  void Insert(const Genotype& genotype, Score score, uint64_t hash);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return size_; }

  // Deterministic 64-bit content hash of a genotype (bucketing only; entries
  // always compare the full genotype).
  static uint64_t Hash(const Genotype& genotype);

 private:
  struct Entry {
    Genotype genotype;
    Score score;
  };
  // Bucketed by content hash; collisions chain within the bucket vector.
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
  size_t size_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace oobp

#endif  // OOBP_SRC_SEARCH_CANDIDATE_CACHE_H_
