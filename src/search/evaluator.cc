#include "src/search/evaluator.h"

#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/core/memory_model.h"
#include "src/hw/cpu_launcher.h"
#include "src/hw/gpu.h"
#include "src/nn/model_cache.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/sim/engine.h"

namespace oobp {

ScheduleEvaluator::ScheduleEvaluator(const NnModel* model, const GpuSpec& gpu,
                                     const SystemProfile& profile)
    : model_(model),
      gpu_(gpu),
      profile_(profile),
      cost_(CachedCostModel(gpu, profile)) {
  OOBP_CHECK(model_ != nullptr);
}

TimeNs ScheduleEvaluator::IterationTime(const IterationSchedule& schedule) {
  // One warm-up plus two measured iterations: the launcher's bounded issue
  // queue and the cross-iteration F->dO dependencies make iteration 0
  // atypical; iterations 1..2 are steady state for every schedule shape the
  // search emits (the full engine's replay detector confirms periodicity at
  // this depth).
  constexpr int kIterations = 3;
  SimEngine engine;
  Gpu gpu(&engine, gpu_, /*trace=*/nullptr, /*trace_track_base=*/0);
  const StreamId main_stream = gpu.CreateStream(/*priority=*/0);
  const StreamId sub_stream = gpu.CreateStream(/*priority=*/1);
  CpuLauncher launcher(&engine, &gpu, CpuLauncher::Mode::kPrecompiled,
                       profile_.graph_launch_latency, /*trace=*/nullptr,
                       /*issue_track=*/100, profile_.issue_queue_depth);

  TrainIssuePlan plan =
      BuildTrainIssuePlan(*model_, schedule, *cost_, kIterations, main_stream,
                          sub_stream, /*label_items=*/false);

  std::vector<KernelId> item_kernel(plan.items.size(), -1);
  launcher.Launch(std::move(plan.items), [&](size_t index, KernelId id) {
    item_kernel[index] = id;
  });
  engine.Run();
  OOBP_CHECK_EQ(gpu.kernels_completed(), item_kernel.size());

  const std::vector<TimeNs> iter_end =
      TrainIterationEndTimes(gpu, item_kernel, plan.iter_last_item);
  ++evaluations_;
  return (iter_end[kIterations - 1] - iter_end[0]) / (kIterations - 1);
}

int64_t ScheduleEvaluator::PeakMemory(const IterationSchedule& schedule) const {
  return EstimateBackpropMemory(*model_, schedule.MergedOrder()).peak;
}

}  // namespace oobp
