#include "src/search/search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/search/candidate_cache.h"
#include "src/search/fast_eval.h"
#include "src/sim/worker_pool.h"
#include "src/store/snapshot.h"

namespace oobp {
namespace {

// Score of a candidate the memory cap rejected; never beats a real time.
constexpr TimeNs kRejected = std::numeric_limits<TimeNs>::max();

// Parameterized layers in descending order — the genotype layout.
std::vector<int> WgradLayers(const TrainGraph& graph) {
  std::vector<int> layers;
  for (int i = graph.num_layers() - 1; i >= 0; --i) {
    if (graph.HasWgrad(i)) layers.push_back(i);
  }
  return layers;
}

int ClampSlot(const TrainGraph& graph, int layer, int slot) {
  return std::clamp(slot, MinSlot(graph, layer), MaxSlot(graph, layer));
}

// Allocation-free DecodeGenotype: same op sequence, but the slot bucketing
// is a single sort of the genotype (layers are unique, so (slot, -layer) is
// a total order and equals the bucket-then-sort order) and both the sort
// scratch and the output schedule are caller-owned, so the per-candidate
// decode on the search's hot path reuses its buffers instead of building
// 2L bucket vectors per call.
void DecodeGenotypeInto(const TrainGraph& graph, const Genotype& genotype,
                        std::vector<WgradGene>* scratch,
                        IterationSchedule* out) {
  const int L = graph.num_layers();
  const int backbone_size = 2 * L;
  scratch->clear();
  scratch->reserve(genotype.size());
  for (const WgradGene& gene : genotype) {
    OOBP_CHECK(graph.HasWgrad(gene.layer));
    WgradGene g = gene;
    g.slot = ClampSlot(graph, gene.layer, gene.slot);
    scratch->push_back(g);
  }
  std::sort(scratch->begin(), scratch->end(),
            [](const WgradGene& a, const WgradGene& b) {
              return a.slot != b.slot ? a.slot < b.slot : a.layer > b.layer;
            });

  out->ops.clear();
  out->ops.reserve(static_cast<size_t>(backbone_size) + 2 * scratch->size());
  size_t gi = 0;
  for (int pos = 0; pos < backbone_size; ++pos) {
    const TrainOp backbone =
        pos < L ? TrainOp{TrainOpType::kOutputGrad, L - 1 - pos}
                : TrainOp{TrainOpType::kForward, pos - L};
    out->ops.push_back({backbone, kMainStream, -1});
    for (; gi < scratch->size() && (*scratch)[gi].slot == pos; ++gi) {
      const WgradGene& gene = (*scratch)[gi];
      out->ops.push_back(
          {{TrainOpType::kWeightGrad, gene.layer}, gene.stream, -1});
      out->ops.push_back(
          {{TrainOpType::kWeightUpdate, gene.layer}, gene.stream, -1});
    }
  }
}

// Per-trajectory evaluation pipeline: mode dispatch, memory cap, budget, and
// audit bookkeeping. Exact mode reproduces the original candidate accounting
// bit-for-bit (the memory check is closed-form and free; every scored
// candidate is one simulator run). Two-tier mode scores candidates with the
// incremental analytic evaluator behind the content-addressed cache and
// budgets analytic evaluations; the simulator is touched only for the
// deterministic audit sample here and the trajectory best in RunTrajectory.
// Both modes take the memory cap from the incremental liveness walk, which
// is bit-identical to ScheduleEvaluator::PeakMemory (pinned by
// fast_eval_test) but resumes from the last common schedule prefix instead
// of recomputing from scratch per candidate.
struct SearchContext {
  const TrainGraph* graph = nullptr;
  ScheduleEvaluator* sim = nullptr;       // exact scorer (Tier B)
  FastScheduleEvaluator* fast = nullptr;  // memory walk + Tier A
  CandidateCache* cache = nullptr;        // two-tier mode only
  int64_t memory_cap = 0;
  int evals_left = 0;
  int audit_interval = 0;  // two-tier mode only; <= 0 disables audits
  bool two_tier = false;

  // Stats the wrappers can't recover from the evaluators afterwards.
  int64_t memory_rejections = 0;
  int64_t audit_samples = 0;
  double audit_err_sum = 0.0;
  double audit_err_max = 0.0;

  // Decode buffers, reused across candidates (the context is
  // single-threaded; only the evaluators read `schedule` and they keep
  // their own copies of whatever they diff against).
  std::vector<WgradGene> decode_scratch;
  IterationSchedule schedule;

  TimeNs Evaluate(const Genotype& genotype) {
    if (!two_tier) {
      DecodeGenotypeInto(*graph, genotype, &decode_scratch, &schedule);
      if (fast->PeakMemory(schedule) > memory_cap) {
        ++memory_rejections;
        return kRejected;
      }
      --evals_left;
      return sim->IterationTime(schedule);
    }
    const uint64_t hash = CandidateCache::Hash(genotype);
    if (const CandidateCache::Score* hit = cache->Lookup(genotype, hash)) {
      return hit->time;
    }
    DecodeGenotypeInto(*graph, genotype, &decode_scratch, &schedule);
    const int64_t peak = fast->PeakMemory(schedule);
    if (peak > memory_cap) {
      ++memory_rejections;
      cache->Insert(genotype, {kRejected, peak}, hash);
      return kRejected;
    }
    --evals_left;
    const TimeNs t = fast->IterationTime(schedule);
    cache->Insert(genotype, {t, peak}, hash);
    // Deterministic 1-in-K audit: the K-th, 2K-th, ... analytic evaluation
    // of this trajectory is re-scored by the simulator (outside the budget)
    // and the relative error recorded. The cache guarantees the counter
    // advances once per distinct candidate, so the sample is reproducible
    // at any thread count.
    if (audit_interval > 0 && fast->evaluations() % audit_interval == 0) {
      const TimeNs exact = sim->IterationTime(schedule);
      ++audit_samples;
      const double err =
          exact > 0 ? std::abs(static_cast<double>(t) -
                               static_cast<double>(exact)) /
                          static_cast<double>(exact)
                    : (t == exact ? 0.0 : 1.0);
      audit_err_sum += err;
      audit_err_max = std::max(audit_err_max, err);
    }
    return t;
  }
};

// The deterministic per-gene move set of the greedy sweep: the extremes and
// midpoint of the dependency window on the sub stream (the placements
// MakeOooSchedule chooses between), a stream flip in place, and the
// latest-possible main-stream placement (pure reordering, no overlap).
std::vector<WgradGene> GreedyMoves(const TrainGraph& graph,
                                   const WgradGene& gene) {
  const int lo = MinSlot(graph, gene.layer);
  const int hi = MaxSlot(graph, gene.layer);
  return {
      {gene.layer, lo, kSubStream},
      {gene.layer, hi, kSubStream},
      {gene.layer, (lo + hi) / 2, kSubStream},
      {gene.layer, gene.slot,
       gene.stream == kMainStream ? kSubStream : kMainStream},
      {gene.layer, hi, kMainStream},
  };
}

// One coordinate-descent pass framework: sweeps over genes until a full
// sweep yields no strict improvement or the budget runs out. `moves`
// produces the candidate genes to try for one position.
template <typename MoveFn>
void SweepToFixpoint(SearchContext& ctx, Genotype& cur, TimeNs& cur_time,
                     const MoveFn& moves) {
  bool improved = true;
  while (improved && ctx.evals_left > 0) {
    improved = false;
    for (size_t gi = 0; gi < cur.size(); ++gi) {
      for (const WgradGene& move : moves(cur[gi])) {
        if (ctx.evals_left <= 0) return;
        if (move == cur[gi]) continue;
        Genotype cand = cur;
        cand[gi] = move;
        const TimeNs t = ctx.Evaluate(cand);
        if (t < cur_time) {
          cur = std::move(cand);
          cur_time = t;
          improved = true;
        }
      }
    }
  }
}

// Trajectory 0: pure greedy coordinate descent from the conventional
// genotype. No randomness — this is what `beam=1` and GreedySchedule run.
void GreedyTrajectory(SearchContext& ctx, Genotype& cur, TimeNs& cur_time) {
  SweepToFixpoint(ctx, cur, cur_time, [&](const WgradGene& gene) {
    return GreedyMoves(*ctx.graph, gene);
  });
}

// Trajectories >= 1: the greedy move set plus two random placements per
// gene per sweep, then a strict-improvement random walk until the budget
// (or a deterministic attempt bound, for heavily cap-rejected walks) runs
// out. All randomness flows from the caller's seeded Rng.
void RandomTrajectory(SearchContext& ctx, Rng& rng, Genotype& cur,
                      TimeNs& cur_time) {
  auto random_gene = [&](int layer) {
    const int lo = MinSlot(*ctx.graph, layer);
    const int hi = MaxSlot(*ctx.graph, layer);
    const int slot = lo + static_cast<int>(rng.NextBelow(hi - lo + 1));
    const int stream = rng.NextBelow(2) == 0 ? kMainStream : kSubStream;
    return WgradGene{layer, slot, stream};
  };
  SweepToFixpoint(ctx, cur, cur_time, [&](const WgradGene& gene) {
    std::vector<WgradGene> moves = GreedyMoves(*ctx.graph, gene);
    moves.push_back(random_gene(gene.layer));
    moves.push_back(random_gene(gene.layer));
    return moves;
  });
  if (cur.empty()) return;
  for (int attempts = 4 * ctx.evals_left;
       attempts > 0 && ctx.evals_left > 0; --attempts) {
    const size_t gi = rng.NextBelow(cur.size());
    WgradGene move = random_gene(cur[gi].layer);
    if (move == cur[gi]) continue;
    Genotype cand = cur;
    cand[gi] = move;
    const TimeNs t = ctx.Evaluate(cand);
    if (t < cur_time) {
      cur = std::move(cand);
      cur_time = t;
    }
  }
}

// Derives the genotype closest to an existing schedule (typically
// MakeOooSchedule's): each dW keeps its stream and maps to the slot of the
// last backbone op issued before it, clamped into the dependency window.
Genotype DeriveGenotype(const TrainGraph& graph,
                        const IterationSchedule& schedule) {
  const int L = graph.num_layers();
  std::vector<WgradGene> by_layer(L);
  std::vector<bool> seen(L, false);
  int backbone_pos = -1;  // index of the last backbone (dO/F) op issued
  for (const ScheduledOp& s : schedule.ops) {
    switch (s.op.type) {
      case TrainOpType::kOutputGrad:
      case TrainOpType::kForward:
        ++backbone_pos;
        break;
      case TrainOpType::kWeightGrad:
        seen[s.op.layer] = true;
        by_layer[s.op.layer] = {s.op.layer,
                                ClampSlot(graph, s.op.layer,
                                          std::max(backbone_pos, 0)),
                                s.stream};
        break;
      case TrainOpType::kWeightUpdate:
        break;  // bound to its dW by the decoder
    }
  }
  Genotype genotype;
  for (int layer : WgradLayers(graph)) {
    genotype.push_back(seen[layer]
                           ? by_layer[layer]
                           : WgradGene{layer, ClampSlot(graph, layer, L - 1 - layer),
                                       kMainStream});
  }
  return genotype;
}

// Everything a finished trajectory hands back to the coordinator. In
// two-tier mode `time` is a simulator score of `genotype` (Tier B) — no
// analytic number crosses this boundary, so every value that can become the
// reported best_time is exact.
struct TrajectoryOutcome {
  Genotype genotype;
  TimeNs time = kRejected;
  int64_t sim_evals = 0;
  int64_t analytic_evals = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  int64_t memory_rejections = 0;
  int64_t audit_samples = 0;
  double audit_err_sum = 0.0;
  double audit_err_max = 0.0;
};

// One trajectory of the portfolio, self-contained: private evaluators,
// cache, and Rng, so trajectories are pure functions of their index and may
// run on any worker thread in any order.
TrajectoryOutcome RunTrajectory(const TrainGraph& graph, const GpuSpec& gpu,
                                const SystemProfile& profile,
                                const SearchOptions& options, int j,
                                const Genotype& conventional_genotype,
                                TimeNs conventional_time, int64_t cap,
                                const Genotype* ooo_genotype) {
  const bool two_tier = options.eval_mode == SearchEvalMode::kTwoTier;
  ScheduleEvaluator sim(&graph.model(), gpu, profile);
  FastScheduleEvaluator fast(&graph.model(), gpu, profile);
  CandidateCache cache;
  SearchContext ctx{&graph,
                    &sim,
                    &fast,
                    two_tier ? &cache : nullptr,
                    cap,
                    options.budget,
                    two_tier ? options.audit_interval : 0,
                    two_tier};
  Genotype cur;
  TimeNs cur_time = kRejected;
  if (j == 0) {
    cur = conventional_genotype;
    if (two_tier) {
      // The trajectory's internal currency is analytic time, so the greedy
      // baseline must be analytic too (one budgeted evaluation).
      if (ctx.evals_left > 0) cur_time = ctx.Evaluate(cur);
    } else {
      cur_time = conventional_time;  // scored once by the coordinator
    }
    GreedyTrajectory(ctx, cur, cur_time);
  } else {
    Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(j));
    cur = *ooo_genotype;
    if (ctx.evals_left > 0) cur_time = ctx.Evaluate(cur);
    if (cur_time == kRejected) {
      // Over the memory cap after re-decoding (or zero budget): restart
      // from the always-admissible conventional point.
      cur = conventional_genotype;
      if (two_tier) {
        if (ctx.evals_left > 0) cur_time = ctx.Evaluate(cur);
      } else {
        cur_time = conventional_time;
      }
    }
    RandomTrajectory(ctx, rng, cur, cur_time);
  }

  TrajectoryOutcome out;
  if (two_tier) {
    // Tier B: the only number that escapes a two-tier trajectory is a
    // simulator score of its final point.
    out.time = sim.IterationTime(DecodeGenotype(graph, cur));
  } else {
    out.time = cur_time;
  }
  out.genotype = std::move(cur);
  out.sim_evals = sim.evaluations();
  out.analytic_evals = fast.evaluations();
  out.cache_hits = cache.hits();
  out.cache_misses = cache.misses();
  out.memory_rejections = ctx.memory_rejections;
  out.audit_samples = ctx.audit_samples;
  out.audit_err_sum = ctx.audit_err_sum;
  out.audit_err_max = ctx.audit_err_max;
  return out;
}

SearchResult AssembleResult(const TrainGraph& graph, ScheduleEvaluator& eval,
                            Genotype best, TimeNs best_time,
                            TimeNs conventional_time,
                            const SearchStats& stats) {
  SearchResult out;
  out.schedule = DecodeGenotype(graph, best);
  out.genotype = std::move(best);
  out.best_time = best_time;
  out.conventional_time = conventional_time;
  out.peak_memory = eval.PeakMemory(out.schedule);
  out.evaluations = stats.sim_evals;
  out.stats = stats;
  // Structural self-check: the decoded gradient order must satisfy the
  // training-graph dependencies. Callers additionally run the full
  // CheckIterationSchedule gate (src/validate); a failure here is a decoder
  // bug, never a property of the searched point.
  std::vector<TrainOp> grad_order;
  for (const ScheduledOp& s : out.schedule.ops) {
    if (s.op.type == TrainOpType::kOutputGrad ||
        s.op.type == TrainOpType::kWeightGrad) {
      grad_order.push_back(s.op);
    }
  }
  OOBP_CHECK(graph.ValidateBackpropOrder(grad_order));
  return out;
}

}  // namespace

int MinSlot(const TrainGraph& graph, int layer) {
  const int L = graph.num_layers();
  OOBP_CHECK_GE(layer, 0);
  OOBP_CHECK_LT(layer, L);
  // dW_i consumes dO_{i+1}, which sits at backbone index L-2-i; dW_{L-1}
  // only needs the loss gradient and may go anywhere after dO_{L-1}.
  return layer < L - 1 ? L - 2 - layer : 0;
}

int MaxSlot(const TrainGraph& graph, int layer) {
  // U_i must land before F_i (backbone index L+layer), i.e. at the latest
  // directly after backbone op L+layer-1.
  return graph.num_layers() + layer - 1;
}

Genotype ConventionalGenotype(const TrainGraph& graph) {
  const int L = graph.num_layers();
  Genotype genotype;
  for (int layer : WgradLayers(graph)) {
    // Directly after dO_i (backbone index L-1-i), main stream — decodes to
    // ConventionalIteration exactly.
    genotype.push_back({layer, L - 1 - layer, kMainStream});
  }
  return genotype;
}

IterationSchedule DecodeGenotype(const TrainGraph& graph,
                                 const Genotype& genotype) {
  // Genes bucket by (clamped) slot with descending layer order within a
  // slot, which keeps the decoder a bijection on sorted genotypes; the
  // hot-path helper realizes the same order with a single sort.
  std::vector<WgradGene> scratch;
  IterationSchedule schedule;
  DecodeGenotypeInto(graph, genotype, &scratch, &schedule);
  return schedule;
}

SearchResult GreedySchedule(const TrainGraph& graph, const GpuSpec& gpu,
                            const SystemProfile& profile,
                            const SearchOptions& options) {
  // Trajectory 0 only: the portfolio at beam=1 (`seed` is unused there).
  SearchOptions greedy = options;
  greedy.beam = 1;
  return SearchSchedule(graph, gpu, profile, greedy);
}

SearchResult SearchSchedule(const TrainGraph& graph, const GpuSpec& gpu,
                            const SystemProfile& profile,
                            const SearchOptions& options) {
  OOBP_CHECK_GE(options.beam, 1);
  OOBP_CHECK_GE(options.budget, 0);
  OOBP_CHECK_GE(options.memory_cap_factor, 1.0);
  OOBP_CHECK_GE(options.threads, 1);
  ScheduleEvaluator eval(&graph.model(), gpu, profile);
  const IterationSchedule conventional = ConventionalIteration(graph);
  const TimeNs conventional_time = eval.IterationTime(conventional);
  const int64_t cap = static_cast<int64_t>(options.memory_cap_factor *
                                           eval.PeakMemory(conventional));
  const Genotype conventional_genotype = ConventionalGenotype(graph);

  // Trajectory inputs that must come from the coordinator: the snapshot
  // store round-trip in SnapshotOooSchedule is not a worker-thread citizen,
  // and hoisting it keeps every trajectory a pure function of its index.
  // Seeded trajectories start from the heuristic's own point — the search
  // refines MakeOooSchedule rather than rediscovering it.
  Genotype ooo_genotype;
  if (options.beam > 1) {
    const JointScheduleResult ooo =
        SnapshotOooSchedule(graph, gpu, profile, options.memory_cap_factor);
    ooo_genotype = DeriveGenotype(graph, ooo.schedule);
  }

  // The portfolio: every trajectory owns its evaluators, cache, and Rng, so
  // the pool may run them in any order on any worker; the index-ordered
  // merge below makes the result byte-identical at every thread count.
  std::vector<TrajectoryOutcome> outcomes(options.beam);
  WorkerPool pool(std::min(options.threads, options.beam));
  pool.Run(static_cast<size_t>(options.beam), [&](size_t j, int) {
    outcomes[j] = RunTrajectory(graph, gpu, profile, options,
                                static_cast<int>(j), conventional_genotype,
                                conventional_time, cap,
                                options.beam > 1 ? &ooo_genotype : nullptr);
  });

  // Global best starts at the in-order baseline, so the search can never
  // return something worse; strict-improvement acceptance everywhere keeps
  // the portfolio monotone in `beam` (every trajectory is independent, and
  // beam B+1 evaluates a superset of beam B's candidates).
  Genotype best = conventional_genotype;
  TimeNs best_time = conventional_time;
  SearchStats stats;
  stats.sim_evals = eval.evaluations();
  double audit_err_sum = 0.0;
  for (TrajectoryOutcome& o : outcomes) {
    if (o.time < best_time) {
      best = std::move(o.genotype);
      best_time = o.time;
    }
    stats.sim_evals += o.sim_evals;
    stats.analytic_evals += o.analytic_evals;
    stats.cache_hits += o.cache_hits;
    stats.cache_misses += o.cache_misses;
    stats.memory_rejections += o.memory_rejections;
    stats.audit_samples += o.audit_samples;
    audit_err_sum += o.audit_err_sum;
    stats.audit_max_rel_err = std::max(stats.audit_max_rel_err,
                                       o.audit_err_max);
  }
  if (stats.audit_samples > 0) {
    stats.audit_mean_rel_err =
        audit_err_sum / static_cast<double>(stats.audit_samples);
  }
  return AssembleResult(graph, eval, std::move(best), best_time,
                        conventional_time, stats);
}

JointScheduleResult SnapshotSearchSchedule(const TrainGraph& graph,
                                           const GpuSpec& gpu,
                                           const SystemProfile& profile,
                                           const SearchOptions& options) {
  // The evaluator version participates in the content key: bumping
  // FastScheduleEvaluator::kVersion (or switching modes) silently
  // invalidates schedules searched under the old pipeline instead of
  // replaying them.
  const int evaluator_version =
      options.eval_mode == SearchEvalMode::kTwoTier
          ? FastScheduleEvaluator::kVersion
          : 0;
  const uint64_t key =
      SearchKeyHash(graph.model(), gpu, profile, options.beam, options.seed,
                    options.budget, options.memory_cap_factor,
                    evaluator_version);
  if (std::shared_ptr<const SnapshotReader> reader = ActiveSnapshot()) {
    if (std::optional<JointScheduleResult> hit = reader->FindSchedule(key)) {
      return *std::move(hit);
    }
  }
  SearchResult searched = SearchSchedule(graph, gpu, profile, options);
  JointScheduleResult result;
  result.schedule = std::move(searched.schedule);
  result.peak_memory = searched.peak_memory;
  RecordSnapshotSchedule(key, result, gpu, profile);
  return result;
}

}  // namespace oobp
