#include "src/search/search.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/store/snapshot.h"

namespace oobp {
namespace {

// Score of a candidate the memory cap rejected; never beats a real time.
constexpr TimeNs kRejected = std::numeric_limits<TimeNs>::max();

// Parameterized layers in descending order — the genotype layout.
std::vector<int> WgradLayers(const TrainGraph& graph) {
  std::vector<int> layers;
  for (int i = graph.num_layers() - 1; i >= 0; --i) {
    if (graph.HasWgrad(i)) layers.push_back(i);
  }
  return layers;
}

int ClampSlot(const TrainGraph& graph, int layer, int slot) {
  return std::clamp(slot, MinSlot(graph, layer), MaxSlot(graph, layer));
}

// Shared state of one search: scoring, memory cap, and the per-trajectory
// evaluation budget. Memory-rejected candidates are free (the memory model
// is closed-form); only simulator runs consume budget.
struct SearchContext {
  const TrainGraph* graph = nullptr;
  ScheduleEvaluator* eval = nullptr;
  int64_t memory_cap = 0;
  int evals_left = 0;

  TimeNs Evaluate(const Genotype& genotype) {
    const IterationSchedule schedule = DecodeGenotype(*graph, genotype);
    if (eval->PeakMemory(schedule) > memory_cap) return kRejected;
    --evals_left;
    return eval->IterationTime(schedule);
  }
};

// The deterministic per-gene move set of the greedy sweep: the extremes and
// midpoint of the dependency window on the sub stream (the placements
// MakeOooSchedule chooses between), a stream flip in place, and the
// latest-possible main-stream placement (pure reordering, no overlap).
std::vector<WgradGene> GreedyMoves(const TrainGraph& graph,
                                   const WgradGene& gene) {
  const int lo = MinSlot(graph, gene.layer);
  const int hi = MaxSlot(graph, gene.layer);
  return {
      {gene.layer, lo, kSubStream},
      {gene.layer, hi, kSubStream},
      {gene.layer, (lo + hi) / 2, kSubStream},
      {gene.layer, gene.slot,
       gene.stream == kMainStream ? kSubStream : kMainStream},
      {gene.layer, hi, kMainStream},
  };
}

// One coordinate-descent pass framework: sweeps over genes until a full
// sweep yields no strict improvement or the budget runs out. `moves`
// produces the candidate genes to try for one position.
template <typename MoveFn>
void SweepToFixpoint(SearchContext& ctx, Genotype& cur, TimeNs& cur_time,
                     const MoveFn& moves) {
  bool improved = true;
  while (improved && ctx.evals_left > 0) {
    improved = false;
    for (size_t gi = 0; gi < cur.size(); ++gi) {
      for (const WgradGene& move : moves(cur[gi])) {
        if (ctx.evals_left <= 0) return;
        if (move == cur[gi]) continue;
        Genotype cand = cur;
        cand[gi] = move;
        const TimeNs t = ctx.Evaluate(cand);
        if (t < cur_time) {
          cur = std::move(cand);
          cur_time = t;
          improved = true;
        }
      }
    }
  }
}

// Trajectory 0: pure greedy coordinate descent from the conventional
// genotype. No randomness — this is what `beam=1` and GreedySchedule run.
void GreedyTrajectory(SearchContext& ctx, Genotype& cur, TimeNs& cur_time) {
  SweepToFixpoint(ctx, cur, cur_time, [&](const WgradGene& gene) {
    return GreedyMoves(*ctx.graph, gene);
  });
}

// Trajectories >= 1: the greedy move set plus two random placements per
// gene per sweep, then a strict-improvement random walk until the budget
// (or a deterministic attempt bound, for heavily cap-rejected walks) runs
// out. All randomness flows from the caller's seeded Rng.
void RandomTrajectory(SearchContext& ctx, Rng& rng, Genotype& cur,
                      TimeNs& cur_time) {
  auto random_gene = [&](int layer) {
    const int lo = MinSlot(*ctx.graph, layer);
    const int hi = MaxSlot(*ctx.graph, layer);
    const int slot = lo + static_cast<int>(rng.NextBelow(hi - lo + 1));
    const int stream = rng.NextBelow(2) == 0 ? kMainStream : kSubStream;
    return WgradGene{layer, slot, stream};
  };
  SweepToFixpoint(ctx, cur, cur_time, [&](const WgradGene& gene) {
    std::vector<WgradGene> moves = GreedyMoves(*ctx.graph, gene);
    moves.push_back(random_gene(gene.layer));
    moves.push_back(random_gene(gene.layer));
    return moves;
  });
  if (cur.empty()) return;
  for (int attempts = 4 * ctx.evals_left;
       attempts > 0 && ctx.evals_left > 0; --attempts) {
    const size_t gi = rng.NextBelow(cur.size());
    WgradGene move = random_gene(cur[gi].layer);
    if (move == cur[gi]) continue;
    Genotype cand = cur;
    cand[gi] = move;
    const TimeNs t = ctx.Evaluate(cand);
    if (t < cur_time) {
      cur = std::move(cand);
      cur_time = t;
    }
  }
}

// Derives the genotype closest to an existing schedule (typically
// MakeOooSchedule's): each dW keeps its stream and maps to the slot of the
// last backbone op issued before it, clamped into the dependency window.
Genotype DeriveGenotype(const TrainGraph& graph,
                        const IterationSchedule& schedule) {
  const int L = graph.num_layers();
  std::vector<WgradGene> by_layer(L);
  std::vector<bool> seen(L, false);
  int backbone_pos = -1;  // index of the last backbone (dO/F) op issued
  for (const ScheduledOp& s : schedule.ops) {
    switch (s.op.type) {
      case TrainOpType::kOutputGrad:
      case TrainOpType::kForward:
        ++backbone_pos;
        break;
      case TrainOpType::kWeightGrad:
        seen[s.op.layer] = true;
        by_layer[s.op.layer] = {s.op.layer,
                                ClampSlot(graph, s.op.layer,
                                          std::max(backbone_pos, 0)),
                                s.stream};
        break;
      case TrainOpType::kWeightUpdate:
        break;  // bound to its dW by the decoder
    }
  }
  Genotype genotype;
  for (int layer : WgradLayers(graph)) {
    genotype.push_back(seen[layer]
                           ? by_layer[layer]
                           : WgradGene{layer, ClampSlot(graph, layer, L - 1 - layer),
                                       kMainStream});
  }
  return genotype;
}

SearchResult AssembleResult(const TrainGraph& graph, ScheduleEvaluator& eval,
                            Genotype best, TimeNs best_time,
                            TimeNs conventional_time) {
  SearchResult out;
  out.schedule = DecodeGenotype(graph, best);
  out.genotype = std::move(best);
  out.best_time = best_time;
  out.conventional_time = conventional_time;
  out.peak_memory = eval.PeakMemory(out.schedule);
  out.evaluations = eval.evaluations();
  // Structural self-check: the decoded gradient order must satisfy the
  // training-graph dependencies. Callers additionally run the full
  // CheckIterationSchedule gate (src/validate); a failure here is a decoder
  // bug, never a property of the searched point.
  std::vector<TrainOp> grad_order;
  for (const ScheduledOp& s : out.schedule.ops) {
    if (s.op.type == TrainOpType::kOutputGrad ||
        s.op.type == TrainOpType::kWeightGrad) {
      grad_order.push_back(s.op);
    }
  }
  OOBP_CHECK(graph.ValidateBackpropOrder(grad_order));
  return out;
}

}  // namespace

int MinSlot(const TrainGraph& graph, int layer) {
  const int L = graph.num_layers();
  OOBP_CHECK_GE(layer, 0);
  OOBP_CHECK_LT(layer, L);
  // dW_i consumes dO_{i+1}, which sits at backbone index L-2-i; dW_{L-1}
  // only needs the loss gradient and may go anywhere after dO_{L-1}.
  return layer < L - 1 ? L - 2 - layer : 0;
}

int MaxSlot(const TrainGraph& graph, int layer) {
  // U_i must land before F_i (backbone index L+layer), i.e. at the latest
  // directly after backbone op L+layer-1.
  return graph.num_layers() + layer - 1;
}

Genotype ConventionalGenotype(const TrainGraph& graph) {
  const int L = graph.num_layers();
  Genotype genotype;
  for (int layer : WgradLayers(graph)) {
    // Directly after dO_i (backbone index L-1-i), main stream — decodes to
    // ConventionalIteration exactly.
    genotype.push_back({layer, L - 1 - layer, kMainStream});
  }
  return genotype;
}

IterationSchedule DecodeGenotype(const TrainGraph& graph,
                                 const Genotype& genotype) {
  const int L = graph.num_layers();
  const int backbone_size = 2 * L;
  // Bucket genes by (clamped) slot; within a slot, descending layer order
  // keeps the decoder a bijection on sorted genotypes.
  std::vector<std::vector<WgradGene>> slot_genes(backbone_size);
  for (const WgradGene& gene : genotype) {
    OOBP_CHECK(graph.HasWgrad(gene.layer));
    slot_genes[ClampSlot(graph, gene.layer, gene.slot)].push_back(gene);
  }
  for (std::vector<WgradGene>& bucket : slot_genes) {
    std::sort(bucket.begin(), bucket.end(),
              [](const WgradGene& a, const WgradGene& b) {
                return a.layer > b.layer;
              });
  }

  IterationSchedule schedule;
  for (int pos = 0; pos < backbone_size; ++pos) {
    const TrainOp backbone =
        pos < L ? TrainOp{TrainOpType::kOutputGrad, L - 1 - pos}
                : TrainOp{TrainOpType::kForward, pos - L};
    schedule.ops.push_back({backbone, kMainStream, -1});
    for (const WgradGene& gene : slot_genes[pos]) {
      schedule.ops.push_back(
          {{TrainOpType::kWeightGrad, gene.layer}, gene.stream, -1});
      schedule.ops.push_back(
          {{TrainOpType::kWeightUpdate, gene.layer}, gene.stream, -1});
    }
  }
  return schedule;
}

SearchResult GreedySchedule(const TrainGraph& graph, const GpuSpec& gpu,
                            const SystemProfile& profile,
                            const SearchOptions& options) {
  OOBP_CHECK_GE(options.budget, 0);
  OOBP_CHECK_GE(options.memory_cap_factor, 1.0);
  ScheduleEvaluator eval(&graph.model(), gpu, profile);
  const IterationSchedule conventional = ConventionalIteration(graph);
  const TimeNs conventional_time = eval.IterationTime(conventional);
  const int64_t cap = static_cast<int64_t>(options.memory_cap_factor *
                                           eval.PeakMemory(conventional));
  Genotype cur = ConventionalGenotype(graph);
  TimeNs cur_time = conventional_time;
  SearchContext ctx{&graph, &eval, cap, options.budget};
  GreedyTrajectory(ctx, cur, cur_time);
  return AssembleResult(graph, eval, std::move(cur), cur_time,
                        conventional_time);
}

SearchResult SearchSchedule(const TrainGraph& graph, const GpuSpec& gpu,
                            const SystemProfile& profile,
                            const SearchOptions& options) {
  OOBP_CHECK_GE(options.beam, 1);
  OOBP_CHECK_GE(options.budget, 0);
  OOBP_CHECK_GE(options.memory_cap_factor, 1.0);
  ScheduleEvaluator eval(&graph.model(), gpu, profile);
  const IterationSchedule conventional = ConventionalIteration(graph);
  const TimeNs conventional_time = eval.IterationTime(conventional);
  const int64_t cap = static_cast<int64_t>(options.memory_cap_factor *
                                           eval.PeakMemory(conventional));

  // Global best starts at the in-order baseline, so the search can never
  // return something worse; strict-improvement acceptance everywhere keeps
  // the portfolio monotone in `beam` (every trajectory is independent, and
  // beam B+1 evaluates a superset of beam B's candidates).
  Genotype best = ConventionalGenotype(graph);
  TimeNs best_time = conventional_time;

  {
    SearchContext ctx{&graph, &eval, cap, options.budget};
    Genotype cur = ConventionalGenotype(graph);
    TimeNs cur_time = conventional_time;
    GreedyTrajectory(ctx, cur, cur_time);
    if (cur_time < best_time) {
      best = std::move(cur);
      best_time = cur_time;
    }
  }

  if (options.beam > 1) {
    // Seeded trajectories start from the heuristic's own point — the search
    // refines MakeOooSchedule rather than rediscovering it.
    const JointScheduleResult ooo =
        SnapshotOooSchedule(graph, gpu, profile, options.memory_cap_factor);
    const Genotype ooo_genotype = DeriveGenotype(graph, ooo.schedule);
    for (int j = 1; j < options.beam; ++j) {
      SearchContext ctx{&graph, &eval, cap, options.budget};
      Rng rng(options.seed * 0x9E3779B97F4A7C15ULL +
              static_cast<uint64_t>(j));
      Genotype cur = ooo_genotype;
      TimeNs cur_time = kRejected;
      if (ctx.evals_left > 0) cur_time = ctx.Evaluate(cur);
      if (cur_time == kRejected) {
        // Over the memory cap after re-decoding (or zero budget): restart
        // from the always-admissible conventional point.
        cur = ConventionalGenotype(graph);
        cur_time = conventional_time;
      }
      RandomTrajectory(ctx, rng, cur, cur_time);
      if (cur_time < best_time) {
        best = std::move(cur);
        best_time = cur_time;
      }
    }
  }
  return AssembleResult(graph, eval, std::move(best), best_time,
                        conventional_time);
}

JointScheduleResult SnapshotSearchSchedule(const TrainGraph& graph,
                                           const GpuSpec& gpu,
                                           const SystemProfile& profile,
                                           const SearchOptions& options) {
  const uint64_t key =
      SearchKeyHash(graph.model(), gpu, profile, options.beam, options.seed,
                    options.budget, options.memory_cap_factor);
  if (std::shared_ptr<const SnapshotReader> reader = ActiveSnapshot()) {
    if (std::optional<JointScheduleResult> hit = reader->FindSchedule(key)) {
      return *std::move(hit);
    }
  }
  SearchResult searched = SearchSchedule(graph, gpu, profile, options);
  JointScheduleResult result;
  result.schedule = std::move(searched.schedule);
  result.peak_memory = searched.peak_memory;
  RecordSnapshotSchedule(key, result, gpu, profile);
  return result;
}

}  // namespace oobp
