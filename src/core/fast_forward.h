// Gradient fast-forwarding for pipeline-parallel training (Section 5.2.1).
//
// Within one pipeline stage's backward pass, all output-gradient
// computations are prioritized over all weight-gradient computations, so the
// gradient reaching the *previous* stage is produced as early as possible
// and that stage can start working while this one fills its idle time with
// the deferred weight gradients. This is the pipeline instantiation of
// out-of-order backprop.

#ifndef OOBP_SRC_CORE_FAST_FORWARD_H_
#define OOBP_SRC_CORE_FAST_FORWARD_H_

#include <vector>

#include "src/nn/train_graph.h"

namespace oobp {

// Backward op order for a stage owning `stage_layers` (any subset of model
// layers, ascending). Conventional: dO/dW interleaved in descending layer
// order. Fast-forwarded: all dO (descending), then all dW (descending).
std::vector<TrainOp> StageBackwardOrder(const TrainGraph& graph,
                                        const std::vector<int>& stage_layers,
                                        bool fast_forward);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_FAST_FORWARD_H_
