// Live-tensor memory accounting for backpropagation schedules.
//
// Out-of-order backprop trades memory for overlap: delaying dW_i keeps layer
// i's input activation and incoming gradient alive longer (Section 3:
// "because the weight gradient computation of a layer requires the layer's
// input and output gradient, they must be retained in memory until the
// computation is done"). This model walks a backprop op order and tracks the
// tensors live at each step:
//   * output_bytes[j] (activation of layer j) is live from backprop start
//     until dW_{j+1} completes (dO_{j+1} if layer j+1 has no weights);
//   * stash_bytes[i] (internal activations) is live until dO_i completes;
//   * the gradient flowing into layer i (size output_bytes[i]) is allocated
//     when dO_{i+1} runs (the loss gradient pre-exists) and freed once both
//     dO_i and dW_i have consumed it;
//   * a kernel's workspace is live only while it runs.
// Weights, optimizer state and gradient buffers are a schedule-independent
// base and reported separately.

#ifndef OOBP_SRC_CORE_MEMORY_MODEL_H_
#define OOBP_SRC_CORE_MEMORY_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/nn/train_graph.h"

namespace oobp {

struct MemoryTimeline {
  // Live bytes after each op of the analyzed order (excluding `base`).
  std::vector<int64_t> usage_after;
  // Live bytes while each op runs (includes its workspace).
  std::vector<int64_t> usage_during;
  int64_t initial = 0;  // live activation bytes at backprop start
  int64_t base = 0;     // weights + optimizer state + gradient buffers
  int64_t peak = 0;     // max over usage_during and initial (excludes base)

  int64_t peak_total() const { return peak + base; }
};

// `order` must be a valid backprop order (dO/dW ops only); ops of other
// types are ignored so a full-iteration merged order can be passed directly.
MemoryTimeline EstimateBackpropMemory(const NnModel& model,
                                      const std::vector<TrainOp>& order);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_MEMORY_MODEL_H_
