#include "src/core/corun_profiler.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/hw/gpu.h"

namespace oobp {

CorunProfiler::CorunProfiler(const TrainGraph& graph, const CostModel& cost,
                             std::vector<Region> regions)
    : graph_(&graph), cost_(&cost), regions_(std::move(regions)) {
  const double capacity = static_cast<double>(cost_->gpu().slot_capacity());
  const TimeNs setup = cost_->gpu().kernel_exec_overhead;
  const int L = graph_->num_layers();

  // The cost model is pure in (layer, op type); evaluate each pair once.
  constexpr int kNumOpTypes = 4;
  cost_cache_.resize(static_cast<size_t>(L) * kNumOpTypes);
  for (int i = 0; i < L; ++i) {
    for (int t = 0; t < kNumOpTypes; ++t) {
      cost_cache_[static_cast<size_t>(i) * kNumOpTypes + t] =
          cost_->Cost(graph_->model().layers[i], static_cast<TrainOpType>(t));
    }
  }

  profiles_.resize(regions_.size());
  seg_end_.resize(regions_.size());
  main_duration_.assign(regions_.size(), 0);
  dgrad_end_.assign(L, {-1, 0});
  fwd_region_.assign(L, -1);
  for (size_t r = 0; r < regions_.size(); ++r) {
    TimeNs offset = 0;
    for (const TrainOp& op : regions_[r].main_ops) {
      const KernelCost& kc = CachedCost(op);
      // The per-kernel SM setup gap leaves the whole device to the sub
      // stream — in saturated regions this is the only co-run capacity,
      // which is exactly the paper's R2 observation (the gain there equals
      // the summed kernel execution overhead, ~6%).
      if (setup > 0) {
        profiles_[r].push_back({setup, capacity});
      }
      Segment seg;
      seg.duration = kc.duration;
      seg.leftover = capacity - EffectiveOccupancy(kc.thread_blocks, capacity);
      profiles_[r].push_back(seg);
      offset += seg.duration + setup;
      if (op.type == TrainOpType::kOutputGrad) {
        dgrad_end_[op.layer] = {static_cast<int>(r), offset};
      } else if (op.type == TrainOpType::kForward) {
        if (fwd_region_[op.layer] < 0) {
          fwd_region_[op.layer] = static_cast<int>(r);
        }
      }
    }
    main_duration_[r] = offset;
    seg_end_[r].reserve(profiles_[r].size());
    TimeNs end = 0;
    for (const Segment& seg : profiles_[r]) {
      end += seg.duration;
      seg_end_[r].push_back(end);
    }
  }
}

const KernelCost& CorunProfiler::CachedCost(const TrainOp& op) const {
  return cost_cache_[static_cast<size_t>(op.layer) * 4 +
                     static_cast<int>(op.type)];
}

TimeNs CorunProfiler::MainDuration(int r) const {
  OOBP_CHECK_GE(r, 0);
  OOBP_CHECK_LT(r, num_regions());
  return main_duration_[r];
}

TimeNs CorunProfiler::SoloTime(const TrainOp& op) const {
  return CachedCost(op).duration;
}

TimeNs CorunProfiler::SubTimeAt(int r, const TrainOp& op, TimeNs offset) const {
  OOBP_CHECK_GE(r, 0);
  OOBP_CHECK_LT(r, num_regions());
  OOBP_CHECK_GE(offset, 0);
  const double capacity = static_cast<double>(cost_->gpu().slot_capacity());
  const KernelCost& kc = CachedCost(op);
  const double solo_rate = EffectiveOccupancy(kc.thread_blocks, capacity);
  double work = static_cast<double>(kc.duration) * solo_rate;

  // Skip straight to the first segment whose end lies past `offset`; the
  // per-region prefix sums make this a binary search rather than a scan of
  // every earlier segment on every query.
  const std::vector<TimeNs>& ends = seg_end_[r];
  const size_t first =
      std::upper_bound(ends.begin(), ends.end(), offset) - ends.begin();

  TimeNs t = 0;  // time elapsed since the kernel started (at `offset`)
  TimeNs seg_start = first == 0 ? 0 : ends[first - 1];
  for (size_t k = first; k < profiles_[r].size(); ++k) {
    const Segment& seg = profiles_[r][k];
    const TimeNs seg_end = seg_start + seg.duration;
    const TimeNs begin = std::max(seg_start, offset);
    const TimeNs avail = seg_end - begin;
    // Same allocation rule as the fluid GPU model: the kernel's wave-average
    // occupancy, clipped to the segment's leftover slots.
    const double rate = std::min(solo_rate, seg.leftover);
    if (rate > 0.0) {
      const double drained = rate * static_cast<double>(avail);
      if (drained >= work) {
        return t + static_cast<TimeNs>(std::ceil(work / rate));
      }
      work -= drained;
    }
    t += avail;
    seg_start = seg_end;
  }
  // Past the region end the kernel has the device to itself.
  return t + static_cast<TimeNs>(std::ceil(work / solo_rate));
}

double CorunProfiler::SpeedupAt(int r, const TrainOp& op, TimeNs offset) const {
  const TimeNs main_left = std::max<TimeNs>(0, MainDuration(r) - offset);
  const TimeNs solo = SoloTime(op);
  const TimeNs joint = std::max(main_left, SubTimeAt(r, op, offset));
  if (joint <= 0) {
    return 1.0;
  }
  return static_cast<double>(main_left + solo) / static_cast<double>(joint);
}

std::pair<int, TimeNs> CorunProfiler::ReadyPoint(const TrainOp& op) const {
  OOBP_CHECK(op.type == TrainOpType::kWeightGrad);
  const int producer = op.layer + 1;
  if (producer >= graph_->num_layers()) {
    return {0, 0};  // the loss gradient is available at backprop start
  }
  const std::pair<int, TimeNs>& end = dgrad_end_[producer];
  OOBP_CHECK_GE(end.first, 0)
      << "dO[" << producer << "] not present in any region";
  return end;
}

int CorunProfiler::DeadlineRegion(const TrainOp& op) const {
  OOBP_CHECK(op.type == TrainOpType::kWeightGrad);
  const int r = fwd_region_[op.layer];
  return r < 0 ? num_regions() : r;
}

}  // namespace oobp
