#include "src/core/corun_profiler.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/hw/gpu.h"

namespace oobp {

CorunProfiler::CorunProfiler(const TrainGraph& graph, const CostModel& cost,
                             std::vector<Region> regions)
    : graph_(&graph), cost_(&cost), regions_(std::move(regions)) {
  const double capacity = static_cast<double>(cost_->gpu().slot_capacity());
  const TimeNs setup = cost_->gpu().kernel_exec_overhead;

  profiles_.resize(regions_.size());
  main_duration_.assign(regions_.size(), 0);
  for (size_t r = 0; r < regions_.size(); ++r) {
    TimeNs offset = 0;
    for (const TrainOp& op : regions_[r].main_ops) {
      const KernelCost kc = cost_->Cost(graph_->model().layers[op.layer], op.type);
      // The per-kernel SM setup gap leaves the whole device to the sub
      // stream — in saturated regions this is the only co-run capacity,
      // which is exactly the paper's R2 observation (the gain there equals
      // the summed kernel execution overhead, ~6%).
      if (setup > 0) {
        profiles_[r].push_back({setup, capacity});
      }
      Segment seg;
      seg.duration = kc.duration;
      seg.leftover = capacity - EffectiveOccupancy(kc.thread_blocks, capacity);
      profiles_[r].push_back(seg);
      offset += seg.duration + setup;
      if (op.type == TrainOpType::kOutputGrad) {
        dgrad_end_[op.layer] = {static_cast<int>(r), offset};
      } else if (op.type == TrainOpType::kForward) {
        if (fwd_region_.find(op.layer) == fwd_region_.end()) {
          fwd_region_[op.layer] = static_cast<int>(r);
        }
      }
    }
    main_duration_[r] = offset;
  }
}

TimeNs CorunProfiler::MainDuration(int r) const {
  OOBP_CHECK_GE(r, 0);
  OOBP_CHECK_LT(r, num_regions());
  return main_duration_[r];
}

TimeNs CorunProfiler::SoloTime(const TrainOp& op) const {
  return cost_->Cost(graph_->model().layers[op.layer], op.type).duration;
}

TimeNs CorunProfiler::SubTimeAt(int r, const TrainOp& op, TimeNs offset) const {
  OOBP_CHECK_GE(r, 0);
  OOBP_CHECK_LT(r, num_regions());
  OOBP_CHECK_GE(offset, 0);
  const double capacity = static_cast<double>(cost_->gpu().slot_capacity());
  const KernelCost kc = cost_->Cost(graph_->model().layers[op.layer], op.type);
  const double solo_rate = EffectiveOccupancy(kc.thread_blocks, capacity);
  double work = static_cast<double>(kc.duration) * solo_rate;

  TimeNs t = 0;  // time elapsed since the kernel started (at `offset`)
  TimeNs seg_start = 0;
  for (const Segment& seg : profiles_[r]) {
    const TimeNs seg_end = seg_start + seg.duration;
    if (seg_end <= offset) {
      seg_start = seg_end;
      continue;
    }
    const TimeNs begin = std::max(seg_start, offset);
    const TimeNs avail = seg_end - begin;
    // Same allocation rule as the fluid GPU model: the kernel's wave-average
    // occupancy, clipped to the segment's leftover slots.
    const double rate = std::min(solo_rate, seg.leftover);
    if (rate > 0.0) {
      const double drained = rate * static_cast<double>(avail);
      if (drained >= work) {
        return t + static_cast<TimeNs>(std::ceil(work / rate));
      }
      work -= drained;
    }
    t += avail;
    seg_start = seg_end;
  }
  // Past the region end the kernel has the device to itself.
  return t + static_cast<TimeNs>(std::ceil(work / solo_rate));
}

double CorunProfiler::SpeedupAt(int r, const TrainOp& op, TimeNs offset) const {
  const TimeNs main_left = std::max<TimeNs>(0, MainDuration(r) - offset);
  const TimeNs solo = SoloTime(op);
  const TimeNs joint = std::max(main_left, SubTimeAt(r, op, offset));
  if (joint <= 0) {
    return 1.0;
  }
  return static_cast<double>(main_left + solo) / static_cast<double>(joint);
}

std::pair<int, TimeNs> CorunProfiler::ReadyPoint(const TrainOp& op) const {
  OOBP_CHECK(op.type == TrainOpType::kWeightGrad);
  const int producer = op.layer + 1;
  if (producer >= graph_->num_layers()) {
    return {0, 0};  // the loss gradient is available at backprop start
  }
  auto it = dgrad_end_.find(producer);
  OOBP_CHECK(it != dgrad_end_.end())
      << "dO[" << producer << "] not present in any region";
  return it->second;
}

int CorunProfiler::DeadlineRegion(const TrainOp& op) const {
  OOBP_CHECK(op.type == TrainOpType::kWeightGrad);
  auto it = fwd_region_.find(op.layer);
  if (it == fwd_region_.end()) {
    return num_regions();
  }
  return it->second;
}

}  // namespace oobp
