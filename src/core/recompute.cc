#include "src/core/recompute.h"

#include <algorithm>

#include "src/common/check.h"

namespace oobp {

std::vector<int> RecomputePlan::CheckpointLayers(int num_layers) const {
  std::vector<int> out;
  for (int l = 0; l < num_layers; ++l) {
    if (IsCheckpoint(l, num_layers)) {
      out.push_back(l);
    }
  }
  return out;
}

bool RecomputePlan::IsCheckpoint(int layer, int num_layers) const {
  OOBP_CHECK_GE(segment, 1);
  // Segment boundaries, plus the network output (needed by the loss).
  return layer % segment == segment - 1 || layer == num_layers - 1;
}

RecomputeTimeline EstimateBackpropMemoryWithRecompute(
    const NnModel& model, const std::vector<TrainOp>& order,
    const RecomputePlan& plan) {
  const int L = model.num_layers();
  RecomputeTimeline tl;
  MemoryTimeline& mem = tl.memory;

  for (const Layer& l : model.layers) {
    mem.base += 3 * l.param_bytes;
  }

  std::vector<int> act_consumers(L, 0);
  std::vector<int> grad_consumers(L, 0);
  std::vector<bool> grad_alloc(L, false);
  std::vector<bool> act_live(L, false);
  std::vector<bool> stash_live(L, false);
  const int num_segments = (L + plan.segment - 1) / plan.segment;
  std::vector<bool> segment_materialized(num_segments, false);

  int64_t live = 0;
  for (int j = 0; j < L; ++j) {
    if (j + 1 < L) {
      act_consumers[j] = model.layers[j + 1].has_params() ? 1 : 0;
    }
    grad_consumers[j] = 1 + (model.layers[j].has_params() ? 1 : 0);
    // Only checkpoints survive the forward pass; stashes never do.
    if (plan.IsCheckpoint(j, L)) {
      live += model.layers[j].output_bytes;
      act_live[j] = true;
    }
  }
  if (L > 0) {
    live += model.layers[L - 1].output_bytes;  // loss gradient
    grad_alloc[L - 1] = true;
  }
  mem.initial = live;
  mem.peak = live;

  auto free_activation = [&](int j) {
    if (j >= 0 && j < L && act_live[j]) {
      live -= model.layers[j].output_bytes;
      act_live[j] = false;
    }
  };
  auto consume_grad = [&](int i) {
    OOBP_CHECK_GT(grad_consumers[i], 0);
    if (--grad_consumers[i] == 0 && grad_alloc[i]) {
      live -= model.layers[i].output_bytes;
    }
  };
  // Re-runs the segment's forward, materializing its activations/stashes.
  auto materialize = [&](int layer) {
    const int s = layer / plan.segment;
    if (s < 0 || s >= num_segments || segment_materialized[s]) {
      return;
    }
    segment_materialized[s] = true;
    const int lo = s * plan.segment;
    const int hi = std::min(L, (s + 1) * plan.segment);
    for (int j = lo; j < hi; ++j) {
      if (!act_live[j] && act_consumers[j] >= 0) {
        live += model.layers[j].output_bytes;
        act_live[j] = true;
      }
      if (!stash_live[j]) {
        live += model.layers[j].stash_bytes;
        stash_live[j] = true;
      }
      if (!plan.IsCheckpoint(j, L)) {
        tl.recompute_flops += model.layers[j].fwd_flops;
      }
    }
    mem.peak = std::max(mem.peak, live);
  };

  for (const TrainOp& op : order) {
    if (op.type != TrainOpType::kOutputGrad &&
        op.type != TrainOpType::kWeightGrad) {
      mem.usage_during.push_back(live);
      mem.usage_after.push_back(live);
      continue;
    }
    const int i = op.layer;
    const Layer& layer = model.layers[i];
    // The op needs its layer's stash (dO) or its input activation (dW):
    // both live in layer i's or i-1's segment.
    materialize(i);
    if (i > 0) {
      materialize(i - 1);
    }

    if (op.type == TrainOpType::kOutputGrad) {
      if (i > 0 && !grad_alloc[i - 1]) {
        live += model.layers[i - 1].output_bytes;
        grad_alloc[i - 1] = true;
      }
      mem.usage_during.push_back(live + layer.workspace_bytes);
      if (stash_live[i]) {
        live -= layer.stash_bytes;
        stash_live[i] = false;
      }
      consume_grad(i);
      if (i > 0 && act_consumers[i - 1] == 0) {
        free_activation(i - 1);
        act_consumers[i - 1] = -1;
      }
      if (i == L - 1) {
        free_activation(L - 1);
      }
    } else {
      mem.usage_during.push_back(live + layer.workspace_bytes);
      consume_grad(i);
      if (i > 0) {
        act_consumers[i - 1] = -1;
        free_activation(i - 1);
      }
    }
    mem.usage_after.push_back(live);
    mem.peak = std::max(mem.peak, mem.usage_during.back());
  }
  return tl;
}

int BestSegmentForPeak(const NnModel& model, const std::vector<TrainOp>& order,
                       int max_segment) {
  OOBP_CHECK_GE(max_segment, 1);
  int best = 1;
  int64_t best_peak = EstimateBackpropMemoryWithRecompute(model, order, {1})
                          .peak();
  for (int segment = 2; segment <= max_segment; ++segment) {
    const int64_t peak =
        EstimateBackpropMemoryWithRecompute(model, order, {segment}).peak();
    if (peak < best_peak) {
      best_peak = peak;
      best = segment;
    }
  }
  return best;
}

}  // namespace oobp
