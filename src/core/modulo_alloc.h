// Layer-to-GPU allocation policies for model/pipeline parallelism
// (Section 5.2.1).
//
// Conventional systems assign *contiguous* layer ranges to stages to
// minimize inter-GPU traffic; we provide a compute-balanced contiguous
// partitioner (dynamic programming over prefix costs). Modulo allocation
// instead assigns layer l (or a group of `group_size` consecutive layers) to
// GPU (l / group_size) mod n — it raises communication but keeps every GPU
// busy through both propagation directions, and combined with gradient
// fast-forwarding it removes most pipeline stalls. Grouping trades stalls
// for bandwidth: the paper groups two transformers per unit on 10GbE
// (Section 8.4.1, "Communication overhead").

#ifndef OOBP_SRC_CORE_MODULO_ALLOC_H_
#define OOBP_SRC_CORE_MODULO_ALLOC_H_

#include <cstdint>
#include <vector>

#include "src/nn/layer.h"

namespace oobp {

// layer -> GPU rank, |result| == num_layers, values in [0, num_gpus).
using LayerAssignment = std::vector<int>;

// Contiguous ranges balanced by per-layer cost (DP, minimizes the maximum
// stage cost). `layer_costs` must be positive; use forward FLOPs or measured
// times.
LayerAssignment BalancedContiguousAllocation(
    const std::vector<double>& layer_costs, int num_gpus);

// Modulo allocation at `group_size` granularity.
LayerAssignment ModuloAllocation(int num_layers, int num_gpus,
                                 int group_size = 1);

// Layers owned by `gpu`, ascending.
std::vector<int> LayersOf(const LayerAssignment& assignment, int gpu);

// Validation: every GPU owns at least one layer.
bool AssignmentCoversAllGpus(const LayerAssignment& assignment, int num_gpus);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_MODULO_ALLOC_H_
