// Multi-region joint scheduling — Algorithm 1 of the paper (Section 4.1).
//
// Greedy list scheduling over profiled regions: the main stream executes
// forward and output-gradient kernels in their natural order; weight
// gradients are placed, one at a time, into the (region, time) slot with the
// highest profiled co-run speedup, respecting readiness (dW_i becomes
// runnable when dO_{i+1} completes) and deadlines (dW_i and its update must
// land before the next iteration's F_i). A region leaves the candidate set
// once its simulated sub-stream time budget is exhausted (now[j] >=
// T_main(R[j])).
//
// Memory fallback (Section 4.1, last paragraph): if the resulting schedule's
// peak memory exceeds the cap, the first k backward regions are
// "pre-scheduled" — their weight gradients run as soon as they are ready —
// and the algorithm re-runs for the remaining regions with increasing k.

#ifndef OOBP_SRC_CORE_JOINT_SCHEDULER_H_
#define OOBP_SRC_CORE_JOINT_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/core/corun_profiler.h"
#include "src/core/memory_model.h"
#include "src/core/schedule.h"

namespace oobp {

struct JointScheduleOptions {
  // Peak activation-memory cap in bytes; < 0 means unconstrained. The paper
  // uses 1.1x the conventional execution's peak.
  int64_t memory_cap_bytes = -1;
};

struct JointScheduleResult {
  IterationSchedule schedule;
  // Region index each dW op was assigned to, parallel to `assigned_ops`.
  std::vector<TrainOp> assigned_ops;
  std::vector<int> assigned_region;
  // Number of leading backward regions that were pre-scheduled eagerly to
  // satisfy the memory cap (0 when the cap never bound).
  int pre_scheduled_regions = 0;
  int64_t peak_memory = 0;  // activation peak of the final schedule
};

JointScheduleResult MultiRegionJointSchedule(
    const TrainGraph& graph, const CorunProfiler& profiler,
    const JointScheduleOptions& options = {});

// The full OOO-XLA scheduling pipeline as one call: build regions, profile
// co-runs against `gpu`/`profile`, cap activation memory at
// `memory_cap_factor` x the conventional schedule's peak (the paper uses
// 1.1x), and run Algorithm 1. Shared by the CLI driver, the Figure 7
// scenarios, and the inference-serving co-run scenarios.
JointScheduleResult MakeOooSchedule(const TrainGraph& graph,
                                    const GpuSpec& gpu,
                                    const SystemProfile& profile,
                                    double memory_cap_factor = 1.1);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_JOINT_SCHEDULER_H_
