// Activation checkpointing (re-computation) and its interaction with
// out-of-order backprop (Section 6, last paragraph).
//
// With checkpoint-and-recompute (Chen et al. '16), only every
// `segment`-th layer's output is kept through the forward pass; the
// discarded activations of a segment are re-materialized by re-running its
// forward just before the segment's backward. Section 6 observes that
// reverse first-k composes with this: by the time the deferred first-k
// weight gradients run, most checkpointed segments have already been
// re-computed and freed, so there is headroom to retain the k inputs.
//
// This module extends the live-tensor model of memory_model.h with
// checkpoint semantics and reports both the peak memory and the extra
// forward FLOPs the re-computation costs.

#ifndef OOBP_SRC_CORE_RECOMPUTE_H_
#define OOBP_SRC_CORE_RECOMPUTE_H_

#include <cstdint>
#include <vector>

#include "src/core/memory_model.h"
#include "src/nn/train_graph.h"

namespace oobp {

struct RecomputePlan {
  // A checkpoint is kept at every `segment`-th layer boundary (1 = keep
  // everything, i.e. no re-computation).
  int segment = 1;

  // Layers whose outputs are checkpointed (kept through forward).
  std::vector<int> CheckpointLayers(int num_layers) const;
  bool IsCheckpoint(int layer, int num_layers) const;
};

struct RecomputeTimeline {
  MemoryTimeline memory;       // with checkpoint semantics applied
  int64_t recompute_flops = 0;  // extra forward FLOPs spent re-materializing
  // Peak including the re-materialized segment's activations.
  int64_t peak() const { return memory.peak; }
};

// `order` is a valid backprop order (possibly reordered by reverse first-k
// or ooo scheduling). Activations of non-checkpoint layers are not live at
// backprop start; a segment's activations (and their memory) appear when
// the backward first touches the segment and disappear as usual.
RecomputeTimeline EstimateBackpropMemoryWithRecompute(
    const NnModel& model, const std::vector<TrainOp>& order,
    const RecomputePlan& plan);

// Sweeps sqrt-style segment sizes and returns the one minimizing peak
// memory for the given order (the classical sublinear-memory tradeoff).
int BestSegmentForPeak(const NnModel& model, const std::vector<TrainOp>& order,
                       int max_segment);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_RECOMPUTE_H_
