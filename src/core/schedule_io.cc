#include "src/core/schedule_io.h"

#include <fstream>
#include <sstream>

#include "src/common/str_util.h"

namespace oobp {

namespace {

const char* OpToken(TrainOpType type) {
  switch (type) {
    case TrainOpType::kForward:
      return "fwd";
    case TrainOpType::kOutputGrad:
      return "dO";
    case TrainOpType::kWeightGrad:
      return "dW";
    case TrainOpType::kWeightUpdate:
      return "update";
  }
  return "?";
}

std::optional<TrainOpType> OpFromToken(const std::string& token) {
  if (token == "fwd") {
    return TrainOpType::kForward;
  }
  if (token == "dO") {
    return TrainOpType::kOutputGrad;
  }
  if (token == "dW") {
    return TrainOpType::kWeightGrad;
  }
  if (token == "update") {
    return TrainOpType::kWeightUpdate;
  }
  return std::nullopt;
}

}  // namespace

std::string ScheduleToText(const IterationSchedule& schedule,
                           const std::string& model_name, int num_layers) {
  std::string out = "# oobp-schedule v1\n";
  out += StrFormat("model %s layers %d\n", model_name.c_str(), num_layers);
  for (const ScheduledOp& op : schedule.ops) {
    out += StrFormat("op %s %d stream=%d", OpToken(op.op.type), op.op.layer,
                     op.stream);
    if (op.wait_for_index >= 0) {
      out += StrFormat(" wait=%d", op.wait_for_index);
    }
    out += "\n";
  }
  return out;
}

std::optional<IterationSchedule> ScheduleFromText(const std::string& text,
                                                  int expect_layers) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "# oobp-schedule v1") {
    return std::nullopt;
  }
  IterationSchedule schedule;
  int recorded_layers = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "model") {
      std::string name, layers_kw;
      fields >> name >> layers_kw >> recorded_layers;
      if (layers_kw != "layers") {
        return std::nullopt;
      }
      continue;
    }
    if (kind != "op") {
      return std::nullopt;
    }
    std::string op_token;
    int layer = -1;
    fields >> op_token >> layer;
    const std::optional<TrainOpType> type = OpFromToken(op_token);
    if (!type.has_value() || layer < 0 || fields.fail()) {
      return std::nullopt;
    }
    ScheduledOp op;
    op.op = {*type, layer};
    std::string attr;
    while (fields >> attr) {
      if (attr.rfind("stream=", 0) == 0) {
        op.stream = std::atoi(attr.c_str() + 7);
      } else if (attr.rfind("wait=", 0) == 0) {
        op.wait_for_index = std::atoi(attr.c_str() + 5);
      } else {
        return std::nullopt;
      }
    }
    if (op.wait_for_index >= static_cast<int>(schedule.ops.size())) {
      return std::nullopt;  // wait target must precede the op
    }
    schedule.ops.push_back(op);
  }
  if (expect_layers >= 0 && recorded_layers != expect_layers) {
    return std::nullopt;
  }
  return schedule;
}

std::string AssignmentToText(const LayerAssignment& assignment, int num_gpus) {
  std::string out = "# oobp-assignment v1\n";
  out += StrFormat("layers %zu gpus %d\nmap", assignment.size(), num_gpus);
  for (int gpu : assignment) {
    out += StrFormat(" %d", gpu);
  }
  out += "\n";
  return out;
}

std::optional<LayerAssignment> AssignmentFromText(const std::string& text,
                                                  int* num_gpus_out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "# oobp-assignment v1") {
    return std::nullopt;
  }
  int layers = -1, gpus = -1;
  {
    std::string kw1, kw2;
    in >> kw1 >> layers >> kw2 >> gpus;
    if (kw1 != "layers" || kw2 != "gpus" || layers <= 0 || gpus <= 0) {
      return std::nullopt;
    }
  }
  std::string map_kw;
  in >> map_kw;
  if (map_kw != "map") {
    return std::nullopt;
  }
  LayerAssignment assignment(layers);
  for (int l = 0; l < layers; ++l) {
    if (!(in >> assignment[l]) || assignment[l] < 0 || assignment[l] >= gpus) {
      return std::nullopt;
    }
  }
  if (num_gpus_out != nullptr) {
    *num_gpus_out = gpus;
  }
  return assignment;
}

bool WriteScheduleFile(const std::string& path,
                       const IterationSchedule& schedule,
                       const std::string& model_name, int num_layers) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << ScheduleToText(schedule, model_name, num_layers);
  return static_cast<bool>(f);
}

std::optional<IterationSchedule> ReadScheduleFile(const std::string& path,
                                                  int expect_layers) {
  std::ifstream f(path);
  if (!f) {
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  return ScheduleFromText(text, expect_layers);
}

}  // namespace oobp
