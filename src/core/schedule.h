// Schedule representations produced by the ooo-backprop schedulers and
// consumed by the runtime engines.
//
// A single-GPU iteration schedule is a CPU issue order over training ops,
// each tagged with the GPU stream it runs on (0 = high-priority main stream
// for forward and output-gradient computations, 1 = sub stream for weight
// gradients and updates; Section 4.1) and an optional event dependency that
// pins a sub-stream op to the scheduling region the joint scheduler chose
// for it (the op may not start before the first main-stream op of that
// region starts).
//
// Data dependencies (the dO chain, dW_i -> dO_{i+1}, U_i -> dW_i,
// F_i -> U_i and F_{i-1}) are NOT stored here: they are intrinsic to the
// training graph and the engines always enforce them, so a buggy scheduler
// can only produce a slow schedule, never an incorrect execution.

#ifndef OOBP_SRC_CORE_SCHEDULE_H_
#define OOBP_SRC_CORE_SCHEDULE_H_

#include <string>
#include <vector>

#include "src/nn/train_graph.h"

namespace oobp {

inline constexpr int kMainStream = 0;
inline constexpr int kSubStream = 1;

struct ScheduledOp {
  TrainOp op;
  int stream = kMainStream;
  // Index (into IterationSchedule::ops) of a main-stream op this op must not
  // start before; -1 for none. Implemented as a stream-wait event.
  int wait_for_index = -1;
};

struct IterationSchedule {
  std::vector<ScheduledOp> ops;  // CPU issue order

  // Ops of one stream, in issue (== execution) order.
  std::vector<TrainOp> StreamOps(int stream) const;
  // The merged order approximating completion order (issue order), used by
  // the memory model.
  std::vector<TrainOp> MergedOrder() const;
  std::string ToString() const;
};

// The conventional single-stream schedule: backprop in reverse layout order,
// updates right after each dW, then the forward pass.
IterationSchedule ConventionalIteration(const TrainGraph& graph);

// Role cursor over a schedule prefix: for each layer, the index (into
// IterationSchedule::ops) of that layer's F / dO / dW / U op among the ops
// consumed so far, -1 while unseen. This is the per-position state the
// issue-plan dependency rules (BuildTrainIssuePlan) and the incremental
// analytic evaluator (src/search/fast_eval.h) walk a schedule with; because
// it depends only on the prefix [0, next_pos), a snapshot taken every few
// positions lets a consumer resume mid-schedule after a point mutation and
// re-derive only the suffix.
struct SchedulePrefixState {
  int next_pos = 0;  // ops [0, next_pos) have been consumed
  std::vector<int32_t> fwd_pos;
  std::vector<int32_t> dgrad_pos;
  std::vector<int32_t> wgrad_pos;
  std::vector<int32_t> update_pos;

  void Reset(int num_layers);
  // Consumes one more op (the caller passes ops[next_pos]).
  void Advance(const ScheduledOp& scheduled);
};

}  // namespace oobp

#endif  // OOBP_SRC_CORE_SCHEDULE_H_
