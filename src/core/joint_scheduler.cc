#include "src/core/joint_scheduler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "src/common/check.h"

namespace oobp {

namespace {

// Runs the greedy core of Algorithm 1 with the first `pre_k` backward
// regions pre-scheduled eagerly. Returns per-region ordered dW layer lists.
std::vector<std::vector<int>> RunAlgorithm1(const TrainGraph& graph,
                                            const CorunProfiler& profiler,
                                            int pre_k) {
  const int L = graph.num_layers();
  const int N = profiler.num_regions();
  std::vector<std::vector<int>> region_order(N);

  // U <- {dW_i | layer i has weights}, minus eagerly pre-scheduled ones.
  std::set<int> unscheduled;
  for (int i = 0; i < L; ++i) {
    if (!graph.HasWgrad(i)) {
      continue;
    }
    const TrainOp op{TrainOpType::kWeightGrad, i};
    const auto [ready_region, ready_offset] = profiler.ReadyPoint(op);
    if (ready_region < pre_k) {
      // Pre-scheduled region: run as soon as ready, in readiness order.
      region_order[ready_region].push_back(i);
      continue;
    }
    unscheduled.insert(i);
  }

  std::vector<TimeNs> now(N, 0);
  std::set<int> candidates;
  for (int r = pre_k; r < N; ++r) {
    candidates.insert(r);
  }

  while (!unscheduled.empty() && !candidates.empty()) {
    // Lines 4-8: per candidate region, the runnable dW with max speedup;
    // then the globally best (region, kernel) pair.
    int best_region = -1;
    int best_layer = -1;
    int64_t best_speedup = -1;
    for (int r : candidates) {
      for (int i : unscheduled) {
        const TrainOp op{TrainOpType::kWeightGrad, i};
        const auto [ready_region, ready_offset] = profiler.ReadyPoint(op);
        const bool runnable =
            (ready_region < r) || (ready_region == r && ready_offset <= now[r]);
        if (!runnable || r >= profiler.DeadlineRegion(op)) {
          continue;
        }
        // Quantize to percent so float noise does not override the
        // tie-break; among near-equal speedups prefer the earliest region
        // (shorter tensor lifetimes, lower memory pressure) and the lowest
        // layer.
        const int64_t p = static_cast<int64_t>(
            std::llround(100.0 * profiler.SpeedupAt(r, op, now[r])));
        if (p > best_speedup ||
            (p == best_speedup &&
             (r < best_region || (r == best_region && i < best_layer)))) {
          best_speedup = p;
          best_region = r;
          best_layer = i;
        }
      }
    }

    if (best_region < 0) {
      // No kernel is runnable in any remaining region (deadlines exclude
      // them all). Fall back: place the earliest-deadline kernel into the
      // last region its deadline allows, so the simulation stays valid —
      // only slower.
      const int i = *unscheduled.begin();
      const TrainOp op{TrainOpType::kWeightGrad, i};
      const auto [ready_region, ready_offset] = profiler.ReadyPoint(op);
      int r = std::min(profiler.DeadlineRegion(op) - 1, N - 1);
      r = std::max(r, ready_region);
      region_order[r].push_back(i);
      unscheduled.erase(i);
      continue;
    }

    // Lines 9-11: commit, advance the region's simulated clock, retire the
    // region once its main-stream budget is spent.
    const TrainOp op{TrainOpType::kWeightGrad, best_layer};
    region_order[best_region].push_back(best_layer);
    unscheduled.erase(best_layer);
    now[best_region] += profiler.SubTimeAt(best_region, op, now[best_region]);
    if (now[best_region] >= profiler.MainDuration(best_region)) {
      candidates.erase(best_region);
    }
  }

  // Regions exhausted with kernels left: append to the last legal region.
  for (int i : unscheduled) {
    const TrainOp op{TrainOpType::kWeightGrad, i};
    const auto [ready_region, ready_offset] = profiler.ReadyPoint(op);
    int r = std::min(profiler.DeadlineRegion(op) - 1, N - 1);
    r = std::max(r, ready_region);
    region_order[r].push_back(i);
  }
  return region_order;
}

// Turns per-region dW lists into the interleaved two-stream issue order.
IterationSchedule BuildSchedule(const TrainGraph& graph,
                                const CorunProfiler& profiler,
                                const std::vector<std::vector<int>>& region_order) {
  const int N = profiler.num_regions();

  // Flatten main-stream ops and record positions.
  std::vector<TrainOp> main_ops;
  std::vector<int> region_first_main(N, 0);
  std::map<int, int> dgrad_pos;  // dO layer -> main position
  for (int r = 0; r < N; ++r) {
    region_first_main[r] = static_cast<int>(main_ops.size());
    for (const TrainOp& op : profiler.region(r).main_ops) {
      if (op.type == TrainOpType::kOutputGrad) {
        dgrad_pos[op.layer] = static_cast<int>(main_ops.size());
      }
      main_ops.push_back(op);
    }
  }

  // For each dW: the main-op position after which it is issued. It must
  // follow both its region's first main op (placement) and its producer
  // dO_{i+1} (so the engine can reference the dependency).
  struct SubOp {
    int layer;
    int region;
  };
  std::map<int, std::vector<SubOp>> attach_after;  // main pos -> sub ops
  for (int r = 0; r < N; ++r) {
    for (int layer : region_order[r]) {
      int pos = region_first_main[r];
      const int producer = layer + 1;
      auto it = dgrad_pos.find(producer);
      if (it != dgrad_pos.end()) {
        pos = std::max(pos, it->second);
      }
      attach_after[pos].push_back({layer, r});
    }
  }

  IterationSchedule sched;
  std::vector<int> final_main_index(main_ops.size(), -1);
  for (size_t m = 0; m < main_ops.size(); ++m) {
    final_main_index[m] = static_cast<int>(sched.ops.size());
    sched.ops.push_back({main_ops[m], kMainStream, -1});
    auto it = attach_after.find(static_cast<int>(m));
    if (it == attach_after.end()) {
      continue;
    }
    for (const SubOp& sub : it->second) {
      const int wait_idx = final_main_index[region_first_main[sub.region]];
      sched.ops.push_back(
          {{TrainOpType::kWeightGrad, sub.layer}, kSubStream, wait_idx});
      sched.ops.push_back(
          {{TrainOpType::kWeightUpdate, sub.layer}, kSubStream, -1});
    }
  }
  OOBP_CHECK(graph.ValidateBackpropOrder([&] {
    std::vector<TrainOp> grads;
    for (const ScheduledOp& s : sched.ops) {
      if (s.op.type == TrainOpType::kOutputGrad ||
          s.op.type == TrainOpType::kWeightGrad) {
        grads.push_back(s.op);
      }
    }
    return grads;
  }()));
  return sched;
}

int CountBackwardRegions(const CorunProfiler& profiler) {
  int n = 0;
  for (int r = 0; r < profiler.num_regions(); ++r) {
    if (profiler.region(r).kind == Region::Kind::kBackward) {
      ++n;
    }
  }
  return n;
}

}  // namespace

JointScheduleResult MultiRegionJointSchedule(const TrainGraph& graph,
                                             const CorunProfiler& profiler,
                                             const JointScheduleOptions& options) {
  const int bwd_regions = CountBackwardRegions(profiler);
  JointScheduleResult result;

  for (int pre_k = 0; pre_k <= bwd_regions; ++pre_k) {
    const std::vector<std::vector<int>> region_order =
        RunAlgorithm1(graph, profiler, pre_k);
    IterationSchedule sched = BuildSchedule(graph, profiler, region_order);
    const MemoryTimeline mem =
        EstimateBackpropMemory(graph.model(), sched.MergedOrder());

    result.schedule = std::move(sched);
    result.pre_scheduled_regions = pre_k;
    result.peak_memory = mem.peak;
    result.assigned_ops.clear();
    result.assigned_region.clear();
    for (int r = 0; r < profiler.num_regions(); ++r) {
      for (int layer : region_order[r]) {
        result.assigned_ops.push_back({TrainOpType::kWeightGrad, layer});
        result.assigned_region.push_back(r);
      }
    }
    if (options.memory_cap_bytes < 0 || mem.peak <= options.memory_cap_bytes) {
      break;  // within budget (or unconstrained)
    }
  }
  return result;
}

}  // namespace oobp
