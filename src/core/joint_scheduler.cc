#include "src/core/joint_scheduler.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "src/common/check.h"

namespace oobp {

namespace {

// Runs the greedy core of Algorithm 1 with the first `pre_k` backward
// regions pre-scheduled eagerly. Returns per-region ordered dW layer lists.
std::vector<std::vector<int>> RunAlgorithm1(const TrainGraph& graph,
                                            const CorunProfiler& profiler,
                                            int pre_k) {
  const int L = graph.num_layers();
  const int N = profiler.num_regions();
  std::vector<std::vector<int>> region_order(N);

  // ReadyPoint and DeadlineRegion are pure in the op; hoist them into dense
  // per-layer arrays so the greedy loop below does array reads instead of
  // re-deriving them for every (region, kernel) pair on every iteration.
  std::vector<int> ready_region(L, -1);
  std::vector<TimeNs> ready_offset(L, 0);
  std::vector<int> deadline(L, N);
  for (int i = 0; i < L; ++i) {
    if (!graph.HasWgrad(i)) {
      continue;
    }
    const TrainOp op{TrainOpType::kWeightGrad, i};
    const auto rp = profiler.ReadyPoint(op);
    ready_region[i] = rp.first;
    ready_offset[i] = rp.second;
    deadline[i] = profiler.DeadlineRegion(op);
  }

  // U <- {dW_i | layer i has weights}, minus eagerly pre-scheduled ones.
  std::set<int> unscheduled;
  for (int i = 0; i < L; ++i) {
    if (!graph.HasWgrad(i)) {
      continue;
    }
    if (ready_region[i] < pre_k) {
      // Pre-scheduled region: run as soon as ready, in readiness order.
      region_order[ready_region[i]].push_back(i);
      continue;
    }
    unscheduled.insert(i);
  }

  std::vector<TimeNs> now(N, 0);
  std::set<int> candidates;
  for (int r = pre_k; r < N; ++r) {
    candidates.insert(r);
  }

  // SpeedupAt(r, i, now[r]) only changes when now[r] advances, which happens
  // once per committed kernel — memoize per (region, layer) and drop a
  // region's row on commit. kStale marks entries to (re)compute; kBlocked
  // marks pairs that are not runnable at now[r] (also invalidated with the
  // row, since readiness is a function of now[r]).
  constexpr int64_t kStale = -2;
  constexpr int64_t kBlocked = -1;
  std::vector<std::vector<int64_t>> speedup_memo(
      N, std::vector<int64_t>(L, kStale));
  // Per-region winner over the current unscheduled set: (quantized speedup,
  // layer), layer -1 when nothing is runnable. A region's winner only
  // changes when its clock moves or when its cached winning layer gets
  // committed elsewhere, so most iterations rescan one or two regions
  // instead of every (region, kernel) pair.
  struct RegionBest {
    int64_t speedup = -1;
    int layer = -1;
  };
  std::vector<RegionBest> region_best(N);
  std::vector<char> best_valid(N, 0);

  while (!unscheduled.empty() && !candidates.empty()) {
    // Lines 4-8: per candidate region, the runnable dW with max speedup;
    // then the globally best (region, kernel) pair.
    int best_region = -1;
    int best_layer = -1;
    int64_t best_speedup = -1;
    for (int r : candidates) {
      if (!best_valid[r]) {
        std::vector<int64_t>& memo = speedup_memo[r];
        RegionBest rb;
        for (int i : unscheduled) {
          int64_t p = memo[i];
          if (p == kStale) {
            const bool runnable = (ready_region[i] < r) ||
                                  (ready_region[i] == r &&
                                   ready_offset[i] <= now[r]);
            if (!runnable || r >= deadline[i]) {
              p = kBlocked;
            } else {
              // Quantize to percent so float noise does not override the
              // tie-break; among near-equal speedups prefer the earliest
              // region (shorter tensor lifetimes, lower memory pressure)
              // and the lowest layer.
              const TrainOp op{TrainOpType::kWeightGrad, i};
              p = static_cast<int64_t>(
                  std::llround(100.0 * profiler.SpeedupAt(r, op, now[r])));
            }
            memo[i] = p;
          }
          // Ascending iteration keeps the first layer on ties, matching the
          // original i < best_layer tie-break within a region.
          if (p != kBlocked && p > rb.speedup) {
            rb.speedup = p;
            rb.layer = i;
          }
        }
        region_best[r] = rb;
        best_valid[r] = 1;
      }
      const RegionBest& rb = region_best[r];
      // Ascending region iteration keeps the earliest region on ties,
      // matching the original r < best_region tie-break.
      if (rb.layer >= 0 && rb.speedup > best_speedup) {
        best_speedup = rb.speedup;
        best_region = r;
        best_layer = rb.layer;
      }
    }

    if (best_region < 0) {
      // No kernel is runnable in any remaining region (deadlines exclude
      // them all). Fall back: place the earliest-deadline kernel into the
      // last region its deadline allows, so the simulation stays valid —
      // only slower.
      const int i = *unscheduled.begin();
      int r = std::min(deadline[i] - 1, N - 1);
      r = std::max(r, ready_region[i]);
      region_order[r].push_back(i);
      unscheduled.erase(i);
      continue;
    }

    // Lines 9-11: commit, advance the region's simulated clock, retire the
    // region once its main-stream budget is spent.
    const TrainOp op{TrainOpType::kWeightGrad, best_layer};
    region_order[best_region].push_back(best_layer);
    unscheduled.erase(best_layer);
    now[best_region] += profiler.SubTimeAt(best_region, op, now[best_region]);
    // The region's clock moved: every memoized speedup for it is stale.
    std::fill(speedup_memo[best_region].begin(),
              speedup_memo[best_region].end(), kStale);
    best_valid[best_region] = 0;
    // Other regions' memo entries are still valid, but a cached winner that
    // just got committed elsewhere must be re-picked from what remains.
    for (int r : candidates) {
      if (region_best[r].layer == best_layer) {
        best_valid[r] = 0;
      }
    }
    if (now[best_region] >= profiler.MainDuration(best_region)) {
      candidates.erase(best_region);
    }
  }

  // Regions exhausted with kernels left: append to the last legal region.
  for (int i : unscheduled) {
    int r = std::min(deadline[i] - 1, N - 1);
    r = std::max(r, ready_region[i]);
    region_order[r].push_back(i);
  }
  return region_order;
}

// Turns per-region dW lists into the interleaved two-stream issue order.
IterationSchedule BuildSchedule(const TrainGraph& graph,
                                const CorunProfiler& profiler,
                                const std::vector<std::vector<int>>& region_order) {
  const int N = profiler.num_regions();
  const int L = graph.num_layers();

  // Flatten main-stream ops and record positions.
  std::vector<TrainOp> main_ops;
  std::vector<int> region_first_main(N, 0);
  // dO layer -> main position, -1 when absent (one extra slot so the
  // producer index layer+1 == L needs no bounds branch).
  std::vector<int> dgrad_pos(L + 1, -1);
  for (int r = 0; r < N; ++r) {
    region_first_main[r] = static_cast<int>(main_ops.size());
    for (const TrainOp& op : profiler.region(r).main_ops) {
      if (op.type == TrainOpType::kOutputGrad) {
        dgrad_pos[op.layer] = static_cast<int>(main_ops.size());
      }
      main_ops.push_back(op);
    }
  }

  // For each dW: the main-op position after which it is issued. It must
  // follow both its region's first main op (placement) and its producer
  // dO_{i+1} (so the engine can reference the dependency).
  struct SubOp {
    int layer;
    int region;
  };
  // main pos -> sub ops attached after it
  std::vector<std::vector<SubOp>> attach_after(main_ops.size());
  for (int r = 0; r < N; ++r) {
    for (int layer : region_order[r]) {
      int pos = region_first_main[r];
      const int producer = layer + 1;
      if (dgrad_pos[producer] >= 0) {
        pos = std::max(pos, dgrad_pos[producer]);
      }
      attach_after[pos].push_back({layer, r});
    }
  }

  IterationSchedule sched;
  std::vector<int> final_main_index(main_ops.size(), -1);
  for (size_t m = 0; m < main_ops.size(); ++m) {
    final_main_index[m] = static_cast<int>(sched.ops.size());
    sched.ops.push_back({main_ops[m], kMainStream, -1});
    for (const SubOp& sub : attach_after[m]) {
      const int wait_idx = final_main_index[region_first_main[sub.region]];
      sched.ops.push_back(
          {{TrainOpType::kWeightGrad, sub.layer}, kSubStream, wait_idx});
      sched.ops.push_back(
          {{TrainOpType::kWeightUpdate, sub.layer}, kSubStream, -1});
    }
  }
  OOBP_CHECK(graph.ValidateBackpropOrder([&] {
    std::vector<TrainOp> grads;
    for (const ScheduledOp& s : sched.ops) {
      if (s.op.type == TrainOpType::kOutputGrad ||
          s.op.type == TrainOpType::kWeightGrad) {
        grads.push_back(s.op);
      }
    }
    return grads;
  }()));
  return sched;
}

int CountBackwardRegions(const CorunProfiler& profiler) {
  int n = 0;
  for (int r = 0; r < profiler.num_regions(); ++r) {
    if (profiler.region(r).kind == Region::Kind::kBackward) {
      ++n;
    }
  }
  return n;
}

}  // namespace

JointScheduleResult MultiRegionJointSchedule(const TrainGraph& graph,
                                             const CorunProfiler& profiler,
                                             const JointScheduleOptions& options) {
  const int bwd_regions = CountBackwardRegions(profiler);
  JointScheduleResult result;

  for (int pre_k = 0; pre_k <= bwd_regions; ++pre_k) {
    const std::vector<std::vector<int>> region_order =
        RunAlgorithm1(graph, profiler, pre_k);
    IterationSchedule sched = BuildSchedule(graph, profiler, region_order);
    const MemoryTimeline mem =
        EstimateBackpropMemory(graph.model(), sched.MergedOrder());

    result.schedule = std::move(sched);
    result.pre_scheduled_regions = pre_k;
    result.peak_memory = mem.peak;
    result.assigned_ops.clear();
    result.assigned_region.clear();
    for (int r = 0; r < profiler.num_regions(); ++r) {
      for (int layer : region_order[r]) {
        result.assigned_ops.push_back({TrainOpType::kWeightGrad, layer});
        result.assigned_region.push_back(r);
      }
    }
    if (options.memory_cap_bytes < 0 || mem.peak <= options.memory_cap_bytes) {
      break;  // within budget (or unconstrained)
    }
  }
  return result;
}

JointScheduleResult MakeOooSchedule(const TrainGraph& graph,
                                    const GpuSpec& gpu,
                                    const SystemProfile& profile,
                                    double memory_cap_factor) {
  const CostModel cost(gpu, profile);
  const CorunProfiler profiler(graph, cost, BuildRegions(graph));
  JointScheduleOptions opts;
  const MemoryTimeline conv_mem = EstimateBackpropMemory(
      graph.model(), ConventionalIteration(graph).MergedOrder());
  opts.memory_cap_bytes =
      static_cast<int64_t>(memory_cap_factor * conv_mem.peak);
  return MultiRegionJointSchedule(graph, profiler, opts);
}

}  // namespace oobp
