// List scheduling for data-parallel training — the alternative Section 5.1
// discusses and argues against on practicality grounds: "List scheduling
// ... does not need to find such optimal [k] values but it requires the
// execution times of the parameter synchronizations. Because it may not be
// easy to estimate the synchronization time, reverse first-k scheduling is
// more effective and suitable in practice."
//
// This scheduler implements that alternative so the claim can be tested:
// given per-op compute durations and (estimated) per-layer synchronization
// times, it greedily builds a backprop order by slack. At every point where
// the GPU is free it either advances the critical dO chain or runs the
// ready weight gradient whose synchronization is closest to missing its
// deadline (the next iteration's forward of the same layer).

#ifndef OOBP_SRC_CORE_LIST_DP_SCHEDULER_H_
#define OOBP_SRC_CORE_LIST_DP_SCHEDULER_H_

#include <vector>

#include "src/common/time.h"
#include "src/nn/cost_model.h"
#include "src/nn/train_graph.h"

namespace oobp {

struct ListDpInputs {
  // Per-layer compute durations.
  std::vector<TimeNs> fwd;
  std::vector<TimeNs> dgrad;
  std::vector<TimeNs> wgrad;  // 0 for layers without weights
  // Estimated synchronization time of each layer's gradient if the channel
  // were otherwise idle (the hard-to-estimate quantity).
  std::vector<TimeNs> sync;
};

// Convenience: derive the inputs from a cost model and an ideal-sync
// estimator (e.g. DataParallelEngine::IdealSyncTime).
ListDpInputs BuildListDpInputs(const NnModel& model, const CostModel& cost,
                               const std::vector<TimeNs>& sync_times);

struct ListDpResult {
  std::vector<TrainOp> order;
  // The scheduler's internal makespan estimate (diagnostic; the real
  // simulation is authoritative).
  TimeNs estimated_makespan = 0;
};

ListDpResult ListScheduleDataParallel(const TrainGraph& graph,
                                      const ListDpInputs& inputs);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_LIST_DP_SCHEDULER_H_
