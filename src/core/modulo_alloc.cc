#include "src/core/modulo_alloc.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace oobp {

LayerAssignment BalancedContiguousAllocation(
    const std::vector<double>& layer_costs, int num_gpus) {
  const int L = static_cast<int>(layer_costs.size());
  OOBP_CHECK_GT(L, 0);
  OOBP_CHECK_GT(num_gpus, 0);
  OOBP_CHECK_GE(L, num_gpus) << "need at least one layer per GPU";

  std::vector<double> prefix(L + 1, 0.0);
  for (int i = 0; i < L; ++i) {
    OOBP_CHECK_GT(layer_costs[i], 0.0);
    prefix[i + 1] = prefix[i] + layer_costs[i];
  }
  auto range_cost = [&](int lo, int hi) {  // layers [lo, hi)
    return prefix[hi] - prefix[lo];
  };

  // dp[g][i]: minimal max-stage-cost splitting the first i layers into g
  // stages; cut[g][i] records the split point for reconstruction.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(num_gpus + 1,
                                      std::vector<double>(L + 1, kInf));
  std::vector<std::vector<int>> cut(num_gpus + 1, std::vector<int>(L + 1, -1));
  dp[0][0] = 0.0;
  for (int g = 1; g <= num_gpus; ++g) {
    for (int i = g; i <= L; ++i) {
      for (int j = g - 1; j < i; ++j) {
        if (dp[g - 1][j] == kInf) {
          continue;
        }
        const double cost = std::max(dp[g - 1][j], range_cost(j, i));
        if (cost < dp[g][i]) {
          dp[g][i] = cost;
          cut[g][i] = j;
        }
      }
    }
  }

  LayerAssignment assignment(L, 0);
  int end = L;
  for (int g = num_gpus; g >= 1; --g) {
    const int begin = cut[g][end];
    OOBP_CHECK_GE(begin, 0);
    for (int l = begin; l < end; ++l) {
      assignment[l] = g - 1;
    }
    end = begin;
  }
  OOBP_CHECK_EQ(end, 0);
  return assignment;
}

LayerAssignment ModuloAllocation(int num_layers, int num_gpus, int group_size) {
  OOBP_CHECK_GT(num_layers, 0);
  OOBP_CHECK_GT(num_gpus, 0);
  OOBP_CHECK_GT(group_size, 0);
  LayerAssignment assignment(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    assignment[l] = (l / group_size) % num_gpus;
  }
  return assignment;
}

std::vector<int> LayersOf(const LayerAssignment& assignment, int gpu) {
  std::vector<int> layers;
  for (int l = 0; l < static_cast<int>(assignment.size()); ++l) {
    if (assignment[l] == gpu) {
      layers.push_back(l);
    }
  }
  return layers;
}

bool AssignmentCoversAllGpus(const LayerAssignment& assignment, int num_gpus) {
  std::vector<bool> seen(num_gpus, false);
  for (int gpu : assignment) {
    if (gpu < 0 || gpu >= num_gpus) {
      return false;
    }
    seen[gpu] = true;
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

}  // namespace oobp
