#include "src/core/reverse_k.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/memory_model.h"

namespace oobp {

namespace {

// Algorithm 2 lines 3-6 for a given (already clamped) k.
std::vector<TrainOp> BuildOrder(const TrainGraph& graph, int k) {
  std::vector<TrainOp> order;
  const int L = graph.num_layers();
  for (int i = L - 1; i >= 0; --i) {
    order.push_back({TrainOpType::kOutputGrad, i});
    if (i >= k && graph.HasWgrad(i)) {
      order.push_back({TrainOpType::kWeightGrad, i});
    }
  }
  for (int i = 0; i < k; ++i) {
    if (graph.HasWgrad(i)) {
      order.push_back({TrainOpType::kWeightGrad, i});
    }
  }
  return order;
}

}  // namespace

ReverseFirstKResult ReverseFirstK(const TrainGraph& graph, int k,
                                  int64_t memory_cap_bytes) {
  const int L = graph.num_layers();
  OOBP_CHECK_GE(k, 0);
  k = std::min(k, L);

  ReverseFirstKResult result;
  if (memory_cap_bytes >= 0) {
    // Lines 1-2: max_k = arg max_j f(j) s.t. f(j) < MXM, where f(j) is the
    // peak memory of the order that defers the first j weight gradients.
    // f(j) is monotone in j, so the largest feasible j is found by scanning
    // down from the requested k.
    while (k > 0) {
      const MemoryTimeline mem =
          EstimateBackpropMemory(graph.model(), BuildOrder(graph, k));
      if (mem.peak < memory_cap_bytes) {
        break;
      }
      --k;
    }
  }

  result.order = BuildOrder(graph, k);
  result.effective_k = k;
  result.peak_memory =
      EstimateBackpropMemory(graph.model(), result.order).peak;
  OOBP_CHECK(graph.ValidateBackpropOrder(result.order));
  return result;
}

}  // namespace oobp
