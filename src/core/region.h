// Region splitting for multi-region joint scheduling (Section 4.1).
//
// The forward and backward timeline is divided into regions with similar
// compute characteristics — in practice one region per network sub-structure
// (a DenseBlock, a ResNet stage), because such blocks repeat the same
// convolution shapes. Regions are ordered by execution time: backward
// regions from the last block down to the first, then (optionally) the next
// iteration's forward regions from the first block up — Figure 8 shows
// DenseBlock-4's weight gradients delayed into the forward computation of
// DenseBlock-1, so forward regions are legitimate scheduling targets.

#ifndef OOBP_SRC_CORE_REGION_H_
#define OOBP_SRC_CORE_REGION_H_

#include <string>
#include <vector>

#include "src/nn/train_graph.h"

namespace oobp {

struct Region {
  enum class Kind { kBackward, kForward };
  Kind kind = Kind::kBackward;
  std::string name;
  // Main-stream ops of this region in execution order: dO ops (descending
  // layer) for backward regions, F ops (ascending) for forward regions.
  std::vector<TrainOp> main_ops;

  int FirstLayer() const;
  int LastLayer() const;
};

// Builds the region list for a model. Blocks with fewer than
// `min_ops_per_region` main ops are merged into the preceding region (in
// execution order) so profiling stays coarse-grained, mirroring the paper's
// "eight regions for DenseNet-121".
std::vector<Region> BuildRegions(const TrainGraph& graph,
                                 bool include_forward = true,
                                 int min_ops_per_region = 4);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_REGION_H_
