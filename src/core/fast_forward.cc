#include "src/core/fast_forward.h"

#include <algorithm>

#include "src/common/check.h"

namespace oobp {

std::vector<TrainOp> StageBackwardOrder(const TrainGraph& graph,
                                        const std::vector<int>& stage_layers,
                                        bool fast_forward) {
  std::vector<int> layers = stage_layers;
  OOBP_CHECK(std::is_sorted(layers.begin(), layers.end()));
  std::vector<TrainOp> order;
  if (fast_forward) {
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
      order.push_back({TrainOpType::kOutputGrad, *it});
    }
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
      if (graph.HasWgrad(*it)) {
        order.push_back({TrainOpType::kWeightGrad, *it});
      }
    }
  } else {
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
      order.push_back({TrainOpType::kOutputGrad, *it});
      if (graph.HasWgrad(*it)) {
        order.push_back({TrainOpType::kWeightGrad, *it});
      }
    }
  }
  return order;
}

}  // namespace oobp
