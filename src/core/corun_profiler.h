// Co-run profiling for multi-region joint scheduling (Section 4.1, step 1:
// "for all the region pairs we profile their concurrent kernel runs and
// record the speedups over their sequential runs").
//
// The paper profiles on real hardware as part of training; we profile
// against the same fluid SM-occupancy model the simulator executes, which
// keeps the planner's predictions and the simulated execution consistent.
// For each region the profiler derives a leftover-capacity profile: while a
// main-stream kernel with b thread blocks runs, C - min(b, C) slots remain
// for a sub-stream kernel. A candidate weight-gradient kernel's co-run time
// is the time to drain its work at that leftover rate (continuing at full
// rate past the region end), and its speedup is sequential time / joint
// makespan.

#ifndef OOBP_SRC_CORE_CORUN_PROFILER_H_
#define OOBP_SRC_CORE_CORUN_PROFILER_H_

#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/core/region.h"
#include "src/nn/cost_model.h"
#include "src/nn/train_graph.h"

namespace oobp {

class CorunProfiler {
 public:
  CorunProfiler(const TrainGraph& graph, const CostModel& cost,
                std::vector<Region> regions);

  int num_regions() const { return static_cast<int>(regions_.size()); }
  const Region& region(int r) const { return regions_[r]; }
  const std::vector<Region>& regions() const { return regions_; }

  // Total main-stream execution time of region r (incl. per-kernel setup).
  TimeNs MainDuration(int r) const;

  // Execution time of `op` when run alone on the device.
  TimeNs SoloTime(const TrainOp& op) const;

  // Execution time of the sub-stream kernel `op` when it starts `offset` ns
  // into region r and shares slots with the region's main kernels.
  TimeNs SubTimeAt(int r, const TrainOp& op, TimeNs offset) const;

  // Joint-vs-sequential speedup of co-scheduling `op` at `offset` in region
  // r: ((T_main - offset) + solo) / max(T_main - offset, SubTimeAt). >= 1.
  double SpeedupAt(int r, const TrainOp& op, TimeNs offset) const;

  // Earliest (region index, offset within region) at which the dW op is
  // runnable: right after dO_{layer+1} completes (region 0, offset 0 for the
  // last layer, whose gradient comes straight from the loss).
  std::pair<int, TimeNs> ReadyPoint(const TrainOp& op) const;

  // Exclusive deadline: the first region the dW op may NOT be scheduled in
  // (the forward region containing F_layer — the update must land first).
  // Returns num_regions() if unconstrained.
  int DeadlineRegion(const TrainOp& op) const;

 private:
  struct Segment {
    TimeNs duration;
    double leftover;  // free SM slots while this main kernel runs
  };

  // Memoized cost (the model is pure in (layer, type)); the planner queries
  // the same few hundred (layer, type) pairs hundreds of thousands of times
  // per schedule, so the roofline evaluation is hoisted into the ctor.
  const KernelCost& CachedCost(const TrainOp& op) const;

  const TrainGraph* graph_;
  const CostModel* cost_;
  std::vector<Region> regions_;
  std::vector<std::vector<Segment>> profiles_;
  // seg_end_[r][k] = end offset of segment k within region r (prefix sums of
  // segment durations); lets SubTimeAt binary-search its starting segment.
  std::vector<std::vector<TimeNs>> seg_end_;
  std::vector<TimeNs> main_duration_;
  // Layer-indexed lookups (dense: layer ids are 0..L-1).
  // dgrad_end_[layer] = (region index, offset of dO end within the region),
  // region -1 when dO_layer appears in no region.
  std::vector<std::pair<int, TimeNs>> dgrad_end_;
  // fwd_region_[layer] = region containing F_layer, or -1.
  std::vector<int> fwd_region_;
  // cost_cache_[layer * 4 + op_type].
  std::vector<KernelCost> cost_cache_;
};

}  // namespace oobp

#endif  // OOBP_SRC_CORE_CORUN_PROFILER_H_
