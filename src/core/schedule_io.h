// Schedule serialization.
//
// The paper's artifact ships "the execution schedules for the evaluated
// neural network models" alongside the code; this module provides the same
// capability: schedules computed by the (potentially slow) profiling +
// scheduling passes can be exported once and replayed later or on another
// machine. The format is a line-oriented text format designed to be
// diffable and hand-editable:
//
//   # oobp-schedule v1
//   model DenseNet-121(k=32) layers 126
//   op fwd 0 stream=0
//   op dW 12 stream=1 wait=37
//   ...
//
// Layer assignments (pipeline) serialize as:
//
//   # oobp-assignment v1
//   layers 26 gpus 4
//   map 0 1 2 3 0 1 2 3 ...

#ifndef OOBP_SRC_CORE_SCHEDULE_IO_H_
#define OOBP_SRC_CORE_SCHEDULE_IO_H_

#include <optional>
#include <string>

#include "src/core/modulo_alloc.h"
#include "src/core/schedule.h"

namespace oobp {

// Serializes a single-GPU iteration schedule. `model_name`/`num_layers`
// are recorded for validation at load time.
std::string ScheduleToText(const IterationSchedule& schedule,
                           const std::string& model_name, int num_layers);

// Parses a schedule; returns std::nullopt on malformed input. If
// `expect_layers` >= 0, a mismatch with the recorded layer count fails.
std::optional<IterationSchedule> ScheduleFromText(const std::string& text,
                                                  int expect_layers = -1);

std::string AssignmentToText(const LayerAssignment& assignment, int num_gpus);
std::optional<LayerAssignment> AssignmentFromText(const std::string& text,
                                                  int* num_gpus_out = nullptr);

// File helpers; return false / nullopt on I/O failure.
bool WriteScheduleFile(const std::string& path,
                       const IterationSchedule& schedule,
                       const std::string& model_name, int num_layers);
std::optional<IterationSchedule> ReadScheduleFile(const std::string& path,
                                                  int expect_layers = -1);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_SCHEDULE_IO_H_
