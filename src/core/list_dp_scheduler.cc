#include "src/core/list_dp_scheduler.h"

#include <algorithm>
#include <limits>
#include <set>

#include "src/common/check.h"

namespace oobp {

ListDpInputs BuildListDpInputs(const NnModel& model, const CostModel& cost,
                               const std::vector<TimeNs>& sync_times) {
  const int L = model.num_layers();
  OOBP_CHECK_EQ(static_cast<int>(sync_times.size()), L);
  ListDpInputs in;
  in.fwd.resize(L);
  in.dgrad.resize(L);
  in.wgrad.resize(L);
  in.sync = sync_times;
  for (int l = 0; l < L; ++l) {
    in.fwd[l] = cost.Cost(model.layers[l], TrainOpType::kForward).duration;
    in.dgrad[l] = cost.Cost(model.layers[l], TrainOpType::kOutputGrad).duration;
    in.wgrad[l] = model.layers[l].has_params()
                      ? cost.Cost(model.layers[l], TrainOpType::kWeightGrad)
                            .duration
                      : 0;
  }
  return in;
}

ListDpResult ListScheduleDataParallel(const TrainGraph& graph,
                                      const ListDpInputs& inputs) {
  const int L = graph.num_layers();
  OOBP_CHECK_EQ(static_cast<int>(inputs.fwd.size()), L);

  // Forward start offsets relative to the start of the forward pass.
  std::vector<TimeNs> fwd_offset(L, 0);
  for (int l = 1; l < L; ++l) {
    fwd_offset[l] = fwd_offset[l - 1] + inputs.fwd[l - 1];
  }

  // Remaining backward compute (used to estimate when forward will start).
  TimeNs bwd_remaining = 0;
  for (int l = 0; l < L; ++l) {
    bwd_remaining += inputs.dgrad[l] + inputs.wgrad[l];
  }

  ListDpResult result;
  TimeNs t = 0;             // GPU clock
  TimeNs channel_free = 0;  // serialized-channel clock
  int next_dgrad = L - 1;   // the critical chain
  std::set<int> ready_wgrads;
  std::vector<TimeNs> sync_done(L, 0);

  auto schedule_wgrad = [&](int l) {
    result.order.push_back({TrainOpType::kWeightGrad, l});
    t += inputs.wgrad[l];
    bwd_remaining -= inputs.wgrad[l];
    const TimeNs start = std::max(t, channel_free);
    channel_free = start + inputs.sync[l];
    sync_done[l] = channel_free;
    ready_wgrads.erase(l);
  };
  auto schedule_dgrad = [&]() {
    const int l = next_dgrad--;
    result.order.push_back({TrainOpType::kOutputGrad, l});
    t += inputs.dgrad[l];
    bwd_remaining -= inputs.dgrad[l];
    if (l - 1 >= 0 && graph.HasWgrad(l - 1)) {
      ready_wgrads.insert(l - 1);
    }
  };
  if (graph.HasWgrad(L - 1)) {
    ready_wgrads.insert(L - 1);  // the loss gradient is available at t = 0
  }

  while (next_dgrad >= 0 || !ready_wgrads.empty()) {
    // Slack of a ready dW if scheduled right now: time to its deadline (the
    // next forward of the same layer) minus its projected sync completion.
    int urgent = -1;
    TimeNs urgent_slack = std::numeric_limits<TimeNs>::max();
    for (int l : ready_wgrads) {
      const TimeNs done = std::max(t + inputs.wgrad[l], channel_free) +
                          inputs.sync[l];
      const TimeNs deadline = t + bwd_remaining + fwd_offset[l];
      const TimeNs slack = deadline - done;
      if (slack < urgent_slack) {
        urgent_slack = slack;
        urgent = l;
      }
    }
    if (next_dgrad < 0) {
      OOBP_CHECK_GE(urgent, 0);
      schedule_wgrad(urgent);
    } else if (urgent >= 0 && urgent_slack <= 0) {
      schedule_wgrad(urgent);  // a synchronization is about to become late
    } else if (urgent >= 0 && channel_free <= t + inputs.wgrad[urgent]) {
      // Work conservation: the channel would go idle before another
      // gradient reaches it — feed it the most critical ready dW now.
      schedule_wgrad(urgent);
    } else {
      schedule_dgrad();  // advance the critical chain
    }
  }

  // Makespan estimate: forward gated per layer by its synchronization.
  TimeNs ft = t;
  for (int l = 0; l < L; ++l) {
    ft = std::max(ft, sync_done[l]);
    ft += inputs.fwd[l];
  }
  result.estimated_makespan = ft;
  OOBP_CHECK(graph.ValidateBackpropOrder(result.order));
  return result;
}

}  // namespace oobp
