#include "src/core/schedule.h"

#include "src/common/str_util.h"

namespace oobp {

std::vector<TrainOp> IterationSchedule::StreamOps(int stream) const {
  std::vector<TrainOp> out;
  for (const ScheduledOp& s : ops) {
    if (s.stream == stream) {
      out.push_back(s.op);
    }
  }
  return out;
}

std::vector<TrainOp> IterationSchedule::MergedOrder() const {
  std::vector<TrainOp> out;
  out.reserve(ops.size());
  for (const ScheduledOp& s : ops) {
    out.push_back(s.op);
  }
  return out;
}

std::string IterationSchedule::ToString() const {
  std::vector<std::string> parts;
  for (const ScheduledOp& s : ops) {
    parts.push_back(StrFormat("%s%s[%d]", s.stream == kSubStream ? "*" : "",
                              TrainOpTypeName(s.op.type), s.op.layer));
  }
  return Join(parts, " ");
}

IterationSchedule ConventionalIteration(const TrainGraph& graph) {
  IterationSchedule sched;
  for (const TrainOp& op : graph.ConventionalBackprop()) {
    sched.ops.push_back({op, kMainStream, -1});
    if (op.type == TrainOpType::kWeightGrad) {
      sched.ops.push_back(
          {{TrainOpType::kWeightUpdate, op.layer}, kMainStream, -1});
    }
  }
  for (const TrainOp& op : graph.Forward()) {
    sched.ops.push_back({op, kMainStream, -1});
  }
  return sched;
}

}  // namespace oobp
