#include "src/core/schedule.h"

#include "src/common/check.h"
#include "src/common/str_util.h"

namespace oobp {

void SchedulePrefixState::Reset(int num_layers) {
  OOBP_CHECK_GE(num_layers, 0);
  next_pos = 0;
  fwd_pos.assign(static_cast<size_t>(num_layers), -1);
  dgrad_pos.assign(static_cast<size_t>(num_layers), -1);
  wgrad_pos.assign(static_cast<size_t>(num_layers), -1);
  update_pos.assign(static_cast<size_t>(num_layers), -1);
}

void SchedulePrefixState::Advance(const ScheduledOp& scheduled) {
  const size_t i = static_cast<size_t>(scheduled.op.layer);
  OOBP_CHECK_LT(i, fwd_pos.size());
  switch (scheduled.op.type) {
    case TrainOpType::kForward:
      fwd_pos[i] = next_pos;
      break;
    case TrainOpType::kOutputGrad:
      dgrad_pos[i] = next_pos;
      break;
    case TrainOpType::kWeightGrad:
      wgrad_pos[i] = next_pos;
      break;
    case TrainOpType::kWeightUpdate:
      update_pos[i] = next_pos;
      break;
  }
  ++next_pos;
}

std::vector<TrainOp> IterationSchedule::StreamOps(int stream) const {
  std::vector<TrainOp> out;
  for (const ScheduledOp& s : ops) {
    if (s.stream == stream) {
      out.push_back(s.op);
    }
  }
  return out;
}

std::vector<TrainOp> IterationSchedule::MergedOrder() const {
  std::vector<TrainOp> out;
  out.reserve(ops.size());
  for (const ScheduledOp& s : ops) {
    out.push_back(s.op);
  }
  return out;
}

std::string IterationSchedule::ToString() const {
  std::vector<std::string> parts;
  for (const ScheduledOp& s : ops) {
    parts.push_back(StrFormat("%s%s[%d]", s.stream == kSubStream ? "*" : "",
                              TrainOpTypeName(s.op.type), s.op.layer));
  }
  return Join(parts, " ");
}

IterationSchedule ConventionalIteration(const TrainGraph& graph) {
  IterationSchedule sched;
  for (const TrainOp& op : graph.ConventionalBackprop()) {
    sched.ops.push_back({op, kMainStream, -1});
    if (op.type == TrainOpType::kWeightGrad) {
      sched.ops.push_back(
          {{TrainOpType::kWeightUpdate, op.layer}, kMainStream, -1});
    }
  }
  for (const TrainOp& op : graph.Forward()) {
    sched.ops.push_back({op, kMainStream, -1});
  }
  return sched;
}

}  // namespace oobp
