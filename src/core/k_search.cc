#include "src/core/k_search.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"

namespace oobp {

KSearchResult SearchBestK(int num_layers,
                          const std::function<double(int)>& throughput) {
  OOBP_CHECK_GT(num_layers, 0);
  KSearchResult result;
  std::map<int, double> memo;

  auto eval = [&](int k) {
    k = std::clamp(k, 0, num_layers);
    auto it = memo.find(k);
    if (it != memo.end()) {
      return it->second;
    }
    const double t = throughput(k);
    memo.emplace(k, t);
    result.evaluations.emplace_back(k, t);
    return t;
  };

  // Initial coarse scan: k = 0, dk, 2*dk, ... < L with dk = L/10.
  int dk = std::max(1, num_layers / 10);
  int best_k = 0;
  double best_t = eval(0);
  for (int k = dk; k < num_layers; k += dk) {
    const double t = eval(k);
    if (t > best_t) {
      best_t = t;
      best_k = k;
    }
  }

  // Refine: re-scan (best-dk, best+dk) with the step halved, repeatedly.
  while (dk > 1) {
    const int lo = std::max(0, best_k - dk);
    const int hi = std::min(num_layers, best_k + dk);
    dk = std::max(1, dk / 2);
    for (int k = lo; k <= hi; k += dk) {
      const double t = eval(k);
      if (t > best_t) {
        best_t = t;
        best_k = k;
      }
    }
    if (dk == 1) {
      break;
    }
  }

  result.best_k = best_k;
  result.best_throughput = best_t;
  return result;
}

}  // namespace oobp
