// The heuristic search for the optimal reverse-first-k parameter
// (Section 5.1): assume throughput is roughly concave in k, scan with step
// dk = L/10, then repeatedly re-scan the interval (best-dk, best+dk) with
// the step halved until it reaches one layer.

#ifndef OOBP_SRC_CORE_K_SEARCH_H_
#define OOBP_SRC_CORE_K_SEARCH_H_

#include <functional>
#include <vector>

namespace oobp {

struct KSearchResult {
  int best_k = 0;
  double best_throughput = 0.0;
  // Every (k, throughput) pair that was measured, in evaluation order; the
  // paper's claim is that this stays far below the L+1 exhaustive sweep.
  std::vector<std::pair<int, double>> evaluations;
};

// `throughput(k)` must be valid for k in [0, num_layers]. Evaluations are
// memoized, so repeated k values cost nothing.
KSearchResult SearchBestK(int num_layers,
                          const std::function<double(int)>& throughput);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_K_SEARCH_H_
