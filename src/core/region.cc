#include "src/core/region.h"

#include <algorithm>

#include "src/common/check.h"

namespace oobp {

int Region::FirstLayer() const {
  OOBP_CHECK(!main_ops.empty());
  int lo = main_ops.front().layer;
  for (const TrainOp& op : main_ops) {
    lo = std::min(lo, op.layer);
  }
  return lo;
}

int Region::LastLayer() const {
  OOBP_CHECK(!main_ops.empty());
  int hi = main_ops.front().layer;
  for (const TrainOp& op : main_ops) {
    hi = std::max(hi, op.layer);
  }
  return hi;
}

namespace {

// Groups consecutive ops (in execution order) by layer block, merging small
// groups into their predecessor.
void AppendRegions(const NnModel& model, const std::vector<TrainOp>& ops,
                   Region::Kind kind, const std::string& prefix,
                   int min_ops_per_region, std::vector<Region>* out) {
  std::vector<Region> pending;
  for (const TrainOp& op : ops) {
    const std::string& block = model.layers[op.layer].block;
    if (pending.empty() || pending.back().name != prefix + block) {
      Region r;
      r.kind = kind;
      r.name = prefix + block;
      pending.push_back(std::move(r));
    }
    pending.back().main_ops.push_back(op);
  }
  // Merge undersized regions into the previous one (or the next, for a
  // leading undersized region).
  std::vector<Region> merged;
  for (Region& r : pending) {
    if (!merged.empty() &&
        static_cast<int>(r.main_ops.size()) < min_ops_per_region) {
      Region& prev = merged.back();
      prev.main_ops.insert(prev.main_ops.end(), r.main_ops.begin(),
                           r.main_ops.end());
    } else if (merged.empty() &&
               static_cast<int>(r.main_ops.size()) < min_ops_per_region &&
               pending.size() > 1) {
      // Defer: stash the ops so the next region absorbs them.
      merged.push_back(std::move(r));
      merged.back().name += "+";
    } else {
      if (!merged.empty() && merged.back().name.ends_with("+")) {
        // Absorb the stashed leading region into this one.
        Region lead = std::move(merged.back());
        merged.pop_back();
        lead.main_ops.insert(lead.main_ops.end(), r.main_ops.begin(),
                             r.main_ops.end());
        lead.name = r.name;
        lead.kind = r.kind;
        merged.push_back(std::move(lead));
      } else {
        merged.push_back(std::move(r));
      }
    }
  }
  for (Region& r : merged) {
    out->push_back(std::move(r));
  }
}

}  // namespace

std::vector<Region> BuildRegions(const TrainGraph& graph, bool include_forward,
                                 int min_ops_per_region) {
  std::vector<Region> regions;
  // Backward main-stream ops: the dO chain, last layer first.
  std::vector<TrainOp> bwd;
  for (int i = graph.num_layers() - 1; i >= 0; --i) {
    bwd.push_back({TrainOpType::kOutputGrad, i});
  }
  AppendRegions(graph.model(), bwd, Region::Kind::kBackward, "bwd:",
                min_ops_per_region, &regions);
  if (include_forward) {
    AppendRegions(graph.model(), graph.Forward(), Region::Kind::kForward,
                  "fwd:", min_ops_per_region, &regions);
  }
  return regions;
}

}  // namespace oobp
