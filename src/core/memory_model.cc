#include "src/core/memory_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace oobp {

MemoryTimeline EstimateBackpropMemory(const NnModel& model,
                                      const std::vector<TrainOp>& order) {
  const int L = model.num_layers();
  MemoryTimeline tl;

  // Schedule-independent base: weights, momentum, gradient buffers.
  for (const Layer& l : model.layers) {
    tl.base += 3 * l.param_bytes;
  }

  // Remaining consumers of each activation output (layer j's output feeds
  // layer j+1's dW) and of each incoming gradient (dO_i + dW_i).
  std::vector<int> act_consumers(L, 0);   // for output_bytes[j]
  std::vector<int> grad_consumers(L, 0);  // for gradient into layer i
  std::vector<bool> grad_alloc(L, false);
  std::vector<bool> stash_live(L, false);

  int64_t live = 0;
  for (int j = 0; j < L; ++j) {
    live += model.layers[j].output_bytes + model.layers[j].stash_bytes;
    stash_live[j] = true;
    if (j + 1 < L) {
      act_consumers[j] = model.layers[j + 1].has_params() ? 1 : 0;
    }
    grad_consumers[j] = 1 + (model.layers[j].has_params() ? 1 : 0);
  }
  // The loss gradient (into the top layer) pre-exists at backprop start.
  if (L > 0) {
    live += model.layers[L - 1].output_bytes;
    grad_alloc[L - 1] = true;
  }
  tl.initial = live;
  tl.peak = live;

  auto free_activation = [&](int j) {
    if (j >= 0 && j < L) {
      live -= model.layers[j].output_bytes;
    }
  };
  auto consume_grad = [&](int i) {
    OOBP_CHECK_GT(grad_consumers[i], 0);
    if (--grad_consumers[i] == 0 && grad_alloc[i]) {
      live -= model.layers[i].output_bytes;  // gradient buffer size
    }
  };

  for (const TrainOp& op : order) {
    if (op.type != TrainOpType::kOutputGrad &&
        op.type != TrainOpType::kWeightGrad) {
      tl.usage_during.push_back(live);
      tl.usage_after.push_back(live);
      continue;
    }
    const int i = op.layer;
    OOBP_CHECK_GE(i, 0);
    OOBP_CHECK_LT(i, L);
    const Layer& layer = model.layers[i];

    if (op.type == TrainOpType::kOutputGrad) {
      // Produces the gradient into layer i-1.
      if (i > 0 && !grad_alloc[i - 1]) {
        live += model.layers[i - 1].output_bytes;
        grad_alloc[i - 1] = true;
      }
      tl.usage_during.push_back(live + layer.workspace_bytes);
      // Frees: this layer's stash, and the incoming gradient if dW already ran
      // (or does not exist).
      if (stash_live[i]) {
        live -= layer.stash_bytes;
        stash_live[i] = false;
      }
      consume_grad(i);
      // A parameter-free layer also releases its input activation here.
      if (i > 0 && act_consumers[i - 1] == 0) {
        free_activation(i - 1);
        act_consumers[i - 1] = -1;  // freed
      }
      // The network's final output is only needed by the loss computation,
      // which already ran; the top layer's dO releases it.
      if (i == L - 1) {
        free_activation(L - 1);
      }
    } else {  // kWeightGrad
      tl.usage_during.push_back(live + layer.workspace_bytes);
      consume_grad(i);
      if (i > 0) {
        OOBP_CHECK_EQ(act_consumers[i - 1], 1)
            << "dW[" << i << "] scheduled twice or input already freed";
        act_consumers[i - 1] = 0;
        free_activation(i - 1);
        act_consumers[i - 1] = -1;
      }
    }
    tl.usage_after.push_back(live);
    tl.peak = std::max(tl.peak, tl.usage_during.back());
  }
  return tl;
}

}  // namespace oobp
