// Reverse first-k scheduling — Algorithm 2 of the paper (Section 5.1).
//
// In data-parallel training the critical synchronizations are the weight
// gradients of the *first* layers: their parameters are needed at the very
// start of the next iteration's forward pass. Reverse first-k keeps
// conventional backprop for layers L-1..k+1 but defers the weight gradients
// of layers 1..k, then computes them in *reverse* order (dW_1 first) so the
// most critical synchronization starts as early as possible and overlaps
// with the remaining dW computations.
//
// Layer indices here are 0-based: "first k layers" = layers 0..k-1.

#ifndef OOBP_SRC_CORE_REVERSE_K_H_
#define OOBP_SRC_CORE_REVERSE_K_H_

#include <cstdint>
#include <vector>

#include "src/nn/train_graph.h"

namespace oobp {

struct ReverseFirstKResult {
  std::vector<TrainOp> order;  // the optimized backprop order D
  int effective_k = 0;         // k after the memory-cap clamp (lines 1-2)
  int64_t peak_memory = 0;     // activation peak of the returned order
};

// `memory_cap_bytes` < 0 disables the clamp. The returned order always
// satisfies the dependency constraints (ValidateBackpropOrder passes).
ReverseFirstKResult ReverseFirstK(const TrainGraph& graph, int k,
                                  int64_t memory_cap_bytes = -1);

}  // namespace oobp

#endif  // OOBP_SRC_CORE_REVERSE_K_H_
