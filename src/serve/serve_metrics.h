// Serving-side metrics: latency distribution, goodput, SLO attainment and
// batch-size histogram, flattened through the same MetricKv path the
// training metrics use so serve scenarios flow through the existing golden
// machinery unchanged.

#ifndef OOBP_SRC_SERVE_SERVE_METRICS_H_
#define OOBP_SRC_SERVE_SERVE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/runtime/metrics.h"

namespace oobp {

// One served inference request, recorded by the serve engine.
struct RequestRecord {
  TimeNs arrival = 0;
  TimeNs dispatch = -1;    // batch dispatch time (-1: never dispatched)
  TimeNs exec_start = -1;  // first kernel of its batch began executing
  TimeNs done = -1;        // last kernel of its batch completed
  int batch_size = 0;

  bool completed() const { return done >= 0; }
  TimeNs latency() const { return done - arrival; }
};

struct ServeMetrics {
  // Order statistics over an empty completion window (e.g. a fleet replica
  // scaled down before its first completion) report this sentinel instead of
  // a fabricated 0 ns latency; ServeMetricsToKv forwards it as -1.
  static constexpr TimeNs kNoSample = -1;

  int64_t num_requests = 0;   // offered over the horizon
  int64_t num_completed = 0;  // finished before the simulation drained
  int64_t num_batches = 0;

  double offered_rps = 0.0;
  double completed_rps = 0.0;  // completions / horizon
  double goodput_rps = 0.0;    // completions within SLO / horizon
  double slo_attainment = 0.0;  // within-SLO fraction of completed

  // Order statistics over completed-request latency (exact, nearest-rank);
  // kNoSample when no request completed.
  TimeNs p50_latency = kNoSample;
  TimeNs p95_latency = kNoSample;
  TimeNs p99_latency = kNoSample;
  TimeNs max_latency = kNoSample;
  double mean_latency_ms = 0.0;
  // Decomposition: host+batching queue delay vs contended GPU execution.
  double mean_queue_delay_ms = 0.0;
  double mean_exec_ms = 0.0;

  double mean_batch_size = 0.0;
  IntHistogram batch_sizes{32};
};

// Aggregates request records. Requests still in flight when the simulation
// drained count as offered but not completed. `slo` bounds arrival-to-done
// latency; `horizon` is the arrival-generation window (rates are per
// horizon-second, keeping offered vs completed comparable).
ServeMetrics ComputeServeMetrics(const std::vector<RequestRecord>& requests,
                                 int64_t num_batches, TimeNs horizon,
                                 TimeNs slo);

// Flattens into the runner's key/value form. Stable keys (golden files
// reference them): <prefix>offered_rps, completed_rps, goodput_rps,
// slo_attainment, p50_ms, p95_ms, p99_ms, max_ms, mean_ms, queue_delay_ms,
// exec_ms, mean_batch, num_batches, plus batch_count_<k> for every non-empty
// histogram bucket.
std::vector<MetricKv> ServeMetricsToKv(const ServeMetrics& m,
                                       const std::string& prefix = "");

}  // namespace oobp

#endif  // OOBP_SRC_SERVE_SERVE_METRICS_H_
