// Inference-serving engine: replays an arrival trace through the dynamic
// batcher and issues per-layer inference (forward) kernels onto the fluid
// GPU model, optionally co-run with a training workload.
//
// Stream/priority layout (fixed for all modes):
//   stream 0, priority 0 — training main stream (forward, dO)
//   stream 1, priority 2 — training sub stream (dW, updates)
//   stream 2, priority 1 — inference
// With ooo-backprop, weight gradients live on the priority-2 sub stream, so
// inference preempts them in SM-slot allocation and fills the occupancy the
// reordered dW kernels would otherwise monopolize; the in-order baseline
// keeps all training on the priority-0 main stream, and inference only gets
// the leftover slots of whatever training kernel is resident. That is the
// serving-side value of out-of-order backprop this subsystem measures.
//
// Each batch is issued like a captured graph: one graph-launch latency, then
// all per-layer kernels enqueued on the inference stream (in-stream order
// serializes them, matching CUDA stream semantics).

#ifndef OOBP_SRC_SERVE_SERVE_ENGINE_H_
#define OOBP_SRC_SERVE_SERVE_ENGINE_H_

#include <functional>

#include "src/core/schedule.h"
#include "src/hw/gpu_spec.h"
#include "src/nn/cost_model.h"
#include "src/nn/layer.h"
#include "src/runtime/metrics.h"
#include "src/serve/arrival.h"
#include "src/serve/batcher.h"
#include "src/serve/serve_metrics.h"

namespace oobp {

struct ServeConfig {
  GpuSpec gpu;
  SystemProfile profile;
  ArrivalSpec arrivals;
  BatcherConfig batcher;
  TimeNs horizon = Ms(200);  // arrival-generation window
  TimeNs slo = Ms(20);       // arrival-to-completion latency bound
  // Inference model at a given batch size; called once per size in
  // [1, batcher.max_batch] to precompute per-layer kernel costs.
  std::function<NnModel(int batch)> make_model;
};

struct ServeCorunResult {
  ServeMetrics serve;
  TrainMetrics train;
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeConfig config);

  // Inference alone on the device (no training contention).
  ServeMetrics RunServeOnly() const;

  // Inference co-run with `train_iterations` repetitions of the training
  // schedule (issued pre-compiled, as in XLA+Opt1). The schedule's stream
  // tags select the mode: ConventionalIteration keeps everything on the
  // main stream (in-order baseline); a joint schedule moves dW/updates to
  // the sub stream (ooo-backprop). `train_iterations` must be >= 2 (one
  // warm-up + measured window) and should cover the serve horizon so
  // requests face contention throughout.
  ServeCorunResult RunCorun(const NnModel& train_model,
                            const IterationSchedule& train_schedule,
                            int train_iterations) const;

  const ServeConfig& config() const { return config_; }

 private:
  ServeMetrics RunImpl(const NnModel* train_model,
                       const IterationSchedule* train_schedule,
                       int train_iterations, TrainMetrics* train_out) const;

  ServeConfig config_;
};

}  // namespace oobp

#endif  // OOBP_SRC_SERVE_SERVE_ENGINE_H_
