#include "src/serve/autoscaler.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace oobp {

Autoscaler::Autoscaler(SimEngine* engine, AutoscalerConfig config,
                       QueuedFn queued)
    : engine_(engine), config_(config), queued_(std::move(queued)) {
  OOBP_CHECK(engine_ != nullptr);
  OOBP_CHECK(queued_ != nullptr);
  OOBP_CHECK_GE(config_.min_replicas, 1);
  OOBP_CHECK_GE(config_.max_replicas, config_.min_replicas);
  OOBP_CHECK_GT(config_.scale_up_depth, config_.scale_down_depth);
  OOBP_CHECK_GT(config_.evaluate_every, 0);
  OOBP_CHECK_GE(config_.cooldown, 0);
  OOBP_CHECK_GE(config_.warmup, 0);

  int initial = config_.initial_replicas;
  if (initial == 0) {
    initial = config_.min_replicas;
  }
  initial = std::clamp(initial, config_.min_replicas, config_.max_replicas);

  state_.assign(static_cast<size_t>(config_.max_replicas), State::kDown);
  warm_timer_.resize(static_cast<size_t>(config_.max_replicas));
  for (int r = 0; r < initial; ++r) {
    state_[static_cast<size_t>(r)] = State::kUp;
  }
  target_ = initial;
  RebuildRoutable();
  timeline_.push_back({engine_->now(), num_routable()});
}

void Autoscaler::Start(TimeNs until) {
  const TimeNs first = engine_->now() + config_.evaluate_every;
  if (first > until) {
    return;
  }
  engine_->ScheduleAt(first, [this, until] {
    Evaluate();
    Start(until);
  });
}

void Autoscaler::Evaluate() {
  const TimeNs now = engine_->now();
  if (any_action_ && now - last_action_ < config_.cooldown) {
    return;
  }
  const int64_t queued = queued_();
  const double per = static_cast<double>(queued) /
                     static_cast<double>(std::max(1, num_routable()));

  if (per > config_.scale_up_depth && target_ < config_.max_replicas) {
    // Lowest down replica spins up; routable only after the warm-up cost.
    int replica = -1;
    for (int r = 0; r < config_.max_replicas; ++r) {
      if (state_[static_cast<size_t>(r)] == State::kDown) {
        replica = r;
        break;
      }
    }
    OOBP_CHECK_GE(replica, 0);
    state_[static_cast<size_t>(replica)] = State::kWarming;
    ++target_;
    ++scale_ups_;
    any_action_ = true;
    last_action_ = now;
    if (config_.warmup == 0) {
      BecomeUp(replica);
    } else {
      warm_timer_[static_cast<size_t>(replica)] = engine_->ScheduleAfter(
          config_.warmup, [this, replica] { BecomeUp(replica); });
    }
    return;
  }

  if (per < config_.scale_down_depth && target_ > config_.min_replicas) {
    // Highest non-down replica goes; a still-warming one is simply
    // cancelled (its warm-up never completes), an up one stops receiving
    // new requests and drains.
    for (int r = config_.max_replicas - 1; r >= 0; --r) {
      State& s = state_[static_cast<size_t>(r)];
      if (s == State::kDown) {
        continue;
      }
      if (s == State::kWarming) {
        engine_->Cancel(warm_timer_[static_cast<size_t>(r)]);
      }
      s = State::kDown;
      --target_;
      ++scale_downs_;
      any_action_ = true;
      last_action_ = now;
      const int before = num_routable();
      RebuildRoutable();
      if (num_routable() != before) {
        timeline_.push_back({now, num_routable()});
      }
      return;
    }
  }
}

bool Autoscaler::routable(int replica) const {
  OOBP_CHECK_GE(replica, 0);
  OOBP_CHECK_LT(replica, config_.max_replicas);
  return state_[static_cast<size_t>(replica)] == State::kUp;
}

void Autoscaler::BecomeUp(int replica) {
  OOBP_CHECK(state_[static_cast<size_t>(replica)] == State::kWarming);
  state_[static_cast<size_t>(replica)] = State::kUp;
  RebuildRoutable();
  timeline_.push_back({engine_->now(), num_routable()});
}

void Autoscaler::RebuildRoutable() {
  routable_.clear();
  for (int r = 0; r < config_.max_replicas; ++r) {
    if (state_[static_cast<size_t>(r)] == State::kUp) {
      routable_.push_back(r);
    }
  }
}

}  // namespace oobp
