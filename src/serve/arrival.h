// Deterministic request-arrival generators for the inference-serving
// subsystem.
//
// Serving experiments need arrival processes that are (a) statistically
// representative — production inference traffic is Poisson at short time
// scales with bursty rate modulation at longer ones (MMPP) — and (b)
// bit-reproducible: a scenario must produce the same trace on every run and
// under any --jobs parallelism. Both generators therefore draw from an
// explicitly seeded splitmix64 Rng (src/common/rng.h) and materialize the
// whole trace up front as integer-nanosecond timestamps; the serve engine
// replays the list, so no randomness survives into the event loop.

#ifndef OOBP_SRC_SERVE_ARRIVAL_H_
#define OOBP_SRC_SERVE_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"

namespace oobp {

enum class ArrivalKind {
  kPoisson,  // homogeneous Poisson process at `rate_rps`
  kBursty,   // 2-state MMPP: quiet/burst phases, overall mean `rate_rps`
};

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_rps = 100.0;  // long-run mean arrival rate (requests/sec)
  uint64_t seed = 1;

  // Bursty (MMPP) shape knobs, ignored for kPoisson. The burst phase runs at
  // `burst_factor` x the quiet rate and carries `burst_fraction` of all
  // time-weighted phase mass; dwell times are exponential with the given
  // mean for bursts (quiet dwell follows from the fraction).
  double burst_factor = 6.0;
  double burst_fraction = 0.2;
  TimeNs mean_burst_dwell = Ms(4);
};

// Arrival timestamps in [0, horizon), strictly increasing (ties are bumped
// by 1 ns so every request has a distinct arrival event). Identical inputs
// yield byte-identical traces.
std::vector<TimeNs> GenerateArrivals(const ArrivalSpec& spec, TimeNs horizon);

// One step of a piecewise-constant rate envelope. Fleet scenarios layer a
// diurnal or trace-replayed load shape on top of the base Poisson/MMPP
// process: during a segment the instantaneous rate is `rate_factor` x the
// spec's mean rate. Segments tile time in order and the envelope repeats
// past its total duration (a 24-segment "hour" profile cycles per day).
struct RateSegment {
  TimeNs duration = 0;
  double rate_factor = 1.0;
};

// The envelope factor in effect at time `t` (cycling past the total
// duration). The envelope must be non-empty with positive durations and
// non-negative factors.
double EnvelopeFactorAt(const std::vector<RateSegment>& envelope, TimeNs t);

// A staircase approximation of a diurnal sine: `steps` equal segments over
// `period`, with factors sweeping trough -> peak -> trough. Mean factor is
// ~(trough + peak) / 2.
std::vector<RateSegment> MakeDiurnalEnvelope(TimeNs period, double trough,
                                             double peak, int steps);

// GenerateArrivals with the rate modulated by `envelope`, via thinning: the
// base process runs at the envelope's peak factor and each arrival at time t
// survives with probability factor(t) / peak_factor. Thinning preserves both
// Poisson and MMPP structure, keeps timestamps strictly increasing, and
// stays byte-deterministic (the accept draws come from an Rng derived from
// spec.seed, consumed in arrival order). An empty envelope is the identity.
std::vector<TimeNs> GenerateTracedArrivals(
    const ArrivalSpec& spec, const std::vector<RateSegment>& envelope,
    TimeNs horizon);

}  // namespace oobp

#endif  // OOBP_SRC_SERVE_ARRIVAL_H_
