#include "src/serve/fleet_engine.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/common/check.h"
#include "src/core/memory_model.h"
#include "src/hw/cpu_launcher.h"
#include "src/hw/gpu.h"
#include "src/hw/validation_hooks.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/sim/engine.h"
#include "src/sim/sharded.h"

namespace oobp {

namespace {

// Per-batch inference state on one replica: the requests it serves and its
// kernel span on that replica's inference stream.
struct Batch {
  std::vector<int64_t> requests;
  KernelId first = -1;
  KernelId last = -1;
};

// One replica: a GPU with the fixed three-stream layout, its dynamic
// batcher, and (co-run mode) its own CPU launcher replaying the training
// issue plan.
struct Replica {
  std::unique_ptr<Gpu> gpu;
  StreamId main_stream = 0;
  StreamId sub_stream = 0;
  StreamId serve_stream = 0;
  std::unique_ptr<DynamicBatcher> batcher;
  std::vector<Batch> batches;
  std::unordered_map<KernelId, size_t> last_kernel_to_batch;
  std::unique_ptr<CpuLauncher> launcher;
  std::vector<KernelId> item_kernel;
};

}  // namespace

FleetEngine::FleetEngine(FleetConfig config) : config_(std::move(config)) {
  OOBP_CHECK(config_.make_model != nullptr);
  OOBP_CHECK_GT(config_.horizon, 0);
  OOBP_CHECK_GT(config_.slo, 0);
  OOBP_CHECK_GE(config_.autoscaler.min_replicas, 1);
}

FleetMetrics FleetEngine::RunServeOnly() const {
  return RunImpl(nullptr, nullptr, 0);
}

FleetMetrics FleetEngine::RunCorun(const NnModel& train_model,
                                   const IterationSchedule& train_schedule,
                                   int train_iterations) const {
  OOBP_CHECK_GE(train_iterations, 2);
  return RunImpl(&train_model, &train_schedule, train_iterations);
}

FleetMetrics FleetEngine::RunImpl(const NnModel* train_model,
                                  const IterationSchedule* train_schedule,
                                  int train_iterations) const {
  const CostModel cost(config_.gpu, config_.profile);
  const int fleet_size = config_.autoscaler.max_replicas;

  // Inference kernel costs per batch size, shared by every replica (one
  // captured graph per bucket, identical models across the fleet).
  const int max_batch = config_.batcher.max_batch;
  std::vector<std::vector<KernelCost>> batch_costs(max_batch + 1);
  for (int b = 1; b <= max_batch; ++b) {
    const NnModel model = config_.make_model(b);
    batch_costs[b].reserve(model.layers.size());
    for (const Layer& layer : model.layers) {
      batch_costs[b].push_back(cost.Cost(layer, TrainOpType::kForward));
    }
  }

  // Training issue plan, also shared (same model/schedule on every replica;
  // stream ids match because every replica creates streams in the same
  // order).
  TrainIssuePlan plan;
  if (train_model != nullptr) {
    plan = BuildTrainIssuePlan(*train_model, *train_schedule, cost,
                               train_iterations, /*main_stream=*/0,
                               /*sub_stream=*/1, /*label_items=*/false);
  }

  // Engine layout. Reference path (sim_threads <= 1, a single replica, or a
  // validator attached — validation hooks are thread-local, so a sharded
  // run would silently skip them): every replica and the control plane
  // share one engine, exactly the pre-sharding behavior. Sharded path:
  // replica r is logical process r of a ShardedSim, and the control plane
  // (pre-generated arrival trace, router, autoscaler) runs on the
  // coordinator's control engine. All engines draw event seqs from one
  // shared counter, and replicas advance between control events only up to
  // the next control event's (time, seq) — which replays the single-engine
  // total order exactly (see src/sim/sharded.h and DESIGN.md §11).
  const bool sharded = config_.sim_threads > 1 && fleet_size > 1 &&
                       ActiveHwValidationHooks() == nullptr;
  SimEngine single;
  ShardedSim shard(sharded ? fleet_size : 0,
                   sharded ? config_.sim_threads : 0);
  shard.SetPerturbSeed(config_.sim_perturb_seed);
  SimEngine& control = sharded ? *shard.control_engine() : single;
  auto engine_of = [&](int r) -> SimEngine* {
    return sharded ? shard.lp(r) : &single;
  };

  std::vector<Replica> replicas(static_cast<size_t>(fleet_size));

  const std::vector<TimeNs> arrivals =
      GenerateTracedArrivals(config_.arrivals, config_.envelope,
                             config_.horizon);
  std::vector<RequestRecord> records(arrivals.size());
  std::vector<int> replica_of(arrivals.size(), -1);

  // Scenario hints pre-size the event storage: the whole arrival trace is
  // scheduled up front on the control engine, and each replica keeps a
  // small bounded set of batcher/launcher/GPU events pending.
  control.Reserve(arrivals.size() + 64);
  for (int r = 0; r < fleet_size; ++r) {
    engine_of(r)->Reserve(sharded ? 256
                                  : arrivals.size() +
                                        16 * static_cast<size_t>(fleet_size));
  }

  for (int r = 0; r < fleet_size; ++r) {
    Replica& rep = replicas[static_cast<size_t>(r)];
    SimEngine* eng = engine_of(r);
    rep.gpu = std::make_unique<Gpu>(eng, config_.gpu);
    // Stream creation order fixes ids 0/1/2 fleet-wide; priorities follow
    // serve_engine.h (training main 0, ooo sub 2, inference 1).
    rep.main_stream = rep.gpu->CreateStream(/*priority=*/0);
    rep.sub_stream = rep.gpu->CreateStream(/*priority=*/2);
    rep.serve_stream = rep.gpu->CreateStream(/*priority=*/1);

    rep.batcher = std::make_unique<DynamicBatcher>(
        eng, config_.batcher, [&, r, eng](const std::vector<int64_t>& ids) {
          Replica& self = replicas[static_cast<size_t>(r)];
          const size_t batch_index = self.batches.size();
          self.batches.push_back({});
          Batch& batch = self.batches.back();
          batch.requests = ids;
          const TimeNs now = eng->now();
          for (int64_t id : ids) {
            records[static_cast<size_t>(id)].dispatch = now;
            records[static_cast<size_t>(id)].batch_size =
                static_cast<int>(ids.size());
          }
          // Graph launch: one fixed host latency, then the whole per-layer
          // kernel sequence lands on this replica's inference stream.
          eng->ScheduleAfter(
              config_.profile.graph_launch_latency, [&, r, batch_index] {
                Replica& rr = replicas[static_cast<size_t>(r)];
                Batch& b = rr.batches[batch_index];
                const std::vector<KernelCost>& costs =
                    batch_costs[b.requests.size()];
                for (size_t l = 0; l < costs.size(); ++l) {
                  KernelDesc desc;
                  desc.solo_duration = costs[l].duration;
                  desc.thread_blocks = costs[l].thread_blocks;
                  const KernelId kid =
                      rr.gpu->Enqueue(rr.serve_stream, std::move(desc));
                  if (l == 0) {
                    b.first = kid;
                  }
                  b.last = kid;
                }
                rr.last_kernel_to_batch[b.last] = batch_index;
              });
        });

    rep.gpu->AddKernelDoneListener([&, r, eng](KernelId id) {
      Replica& self = replicas[static_cast<size_t>(r)];
      const auto it = self.last_kernel_to_batch.find(id);
      if (it == self.last_kernel_to_batch.end()) {
        return;
      }
      const Batch& batch = self.batches[it->second];
      const TimeNs done = eng->now();
      const TimeNs exec_start = self.gpu->StartTime(batch.first);
      for (int64_t rid : batch.requests) {
        RequestRecord& rec = records[static_cast<size_t>(rid)];
        rec.exec_start = exec_start;
        rec.done = done;
      }
      self.batcher->OnBatchDone();
    });

    if (train_model != nullptr) {
      rep.launcher = std::make_unique<CpuLauncher>(
          eng, rep.gpu.get(), CpuLauncher::Mode::kPrecompiled,
          config_.profile.graph_launch_latency);
      rep.item_kernel.assign(plan.items.size(), -1);
      rep.launcher->Launch(
          std::vector<IssueItem>(plan.items),
          [&, r](size_t index, KernelId id) {
            replicas[static_cast<size_t>(r)].item_kernel[index] = id;
          });
    }
  }

  // Cluster control plane: autoscaler over total queued requests, router
  // over per-replica backlog estimates (queued requests plus the in-flight
  // batches' worth of work still on the device). The autoscaler's depth
  // callback reads its own routable set, so it is built through a slot the
  // lambda captures; the callback only ever fires after construction.
  std::unique_ptr<Autoscaler> autoscaler;
  autoscaler =
      std::make_unique<Autoscaler>(&control, config_.autoscaler, [&] {
        int64_t queued = 0;
        for (int r : autoscaler->routable_set()) {
          queued += replicas[static_cast<size_t>(r)].batcher->queue_depth();
        }
        return queued;
      });
  FleetRouter router(config_.router, [&](int r) {
    const DynamicBatcher& b = *replicas[static_cast<size_t>(r)].batcher;
    return static_cast<int64_t>(b.queue_depth()) +
           static_cast<int64_t>(b.inflight()) *
               static_cast<int64_t>(config_.batcher.max_batch);
  });

  for (size_t i = 0; i < arrivals.size(); ++i) {
    records[i].arrival = arrivals[i];
    control.ScheduleAt(arrivals[i], [&, i] {
      const std::vector<int>& routable = autoscaler->routable_set();
      const int r = router.Route(routable);
      replica_of[i] = r;
      replicas[static_cast<size_t>(r)].batcher->OnRequest(
          static_cast<int64_t>(i));
    });
  }
  autoscaler->Start(config_.horizon);

  if (!sharded) {
    single.Run();
  } else {
    // Conservative windowed sync: between consecutive control events the
    // replicas are mutually independent, so advance every logical process
    // to the next control event's (time, seq), then run that one control
    // event on the quiesced fleet. Its reads (router load probes,
    // autoscaler depth sampling) and synchronous calls (OnRequest dispatch)
    // observe replica state at exactly the instant the single-engine order
    // prescribes.
    TimeNs t = 0;
    uint64_t seq = 0;
    while (control.PeekNext(&t, &seq)) {
      shard.AdvanceAllTo(t, seq);
      control.Step();
    }
    shard.DrainAll();
  }

  // -- Aggregate serving metrics -------------------------------------------
  FleetMetrics metrics;
  int64_t total_batches = 0;
  metrics.replica_completed.assign(static_cast<size_t>(fleet_size), 0);
  for (int r = 0; r < fleet_size; ++r) {
    const Replica& rep = replicas[static_cast<size_t>(r)];
    for (const Batch& batch : rep.batches) {
      if (batch.last >= 0 && rep.gpu->Done(batch.last)) {
        ++total_batches;
        metrics.replica_completed[static_cast<size_t>(r)] +=
            static_cast<int64_t>(batch.requests.size());
      }
    }
  }
  metrics.serve = ComputeServeMetrics(records, total_batches, config_.horizon,
                                      config_.slo);

  // Per-replica views (a replica with no completion keeps the kNoSample
  // percentile sentinel).
  metrics.per_replica.resize(static_cast<size_t>(fleet_size));
  {
    std::vector<RequestRecord> subset;
    for (int r = 0; r < fleet_size; ++r) {
      subset.clear();
      int64_t batches_r = 0;
      for (size_t i = 0; i < records.size(); ++i) {
        if (replica_of[i] == r) {
          subset.push_back(records[i]);
        }
      }
      const Replica& rep = replicas[static_cast<size_t>(r)];
      for (const Batch& batch : rep.batches) {
        if (batch.last >= 0 && rep.gpu->Done(batch.last)) {
          ++batches_r;
        }
      }
      metrics.per_replica[static_cast<size_t>(r)] = ComputeServeMetrics(
          subset, batches_r, config_.horizon, config_.slo);
    }
  }

  // Autoscaler outcome + time-weighted routable stats over [0, horizon].
  metrics.scale_ups = autoscaler->scale_ups();
  metrics.scale_downs = autoscaler->scale_downs();
  metrics.replica_timeline = autoscaler->timeline();
  metrics.router_decisions = router.decisions();
  {
    const auto& tl = metrics.replica_timeline;
    OOBP_CHECK(!tl.empty());
    metrics.min_routable = tl[0].second;
    metrics.max_routable = tl[0].second;
    double weighted = 0.0;
    for (size_t i = 0; i < tl.size(); ++i) {
      metrics.min_routable = std::min(metrics.min_routable, tl[i].second);
      metrics.max_routable = std::max(metrics.max_routable, tl[i].second);
      const TimeNs begin = std::min(tl[i].first, config_.horizon);
      const TimeNs end = i + 1 < tl.size()
                             ? std::min(tl[i + 1].first, config_.horizon)
                             : config_.horizon;
      weighted += static_cast<double>(end - begin) *
                  static_cast<double>(tl[i].second);
    }
    metrics.mean_routable = weighted / static_cast<double>(config_.horizon);
  }

  // Load imbalance: max / mean completions over replicas that were ever
  // routable. The autoscaler's up-set is always an index prefix, so
  // max_routable identifies exactly which replicas ever served.
  {
    int64_t max_completed = 0, sum_completed = 0;
    const int ever = metrics.max_routable;
    for (int r = 0; r < ever; ++r) {
      const int64_t c = metrics.replica_completed[static_cast<size_t>(r)];
      max_completed = std::max(max_completed, c);
      sum_completed += c;
    }
    if (ever > 0 && sum_completed > 0) {
      metrics.imbalance = static_cast<double>(max_completed) * ever /
                          static_cast<double>(sum_completed);
    }
  }

  // -- Training metrics (co-run mode) --------------------------------------
  if (train_model != nullptr) {
    const int measured = train_iterations - 1;  // 1 warm-up
    TimeNs sum_iter = 0;
    TimeNs min_iter = 0, max_iter = 0;
    double sum_util = 0.0;
    const double capacity = static_cast<double>(config_.gpu.slot_capacity());
    for (int r = 0; r < fleet_size; ++r) {
      const Replica& rep = replicas[static_cast<size_t>(r)];
      const std::vector<TimeNs> iter_end = TrainIterationEndTimes(
          *rep.gpu, rep.item_kernel, plan.iter_last_item);
      const TimeNs window = iter_end[train_iterations - 1] - iter_end[0];
      const TimeNs iter = window / measured;
      sum_iter += iter;
      if (r == 0) {
        min_iter = max_iter = iter;
      } else {
        min_iter = std::min(min_iter, iter);
        max_iter = std::max(max_iter, iter);
      }
      if (window > 0) {
        sum_util += rep.gpu->SmBusyIntegral() /
                    (capacity *
                     static_cast<double>(iter_end[train_iterations - 1]));
      }
    }
    TrainMetrics& train = metrics.train;
    train.iteration_time = sum_iter / fleet_size;
    train.throughput = static_cast<double>(train_model->batch) /
                       ToSec(train.iteration_time);
    train.gpu_utilization = sum_util / fleet_size;
    const MemoryTimeline mem =
        EstimateBackpropMemory(*train_model, train_schedule->MergedOrder());
    train.peak_memory_bytes =
        static_cast<int64_t>(static_cast<double>(mem.peak_total()) *
                             config_.profile.allocator_overhead);
    train.oom = train.peak_memory_bytes > config_.gpu.mem_bytes;
    metrics.train_iter_min = min_iter;
    metrics.train_iter_max = max_iter;
  }

  return metrics;
}

}  // namespace oobp
