#include "src/serve/batcher.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace oobp {

DynamicBatcher::DynamicBatcher(SimEngine* engine, BatcherConfig config,
                               DispatchFn dispatch)
    : engine_(engine), config_(config), dispatch_(std::move(dispatch)) {
  OOBP_CHECK(engine_ != nullptr);
  OOBP_CHECK(dispatch_ != nullptr);
  OOBP_CHECK_GT(config_.max_batch, 0);
  OOBP_CHECK_GE(config_.max_queue_delay, 0);
  OOBP_CHECK_GT(config_.max_inflight, 0);
}

void DynamicBatcher::OnRequest(int64_t request_id) {
  queue_.push_back({request_id, engine_->now()});
  MaybeDispatch();
}

void DynamicBatcher::OnBatchDone() {
  OOBP_CHECK_GT(inflight_, 0);
  --inflight_;
  MaybeDispatch();
}

void DynamicBatcher::MaybeDispatch() {
  while (inflight_ < config_.max_inflight && !queue_.empty()) {
    const bool full = static_cast<int>(queue_.size()) >= config_.max_batch;
    const bool expired =
        engine_->now() - queue_.front().arrival >= config_.max_queue_delay;
    if (!full && !expired) {
      break;
    }
    const int n = std::min<int>(config_.max_batch,
                                static_cast<int>(queue_.size()));
    scratch_batch_.clear();
    for (int i = 0; i < n; ++i) {
      scratch_batch_.push_back(queue_.front().id);
      queue_.pop_front();
    }
    ++inflight_;
    dispatch_(scratch_batch_);
  }
  ArmTimer();
}

void DynamicBatcher::ArmTimer() {
  engine_->Cancel(timer_);
  timer_ = SimEngine::TimerHandle();
  if (queue_.empty() || inflight_ >= config_.max_inflight) {
    return;  // nothing waiting, or OnBatchDone will re-evaluate
  }
  const TimeNs deadline =
      std::max(engine_->now(), queue_.front().arrival + config_.max_queue_delay);
  timer_ = engine_->ScheduleAt(deadline, [this] { MaybeDispatch(); });
}

}  // namespace oobp
