#include "src/serve/router.h"

#include <utility>

#include "src/common/check.h"

namespace oobp {

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRoundRobin:
      return "rr";
    case RoutingPolicy::kLeastLoaded:
      return "ll";
    case RoutingPolicy::kPowerOfTwo:
      return "p2c";
  }
  return "?";
}

bool ParseRoutingPolicy(const std::string& name, RoutingPolicy* out) {
  if (name == "rr" || name == "round-robin") {
    *out = RoutingPolicy::kRoundRobin;
  } else if (name == "ll" || name == "least-loaded") {
    *out = RoutingPolicy::kLeastLoaded;
  } else if (name == "p2c" || name == "power-of-two") {
    *out = RoutingPolicy::kPowerOfTwo;
  } else {
    return false;
  }
  return true;
}

FleetRouter::FleetRouter(RouterConfig config, LoadFn load)
    : config_(config), load_(std::move(load)), rng_(config.seed) {
  OOBP_CHECK(load_ != nullptr);
}

int FleetRouter::Route(const std::vector<int>& routable) {
  OOBP_CHECK(!routable.empty());
  ++decisions_;
  const size_t n = routable.size();
  switch (config_.policy) {
    case RoutingPolicy::kRoundRobin:
      return routable[static_cast<size_t>(rr_cursor_++ % n)];

    case RoutingPolicy::kLeastLoaded: {
      int best = routable[0];
      int64_t best_load = load_(best);
      for (size_t i = 1; i < n; ++i) {
        const int64_t l = load_(routable[i]);
        if (l < best_load) {
          best = routable[i];
          best_load = l;
        }
      }
      return best;
    }

    case RoutingPolicy::kPowerOfTwo: {
      if (n == 1) {
        // Still consume the two draws so the decision stream (and thus the
        // whole simulation) does not depend on transient fleet size.
        rng_.NextU64();
        rng_.NextU64();
        return routable[0];
      }
      const size_t a = static_cast<size_t>(rng_.NextBelow(n));
      size_t b = static_cast<size_t>(rng_.NextBelow(n - 1));
      if (b >= a) {
        ++b;  // distinct second candidate, uniform over the rest
      }
      const int ra = routable[a];
      const int rb = routable[b];
      const int64_t la = load_(ra);
      const int64_t lb = load_(rb);
      if (la != lb) {
        return la < lb ? ra : rb;
      }
      return ra < rb ? ra : rb;  // deterministic tie-break
    }
  }
  return routable[0];
}

}  // namespace oobp
