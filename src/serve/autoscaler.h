// Queue-depth-driven fleet autoscaler.
//
// Owns the replica-state machine of the fleet: each replica in
// [0, max_replicas) is down, warming, or up, and only up replicas are
// routable. Every `evaluate_every` the autoscaler samples the fleet's total
// queued-request count (a callback supplied by the fleet engine), divides by
// the routable count, and compares against thresholds:
//
//   queued / routable > scale_up_depth   -> bring one down replica up
//   queued / routable < scale_down_depth -> take the highest routable down
//
// One step per evaluation, separated by `cooldown`, keeps the control loop
// deterministic and free of oscillation. A scale-up pays `warmup` (model
// load + CUDA graph capture on the new GPU) before the replica becomes
// routable — the router cannot dispatch to it earlier. A scale-down removes
// the replica from the routable set immediately; batches already queued on
// it keep draining (connection draining), and in the co-run fleet the GPU
// simply returns to full-rate ooo training. The routable count never drops
// below `min_replicas`.
//
// Like the router, this is pure control logic over the SimEngine clock, so
// it unit-tests against scripted and fuzzed depth sequences without a GPU.

#ifndef OOBP_SRC_SERVE_AUTOSCALER_H_
#define OOBP_SRC_SERVE_AUTOSCALER_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/sim/engine.h"

namespace oobp {

struct AutoscalerConfig {
  int min_replicas = 1;  // routable floor; scale-down never goes below
  int max_replicas = 1;  // fleet size ceiling
  // 0 = start at min_replicas; otherwise clamped into [min, max]. Initial
  // replicas are warm at t = 0 (the fleet exists before the horizon opens).
  int initial_replicas = 0;
  double scale_up_depth = 16.0;   // queued per routable replica, exclusive
  double scale_down_depth = 2.0;  // queued per routable replica, exclusive
  TimeNs evaluate_every = Ms(5);
  TimeNs cooldown = Ms(25);  // between consecutive scaling actions
  TimeNs warmup = Ms(10);    // spin-up cost before a new replica is routable
};

class Autoscaler {
 public:
  // `queued` returns the total queued-request count across routable
  // replicas at the current simulation time.
  using QueuedFn = std::function<int64_t()>;

  Autoscaler(SimEngine* engine, AutoscalerConfig config, QueuedFn queued);
  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  // Arms periodic evaluation at `evaluate_every` intervals, stopping once
  // the next tick would land past `until` (the load horizon) so the
  // simulation can drain.
  void Start(TimeNs until);

  // One control step at the current simulation time. Exposed for tests that
  // script their own evaluation times.
  void Evaluate();

  bool routable(int replica) const;
  // Ascending indices of up replicas; never empty (min_replicas >= 1).
  const std::vector<int>& routable_set() const { return routable_; }
  int num_routable() const { return static_cast<int>(routable_.size()); }
  // Up + warming: replicas whose warm-up cost has been committed.
  int target() const { return target_; }

  int scale_ups() const { return scale_ups_; }
  int scale_downs() const { return scale_downs_; }
  // (time, routable count) on every change; starts with the t = 0 entry for
  // the initial fleet. Times are non-decreasing.
  const std::vector<std::pair<TimeNs, int>>& timeline() const {
    return timeline_;
  }

  const AutoscalerConfig& config() const { return config_; }

 private:
  enum class State { kDown, kWarming, kUp };

  void BecomeUp(int replica);
  void RebuildRoutable();

  SimEngine* engine_;
  AutoscalerConfig config_;
  QueuedFn queued_;

  std::vector<State> state_;
  std::vector<SimEngine::TimerHandle> warm_timer_;
  std::vector<int> routable_;
  int target_ = 0;
  TimeNs last_action_ = 0;
  bool any_action_ = false;  // cooldown only binds after the first action
  int scale_ups_ = 0;
  int scale_downs_ = 0;
  std::vector<std::pair<TimeNs, int>> timeline_;
};

}  // namespace oobp

#endif  // OOBP_SRC_SERVE_AUTOSCALER_H_
