// Fleet-scale inference serving: a cluster-level router in front of N
// replica serving engines, each its own GPU with a dynamic batcher and —
// in co-run mode — an ooo-backprop (or in-order baseline) training job
// sharing the device, exactly as in the single-GPU ServeEngine.
//
// The whole fleet lives in ONE simulated timeline: routing decisions
// observe replica queue depths at the simulated instant a request arrives,
// the autoscaler samples fleet-wide queue depth on the same clock, and
// every replica GPU advances in lockstep. With config.sim_threads > 1 the
// fleet is sharded into one logical process per replica and advanced on a
// worker pool under conservative synchronization; the sharded execution
// replays the single-engine (time, seq) order exactly, so it is an
// implementation detail of wall-clock speed, not of results (see
// src/sim/sharded.h and DESIGN.md §11). Per-replica stream priorities are identical to
// src/serve/serve_engine.h (training main prio 0, inference prio 1, ooo
// sub stream prio 2), so the paper's co-run property — inference preempts
// reordered weight-gradient kernels in SM-slot allocation — holds on every
// replica of the fleet under cluster-level load.
//
// Scale-down semantics: a drained replica stops receiving new requests but
// its GPU keeps training at full rate — scaling serving down returns the
// device to the training job, which is the operational story of co-running
// the two workloads in the first place.
//
// Determinism: arrivals (and the diurnal envelope thinning) are materialized
// from seeded Rngs before the event loop starts; the router's
// power-of-two-choices draws come from a seeded Rng consumed in request
// order on the single-threaded clock. Identical configs produce
// byte-identical metrics under any scenario-level --jobs parallelism.

#ifndef OOBP_SRC_SERVE_FLEET_ENGINE_H_
#define OOBP_SRC_SERVE_FLEET_ENGINE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/core/schedule.h"
#include "src/hw/gpu_spec.h"
#include "src/nn/cost_model.h"
#include "src/nn/layer.h"
#include "src/runtime/metrics.h"
#include "src/serve/arrival.h"
#include "src/serve/autoscaler.h"
#include "src/serve/batcher.h"
#include "src/serve/router.h"
#include "src/serve/serve_metrics.h"

namespace oobp {

struct FleetConfig {
  GpuSpec gpu;             // every replica runs this device
  SystemProfile profile;
  ArrivalSpec arrivals;    // aggregate fleet load
  // Optional diurnal/trace rate envelope over the arrivals (see arrival.h);
  // empty = the raw Poisson/MMPP process.
  std::vector<RateSegment> envelope;
  BatcherConfig batcher;   // per replica
  RouterConfig router;
  // autoscaler.max_replicas is the fleet size; min == max pins a fixed
  // fleet (the autoscaler then never acts).
  AutoscalerConfig autoscaler;
  TimeNs horizon = Ms(200);  // arrival-generation window
  TimeNs slo = Ms(20);
  std::function<NnModel(int batch)> make_model;  // inference model per batch

  // Simulation worker threads (`--sim-threads`). 1 = the single-engine
  // reference path. > 1 shards the fleet into one logical process per
  // replica, advanced in parallel under conservative sync with the control
  // plane (arrivals/router/autoscaler) on a coordinator-owned engine; the
  // results are byte-identical to the reference path (see src/sim/sharded.h
  // and DESIGN.md §11). Ignored — the reference path runs — when a
  // validator is attached (validation hooks are thread-local) or the fleet
  // has a single replica.
  int sim_threads = 1;

  // Test-only: nonzero seeds deterministic pseudo-random sleeps into the
  // sharded worker pool, deliberately perturbing thread scheduling. Results
  // must not change (the determinism battery asserts this). No effect on
  // the reference path.
  uint64_t sim_perturb_seed = 0;
};

struct FleetMetrics {
  ServeMetrics serve;  // fleet-wide aggregate over all requests

  // Per-replica serving metrics (index == replica). A replica that never
  // completed a request reports the ServeMetrics::kNoSample percentile
  // sentinel.
  std::vector<ServeMetrics> per_replica;
  std::vector<int64_t> replica_completed;
  // max / mean completions across replicas that were ever routable; 1.0 is
  // a perfectly balanced fleet, 0.0 when nothing completed.
  double imbalance = 0.0;

  // Autoscaler outcome.
  int scale_ups = 0;
  int scale_downs = 0;
  int min_routable = 0;
  int max_routable = 0;
  double mean_routable = 0.0;  // time-weighted over [0, horizon]
  // (time, routable count) on every change; first entry is t = 0.
  std::vector<std::pair<TimeNs, int>> replica_timeline;
  int64_t router_decisions = 0;

  // Co-run only: replica-mean training metrics plus the spread across the
  // fleet (all replicas train all the time, routable or not).
  TrainMetrics train;
  TimeNs train_iter_min = 0;
  TimeNs train_iter_max = 0;
};

class FleetEngine {
 public:
  explicit FleetEngine(FleetConfig config);

  // Inference alone on every replica (no training contention).
  FleetMetrics RunServeOnly() const;

  // Every replica co-runs `train_iterations` repetitions of the training
  // schedule (>= 2: one warm-up + measured window; it should cover the
  // horizon so requests face contention throughout).
  FleetMetrics RunCorun(const NnModel& train_model,
                        const IterationSchedule& train_schedule,
                        int train_iterations) const;

  const FleetConfig& config() const { return config_; }

 private:
  FleetMetrics RunImpl(const NnModel* train_model,
                       const IterationSchedule* train_schedule,
                       int train_iterations) const;

  FleetConfig config_;
};

}  // namespace oobp

#endif  // OOBP_SRC_SERVE_FLEET_ENGINE_H_
