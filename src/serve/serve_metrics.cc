#include "src/serve/serve_metrics.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/str_util.h"

namespace oobp {

ServeMetrics ComputeServeMetrics(const std::vector<RequestRecord>& requests,
                                 int64_t num_batches, TimeNs horizon,
                                 TimeNs slo) {
  OOBP_CHECK_GT(horizon, 0);
  ServeMetrics m;
  m.num_requests = static_cast<int64_t>(requests.size());
  m.num_batches = num_batches;
  m.offered_rps = static_cast<double>(m.num_requests) / ToSec(horizon);

  std::vector<TimeNs> latencies;
  latencies.reserve(requests.size());
  int64_t within_slo = 0;
  double sum_latency = 0.0, sum_queue = 0.0, sum_exec = 0.0, sum_batch = 0.0;
  for (const RequestRecord& r : requests) {
    if (!r.completed()) {
      continue;
    }
    const TimeNs lat = r.latency();
    latencies.push_back(lat);
    if (lat <= slo) {
      ++within_slo;
    }
    sum_latency += static_cast<double>(lat);
    sum_queue += static_cast<double>(r.exec_start - r.arrival);
    sum_exec += static_cast<double>(r.done - r.exec_start);
    sum_batch += static_cast<double>(r.batch_size);
    m.batch_sizes.Add(r.batch_size);
  }
  m.num_completed = static_cast<int64_t>(latencies.size());
  m.completed_rps = static_cast<double>(m.num_completed) / ToSec(horizon);
  m.goodput_rps = static_cast<double>(within_slo) / ToSec(horizon);
  if (m.num_completed == 0) {
    // Empty window (no completion before the simulation drained — e.g. a
    // fleet replica scaled down before serving anything): leave the order
    // statistics at the kNoSample sentinel rather than sorting an empty
    // sample into a fake 0 ns latency.
    return m;
  }
  m.slo_attainment =
      static_cast<double>(within_slo) / static_cast<double>(m.num_completed);

  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&latencies](double p) {
    std::vector<double> xs(latencies.begin(), latencies.end());
    return static_cast<TimeNs>(PercentileSorted(xs, p));
  };
  m.p50_latency = pct(50.0);
  m.p95_latency = pct(95.0);
  m.p99_latency = pct(99.0);
  m.max_latency = latencies.back();
  const double n = static_cast<double>(m.num_completed);
  m.mean_latency_ms = sum_latency / n / static_cast<double>(kNsPerMs);
  m.mean_queue_delay_ms = sum_queue / n / static_cast<double>(kNsPerMs);
  m.mean_exec_ms = sum_exec / n / static_cast<double>(kNsPerMs);
  m.mean_batch_size = sum_batch / n;
  return m;
}

std::vector<MetricKv> ServeMetricsToKv(const ServeMetrics& m,
                                       const std::string& prefix) {
  // The kNoSample sentinel passes through as exactly -1 (not -1e-6 "ms") so
  // golden files and downstream tooling can test for it.
  const auto pct_ms = [](TimeNs t) {
    return t == ServeMetrics::kNoSample ? -1.0 : ToMs(t);
  };
  std::vector<MetricKv> kv = {
      {prefix + "offered_rps", m.offered_rps},
      {prefix + "completed_rps", m.completed_rps},
      {prefix + "goodput_rps", m.goodput_rps},
      {prefix + "slo_attainment", m.slo_attainment},
      {prefix + "p50_ms", pct_ms(m.p50_latency)},
      {prefix + "p95_ms", pct_ms(m.p95_latency)},
      {prefix + "p99_ms", pct_ms(m.p99_latency)},
      {prefix + "max_ms", pct_ms(m.max_latency)},
      {prefix + "mean_ms", m.mean_latency_ms},
      {prefix + "queue_delay_ms", m.mean_queue_delay_ms},
      {prefix + "exec_ms", m.mean_exec_ms},
      {prefix + "mean_batch", m.mean_batch_size},
      {prefix + "num_batches", static_cast<double>(m.num_batches)},
  };
  for (int b = 0; b <= m.batch_sizes.max_value(); ++b) {
    if (m.batch_sizes.count(b) > 0) {
      kv.push_back({prefix + StrFormat("batch_count_%d", b),
                    static_cast<double>(m.batch_sizes.count(b))});
    }
  }
  return kv;
}

}  // namespace oobp
