// Fleet-scale request router: picks a replica ServeEngine for every arriving
// inference request.
//
// The router is pure control logic, like the DynamicBatcher: it owns no
// replicas and no clock. The fleet engine hands it the currently routable
// replica set (the autoscaler's warm replicas) and a load estimator, and the
// router returns a replica index. Keeping it stateless apart from the
// round-robin cursor and the power-of-two-choices Rng makes every policy
// unit-testable against synthetic queues and byte-deterministic for a fixed
// seed — all randomness is consumed in request order on the single-threaded
// simulation clock.
//
// Policies:
//   kRoundRobin  — cycle through the routable set; oblivious to load.
//   kLeastLoaded — full scan for the minimum load estimate (join the
//                  shortest queue); ties break toward the lowest index.
//   kPowerOfTwo  — SLO-aware power-of-two-choices: sample two distinct
//                  replicas, route to the one whose estimated backlog (and
//                  thus expected queueing toward the SLO budget) is lower.
//                  O(1) per decision with most of least-loaded's tail
//                  benefit, which is why production routers use it.

#ifndef OOBP_SRC_SERVE_ROUTER_H_
#define OOBP_SRC_SERVE_ROUTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace oobp {

enum class RoutingPolicy {
  kRoundRobin,
  kLeastLoaded,
  kPowerOfTwo,
};

// Short stable names used in scenario ids and CLI params: "rr", "ll", "p2c".
const char* RoutingPolicyName(RoutingPolicy policy);

// Parses either the short name or the long form ("round-robin",
// "least-loaded", "power-of-two"). Returns false on unknown input.
bool ParseRoutingPolicy(const std::string& name, RoutingPolicy* out);

struct RouterConfig {
  RoutingPolicy policy = RoutingPolicy::kLeastLoaded;
  uint64_t seed = 1;  // power-of-two candidate draws
};

class FleetRouter {
 public:
  // Load estimate for one replica, in queued-request units (the fleet engine
  // reports batcher queue depth plus in-flight batch backlog). Lower is
  // better; only relative order matters.
  using LoadFn = std::function<int64_t(int replica)>;

  FleetRouter(RouterConfig config, LoadFn load);
  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  // Picks a replica from `routable` (ascending indices, must be non-empty).
  // The set may change between calls as the autoscaler acts; round-robin
  // keeps a monotone cursor so a membership change never resets fairness.
  int Route(const std::vector<int>& routable);

  int64_t decisions() const { return decisions_; }
  const RouterConfig& config() const { return config_; }

 private:
  RouterConfig config_;
  LoadFn load_;
  Rng rng_;
  uint64_t rr_cursor_ = 0;
  int64_t decisions_ = 0;
};

}  // namespace oobp

#endif  // OOBP_SRC_SERVE_ROUTER_H_
