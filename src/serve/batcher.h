// Dynamic request batcher for the inference-serving subsystem.
//
// Classic serving tradeoff: larger batches amortize per-kernel overheads and
// raise goodput, but waiting to fill them adds queueing delay. The batcher
// dispatches a batch when either the pending queue reaches `max_batch` or
// the oldest pending request has waited `max_queue_delay` — whichever comes
// first — and keeps at most `max_inflight` batches on the accelerator, which
// is what creates queue pressure (and thus batching) under load.
//
// The batcher is pure control logic over the SimEngine clock: it owns one
// cancellable deadline timer and calls a dispatch callback with the request
// indices to run. The serve engine owns request bookkeeping and the GPU.

#ifndef OOBP_SRC_SERVE_BATCHER_H_
#define OOBP_SRC_SERVE_BATCHER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/time.h"
#include "src/sim/engine.h"

namespace oobp {

struct BatcherConfig {
  int max_batch = 8;                 // dispatch at this many pending requests
  TimeNs max_queue_delay = Ms(2.0);  // or when the oldest waited this long
  int max_inflight = 1;              // batches concurrently on the device
};

class DynamicBatcher {
 public:
  // `dispatch(requests)` is called at simulation time with the request ids
  // (in arrival order) forming one batch; size in [1, max_batch].
  using DispatchFn = std::function<void(const std::vector<int64_t>&)>;

  DynamicBatcher(SimEngine* engine, BatcherConfig config, DispatchFn dispatch);
  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  // A request arrived now (ids must be distinct; arrival order == call order).
  void OnRequest(int64_t request_id);

  // A previously dispatched batch finished; frees its inflight slot and
  // immediately re-evaluates dispatch for queued requests.
  void OnBatchDone();

  int queue_depth() const { return static_cast<int>(queue_.size()); }
  int inflight() const { return inflight_; }

 private:
  // Dispatches while a full batch or an expired deadline allows it, then
  // re-arms the deadline timer for the new queue head (if any).
  void MaybeDispatch();
  void ArmTimer();

  SimEngine* engine_;
  BatcherConfig config_;
  DispatchFn dispatch_;

  struct Pending {
    int64_t id;
    TimeNs arrival;
  };
  std::deque<Pending> queue_;
  int inflight_ = 0;
  SimEngine::TimerHandle timer_;
  std::vector<int64_t> scratch_batch_;
};

}  // namespace oobp

#endif  // OOBP_SRC_SERVE_BATCHER_H_
