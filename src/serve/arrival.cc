#include "src/serve/arrival.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace oobp {

namespace {

// Exponential sample with the given rate (events per ns), as integer ns.
// 1 - NextDouble() is in (0, 1], so the log argument never hits zero.
TimeNs NextExp(Rng& rng, double rate_per_ns) {
  const double u = 1.0 - rng.NextDouble();
  return static_cast<TimeNs>(std::ceil(-std::log(u) / rate_per_ns));
}

}  // namespace

std::vector<TimeNs> GenerateArrivals(const ArrivalSpec& spec, TimeNs horizon) {
  OOBP_CHECK_GT(spec.rate_rps, 0.0);
  OOBP_CHECK_GT(horizon, 0);
  Rng rng(spec.seed);
  std::vector<TimeNs> arrivals;
  arrivals.reserve(
      static_cast<size_t>(spec.rate_rps * ToSec(horizon) * 1.25) + 16);

  const double mean_rate = spec.rate_rps / static_cast<double>(kNsPerSec);

  if (spec.kind == ArrivalKind::kPoisson) {
    TimeNs t = 0;
    while (true) {
      t += NextExp(rng, mean_rate);
      if (t >= horizon) {
        break;
      }
      arrivals.push_back(t);
    }
    return arrivals;
  }

  // Bursty: two-state Markov-modulated Poisson process. Solving
  //   mean = (1 - f) * quiet + f * burst,  burst = B * quiet
  // for the quiet-phase rate given overall mean rate, burst factor B and
  // time-weighted burst fraction f:
  OOBP_CHECK_GT(spec.burst_factor, 1.0);
  OOBP_CHECK_GT(spec.burst_fraction, 0.0);
  OOBP_CHECK_LT(spec.burst_fraction, 1.0);
  OOBP_CHECK_GT(spec.mean_burst_dwell, 0);
  const double f = spec.burst_fraction;
  const double quiet_rate =
      mean_rate / (1.0 - f + f * spec.burst_factor);
  const double burst_rate = spec.burst_factor * quiet_rate;
  // Phase-mass balance: f = burst_dwell / (burst_dwell + quiet_dwell).
  const double burst_dwell = static_cast<double>(spec.mean_burst_dwell);
  const double quiet_dwell = burst_dwell * (1.0 - f) / f;

  bool in_burst = false;
  TimeNs phase_end = NextExp(rng, 1.0 / quiet_dwell);
  TimeNs t = 0;
  while (true) {
    const double rate = in_burst ? burst_rate : quiet_rate;
    const TimeNs next = t + NextExp(rng, rate);
    if (next < phase_end) {
      if (next >= horizon) {
        break;
      }
      t = next;
      arrivals.push_back(t);
      continue;
    }
    // Phase switch before the candidate arrival: discard it (memorylessness
    // lets us resample from the switch point) and flip phases.
    t = phase_end;
    if (t >= horizon) {
      break;
    }
    in_burst = !in_burst;
    phase_end =
        t + NextExp(rng, 1.0 / (in_burst ? burst_dwell : quiet_dwell));
  }

  // Strictly increasing timestamps: NextExp's ceil already returns >= 1 ns
  // gaps for consecutive draws, but the phase-switch resampling path can in
  // principle repeat a timestamp; normalize defensively.
  for (size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] <= arrivals[i - 1]) {
      arrivals[i] = arrivals[i - 1] + 1;
    }
  }
  while (!arrivals.empty() && arrivals.back() >= horizon) {
    arrivals.pop_back();
  }
  return arrivals;
}

double EnvelopeFactorAt(const std::vector<RateSegment>& envelope, TimeNs t) {
  OOBP_CHECK(!envelope.empty());
  TimeNs period = 0;
  for (const RateSegment& seg : envelope) {
    OOBP_CHECK_GT(seg.duration, 0);
    OOBP_CHECK_GE(seg.rate_factor, 0.0);
    period += seg.duration;
  }
  TimeNs phase = t % period;
  if (phase < 0) {
    phase += period;
  }
  for (const RateSegment& seg : envelope) {
    if (phase < seg.duration) {
      return seg.rate_factor;
    }
    phase -= seg.duration;
  }
  return envelope.back().rate_factor;
}

std::vector<RateSegment> MakeDiurnalEnvelope(TimeNs period, double trough,
                                             double peak, int steps) {
  OOBP_CHECK_GT(period, 0);
  OOBP_CHECK_GE(trough, 0.0);
  OOBP_CHECK_GE(peak, trough);
  OOBP_CHECK_GE(steps, 1);
  std::vector<RateSegment> envelope;
  envelope.reserve(static_cast<size_t>(steps));
  const double mid = 0.5 * (trough + peak);
  const double amp = 0.5 * (peak - trough);
  TimeNs used = 0;
  for (int i = 0; i < steps; ++i) {
    RateSegment seg;
    // Last segment absorbs integer-division remainder so segments tile the
    // period exactly.
    seg.duration = i + 1 == steps ? period - used : period / steps;
    used += seg.duration;
    // Sample the sine at the segment midpoint; trough at phase 0.
    const double phase =
        2.0 * 3.14159265358979323846 * (static_cast<double>(i) + 0.5) /
        static_cast<double>(steps);
    seg.rate_factor = mid - amp * std::cos(phase);
    envelope.push_back(seg);
  }
  return envelope;
}

std::vector<TimeNs> GenerateTracedArrivals(
    const ArrivalSpec& spec, const std::vector<RateSegment>& envelope,
    TimeNs horizon) {
  if (envelope.empty()) {
    return GenerateArrivals(spec, horizon);
  }
  double peak_factor = 0.0;
  for (const RateSegment& seg : envelope) {
    peak_factor = std::max(peak_factor, seg.rate_factor);
  }
  OOBP_CHECK_GT(peak_factor, 0.0);

  ArrivalSpec base = spec;
  base.rate_rps *= peak_factor;
  const std::vector<TimeNs> candidates = GenerateArrivals(base, horizon);

  // Accept draws come from their own stream so the base trace is unchanged
  // when only the envelope differs.
  Rng accept(spec.seed ^ 0xD1B54A32D192ED03ull);
  std::vector<TimeNs> arrivals;
  arrivals.reserve(candidates.size());
  for (TimeNs t : candidates) {
    const double keep = EnvelopeFactorAt(envelope, t) / peak_factor;
    if (accept.NextDouble() < keep) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

}  // namespace oobp
