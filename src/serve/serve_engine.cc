#include "src/serve/serve_engine.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/core/memory_model.h"
#include "src/hw/cpu_launcher.h"
#include "src/hw/gpu.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/sim/engine.h"

namespace oobp {

namespace {

// Per-batch inference state: the requests it serves and its kernel span on
// the inference stream.
struct Batch {
  std::vector<int64_t> requests;
  KernelId first = -1;
  KernelId last = -1;
};

}  // namespace

ServeEngine::ServeEngine(ServeConfig config) : config_(std::move(config)) {
  OOBP_CHECK(config_.make_model != nullptr);
  OOBP_CHECK_GT(config_.horizon, 0);
  OOBP_CHECK_GT(config_.slo, 0);
}

ServeMetrics ServeEngine::RunServeOnly() const {
  return RunImpl(nullptr, nullptr, 0, nullptr);
}

ServeCorunResult ServeEngine::RunCorun(const NnModel& train_model,
                                       const IterationSchedule& train_schedule,
                                       int train_iterations) const {
  OOBP_CHECK_GE(train_iterations, 2);
  ServeCorunResult result;
  result.serve = RunImpl(&train_model, &train_schedule, train_iterations,
                         &result.train);
  return result;
}

ServeMetrics ServeEngine::RunImpl(const NnModel* train_model,
                                  const IterationSchedule* train_schedule,
                                  int train_iterations,
                                  TrainMetrics* train_out) const {
  const CostModel cost(config_.gpu, config_.profile);

  // Inference kernel costs per batch size, as if each size had its own
  // captured graph (the realistic deployment: one CUDA graph per bucket).
  const int max_batch = config_.batcher.max_batch;
  std::vector<std::vector<KernelCost>> batch_costs(max_batch + 1);
  for (int b = 1; b <= max_batch; ++b) {
    const NnModel model = config_.make_model(b);
    batch_costs[b].reserve(model.layers.size());
    for (const Layer& layer : model.layers) {
      batch_costs[b].push_back(cost.Cost(layer, TrainOpType::kForward));
    }
  }

  SimEngine engine;
  Gpu gpu(&engine, config_.gpu);
  const StreamId main_stream = gpu.CreateStream(/*priority=*/0);
  const StreamId sub_stream = gpu.CreateStream(/*priority=*/2);
  const StreamId serve_stream = gpu.CreateStream(/*priority=*/1);

  // -- Serving side -------------------------------------------------------
  const std::vector<TimeNs> arrivals =
      GenerateArrivals(config_.arrivals, config_.horizon);
  std::vector<RequestRecord> records(arrivals.size());
  // The whole trace is scheduled up front, so the heap/slab high-water mark
  // is the trace plus a bounded set of batcher/launcher/GPU events;
  // pre-sizing avoids mid-run growth reallocations (capacity only, no
  // effect on results).
  engine.Reserve(arrivals.size() + 256);

  std::vector<Batch> batches;
  std::unordered_map<KernelId, size_t> last_kernel_to_batch;
  DynamicBatcher batcher(
      &engine, config_.batcher, [&](const std::vector<int64_t>& ids) {
        const size_t batch_index = batches.size();
        batches.push_back({});
        Batch& batch = batches.back();
        batch.requests = ids;
        const TimeNs now = engine.now();
        for (int64_t id : ids) {
          records[static_cast<size_t>(id)].dispatch = now;
          records[static_cast<size_t>(id)].batch_size =
              static_cast<int>(ids.size());
        }
        // Graph launch: one fixed host latency, then the whole per-layer
        // kernel sequence lands on the inference stream at once.
        engine.ScheduleAfter(config_.profile.graph_launch_latency,
                             [&, batch_index, serve_stream] {
                               Batch& b = batches[batch_index];
                               const std::vector<KernelCost>& costs =
                                   batch_costs[b.requests.size()];
                               for (size_t l = 0; l < costs.size(); ++l) {
                                 KernelDesc desc;
                                 desc.solo_duration = costs[l].duration;
                                 desc.thread_blocks = costs[l].thread_blocks;
                                 const KernelId kid =
                                     gpu.Enqueue(serve_stream, std::move(desc));
                                 if (l == 0) {
                                   b.first = kid;
                                 }
                                 b.last = kid;
                               }
                               last_kernel_to_batch[b.last] = batch_index;
                             });
      });

  gpu.AddKernelDoneListener([&](KernelId id) {
    const auto it = last_kernel_to_batch.find(id);
    if (it == last_kernel_to_batch.end()) {
      return;
    }
    const Batch& batch = batches[it->second];
    const TimeNs done = engine.now();
    const TimeNs exec_start = gpu.StartTime(batch.first);
    for (int64_t rid : batch.requests) {
      RequestRecord& r = records[static_cast<size_t>(rid)];
      r.exec_start = exec_start;
      r.done = done;
    }
    batcher.OnBatchDone();
  });

  for (size_t i = 0; i < arrivals.size(); ++i) {
    records[i].arrival = arrivals[i];
    engine.ScheduleAt(arrivals[i], [&batcher, i] {
      batcher.OnRequest(static_cast<int64_t>(i));
    });
  }

  // -- Training side (optional co-run) ------------------------------------
  CpuLauncher launcher(&engine, &gpu, CpuLauncher::Mode::kPrecompiled,
                       config_.profile.graph_launch_latency);
  TrainIssuePlan plan;
  std::vector<KernelId> item_kernel;
  if (train_model != nullptr) {
    plan = BuildTrainIssuePlan(*train_model, *train_schedule, cost,
                               train_iterations, main_stream, sub_stream,
                               /*label_items=*/false);
    item_kernel.assign(plan.items.size(), -1);
    launcher.Launch(std::move(plan.items),
                    [&](size_t index, KernelId id) { item_kernel[index] = id; });
  }

  engine.Run();

  if (train_model != nullptr) {
    OOBP_CHECK(train_out != nullptr);
    const std::vector<TimeNs> iter_end =
        TrainIterationEndTimes(gpu, item_kernel, plan.iter_last_item);
    TrainMetrics& train = *train_out;
    const int measured = train_iterations - 1;  // 1 warm-up
    const TimeNs window = iter_end[train_iterations - 1] - iter_end[0];
    train.iteration_time = window / measured;
    train.throughput = static_cast<double>(train_model->batch) /
                       ToSec(train.iteration_time);
    const double capacity = static_cast<double>(config_.gpu.slot_capacity());
    if (window > 0) {
      // Device-wide utilization over the training window (includes the
      // inference kernels sharing the device — that is the point).
      train.gpu_utilization =
          gpu.SmBusyIntegral() /
          (capacity * static_cast<double>(iter_end[train_iterations - 1]));
    }
    const MemoryTimeline mem =
        EstimateBackpropMemory(*train_model, train_schedule->MergedOrder());
    train.peak_memory_bytes =
        static_cast<int64_t>(static_cast<double>(mem.peak_total()) *
                             config_.profile.allocator_overhead);
    train.oom = train.peak_memory_bytes > config_.gpu.mem_bytes;
  }

  int64_t completed_batches = 0;
  for (const Batch& batch : batches) {
    if (batch.last >= 0 && gpu.Done(batch.last)) {
      ++completed_batches;
    }
  }
  return ComputeServeMetrics(records, completed_batches, config_.horizon,
                             config_.slo);
}

}  // namespace oobp
