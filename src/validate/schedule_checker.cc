#include "src/validate/schedule_checker.h"

#include <algorithm>

#include "src/common/str_util.h"

namespace oobp {

namespace {

const char* OpName(TrainOpType type) { return TrainOpTypeName(type); }

// Records the position of each (type, layer) op; duplicates are errors.
struct OpPositions {
  std::vector<int> fwd, dgrad, wgrad, update;

  explicit OpPositions(int num_layers)
      : fwd(num_layers, -1),
        dgrad(num_layers, -1),
        wgrad(num_layers, -1),
        update(num_layers, -1) {}

  std::vector<int>* Slot(TrainOpType type) {
    switch (type) {
      case TrainOpType::kForward:
        return &fwd;
      case TrainOpType::kOutputGrad:
        return &dgrad;
      case TrainOpType::kWeightGrad:
        return &wgrad;
      case TrainOpType::kWeightUpdate:
        return &update;
    }
    return nullptr;
  }
};

}  // namespace

std::string ScheduleCheckReport::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out = StrFormat("%zu error(s)", errors.size());
  for (const std::string& e : errors) {
    out += "\n  ";
    out += e;
  }
  return out;
}

ScheduleCheckReport CheckIterationSchedule(const TrainGraph& graph,
                                           const IterationSchedule& schedule) {
  ScheduleCheckReport report;
  auto fail = [&report](std::string msg) {
    report.errors.push_back(std::move(msg));
  };
  const int L = graph.num_layers();
  OpPositions pos(L);

  for (size_t p = 0; p < schedule.ops.size(); ++p) {
    const ScheduledOp& s = schedule.ops[p];
    const int i = s.op.layer;
    if (i < 0 || i >= L) {
      fail(StrFormat("op %zu: layer %d out of range [0, %d)", p, i, L));
      continue;
    }
    if ((s.op.type == TrainOpType::kWeightGrad ||
         s.op.type == TrainOpType::kWeightUpdate) &&
        !graph.HasWgrad(i)) {
      fail(StrFormat("op %zu: %s[%d] for a layer without parameters", p,
                     OpName(s.op.type), i));
      continue;
    }
    int& slot = (*pos.Slot(s.op.type))[static_cast<size_t>(i)];
    if (slot >= 0) {
      fail(StrFormat("op %zu: duplicate %s[%d] (first at %d)", p,
                     OpName(s.op.type), i, slot));
      continue;
    }
    slot = static_cast<int>(p);

    const int w = s.wait_for_index;
    if (w != -1) {
      if (w < 0 || w >= static_cast<int>(p)) {
        fail(StrFormat("op %zu: wait_for_index %d does not point backwards",
                       p, w));
      } else if (schedule.ops[static_cast<size_t>(w)].stream != kMainStream) {
        fail(StrFormat("op %zu: wait_for_index %d targets a non-main-stream "
                       "op", p, w));
      }
    }
  }

  // Permutation: exactly the conventional iteration's op multiset.
  for (int i = 0; i < L; ++i) {
    if (pos.fwd[i] < 0) {
      fail(StrFormat("missing fwd[%d]", i));
    }
    if (pos.dgrad[i] < 0) {
      fail(StrFormat("missing dO[%d]", i));
    }
    if (graph.HasWgrad(i)) {
      if (pos.wgrad[i] < 0) {
        fail(StrFormat("missing dW[%d]", i));
      }
      if (pos.update[i] < 0) {
        fail(StrFormat("missing U[%d]", i));
      }
    }
  }
  if (!report.ok()) {
    return report;  // ordering checks assume every position is known
  }

  // dO strictly descending, F strictly ascending, all dO before all F.
  for (int i = 0; i + 1 < L; ++i) {
    if (pos.dgrad[i] < pos.dgrad[i + 1]) {
      fail(StrFormat("dO[%d] at %d precedes dO[%d] at %d (must be "
                     "descending)", i, pos.dgrad[i], i + 1, pos.dgrad[i + 1]));
    }
    if (pos.fwd[i] > pos.fwd[i + 1]) {
      fail(StrFormat("fwd[%d] at %d follows fwd[%d] at %d (must be "
                     "ascending)", i, pos.fwd[i], i + 1, pos.fwd[i + 1]));
    }
  }
  if (L > 0 && pos.dgrad[0] > pos.fwd[0]) {
    fail(StrFormat("dO[0] at %d follows fwd[0] at %d (backprop must precede "
                   "the next forward pass)", pos.dgrad[0], pos.fwd[0]));
  }

  for (int i = 0; i < L; ++i) {
    if (!graph.HasWgrad(i)) {
      continue;
    }
    if (i + 1 < L && pos.wgrad[i] < pos.dgrad[i + 1]) {
      fail(StrFormat("dW[%d] at %d precedes its producer dO[%d] at %d", i,
                     pos.wgrad[i], i + 1, pos.dgrad[i + 1]));
    }
    if (pos.update[i] < pos.wgrad[i]) {
      fail(StrFormat("U[%d] at %d precedes dW[%d] at %d", i, pos.update[i],
                     i, pos.wgrad[i]));
    }
    if (pos.update[i] > pos.fwd[i]) {
      fail(StrFormat("U[%d] at %d follows fwd[%d] at %d (the forward pass "
                     "needs the updated weights)", i, pos.update[i], i,
                     pos.fwd[i]));
    }
  }

  // Cross-check against the graph's own order validator.
  std::vector<TrainOp> grads;
  for (const ScheduledOp& s : schedule.ops) {
    if (s.op.type == TrainOpType::kOutputGrad ||
        s.op.type == TrainOpType::kWeightGrad) {
      grads.push_back(s.op);
    }
  }
  if (!graph.ValidateBackpropOrder(grads)) {
    fail("TrainGraph::ValidateBackpropOrder rejected the backprop "
         "subsequence");
  }
  return report;
}

ScheduleCheckReport CheckMemoryTimeline(const NnModel& model,
                                        const std::vector<TrainOp>& order,
                                        const MemoryTimeline& timeline) {
  ScheduleCheckReport report;
  auto fail = [&report](std::string msg) {
    report.errors.push_back(std::move(msg));
  };
  const int L = model.num_layers();
  const int n = static_cast<int>(order.size());

  // Positions of the backprop ops (the only alloc/free points).
  std::vector<int> pos_do(L, -1), pos_dw(L, -1);
  for (int p = 0; p < n; ++p) {
    const TrainOp& op = order[static_cast<size_t>(p)];
    if (op.layer < 0 || op.layer >= L) {
      fail(StrFormat("op %d: layer %d out of range", p, op.layer));
      return report;
    }
    std::vector<int>* slot = nullptr;
    if (op.type == TrainOpType::kOutputGrad) {
      slot = &pos_do;
    } else if (op.type == TrainOpType::kWeightGrad) {
      slot = &pos_dw;
    } else {
      continue;
    }
    if ((*slot)[static_cast<size_t>(op.layer)] >= 0) {
      fail(StrFormat("op %d: duplicate %s[%d]", p, OpName(op.type), op.layer));
      return report;
    }
    (*slot)[static_cast<size_t>(op.layer)] = p;
  }

  // Liveness intervals, independently of the model's incremental walk. A
  // tensor allocated at position a and freed at position f occupies memory
  // during ops a..f inclusive (the freeing op still reads it) and in the
  // after-state of ops a..f-1. Pre-existing tensors have a = 0; never-freed
  // tensors have f = n.
  struct Interval {
    int alloc = 0;
    int free = 0;
    int64_t bytes = 0;
  };
  std::vector<Interval> tensors;
  auto add = [&tensors](int alloc, int free, int64_t bytes) {
    if (bytes > 0) {
      tensors.push_back({alloc, free, bytes});
    }
  };
  const auto at_or_end = [n](int p) { return p >= 0 ? p : n; };

  int64_t initial = 0;
  for (int j = 0; j < L; ++j) {
    const Layer& layer = model.layers[static_cast<size_t>(j)];
    // Activation output: live from the start; layer j+1's dW (or dO, for a
    // parameter-free successor) is the last consumer. The top layer's output
    // feeds only the loss, so its own dO releases it.
    int free = n;
    if (j + 1 < L) {
      free = model.layers[static_cast<size_t>(j + 1)].has_params()
                 ? at_or_end(pos_dw[static_cast<size_t>(j + 1)])
                 : at_or_end(pos_do[static_cast<size_t>(j + 1)]);
    } else {
      free = at_or_end(pos_do[static_cast<size_t>(j)]);
    }
    add(0, free, layer.output_bytes);
    initial += layer.output_bytes;

    // Stashed internal activations: live until the layer's dO.
    add(0, at_or_end(pos_do[static_cast<size_t>(j)]), layer.stash_bytes);
    initial += layer.stash_bytes;

    // Gradient flowing into layer j (size of its output): the loss gradient
    // pre-exists, lower gradients appear when dO_{j+1} produces them; freed
    // once both dO_j and (if the layer has weights) dW_j consumed it.
    const bool preexists = j + 1 >= L;  // only the loss gradient
    const int alloc =
        preexists ? 0 : at_or_end(pos_do[static_cast<size_t>(j + 1)]);
    int last_use = at_or_end(pos_do[static_cast<size_t>(j)]);
    if (layer.has_params()) {
      last_use = std::max(last_use, at_or_end(pos_dw[static_cast<size_t>(j)]));
    }
    add(alloc, last_use, layer.output_bytes);
    if (preexists) {
      initial += layer.output_bytes;
    }
  }

  int64_t base = 0;
  for (const Layer& layer : model.layers) {
    base += 3 * layer.param_bytes;
  }

  int64_t peak = initial;
  std::vector<int64_t> during(static_cast<size_t>(n), 0);
  std::vector<int64_t> after(static_cast<size_t>(n), 0);
  for (const Interval& t : tensors) {
    for (int p = t.alloc; p <= t.free && p < n; ++p) {
      during[static_cast<size_t>(p)] += t.bytes;
      if (p < t.free) {
        after[static_cast<size_t>(p)] += t.bytes;
      }
    }
  }
  for (int p = 0; p < n; ++p) {
    const TrainOp& op = order[static_cast<size_t>(p)];
    if (op.type == TrainOpType::kOutputGrad ||
        op.type == TrainOpType::kWeightGrad) {
      during[static_cast<size_t>(p)] +=
          model.layers[static_cast<size_t>(op.layer)].workspace_bytes;
      peak = std::max(peak, during[static_cast<size_t>(p)]);
    }
  }

  // Exact comparison: the reference and the model use the same integer
  // arithmetic, so any difference is a real disagreement.
  if (timeline.initial != initial) {
    fail(StrFormat("initial: model %lld, reference %lld",
                   static_cast<long long>(timeline.initial),
                   static_cast<long long>(initial)));
  }
  if (timeline.base != base) {
    fail(StrFormat("base: model %lld, reference %lld",
                   static_cast<long long>(timeline.base),
                   static_cast<long long>(base)));
  }
  if (timeline.peak != peak) {
    fail(StrFormat("peak: model %lld, reference %lld",
                   static_cast<long long>(timeline.peak),
                   static_cast<long long>(peak)));
  }
  if (static_cast<int>(timeline.usage_during.size()) != n ||
      static_cast<int>(timeline.usage_after.size()) != n) {
    fail(StrFormat("timeline length: model %zu/%zu, reference %d",
                   timeline.usage_during.size(), timeline.usage_after.size(),
                   n));
    return report;
  }
  for (int p = 0; p < n; ++p) {
    if (timeline.usage_during[static_cast<size_t>(p)] !=
        during[static_cast<size_t>(p)]) {
      fail(StrFormat("usage_during[%d] (%s[%d]): model %lld, reference %lld",
                     p, OpName(order[static_cast<size_t>(p)].type),
                     order[static_cast<size_t>(p)].layer,
                     static_cast<long long>(
                         timeline.usage_during[static_cast<size_t>(p)]),
                     static_cast<long long>(during[static_cast<size_t>(p)])));
    }
    if (timeline.usage_after[static_cast<size_t>(p)] !=
        after[static_cast<size_t>(p)]) {
      fail(StrFormat("usage_after[%d] (%s[%d]): model %lld, reference %lld",
                     p, OpName(order[static_cast<size_t>(p)].type),
                     order[static_cast<size_t>(p)].layer,
                     static_cast<long long>(
                         timeline.usage_after[static_cast<size_t>(p)]),
                     static_cast<long long>(after[static_cast<size_t>(p)])));
    }
    if (static_cast<int>(report.errors.size()) > 16) {
      fail("... further timeline mismatches suppressed");
      break;
    }
  }
  return report;
}

}  // namespace oobp
