// Simulation invariant validator.
//
// Attaches to every Gpu and Link a scenario constructs (through the
// thread-local hooks in src/hw/validation_hooks.h) and checks, at each
// simulation event, that the timeline the simulator produces is physically
// and semantically possible on real hardware:
//
//   * time monotonicity       — observed event timestamps never decrease
//                               per device;
//   * stream FIFO             — kernels of one stream start and finish in
//                               enqueue order (CUDA stream semantics);
//   * happens-before          — a kernel starts only after every declared
//                               dependency finished (cudaStreamWaitEvent),
//                               and no earlier than its enqueue time plus
//                               the per-kernel SM setup gap;
//   * occupancy               — the fluid processor's total allocated SM
//                               slot rate never exceeds device capacity, and
//                               the busy integral never exceeds capacity x
//                               elapsed time;
//   * duration floor          — a kernel's span is never shorter than its
//                               solo duration (contention only slows);
//   * link conservation       — a transfer takes at least latency +
//                               bytes/bandwidth, and the link never moves
//                               more bytes than bandwidth x elapsed allows.
//
// The validator is an observer: it never mutates simulation state, so a
// validated run produces byte-identical results to an unvalidated one.
// Violations are collected (not fatal) so a fuzzer can report all failures
// of a seed at once.

#ifndef OOBP_SRC_VALIDATE_SIM_VALIDATOR_H_
#define OOBP_SRC_VALIDATE_SIM_VALIDATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/hw/gpu.h"
#include "src/hw/link.h"
#include "src/hw/validation_hooks.h"

namespace oobp {

class SimValidator : public HwValidationHooks,
                     public GpuObserver,
                     public LinkObserver {
 public:
  SimValidator() = default;
  SimValidator(const SimValidator&) = delete;
  SimValidator& operator=(const SimValidator&) = delete;

  // HwValidationHooks — devices created while this validator is installed.
  void OnGpuCreated(Gpu* gpu) override;
  void OnLinkCreated(Link* link) override;

  // GpuObserver.
  void OnKernelEnqueued(const Gpu& gpu, KernelId id, const KernelId* deps,
                        size_t num_deps) override;
  void OnKernelStarted(const Gpu& gpu, KernelId id) override;
  void OnKernelFinished(const Gpu& gpu, KernelId id) override;
  void OnGpuDestroyed(const Gpu& gpu) override;

  // LinkObserver.
  void OnTransferSubmitted(const Link& link, int64_t id, int64_t bytes,
                           int priority) override;
  void OnTransferCompleted(const Link& link, int64_t id) override;
  void OnLinkDestroyed(const Link& link) override;

  bool ok() const { return total_violations_ == 0; }
  // First violations, capped (see kMaxStoredViolations); total_violations()
  // counts all of them.
  const std::vector<std::string>& violations() const { return violations_; }
  int64_t total_violations() const { return total_violations_; }
  std::string Summary() const;

  // Coverage counters: a passing validation run over zero events proves
  // nothing, so tests assert these too.
  int64_t gpus_observed() const { return gpus_observed_; }
  int64_t links_observed() const { return links_observed_; }
  int64_t kernels_finished() const { return kernels_finished_; }
  int64_t transfers_completed() const { return transfers_completed_; }

 private:
  static constexpr int kMaxStoredViolations = 64;

  struct KernelRecord {
    TimeNs enqueue = -1;
    TimeNs start = -1;
    TimeNs done = -1;
    StreamId stream = 0;
    TimeNs solo_duration = 0;
    std::vector<KernelId> deps;
  };
  struct StreamState {
    std::vector<KernelId> order;  // enqueue order
    size_t next_start = 0;        // frontier into `order`
    size_t next_finish = 0;
  };
  struct GpuState {
    std::vector<KernelRecord> kernels;
    std::vector<StreamState> streams;
    TimeNs last_event = 0;
    double capacity = 0.0;
    TimeNs exec_overhead = 0;
  };
  struct TransferRecord {
    TimeNs submit = -1;
    int64_t bytes = 0;
    bool done = false;
  };
  struct LinkState {
    std::map<int64_t, TransferRecord> transfers;
    TimeNs first_submit = -1;
    int64_t completed_bytes = 0;
    TimeNs last_event = 0;
  };

  void AddViolation(std::string message);
  // Shared per-event checks: device-local time monotonicity and the
  // occupancy-at-this-instant bound.
  GpuState* CommonGpuChecks(const Gpu& gpu, const char* event);
  LinkState* CommonLinkChecks(const Link& link, const char* event);

  std::map<const Gpu*, GpuState> gpus_;
  std::map<const Link*, LinkState> links_;
  std::vector<std::string> violations_;
  int64_t total_violations_ = 0;
  int64_t gpus_observed_ = 0;
  int64_t links_observed_ = 0;
  int64_t kernels_finished_ = 0;
  int64_t transfers_completed_ = 0;
};

// RAII installation of a validator as the calling thread's active hooks;
// restores the previous hooks on destruction. Devices constructed inside the
// scope are validated; the scope must outlive them (engines destroy their
// devices before returning, so wrapping an engine Run() call is safe).
class ValidationScope {
 public:
  explicit ValidationScope(SimValidator* validator)
      : prev_(SetHwValidationHooks(validator)) {}
  ~ValidationScope() { SetHwValidationHooks(prev_); }
  ValidationScope(const ValidationScope&) = delete;
  ValidationScope& operator=(const ValidationScope&) = delete;

 private:
  HwValidationHooks* prev_;
};

}  // namespace oobp

#endif  // OOBP_SRC_VALIDATE_SIM_VALIDATOR_H_
