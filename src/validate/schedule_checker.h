// Schedule equivalence and memory-timeline checking.
//
// The core correctness claim of out-of-order backprop (Algorithm 1) is that
// a reordered schedule is a *dependency-preserving permutation* of the
// conventional iteration: the same op multiset, with every true data
// dependency of training still respected. CheckIterationSchedule proves this
// for a concrete IterationSchedule, independently of the scheduler that
// produced it.
//
// CheckMemoryTimeline recomputes the activation-memory timeline of a
// backprop order from first principles (per-tensor liveness intervals) and
// compares it against an EstimateBackpropMemory result, so the scheduler's
// memory-cap decisions rest on an independently verified model.

#ifndef OOBP_SRC_VALIDATE_SCHEDULE_CHECKER_H_
#define OOBP_SRC_VALIDATE_SCHEDULE_CHECKER_H_

#include <string>
#include <vector>

#include "src/core/memory_model.h"
#include "src/core/schedule.h"
#include "src/nn/train_graph.h"

namespace oobp {

struct ScheduleCheckReport {
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
  std::string ToString() const;
};

// Verifies that `schedule` is a valid reordering of one training iteration
// of `graph`:
//   * its op multiset equals ConventionalIteration's (permutation);
//   * dO ops appear in descending layer order, F ops in ascending order,
//     and every dO precedes every F (backprop before the next forward);
//   * dW_i appears after its producer dO_{i+1} (i < L-1);
//   * U_i appears after dW_i and before F_i (the engine's F_i -> U_i
//     dependency is positional, so issue order must respect it);
//   * every wait_for_index points backwards at a main-stream op.
ScheduleCheckReport CheckIterationSchedule(const TrainGraph& graph,
                                           const IterationSchedule& schedule);

// Recomputes the memory timeline of `order` (a full-iteration merged order;
// non-backprop ops participate with their current live set) using interval
// liveness and compares every field of `timeline` exactly.
ScheduleCheckReport CheckMemoryTimeline(const NnModel& model,
                                        const std::vector<TrainOp>& order,
                                        const MemoryTimeline& timeline);

}  // namespace oobp

#endif  // OOBP_SRC_VALIDATE_SCHEDULE_CHECKER_H_
