#include "src/validate/sim_validator.h"

#include <cmath>
#include <utility>

#include "src/common/str_util.h"

namespace oobp {

namespace {
// Slack for floating-point rate sums; capacities are integers in the
// hundreds-to-thousands range, so absolute 1e-6 is far below half an ulp of
// any legal sum.
constexpr double kRateEpsilon = 1e-6;
}  // namespace

void SimValidator::AddViolation(std::string message) {
  ++total_violations_;
  if (static_cast<int>(violations_.size()) < kMaxStoredViolations) {
    violations_.push_back(std::move(message));
  }
}

std::string SimValidator::Summary() const {
  std::string out = StrFormat(
      "%lld violation(s) across %lld gpu(s), %lld link(s), "
      "%lld kernel(s), %lld transfer(s)",
      static_cast<long long>(total_violations_),
      static_cast<long long>(gpus_observed_),
      static_cast<long long>(links_observed_),
      static_cast<long long>(kernels_finished_),
      static_cast<long long>(transfers_completed_));
  for (const std::string& v : violations_) {
    out += "\n  ";
    out += v;
  }
  return out;
}

void SimValidator::OnGpuCreated(Gpu* gpu) {
  gpu->SetObserver(this);
  GpuState& state = gpus_[gpu];
  state.capacity = static_cast<double>(gpu->spec().slot_capacity());
  state.exec_overhead = gpu->spec().kernel_exec_overhead;
  state.last_event = gpu->engine().now();
  ++gpus_observed_;
}

void SimValidator::OnLinkCreated(Link* link) {
  link->SetObserver(this);
  LinkState& state = links_[link];
  state.last_event = link->engine().now();
  ++links_observed_;
}

SimValidator::GpuState* SimValidator::CommonGpuChecks(const Gpu& gpu,
                                                      const char* event) {
  auto it = gpus_.find(&gpu);
  if (it == gpus_.end()) {
    AddViolation(StrFormat("gpu %s: %s from an unregistered device",
                           gpu.spec().name.c_str(), event));
    return nullptr;
  }
  GpuState& state = it->second;
  const TimeNs now = gpu.engine().now();
  if (now < state.last_event) {
    AddViolation(StrFormat("gpu %s: %s at t=%lld before t=%lld (time moved "
                           "backwards)",
                           gpu.spec().name.c_str(), event,
                           static_cast<long long>(now),
                           static_cast<long long>(state.last_event)));
  }
  state.last_event = now;
  const double allocated = gpu.slots().allocated_rate();
  if (allocated > state.capacity + kRateEpsilon) {
    AddViolation(StrFormat("gpu %s: %s at t=%lld allocated SM rate %.9f "
                           "exceeds capacity %.0f",
                           gpu.spec().name.c_str(), event,
                           static_cast<long long>(now), allocated,
                           state.capacity));
  }
  return &state;
}

void SimValidator::OnKernelEnqueued(const Gpu& gpu, KernelId id,
                                    const KernelId* deps, size_t num_deps) {
  GpuState* state = CommonGpuChecks(gpu, "enqueue");
  if (state == nullptr) {
    return;
  }
  if (id != static_cast<KernelId>(state->kernels.size())) {
    AddViolation(StrFormat("gpu %s: kernel ids not dense (got %lld, expected "
                           "%zu)",
                           gpu.spec().name.c_str(),
                           static_cast<long long>(id), state->kernels.size()));
    return;
  }
  KernelRecord rec;
  rec.enqueue = gpu.engine().now();
  rec.stream = gpu.KernelStream(id);
  rec.solo_duration = gpu.KernelDescOf(id).solo_duration;
  for (size_t d = 0; d < num_deps; ++d) {
    if (deps[d] < 0 || deps[d] >= id) {
      AddViolation(StrFormat("gpu %s: kernel %lld depends on %lld, which is "
                             "not an earlier kernel",
                             gpu.spec().name.c_str(),
                             static_cast<long long>(id),
                             static_cast<long long>(deps[d])));
      continue;
    }
    rec.deps.push_back(deps[d]);
  }
  if (rec.stream >= 0) {
    if (static_cast<size_t>(rec.stream) >= state->streams.size()) {
      state->streams.resize(static_cast<size_t>(rec.stream) + 1);
    }
    state->streams[static_cast<size_t>(rec.stream)].order.push_back(id);
  }
  state->kernels.push_back(std::move(rec));
}

void SimValidator::OnKernelStarted(const Gpu& gpu, KernelId id) {
  GpuState* state = CommonGpuChecks(gpu, "kernel start");
  if (state == nullptr ||
      id < 0 || id >= static_cast<KernelId>(state->kernels.size())) {
    return;
  }
  const char* name = gpu.spec().name.c_str();
  KernelRecord& rec = state->kernels[static_cast<size_t>(id)];
  const TimeNs now = gpu.engine().now();
  if (rec.start >= 0) {
    AddViolation(StrFormat("gpu %s: kernel %lld started twice", name,
                           static_cast<long long>(id)));
    return;
  }
  rec.start = now;
  if (now < rec.enqueue + state->exec_overhead) {
    AddViolation(StrFormat("gpu %s: kernel %lld started at t=%lld, before "
                           "enqueue t=%lld + setup overhead %lld",
                           name, static_cast<long long>(id),
                           static_cast<long long>(now),
                           static_cast<long long>(rec.enqueue),
                           static_cast<long long>(state->exec_overhead)));
  }
  // Happens-before: every declared dependency finished no later than this
  // kernel's execution start.
  for (KernelId dep : rec.deps) {
    const KernelRecord& d = state->kernels[static_cast<size_t>(dep)];
    if (d.done < 0 || d.done > now) {
      AddViolation(StrFormat("gpu %s: kernel %lld started at t=%lld but "
                             "dependency %lld %s",
                             name, static_cast<long long>(id),
                             static_cast<long long>(now),
                             static_cast<long long>(dep),
                             d.done < 0 ? "has not finished"
                                        : "finished after the start"));
    }
  }
  // Streams start their kernels strictly in enqueue order.
  StreamState& stream = state->streams[static_cast<size_t>(rec.stream)];
  if (stream.next_start >= stream.order.size() ||
      stream.order[stream.next_start] != id) {
    AddViolation(StrFormat("gpu %s: kernel %lld started out of stream %d's "
                           "enqueue order",
                           name, static_cast<long long>(id), rec.stream));
  } else {
    ++stream.next_start;
  }
}

void SimValidator::OnKernelFinished(const Gpu& gpu, KernelId id) {
  GpuState* state = CommonGpuChecks(gpu, "kernel finish");
  if (state == nullptr ||
      id < 0 || id >= static_cast<KernelId>(state->kernels.size())) {
    return;
  }
  const char* name = gpu.spec().name.c_str();
  KernelRecord& rec = state->kernels[static_cast<size_t>(id)];
  const TimeNs now = gpu.engine().now();
  if (rec.done >= 0) {
    AddViolation(StrFormat("gpu %s: kernel %lld finished twice", name,
                           static_cast<long long>(id)));
    return;
  }
  rec.done = now;
  ++kernels_finished_;
  if (rec.start < 0) {
    AddViolation(StrFormat("gpu %s: kernel %lld finished without starting",
                           name, static_cast<long long>(id)));
    return;
  }
  // Contention can only stretch a kernel: its span is never shorter than its
  // solo duration. The fluid processor's integer-ns wake-ups can shave at
  // most 1 ns off the ideal span, hence the -1.
  if (now - rec.start < rec.solo_duration - 1) {
    AddViolation(StrFormat("gpu %s: kernel %lld ran %lld ns, shorter than "
                           "its solo duration %lld ns",
                           name, static_cast<long long>(id),
                           static_cast<long long>(now - rec.start),
                           static_cast<long long>(rec.solo_duration)));
  }
  // Streams complete their kernels strictly in enqueue order.
  StreamState& stream = state->streams[static_cast<size_t>(rec.stream)];
  if (stream.next_finish >= stream.order.size() ||
      stream.order[stream.next_finish] != id) {
    AddViolation(StrFormat("gpu %s: kernel %lld finished out of stream %d's "
                           "enqueue order",
                           name, static_cast<long long>(id), rec.stream));
  } else {
    ++stream.next_finish;
  }
}

void SimValidator::OnGpuDestroyed(const Gpu& gpu) {
  auto it = gpus_.find(&gpu);
  if (it == gpus_.end()) {
    return;
  }
  const GpuState& state = it->second;
  const TimeNs now = gpu.engine().now();
  // Capacity conservation over the whole run: the busy integral cannot
  // exceed capacity x elapsed time (relative slack for the float sum).
  const double bound = state.capacity * static_cast<double>(now);
  const double busy = gpu.SmBusyIntegral();
  if (busy > bound * (1.0 + 1e-9) + kRateEpsilon) {
    AddViolation(StrFormat("gpu %s: SM busy integral %.3f exceeds capacity x "
                           "elapsed = %.3f",
                           gpu.spec().name.c_str(), busy, bound));
  }
  // Scenario loops destroy and recreate devices; drop the state so a reused
  // address starts fresh.
  gpus_.erase(it);
}

void SimValidator::OnTransferSubmitted(const Link& link, int64_t id,
                                       int64_t bytes, int priority) {
  (void)priority;
  LinkState* state = CommonLinkChecks(link, "transfer submit");
  if (state == nullptr) {
    return;
  }
  const TimeNs now = link.engine().now();
  TransferRecord rec;
  rec.submit = now;
  rec.bytes = bytes;
  if (bytes <= 0) {
    AddViolation(StrFormat("link %s: transfer %lld submitted with %lld bytes",
                           link.spec().name.c_str(),
                           static_cast<long long>(id),
                           static_cast<long long>(bytes)));
  }
  if (state->first_submit < 0) {
    state->first_submit = now;
  }
  if (!state->transfers.emplace(id, rec).second) {
    AddViolation(StrFormat("link %s: transfer id %lld reused",
                           link.spec().name.c_str(),
                           static_cast<long long>(id)));
  }
}

void SimValidator::OnTransferCompleted(const Link& link, int64_t id) {
  LinkState* state = CommonLinkChecks(link, "transfer complete");
  if (state == nullptr) {
    return;
  }
  const char* name = link.spec().name.c_str();
  auto it = state->transfers.find(id);
  if (it == state->transfers.end()) {
    AddViolation(StrFormat("link %s: unknown transfer %lld completed", name,
                           static_cast<long long>(id)));
    return;
  }
  TransferRecord& rec = it->second;
  if (rec.done) {
    AddViolation(StrFormat("link %s: transfer %lld completed twice", name,
                           static_cast<long long>(id)));
    return;
  }
  rec.done = true;
  ++transfers_completed_;
  const TimeNs now = link.engine().now();
  // A message pays its propagation latency once plus at least the full
  // serialization time of its bytes (chunk ceils only round up).
  const TimeNs floor = link.spec().latency + link.SerializationTime(rec.bytes);
  if (now - rec.submit < floor) {
    AddViolation(StrFormat("link %s: transfer %lld took %lld ns, below the "
                           "latency + serialization floor %lld ns",
                           name, static_cast<long long>(id),
                           static_cast<long long>(now - rec.submit),
                           static_cast<long long>(floor)));
  }
  state->completed_bytes += rec.bytes;
  // Bandwidth conservation: all completed bytes fit in the elapsed window at
  // link bandwidth (bandwidth_gbps is bytes per ns).
  const double elapsed = static_cast<double>(now - state->first_submit);
  const double byte_budget = link.spec().bandwidth_gbps * elapsed;
  if (static_cast<double>(state->completed_bytes) >
      byte_budget * (1.0 + 1e-9) + kRateEpsilon) {
    AddViolation(StrFormat("link %s: %lld bytes completed in a window that "
                           "fits only %.0f at %.3f GB/s",
                           name,
                           static_cast<long long>(state->completed_bytes),
                           byte_budget, link.spec().bandwidth_gbps));
  }
  // The link's busy intervals are disjoint and within the window.
  if (link.busy_time() > now - state->first_submit) {
    AddViolation(StrFormat("link %s: busy time %lld ns exceeds the %lld ns "
                           "since the first submit",
                           name, static_cast<long long>(link.busy_time()),
                           static_cast<long long>(now - state->first_submit)));
  }
}

void SimValidator::OnLinkDestroyed(const Link& link) { links_.erase(&link); }

SimValidator::LinkState* SimValidator::CommonLinkChecks(const Link& link,
                                                        const char* event) {
  auto it = links_.find(&link);
  if (it == links_.end()) {
    AddViolation(StrFormat("link %s: %s from an unregistered device",
                           link.spec().name.c_str(), event));
    return nullptr;
  }
  LinkState& state = it->second;
  const TimeNs now = link.engine().now();
  if (now < state.last_event) {
    AddViolation(StrFormat("link %s: %s at t=%lld before t=%lld (time moved "
                           "backwards)",
                           link.spec().name.c_str(), event,
                           static_cast<long long>(now),
                           static_cast<long long>(state.last_event)));
  }
  state.last_event = now;
  return &state;
}

}  // namespace oobp
