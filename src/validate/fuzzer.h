// Seeded differential fuzzer for the ooo-backprop scheduling stack.
//
// Each seed deterministically generates a random training model
// (layer_builder layer mix, random blocks), a random GPU spec, and a random
// system profile, then:
//   * builds the conventional and the Algorithm-1 ooo schedule and proves
//     both are dependency-preserving permutations (schedule_checker);
//   * recomputes the memory timeline of both orders against the independent
//     interval-liveness reference, and checks the scheduler's memory-cap
//     fallback contract (peak within 1.1x of conventional, or every
//     backward region pre-scheduled);
//   * simulates both schedules end to end under the SimValidator (every
//     invariant of sim_validator.h checked at every event);
//   * runs metamorphic properties on random kernel DAGs: scaling all solo
//     durations by k scales the makespan by ~k, and adding SM capacity
//     never increases the makespan;
//   * on a subset of seeds, fuzzes the serving subsystem with a random
//     arrival process and batcher config under the validator, checking
//     metric sanity (monotone percentiles, bounded attainment);
//   * on a subset of seeds, fuzzes multi-replica serving fleets: random
//     replica counts, routing policies, bursty traces and autoscaler knobs
//     under the validator, with the metamorphic property that adding a
//     replica (single-request batches, same trace) never worsens the mean
//     queueing delay, plus a sharded-simulation differential: the same
//     fleet re-run at sim_threads=2 must reproduce the single-engine
//     reference metrics exactly (see src/sim/sharded.h);
//   * on a subset of seeds, fuzzes the search-based scheduler baseline
//     (src/search): every searched schedule must pass the full
//     schedule_checker gate, never score worse than the in-order baseline,
//     reproduce byte-identically for identical options, never get worse
//     when the beam is enlarged (portfolio monotonicity), and run clean in
//     a differential searched-vs-MakeOooSchedule execution under the
//     SimValidator.
//
// All randomness flows from the seed through the repo's splitmix64 Rng, so
// a failure reproduces with `oobp fuzz --seeds 1 --base-seed <seed>`.

#ifndef OOBP_SRC_VALIDATE_FUZZER_H_
#define OOBP_SRC_VALIDATE_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace oobp {

struct FuzzOptions {
  uint64_t base_seed = 1;
  int num_seeds = 20;
  bool include_serve = true;  // serve-subsystem fuzz on every 4th seed
  bool verbose = false;       // per-seed progress on stderr
  // Thread-pool size; 0 = one worker per core. Every seed owns its entire
  // simulation stack (SimEngine, Gpu, Link, Rng), so seeds are independent
  // and the merged report is byte-identical for any jobs value.
  int jobs = 1;
  // Comma-separated glob list over check families: "schedule", "memory",
  // "train", "dag", "link", "serve", "fleet", "search". A skipped family
  // also skips
  // its random draws, so repros must pass the same --checks value as the
  // failing run.
  std::string checks = "*";
};

struct FuzzResult {
  int seeds_run = 0;
  int failed_seeds = 0;
  // Messages of failing checks, each prefixed with its seed (capped).
  std::vector<std::string> errors;
  bool ok() const { return failed_seeds == 0; }
};

FuzzResult RunFuzz(const FuzzOptions& options);

// Runs the check families matching `checks` for one seed, appending failure
// messages to `errors`. Exposed for tests that pin specific seeds.
void FuzzOneSeed(uint64_t seed, bool include_serve, const std::string& checks,
                 std::vector<std::string>* errors);

// Back-compat overload: every check family.
void FuzzOneSeed(uint64_t seed, bool include_serve,
                 std::vector<std::string>* errors);

// `oobp fuzz` entry point: parses --seeds=N, --base-seed=N, --jobs=N,
// --checks=GLOBS, --no-serve, --verbose. Returns 0 on a clean run, 1 on
// check failures, 2 on bad usage.
int FuzzMain(int argc, char** argv);

}  // namespace oobp

#endif  // OOBP_SRC_VALIDATE_FUZZER_H_
