#include "src/validate/fuzzer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/str_util.h"
#include "src/core/joint_scheduler.h"
#include "src/core/memory_model.h"
#include "src/core/region.h"
#include "src/core/schedule.h"
#include "src/hw/gpu.h"
#include "src/hw/gpu_spec.h"
#include "src/hw/link.h"
#include "src/nn/layer_builder.h"
#include "src/nn/train_graph.h"
#include "src/runner/glob.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/serve/fleet_engine.h"
#include "src/serve/serve_engine.h"
#include "src/search/evaluator.h"
#include "src/search/search.h"
#include "src/sim/engine.h"
#include "src/store/snapshot.h"
#include "src/validate/schedule_checker.h"
#include "src/validate/sim_validator.h"

namespace oobp {

namespace {

GpuSpec RandomGpuSpec(Rng& rng) {
  GpuSpec spec;
  spec.name = "fuzz-gpu";
  spec.num_sms = 16 + static_cast<int>(rng.NextBelow(81));        // 16..96
  spec.blocks_per_sm = 4 + static_cast<int>(rng.NextBelow(29));   // 4..32
  spec.fp32_tflops = rng.Uniform(4.0, 20.0);
  spec.mem_bandwidth_gbps = rng.Uniform(200.0, 1000.0);
  spec.mem_bytes = int64_t{16} << 30;
  spec.kernel_exec_overhead = static_cast<TimeNs>(rng.NextBelow(2001));
  return spec;
}

SystemProfile RandomProfile(Rng& rng) {
  SystemProfile profile = SystemProfile::TensorFlowXla();
  profile.compute_efficiency = rng.Uniform(0.3, 0.6);
  profile.mem_efficiency = rng.Uniform(0.5, 0.9);
  profile.issue_latency_per_op = Us(rng.Uniform(5.0, 25.0));
  profile.graph_launch_latency = Us(rng.Uniform(2.0, 10.0));
  profile.issue_queue_depth = 4 + static_cast<int>(rng.NextBelow(29));
  return profile;
}

// A random small model from the layer-builder zoo. Layer shapes need not
// chain (the scheduler and simulator consume per-layer costs only), so each
// layer draws independent dimensions for diversity. Consecutive layers share
// block names in groups of 2-4, which is what region splitting keys on.
NnModel RandomModel(Rng& rng) {
  NnModel model;
  model.name = "fuzz-model";
  model.batch = 8 << rng.NextBelow(4);  // 8, 16, 32, 64
  const int L = 3 + static_cast<int>(rng.NextBelow(9));  // 3..11 layers
  int block = 0;
  int in_block = 0;
  int block_len = 2 + static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < L; ++i) {
    if (in_block >= block_len) {
      ++block;
      in_block = 0;
      block_len = 2 + static_cast<int>(rng.NextBelow(3));
    }
    ++in_block;
    const std::string name = StrFormat("l%d", i);
    const std::string blk = StrFormat("block%d", block);
    int kind = static_cast<int>(rng.NextBelow(6));
    const int c = 8 << rng.NextBelow(3);   // 8, 16, 32 channels
    const int hw = 8 << rng.NextBelow(2);  // 8, 16 spatial
    switch (kind) {
      case 0:
      case 1:
        model.layers.push_back(MakeConv2d(
            name, blk, model.batch, c, hw, hw,
            8 + static_cast<int>(rng.NextBelow(33)),
            rng.NextBelow(2) == 0 ? 1 : 3, 1 + static_cast<int>(rng.NextBelow(2))));
        break;
      case 2:
        model.layers.push_back(MakePool(name, blk, model.batch, c, hw, hw));
        break;
      case 3:
        model.layers.push_back(MakeDense(
            name, blk, model.batch, 1 + static_cast<int>(rng.NextBelow(8)),
            64 << rng.NextBelow(3), 64 << rng.NextBelow(3)));
        break;
      case 4:
        model.layers.push_back(MakeTransformerLayer(
            name, blk, model.batch, 16 << rng.NextBelow(2),
            64 << rng.NextBelow(2), 4));
        break;
      default:
        model.layers.push_back(MakeLstmCell(
            name, blk, model.batch, 4 + static_cast<int>(rng.NextBelow(13)),
            64 << rng.NextBelow(2), 64 << rng.NextBelow(2)));
        break;
    }
  }
  // The scheduling problem is only interesting with at least one weight
  // gradient; replace the last layer if the draw produced none.
  bool any_params = false;
  for (const Layer& layer : model.layers) {
    any_params = any_params || layer.has_params();
  }
  if (!any_params) {
    model.layers.back() =
        MakeConv2d(StrFormat("l%d", L - 1), StrFormat("block%d", block),
                   model.batch, 16, 8, 8, 16, 3, 1);
  }
  return model;
}

// ---------------------------------------------------------------------------
// Metamorphic kernel-DAG checks on the raw Gpu model.

struct DagKernel {
  int stream = 0;
  TimeNs duration = 0;
  double blocks = 1.0;
  std::vector<int> deps;  // indices of earlier kernels
};

struct Dag {
  GpuSpec spec;  // kernel_exec_overhead == 0 (it does not scale with k)
  std::vector<int> stream_priority;
  std::vector<DagKernel> kernels;
};

Dag RandomDag(Rng& rng) {
  Dag dag;
  dag.spec.name = "dag-gpu";
  dag.spec.num_sms = 8 + static_cast<int>(rng.NextBelow(25));
  dag.spec.blocks_per_sm = 4 + static_cast<int>(rng.NextBelow(9));
  dag.spec.fp32_tflops = 10.0;
  dag.spec.mem_bandwidth_gbps = 500.0;
  dag.spec.mem_bytes = int64_t{16} << 30;
  dag.spec.kernel_exec_overhead = 0;

  const int num_streams = 1 + static_cast<int>(rng.NextBelow(4));
  for (int s = 0; s < num_streams; ++s) {
    dag.stream_priority.push_back(static_cast<int>(rng.NextBelow(4)));
  }
  const int K = 8 + static_cast<int>(rng.NextBelow(33));  // 8..40 kernels
  const uint64_t capacity = static_cast<uint64_t>(dag.spec.slot_capacity());
  for (int i = 0; i < K; ++i) {
    DagKernel k;
    k.stream = static_cast<int>(rng.NextBelow(num_streams));
    k.duration = 100 + static_cast<TimeNs>(rng.NextBelow(9901));
    // Capped at device capacity so capacity *additions* leave every kernel's
    // max rate unchanged (the wave model is monotone, but equal rates make
    // the makespan-monotonicity property exact rather than asymptotic).
    k.blocks = static_cast<double>(1 + rng.NextBelow(capacity));
    if (i > 0) {
      const int num_deps = static_cast<int>(rng.NextBelow(3));  // 0..2
      for (int d = 0; d < num_deps; ++d) {
        k.deps.push_back(static_cast<int>(rng.NextBelow(
            static_cast<uint64_t>(i))));
      }
    }
    dag.kernels.push_back(std::move(k));
  }
  return dag;
}

// Simulates the DAG (all kernels enqueued at t=0, stream FIFO + deps order
// execution) and returns the makespan. `duration_scale` multiplies every
// solo duration; `extra_blocks_per_sm` adds SM capacity.
TimeNs RunDag(const Dag& dag, int64_t duration_scale, int extra_blocks_per_sm,
              SimValidator* validator) {
  SimEngine engine;
  std::optional<ValidationScope> scope;
  if (validator != nullptr) {
    scope.emplace(validator);
  }
  GpuSpec spec = dag.spec;
  spec.blocks_per_sm += extra_blocks_per_sm;
  Gpu gpu(&engine, spec);
  for (int priority : dag.stream_priority) {
    gpu.CreateStream(priority);
  }
  std::vector<KernelId> ids;
  ids.reserve(dag.kernels.size());
  for (const DagKernel& k : dag.kernels) {
    KernelDesc desc;
    desc.solo_duration = k.duration * duration_scale;
    desc.thread_blocks = k.blocks;
    for (int dep : k.deps) {
      desc.deps.push_back(ids[static_cast<size_t>(dep)]);
    }
    ids.push_back(gpu.Enqueue(k.stream, std::move(desc)));
  }
  engine.Run();
  TimeNs makespan = 0;
  for (KernelId id : ids) {
    makespan = std::max(makespan, gpu.CompletionTime(id));
  }
  return makespan;
}

// Reference makespan for the uncontended case (capacity >= sum of all
// thread blocks, zero exec overhead): every kernel runs at its max rate for
// exactly its solo duration, so completion times follow from a longest-path
// DP over stream order and dependencies — no fluid sharing involved.
TimeNs CriticalPathMakespan(const Dag& dag) {
  std::vector<TimeNs> finish(dag.kernels.size(), 0);
  std::vector<TimeNs> stream_tail(dag.stream_priority.size(), 0);
  for (size_t i = 0; i < dag.kernels.size(); ++i) {
    const DagKernel& k = dag.kernels[i];
    TimeNs start = stream_tail[static_cast<size_t>(k.stream)];
    for (int dep : k.deps) {
      start = std::max(start, finish[static_cast<size_t>(dep)]);
    }
    finish[i] = start + k.duration;
    stream_tail[static_cast<size_t>(k.stream)] = finish[i];
  }
  TimeNs makespan = 0;
  for (TimeNs f : finish) {
    makespan = std::max(makespan, f);
  }
  return makespan;
}

void MetamorphicDagChecks(Rng& rng, uint64_t seed,
                          std::vector<std::string>* errors) {
  const Dag dag = RandomDag(rng);
  const TimeNs K = static_cast<TimeNs>(dag.kernels.size());

  SimValidator validator;
  const TimeNs base = RunDag(dag, 1, 0, &validator);
  if (!validator.ok()) {
    errors->push_back(StrFormat("seed %llu: dag run: %s",
                                static_cast<unsigned long long>(seed),
                                validator.Summary().c_str()));
  }

  // Scaling all kernel costs by k scales the makespan by ~k. The fluid
  // processor rounds each completion up to integer ns, so each of the K
  // completions can drift by <= 1 ns in either run; k*K + K bounds the
  // accumulated divergence.
  const int64_t k = 2 + static_cast<int64_t>(rng.NextBelow(4));  // 2..5
  const TimeNs scaled = RunDag(dag, k, 0, nullptr);
  const TimeNs scale_tol = K * (k + 1) + 8;
  if (std::llabs(scaled - k * base) > scale_tol) {
    errors->push_back(StrFormat(
        "seed %llu: scaling durations x%lld changed makespan %lld -> %lld "
        "(expected ~%lld, tol %lld)",
        static_cast<unsigned long long>(seed), static_cast<long long>(k),
        static_cast<long long>(base), static_cast<long long>(scaled),
        static_cast<long long>(k * base), static_cast<long long>(scale_tol)));
  }

  // Adding SM capacity never increases the makespan (2K ns slack for the
  // integer rounding of each run).
  const TimeNs wider = RunDag(dag, 1, dag.spec.blocks_per_sm, nullptr);
  if (wider > base + 2 * K + 8) {
    errors->push_back(StrFormat(
        "seed %llu: doubling SM capacity increased makespan %lld -> %lld",
        static_cast<unsigned long long>(seed), static_cast<long long>(base),
        static_cast<long long>(wider)));
  }

  // With capacity >= total thread blocks there is no contention at all and
  // the makespan must equal the longest-path reference exactly.
  double total_blocks = 0.0;
  for (const DagKernel& kern : dag.kernels) {
    total_blocks += kern.blocks;
  }
  Dag wide = dag;
  wide.spec.num_sms = static_cast<int>(total_blocks) + 1;
  wide.spec.blocks_per_sm = 1;
  // Keep each kernel's max rate equal to its block count (blocks <= new
  // capacity holds by construction).
  const TimeNs uncontended = RunDag(wide, 1, 0, nullptr);
  const TimeNs reference = CriticalPathMakespan(dag);
  if (uncontended != reference) {
    errors->push_back(StrFormat(
        "seed %llu: uncontended makespan %lld != critical-path reference "
        "%lld",
        static_cast<unsigned long long>(seed),
        static_cast<long long>(uncontended),
        static_cast<long long>(reference)));
  }
}

// ---------------------------------------------------------------------------
// Link fuzz: random transfers at random times under the validator.

void LinkFuzz(Rng& rng, uint64_t seed, std::vector<std::string>* errors) {
  SimValidator validator;
  int64_t completed = 0;
  int total = 0;
  {
    ValidationScope scope(&validator);
    SimEngine engine;
    LinkSpec spec;
    spec.name = "fuzz-link";
    spec.bandwidth_gbps = rng.Uniform(1.0, 50.0);
    spec.latency = static_cast<TimeNs>(rng.NextBelow(25001));
    const int64_t chunk = int64_t{1} << (14 + rng.NextBelow(7));  // 16K..1M
    const int64_t window =
        rng.NextBelow(2) == 0 ? 0 : int64_t{1} << (16 + rng.NextBelow(6));
    Link link(&engine, spec, chunk, nullptr, 200, window);
    total = 4 + static_cast<int>(rng.NextBelow(17));  // 4..20 transfers
    for (int t = 0; t < total; ++t) {
      const int64_t bytes = 1 + static_cast<int64_t>(rng.NextBelow(1 << 22));
      const int priority = static_cast<int>(rng.NextBelow(4));
      const TimeNs at = static_cast<TimeNs>(rng.NextBelow(Ms(1)));
      engine.ScheduleAt(at, [&link, &completed, bytes, priority] {
        link.Transfer(bytes, priority, "t", [&completed] { ++completed; });
      });
    }
    engine.Run();
  }
  if (completed != total) {
    errors->push_back(StrFormat(
        "seed %llu: link drained %lld of %d transfers",
        static_cast<unsigned long long>(seed),
        static_cast<long long>(completed), total));
  }
  if (!validator.ok()) {
    errors->push_back(StrFormat("seed %llu: link fuzz: %s",
                                static_cast<unsigned long long>(seed),
                                validator.Summary().c_str()));
  }
}

// ---------------------------------------------------------------------------
// Serve-subsystem fuzz.

void ServeFuzz(Rng& rng, uint64_t seed, std::vector<std::string>* errors) {
  auto fail = [errors, seed](std::string msg) {
    errors->push_back(StrFormat("seed %llu: serve fuzz: ",
                                static_cast<unsigned long long>(seed)) +
                      std::move(msg));
  };
  ServeConfig cfg;
  cfg.gpu = RandomGpuSpec(rng);
  cfg.profile = RandomProfile(rng);
  cfg.arrivals.kind =
      rng.NextBelow(2) == 0 ? ArrivalKind::kPoisson : ArrivalKind::kBursty;
  cfg.arrivals.rate_rps = rng.Uniform(200.0, 3000.0);
  cfg.arrivals.seed = seed * 2 + 17;
  cfg.batcher.max_batch = 1 + static_cast<int>(rng.NextBelow(8));
  cfg.batcher.max_queue_delay = Us(rng.Uniform(200.0, 2000.0));
  cfg.batcher.max_inflight = 1 + static_cast<int>(rng.NextBelow(2));
  cfg.horizon = Ms(10.0 + static_cast<double>(rng.NextBelow(21)));
  cfg.slo = Ms(5.0 + static_cast<double>(rng.NextBelow(16)));
  cfg.make_model = [](int batch) {
    NnModel m;
    m.name = "fuzz-infer";
    m.batch = batch;
    m.layers.push_back(MakeConv2d("c0", "b0", batch, 8, 16, 16, 16, 3, 1));
    m.layers.push_back(MakeConv2d("c1", "b0", batch, 16, 8, 8, 32, 3, 1));
    m.layers.push_back(MakeDense("fc", "b1", batch, 1, 128, 64));
    return m;
  };

  ServeEngine serve(cfg);
  SimValidator validator;
  ServeMetrics m;
  {
    ValidationScope scope(&validator);
    m = serve.RunServeOnly();
  }
  if (!validator.ok()) {
    fail(validator.Summary());
  }
  if (m.num_completed > m.num_requests) {
    fail(StrFormat("completed %lld > offered %lld",
                   static_cast<long long>(m.num_completed),
                   static_cast<long long>(m.num_requests)));
  }
  if (m.num_completed > 0 &&
      !(m.p50_latency <= m.p95_latency && m.p95_latency <= m.p99_latency &&
        m.p99_latency <= m.max_latency)) {
    fail(StrFormat("percentiles not monotone: p50=%lld p95=%lld p99=%lld "
                   "max=%lld",
                   static_cast<long long>(m.p50_latency),
                   static_cast<long long>(m.p95_latency),
                   static_cast<long long>(m.p99_latency),
                   static_cast<long long>(m.max_latency)));
  }
  if (m.slo_attainment < 0.0 || m.slo_attainment > 1.0) {
    fail(StrFormat("slo_attainment %.6f outside [0, 1]", m.slo_attainment));
  }
  if (m.goodput_rps > m.completed_rps * (1.0 + 1e-9) + 1e-9) {
    fail(StrFormat("goodput %.3f rps exceeds completion rate %.3f rps",
                   m.goodput_rps, m.completed_rps));
  }
  if (m.mean_batch_size > static_cast<double>(cfg.batcher.max_batch) + 1e-9) {
    fail(StrFormat("mean batch %.3f exceeds max_batch %d", m.mean_batch_size,
                   cfg.batcher.max_batch));
  }
}

// ---------------------------------------------------------------------------
// Fleet fuzz: random multi-replica fleets (router + autoscaler) under the
// validator, with a metamorphic routing property.

// Sanity checks shared by every fleet run.
void FleetSanity(const ServeMetrics& m, const char* what,
                 const std::function<void(std::string)>& fail) {
  if (m.num_completed > m.num_requests) {
    fail(StrFormat("%s: completed %lld > offered %lld", what,
                   static_cast<long long>(m.num_completed),
                   static_cast<long long>(m.num_requests)));
  }
  if (m.num_completed > 0 &&
      !(m.p50_latency <= m.p95_latency && m.p95_latency <= m.p99_latency &&
        m.p99_latency <= m.max_latency)) {
    fail(StrFormat("%s: percentiles not monotone: p50=%lld p95=%lld "
                   "p99=%lld max=%lld",
                   what, static_cast<long long>(m.p50_latency),
                   static_cast<long long>(m.p95_latency),
                   static_cast<long long>(m.p99_latency),
                   static_cast<long long>(m.max_latency)));
  }
  if (m.slo_attainment < 0.0 || m.slo_attainment > 1.0) {
    fail(StrFormat("%s: slo_attainment %.6f outside [0, 1]", what,
                   m.slo_attainment));
  }
  if (m.goodput_rps > m.completed_rps * (1.0 + 1e-9) + 1e-9) {
    fail(StrFormat("%s: goodput %.3f rps exceeds completion rate %.3f rps",
                   what, m.goodput_rps, m.completed_rps));
  }
}

void FleetFuzz(Rng& rng, uint64_t seed, std::vector<std::string>* errors) {
  auto fail = [errors, seed](std::string msg) {
    errors->push_back(StrFormat("seed %llu: fleet fuzz: ",
                                static_cast<unsigned long long>(seed)) +
                      std::move(msg));
  };

  FleetConfig base;
  base.gpu = RandomGpuSpec(rng);
  base.profile = RandomProfile(rng);
  base.arrivals.kind =
      rng.NextBelow(2) == 0 ? ArrivalKind::kPoisson : ArrivalKind::kBursty;
  base.arrivals.rate_rps = rng.Uniform(200.0, 2000.0);
  base.arrivals.seed = seed * 2 + 29;
  // Single-request batches isolate queueing from batch-fill deadlines: with
  // max_batch > 1 an extra replica can slow batch filling and legitimately
  // raise the mean delay, which would void the metamorphic property below.
  base.batcher.max_batch = 1;
  base.batcher.max_queue_delay = Us(500.0);
  base.batcher.max_inflight = 1;
  base.horizon = Ms(10.0 + static_cast<double>(rng.NextBelow(11)));
  base.slo = Ms(5.0 + static_cast<double>(rng.NextBelow(16)));
  base.router.seed = seed * 3 + 7;
  const uint64_t policy_draw = rng.NextBelow(3);
  base.router.policy = policy_draw == 0   ? RoutingPolicy::kRoundRobin
                       : policy_draw == 1 ? RoutingPolicy::kLeastLoaded
                                          : RoutingPolicy::kPowerOfTwo;
  // A bursty diurnal envelope on half the fleets.
  if (rng.NextBelow(2) == 0) {
    base.envelope = MakeDiurnalEnvelope(
        Ms(4.0 + static_cast<double>(rng.NextBelow(5))),
        rng.Uniform(0.3, 0.8), rng.Uniform(1.2, 2.0), /*steps=*/4);
  }
  base.make_model = [](int batch) {
    NnModel m;
    m.name = "fuzz-infer";
    m.batch = batch;
    m.layers.push_back(MakeConv2d("c0", "b0", batch, 8, 16, 16, 16, 3, 1));
    m.layers.push_back(MakeConv2d("c1", "b0", batch, 16, 8, 8, 32, 3, 1));
    m.layers.push_back(MakeDense("fc", "b1", batch, 1, 128, 64));
    return m;
  };

  const int R = 1 + static_cast<int>(rng.NextBelow(3));  // 1..3

  const auto run_fixed = [&base](int replicas, SimValidator* validator) {
    FleetConfig cfg = base;
    cfg.autoscaler.min_replicas = replicas;
    cfg.autoscaler.max_replicas = replicas;
    const FleetEngine engine(std::move(cfg));
    ValidationScope scope(validator);
    return engine.RunServeOnly();
  };

  SimValidator v_small, v_big;
  const FleetMetrics small = run_fixed(R, &v_small);
  const FleetMetrics big = run_fixed(R + 1, &v_big);
  if (!v_small.ok()) {
    fail(StrFormat("%d-replica run: %s", R, v_small.Summary().c_str()));
  }
  if (!v_big.ok()) {
    fail(StrFormat("%d-replica run: %s", R + 1, v_big.Summary().c_str()));
  }
  FleetSanity(small.serve, "fixed fleet", fail);
  FleetSanity(big.serve, "fixed fleet+1", fail);

  // Metamorphic: same trace, one more replica, single-request batches ->
  // the mean queueing delay never worsens. Power-of-two-choices redraws its
  // candidate pairs when the fleet grows, so it only gets the coverage runs.
  if (base.router.policy != RoutingPolicy::kPowerOfTwo &&
      big.serve.mean_queue_delay_ms >
          small.serve.mean_queue_delay_ms + 1e-6) {
    fail(StrFormat("adding a replica (%d -> %d, %s) worsened mean queue "
                   "delay %.6f -> %.6f ms",
                   R, R + 1, RoutingPolicyName(base.router.policy),
                   small.serve.mean_queue_delay_ms,
                   big.serve.mean_queue_delay_ms));
  }

  // Autoscaled coverage run: random thresholds, cooldown and warm-up over
  // the full replica range.
  FleetConfig cfg = std::move(base);
  cfg.arrivals.seed = seed * 2 + 31;
  cfg.autoscaler.min_replicas = 1;
  cfg.autoscaler.max_replicas = R + 1;
  cfg.autoscaler.scale_up_depth = rng.Uniform(2.0, 10.0);
  cfg.autoscaler.scale_down_depth = rng.Uniform(0.2, 1.5);
  cfg.autoscaler.evaluate_every = Us(rng.Uniform(200.0, 1000.0));
  cfg.autoscaler.cooldown = Us(rng.Uniform(0.0, 2000.0));
  cfg.autoscaler.warmup = Us(rng.Uniform(0.0, 2000.0));
  const FleetConfig sharded_cfg = cfg;  // reused by the differential below
  SimValidator v_scaled;
  FleetMetrics scaled;
  {
    const FleetEngine engine(std::move(cfg));
    ValidationScope scope(&v_scaled);
    scaled = engine.RunServeOnly();
  }
  if (!v_scaled.ok()) {
    fail("autoscaled run: " + v_scaled.Summary());
  }
  FleetSanity(scaled.serve, "autoscaled fleet", fail);
  if (scaled.min_routable < 1 || scaled.max_routable > R + 1) {
    fail(StrFormat("routable range [%d, %d] outside [1, %d]",
                   scaled.min_routable, scaled.max_routable, R + 1));
  }
  // Reaching a peak of M routable replicas from a floor of 1 takes at least
  // M - 1 scale-ups (each action moves the fleet by one).
  if (scaled.scale_ups < scaled.max_routable - 1) {
    fail(StrFormat("peak %d routable with only %d scale-ups",
                   scaled.max_routable, scaled.scale_ups));
  }

  // Sharded-simulation differential: the same autoscaled fleet at
  // sim_threads 2 must reproduce the single-engine reference *exactly* —
  // every metric, per-replica counter and timeline event. Both runs go
  // without a validator (validation hooks are thread-local, and a fleet
  // with hooks attached takes the reference path regardless of
  // sim_threads), so the reference is re-run rather than reusing `scaled`.
  const auto run_threads = [&sharded_cfg](int threads) {
    FleetConfig c = sharded_cfg;
    c.sim_threads = threads;
    return FleetEngine(std::move(c)).RunServeOnly();
  };
  const FleetMetrics ref = run_threads(1);
  const FleetMetrics sh = run_threads(2);
  const auto serve_equal = [](const ServeMetrics& a, const ServeMetrics& b) {
    return a.num_requests == b.num_requests &&
           a.num_completed == b.num_completed &&
           a.num_batches == b.num_batches && a.goodput_rps == b.goodput_rps &&
           a.slo_attainment == b.slo_attainment &&
           a.p50_latency == b.p50_latency && a.p95_latency == b.p95_latency &&
           a.p99_latency == b.p99_latency && a.max_latency == b.max_latency &&
           a.mean_latency_ms == b.mean_latency_ms &&
           a.mean_queue_delay_ms == b.mean_queue_delay_ms &&
           a.mean_exec_ms == b.mean_exec_ms &&
           a.mean_batch_size == b.mean_batch_size;
  };
  bool identical = serve_equal(ref.serve, sh.serve) &&
                   ref.imbalance == sh.imbalance &&
                   ref.router_decisions == sh.router_decisions &&
                   ref.scale_ups == sh.scale_ups &&
                   ref.scale_downs == sh.scale_downs &&
                   ref.min_routable == sh.min_routable &&
                   ref.max_routable == sh.max_routable &&
                   ref.mean_routable == sh.mean_routable &&
                   ref.replica_completed == sh.replica_completed &&
                   ref.replica_timeline == sh.replica_timeline &&
                   ref.per_replica.size() == sh.per_replica.size();
  for (size_t r = 0; identical && r < ref.per_replica.size(); ++r) {
    identical = serve_equal(ref.per_replica[r], sh.per_replica[r]);
  }
  if (!identical) {
    fail(StrFormat("sharded run (sim_threads=2) diverged from the "
                   "single-engine reference: completed %lld vs %lld, "
                   "p99 %lld vs %lld, router decisions %lld vs %lld",
                   static_cast<long long>(ref.serve.num_completed),
                   static_cast<long long>(sh.serve.num_completed),
                   static_cast<long long>(ref.serve.p99_latency),
                   static_cast<long long>(sh.serve.p99_latency),
                   static_cast<long long>(ref.router_decisions),
                   static_cast<long long>(sh.router_decisions)));
  }
}

// ---------------------------------------------------------------------------
// Search-based scheduler baseline (src/search): machine-verified schedules,
// never-worse-than-in-order, determinism, beam monotonicity, and a
// differential searched-vs-MakeOooSchedule run under the SimValidator.

void SearchFuzz(Rng& rng, uint64_t seed, std::vector<std::string>* errors) {
  auto fail = [errors, seed](std::string msg) {
    errors->push_back(StrFormat("seed %llu: search fuzz: ",
                                static_cast<unsigned long long>(seed)) +
                      std::move(msg));
  };

  const GpuSpec gpu = RandomGpuSpec(rng);
  const SystemProfile profile = RandomProfile(rng);
  const NnModel model = RandomModel(rng);
  const TrainGraph graph(&model);

  SearchOptions options;
  options.beam = 1 + static_cast<int>(rng.NextBelow(2));      // 1 or 2
  options.seed = rng.NextU64();
  options.budget = 8 + static_cast<int>(rng.NextBelow(9));    // 8..16

  const SearchResult searched = SearchSchedule(graph, gpu, profile, options);

  // Every emitted schedule must pass the full checker gate.
  const ScheduleCheckReport check =
      CheckIterationSchedule(graph, searched.schedule);
  if (!check.ok()) {
    fail("searched schedule: " + check.ToString());
  }

  // The search can never lose to its own starting point.
  if (searched.best_time > searched.conventional_time) {
    fail(StrFormat("searched time %lld worse than conventional %lld",
                   static_cast<long long>(searched.best_time),
                   static_cast<long long>(searched.conventional_time)));
  }

  // Determinism: identical options => byte-identical schedule and score.
  const SearchResult again = SearchSchedule(graph, gpu, profile, options);
  if (again.schedule.ToString() != searched.schedule.ToString() ||
      again.best_time != searched.best_time) {
    fail("identical seed+budget produced a different schedule");
  }

  // Metamorphic: enlarging the beam never worsens the best score (the
  // portfolio with beam B+1 evaluates a superset of beam B's candidates).
  SearchOptions wider = options;
  wider.beam = options.beam + 1;
  const SearchResult wide = SearchSchedule(graph, gpu, profile, wider);
  if (wide.best_time > searched.best_time) {
    fail(StrFormat("beam %d best %lld worse than beam %d best %lld",
                   wider.beam, static_cast<long long>(wide.best_time),
                   options.beam, static_cast<long long>(searched.best_time)));
  }

  // Two-tier evaluation pipeline (analytic Tier A + candidate cache +
  // simulator Tier B): schedules must pass the checker gate, never lose to
  // the starting point, audit cleanly (Tier A is bit-exact, so every audit
  // error is exactly zero), reproduce run-to-run byte-for-byte including
  // the pipeline accounting, and be invariant to the worker-thread count.
  SearchOptions tt = options;
  tt.eval_mode = SearchEvalMode::kTwoTier;
  tt.audit_interval = 4;  // dense audits: small budgets need the coverage
  tt.threads = 1;
  const SearchResult fast = SearchSchedule(graph, gpu, profile, tt);
  const ScheduleCheckReport fast_check =
      CheckIterationSchedule(graph, fast.schedule);
  if (!fast_check.ok()) {
    fail("two-tier searched schedule: " + fast_check.ToString());
  }
  if (fast.best_time > fast.conventional_time) {
    fail(StrFormat("two-tier time %lld worse than conventional %lld",
                   static_cast<long long>(fast.best_time),
                   static_cast<long long>(fast.conventional_time)));
  }
  // Only Tier-B simulator scores escape a two-tier trajectory: a fresh
  // exact evaluator must reproduce best_time bit-for-bit.
  ScheduleEvaluator rescore(&model, gpu, profile);
  if (rescore.IterationTime(fast.schedule) != fast.best_time) {
    fail(StrFormat("two-tier best_time %lld is not the exact score %lld of "
                   "its schedule",
                   static_cast<long long>(fast.best_time),
                   static_cast<long long>(
                       rescore.IterationTime(fast.schedule))));
  }
  if (fast.stats.audit_max_rel_err != 0.0) {
    fail(StrFormat("analytic evaluator drifted from the simulator: audit "
                   "max rel err %g over %lld samples",
                   fast.stats.audit_max_rel_err,
                   static_cast<long long>(fast.stats.audit_samples)));
  }
  auto same_run = [&](const SearchResult& other) {
    return other.schedule.ToString() == fast.schedule.ToString() &&
           other.best_time == fast.best_time &&
           other.stats.analytic_evals == fast.stats.analytic_evals &&
           other.stats.sim_evals == fast.stats.sim_evals &&
           other.stats.cache_hits == fast.stats.cache_hits &&
           other.stats.cache_misses == fast.stats.cache_misses &&
           other.stats.memory_rejections == fast.stats.memory_rejections &&
           other.stats.audit_samples == fast.stats.audit_samples;
  };
  if (!same_run(SearchSchedule(graph, gpu, profile, tt))) {
    fail("two-tier rerun diverged (schedule, score, or pipeline stats)");
  }
  SearchOptions tt_mt = tt;
  tt_mt.threads = 3;
  if (!same_run(SearchSchedule(graph, gpu, profile, tt_mt))) {
    fail("two-tier run at threads=3 diverged from threads=1");
  }

  // Differential execution: searched vs MakeOooSchedule end to end under
  // the invariant validator — both are dependency-true permutations, so
  // both must run clean.
  const JointScheduleResult ooo = MakeOooSchedule(graph, gpu, profile);
  SimValidator validator;
  TrainMetrics searched_metrics;
  TrainMetrics ooo_metrics;
  {
    ValidationScope scope(&validator);
    SingleGpuConfig cfg;
    cfg.gpu = gpu;
    cfg.profile = profile;
    cfg.precompiled_issue = true;
    cfg.measured_iterations = 2;
    const SingleGpuEngine engine(cfg);
    searched_metrics = engine.Run(model, searched.schedule);
    ooo_metrics = engine.Run(model, ooo.schedule);
  }
  if (!validator.ok()) {
    fail("differential run: " + validator.Summary());
  }
  if (searched_metrics.iteration_time <= 0 || ooo_metrics.iteration_time <= 0) {
    fail(StrFormat("non-positive iteration time (searched %lld, ooo %lld)",
                   static_cast<long long>(searched_metrics.iteration_time),
                   static_cast<long long>(ooo_metrics.iteration_time)));
  }
}

}  // namespace

void FuzzOneSeed(uint64_t seed, bool include_serve, const std::string& checks,
                 std::vector<std::string>* errors) {
  Rng rng(seed);
  auto on = [&checks](const char* family) {
    return MatchAnyGlob(checks, family);
  };
  auto fail = [errors, seed](std::string msg) {
    errors->push_back(
        StrFormat("seed %llu: ", static_cast<unsigned long long>(seed)) +
        std::move(msg));
  };

  // The model/schedule stack feeds the schedule, memory, and train families;
  // generate it only when one of them is selected so a pure dag/link/serve
  // run stays cheap.
  if (on("schedule") || on("memory") || on("train")) {
    const GpuSpec gpu = RandomGpuSpec(rng);
    const SystemProfile profile = RandomProfile(rng);
    const NnModel model = RandomModel(rng);
    const TrainGraph graph(&model);

    const IterationSchedule conventional = ConventionalIteration(graph);
    const JointScheduleResult ooo = MakeOooSchedule(graph, gpu, profile);

    if (on("schedule")) {
      // Schedule equivalence: both orders are dependency-preserving
      // permutations of the same iteration op set.
      ScheduleCheckReport conv_check =
          CheckIterationSchedule(graph, conventional);
      if (!conv_check.ok()) {
        fail("conventional schedule: " + conv_check.ToString());
      }
      ScheduleCheckReport ooo_check =
          CheckIterationSchedule(graph, ooo.schedule);
      if (!ooo_check.ok()) {
        fail("ooo schedule: " + ooo_check.ToString());
      }
    }

    if (on("memory")) {
      // Memory model vs the independent interval-liveness reference, for
      // both orders, plus the scheduler's cap contract.
      const std::vector<TrainOp> conv_order = conventional.MergedOrder();
      const std::vector<TrainOp> ooo_order = ooo.schedule.MergedOrder();
      const MemoryTimeline conv_mem =
          EstimateBackpropMemory(model, conv_order);
      const MemoryTimeline ooo_mem = EstimateBackpropMemory(model, ooo_order);
      ScheduleCheckReport conv_mem_check =
          CheckMemoryTimeline(model, conv_order, conv_mem);
      if (!conv_mem_check.ok()) {
        fail("conventional memory timeline: " + conv_mem_check.ToString());
      }
      ScheduleCheckReport ooo_mem_check =
          CheckMemoryTimeline(model, ooo_order, ooo_mem);
      if (!ooo_mem_check.ok()) {
        fail("ooo memory timeline: " + ooo_mem_check.ToString());
      }
      if (ooo.peak_memory != ooo_mem.peak) {
        fail(StrFormat("scheduler reported peak %lld, memory model says %lld",
                       static_cast<long long>(ooo.peak_memory),
                       static_cast<long long>(ooo_mem.peak)));
      }
      // Cap contract: within 1.1x of the conventional peak, unless the
      // fallback exhausted every backward region (then the cap is
      // best-effort).
      const int64_t cap = static_cast<int64_t>(1.1 * conv_mem.peak);
      int bwd_regions = 0;
      for (const Region& region : BuildRegions(graph)) {
        if (region.kind == Region::Kind::kBackward) {
          ++bwd_regions;
        }
      }
      if (ooo.peak_memory > cap && ooo.pre_scheduled_regions != bwd_regions) {
        fail(StrFormat("peak %lld over cap %lld with only %d of %d backward "
                       "regions pre-scheduled",
                       static_cast<long long>(ooo.peak_memory),
                       static_cast<long long>(cap), ooo.pre_scheduled_regions,
                       bwd_regions));
      }
    }

    if (on("train")) {
      // Differential execution: conventional vs ooo, both end to end under
      // the invariant validator.
      SimValidator validator;
      TrainMetrics conv_metrics;
      TrainMetrics ooo_metrics;
      {
        ValidationScope scope(&validator);
        SingleGpuConfig cfg;
        cfg.gpu = gpu;
        cfg.profile = profile;
        cfg.precompiled_issue = rng.NextBelow(2) == 0;
        cfg.measured_iterations = 2;
        const SingleGpuEngine engine(cfg);
        conv_metrics = engine.Run(model, conventional);
        ooo_metrics = engine.Run(model, ooo.schedule);
      }
      if (!validator.ok()) {
        fail("train run: " + validator.Summary());
      }
      if (validator.kernels_finished() == 0) {
        fail("train run: validator observed no kernel completions");
      }
      if (conv_metrics.iteration_time <= 0 ||
          ooo_metrics.iteration_time <= 0) {
        fail(StrFormat("non-positive iteration time (conventional %lld, ooo "
                       "%lld)",
                       static_cast<long long>(conv_metrics.iteration_time),
                       static_cast<long long>(ooo_metrics.iteration_time)));
      }
    }
  }

  if (on("dag")) {
    MetamorphicDagChecks(rng, seed, errors);
  }
  if (on("link")) {
    LinkFuzz(rng, seed, errors);
  }
  if (on("serve") && include_serve && seed % 4 == 0) {
    ServeFuzz(rng, seed, errors);
  }
  if (on("fleet") && include_serve && seed % 2 == 0) {
    FleetFuzz(rng, seed, errors);
  }
  if (on("search") && seed % 2 == 1) {
    SearchFuzz(rng, seed, errors);
  }
}

void FuzzOneSeed(uint64_t seed, bool include_serve,
                 std::vector<std::string>* errors) {
  FuzzOneSeed(seed, include_serve, "*", errors);
}

FuzzResult RunFuzz(const FuzzOptions& options) {
  FuzzResult result;
  const size_t n =
      options.num_seeds > 0 ? static_cast<size_t>(options.num_seeds) : 0;
  // One error-list slot per seed: workers never share state, and the merge
  // below walks slots in seed order, so the report is byte-identical for
  // every jobs value (the tier-5 fuzz_parallel_test pins this).
  std::vector<std::vector<std::string>> per_seed(n);

  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (jobs < 1) {
    jobs = 1;
  }
  if (static_cast<size_t>(jobs) > n) {
    jobs = static_cast<int>(n);
  }

  auto run_seed = [&options, &per_seed](size_t i) {
    const uint64_t seed = options.base_seed + static_cast<uint64_t>(i);
    FuzzOneSeed(seed, options.include_serve, options.checks, &per_seed[i]);
  };
  if (jobs <= 1) {
    for (size_t i = 0; i < n; ++i) {
      run_seed(i);
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs));
    for (int t = 0; t < jobs; ++t) {
      pool.emplace_back([&run_seed, &next, n] {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= n) {
            return;
          }
          run_seed(i);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string>& errors = per_seed[i];
    ++result.seeds_run;
    if (!errors.empty()) {
      ++result.failed_seeds;
      for (std::string& e : errors) {
        if (result.errors.size() < 200) {
          result.errors.push_back(std::move(e));
        }
      }
    }
    if (options.verbose) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(
                       options.base_seed + static_cast<uint64_t>(i)),
                   errors.empty() ? "ok" : "FAILED");
    }
  }
  return result;
}

int FuzzMain(int argc, char** argv) {
  FuzzOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "fuzz") {
      continue;  // subcommand token forwarded by the oobp driver
    } else if (const char* v = value_of("--seeds=")) {
      opts.num_seeds = std::atoi(v);
    } else if (arg == "--seeds" && i + 1 < argc) {
      opts.num_seeds = std::atoi(argv[++i]);
    } else if (const char* v2 = value_of("--base-seed=")) {
      opts.base_seed = static_cast<uint64_t>(std::atoll(v2));
    } else if (arg == "--base-seed" && i + 1 < argc) {
      opts.base_seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (const char* v3 = value_of("--jobs=")) {
      opts.jobs = std::atoi(v3);
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs = std::atoi(argv[++i]);
    } else if (const char* v4 = value_of("--checks=")) {
      opts.checks = v4;
    } else if (arg == "--checks" && i + 1 < argc) {
      opts.checks = argv[++i];
    } else if (arg == "--no-serve") {
      opts.include_serve = false;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--snapshot" || value_of("--snapshot=") != nullptr) {
      // Activates the snapshot so fuzz runs exercise the activation/lookup
      // paths under the sanitizers. The registry check is skipped (the
      // fuzzer registers no scenarios, so its hash would never match) and
      // the fuzzer's own schedules are NOT rerouted — it exists to check
      // the real scheduler, not the cache.
      const char* v5 = value_of("--snapshot=");
      const std::string path =
          v5 != nullptr && v5[0] != '\0' ? v5 : "bench/oobp.snapshot";
      std::string error;
      if (ActivateSnapshot(path, /*expected_registry_hash=*/0,
                           /*check_registry=*/false, &error) ==
          SnapshotActivation::kError) {
        std::fprintf(stderr, "fuzz: snapshot: %s\n", error.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: oobp fuzz [--seeds=N] [--base-seed=N] [--jobs=N]\n"
                   "                 [--checks=GLOBS] [--no-serve] "
                   "[--snapshot[=PATH]] [--verbose]\n"
                   "  --jobs=N       seeds per thread pool; 0 = all cores\n"
                   "  --checks=GLOBS comma-separated globs over families\n"
                   "                 schedule,memory,train,dag,link,serve,"
                   "fleet,search\n"
                   "  --snapshot[=PATH] activate a snapshot (model-cache\n"
                   "                 lookups route through it) so corruption\n"
                   "                 and lookup paths run under sanitizers\n");
      return 2;
    }
  }
  if (opts.num_seeds <= 0) {
    std::fprintf(stderr, "fuzz: --seeds must be positive\n");
    return 2;
  }
  const FuzzResult result = RunFuzz(opts);
  for (const std::string& e : result.errors) {
    std::fprintf(stderr, "FAIL %s\n", e.c_str());
  }
  std::printf("fuzz: %d seed(s), %d failed (base seed %llu)\n",
              result.seeds_run, result.failed_seeds,
              static_cast<unsigned long long>(opts.base_seed));
  return result.ok() ? 0 : 1;
}

}  // namespace oobp
