#include "src/runtime/cluster_ps_engine.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/hw/comm_channel.h"
#include "src/hw/gpu.h"
#include "src/sim/engine.h"
#include "src/sim/sharded.h"

namespace oobp {

namespace {

enum class PsOp { kForward, kOutputGrad, kWeightGrad };

struct OpRef {
  PsOp type;
  int layer;
};

// One iteration's op order. Conventional backprop interleaves weight and
// output gradients top-down, so the lowest layers' gradients — the ones the
// next forward pass needs back first — are both computed and pushed last.
// Reverse-first-k keeps the interleaved sweep for layers >= k (their pushes
// start early and overlap the backward pass) but defers the first k layers'
// weight gradients: the output-gradient chain runs to the bottom first,
// then wg_0..wg_{k-1} execute bottom-up, entering the priority links in
// urgency order. wg_l depends only on og_{l+1}, so both orders are valid
// schedules of the same dataflow.
std::vector<OpRef> BuildProgram(const NnModel& model, bool ooo,
                                int reverse_k) {
  const int layers = static_cast<int>(model.layers.size());
  const int k = ooo ? std::min(reverse_k, layers) : 0;
  std::vector<OpRef> program;
  program.reserve(static_cast<size_t>(3 * layers));
  for (int l = 0; l < layers; ++l) {
    program.push_back({PsOp::kForward, l});
  }
  for (int l = layers - 1; l >= k; --l) {
    if (model.layers[static_cast<size_t>(l)].has_params()) {
      program.push_back({PsOp::kWeightGrad, l});
    }
    if (l >= 1) {
      program.push_back({PsOp::kOutputGrad, l});
    }
  }
  for (int l = k - 1; l >= 1; --l) {
    program.push_back({PsOp::kOutputGrad, l});
  }
  for (int l = 0; l < k; ++l) {
    if (model.layers[static_cast<size_t>(l)].has_params()) {
      program.push_back({PsOp::kWeightGrad, l});
    }
  }
  return program;
}

}  // namespace

ClusterPsEngine::ClusterPsEngine(ClusterPsConfig config)
    : config_(std::move(config)) {
  OOBP_CHECK_GE(config_.workers, 1);
  OOBP_CHECK_GE(config_.iterations, 2);
  OOBP_CHECK_GE(config_.straggler_spread, 0.0);
  OOBP_CHECK_GT(config_.server_agg_gbps, 0.0);
}

ClusterPsMetrics ClusterPsEngine::Run(const NnModel& model) const {
  const CostModel cost(config_.gpu, config_.profile);
  const int W = config_.workers;
  const int T = config_.iterations;
  const int layers = static_cast<int>(model.layers.size());
  const int reverse_k =
      config_.reverse_k < 0 ? layers / 3 : config_.reverse_k;
  const std::vector<OpRef> program =
      BuildProgram(model, config_.ooo, reverse_k);

  int param_layers = 0;
  for (const Layer& layer : model.layers) {
    param_layers += layer.has_params() ? 1 : 0;
  }
  OOBP_CHECK_GT(param_layers, 0);

  // Per-op base costs, shared by all workers (stragglers scale them).
  std::vector<KernelCost> fwd_cost(static_cast<size_t>(layers));
  std::vector<KernelCost> og_cost(static_cast<size_t>(layers));
  std::vector<KernelCost> wg_cost(static_cast<size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    const Layer& layer = model.layers[static_cast<size_t>(l)];
    fwd_cost[static_cast<size_t>(l)] = cost.Cost(layer, TrainOpType::kForward);
    og_cost[static_cast<size_t>(l)] =
        cost.Cost(layer, TrainOpType::kOutputGrad);
    if (layer.has_params()) {
      wg_cost[static_cast<size_t>(l)] =
          cost.Cost(layer, TrainOpType::kWeightGrad);
    }
  }
  auto base_cost = [&](const OpRef& op) -> const KernelCost& {
    switch (op.type) {
      case PsOp::kForward:
        return fwd_cost[static_cast<size_t>(op.layer)];
      case PsOp::kOutputGrad:
        return og_cost[static_cast<size_t>(op.layer)];
      case PsOp::kWeightGrad:
      default:
        return wg_cost[static_cast<size_t>(op.layer)];
    }
  };
  // Conventional pushes are FIFO (uniform priority); ooo gives lower layers
  // higher priority on the preemptive links (reverse-first-k semantics).
  auto push_priority = [&](int l) { return config_.ooo ? l : 0; };
  auto agg_ns = [&](int64_t bytes) {
    return config_.server_agg_fixed +
           static_cast<TimeNs>(std::llround(
               static_cast<double>(bytes) * W / config_.server_agg_gbps));
  };

  // Logical processes: worker w -> LP w, parameter server -> LP W.
  ShardedSim shard(W + 1, config_.sim_threads);
  shard.SetPerturbSeed(config_.sim_perturb_seed);
  SimEngine* server = shard.lp(W);

  struct Worker {
    std::unique_ptr<Gpu> gpu;
    StreamId stream = 0;
    double factor = 1.0;
    int iter = 0;
    size_t pc = 0;
    KernelId outstanding = -1;
    std::vector<std::vector<char>> upd_ready;  // [iteration][layer]
    std::vector<int> upd_count;                // received updates, per iter
    std::vector<TimeNs> upd_done;              // all updates in, per iter
    TimeNs wait_since = -1;
    TimeNs stall = 0;
  };
  std::vector<Worker> workers(static_cast<size_t>(W));
  std::vector<std::unique_ptr<CommChannel>> up;      // worker -> server
  std::vector<std::unique_ptr<CommChannel>> down;    // server -> worker
  // arrived[t][l]: gradient copies at the server for (iteration, layer).
  std::vector<std::vector<int>> arrived(
      static_cast<size_t>(T), std::vector<int>(static_cast<size_t>(layers)));

  for (int w = 0; w < W; ++w) {
    Worker& wk = workers[static_cast<size_t>(w)];
    wk.gpu = std::make_unique<Gpu>(shard.lp(w), config_.gpu);
    wk.stream = wk.gpu->CreateStream(/*priority=*/0);
    wk.factor = 1.0 + config_.straggler_spread *
                          Rng(config_.straggler_seed +
                              static_cast<uint64_t>(w))
                              .NextDouble();
    wk.upd_ready.assign(static_cast<size_t>(T),
                        std::vector<char>(static_cast<size_t>(layers), 0));
    wk.upd_count.assign(static_cast<size_t>(T), 0);
    wk.upd_done.assign(static_cast<size_t>(T), -1);
    up.push_back(std::make_unique<CommChannel>(shard.lp(w), /*src_lp=*/w,
                                               /*dst_lp=*/W, config_.uplink));
    down.push_back(std::make_unique<CommChannel>(server, /*src_lp=*/W,
                                                 /*dst_lp=*/w,
                                                 config_.downlink));
  }

  // try_issue runs in worker w's LP context (its kernel-done listener or an
  // update delivery) and touches only that worker's state.
  std::function<void(int)> try_issue = [&](int w) {
    Worker& wk = workers[static_cast<size_t>(w)];
    if (wk.iter >= T || wk.outstanding >= 0) {
      return;
    }
    const OpRef& op = program[wk.pc];
    const Layer& layer = model.layers[static_cast<size_t>(op.layer)];
    SimEngine* eng = shard.lp(w);
    if (op.type == PsOp::kForward && wk.iter > 0 && layer.has_params() &&
        wk.upd_ready[static_cast<size_t>(wk.iter - 1)]
                    [static_cast<size_t>(op.layer)] == 0) {
      if (wk.wait_since < 0) {
        wk.wait_since = eng->now();  // forward blocked on a parameter update
      }
      return;
    }
    if (wk.wait_since >= 0) {
      wk.stall += eng->now() - wk.wait_since;
      wk.wait_since = -1;
    }
    const KernelCost& base = base_cost(op);
    KernelDesc desc;
    desc.solo_duration = static_cast<TimeNs>(
        std::llround(static_cast<double>(base.duration) * wk.factor));
    desc.thread_blocks = base.thread_blocks;
    wk.outstanding = wk.gpu->Enqueue(wk.stream, std::move(desc));
  };

  // Server-side aggregation, running in the server LP: once all W copies of
  // (t, l) arrive, pay the reduction cost and broadcast the update.
  std::function<void(int, int)> on_grad = [&](int t, int l) {
    if (++arrived[static_cast<size_t>(t)][static_cast<size_t>(l)] != W) {
      return;
    }
    const int64_t bytes =
        model.layers[static_cast<size_t>(l)].param_bytes;
    server->ScheduleAfter(agg_ns(bytes), [&, t, l, bytes] {
      for (int w = 0; w < W; ++w) {
        down[static_cast<size_t>(w)]->Send(
            bytes, push_priority(l), /*name=*/"", [&, w, t, l] {
              Worker& wk = workers[static_cast<size_t>(w)];
              wk.upd_ready[static_cast<size_t>(t)]
                          [static_cast<size_t>(l)] = 1;
              if (++wk.upd_count[static_cast<size_t>(t)] == param_layers) {
                wk.upd_done[static_cast<size_t>(t)] = shard.lp(w)->now();
              }
              try_issue(w);
            });
      }
    });
  };

  for (int w = 0; w < W; ++w) {
    workers[static_cast<size_t>(w)].gpu->AddKernelDoneListener(
        [&, w](KernelId id) {
          Worker& wk = workers[static_cast<size_t>(w)];
          if (id != wk.outstanding) {
            return;
          }
          wk.outstanding = -1;
          const OpRef op = program[wk.pc];
          if (op.type == PsOp::kWeightGrad) {
            const int t = wk.iter;
            const int l = op.layer;
            up[static_cast<size_t>(w)]->Send(
                model.layers[static_cast<size_t>(l)].param_bytes,
                push_priority(l), /*name=*/"",
                [&, t, l] { on_grad(t, l); });
          }
          ++wk.pc;
          if (wk.pc == program.size()) {
            wk.pc = 0;
            ++wk.iter;
          }
          try_issue(w);
        });
  }

  // Kick every worker's first forward at t = 0, then run the conservative
  // loop until compute and communication fully drain.
  std::vector<CrossLpChannel*> channels;
  for (int w = 0; w < W; ++w) {
    channels.push_back(up[static_cast<size_t>(w)].get());
  }
  for (int w = 0; w < W; ++w) {
    channels.push_back(down[static_cast<size_t>(w)].get());
  }
  for (int w = 0; w < W; ++w) {
    try_issue(w);
  }
  shard.RunConservative(channels);

  // -- Metrics --------------------------------------------------------------
  ClusterPsMetrics m;
  m.processed_events = shard.processed_events();
  TimeNs iter_sum = 0;
  double stall_sum = 0.0;
  double busy_sum = 0.0;
  for (int w = 0; w < W; ++w) {
    const Worker& wk = workers[static_cast<size_t>(w)];
    OOBP_CHECK_GE(wk.upd_done[static_cast<size_t>(T - 1)], 0);
    m.makespan =
        std::max(m.makespan, wk.upd_done[static_cast<size_t>(T - 1)]);
    const TimeNs iter = (wk.upd_done[static_cast<size_t>(T - 1)] -
                         wk.upd_done[0]) /
                        (T - 1);
    iter_sum += iter;
    if (w == 0) {
      m.worker_iter_min = m.worker_iter_max = iter;
    } else {
      m.worker_iter_min = std::min(m.worker_iter_min, iter);
      m.worker_iter_max = std::max(m.worker_iter_max, iter);
    }
    m.slowest_factor = std::max(m.slowest_factor, wk.factor);
    stall_sum += static_cast<double>(wk.stall);
    m.bytes_pushed += up[static_cast<size_t>(w)]->total_sent_bytes();
    busy_sum +=
        static_cast<double>(up[static_cast<size_t>(w)]->link().busy_time());
  }
  m.iteration_time = iter_sum / W;
  if (m.makespan > 0) {
    m.sync_stall_frac =
        stall_sum / (static_cast<double>(m.makespan) * W);
    m.uplink_busy_frac = busy_sum / (static_cast<double>(m.makespan) * W);
  }
  return m;
}

}  // namespace oobp
