#include "src/runtime/single_gpu_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/core/memory_model.h"
#include "src/hw/cpu_launcher.h"
#include "src/hw/gpu.h"
#include "src/sim/engine.h"

namespace oobp {

IterationSchedule NaiveSubStreamIteration(const TrainGraph& graph) {
  IterationSchedule sched;
  for (const TrainOp& op : graph.ConventionalBackprop()) {
    if (op.type == TrainOpType::kWeightGrad) {
      sched.ops.push_back({op, kSubStream, -1});
      sched.ops.push_back({{TrainOpType::kWeightUpdate, op.layer}, kSubStream, -1});
    } else {
      sched.ops.push_back({op, kMainStream, -1});
    }
  }
  for (const TrainOp& op : graph.Forward()) {
    sched.ops.push_back({op, kMainStream, -1});
  }
  return sched;
}

TrainIssuePlan BuildTrainIssuePlan(const NnModel& model,
                                   const IterationSchedule& schedule,
                                   const CostModel& cost, int iterations,
                                   StreamId main_stream, StreamId sub_stream,
                                   bool label_items) {
  OOBP_CHECK_GT(iterations, 0);
  const int L = model.num_layers();

  // Kernel costs depend only on the scheduled op, not the iteration index:
  // compute them once per schedule position instead of once per issued item.
  std::vector<KernelCost> op_cost(schedule.ops.size());
  for (size_t p = 0; p < schedule.ops.size(); ++p) {
    op_cost[p] =
        cost.Cost(model.layers[schedule.ops[p].op.layer], schedule.ops[p].op.type);
  }

  // Build the issue sequence for all iterations with full data dependencies.
  TrainIssuePlan plan;
  std::vector<IssueItem>& items = plan.items;
  items.reserve(schedule.ops.size() * iterations);
  plan.iter_last_item.assign(iterations, -1);
  constexpr int kNone = -1;
  std::vector<int> fwd_item(L, kNone), dgrad_item(L, kNone),
      wgrad_item(L, kNone), update_item(L, kNone);
  std::vector<int> prev_fwd_item(L, kNone);
  std::vector<int> sched_to_item(schedule.ops.size(), kNone);

  for (int t = 0; t < iterations; ++t) {
    std::fill(fwd_item.begin(), fwd_item.end(), kNone);
    std::fill(dgrad_item.begin(), dgrad_item.end(), kNone);
    std::fill(wgrad_item.begin(), wgrad_item.end(), kNone);
    std::fill(update_item.begin(), update_item.end(), kNone);
    std::fill(sched_to_item.begin(), sched_to_item.end(), kNone);

    for (size_t p = 0; p < schedule.ops.size(); ++p) {
      const ScheduledOp& s = schedule.ops[p];
      const KernelCost& kc = op_cost[p];

      IssueItem item;
      item.stream = s.stream == kSubStream ? sub_stream : main_stream;
      if (label_items) {
        // Labels only feed trace events; untraced runs skip the per-item
        // string formatting entirely.
        item.name = StrFormat("%s[%s]#%d", TrainOpTypeName(s.op.type),
                              model.layers[s.op.layer].name.c_str(), t);
        item.category = TrainOpTypeName(s.op.type);
      }
      item.solo_duration = kc.duration;
      item.thread_blocks = kc.thread_blocks;
      item.issue_latency = kc.issue_latency;

      const int i = s.op.layer;
      switch (s.op.type) {
        case TrainOpType::kForward:
          if (i > 0 && fwd_item[i - 1] != kNone) {
            item.AddDep(fwd_item[i - 1]);
          }
          if (update_item[i] != kNone) {
            item.AddDep(update_item[i]);
          }
          break;
        case TrainOpType::kOutputGrad:
          if (i + 1 < L && dgrad_item[i + 1] != kNone) {
            item.AddDep(dgrad_item[i + 1]);
          } else if (i + 1 >= L && prev_fwd_item[L - 1] != kNone) {
            // Loss gradient: available once the previous iteration's forward
            // pass (and loss) completed.
            item.AddDep(prev_fwd_item[L - 1]);
          }
          break;
        case TrainOpType::kWeightGrad:
          if (i + 1 < L) {
            OOBP_CHECK_NE(dgrad_item[i + 1], kNone)
                << "dW[" << i << "] issued before dO[" << i + 1 << "]";
            item.AddDep(dgrad_item[i + 1]);
          } else if (prev_fwd_item[L - 1] != kNone) {
            item.AddDep(prev_fwd_item[L - 1]);
          }
          if (s.wait_for_index >= 0) {
            const int pinned = sched_to_item[s.wait_for_index];
            OOBP_CHECK_NE(pinned, kNone);
            item.AddDep(pinned);
          }
          break;
        case TrainOpType::kWeightUpdate:
          OOBP_CHECK_NE(wgrad_item[i], kNone);
          item.AddDep(wgrad_item[i]);
          break;
      }

      const int item_index = static_cast<int>(items.size());
      sched_to_item[p] = item_index;
      switch (s.op.type) {
        case TrainOpType::kForward:
          fwd_item[i] = item_index;
          break;
        case TrainOpType::kOutputGrad:
          dgrad_item[i] = item_index;
          break;
        case TrainOpType::kWeightGrad:
          wgrad_item[i] = item_index;
          break;
        case TrainOpType::kWeightUpdate:
          update_item[i] = item_index;
          break;
      }
      items.push_back(std::move(item));
    }
    prev_fwd_item = fwd_item;
    plan.iter_last_item[t] = static_cast<int>(items.size()) - 1;
  }
  return plan;
}

std::vector<TimeNs> TrainIterationEndTimes(
    const Gpu& gpu, const std::vector<KernelId>& item_kernel,
    const std::vector<int>& iter_last_item) {
  const int iterations = static_cast<int>(iter_last_item.size());
  std::vector<TimeNs> iter_end(iterations, 0);
  int t = 0;
  for (size_t index = 0; index < item_kernel.size(); ++index) {
    while (static_cast<int>(index) > iter_last_item[t]) {
      ++t;
    }
    iter_end[t] = std::max(iter_end[t], gpu.CompletionTime(item_kernel[index]));
  }
  return iter_end;
}

SingleGpuEngine::SingleGpuEngine(SingleGpuConfig config)
    : config_(std::move(config)) {
  OOBP_CHECK_GT(config_.measured_iterations, 0);
}

TrainMetrics SingleGpuEngine::Run(const NnModel& model,
                                  const IterationSchedule& schedule,
                                  TraceRecorder* trace) const {
  const CostModel cost(config_.gpu, config_.profile);
  const int iterations = 1 + config_.measured_iterations;  // 1 warm-up

  SimEngine engine;
  Gpu gpu(&engine, config_.gpu, trace, /*trace_track_base=*/0);
  const StreamId main_stream = gpu.CreateStream(/*priority=*/0);
  const StreamId sub_stream = gpu.CreateStream(/*priority=*/1);
  CpuLauncher launcher(&engine, &gpu,
                       config_.precompiled_issue ? CpuLauncher::Mode::kPrecompiled
                                                 : CpuLauncher::Mode::kPerOp,
                       config_.profile.graph_launch_latency, trace,
                       /*issue_track=*/100, config_.profile.issue_queue_depth);

  TrainIssuePlan plan =
      BuildTrainIssuePlan(model, schedule, cost, iterations, main_stream,
                          sub_stream, /*label_items=*/trace != nullptr);

  // Run to completion, tracking per-item kernel ids for iteration timing.
  std::vector<KernelId> item_kernel(plan.items.size(), -1);
  launcher.Launch(std::move(plan.items), [&](size_t index, KernelId id) {
    item_kernel[index] = id;
  });
  engine.Run();
  OOBP_CHECK_EQ(gpu.kernels_completed(), item_kernel.size());

  const std::vector<TimeNs> iter_end =
      TrainIterationEndTimes(gpu, item_kernel, plan.iter_last_item);

  TrainMetrics metrics;
  const TimeNs window = iter_end[iterations - 1] - iter_end[0];
  metrics.iteration_time = window / config_.measured_iterations;
  metrics.throughput =
      static_cast<double>(model.batch) / ToSec(metrics.iteration_time);
  const double capacity = static_cast<double>(config_.gpu.slot_capacity());
  if (window > 0) {
    metrics.gpu_utilization =
        gpu.SmBusyIntegral() / (capacity * static_cast<double>(iter_end[iterations - 1]));
  }

  // Memory: schedule-dependent activation peak plus the static base, under
  // the framework's allocator overhead.
  const MemoryTimeline mem =
      EstimateBackpropMemory(model, schedule.MergedOrder());
  metrics.peak_memory_bytes = static_cast<int64_t>(
      static_cast<double>(mem.peak_total()) * config_.profile.allocator_overhead);
  metrics.oom = metrics.peak_memory_bytes > config_.gpu.mem_bytes;
  return metrics;
}

}  // namespace oobp
