#include "src/runtime/single_gpu_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/core/memory_model.h"
#include "src/hw/cpu_launcher.h"
#include "src/hw/gpu.h"
#include "src/sim/engine.h"

namespace oobp {

IterationSchedule NaiveSubStreamIteration(const TrainGraph& graph) {
  IterationSchedule sched;
  for (const TrainOp& op : graph.ConventionalBackprop()) {
    if (op.type == TrainOpType::kWeightGrad) {
      sched.ops.push_back({op, kSubStream, -1});
      sched.ops.push_back({{TrainOpType::kWeightUpdate, op.layer}, kSubStream, -1});
    } else {
      sched.ops.push_back({op, kMainStream, -1});
    }
  }
  for (const TrainOp& op : graph.Forward()) {
    sched.ops.push_back({op, kMainStream, -1});
  }
  return sched;
}

TrainIssuePlan BuildTrainIssuePlan(const NnModel& model,
                                   const IterationSchedule& schedule,
                                   const CostModel& cost, int iterations,
                                   StreamId main_stream, StreamId sub_stream,
                                   bool label_items) {
  OOBP_CHECK_GT(iterations, 0);
  const int L = model.num_layers();

  // Kernel costs depend only on the scheduled op, not the iteration index:
  // compute them once per schedule position instead of once per issued item.
  std::vector<KernelCost> op_cost(schedule.ops.size());
  for (size_t p = 0; p < schedule.ops.size(); ++p) {
    op_cost[p] =
        cost.Cost(model.layers[schedule.ops[p].op.layer], schedule.ops[p].op.type);
  }

  // Build the issue sequence for all iterations with full data dependencies.
  TrainIssuePlan plan;
  std::vector<IssueItem>& items = plan.items;
  items.reserve(schedule.ops.size() * iterations);
  plan.iter_last_item.assign(iterations, -1);
  constexpr int kNone = -1;
  std::vector<int> fwd_item(L, kNone), dgrad_item(L, kNone),
      wgrad_item(L, kNone), update_item(L, kNone);
  std::vector<int> prev_fwd_item(L, kNone);
  std::vector<int> sched_to_item(schedule.ops.size(), kNone);

  for (int t = 0; t < iterations; ++t) {
    std::fill(fwd_item.begin(), fwd_item.end(), kNone);
    std::fill(dgrad_item.begin(), dgrad_item.end(), kNone);
    std::fill(wgrad_item.begin(), wgrad_item.end(), kNone);
    std::fill(update_item.begin(), update_item.end(), kNone);
    std::fill(sched_to_item.begin(), sched_to_item.end(), kNone);

    for (size_t p = 0; p < schedule.ops.size(); ++p) {
      const ScheduledOp& s = schedule.ops[p];
      const KernelCost& kc = op_cost[p];

      IssueItem item;
      item.stream = s.stream == kSubStream ? sub_stream : main_stream;
      if (label_items) {
        // Labels only feed trace events; untraced runs skip the per-item
        // string formatting entirely.
        item.name = StrFormat("%s[%s]#%d", TrainOpTypeName(s.op.type),
                              model.layers[s.op.layer].name.c_str(), t);
        item.category = TrainOpTypeName(s.op.type);
      }
      item.solo_duration = kc.duration;
      item.thread_blocks = kc.thread_blocks;
      item.issue_latency = kc.issue_latency;

      const int i = s.op.layer;
      switch (s.op.type) {
        case TrainOpType::kForward:
          if (i > 0 && fwd_item[i - 1] != kNone) {
            item.AddDep(fwd_item[i - 1]);
          }
          if (update_item[i] != kNone) {
            item.AddDep(update_item[i]);
          }
          break;
        case TrainOpType::kOutputGrad:
          if (i + 1 < L && dgrad_item[i + 1] != kNone) {
            item.AddDep(dgrad_item[i + 1]);
          } else if (i + 1 >= L && prev_fwd_item[L - 1] != kNone) {
            // Loss gradient: available once the previous iteration's forward
            // pass (and loss) completed.
            item.AddDep(prev_fwd_item[L - 1]);
          }
          break;
        case TrainOpType::kWeightGrad:
          if (i + 1 < L) {
            OOBP_CHECK_NE(dgrad_item[i + 1], kNone)
                << "dW[" << i << "] issued before dO[" << i + 1 << "]";
            item.AddDep(dgrad_item[i + 1]);
          } else if (prev_fwd_item[L - 1] != kNone) {
            item.AddDep(prev_fwd_item[L - 1]);
          }
          if (s.wait_for_index >= 0) {
            const int pinned = sched_to_item[s.wait_for_index];
            OOBP_CHECK_NE(pinned, kNone);
            item.AddDep(pinned);
          }
          break;
        case TrainOpType::kWeightUpdate:
          OOBP_CHECK_NE(wgrad_item[i], kNone);
          item.AddDep(wgrad_item[i]);
          break;
      }

      const int item_index = static_cast<int>(items.size());
      sched_to_item[p] = item_index;
      switch (s.op.type) {
        case TrainOpType::kForward:
          fwd_item[i] = item_index;
          break;
        case TrainOpType::kOutputGrad:
          dgrad_item[i] = item_index;
          break;
        case TrainOpType::kWeightGrad:
          wgrad_item[i] = item_index;
          break;
        case TrainOpType::kWeightUpdate:
          update_item[i] = item_index;
          break;
      }
      items.push_back(std::move(item));
    }
    prev_fwd_item = fwd_item;
    plan.iter_last_item[t] = static_cast<int>(items.size()) - 1;
  }
  return plan;
}

std::vector<TimeNs> TrainIterationEndTimes(
    const Gpu& gpu, const std::vector<KernelId>& item_kernel,
    const std::vector<int>& iter_last_item) {
  const int iterations = static_cast<int>(iter_last_item.size());
  std::vector<TimeNs> iter_end(iterations, 0);
  int t = 0;
  for (size_t index = 0; index < item_kernel.size(); ++index) {
    while (static_cast<int>(index) > iter_last_item[t]) {
      ++t;
    }
    iter_end[t] = std::max(iter_end[t], gpu.CompletionTime(item_kernel[index]));
  }
  return iter_end;
}

SingleGpuEngine::SingleGpuEngine(SingleGpuConfig config)
    : config_(std::move(config)) {
  OOBP_CHECK_GT(config_.measured_iterations, 0);
}

namespace {

// Outcome of one event simulation of `iterations` training iterations.
// `item_start` / `item_done` / `increments` are filled only for recorded
// (replay-candidate) runs; item index = iteration * ops_per_iter + position.
struct TrainSimOutcome {
  std::vector<TimeNs> iter_end;
  double busy_integral = 0.0;
  std::vector<TimeNs> item_start;
  std::vector<TimeNs> item_done;
  std::vector<BusyIncrement> increments;
};

TrainSimOutcome SimulateTraining(const SingleGpuConfig& config,
                                 const CostModel& cost, const NnModel& model,
                                 const IterationSchedule& schedule,
                                 int iterations, TraceRecorder* trace,
                                 bool record) {
  TrainSimOutcome out;
  SimEngine engine;
  Gpu gpu(&engine, config.gpu, trace, /*trace_track_base=*/0);
  if (record) {
    gpu.SetBusyRecorder(&out.increments);
  }
  const StreamId main_stream = gpu.CreateStream(/*priority=*/0);
  const StreamId sub_stream = gpu.CreateStream(/*priority=*/1);
  CpuLauncher launcher(&engine, &gpu,
                       config.precompiled_issue ? CpuLauncher::Mode::kPrecompiled
                                                : CpuLauncher::Mode::kPerOp,
                       config.profile.graph_launch_latency, trace,
                       /*issue_track=*/100, config.profile.issue_queue_depth);

  TrainIssuePlan plan =
      BuildTrainIssuePlan(model, schedule, cost, iterations, main_stream,
                          sub_stream, /*label_items=*/trace != nullptr);

  // Run to completion, tracking per-item kernel ids for iteration timing.
  std::vector<KernelId> item_kernel(plan.items.size(), -1);
  launcher.Launch(std::move(plan.items), [&](size_t index, KernelId id) {
    item_kernel[index] = id;
  });
  engine.Run();
  OOBP_CHECK_EQ(gpu.kernels_completed(), item_kernel.size());

  out.iter_end = TrainIterationEndTimes(gpu, item_kernel, plan.iter_last_item);
  out.busy_integral = gpu.SmBusyIntegral();
  if (record) {
    out.item_start.reserve(item_kernel.size());
    out.item_done.reserve(item_kernel.size());
    for (KernelId id : item_kernel) {
      out.item_start.push_back(gpu.StartTime(id));
      out.item_done.push_back(gpu.CompletionTime(id));
    }
  }
  return out;
}

// Truncated-window length: warm-up (iteration 0) + the detection window
// (iterations 1..3) + a guard tail. The guard covers end effects that make
// the *last* iterations of any run differ from steady state: with no
// successor kernels fluid contention drops, and the launcher's bounded issue
// queue stops exerting back-pressure once fewer than `issue_queue_depth`
// items remain un-issued — about ceil(depth / ops_per_iter) iterations of
// lookahead, plus slack. Detection therefore only inspects iterations that
// sit at least 2 + lookahead iterations before the truncated stream's end.
int ReplayWindowIterations(int issue_queue_depth, size_t ops_per_iter) {
  const size_t depth =
      issue_queue_depth > 0 ? static_cast<size_t>(issue_queue_depth) : 0;
  const size_t lookahead = (depth + ops_per_iter - 1) / ops_per_iter;
  return static_cast<int>(4 + 2 + lookahead);
}

// Proves the truncated run is iteration-periodic over iterations 1..3: every
// per-position kernel start and completion time advances by exactly the same
// integer period P, the iteration boundaries advance by P, and the
// busy-integral increment blocks of iterations 2 and 3 — (E[1], E[2]] and
// (E[2], E[3]] — are identical term by term (time shifted by P, values
// bitwise equal; for finite nonzero doubles == is bitwise).
bool DetectSteadyPeriod(const TrainSimOutcome& out, size_t ops,
                        TimeNs* period) {
  const std::vector<TimeNs>& E = out.iter_end;
  const TimeNs p = E[3] - E[2];
  if (p <= 0 || E[2] - E[1] != p) {
    return false;
  }
  for (size_t q = 0; q < ops; ++q) {
    const size_t i1 = 1 * ops + q, i2 = 2 * ops + q, i3 = 3 * ops + q;
    if (out.item_done[i2] - out.item_done[i1] != p ||
        out.item_done[i3] - out.item_done[i2] != p ||
        out.item_start[i2] - out.item_start[i1] != p ||
        out.item_start[i3] - out.item_start[i2] != p) {
      return false;
    }
  }
  // Increment times are non-decreasing (recorded in event order), so the
  // three block boundaries are prefix scans.
  const std::vector<BusyIncrement>& inc = out.increments;
  size_t a = 0;
  while (a < inc.size() && inc[a].time <= E[1]) ++a;
  size_t b = a;
  while (b < inc.size() && inc[b].time <= E[2]) ++b;
  size_t c = b;
  while (c < inc.size() && inc[c].time <= E[3]) ++c;
  if (b - a != c - b) {
    return false;
  }
  for (size_t k = 0; k < b - a; ++k) {
    if (inc[b + k].time - inc[a + k].time != p ||
        inc[b + k].value != inc[a + k].value) {
      return false;
    }
  }
  *period = p;
  return true;
}

// Rebuilds the busy integral the full simulation would have computed, in its
// exact addition order: every increment up to E[3], then the steady block
// (E[2], E[3]] once per extrapolated iteration, then the truncated run's
// tail. A left fold in this order matches the full run's accumulation
// sequence because its extra iterations insert exactly that block (time
// shifted) between the detection window and the stream's final iterations —
// order-preserving insertion keeps the floating-point sum bit-identical.
double RefoldBusyIntegral(const std::vector<BusyIncrement>& inc, TimeNs e2,
                          TimeNs e3, int64_t extra_iterations) {
  double total = 0.0;
  size_t i = 0;
  size_t block_begin = 0;
  for (; i < inc.size() && inc[i].time <= e3; ++i) {
    if (inc[i].time <= e2) {
      ++block_begin;
    }
    total += inc[i].value;
  }
  const size_t block_end = i;
  for (int64_t r = 0; r < extra_iterations; ++r) {
    for (size_t k = block_begin; k < block_end; ++k) {
      total += inc[k].value;
    }
  }
  for (; i < inc.size(); ++i) {
    total += inc[i].value;
  }
  return total;
}

}  // namespace

TrainMetrics SingleGpuEngine::Run(const NnModel& model,
                                  const IterationSchedule& schedule,
                                  TraceRecorder* trace,
                                  ReplayStats* replay_stats) const {
  const CostModel cost(config_.gpu, config_.profile);
  const int iterations = 1 + config_.measured_iterations;  // 1 warm-up
  const size_t ops = schedule.ops.size();

  ReplayStats local_stats;
  ReplayStats& stats = replay_stats != nullptr ? *replay_stats : local_stats;
  stats = ReplayStats();
  stats.total_iterations = iterations;

  TrainSimOutcome out;
  TimeNs first_end = 0;
  TimeNs final_end = 0;
  double busy = 0.0;
  bool extrapolated = false;

  if (!config_.steady_replay) {
    stats.fallback_reason = "disabled";
  } else if (trace != nullptr) {
    stats.fallback_reason = "traced";
  } else if (ops == 0) {
    stats.fallback_reason = "empty-schedule";
  } else {
    const int window_iters =
        ReplayWindowIterations(config_.profile.issue_queue_depth, ops);
    if (iterations <= window_iters) {
      stats.fallback_reason = "short-run";
    } else {
      stats.attempted = true;
      out = SimulateTraining(config_, cost, model, schedule, window_iters,
                             /*trace=*/nullptr, /*record=*/true);
      TimeNs period = 0;
      if (DetectSteadyPeriod(out, ops, &period)) {
        const int64_t extra = iterations - window_iters;
        stats.replayed = true;
        stats.simulated_iterations = window_iters;
        first_end = out.iter_end[0];
        final_end = out.iter_end[window_iters - 1] + extra * period;
        busy = RefoldBusyIntegral(out.increments, out.iter_end[2],
                                  out.iter_end[3], extra);
        extrapolated = true;
      } else {
        stats.fallback_reason = "aperiodic";
      }
    }
  }
  if (!extrapolated) {
    out = SimulateTraining(config_, cost, model, schedule, iterations, trace,
                           /*record=*/false);
    stats.simulated_iterations = iterations;
    first_end = out.iter_end.front();
    final_end = out.iter_end.back();
    busy = out.busy_integral;
  }

  TrainMetrics metrics;
  const TimeNs window = final_end - first_end;
  metrics.iteration_time = window / config_.measured_iterations;
  metrics.throughput =
      static_cast<double>(model.batch) / ToSec(metrics.iteration_time);
  const double capacity = static_cast<double>(config_.gpu.slot_capacity());
  if (window > 0) {
    metrics.gpu_utilization =
        busy / (capacity * static_cast<double>(final_end));
  }

  // Memory: schedule-dependent activation peak plus the static base, under
  // the framework's allocator overhead.
  const MemoryTimeline mem =
      EstimateBackpropMemory(model, schedule.MergedOrder());
  metrics.peak_memory_bytes = static_cast<int64_t>(
      static_cast<double>(mem.peak_total()) * config_.profile.allocator_overhead);
  metrics.oom = metrics.peak_memory_bytes > config_.gpu.mem_bytes;
  return metrics;
}

}  // namespace oobp
