#include "src/runtime/pipeline_engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/hw/link.h"
#include "src/sim/engine.h"

namespace oobp {

const char* PipelineStrategyName(PipelineStrategy s) {
  switch (s) {
    case PipelineStrategy::kGPipe:
      return "GPipe";
    case PipelineStrategy::kDapple:
      return "DAPPLE";
    case PipelineStrategy::kPipeDream:
      return "PipeDream";
    case PipelineStrategy::kMegatron:
      return "Megatron2";
    case PipelineStrategy::kMegatronFF:
      return "Megatron2+FF";
    case PipelineStrategy::kOooPipe1:
      return "OOO-Pipe1";
    case PipelineStrategy::kOooPipe2:
      return "OOO-Pipe2";
  }
  return "?";
}

PipelineEngine::PipelineEngine(PipelineConfig config)
    : config_(std::move(config)) {
  OOBP_CHECK_GE(config_.num_gpus, 1);
  OOBP_CHECK_GE(config_.num_micro_batches, 1);
  OOBP_CHECK_GE(config_.modulo_group_size, 1);
}

LayerAssignment PipelineEngine::AssignmentFor(const NnModel& micro_model,
                                              PipelineStrategy strategy) const {
  if (strategy == PipelineStrategy::kOooPipe2) {
    return ModuloAllocation(micro_model.num_layers(), config_.num_gpus,
                            config_.modulo_group_size);
  }
  if (strategy == PipelineStrategy::kMegatron ||
      strategy == PipelineStrategy::kMegatronFF) {
    // Interleaved schedule: v chunks of contiguous layers per GPU == modulo
    // allocation at L / (n*v) granularity.
    const int L = micro_model.num_layers();
    const int group = std::max(
        1, L / (config_.num_gpus * std::max(1, config_.megatron_chunks)));
    return ModuloAllocation(L, config_.num_gpus, group);
  }
  const CostModel cost(config_.cluster.gpu, config_.profile);
  std::vector<double> costs;
  costs.reserve(micro_model.layers.size());
  for (const Layer& l : micro_model.layers) {
    costs.push_back(static_cast<double>(
        cost.Cost(l, TrainOpType::kForward).duration +
        cost.Cost(l, TrainOpType::kOutputGrad).duration +
        (l.has_params() ? cost.Cost(l, TrainOpType::kWeightGrad).duration : 0)));
  }
  return BalancedContiguousAllocation(costs, config_.num_gpus);
}

namespace {

enum class PipeOpKind { kFwd = 0, kDgrad = 1, kWgrad = 2 };

constexpr int64_t kNoOp = -1;

// Per-GPU list-scheduling simulator over the pipeline op graph.
class PipeSim {
 public:
  PipeSim(SimEngine* engine, const PipelineConfig& config,
          const NnModel& model, const TrainGraph& graph, const CostModel& cost,
          const LayerAssignment& assignment, PipelineStrategy strategy,
          int iterations, TraceRecorder* trace)
      : engine_(engine),
        config_(config),
        model_(model),
        graph_(graph),
        cost_(cost),
        assignment_(assignment),
        strategy_(strategy),
        iterations_(iterations),
        trace_(trace),
        L_(model.num_layers()),
        M_(config.num_micro_batches) {
    defer_wgrads_ = strategy == PipelineStrategy::kOooPipe1 ||
                    strategy == PipelineStrategy::kOooPipe2 ||
                    strategy == PipelineStrategy::kMegatronFF;
    // Conventional backward is a fused dO+dW operation: the gradient leaves
    // the layer only once both finish. Gradient fast-forwarding (Section 5.2)
    // sends it immediately after dO.
    fast_forward_ = defer_wgrads_;
    backward_preferred_ = strategy == PipelineStrategy::kPipeDream ||
                          strategy == PipelineStrategy::kDapple ||
                          strategy == PipelineStrategy::kMegatron ||
                          strategy == PipelineStrategy::kMegatronFF;
    flush_ = strategy != PipelineStrategy::kPipeDream;
    gpus_.resize(config.num_gpus);
    Build();
  }

  void Start() {
    ReleaseIteration(0);
    for (int g = 0; g < config_.num_gpus; ++g) {
      TryRun(g);
    }
  }

  TimeNs IterEnd(int t) const { return iter_end_[t]; }
  TimeNs compute_busy() const { return compute_busy_; }
  TimeNs comm_busy() const {
    TimeNs total = 0;
    for (const auto& [key, link] : links_) {
      total += link->busy_time();
    }
    return total;
  }
  const std::vector<int64_t>& peak_memory() const { return peak_mem_; }
  const std::vector<TimeNs>& fwd_start() const { return fwd_start_; }
  const std::vector<TimeNs>& wgrad_done() const { return wgrad_done_; }

  // Steady-state deltas per iteration, valid only after DetectSteadyPeriod
  // returned true for `base`: what one steady iteration adds to each
  // cumulative counter.
  TimeNs SteadyComputeDelta(int base) const {
    return cb_at_iter_[base + 2] - cb_at_iter_[base + 1];
  }
  TimeNs SteadyCommDelta(int base) const {
    return comm_at_iter_[base + 2] - comm_at_iter_[base + 1];
  }

  // Proves the (continuous-mode) truncated run is iteration-periodic over
  // iterations base..base+2: every existing op's completion time advances by
  // exactly the same integer period P, iteration boundaries advance by P,
  // the cumulative compute/communication busy counters advance by a constant
  // per-iteration delta, and per-GPU live/peak memory at the boundaries is
  // unchanged (the memory trajectory repeats and the peak stopped growing).
  // `base` must sit past the pipeline-fill transient (the caller uses
  // num_gpus + lookahead iterations of warm-up).
  bool DetectSteadyPeriod(int base, TimeNs* period) const {
    OOBP_CHECK_GE(base, 1);
    OOBP_CHECK_GE(iterations_, base + 3);
    const size_t b = static_cast<size_t>(base);
    const TimeNs p = iter_end_[b + 2] - iter_end_[b + 1];
    if (p <= 0 || iter_end_[b + 1] - iter_end_[b] != p) {
      return false;
    }
    const size_t per_iter = static_cast<size_t>(M_) * L_ * 3;
    for (size_t q = 0; q < per_iter; ++q) {
      const Op& o1 = ops_[b * per_iter + q];
      const Op& o2 = ops_[(b + 1) * per_iter + q];
      const Op& o3 = ops_[(b + 2) * per_iter + q];
      if (!o1.exists) {
        continue;
      }
      if (o2.done_time - o1.done_time != p ||
          o3.done_time - o2.done_time != p) {
        return false;
      }
    }
    if (cb_at_iter_[b + 1] - cb_at_iter_[b] !=
            cb_at_iter_[b + 2] - cb_at_iter_[b + 1] ||
        comm_at_iter_[b + 1] - comm_at_iter_[b] !=
            comm_at_iter_[b + 2] - comm_at_iter_[b + 1]) {
      return false;
    }
    for (int g = 0; g < config_.num_gpus; ++g) {
      if (live_at_iter_[b + 2][g] != live_at_iter_[b + 1][g] ||
          peak_at_iter_[b + 2][g] != peak_at_iter_[b + 1][g]) {
        return false;
      }
    }
    *period = p;
    return true;
  }

 private:
  struct Op {
    PipeOpKind kind;
    int iter, micro, layer, gpu;
    int deps = 0;
    int64_t priority = 0;
    TimeNs duration = 0;
    TimeNs done_time = -1;  // completion timestamp (replay detection)
    bool done = false;
    bool exists = true;
  };
  struct GpuState {
    bool busy = false;
    std::set<std::pair<int64_t, int>> ready;  // (priority, op index)
    std::set<std::pair<int64_t, int>> pool;   // deferred dW ops
    int fwd_started = 0;
    int bwd_done = 0;
    int owned_layers = 0;
  };

  int OpIndex(int t, int m, int l, PipeOpKind kind) const {
    return ((t * M_ + m) * L_ + l) * 3 + static_cast<int>(kind);
  }

  int64_t PriorityOf(int t, int m, int l, PipeOpKind kind) const {
    const int64_t iter_part = static_cast<int64_t>(t) << 44;
    int64_t phase;
    int64_t key;
    if (kind == PipeOpKind::kFwd) {
      phase = backward_preferred_ ? 1 : 0;
      key = static_cast<int64_t>(m) * L_ + l;
    } else {
      phase = backward_preferred_ ? 0 : 1;
      key = (static_cast<int64_t>(M_ - 1 - m) * L_ + (L_ - 1 - l)) * 2 +
            (kind == PipeOpKind::kDgrad ? 0 : 1);
    }
    return iter_part | (phase << 40) | key;
  }

  void Build() {
    ops_.assign(static_cast<size_t>(iterations_) * M_ * L_ * 3, Op{});
    iter_end_.assign(iterations_, 0);
    cb_at_iter_.assign(iterations_, 0);
    comm_at_iter_.assign(iterations_, 0);
    live_at_iter_.assign(iterations_, {});
    peak_at_iter_.assign(iterations_, {});
    fwd_start_.assign(L_, -1);
    wgrad_done_.assign(L_, -1);
    iter_ops_left_.assign(iterations_, 0);
    peak_mem_.assign(config_.num_gpus, 0);
    live_mem_.assign(config_.num_gpus, 0);
    act_consumers_.assign(ops_.size() / 3, 0);
    grad_consumers_.assign(ops_.size() / 3, 0);

    for (int g = 0; g < config_.num_gpus; ++g) {
      gpus_[g].owned_layers =
          static_cast<int>(LayersOf(assignment_, g).size());
    }
    // Static per-GPU memory: weights, gradients, optimizer state (+ stashed
    // versions for PipeDream).
    const int versions =
        strategy_ == PipelineStrategy::kPipeDream ? config_.num_gpus : 1;
    base_mem_.assign(config_.num_gpus, 0);
    for (int l = 0; l < L_; ++l) {
      base_mem_[assignment_[l]] +=
          model_.layers[l].param_bytes * (2 + versions);
    }
    for (int g = 0; g < config_.num_gpus; ++g) {
      live_mem_[g] = base_mem_[g];
      peak_mem_[g] = live_mem_[g];
    }

    for (int t = 0; t < iterations_; ++t) {
      for (int m = 0; m < M_; ++m) {
        for (int l = 0; l < L_; ++l) {
          const Layer& layer = model_.layers[l];
          for (PipeOpKind kind :
               {PipeOpKind::kFwd, PipeOpKind::kDgrad, PipeOpKind::kWgrad}) {
            Op& op = ops_[OpIndex(t, m, l, kind)];
            op.kind = kind;
            op.iter = t;
            op.micro = m;
            op.layer = l;
            op.gpu = assignment_[l];
            op.priority = PriorityOf(t, m, l, kind);
            if (kind == PipeOpKind::kWgrad && !graph_.HasWgrad(l)) {
              op.exists = false;
              op.done = true;
              continue;
            }
            if (kind == PipeOpKind::kDgrad && l == 0 &&
                config_.unit_time > 0) {
              // Unit-time mode follows the paper's figures: layer 0 computes
              // no input gradient.
              op.exists = false;
              op.done = true;
              continue;
            }
            const TrainOpType ot = kind == PipeOpKind::kFwd
                                       ? TrainOpType::kForward
                                       : (kind == PipeOpKind::kDgrad
                                              ? TrainOpType::kOutputGrad
                                              : TrainOpType::kWeightGrad);
            op.duration = config_.unit_time > 0
                              ? config_.unit_time
                              : cost_.Cost(layer, ot).duration +
                                    cost_.gpu().kernel_exec_overhead;
            // Dependencies: F needs its input activation (except layer 0,
            // which reads the micro-batch); dO/dW need the incoming
            // gradient. Iteration barriers for flush strategies are added
            // at release time.
            op.deps = (kind == PipeOpKind::kFwd && l == 0) ? 0 : 1;
            if (kind == PipeOpKind::kFwd && l == 0 && flush_ && t > 0) {
              op.deps = 1;  // released by the previous iteration's flush
            }
            ++iter_ops_left_[t];
          }
        }
      }
    }
    // Per-iteration update barrier time: the slowest GPU's weight updates
    // (free in unit-time mode — the paper's unit timelines do not count
    // updates).
    update_time_ = 0;
    if (config_.unit_time <= 0) {
      std::vector<TimeNs> per_gpu_update(config_.num_gpus, 0);
      for (int l = 0; l < L_; ++l) {
        if (graph_.HasWgrad(l)) {
          per_gpu_update[assignment_[l]] +=
              cost_.Cost(model_.layers[l], TrainOpType::kWeightUpdate).duration;
        }
      }
      for (TimeNs t : per_gpu_update) {
        update_time_ = std::max(update_time_, t);
      }
    }
  }

  // Makes the zero-dep roots of iteration t schedulable.
  void ReleaseIteration(int t) {
    if (t >= iterations_) {
      return;
    }
    for (int m = 0; m < M_; ++m) {
      const int idx = OpIndex(t, m, 0, PipeOpKind::kFwd);
      if (t == 0 || !flush_) {
        if (ops_[idx].deps == 0) {
          MakeReady(idx);
        }
      } else {
        SatisfyDep(idx);
      }
    }
    if (!flush_ && t + 1 < iterations_) {
      // Continuous mode: all iterations' roots are schedulable up front;
      // priorities and the in-flight cap pace them.
      ReleaseIteration(t + 1);
    }
  }

  void SatisfyDep(int idx) {
    Op& op = ops_[idx];
    OOBP_CHECK_GT(op.deps, 0);
    if (--op.deps == 0) {
      MakeReady(idx);
    }
  }

  void MakeReady(int idx) {
    const Op& op = ops_[idx];
    GpuState& gs = gpus_[op.gpu];
    if (op.kind == PipeOpKind::kWgrad && defer_wgrads_) {
      // Section 6: with reverse-first-k active, the first k layers' weight
      // gradients jump the pool in ascending order so their data-parallel
      // synchronizations begin as early as possible.
      int64_t pool_priority = op.priority;
      if (op.layer < config_.reverse_first_k) {
        pool_priority = (static_cast<int64_t>(op.iter) << 44) | op.layer;
      }
      gs.pool.emplace(pool_priority, idx);
    } else {
      gs.ready.emplace(op.priority, idx);
    }
    TryRun(op.gpu);
  }

  // PipeDream bounds in-flight micro-batches per stage to the number of
  // stashed weight versions.
  bool AdmitForward(const GpuState& gs) const {
    if (flush_) {
      return true;
    }
    const int cap = config_.num_gpus * std::max(1, gs.owned_layers);
    return gs.fwd_started - gs.bwd_done < cap;
  }

  void TryRun(int g) {
    GpuState& gs = gpus_[g];
    if (gs.busy) {
      return;
    }
    int chosen = -1;
    for (const auto& [prio, idx] : gs.ready) {
      if (ops_[idx].kind == PipeOpKind::kFwd && !AdmitForward(gs)) {
        continue;
      }
      chosen = idx;
      gs.ready.erase({prio, idx});
      break;
    }
    if (chosen < 0 && !gs.pool.empty()) {
      chosen = gs.pool.begin()->second;
      gs.pool.erase(gs.pool.begin());
    }
    if (chosen < 0) {
      return;
    }
    Op& op = ops_[chosen];
    gs.busy = true;
    if (op.kind == PipeOpKind::kFwd) {
      ++gs.fwd_started;
      if (op.iter == 0 &&
          (fwd_start_[op.layer] < 0 || engine_->now() < fwd_start_[op.layer])) {
        fwd_start_[op.layer] = engine_->now();
      }
    }
    compute_busy_ += op.duration;
    const TimeNs start = engine_->now();
    engine_->ScheduleAfter(op.duration, [this, chosen, start] {
      if (trace_ != nullptr) {
        const Op& done_op = ops_[chosen];
        TraceEvent ev;
        const char* kind_name = done_op.kind == PipeOpKind::kFwd
                                    ? "F"
                                    : (done_op.kind == PipeOpKind::kDgrad
                                           ? "dO"
                                           : "dW");
        ev.name = StrFormat("%s[%d]%c#%d", kind_name, done_op.layer,
                            'A' + done_op.micro % 26, done_op.iter);
        ev.category = done_op.kind == PipeOpKind::kFwd ? "fwd"
                      : done_op.kind == PipeOpKind::kDgrad ? "dO" : "dW";
        ev.track = done_op.gpu;
        ev.start = start;
        ev.duration = engine_->now() - start;
        trace_->Add(ev);
      }
      OnOpDone(chosen);
    });
  }

  Link* LinkFor(int src, int dst) {
    const auto key = std::make_pair(src, dst);
    auto it = links_.find(key);
    if (it != links_.end()) {
      return it->second.get();
    }
    LinkSpec spec = config_.use_link_override
                        ? config_.link_override
                        : config_.cluster.LinkBetween(src, dst);
    auto link = std::make_unique<Link>(engine_, spec, /*chunk_bytes=*/256 << 10,
                                       trace_,
                                       /*track=*/100 + src * 64 + dst);
    Link* raw = link.get();
    links_.emplace(key, std::move(link));
    return raw;
  }

  void AddMem(int g, int64_t bytes) {
    live_mem_[g] += bytes;
    peak_mem_[g] = std::max(peak_mem_[g], live_mem_[g]);
  }

  // Delivers layer l's output activation for (t, m) to the owner of l+1.
  void DeliverActivation(int t, int m, int l) {
    const int src = assignment_[l];
    const int dst = assignment_[l + 1];
    const int64_t bytes = model_.layers[l].output_bytes;
    // The activation is retained until layer l+1's backward no longer needs
    // it: dW(l+1) when it exists, dO(l+1) otherwise (one consumer either
    // way; the forward read does not release it).
    act_consumers_[OpIndex(t, m, l, PipeOpKind::kFwd) / 3] = 1;
    if (src == dst) {
      AddMem(dst, bytes);
      SatisfyDep(OpIndex(t, m, l + 1, PipeOpKind::kFwd));
      return;
    }
    AddMem(src, bytes);  // send buffer
    LinkFor(src, dst)->Transfer(
        bytes, /*priority=*/0, StrFormat("act[%d]%c#%d", l, 'A' + m % 26, t),
        [this, t, m, l, src, dst, bytes] {
          AddMem(src, -bytes);
          AddMem(dst, bytes);
          SatisfyDep(OpIndex(t, m, l + 1, PipeOpKind::kFwd));
        });
  }

  // Delivers the gradient flowing into layer l for (t, m) to l's owner.
  void DeliverGradient(int t, int m, int l, int src) {
    const int dst = assignment_[l];
    const int64_t bytes = model_.layers[l].output_bytes;
    const bool has_dgrad = ops_[OpIndex(t, m, l, PipeOpKind::kDgrad)].exists;
    grad_consumers_[OpIndex(t, m, l, PipeOpKind::kFwd) / 3] =
        (has_dgrad ? 1 : 0) + (graph_.HasWgrad(l) ? 1 : 0);
    auto arrive = [this, t, m, l, dst, bytes, has_dgrad] {
      AddMem(dst, bytes);
      if (has_dgrad) {
        SatisfyDep(OpIndex(t, m, l, PipeOpKind::kDgrad));
      }
      if (graph_.HasWgrad(l)) {
        SatisfyDep(OpIndex(t, m, l, PipeOpKind::kWgrad));
      }
    };
    if (src == dst) {
      arrive();
      return;
    }
    LinkFor(src, dst)->Transfer(
        bytes, /*priority=*/0, StrFormat("grad[%d]%c#%d", l, 'A' + m % 26, t),
        std::move(arrive));
  }

  void ConsumeActivation(int t, int m, int producer_layer) {
    const int slot = OpIndex(t, m, producer_layer, PipeOpKind::kFwd) / 3;
    OOBP_CHECK_GT(act_consumers_[slot], 0);
    if (--act_consumers_[slot] == 0) {
      AddMem(assignment_[producer_layer + 1],
             -model_.layers[producer_layer].output_bytes);
    }
  }

  void ConsumeGradient(int t, int m, int l) {
    const int slot = OpIndex(t, m, l, PipeOpKind::kFwd) / 3;
    OOBP_CHECK_GT(grad_consumers_[slot], 0);
    if (--grad_consumers_[slot] == 0) {
      AddMem(assignment_[l], -model_.layers[l].output_bytes);
    }
  }

  void OnOpDone(int idx) {
    Op& op = ops_[idx];
    op.done = true;
    op.done_time = engine_->now();
    GpuState& gs = gpus_[op.gpu];
    gs.busy = false;

    const int t = op.iter;
    const int m = op.micro;
    const int l = op.layer;
    switch (op.kind) {
      case PipeOpKind::kFwd:
        AddMem(op.gpu, model_.layers[l].stash_bytes);
        if (l + 1 < L_) {
          DeliverActivation(t, m, l);
        } else {
          // Loss: the gradient into the last layer materializes locally.
          DeliverGradient(t, m, L_ - 1, op.gpu);
        }
        break;
      case PipeOpKind::kDgrad:
        ++gs.bwd_done;
        AddMem(op.gpu, -model_.layers[l].stash_bytes);
        if (l > 0) {
          // Non-existent dW ops are marked done at build time, so this test
          // also covers parameter-free layers.
          if (fast_forward_ ||
              ops_[OpIndex(t, m, l, PipeOpKind::kWgrad)].done) {
            DeliverGradient(t, m, l - 1, op.gpu);
          }
          if (!graph_.HasWgrad(l)) {
            // A parameter-free layer releases its input activation here.
            ConsumeActivation(t, m, l - 1);
          }
        }
        ConsumeGradient(t, m, l);
        break;
      case PipeOpKind::kWgrad:
        if (t == 0) {
          wgrad_done_[l] = std::max(wgrad_done_[l], engine_->now());
        }
        if (!fast_forward_ && l > 0 &&
            ops_[OpIndex(t, m, l, PipeOpKind::kDgrad)].done) {
          DeliverGradient(t, m, l - 1, op.gpu);
        }
        if (l > 0) {
          ConsumeActivation(t, m, l - 1);
        }
        ConsumeGradient(t, m, l);
        break;
    }

    if (--iter_ops_left_[t] == 0) {
      // Iteration complete; apply weight updates (barriered for flush
      // strategies) and release the next iteration.
      const int done_iter = t;
      engine_->ScheduleAfter(flush_ ? update_time_ : 0, [this, done_iter] {
        iter_end_[done_iter] = engine_->now();
        // Iteration-boundary snapshots of every cumulative counter the
        // result reads; replay detection compares consecutive deltas and
        // extrapolation adds the steady delta once per skipped iteration.
        cb_at_iter_[done_iter] = compute_busy_;
        comm_at_iter_[done_iter] = comm_busy();
        live_at_iter_[done_iter] = live_mem_;
        peak_at_iter_[done_iter] = peak_mem_;
        if (flush_) {
          ReleaseIteration(done_iter + 1);
        }
      });
    }
    TryRun(op.gpu);
  }

  SimEngine* engine_;
  const PipelineConfig& config_;
  const NnModel& model_;
  const TrainGraph& graph_;
  const CostModel& cost_;
  const LayerAssignment& assignment_;
  PipelineStrategy strategy_;
  int iterations_;
  TraceRecorder* trace_;
  const int L_;
  const int M_;

  bool defer_wgrads_ = false;
  bool fast_forward_ = false;
  bool backward_preferred_ = false;
  bool flush_ = true;
  TimeNs update_time_ = 0;
  TimeNs compute_busy_ = 0;

  std::vector<Op> ops_;
  std::vector<GpuState> gpus_;
  std::vector<int> iter_ops_left_;
  std::vector<TimeNs> iter_end_;
  std::vector<TimeNs> cb_at_iter_;   // compute_busy_ at each iteration end
  std::vector<TimeNs> comm_at_iter_; // comm_busy() at each iteration end
  std::vector<std::vector<int64_t>> live_at_iter_;
  std::vector<std::vector<int64_t>> peak_at_iter_;
  std::map<std::pair<int, int>, std::unique_ptr<Link>> links_;
  std::vector<int> act_consumers_;   // keyed by (t, m, producer layer)
  std::vector<int> grad_consumers_;  // keyed by (t, m, target layer)
  std::vector<int64_t> live_mem_;
  std::vector<int64_t> base_mem_;
  std::vector<int64_t> peak_mem_;
  std::vector<TimeNs> fwd_start_;
  std::vector<TimeNs> wgrad_done_;
};

}  // namespace

PipelineResult PipelineEngine::Run(const NnModel& micro_model,
                                   PipelineStrategy strategy,
                                   TraceRecorder* trace,
                                   ReplayStats* replay_stats) const {
  const TrainGraph graph(&micro_model);
  const CostModel cost(config_.cluster.gpu, config_.profile);
  const LayerAssignment assignment = AssignmentFor(micro_model, strategy);
  OOBP_CHECK(AssignmentCoversAllGpus(assignment, config_.num_gpus))
      << "a GPU owns no layers: use fewer GPUs or a finer model";

  const bool continuous = strategy == PipelineStrategy::kPipeDream;
  const int iterations = continuous ? 1 + config_.measured_iterations : 1;

  ReplayStats local_stats;
  ReplayStats& stats = replay_stats != nullptr ? *replay_stats : local_stats;
  stats = ReplayStats();
  stats.total_iterations = iterations;

  // Replay window: pipeline-fill warm-up + 3 detection iterations + guard
  // tail. The pipe takes about num_gpus iterations to fill, and the
  // in-flight cap (AdmitForward) bounds how far ahead of the backward
  // frontier the scheduler can issue forwards — num_gpus * owned_layers ops
  // per GPU, about num_gpus * max_owned / M iterations of lookahead. The
  // detection block therefore starts after max(num_gpus, lookahead) + 1
  // warm-up iterations (past every fill/admission transient) and is followed
  // by lookahead + 2 guard iterations, so its iterations behave exactly like
  // full-run middle iterations (end effects cannot reach back into them).
  int window_iters = 0;
  int detect_base = 0;
  if (continuous) {
    int max_owned = 1;
    for (int g = 0; g < config_.num_gpus; ++g) {
      max_owned = std::max(
          max_owned, static_cast<int>(LayersOf(assignment, g).size()));
    }
    const int lookahead =
        (config_.num_gpus * max_owned + config_.num_micro_batches - 1) /
        config_.num_micro_batches;
    detect_base = std::max(config_.num_gpus, lookahead) + 1;
    window_iters = detect_base + 3 + 2 + lookahead;
  }

  if (!continuous) {
    stats.fallback_reason = "synchronous";
  } else if (!config_.steady_replay) {
    stats.fallback_reason = "disabled";
  } else if (trace != nullptr) {
    stats.fallback_reason = "traced";
  } else if (iterations <= window_iters) {
    stats.fallback_reason = "short-run";
  } else {
    stats.attempted = true;
  }

  PipelineResult result;
  result.assignment = assignment;
  result.weight_versions = continuous ? config_.num_gpus : 1;

  TimeNs first_end = 0;
  TimeNs final_end = 0;
  TimeNs compute_busy = 0;
  TimeNs comm_total = 0;

  // Simulates `iters` iterations; with `extrapolate`, returns false unless
  // the run is provably periodic, in which case the remaining iterations are
  // folded in arithmetically (all pipeline counters are integers, so the
  // extrapolated totals are exact). fwd_start/wgrad_done describe iteration
  // 0, which a truncated run reproduces exactly.
  const auto run_once = [&](int iters, bool extrapolate) {
    SimEngine engine;
    PipeSim sim(&engine, config_, micro_model, graph, cost, assignment,
                strategy, iters, trace);
    sim.Start();
    engine.Run();
    TimeNs period = 0;
    TimeNs compute_delta = 0;
    TimeNs comm_delta = 0;
    if (extrapolate) {
      if (!sim.DetectSteadyPeriod(detect_base, &period)) {
        return false;
      }
      compute_delta = sim.SteadyComputeDelta(detect_base);
      comm_delta = sim.SteadyCommDelta(detect_base);
    }
    const int64_t extra = iterations - iters;
    first_end = sim.IterEnd(0);
    final_end = sim.IterEnd(iters - 1) + extra * period;
    compute_busy = sim.compute_busy() + extra * compute_delta;
    comm_total = sim.comm_busy() + extra * comm_delta;
    result.per_gpu_peak_memory = sim.peak_memory();
    result.fwd_start = sim.fwd_start();
    result.wgrad_done = sim.wgrad_done();
    return true;
  };

  if (stats.attempted && run_once(window_iters, /*extrapolate=*/true)) {
    stats.replayed = true;
    stats.simulated_iterations = window_iters;
  } else {
    if (stats.attempted) {
      stats.fallback_reason = "aperiodic";
    }
    run_once(iterations, /*extrapolate=*/false);
    stats.simulated_iterations = iterations;
  }

  TimeNs iter_time;
  if (continuous) {
    OOBP_CHECK_GT(final_end, first_end);
    iter_time = (final_end - first_end) / config_.measured_iterations;
  } else {
    iter_time = final_end;
    OOBP_CHECK_GT(iter_time, 0) << "pipeline did not complete";
  }
  result.metrics.iteration_time = iter_time;
  result.metrics.throughput =
      static_cast<double>(micro_model.batch) * config_.num_micro_batches /
      ToSec(iter_time);
  result.metrics.gpu_utilization =
      static_cast<double>(compute_busy) /
      (static_cast<double>(iter_time) * config_.num_gpus * iterations);
  for (int64_t peak : result.per_gpu_peak_memory) {
    result.metrics.peak_memory_bytes =
        std::max(result.metrics.peak_memory_bytes, peak);
  }
  result.metrics.oom =
      result.metrics.peak_memory_bytes > config_.cluster.gpu.mem_bytes;
  if (compute_busy > 0) {
    result.comm_comp_ratio = static_cast<double>(comm_total) /
                             static_cast<double>(compute_busy);
    result.metrics.comm_comp_ratio = result.comm_comp_ratio;
  }
  return result;
}

}  // namespace oobp
