#include "src/runtime/hybrid_engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/hw/link.h"
#include "src/sim/engine.h"

namespace oobp {

HybridEngine::HybridEngine(HybridConfig config) : config_(std::move(config)) {
  OOBP_CHECK_GE(config_.dp_groups, 1);
}

int64_t HybridEngine::SyncVolume(const NnModel& model, int layer) const {
  const int g = config_.dp_groups;
  if (g <= 1) {
    return 0;
  }
  const double factor = 2.0 * (g - 1) / g;  // ring all-reduce volume
  return static_cast<int64_t>(
      static_cast<double>(model.layers[layer].param_bytes) * factor);
}

double HybridEngine::ChannelBandwidthGbps() const {
  // Replicas of one stage sit in different nodes; the stage's gradient
  // exchange crosses the inter-node network, sharing the NIC with the other
  // stages co-located on the node (same duplex treatment as the
  // data-parallel engine).
  const ClusterSpec& cluster = config_.pipeline.cluster;
  constexpr double kDuplexFactor = 1.4;
  double bw = cluster.inter_node.bandwidth_gbps /
              std::max(1, cluster.gpus_per_node) * kDuplexFactor;
  if (cluster.switch_bandwidth_gbps > 0.0) {
    const int total = config_.dp_groups * config_.pipeline.num_gpus;
    bw = std::min(bw, cluster.switch_bandwidth_gbps / total * kDuplexFactor);
  }
  return bw;
}

HybridResult HybridEngine::Run(const NnModel& micro_model,
                               PipelineStrategy strategy) const {
  // Step 1: one replica's pipeline iteration.
  const PipelineEngine pipeline(config_.pipeline);
  const PipelineResult pipe = pipeline.Run(micro_model, strategy);
  const int L = micro_model.num_layers();

  HybridResult result;
  result.pipeline_makespan = pipe.metrics.iteration_time;
  result.total_gpus = config_.dp_groups * config_.pipeline.num_gpus;

  if (config_.dp_groups <= 1) {
    result.metrics = pipe.metrics;
    return result;
  }

  // Step 2: replay weight-gradient completions into per-stage channels.
  // sync_done[l] is when layer l's all-reduce finishes, measured on the
  // same clock as the pipeline timings.
  SimEngine engine;
  LinkSpec spec;
  spec.name = "dp-exchange";
  spec.bandwidth_gbps = ChannelBandwidthGbps();
  spec.latency = config_.pipeline.cluster.inter_node.latency;
  std::map<int, std::unique_ptr<Link>> stage_links;
  std::vector<TimeNs> sync_done(L, 0);

  for (int l = 0; l < L; ++l) {
    if (pipe.wgrad_done[l] < 0) {
      continue;  // no weights
    }
    const int64_t volume = SyncVolume(micro_model, l);
    if (volume <= 0) {
      sync_done[l] = pipe.wgrad_done[l];
      continue;
    }
    const int stage = pipe.assignment[l];
    auto it = stage_links.find(stage);
    if (it == stage_links.end()) {
      it = stage_links
               .emplace(stage, std::make_unique<Link>(
                                   &engine, spec, /*chunk_bytes=*/1 << 20,
                                   nullptr, 300 + stage,
                                   config_.commit_window_bytes))
               .first;
    }
    Link* link = it->second.get();
    // Submit at the gradient's completion time, partitioned, priority by
    // layer (the next forward needs low layers first).
    const int64_t part = config_.partition_bytes;
    const int parts = static_cast<int>((volume + part - 1) / part);
    auto remaining = std::make_shared<int>(parts);
    engine.ScheduleAt(pipe.wgrad_done[l], [=, &engine, &sync_done] {
      for (int p = 0; p < parts; ++p) {
        const int64_t bytes = std::min<int64_t>(part, volume - p * part);
        link->Transfer(bytes, l, StrFormat("sync[%d].%d", l, p),
                       [=, &engine, &sync_done] {
                         if (--*remaining == 0) {
                           sync_done[l] = engine.now();
                         }
                       });
      }
    });
  }
  engine.Run();

  // Step 3: steady-state period. Layer l's next forward (at offset
  // fwd_start[l] into the next iteration) requires sync_done[l] <= period +
  // fwd_start[l].
  TimeNs period = result.pipeline_makespan;
  for (int l = 0; l < L; ++l) {
    if (pipe.wgrad_done[l] < 0 || sync_done[l] == 0) {
      continue;
    }
    const TimeNs fwd = pipe.fwd_start[l] >= 0 ? pipe.fwd_start[l] : 0;
    period = std::max(period, sync_done[l] - fwd);
  }
  result.exposed_sync = period - result.pipeline_makespan;

  result.metrics = pipe.metrics;
  result.metrics.iteration_time = period;
  result.metrics.throughput = static_cast<double>(micro_model.batch) *
                              config_.pipeline.num_micro_batches *
                              config_.dp_groups / ToSec(period);
  result.metrics.gpu_utilization =
      pipe.metrics.gpu_utilization *
      static_cast<double>(result.pipeline_makespan) / static_cast<double>(period);
  return result;
}

}  // namespace oobp
