// Data-parallel training engine (Section 5.1 / Figure 10 systems).
//
// Simulates one representative worker of an n-GPU synchronous data-parallel
// job: the worker's GPU executes a backprop order, each completed weight
// gradient immediately enters the communication channel (wait-free
// backpropagation), and the next iteration's forward op F_i may only start
// once layer i's parameter synchronization finished. The channel models the
// worker's share of cluster bandwidth with the collective's volume factor:
//
//   * kHorovod  — ring all-reduce with fusion buffering: pending tensors are
//     flushed as one FIFO transfer when a cycle timer fires or the buffer
//     fills. No priorities, so early-layer gradients wait behind bulk data.
//   * kBytePS   — PS push+pull with tensor partitioning and priority
//     scheduling: transfers are chunked and preempted so the lowest-layer
//     (most critical) tensors go first. This is the strongest baseline.
//
// OOO-BytePS is kBytePS driven with a reverse-first-k backprop order
// (core/reverse_k.h) instead of the conventional one: same communication
// stack, reordered computation.

#ifndef OOBP_SRC_RUNTIME_DATA_PARALLEL_ENGINE_H_
#define OOBP_SRC_RUNTIME_DATA_PARALLEL_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/hw/cluster.h"
#include "src/nn/cost_model.h"
#include "src/nn/train_graph.h"
#include "src/runtime/metrics.h"
#include "src/trace/trace.h"

namespace oobp {

enum class CommScheme {
  kHorovod,
  kBytePS,
};

struct DataParallelConfig {
  ClusterSpec cluster;
  int num_gpus = 1;  // <= cluster.total_gpus()
  SystemProfile profile = SystemProfile::TensorFlow();
  CommScheme scheme = CommScheme::kBytePS;
  bool precompiled_issue = true;
  int measured_iterations = 3;
  // Horovod fusion parameters.
  TimeNs fusion_cycle = Ms(5);
  int64_t fusion_buffer_bytes = 64LL << 20;
  // BytePS tensor partition size and the transport's non-preemptible commit
  // window (see hw/link.h).
  int64_t partition_bytes = 4LL << 20;
  int64_t commit_window_bytes = 256LL << 20;
  // Figure 4 unit-time toy mode: when > 0, every F/dO/dW op takes exactly
  // `unit_time` with no issue latency or kernel overhead, and each
  // parameterized layer's synchronization serializes for
  // `unit_sync_units * unit_time` on the channel (every layer carries the
  // same nominal volume). This reproduces the paper's unit-schedule
  // analysis, where per-layer sync time is comparable to per-layer compute.
  TimeNs unit_time = 0;
  double unit_sync_units = 2.0;
};

class DataParallelEngine {
 public:
  explicit DataParallelEngine(DataParallelConfig config);

  // Runs warm-up + measured iterations with the given backprop order (must
  // validate against the model's TrainGraph). Throughput is global
  // (samples/s across all workers).
  TrainMetrics Run(const NnModel& model, const std::vector<TrainOp>& backprop,
                   TraceRecorder* trace = nullptr) const;

  // Bytes layer i contributes to the channel per iteration (gradient size
  // times the collective volume factor).
  int64_t SyncVolume(const NnModel& model, int layer) const;
  // Effective per-worker channel bandwidth (GB/s) for this cluster slice.
  double ChannelBandwidthGbps() const;
  // Per-layer synchronization time if the channel were otherwise idle.
  TimeNs IdealSyncTime(const NnModel& model, int layer) const;

  const DataParallelConfig& config() const { return config_; }

 private:
  DataParallelConfig config_;
};

}  // namespace oobp

#endif  // OOBP_SRC_RUNTIME_DATA_PARALLEL_ENGINE_H_
