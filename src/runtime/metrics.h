// Metrics reported by the training engines.

#ifndef OOBP_SRC_RUNTIME_METRICS_H_
#define OOBP_SRC_RUNTIME_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace oobp {

struct TrainMetrics {
  TimeNs iteration_time = 0;              // steady-state time per iteration
  double throughput = 0.0;                // global samples (images/seqs) per second
  double gpu_utilization = 0.0;           // busy fraction (avg across GPUs)
  double comm_comp_ratio = 0.0;           // communication time / compute time
  int64_t peak_memory_bytes = 0;          // per-GPU peak (activations + base)
  bool oom = false;                       // peak exceeded device memory
};

// Telemetry of the steady-state replay fast path (DESIGN.md §9), shared by
// the single-GPU and pipeline engines: whether the run was extrapolated, how
// many iterations were event-simulated, and why the engine fell back when it
// did not replay.
struct ReplayStats {
  bool attempted = false;  // run was long enough and replay was enabled
  bool replayed = false;   // periodicity proven; tail extrapolated
  int simulated_iterations = 0;  // iterations actually event-simulated
  int total_iterations = 0;      // warm-up + measured
  // Empty when replayed: "disabled", "traced", "short-run",
  // "empty-schedule", "synchronous" (pipeline flush strategies complete in
  // one simulated iteration — nothing to extrapolate), or "aperiodic"
  // (detection failed; full rerun).
  std::string fallback_reason;
};

// One serializable metric entry; ordered lists of these are what the
// scenario runner writes into BENCH_<scenario>.json and compares against
// golden values.
struct MetricKv {
  std::string key;
  double value = 0.0;
};

// Flattens TrainMetrics into the runner's key/value form. Keys are stable
// API: golden files reference them (`<prefix>iteration_ms`, ...).
inline std::vector<MetricKv> MetricsToKv(const TrainMetrics& m,
                                         const std::string& prefix = "") {
  return {{prefix + "iteration_ms", ToMs(m.iteration_time)},
          {prefix + "throughput", m.throughput},
          {prefix + "gpu_utilization", m.gpu_utilization},
          {prefix + "comm_comp_ratio", m.comm_comp_ratio},
          {prefix + "peak_memory_mb", static_cast<double>(m.peak_memory_bytes) / 1e6},
          {prefix + "oom", m.oom ? 1.0 : 0.0}};
}

}  // namespace oobp

#endif  // OOBP_SRC_RUNTIME_METRICS_H_
