// Metrics reported by the training engines.

#ifndef OOBP_SRC_RUNTIME_METRICS_H_
#define OOBP_SRC_RUNTIME_METRICS_H_

#include <cstdint>

#include "src/common/time.h"

namespace oobp {

struct TrainMetrics {
  TimeNs iteration_time = 0;              // steady-state time per iteration
  double throughput = 0.0;                // global samples (images/seqs) per second
  double gpu_utilization = 0.0;           // busy fraction (avg across GPUs)
  double comm_comp_ratio = 0.0;           // communication time / compute time
  int64_t peak_memory_bytes = 0;          // per-GPU peak (activations + base)
  bool oom = false;                       // peak exceeded device memory
};

}  // namespace oobp

#endif  // OOBP_SRC_RUNTIME_METRICS_H_
