// Cluster-scale data-parallel training through a parameter server, built on
// the sharded simulator: every worker GPU is its own logical process, the
// parameter server is one more, and gradients/updates cross LP boundaries
// over CommChannels whose Link latency provides the Chandy–Misra lookahead
// (src/sim/sharded.h discipline 2).
//
// Model: W workers each run `iterations` of forward + backward over the
// same network. When a worker finishes the weight-gradient of layer l it
// pushes param_bytes over its uplink; the server aggregates once all W
// copies of (iteration, layer) arrived (a bandwidth-proportional reduction
// cost) and broadcasts the update on every downlink. The *next* iteration's
// forward of layer l blocks until that update is back — the classic exposed
// synchronization the paper's reverse-first-k scheduling attacks:
//
//  - conventional backprop emits weight gradients top-down (layer L-1
//    first, layer 0 last), so layer 0's push + aggregate + broadcast sits
//    fully exposed between iterations, exactly when forward needs it;
//  - ooo mode applies the paper's reverse-first-k: layers >= k keep the
//    interleaved top-down sweep (their pushes overlap the backward pass as
//    usual), but the first k layers' weight gradients are deferred past
//    the output-gradient chain and computed bottom-up (layer 0 earliest),
//    entering the priority-preemptive links in urgency order so low-layer
//    synchronization overlaps the deferred gradient compute instead of
//    sitting exposed.
//
// Per-worker straggler factors (seeded, uniform in [1, 1 + spread]) scale
// kernel durations, so the scenarios also measure how each ordering absorbs
// heterogeneity: the server's all-arrived barrier propagates the slowest
// worker's schedule to everyone.
//
// Determinism: the conservative coordinator's round structure is a function
// of simulation state only, so results are byte-identical for any
// sim_threads (the byte-identity battery and the TSan tier check this).

#ifndef OOBP_SRC_RUNTIME_CLUSTER_PS_ENGINE_H_
#define OOBP_SRC_RUNTIME_CLUSTER_PS_ENGINE_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/hw/gpu_spec.h"
#include "src/hw/link.h"
#include "src/nn/cost_model.h"
#include "src/nn/layer.h"

namespace oobp {

struct ClusterPsConfig {
  GpuSpec gpu;
  SystemProfile profile;
  LinkSpec uplink;    // worker -> server, one per worker
  LinkSpec downlink;  // server -> worker, one per worker
  int workers = 8;
  int iterations = 4;  // >= 2: first iteration is warm-up for the mean
  bool ooo = false;    // reverse-first-k weight gradients + priority comm

  // In ooo mode, how many of the lowest layers get the reverse-first
  // treatment (deferred past the og chain, computed bottom-up, pushed at
  // top priority). -1 = layers / 3. Ignored when ooo is false.
  int reverse_k = -1;

  // Worker w's kernel durations scale by 1 + spread * u_w, u_w seeded
  // uniform in [0, 1). 0 = homogeneous fleet.
  double straggler_spread = 0.0;
  uint64_t straggler_seed = 0x57A6;

  // Server-side reduction: fixed cost + bytes at `server_agg_gbps` per
  // aggregated layer (all W contributions).
  double server_agg_gbps = 50.0;
  TimeNs server_agg_fixed = Us(2);

  int sim_threads = 1;  // logical-process worker pool; 1 = inline reference

  // Test-only: nonzero perturbs worker-pool thread scheduling with seeded
  // sleeps; results must not change (see ShardedSim::SetPerturbSeed).
  uint64_t sim_perturb_seed = 0;
};

struct ClusterPsMetrics {
  // Mean steady-state iteration time: per worker, successive deltas of
  // "all updates for iteration t received", averaged over iterations >= 1
  // and then over workers; min/max are the per-worker means' spread.
  TimeNs iteration_time = 0;
  TimeNs worker_iter_min = 0;
  TimeNs worker_iter_max = 0;
  TimeNs makespan = 0;  // last update delivery anywhere in the cluster

  // Mean over workers of the time forward progress sat blocked on a
  // parameter update, as a fraction of makespan.
  double sync_stall_frac = 0.0;

  int64_t bytes_pushed = 0;       // total gradient bytes over all uplinks
  double uplink_busy_frac = 0.0;  // mean uplink busy time / makespan
  double slowest_factor = 1.0;    // max straggler factor in the fleet
  uint64_t processed_events = 0;  // sum over every LP engine (thread-
                                  // invariant; gated by the perf baseline)
};

class ClusterPsEngine {
 public:
  explicit ClusterPsEngine(ClusterPsConfig config);

  ClusterPsMetrics Run(const NnModel& model) const;

  const ClusterPsConfig& config() const { return config_; }

 private:
  ClusterPsConfig config_;
};

}  // namespace oobp

#endif  // OOBP_SRC_RUNTIME_CLUSTER_PS_ENGINE_H_
