// Pipeline-parallel training engine (Section 5.2 / Figures 5, 6, 11-13).
//
// Each GPU executes serially; ops become ready when their inputs arrive
// (activations travel down, gradients travel up, over per-pair links). The
// engine is a per-GPU list scheduler: among READY ops it picks the highest
// priority one, which is exactly how the paper frames its optimization
// ("prioritizing critical operations"). The strategies differ only in layer
// assignment, priority rule, and whether weight gradients are deferred:
//
//   kGPipe     contiguous stages, forward-preferred, dW inline with dO,
//              synchronous flush per mini-batch. M = 1 degenerates to
//              cross-layer model parallelism (Figure 5a).
//   kDapple    contiguous, backward-preferred (early 1F1B), synchronous.
//   kPipeDream contiguous, backward-preferred, NO flush: iterations stream
//              through the pipe with weight stashing; the result reports
//              weight_versions = #stages (the staleness the paper warns
//              about).
//   kOooPipe1  kGPipe + gradient fast-forwarding: dO prioritized, dW ops sit
//              in a pool and fill stalls (Figure 5b / 6b).
//   kOooPipe2  kOooPipe1 + modulo layer allocation at
//              `modulo_group_size` granularity (Figure 5c / 6c).
//
// The model passed to Run() is the MICRO-batch model (its `batch` is the
// micro-batch size); a training iteration processes `num_micro_batches`
// of them, so global throughput = batch * M / iteration_time.

#ifndef OOBP_SRC_RUNTIME_PIPELINE_ENGINE_H_
#define OOBP_SRC_RUNTIME_PIPELINE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/core/modulo_alloc.h"
#include "src/hw/cluster.h"
#include "src/nn/cost_model.h"
#include "src/nn/train_graph.h"
#include "src/runtime/metrics.h"
#include "src/trace/trace.h"

namespace oobp {

enum class PipelineStrategy {
  kGPipe,
  kDapple,
  kPipeDream,
  // Megatron-2's interleaved pipeline schedule (Narayanan et al. '21):
  // each GPU owns `megatron_chunks` groups of contiguous layers
  // (backward-preferred 1F1B, synchronous). The paper notes this is
  // "similar to our modulo allocation to some extent, but without ooo
  // backprop ... very limited performance impact" (Section 9).
  kMegatron,
  // Megatron with gradient fast-forwarding grafted on — Section 8.4.2:
  // "when we solely apply gradient fast-forwarding to Megatron 2, its
  // performance is improved by average 20.4% and maximum 27.5%".
  kMegatronFF,
  kOooPipe1,
  kOooPipe2,
};

const char* PipelineStrategyName(PipelineStrategy s);

struct PipelineConfig {
  ClusterSpec cluster;
  int num_gpus = 4;
  SystemProfile profile = SystemProfile::TensorFlowXla();
  int num_micro_batches = 4;  // 1 = cross-layer model parallelism
  int modulo_group_size = 1;  // grouping granularity for kOooPipe2
  int megatron_chunks = 2;    // contiguous layer groups per GPU (kMegatron*)
  // Section 6: within the deferred weight-gradient pool, compute the first
  // k layers' gradients first (ascending) so their data-parallel
  // synchronization can start earliest. 0 disables; only affects kOooPipe*.
  int reverse_first_k = 0;
  // Optional interconnect override (Figure 11b sweeps NVLink/PCIe/10GbE);
  // when unset, links come from cluster.LinkBetween().
  bool use_link_override = false;
  LinkSpec link_override;
  int measured_iterations = 3;  // only kPipeDream needs several
  // Paper-figure unit-time mode (the Figure 5/6 toy timelines): when > 0,
  // every F/dO/dW op takes exactly `unit_time` (no kernel overhead), weight
  // updates are free, and layer 0's dO op is omitted — the first layer
  // needs no input gradient, which is what makes the paper's conventional
  // 8-layer/2-GPU makespan 23 units rather than 24. Combine with an ideal
  // link override so transfers stay negligible against the unit.
  TimeNs unit_time = 0;
  // Steady-state iteration replay for continuous (kPipeDream) runs — see
  // DESIGN.md §9 and SingleGpuConfig::steady_replay. Every pipeline metric
  // is integer-valued (compute busy, link busy, iteration ends, peak bytes),
  // so the extrapolation is exact by integer arithmetic.
  bool steady_replay = true;
};

struct PipelineResult {
  TrainMetrics metrics;
  LayerAssignment assignment;
  int weight_versions = 1;  // >1 only for kPipeDream (weight stashing)
  std::vector<int64_t> per_gpu_peak_memory;  // activations + stashed weights
  double comm_comp_ratio = 0.0;
  // First-iteration timing per layer: when the layer's forward first starts
  // and when its last weight gradient completes (-1 for layers without
  // weights). The hybrid engine composes these with a parameter-
  // synchronization model (Section 6).
  std::vector<TimeNs> fwd_start;
  std::vector<TimeNs> wgrad_done;
};

class PipelineEngine {
 public:
  explicit PipelineEngine(PipelineConfig config);

  // `replay_stats` (optional) reports whether the continuous-mode run was
  // extrapolated from a truncated steady-state window.
  PipelineResult Run(const NnModel& micro_model, PipelineStrategy strategy,
                     TraceRecorder* trace = nullptr,
                     ReplayStats* replay_stats = nullptr) const;

  // The layer assignment the strategy would use (contiguous balanced by
  // forward cost, or modulo).
  LayerAssignment AssignmentFor(const NnModel& micro_model,
                                PipelineStrategy strategy) const;

  const PipelineConfig& config() const { return config_; }

 private:
  PipelineConfig config_;
};

}  // namespace oobp

#endif  // OOBP_SRC_RUNTIME_PIPELINE_ENGINE_H_
