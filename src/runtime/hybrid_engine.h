// Hybrid data-parallel + pipeline-parallel training (Section 6).
//
// `dp_groups` identical pipeline replicas, each spanning
// `pipeline_gpus` devices, train concurrently; after a replica's backward
// produces a layer's weight gradient, that gradient all-reduces across the
// replicas before the *next* iteration's forward of the same layer may run.
//
// The engine composes the pipeline simulator with the priority-preemptive
// channel model:
//   1. one replica's iteration is simulated to get the pipeline makespan,
//      each layer's weight-gradient completion time, and each layer's
//      forward start offset;
//   2. a per-stage communication channel replays the gradient completions
//      as prioritized transfers (priority = layer index, the next
//      iteration's need order);
//   3. the steady-state iteration period is the smallest T such that every
//      layer's synchronization finishes before the next iteration reaches
//      its forward: T >= sync_done(l) - fwd_start(l), and T >= makespan.
//
// Section 6's combination of the two ooo-backprop schedulers falls out
// naturally: gradient fast-forwarding defers weight gradients into pipeline
// stalls, and reverse-first-k (PipelineConfig::reverse_first_k) orders the
// deferred pool so the most critical synchronizations start first.

#ifndef OOBP_SRC_RUNTIME_HYBRID_ENGINE_H_
#define OOBP_SRC_RUNTIME_HYBRID_ENGINE_H_

#include <vector>

#include "src/runtime/metrics.h"
#include "src/runtime/pipeline_engine.h"

namespace oobp {

struct HybridConfig {
  PipelineConfig pipeline;  // one replica (pipeline.num_gpus devices)
  int dp_groups = 2;        // replicas; total GPUs = dp_groups * num_gpus
  // Transport parameters of the gradient exchange (see data-parallel
  // engine).
  int64_t partition_bytes = 4LL << 20;
  int64_t commit_window_bytes = 256LL << 20;
};

struct HybridResult {
  TrainMetrics metrics;
  TimeNs pipeline_makespan = 0;  // one replica's iteration, compute only
  TimeNs exposed_sync = 0;       // extra period imposed by synchronization
  int total_gpus = 0;
};

class HybridEngine {
 public:
  explicit HybridEngine(HybridConfig config);

  HybridResult Run(const NnModel& micro_model,
                   PipelineStrategy strategy) const;

  // Bytes layer `l` all-reduces across the replicas per iteration.
  int64_t SyncVolume(const NnModel& model, int layer) const;
  // Effective per-stage channel bandwidth for the replica exchange.
  double ChannelBandwidthGbps() const;

  const HybridConfig& config() const { return config_; }

 private:
  HybridConfig config_;
};

}  // namespace oobp

#endif  // OOBP_SRC_RUNTIME_HYBRID_ENGINE_H_
