#include "src/runtime/data_parallel_engine.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <functional>
#include <map>
#include <utility>

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/core/memory_model.h"
#include "src/hw/gpu.h"
#include "src/hw/link.h"
#include "src/sim/engine.h"

namespace oobp {

namespace {
// Nominal per-layer synchronization volume in unit-time mode; the channel
// bandwidth is derived from it, so its absolute value cancels out.
constexpr int64_t kUnitSyncVolumeBytes = 1 << 20;
}  // namespace

DataParallelEngine::DataParallelEngine(DataParallelConfig config)
    : config_(std::move(config)) {
  OOBP_CHECK_GE(config_.num_gpus, 1);
  OOBP_CHECK_LE(config_.num_gpus, config_.cluster.total_gpus());
}

int64_t DataParallelEngine::SyncVolume(const NnModel& model, int layer) const {
  const int n = config_.num_gpus;
  if (n <= 1) {
    return 0;
  }
  if (config_.unit_time > 0) {
    // Unit mode: every parameterized layer synchronizes the same nominal
    // volume; ChannelBandwidthGbps is sized so it serializes for
    // unit_sync_units * unit_time.
    return model.layers[layer].has_params() ? kUnitSyncVolumeBytes : 0;
  }
  const int64_t grad = model.layers[layer].param_bytes;
  const int gpn = config_.cluster.gpus_per_node;
  const int nodes = (n + gpn - 1) / gpn;
  double factor = 0.0;
  if (config_.scheme == CommScheme::kHorovod || nodes <= 1) {
    // Flat ring all-reduce: 2 (n-1)/n of the tensor crosses the worker's
    // link in each direction combined.
    factor = 2.0 * (n - 1) / n;
  } else {
    // Hierarchical PS with co-located servers: intra-node aggregation is
    // nearly free over NVLink; the NIC carries the cross-node push + pull.
    factor = 2.0 * (nodes - 1) / nodes;
  }
  return static_cast<int64_t>(static_cast<double>(grad) * factor);
}

double DataParallelEngine::ChannelBandwidthGbps() const {
  if (config_.unit_time > 0) {
    // 1 GB/s moves one byte per nanosecond, so this serializes the nominal
    // unit volume in exactly unit_sync_units * unit_time.
    return static_cast<double>(kUnitSyncVolumeBytes) /
           (config_.unit_sync_units * static_cast<double>(config_.unit_time));
  }
  const int n = config_.num_gpus;
  const int gpn = config_.cluster.gpus_per_node;
  if (n <= gpn) {
    return config_.cluster.intra_node.bandwidth_gbps;
  }
  // The node's NIC is shared by its workers; a blocking switch fabric
  // further caps each worker's cross-node share. SyncVolume counts push +
  // pull bytes against a single serialized channel, but the NIC is full
  // duplex, so pushes and pulls partially overlap — the 1.4x duplex factor
  // calibrates the effective rate to the paper's measured 350 ms first-
  // layer sync for ResNet-50 on 16 V100s (Section 8.3).
  constexpr double kDuplexFactor = 1.4;
  double bw = config_.cluster.inter_node.bandwidth_gbps / gpn * kDuplexFactor;
  if (config_.cluster.switch_bandwidth_gbps > 0.0) {
    bw = std::min(bw,
                  config_.cluster.switch_bandwidth_gbps / n * kDuplexFactor);
  }
  return bw;
}

TimeNs DataParallelEngine::IdealSyncTime(const NnModel& model, int layer) const {
  const int64_t volume = SyncVolume(model, layer);
  if (volume == 0) {
    return 0;
  }
  return static_cast<TimeNs>(static_cast<double>(volume) /
                             ChannelBandwidthGbps());
}

namespace {

// Sequential executor-thread driver with per-layer synchronization gates.
class Driver {
 public:
  Driver(SimEngine* engine, Gpu* gpu, Link* channel, const NnModel& model,
         const CostModel& cost, const DataParallelEngine& parent,
         const DataParallelConfig& config,
         const std::vector<TrainOp>& backprop, int iterations, bool tracing)
      : engine_(engine),
        gpu_(gpu),
        channel_(channel),
        model_(model),
        cost_(cost),
        parent_(parent),
        config_(config),
        iterations_(iterations),
        tracing_(tracing) {
    const int L = model.num_layers();
    // Per-iteration op sequence: backprop (with updates folded into the
    // synchronization completion), then the next forward pass.
    for (const TrainOp& op : backprop) {
      sequence_.push_back(op);
    }
    for (int i = 0; i < L; ++i) {
      sequence_.push_back({TrainOpType::kForward, i});
    }
    // The kernel cost of a sequence position is iteration-invariant; price
    // each position once instead of on every issue.
    seq_cost_.reserve(sequence_.size());
    for (const TrainOp& op : sequence_) {
      KernelCost kc = cost_.Cost(model_.layers[op.layer], op.type);
      if (config_.unit_time > 0) {
        kc.duration = config_.unit_time;
        kc.issue_latency = 0;
      }
      seq_cost_.push_back(kc);
    }
    sync_done_.assign(iterations, std::vector<bool>(L, false));
    iter_end_.assign(iterations, 0);
    // Layers without weights never synchronize.
    for (int t = 0; t < iterations; ++t) {
      for (int i = 0; i < L; ++i) {
        if (!model.layers[i].has_params()) {
          sync_done_[t][i] = true;
        }
      }
    }
    gpu_->AddKernelDoneListener([this](KernelId id) { OnKernelDone(id); });
    stream_ = gpu_->CreateStream(0);
  }

  void Start() { IssueNext(); }

  TimeNs IterEnd(int t) const { return iter_end_[t]; }
  TimeNs compute_busy() const { return compute_busy_; }

 private:
  void IssueNext() {
    if (iter_ >= iterations_) {
      return;
    }
    const TrainOp op = sequence_[pos_];
    // Gate: F_i requires layer i's parameters for this iteration.
    if (op.type == TrainOpType::kForward && config_.num_gpus > 1 &&
        !sync_done_[iter_][op.layer]) {
      waiting_layer_ = op.layer;
      return;  // resumed by OnSyncDone
    }
    waiting_layer_ = -1;

    const KernelCost& kc = seq_cost_[pos_];
    const TimeNs latency = config_.precompiled_issue ? 0 : kc.issue_latency;
    engine_->ScheduleAfter(latency, [this, op, kc] {
      KernelDesc desc;
      if (tracing_) {
        // Labels only feed trace events; untraced runs skip the formatting.
        desc.name = StrFormat("%s[%d]#%d", TrainOpTypeName(op.type), op.layer,
                              iter_);
        desc.category = TrainOpTypeName(op.type);
      }
      desc.solo_duration = kc.duration;
      desc.thread_blocks = kc.thread_blocks;
      const KernelId id = gpu_->Enqueue(stream_, std::move(desc));
      OOBP_CHECK_EQ(static_cast<size_t>(id), kernel_info_.size());
      kernel_info_.push_back({iter_, op});
      compute_busy_ += kc.duration;
      Advance();
      IssueNext();
    });
  }

  void Advance() {
    ++pos_;
    if (pos_ == sequence_.size()) {
      pos_ = 0;
      ++iter_;
    }
  }

  void OnKernelDone(KernelId id) {
    OOBP_CHECK_LT(static_cast<size_t>(id), kernel_info_.size());
    const auto [t, op] = kernel_info_[id];
    if (op.type == TrainOpType::kWeightGrad && config_.num_gpus > 1) {
      StartSync(t, op.layer);
    }
    if (op.type == TrainOpType::kForward &&
        op.layer == model_.num_layers() - 1) {
      iter_end_[t] = engine_->now();
    }
  }

  void StartSync(int t, int layer) {
    const int64_t volume = parent_.SyncVolume(model_, layer);
    if (volume <= 0) {
      OnSyncDone(t, layer);
      return;
    }
    if (config_.scheme == CommScheme::kBytePS) {
      // Priority by layer index: the first layers are needed first by the
      // next forward pass (ByteScheduler/BytePS semantics). Tensors are
      // split into partitions so large transfers do not monopolize the
      // committed window.
      const int64_t part = config_.partition_bytes;
      const int parts = static_cast<int>((volume + part - 1) / part);
      auto remaining = std::make_shared<int>(parts);
      for (int p = 0; p < parts; ++p) {
        const int64_t bytes = std::min<int64_t>(part, volume - p * part);
        channel_->Transfer(bytes, layer,
                           tracing_
                               ? StrFormat("sync[%d].%d#%d", layer, p, t)
                               : std::string(),
                           [this, t, layer, remaining] {
                             if (--*remaining == 0) {
                               OnSyncDone(t, layer);
                             }
                           });
      }
      return;
    }
    // Horovod: accumulate into the fusion buffer; flush on size or timer.
    fusion_pending_.push_back({t, layer, volume});
    fusion_bytes_ += volume;
    if (fusion_bytes_ >= config_.fusion_buffer_bytes) {
      FlushFusion();
    } else if (!fusion_timer_armed_) {
      fusion_timer_armed_ = true;
      engine_->ScheduleAfter(config_.fusion_cycle, [this] {
        fusion_timer_armed_ = false;
        FlushFusion();
      });
    }
  }

  void FlushFusion() {
    if (fusion_pending_.empty()) {
      return;
    }
    auto batch = std::move(fusion_pending_);
    fusion_pending_.clear();
    const int64_t bytes = fusion_bytes_;
    fusion_bytes_ = 0;
    // FIFO: all fused transfers share one priority level, ordered by
    // submission sequence (Link breaks priority ties by arrival).
    channel_->Transfer(bytes, /*priority=*/1 << 20,
                       tracing_
                           ? StrFormat("fusion(%zu tensors)", batch.size())
                           : std::string(),
                       [this, batch = std::move(batch)] {
                         for (const auto& item : batch) {
                           OnSyncDone(item.iter, item.layer);
                         }
                       });
  }

  void OnSyncDone(int t, int layer) {
    sync_done_[t][layer] = true;
    if (waiting_layer_ == layer && iter_ == t) {
      IssueNext();
    }
  }

  struct FusionItem {
    int iter;
    int layer;
    int64_t bytes;
  };

  SimEngine* engine_;
  Gpu* gpu_;
  Link* channel_;
  const NnModel& model_;
  const CostModel& cost_;
  const DataParallelEngine& parent_;
  const DataParallelConfig& config_;
  int iterations_;
  bool tracing_;

  StreamId stream_ = 0;
  std::vector<TrainOp> sequence_;
  std::vector<KernelCost> seq_cost_;  // cost of sequence_[i], unit-adjusted
  size_t pos_ = 0;
  int iter_ = 0;
  int waiting_layer_ = -1;
  TimeNs compute_busy_ = 0;
  std::vector<std::vector<bool>> sync_done_;
  std::vector<TimeNs> iter_end_;
  // Indexed by KernelId: the Driver is this Gpu's only client, so ids are
  // the dense enqueue sequence.
  std::vector<std::pair<int, TrainOp>> kernel_info_;

  std::vector<FusionItem> fusion_pending_;
  int64_t fusion_bytes_ = 0;
  bool fusion_timer_armed_ = false;
};

}  // namespace

TrainMetrics DataParallelEngine::Run(const NnModel& model,
                                     const std::vector<TrainOp>& backprop,
                                     TraceRecorder* trace) const {
  const TrainGraph graph(&model);
  OOBP_CHECK(graph.ValidateBackpropOrder(backprop));
  const CostModel cost(config_.cluster.gpu, config_.profile);
  const int iterations = 1 + config_.measured_iterations;

  SimEngine engine;
  GpuSpec gpu_spec = config_.cluster.gpu;
  if (config_.unit_time > 0) {
    gpu_spec.kernel_exec_overhead = 0;  // ops cost exactly one unit
  }
  Gpu gpu(&engine, gpu_spec, trace, /*trace_track_base=*/0);

  // Channel: the worker's share of the cluster interconnect. Horovod's flat
  // ring also pays per-step coordination latency proportional to the ring
  // size.
  LinkSpec channel_spec;
  channel_spec.name = "dp-channel";
  channel_spec.bandwidth_gbps = ChannelBandwidthGbps();
  const TimeNs base_latency = config_.num_gpus <= config_.cluster.gpus_per_node
                                  ? config_.cluster.intra_node.latency
                                  : config_.cluster.inter_node.latency;
  channel_spec.latency =
      config_.scheme == CommScheme::kHorovod
          ? base_latency * 2 * std::max(1, config_.num_gpus - 1)
          : base_latency;
  if (config_.unit_time > 0) {
    channel_spec.latency = 0;  // unit schedules count serialization only
  }
  Link channel(&engine, channel_spec, /*chunk_bytes=*/1 << 20, trace,
               /*track=*/200,
               config_.scheme == CommScheme::kBytePS
                   ? config_.commit_window_bytes
                   : 0);

  Driver driver(&engine, &gpu, &channel, model, cost, *this, config_,
                backprop, iterations, /*tracing=*/trace != nullptr);
  driver.Start();
  engine.Run();

  TrainMetrics metrics;
  const TimeNs t0 = driver.IterEnd(0);
  const TimeNs t1 = driver.IterEnd(iterations - 1);
  OOBP_CHECK_GT(t1, 0) << "training did not complete";
  metrics.iteration_time = (t1 - t0) / config_.measured_iterations;
  metrics.throughput = static_cast<double>(model.batch) * config_.num_gpus /
                       ToSec(metrics.iteration_time);
  metrics.gpu_utilization =
      static_cast<double>(driver.compute_busy()) / static_cast<double>(t1);
  if (driver.compute_busy() > 0) {
    metrics.comm_comp_ratio = static_cast<double>(channel.busy_time()) /
                              static_cast<double>(driver.compute_busy());
  }
  const MemoryTimeline mem = EstimateBackpropMemory(model, backprop);
  metrics.peak_memory_bytes = static_cast<int64_t>(
      static_cast<double>(mem.peak_total()) * config_.profile.allocator_overhead);
  metrics.oom = metrics.peak_memory_bytes > config_.cluster.gpu.mem_bytes;
  return metrics;
}

}  // namespace oobp
