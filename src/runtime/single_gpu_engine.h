// Single-GPU training engine (Section 4 / Figure 7 systems).
//
// Executes an IterationSchedule on the simulated GPU through the simulated
// framework executor. The four evaluated configurations map to flags:
//   XLA baseline      — per-op issue, single stream (conventional schedule)
//   XLA + Opt1        — pre-compiled kernel issue (CUDA-Graph-style)
//   XLA + Opt1 + Opt2 — pre-compiled issue + multi-stream ooo schedule
//   Nimble            — PyTorchNimble profile, pre-compiled issue, single
//                       stream, high allocator overhead (OOMs first)
//
// The engine always enforces the true data dependencies of training
// (Section 2's constraint system), so any schedule — however reordered —
// executes correctly; scheduling only changes timing.

#ifndef OOBP_SRC_RUNTIME_SINGLE_GPU_ENGINE_H_
#define OOBP_SRC_RUNTIME_SINGLE_GPU_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/core/schedule.h"
#include "src/hw/cpu_launcher.h"
#include "src/hw/gpu.h"
#include "src/hw/gpu_spec.h"
#include "src/nn/cost_model.h"
#include "src/nn/train_graph.h"
#include "src/runtime/metrics.h"
#include "src/trace/trace.h"

namespace oobp {

struct SingleGpuConfig {
  GpuSpec gpu;
  SystemProfile profile;
  bool precompiled_issue = false;  // Opt1
  int measured_iterations = 3;     // steady-state window after 1 warm-up
  // Steady-state iteration replay (DESIGN.md §9): for long runs, simulate a
  // short window, prove the event timeline is iteration-periodic, and
  // extrapolate the remaining iterations arithmetically — bit-identical to
  // the full simulation by construction, with automatic fallback to full
  // simulation whenever periodicity does not hold.
  bool steady_replay = true;
};

// The "simple" multi-stream variant: weight gradients and updates moved to
// the sub stream in conventional order, without joint scheduling — the
// pragmatic mode the paper reports at 1.39x (vs 1.54x with reordering) for
// DenseNet-121.
IterationSchedule NaiveSubStreamIteration(const TrainGraph& graph);

// The CPU issue sequence for `iterations` repetitions of an iteration
// schedule, with the full cross-iteration data dependencies (dO_{L-1} of
// iteration t waits on F_{L-1} of iteration t-1, F_i waits on U_i, ...).
// Shared between SingleGpuEngine and the serving subsystem's co-run engine,
// which interleaves inference kernels with the same training item stream.
struct TrainIssuePlan {
  std::vector<IssueItem> items;
  // Index of the last issue item of each iteration (size == iterations).
  std::vector<int> iter_last_item;
};

// `label_items` controls whether trace labels are built (pure annotations;
// skip them for untraced runs).
TrainIssuePlan BuildTrainIssuePlan(const NnModel& model,
                                   const IterationSchedule& schedule,
                                   const CostModel& cost, int iterations,
                                   StreamId main_stream, StreamId sub_stream,
                                   bool label_items);

// Per-iteration completion times: iteration t ends when the last kernel of
// any item in (iter_last_item[t-1], iter_last_item[t]] completes.
// `item_kernel` maps issue-item index -> KernelId (all must be done).
std::vector<TimeNs> TrainIterationEndTimes(
    const Gpu& gpu, const std::vector<KernelId>& item_kernel,
    const std::vector<int>& iter_last_item);

class SingleGpuEngine {
 public:
  explicit SingleGpuEngine(SingleGpuConfig config);

  // Simulates warm-up + measured iterations of `schedule` over `model` and
  // returns steady-state metrics. `trace` (optional) receives kernel/issue
  // events: track 0 = main stream, 1 = sub stream, 100 = CPU issue thread;
  // tracing disables steady-state replay (the trace must hold every event).
  // `replay_stats` (optional) reports whether the run was extrapolated.
  TrainMetrics Run(const NnModel& model, const IterationSchedule& schedule,
                   TraceRecorder* trace = nullptr,
                   ReplayStats* replay_stats = nullptr) const;

  const SingleGpuConfig& config() const { return config_; }

 private:
  SingleGpuConfig config_;
};

}  // namespace oobp

#endif  // OOBP_SRC_RUNTIME_SINGLE_GPU_ENGINE_H_
