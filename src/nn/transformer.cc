// BERT-{12,24,48} (Devlin et al.) and GPT-3 Medium (Brown et al.) encoder /
// decoder stacks. Layer granularity is one transformer layer, matching how
// the paper partitions NLP models across pipeline stages ("we applied modulo
// allocation at a transformer level").

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/nn/layer_builder.h"
#include "src/nn/model_zoo.h"

namespace oobp {

namespace {

constexpr int kBertVocab = 30522;   // Section 8.4.2
constexpr int kGptVocab = 50257;

NnModel TransformerStack(const std::string& name, int num_layers, int hidden,
                         int heads, int vocab, int batch, int seq,
                         bool tied_output_head) {
  NnModel model;
  model.name = name;
  model.batch = batch;

  model.layers.push_back(
      MakeEmbedding("embed", "embed", batch, seq, vocab, hidden));
  for (int i = 0; i < num_layers; ++i) {
    model.layers.push_back(MakeTransformerLayer(
        StrFormat("layer%d", i), StrFormat("layer%d", i), batch, seq, hidden,
        heads));
  }
  // Output head: LM logits GEMM over the vocabulary. For GPT-3 this layer is
  // large enough that the paper dedicates four GPUs to it (Section 8.4.2).
  Layer head = MakeDense("head.lm", "head", batch, seq, hidden, vocab);
  if (tied_output_head) {
    head.param_bytes = 0;  // weights shared with the embedding
    head.wgrad_flops = head.fwd_flops;
  }
  model.layers.push_back(head);
  return model;
}

}  // namespace

NnModel Bert(int num_layers, int batch, int seq) {
  OOBP_CHECK_GT(num_layers, 0);
  const int hidden = num_layers <= 12 ? 768 : 1024;
  const int heads = num_layers <= 12 ? 12 : 16;
  return TransformerStack(StrFormat("BERT-%d", num_layers), num_layers, hidden,
                          heads, kBertVocab, batch, seq,
                          /*tied_output_head=*/true);
}

NnModel Gpt3Medium(int batch, int seq) {
  return TransformerStack("GPT-3(Medium)", /*num_layers=*/24, /*hidden=*/1024,
                          /*heads=*/16, kGptVocab, batch, seq,
                          /*tied_output_head=*/false);
}

}  // namespace oobp
