#include "src/nn/model_cache.h"

#include <map>
#include <mutex>
#include <utility>

#include "src/common/str_util.h"

namespace oobp {

namespace {

// Bounded size: sweeps touch a few dozen distinct points; a runaway caller
// generating unbounded keys flushes the cache instead of growing it forever.
constexpr size_t kMaxEntries = 512;

std::mutex& CacheMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, std::shared_ptr<const NnModel>>& ModelMap() {
  static auto* m = new std::map<std::string, std::shared_ptr<const NnModel>>();
  return *m;
}

std::map<std::string, std::shared_ptr<const CostModel>>& CostMap() {
  static auto* m = new std::map<std::string, std::shared_ptr<const CostModel>>();
  return *m;
}

// Hooks live behind their own mutex (not CacheMutex) and are copied out
// before invocation, so a hook may call back into the cache and a
// concurrent SetModelCacheHooks never races an in-flight lookup.
std::mutex& HooksMutex() {
  static std::mutex mu;
  return mu;
}

ModelCacheHooks& Hooks() {
  static auto* hooks = new ModelCacheHooks();
  return *hooks;
}

ModelCacheHooks CopyHooks() {
  std::lock_guard<std::mutex> lock(HooksMutex());
  return Hooks();
}

}  // namespace

std::string CostModelCacheKey(const GpuSpec& gpu,
                              const SystemProfile& profile) {
  // Every field of both structs: a missed field would alias two distinct
  // configurations onto one cached cost model.
  return StrFormat(
      "%s|%d|%d|%.17g|%.17g|%lld|%lld||%s|%.17g|%.17g|%lld|%d|%lld|%d|%.17g",
      gpu.name.c_str(), gpu.num_sms, gpu.blocks_per_sm, gpu.fp32_tflops,
      gpu.mem_bandwidth_gbps, static_cast<long long>(gpu.mem_bytes),
      static_cast<long long>(gpu.kernel_exec_overhead), profile.name.c_str(),
      profile.compute_efficiency, profile.mem_efficiency,
      static_cast<long long>(profile.issue_latency_per_op),
      profile.fused ? 1 : 0,
      static_cast<long long>(profile.graph_launch_latency),
      profile.issue_queue_depth, profile.allocator_overhead);
}

void SetModelCacheHooks(ModelCacheHooks hooks) {
  std::lock_guard<std::mutex> lock(HooksMutex());
  Hooks() = std::move(hooks);
}

void ClearModelCacheHooks() {
  std::lock_guard<std::mutex> lock(HooksMutex());
  Hooks() = ModelCacheHooks{};
}

std::shared_ptr<const NnModel> CachedModel(
    const std::string& key, const std::function<NnModel()>& builder) {
  {
    std::lock_guard<std::mutex> lock(CacheMutex());
    auto it = ModelMap().find(key);
    if (it != ModelMap().end()) {
      return it->second;
    }
  }
  const ModelCacheHooks hooks = CopyHooks();
  // Snapshot (or other external store) lookup before paying for the build.
  std::shared_ptr<const NnModel> built;
  if (hooks.find_model) {
    built = hooks.find_model(key);
  }
  if (built == nullptr) {
    // Build outside the lock: builders can be expensive, and a builder that
    // itself consults the cache must not deadlock. Concurrent first
    // requests may build twice; the first insert wins and both get
    // identical values.
    built = std::make_shared<const NnModel>(builder());
    if (hooks.record_model) {
      hooks.record_model(key, *built);
    }
  }
  std::lock_guard<std::mutex> lock(CacheMutex());
  if (ModelMap().size() >= kMaxEntries) {
    ModelMap().clear();
  }
  auto [it, inserted] = ModelMap().emplace(key, std::move(built));
  return it->second;
}

std::shared_ptr<const CostModel> CachedCostModel(const GpuSpec& gpu,
                                                 const SystemProfile& profile) {
  const std::string key = CostModelCacheKey(gpu, profile);
  {
    std::lock_guard<std::mutex> lock(CacheMutex());
    auto it = CostMap().find(key);
    if (it != CostMap().end()) {
      return it->second;
    }
  }
  // No find hook here: the caller already holds (gpu, profile) and the
  // constructor is two member copies — there is nothing a store could save.
  // Recording still matters: it is how `snapshot build` learns which
  // hardware points the scenario sweep actually exercises.
  auto built = std::make_shared<const CostModel>(gpu, profile);
  const ModelCacheHooks hooks = CopyHooks();
  if (hooks.record_cost_model) {
    hooks.record_cost_model(key, gpu, profile);
  }
  std::lock_guard<std::mutex> lock(CacheMutex());
  if (CostMap().size() >= kMaxEntries) {
    CostMap().clear();
  }
  auto [it, inserted] = CostMap().emplace(key, std::move(built));
  return it->second;
}

size_t ModelCacheSize() {
  std::lock_guard<std::mutex> lock(CacheMutex());
  return ModelMap().size();
}

size_t CostModelCacheSize() {
  std::lock_guard<std::mutex> lock(CacheMutex());
  return CostMap().size();
}

void ClearModelCaches() {
  std::lock_guard<std::mutex> lock(CacheMutex());
  ModelMap().clear();
  CostMap().clear();
}

}  // namespace oobp
