// ResNet-{50,101,152} (He et al., CVPR'16) as layer sequences.

#include <vector>

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/nn/layer_builder.h"
#include "src/nn/model_zoo.h"

namespace oobp {

namespace {

struct StageCfg {
  int blocks;
  int width;  // bottleneck width; output channels are 4x this
};

std::vector<StageCfg> StagesFor(int depth) {
  switch (depth) {
    case 50:
      return {{3, 64}, {4, 128}, {6, 256}, {3, 512}};
    case 101:
      return {{3, 64}, {4, 128}, {23, 256}, {3, 512}};
    case 152:
      return {{3, 64}, {8, 256 / 2}, {36, 256}, {3, 512}};
    default:
      OOBP_CHECK(false) << "unsupported ResNet depth " << depth;
      return {};
  }
}

}  // namespace

NnModel ResNet(int depth, int batch, int image) {
  NnModel model;
  model.name = StrFormat("ResNet-%d", depth);
  model.batch = batch;

  const bool imagenet = image > 64;
  int h = image;
  int c = 3;

  // Stem.
  if (imagenet) {
    model.layers.push_back(
        MakeConv2d("stem.conv", "stem", batch, c, h, h, 64, 7, 2));
    h /= 2;
    model.layers.push_back(MakePool("stem.pool", "stem", batch, 64, h / 2, h / 2));
    h /= 2;
  } else {
    model.layers.push_back(
        MakeConv2d("stem.conv", "stem", batch, c, h, h, 64, 3, 1));
  }
  c = 64;

  const std::vector<StageCfg> stages = StagesFor(depth);
  for (size_t s = 0; s < stages.size(); ++s) {
    const StageCfg& cfg = stages[s];
    const std::string block = StrFormat("stage%zu", s + 1);
    const int out_c = cfg.width * 4;
    for (int b = 0; b < cfg.blocks; ++b) {
      const int stride = (b == 0 && s > 0) ? 2 : 1;
      const std::string prefix = StrFormat("%s.b%d", block.c_str(), b);
      if (b == 0) {
        // Projection shortcut matches channel count / stride.
        model.layers.push_back(MakeConv2d(prefix + ".down", block, batch, c, h,
                                          h, out_c, 1, stride));
      }
      model.layers.push_back(
          MakeConv2d(prefix + ".conv1", block, batch, c, h, h, cfg.width, 1, 1));
      model.layers.push_back(MakeConv2d(prefix + ".conv2", block, batch,
                                        cfg.width, h, h, cfg.width, 3, stride));
      if (stride == 2) {
        h /= 2;
      }
      model.layers.push_back(MakeConv2d(prefix + ".conv3", block, batch,
                                        cfg.width, h, h, out_c, 1, 1));
      c = out_c;
    }
  }

  model.layers.push_back(MakePool("head.avgpool", "head", batch, c, 1, 1));
  const int classes = imagenet ? 1000 : 100;
  model.layers.push_back(MakeDense("head.fc", "head", batch, 1, c, classes));
  return model;
}

}  // namespace oobp
