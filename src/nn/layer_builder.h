// Constructors for the layer types the model zoo is built from.
//
// Each builder computes FLOPs, memory traffic, thread-block parallelism and
// memory footprint from tensor dimensions using standard formulas (2*MACs
// for FLOPs; one thread block per 128 output elements for forward/dgrad
// kernels; weight-gradient kernels parallelize over filter elements with
// reduction splits). The constants are calibrated so that the occupancy
// observations in Section 8.2 hold: DenseNet-121 DenseBlock-4 dW kernels run
// a few hundred thread blocks against the V100's 1,520-slot capacity, while
// DenseBlock-3 dO kernels saturate it.

#ifndef OOBP_SRC_NN_LAYER_BUILDER_H_
#define OOBP_SRC_NN_LAYER_BUILDER_H_

#include <cstdint>
#include <string>

#include "src/nn/layer.h"

namespace oobp {

// Elements per forward/dgrad thread block and per wgrad thread block.
inline constexpr double kElemsPerBlock = 128.0;
inline constexpr double kWgradElemsPerBlock = 64.0;
inline constexpr int64_t kDtypeBytes = 4;  // fp32 training

// 2D convolution (+ fused batch-norm + ReLU), NCHW.
// `groups` — 1 for dense conv, `in_c` for depthwise.
Layer MakeConv2d(const std::string& name, const std::string& block, int batch,
                 int in_c, int in_h, int in_w, int out_c, int kernel,
                 int stride, int groups = 1, bool fuse_bn_relu = true);

// Fully connected layer: [batch*tokens, in_dim] x [in_dim, out_dim].
Layer MakeDense(const std::string& name, const std::string& block, int batch,
                int tokens, int in_dim, int out_dim);

// Pooling / elementwise block (no parameters).
Layer MakePool(const std::string& name, const std::string& block, int batch,
               int channels, int out_h, int out_w);

// Token embedding lookup (params but negligible forward FLOPs; the weight
// gradient is a scatter-add over the batch).
Layer MakeEmbedding(const std::string& name, const std::string& block,
                    int batch, int tokens, int vocab, int hidden);

// One transformer encoder/decoder layer (self-attention + FFN); `hidden`
// must be divisible by `heads`. `ffn_mult` is the FFN expansion (4 for
// BERT/GPT).
Layer MakeTransformerLayer(const std::string& name, const std::string& block,
                           int batch, int seq, int hidden, int heads,
                           int ffn_mult = 4);

// One LSTM cell step-unrolled over `seq` steps (the paper's "RNN (16 Cell)"
// model stacks 16 of these).
Layer MakeLstmCell(const std::string& name, const std::string& block,
                   int batch, int seq, int input_dim, int hidden);

}  // namespace oobp

#endif  // OOBP_SRC_NN_LAYER_BUILDER_H_
