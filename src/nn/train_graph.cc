#include "src/nn/train_graph.h"

#include "src/common/check.h"

namespace oobp {

TrainGraph::TrainGraph(const NnModel* model) : model_(model) {
  OOBP_CHECK(model != nullptr);
  OOBP_CHECK_GT(model->num_layers(), 0);
}

bool TrainGraph::HasWgrad(int layer) const {
  OOBP_CHECK_GE(layer, 0);
  OOBP_CHECK_LT(layer, num_layers());
  return model_->layers[layer].has_params();
}

std::vector<TrainOp> TrainGraph::ConventionalBackprop() const {
  std::vector<TrainOp> order;
  for (int i = num_layers() - 1; i >= 0; --i) {
    order.push_back({TrainOpType::kOutputGrad, i});
    if (HasWgrad(i)) {
      order.push_back({TrainOpType::kWeightGrad, i});
    }
  }
  return order;
}

std::vector<TrainOp> TrainGraph::FullyDeferredBackprop() const {
  std::vector<TrainOp> order;
  for (int i = num_layers() - 1; i >= 0; --i) {
    order.push_back({TrainOpType::kOutputGrad, i});
  }
  for (int i = num_layers() - 1; i >= 0; --i) {
    if (HasWgrad(i)) {
      order.push_back({TrainOpType::kWeightGrad, i});
    }
  }
  return order;
}

std::vector<TrainOp> TrainGraph::Forward() const {
  std::vector<TrainOp> order;
  for (int i = 0; i < num_layers(); ++i) {
    order.push_back({TrainOpType::kForward, i});
  }
  return order;
}

bool TrainGraph::ValidateBackpropOrder(const std::vector<TrainOp>& order) const {
  const int L = num_layers();
  std::vector<int> dgrad_pos(L, -1);
  std::vector<int> wgrad_pos(L, -1);

  for (size_t pos = 0; pos < order.size(); ++pos) {
    const TrainOp& op = order[pos];
    if (op.layer < 0 || op.layer >= L) {
      return false;
    }
    switch (op.type) {
      case TrainOpType::kOutputGrad:
        if (dgrad_pos[op.layer] != -1) {
          return false;  // duplicate
        }
        dgrad_pos[op.layer] = static_cast<int>(pos);
        break;
      case TrainOpType::kWeightGrad:
        if (!HasWgrad(op.layer) || wgrad_pos[op.layer] != -1) {
          return false;
        }
        wgrad_pos[op.layer] = static_cast<int>(pos);
        break;
      default:
        return false;  // backprop orders contain only gradient ops
    }
  }

  for (int i = 0; i < L; ++i) {
    if (dgrad_pos[i] == -1) {
      return false;  // missing dO
    }
    if (HasWgrad(i) && wgrad_pos[i] == -1) {
      return false;  // missing dW
    }
    // dO chain: dO_i strictly after dO_{i+1}.
    if (i + 1 < L && dgrad_pos[i] <= dgrad_pos[i + 1]) {
      return false;
    }
    // dW_i consumes dO_{i+1}'s output.
    if (HasWgrad(i) && i + 1 < L && wgrad_pos[i] <= dgrad_pos[i + 1]) {
      return false;
    }
  }
  return true;
}

}  // namespace oobp
