#include "src/nn/cost_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/nn/layer_builder.h"

namespace oobp {

const char* TrainOpTypeName(TrainOpType type) {
  switch (type) {
    case TrainOpType::kForward:
      return "fwd";
    case TrainOpType::kOutputGrad:
      return "dO";
    case TrainOpType::kWeightGrad:
      return "dW";
    case TrainOpType::kWeightUpdate:
      return "update";
  }
  return "?";
}

SystemProfile SystemProfile::TensorFlowXla() {
  SystemProfile p;
  p.name = "XLA";
  p.compute_efficiency = 0.48;  // fusion keeps kernels close to roofline
  p.mem_efficiency = 0.78;
  p.issue_latency_per_op = Us(20);  // one HLO thunk launch per fused layer
  p.fused = true;
  p.graph_launch_latency = Us(8);
  p.issue_queue_depth = 8;
  p.allocator_overhead = 1.05;
  return p;
}

SystemProfile SystemProfile::TensorFlow() {
  SystemProfile p;
  p.name = "TF";
  p.compute_efficiency = 0.40;  // unfused elementwise ops between GEMMs
  p.mem_efficiency = 0.70;
  p.issue_latency_per_op = Us(22);  // paid per primitive op
  p.fused = false;
  p.graph_launch_latency = Us(8);
  p.issue_queue_depth = 6;
  p.allocator_overhead = 1.08;
  return p;
}

SystemProfile SystemProfile::PyTorchNimble() {
  SystemProfile p;
  p.name = "Nimble";
  p.compute_efficiency = 0.45;
  p.mem_efficiency = 0.75;
  p.issue_latency_per_op = Us(18);
  p.issue_queue_depth = 6;
  p.fused = true;  // TorchScript-fused graph captured by Nimble
  p.graph_launch_latency = Us(8);
  // Nimble captures the whole iteration into a static graph and keeps every
  // intermediate alive, which is why it runs out of memory first in Fig. 7.
  p.allocator_overhead = 3.8;
  return p;
}

CostModel::CostModel(GpuSpec gpu, SystemProfile profile)
    : gpu_(std::move(gpu)), profile_(std::move(profile)) {
  OOBP_CHECK_GT(gpu_.fp32_tflops, 0.0);
  OOBP_CHECK_GT(gpu_.mem_bandwidth_gbps, 0.0);
  OOBP_CHECK_GT(profile_.compute_efficiency, 0.0);
  OOBP_CHECK_GT(profile_.mem_efficiency, 0.0);
}

TimeNs CostModel::RooflineTime(int64_t flops, int64_t bytes,
                               double thread_blocks) const {
  // TFLOPS = flops/ns * 1e3; GB/s = bytes/ns.
  const double flops_per_ns =
      gpu_.fp32_tflops * 1e3 * profile_.compute_efficiency;
  const double bytes_per_ns = gpu_.mem_bandwidth_gbps * profile_.mem_efficiency;
  double rate_scale = 1.0;
  if (thread_blocks > 0.0) {
    // Full rate needs ~4 resident blocks per SM; fewer blocks leave SMs
    // without enough latency-hiding parallelism.
    const double full_blocks = 4.0 * gpu_.num_sms;
    rate_scale = std::clamp(thread_blocks / full_blocks, 0.05, 1.0);
  }
  const double compute_ns =
      static_cast<double>(flops) / (flops_per_ns * rate_scale);
  const double memory_ns =
      static_cast<double>(bytes) / (bytes_per_ns * rate_scale);
  constexpr double kKernelFloorNs = 8000.0;  // fixed ramp-up per kernel
  return static_cast<TimeNs>(
      std::ceil(std::max({compute_ns, memory_ns, kKernelFloorNs})));
}

KernelCost CostModel::Cost(const Layer& layer, TrainOpType op) const {
  KernelCost cost;
  const int issue_ops = profile_.fused ? 1 : layer.fused_ops;
  cost.issue_latency = profile_.issue_latency_per_op * issue_ops;
  switch (op) {
    case TrainOpType::kForward:
      cost.duration =
          RooflineTime(layer.fwd_flops, layer.fwd_bytes, layer.fwd_blocks);
      cost.thread_blocks = layer.fwd_blocks;
      break;
    case TrainOpType::kOutputGrad:
      cost.duration = RooflineTime(layer.dgrad_flops, layer.dgrad_bytes,
                                   layer.dgrad_blocks);
      cost.thread_blocks = layer.dgrad_blocks;
      break;
    case TrainOpType::kWeightGrad:
      cost.duration = RooflineTime(layer.wgrad_flops, layer.wgrad_bytes,
                                   layer.wgrad_blocks);
      cost.thread_blocks = layer.wgrad_blocks;
      break;
    case TrainOpType::kWeightUpdate: {
      // Momentum SGD: read grad + weight + velocity, write weight + velocity.
      const int64_t param_elems = layer.param_bytes / kDtypeBytes;
      cost.duration = RooflineTime(3 * param_elems, 5 * layer.param_bytes);
      cost.thread_blocks =
          std::max(1.0, std::ceil(static_cast<double>(param_elems) / 256.0));
      cost.issue_latency = profile_.issue_latency_per_op / 2;
      break;
    }
  }
  return cost;
}

}  // namespace oobp
