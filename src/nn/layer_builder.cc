#include "src/nn/layer_builder.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace oobp {

namespace {

double BlocksFor(int64_t elems, double elems_per_block) {
  return std::max(1.0, std::ceil(static_cast<double>(elems) / elems_per_block));
}

}  // namespace

Layer MakeConv2d(const std::string& name, const std::string& block, int batch,
                 int in_c, int in_h, int in_w, int out_c, int kernel,
                 int stride, int groups, bool fuse_bn_relu) {
  OOBP_CHECK_GT(batch, 0);
  OOBP_CHECK_GT(stride, 0);
  OOBP_CHECK_EQ(in_c % groups, 0);
  OOBP_CHECK_EQ(out_c % groups, 0);
  const int out_h = (in_h + stride - 1) / stride;
  const int out_w = (in_w + stride - 1) / stride;

  Layer l;
  l.name = name;
  l.block = block;

  const int64_t in_elems = static_cast<int64_t>(batch) * in_c * in_h * in_w;
  const int64_t out_elems = static_cast<int64_t>(batch) * out_c * out_h * out_w;
  const int64_t weight_elems =
      static_cast<int64_t>(in_c / groups) * out_c * kernel * kernel;
  // MACs = out_elems * (in_c/groups) * k*k; FLOPs = 2 * MACs.
  const int64_t macs = out_elems * (in_c / groups) * kernel * kernel;

  l.fwd_flops = 2 * macs;
  l.dgrad_flops = 2 * macs;  // dX: same GEMM volume as forward
  l.wgrad_flops = 2 * macs;  // dW: same GEMM volume, different reduction
  l.fwd_bytes = (in_elems + out_elems + weight_elems) * kDtypeBytes;
  l.dgrad_bytes = (in_elems + out_elems + weight_elems) * kDtypeBytes;
  l.wgrad_bytes = (in_elems + out_elems + weight_elems) * kDtypeBytes;

  l.fwd_blocks = BlocksFor(out_elems, kElemsPerBlock);
  l.dgrad_blocks = BlocksFor(in_elems, kElemsPerBlock);
  // Weight-gradient kernels parallelize over filter elements, but cuDNN
  // split-K reductions add batch/spatial parallelism when the filter is
  // small relative to the input.
  l.wgrad_blocks = std::max(BlocksFor(weight_elems, kWgradElemsPerBlock),
                            BlocksFor(in_elems, 16 * kWgradElemsPerBlock));

  l.param_bytes = weight_elems * kDtypeBytes;
  if (fuse_bn_relu) {
    l.param_bytes += 2LL * out_c * kDtypeBytes;  // BN scale + shift
    l.fused_ops = 3;
  }
  l.output_bytes = out_elems * kDtypeBytes;
  // im2col-style scratch used by the gradient kernels.
  l.workspace_bytes =
      std::min<int64_t>(out_elems * kernel * kernel * kDtypeBytes,
                        256LL * 1024 * 1024);
  return l;
}

Layer MakeDense(const std::string& name, const std::string& block, int batch,
                int tokens, int in_dim, int out_dim) {
  OOBP_CHECK_GT(batch, 0);
  Layer l;
  l.name = name;
  l.block = block;

  const int64_t rows = static_cast<int64_t>(batch) * tokens;
  const int64_t in_elems = rows * in_dim;
  const int64_t out_elems = rows * out_dim;
  const int64_t weight_elems = static_cast<int64_t>(in_dim) * out_dim;
  const int64_t macs = rows * in_dim * out_dim;

  l.fwd_flops = 2 * macs;
  l.dgrad_flops = 2 * macs;
  l.wgrad_flops = 2 * macs;
  l.fwd_bytes = (in_elems + out_elems + weight_elems) * kDtypeBytes;
  l.dgrad_bytes = l.fwd_bytes;
  l.wgrad_bytes = l.fwd_bytes;

  l.fwd_blocks = BlocksFor(out_elems, kElemsPerBlock);
  l.dgrad_blocks = BlocksFor(in_elems, kElemsPerBlock);
  l.wgrad_blocks = std::max(BlocksFor(weight_elems, kWgradElemsPerBlock),
                            BlocksFor(in_elems, 16 * kWgradElemsPerBlock));

  l.param_bytes = (weight_elems + out_dim) * kDtypeBytes;  // + bias
  l.output_bytes = out_elems * kDtypeBytes;
  l.fused_ops = 2;  // matmul + bias/activation
  return l;
}

Layer MakePool(const std::string& name, const std::string& block, int batch,
               int channels, int out_h, int out_w) {
  Layer l;
  l.name = name;
  l.block = block;
  const int64_t out_elems =
      static_cast<int64_t>(batch) * channels * out_h * out_w;
  // Bandwidth-bound: ~5 FLOPs and ~8 bytes per element.
  l.fwd_flops = out_elems * 5;
  l.dgrad_flops = out_elems * 5;
  l.wgrad_flops = 0;
  l.fwd_bytes = out_elems * 8;
  l.dgrad_bytes = out_elems * 8;
  l.fwd_blocks = BlocksFor(out_elems, 2 * kElemsPerBlock);
  l.dgrad_blocks = l.fwd_blocks;
  l.wgrad_blocks = 1.0;
  l.output_bytes = out_elems * kDtypeBytes;
  return l;
}

Layer MakeEmbedding(const std::string& name, const std::string& block,
                    int batch, int tokens, int vocab, int hidden) {
  Layer l;
  l.name = name;
  l.block = block;
  const int64_t rows = static_cast<int64_t>(batch) * tokens;
  const int64_t out_elems = rows * hidden;
  l.fwd_flops = out_elems;  // gather
  l.dgrad_flops = 0;
  l.wgrad_flops = 2 * out_elems;  // scatter-add
  l.fwd_bytes = out_elems * 2 * kDtypeBytes;
  l.dgrad_bytes = out_elems * kDtypeBytes;
  l.wgrad_bytes = out_elems * 2 * kDtypeBytes;
  l.fwd_blocks = BlocksFor(out_elems, kElemsPerBlock);
  l.dgrad_blocks = 1.0;
  l.wgrad_blocks = BlocksFor(out_elems, kElemsPerBlock);
  l.param_bytes = static_cast<int64_t>(vocab) * hidden * kDtypeBytes;
  l.output_bytes = out_elems * kDtypeBytes;
  return l;
}

Layer MakeTransformerLayer(const std::string& name, const std::string& block,
                           int batch, int seq, int hidden, int heads,
                           int ffn_mult) {
  OOBP_CHECK_EQ(hidden % heads, 0);
  Layer l;
  l.name = name;
  l.block = block;

  const int64_t b = batch;
  const int64_t s = seq;
  const int64_t h = hidden;
  // Parameter count: QKV + output projection (4h^2) + FFN (2 * ffn_mult h^2)
  // + 4h of norms/biases.
  const int64_t weight_elems = (4 + 2 * ffn_mult) * h * h + 4 * h;
  // GEMM MACs: tokens * weight_elems; attention score/context MACs: 2*b*s^2*h.
  const int64_t gemm_macs = b * s * ((4 + 2 * ffn_mult) * h * h);
  const int64_t attn_macs = 2 * b * s * s * h;
  const int64_t macs = gemm_macs + attn_macs;

  l.fwd_flops = 2 * macs;
  l.dgrad_flops = 2 * macs;
  l.wgrad_flops = 2 * gemm_macs;  // attention has no weights in score matmuls

  const int64_t token_elems = b * s * h;
  l.fwd_bytes = (3 * token_elems + weight_elems + b * s * s) * kDtypeBytes;
  l.dgrad_bytes = l.fwd_bytes;
  l.wgrad_bytes = (2 * token_elems + weight_elems) * kDtypeBytes;

  l.fwd_blocks = BlocksFor(token_elems * ffn_mult, kElemsPerBlock);
  l.dgrad_blocks = l.fwd_blocks;
  l.wgrad_blocks = BlocksFor(weight_elems, kWgradElemsPerBlock);

  l.param_bytes = weight_elems * kDtypeBytes;
  l.output_bytes = token_elems * kDtypeBytes;
  // Retained for backward: QKV, attention probs, FFN intermediate, norms.
  l.stash_bytes =
      (6 * token_elems + ffn_mult * token_elems) * kDtypeBytes +
      b * static_cast<int64_t>(heads) * s * s * kDtypeBytes;
  l.fused_ops = 8;  // qkv, scores, softmax, context, proj, ffn1, ffn2, norms
  return l;
}

Layer MakeLstmCell(const std::string& name, const std::string& block,
                   int batch, int seq, int input_dim, int hidden) {
  Layer l;
  l.name = name;
  l.block = block;
  const int64_t b = batch;
  const int64_t s = seq;
  const int64_t h = hidden;
  const int64_t weight_elems = 4 * h * (input_dim + h) + 4 * h;
  // Per step: x*W (4h*input) + h*U (4h*h) MACs, over s steps and b samples.
  const int64_t macs = b * s * 4 * h * (input_dim + h);

  l.fwd_flops = 2 * macs;
  l.dgrad_flops = 2 * macs;
  l.wgrad_flops = 2 * macs;
  const int64_t state_elems = b * s * h;
  l.fwd_bytes = (state_elems * 6 + weight_elems) * kDtypeBytes;
  l.dgrad_bytes = l.fwd_bytes;
  l.wgrad_bytes = l.fwd_bytes;

  // Step-sequential execution keeps per-kernel parallelism low: one step's
  // GEMM only has b*4h outputs.
  l.fwd_blocks = BlocksFor(b * 4 * h, kElemsPerBlock);
  l.dgrad_blocks = l.fwd_blocks;
  l.wgrad_blocks = BlocksFor(weight_elems, kWgradElemsPerBlock);

  l.param_bytes = weight_elems * kDtypeBytes;
  l.output_bytes = state_elems * kDtypeBytes;
  l.stash_bytes = 4 * state_elems * kDtypeBytes;  // gate activations
  l.fused_ops = static_cast<int>(std::min<int64_t>(s, 64));  // per-step issue
  return l;
}

}  // namespace oobp
