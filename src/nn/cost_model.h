// Roofline cost model: converts a layer's training ops into kernel costs
// (duration, occupancy, host issue latency) for a given GPU and framework.
//
// Kernel duration = max(compute time, memory time) under achievable
// efficiency fractions. Host issue latency models the framework executor:
// fused compilers (XLA) issue roughly one kernel per layer, eager executors
// (TensorFlow, PyTorch) issue one per primitive op. These two knobs
// reproduce the paper's Figure 1/2 observations — light convolutions whose
// issue cost exceeds their execution time.

#ifndef OOBP_SRC_NN_COST_MODEL_H_
#define OOBP_SRC_NN_COST_MODEL_H_

#include <string>

#include "src/common/time.h"
#include "src/hw/gpu_spec.h"
#include "src/nn/layer.h"

namespace oobp {

enum class TrainOpType {
  kForward,
  kOutputGrad,
  kWeightGrad,
  kWeightUpdate,
};

const char* TrainOpTypeName(TrainOpType type);

struct KernelCost {
  TimeNs duration = 0;        // solo execution time on the GPU
  double thread_blocks = 1.0;  // occupancy cap
  TimeNs issue_latency = 0;   // host-side cost to issue (per-op mode)
};

// Framework/executor characteristics.
struct SystemProfile {
  std::string name;
  double compute_efficiency = 0.45;  // achieved fraction of peak FLOPs
  double mem_efficiency = 0.75;      // achieved fraction of peak bandwidth
  TimeNs issue_latency_per_op = Us(15);
  bool fused = true;  // one kernel issue per layer vs per primitive op
  TimeNs graph_launch_latency = Us(8);
  // How many issued-but-unfinished kernels the executor keeps in flight
  // (bounded run-ahead; see CpuLauncher).
  int issue_queue_depth = 16;
  // Framework allocator overhead applied to model memory footprints.
  double allocator_overhead = 1.05;

  static SystemProfile TensorFlowXla();
  static SystemProfile TensorFlow();
  // PyTorch JIT backend used as the Nimble baseline in Figure 7.
  static SystemProfile PyTorchNimble();
};

class CostModel {
 public:
  CostModel(GpuSpec gpu, SystemProfile profile);

  // max(flops-limited, bandwidth-limited) time, with a small floor that
  // models fixed kernel ramp-up. `thread_blocks` (optional) applies the
  // occupancy penalty: a kernel needs ~4 resident blocks per SM to reach
  // peak rate; below that, latency hiding degrades and the achieved rate
  // scales down proportionally (this is what keeps tiny CIFAR-sized
  // convolutions at tens of microseconds on real GPUs).
  TimeNs RooflineTime(int64_t flops, int64_t bytes,
                      double thread_blocks = -1.0) const;

  KernelCost Cost(const Layer& layer, TrainOpType op) const;

  const GpuSpec& gpu() const { return gpu_; }
  const SystemProfile& profile() const { return profile_; }

 private:
  GpuSpec gpu_;
  SystemProfile profile_;
};

}  // namespace oobp

#endif  // OOBP_SRC_NN_COST_MODEL_H_
