// The RNN (16 stacked LSTM cells, IWSLT translation) and the plain FFNN used
// for the pipeline-parallel analysis (Figures 11 and 12).

#include "src/common/str_util.h"
#include "src/nn/layer_builder.h"
#include "src/nn/model_zoo.h"

namespace oobp {

namespace {
constexpr int kIwsltVocab = 32000;
}  // namespace

NnModel RnnModel(int cells, int batch, int seq, int hidden) {
  NnModel model;
  model.name = StrFormat("RNN-%dcell", cells);
  model.batch = batch;

  model.layers.push_back(
      MakeEmbedding("embed", "embed", batch, seq, kIwsltVocab, hidden));
  for (int i = 0; i < cells; ++i) {
    model.layers.push_back(MakeLstmCell(StrFormat("cell%d", i),
                                        StrFormat("cell%d", i), batch, seq,
                                        hidden, hidden));
  }
  model.layers.push_back(
      MakeDense("head.proj", "head", batch, seq, hidden, kIwsltVocab));
  return model;
}

NnModel Ffnn(int num_layers, int batch, int hidden) {
  NnModel model;
  model.name = StrFormat("FFNN-%d", num_layers);
  model.batch = batch;
  for (int i = 0; i < num_layers; ++i) {
    model.layers.push_back(MakeDense(StrFormat("fc%d", i),
                                     StrFormat("fc%d", i), batch, 1, hidden,
                                     hidden));
  }
  return model;
}

}  // namespace oobp
