// DenseNet-{121,169} (Huang et al., CVPR'17) with configurable growth rate.
//
// Each dense layer is a bottleneck pair (1x1 conv to 4k channels, 3x3 conv
// to k channels) whose input is the concatenation of all previous outputs in
// the block — which is why input channel counts, and with them the kernel
// issue overhead relative to execution time, grow through the network
// (Figures 1 and 2). Block names "denseblock1..4" / "transitionN" seed the
// region structure the single-GPU scheduler profiles.

#include <vector>

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/nn/layer_builder.h"
#include "src/nn/model_zoo.h"

namespace oobp {

namespace {

std::vector<int> BlocksFor(int depth) {
  switch (depth) {
    case 121:
      return {6, 12, 24, 16};
    case 169:
      return {6, 12, 32, 32};
    default:
      OOBP_CHECK(false) << "unsupported DenseNet depth " << depth;
      return {};
  }
}

}  // namespace

NnModel DenseNet(int depth, int growth, int batch, int image) {
  OOBP_CHECK_GT(growth, 0);
  NnModel model;
  model.name = StrFormat("DenseNet-%d(k=%d)", depth, growth);
  model.batch = batch;

  const bool imagenet = image > 64;
  int h = image;
  int c = 2 * growth;

  if (imagenet) {
    model.layers.push_back(
        MakeConv2d("stem.conv", "stem", batch, 3, h, h, c, 7, 2));
    h /= 2;
    model.layers.push_back(MakePool("stem.pool", "stem", batch, c, h / 2, h / 2));
    h /= 2;
  } else {
    model.layers.push_back(
        MakeConv2d("stem.conv", "stem", batch, 3, h, h, c, 3, 1));
  }

  const std::vector<int> blocks = BlocksFor(depth);
  for (size_t b = 0; b < blocks.size(); ++b) {
    const std::string block = StrFormat("denseblock%zu", b + 1);
    for (int i = 0; i < blocks[b]; ++i) {
      const std::string prefix = StrFormat("%s.l%d", block.c_str(), i);
      // Bottleneck: concat(c) -> 4k via 1x1, then 4k -> k via 3x3.
      model.layers.push_back(MakeConv2d(prefix + ".conv1x1", block, batch, c, h,
                                        h, 4 * growth, 1, 1));
      model.layers.push_back(MakeConv2d(prefix + ".conv3x3", block, batch,
                                        4 * growth, h, h, growth, 3, 1));
      c += growth;
    }
    if (b + 1 < blocks.size()) {
      const std::string tblock = StrFormat("transition%zu", b + 1);
      model.layers.push_back(
          MakeConv2d(tblock + ".conv", tblock, batch, c, h, h, c / 2, 1, 1));
      c /= 2;
      model.layers.push_back(
          MakePool(tblock + ".pool", tblock, batch, c, h / 2, h / 2));
      h /= 2;
    }
  }

  model.layers.push_back(MakePool("head.avgpool", "head", batch, c, 1, 1));
  const int classes = imagenet ? 1000 : 100;
  model.layers.push_back(MakeDense("head.fc", "head", batch, 1, c, classes));
  return model;
}

}  // namespace oobp
