// Neural network layer and model descriptions.
//
// A Layer captures everything the scheduling problem needs: the FLOPs and
// memory traffic of its three training computations (forward, output
// gradient, weight gradient), the thread-block parallelism of each kernel,
// and its memory footprint (parameters, stored activations). The actual
// tensor *values* never matter for scheduling, so they are not represented —
// the paper's optimizations provably do not change training semantics
// (Section 8: "we only evaluate the training throughput and the memory
// overhead").

#ifndef OOBP_SRC_NN_LAYER_H_
#define OOBP_SRC_NN_LAYER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace oobp {

struct Layer {
  std::string name;
  // Sub-structure this layer belongs to ("denseblock3", "stage2", ...); the
  // single-GPU scheduler derives its profiling regions from blocks
  // (Section 4.1: "a ResNet block can be a single region").
  std::string block;

  // Compute characteristics per training op. `*_flops` is arithmetic work,
  // `*_bytes` the memory traffic the kernel moves (roofline denominator).
  int64_t fwd_flops = 0;
  int64_t dgrad_flops = 0;  // output gradient (dO)
  int64_t wgrad_flops = 0;  // weight gradient (dW); 0 for param-free layers
  int64_t fwd_bytes = 0;
  int64_t dgrad_bytes = 0;
  int64_t wgrad_bytes = 0;

  // Thread-block parallelism of each kernel (occupancy cap on the GPU).
  double fwd_blocks = 1.0;
  double dgrad_blocks = 1.0;
  double wgrad_blocks = 1.0;

  // Memory footprint.
  int64_t param_bytes = 0;   // weights (+ optimizer state handled separately)
  int64_t output_bytes = 0;  // activation output, retained for backprop
  int64_t stash_bytes = 0;   // extra internal activations retained for bwd
  int64_t workspace_bytes = 0;  // transient scratch while a kernel runs

  // Number of primitive framework ops this layer stands for (conv+bn+relu
  // = 3). Unfused executors pay issue latency per primitive op.
  int fused_ops = 1;

  bool has_params() const { return param_bytes > 0; }
};

struct NnModel {
  std::string name;
  int batch = 0;
  std::vector<Layer> layers;

  int num_layers() const { return static_cast<int>(layers.size()); }
  int64_t TotalParamBytes() const;
  int64_t TotalFwdFlops() const;
  int64_t TotalActivationBytes() const;
  // Ordered list of distinct block names (first-appearance order).
  std::vector<std::string> Blocks() const;
};

}  // namespace oobp

#endif  // OOBP_SRC_NN_LAYER_H_
