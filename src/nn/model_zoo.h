// Builders for the twelve neural networks of the paper's evaluation
// (Table 1): DenseNet-{121,169}, MobileNet V3 Large, ResNet-{50,101,152},
// an RNN with 16 LSTM cells, a plain FFNN, BERT-{12,24,48}, and GPT-3
// Medium. Dimensions follow the papers the authors cite (growth rates 12/24/
// 32 for DenseNet, multipliers 0.25-1.0 for MobileNet, vocab 30,522 for BERT
// and 50,257 for GPT-3, sequence lengths 128/512 for pre-training).

#ifndef OOBP_SRC_NN_MODEL_ZOO_H_
#define OOBP_SRC_NN_MODEL_ZOO_H_

#include "src/nn/layer.h"

namespace oobp {

// depth in {50, 101, 152}; `image` 224 for ImageNet, 32 for CIFAR.
NnModel ResNet(int depth, int batch, int image = 224);

// depth in {121, 169}; `growth` is the paper's k hyper-parameter (12/24/32).
NnModel DenseNet(int depth, int growth, int batch, int image = 224);

// `multiplier` is the paper's alpha (0.25/0.5/0.75/1.0).
NnModel MobileNetV3Large(double multiplier, int batch, int image = 224);

// num_layers in {12, 24, 48}. BERT-12 is BERT-Base (hidden 768); deeper
// variants use the BERT-Large width (hidden 1024).
NnModel Bert(int num_layers, int batch, int seq = 128);

// GPT-3 Medium: 24 decoders, hidden 1024 (paper: seq 512, vocab 50,257).
NnModel Gpt3Medium(int batch, int seq = 512);

// Seq2seq RNN with `cells` stacked LSTM cells (paper: 16 cells, IWSLT).
NnModel RnnModel(int cells, int batch, int seq = 32, int hidden = 1024);

// Plain feed-forward network with `num_layers` equal fully-connected layers
// (the Figure 12 analysis model).
NnModel Ffnn(int num_layers, int batch, int hidden = 4096);

}  // namespace oobp

#endif  // OOBP_SRC_NN_MODEL_ZOO_H_
