// Training computation graph: the ops of one training iteration and their
// dependencies, exactly as formulated in Section 2 of the paper.
//
// For a model with layers 0..L-1, one iteration contains, per layer i:
//   F_i   forward computation,
//   dO_i  output-gradient computation (consumes the gradient produced by
//         dO_{i+1}; dO_{L-1} consumes the loss gradient),
//   dW_i  weight-gradient computation (also consumes dO_{i+1}'s output —
//         this is the *only* dependency, which is what makes out-of-order
//         backprop sound: dW_i is needed by nothing but the weight update),
//   U_i   weight update (consumes dW_i; in data-parallel training a
//         synchronization S[dW_i] sits between dW_i and U_i).
//
// The canonical (conventional) backpropagation order interleaves
// dO_{L-1}, dW_{L-1}, dO_{L-2}, dW_{L-2}, ... Out-of-order schedules permute
// the dW ops; ValidateBackpropOrder checks that a permutation respects the
// dependencies above.

#ifndef OOBP_SRC_NN_TRAIN_GRAPH_H_
#define OOBP_SRC_NN_TRAIN_GRAPH_H_

#include <vector>

#include "src/nn/cost_model.h"
#include "src/nn/layer.h"

namespace oobp {

struct TrainOp {
  TrainOpType type = TrainOpType::kForward;
  int layer = 0;

  friend bool operator==(const TrainOp&, const TrainOp&) = default;
};

class TrainGraph {
 public:
  explicit TrainGraph(const NnModel* model);

  const NnModel& model() const { return *model_; }
  int num_layers() const { return model_->num_layers(); }

  // Whether layer i has a weight-gradient computation (param-free layers
  // such as pooling do not).
  bool HasWgrad(int layer) const;

  // [dO_{L-1}, dW_{L-1}, dO_{L-2}, ...] — strict reverse-layout order.
  std::vector<TrainOp> ConventionalBackprop() const;

  // Backprop with every dW op after every dO op (the fully deferred
  // extreme of ooo backprop; used by gradient fast-forwarding).
  std::vector<TrainOp> FullyDeferredBackprop() const;

  // Forward pass [F_0 .. F_{L-1}].
  std::vector<TrainOp> Forward() const;

  // True iff `order` contains each dO exactly once in descending layer
  // order, each dW of a parameterized layer exactly once, and every dW_i
  // appears after dO_{i+1} (no constraint for i == L-1).
  bool ValidateBackpropOrder(const std::vector<TrainOp>& order) const;

 private:
  const NnModel* model_;
};

}  // namespace oobp

#endif  // OOBP_SRC_NN_TRAIN_GRAPH_H_
