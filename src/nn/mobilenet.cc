// MobileNet V3 Large (Howard et al., ICCV'19) with width multiplier alpha.
//
// Each inverted-residual "bneck" expands with a 1x1 conv, filters with a
// depthwise conv, and projects back with a 1x1 conv. Depthwise convolutions
// are extremely light (few FLOPs per output element), which makes MobileNet
// the most issue-overhead-bound model in the paper's single-GPU study.

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/nn/layer_builder.h"
#include "src/nn/model_zoo.h"

namespace oobp {

namespace {

// Rounds channels to the nearest multiple of 8 (the MobileNet convention).
int ScaleChannels(int c, double multiplier) {
  const int scaled = static_cast<int>(c * multiplier + 4.0);
  return std::max(8, scaled - scaled % 8);
}

struct BneckCfg {
  int kernel;
  int expand;
  int out;
  int stride;
};

}  // namespace

NnModel MobileNetV3Large(double multiplier, int batch, int image) {
  OOBP_CHECK_GT(multiplier, 0.0);
  NnModel model;
  model.name = StrFormat("MobileNetV3-L(a=%.2f)", multiplier);
  model.batch = batch;

  // The V3-Large configuration table (kernel, expansion size, output
  // channels, stride), before the width multiplier.
  const std::vector<BneckCfg> cfgs = {
      {3, 16, 16, 1},   {3, 64, 24, 2},   {3, 72, 24, 1},   {5, 72, 40, 2},
      {5, 120, 40, 1},  {5, 120, 40, 1},  {3, 240, 80, 2},  {3, 200, 80, 1},
      {3, 184, 80, 1},  {3, 184, 80, 1},  {3, 480, 112, 1}, {3, 672, 112, 1},
      {5, 672, 160, 2}, {5, 960, 160, 1}, {5, 960, 160, 1},
  };

  int h = image;
  int c = ScaleChannels(16, multiplier);
  model.layers.push_back(MakeConv2d("stem.conv", "stem", batch, 3, h, h, c, 3,
                                    image > 64 ? 2 : 1));
  if (image > 64) {
    h /= 2;
  }

  int stage = 1;
  for (size_t i = 0; i < cfgs.size(); ++i) {
    const BneckCfg& cfg = cfgs[i];
    if (cfg.stride == 2) {
      ++stage;
    }
    const std::string block = StrFormat("stage%d", stage);
    const std::string prefix = StrFormat("bneck%zu", i);
    const int exp_c = ScaleChannels(cfg.expand, multiplier);
    const int out_c = ScaleChannels(cfg.out, multiplier);

    if (exp_c != c) {
      model.layers.push_back(
          MakeConv2d(prefix + ".expand", block, batch, c, h, h, exp_c, 1, 1));
    }
    model.layers.push_back(MakeConv2d(prefix + ".dw", block, batch, exp_c, h, h,
                                      exp_c, cfg.kernel, cfg.stride,
                                      /*groups=*/exp_c));
    if (cfg.stride == 2) {
      h /= 2;
    }
    model.layers.push_back(
        MakeConv2d(prefix + ".project", block, batch, exp_c, h, h, out_c, 1, 1));
    c = out_c;
  }

  const int last_c = ScaleChannels(960, multiplier);
  model.layers.push_back(
      MakeConv2d("head.conv", "head", batch, c, h, h, last_c, 1, 1));
  model.layers.push_back(MakePool("head.avgpool", "head", batch, last_c, 1, 1));
  const int feat_c = std::max(1280, ScaleChannels(1280, multiplier));
  model.layers.push_back(
      MakeDense("head.fc1", "head", batch, 1, last_c, feat_c));
  const int classes = image > 64 ? 1000 : 100;
  model.layers.push_back(MakeDense("head.fc2", "head", batch, 1, feat_c, classes));
  return model;
}

}  // namespace oobp
