#include "src/nn/layer.h"

#include <algorithm>

namespace oobp {

int64_t NnModel::TotalParamBytes() const {
  int64_t total = 0;
  for (const Layer& l : layers) {
    total += l.param_bytes;
  }
  return total;
}

int64_t NnModel::TotalFwdFlops() const {
  int64_t total = 0;
  for (const Layer& l : layers) {
    total += l.fwd_flops;
  }
  return total;
}

int64_t NnModel::TotalActivationBytes() const {
  int64_t total = 0;
  for (const Layer& l : layers) {
    total += l.output_bytes + l.stash_bytes;
  }
  return total;
}

std::vector<std::string> NnModel::Blocks() const {
  std::vector<std::string> blocks;
  for (const Layer& l : layers) {
    if (std::find(blocks.begin(), blocks.end(), l.block) == blocks.end()) {
      blocks.push_back(l.block);
    }
  }
  return blocks;
}

}  // namespace oobp
