// Immutable model-zoo / cost-model cache.
//
// Registry-hosted sweeps (src/runner/sweep_scenarios.cc) evaluate the same
// (model, GPU, profile) points many times — once per strategy per scaling
// point, and again under the validator replay and the perf suite. NnModel
// construction walks the whole layer table and CostModel is rebuilt per
// engine run; both are pure values, so repeated points can share one
// immutable instance instead of rebuilding it.
//
// Thread-safety: a single mutex-guarded map, safe under the scenario
// runner's `--jobs` thread pool. Entries are shared_ptr<const T>; a caller
// keeps its reference alive independently of the cache, so the bounded
// clear-on-overflow eviction can never invalidate an object in use.

#ifndef OOBP_SRC_NN_MODEL_CACHE_H_
#define OOBP_SRC_NN_MODEL_CACHE_H_

#include <functional>
#include <memory>
#include <string>

#include "src/nn/cost_model.h"
#include "src/nn/layer.h"

namespace oobp {

// Returns the cached model for `key`, building it with `builder` on the
// first request. `key` must uniquely describe the built model (e.g.
// "bert:L48:B16"); two callers using the same key MUST build identical
// models.
std::shared_ptr<const NnModel> CachedModel(
    const std::string& key, const std::function<NnModel()>& builder);

// Returns the cached cost model for (gpu, profile). The cache key serializes
// every field of both structs, so distinct configurations never collide.
std::shared_ptr<const CostModel> CachedCostModel(const GpuSpec& gpu,
                                                 const SystemProfile& profile);

// Testing hooks: entry counts and explicit reset.
size_t ModelCacheSize();
size_t CostModelCacheSize();
void ClearModelCaches();

}  // namespace oobp

#endif  // OOBP_SRC_NN_MODEL_CACHE_H_
