// Immutable model-zoo / cost-model cache.
//
// Registry-hosted sweeps (src/runner/sweep_scenarios.cc) evaluate the same
// (model, GPU, profile) points many times — once per strategy per scaling
// point, and again under the validator replay and the perf suite. NnModel
// construction walks the whole layer table and CostModel is rebuilt per
// engine run; both are pure values, so repeated points can share one
// immutable instance instead of rebuilding it.
//
// Thread-safety: a single mutex-guarded map, safe under the scenario
// runner's `--jobs` thread pool. Entries are shared_ptr<const T>; a caller
// keeps its reference alive independently of the cache, so the bounded
// clear-on-overflow eviction can never invalidate an object in use.
//
// Snapshot integration: src/store cannot be linked from here (it sits above
// core in the library layering), so it plugs in through ModelCacheHooks —
// `find_model` is consulted on a cache miss before the builder runs
// (snapshot hit → the materialized model enters the cache and the builder
// never executes), and the `record_*` hooks observe every build so `oobp
// snapshot build` can collect the zoo. With no hooks installed the cache
// behaves exactly as before.

#ifndef OOBP_SRC_NN_MODEL_CACHE_H_
#define OOBP_SRC_NN_MODEL_CACHE_H_

#include <functional>
#include <memory>
#include <string>

#include "src/nn/cost_model.h"
#include "src/nn/layer.h"

namespace oobp {

// Returns the cached model for `key`, building it with `builder` on the
// first request. `key` must uniquely describe the built model (e.g.
// "bert:L48:B16"); two callers using the same key MUST build identical
// models.
std::shared_ptr<const NnModel> CachedModel(
    const std::string& key, const std::function<NnModel()>& builder);

// Returns the cached cost model for (gpu, profile). The cache key serializes
// every field of both structs, so distinct configurations never collide.
std::shared_ptr<const CostModel> CachedCostModel(const GpuSpec& gpu,
                                                 const SystemProfile& profile);

// Testing hooks: entry counts and explicit reset.
size_t ModelCacheSize();
size_t CostModelCacheSize();
void ClearModelCaches();

// The cache key for a (gpu, profile) cost-model point: every field of both
// structs serialized, so distinct configurations never collide. Exposed so
// the snapshot store can address cost-model records by the same identity.
std::string CostModelCacheKey(const GpuSpec& gpu,
                              const SystemProfile& profile);

// External cache plug-in (see header comment). All members optional; an
// unset member is simply skipped. Hooks are invoked with no cache lock
// held, so they may themselves call back into the cache.
struct ModelCacheHooks {
  // Consulted on a CachedModel miss before `builder` runs. Returning
  // nullptr means "not found, build as usual".
  std::function<std::shared_ptr<const NnModel>(const std::string& key)>
      find_model;
  // Observes every model the builder produced (cache misses only).
  std::function<void(const std::string& key, const NnModel& model)>
      record_model;
  // Observes every cost-model point built (cache misses only); `key` is
  // CostModelCacheKey(gpu, profile).
  std::function<void(const std::string& key, const GpuSpec& gpu,
                     const SystemProfile& profile)>
      record_cost_model;
};

void SetModelCacheHooks(ModelCacheHooks hooks);
void ClearModelCacheHooks();

}  // namespace oobp

#endif  // OOBP_SRC_NN_MODEL_CACHE_H_
