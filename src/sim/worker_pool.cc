#include "src/sim/worker_pool.h"

#include "src/common/check.h"

namespace oobp {

WorkerPool::WorkerPool(int num_threads) {
  if (num_threads <= 1) {
    return;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int w = 0; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void WorkerPool::Run(size_t count,
                     const std::function<void(size_t, int)>& fn) {
  if (workers_.empty() || count <= 1) {
    // Inline reference path: identical calls in index order on the caller's
    // thread. fn_/count_ stay untouched, so a worker oversleeping a previous
    // batch can never observe this path.
    for (size_t i = 0; i < count; ++i) {
      fn(i, /*worker=*/-1);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  OOBP_CHECK(fn_ == nullptr) << "WorkerPool::Run is not reentrant";
  fn_ = &fn;
  count_ = count;
  next_task_ = 0;
  done_tasks_ = 0;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [&] { return done_tasks_ == count_; });
  fn_ = nullptr;
}

void WorkerPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) {
      return;
    }
    seen = generation_;
    while (next_task_ < count_) {
      const size_t task = next_task_++;
      const std::function<void(size_t, int)>* fn = fn_;
      lock.unlock();
      (*fn)(task, worker);
      lock.lock();
      if (++done_tasks_ == count_) {
        cv_done_.notify_one();
      }
    }
  }
}

}  // namespace oobp
