// Discrete-event simulation engine.
//
// A single-threaded event queue ordered by (time, sequence number). The
// sequence number makes same-timestamp processing order deterministic, which
// in turn makes every experiment in this repository bit-reproducible.
//
// Implementation: an indexed 4-ary min-heap of 24-byte (time, seq, slot)
// entries over a slab of event slots. Callbacks live in the slab with inline
// small-buffer storage (SmallCallback), so scheduling an ordinary capture
// performs no heap allocation, popping moves the callback out exactly once
// (the old std::priority_queue's const top() forced a deep copy per event),
// and sift operations shuffle PODs only. Each slot carries its heap position,
// which is what makes O(log n) cancellation of an arbitrary pending event —
// TimerHandle / Cancel() — possible; the fluid processor uses that to retract
// stale wake-ups instead of flooding the queue with dead events.

#ifndef OOBP_SRC_SIM_ENGINE_H_
#define OOBP_SRC_SIM_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/small_callback.h"

namespace oobp {

class SimEngine {
 public:
  using Callback = SmallCallback;

  // Identifies a scheduled event for cancellation. Value-copyable; a handle
  // is invalidated (Cancel returns false) once its event fires or is
  // cancelled. A default-constructed handle refers to no event.
  class TimerHandle {
   public:
    TimerHandle() = default;

   private:
    friend class SimEngine;
    TimerHandle(uint32_t slot, uint64_t seq) : slot_(slot), seq_(seq) {}
    uint32_t slot_ = 0;
    uint64_t seq_ = 0;  // 0 = no event (live events have seq >= 1)
  };

  SimEngine() = default;
  ~SimEngine();
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  TimeNs now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  uint64_t processed_events() const { return processed_; }
  size_t pending_events() const { return heap_.size(); }

  // (time, seq) of the earliest pending event without processing it.
  // Returns false on an empty queue. The sharded coordinator peeks these to
  // decide how far a logical process may safely advance.
  bool PeekNext(TimeNs* time, uint64_t* seq) const {
    if (heap_.empty()) {
      return false;
    }
    *time = heap_[0].time;
    *seq = heap_[0].seq;
    return true;
  }

  // Time of the earliest pending event, or TimeNs::max() when empty.
  TimeNs NextEventTime() const {
    return heap_.empty() ? std::numeric_limits<TimeNs>::max() : heap_[0].time;
  }

  // Pre-sizes the heap and callback slab for `n` concurrently pending
  // events, eliminating mid-run growth reallocations. Capacity only — has
  // no effect on event ordering or results.
  void Reserve(size_t n) {
    heap_.reserve(n);
    slots_.reserve(n);
  }

  // Draws event sequence numbers from `counter` instead of the engine's own
  // counter. A ShardedSim installs one shared counter across its logical
  // processes and the control engine, so the (time, seq) order that breaks
  // same-timestamp ties is comparable across engines — the key to replaying
  // the single-engine reference order exactly (see src/sim/sharded.h).
  // Pass nullptr to restore the local counter.
  void SetSeqSource(std::atomic<uint64_t>* counter) { seq_source_ = counter; }
  // Total slab slots ever allocated (live + free-listed); a sequence of
  // schedule/fire/cancel cycles that keeps pending_events bounded must keep
  // this bounded too, or slots are leaking.
  size_t slab_slots() const { return slots_.size(); }

  // Process-wide count of events processed by engines that have been
  // destroyed (each engine flushes its tally in its destructor). The tally
  // is an atomic: engines may be destroyed concurrently on sharded-sim
  // worker threads or the bench/fuzz pools. The perf harness reads deltas
  // of this around scenario runs; simulation results never depend on it.
  static uint64_t TotalProcessedEvents();

  // Startup-latency probe for `oobp snapshot startup`: Arm starts a
  // wall-clock timer; the first Run()/RunUntil() entered anywhere in the
  // process after arming records the elapsed milliseconds and disarms.
  // That delta is "time to first simulated event" — everything spent on
  // model construction and scheduling before any simulation begins. Cost
  // when disarmed is one relaxed atomic load per Run() call (not per
  // event). FirstRunCaptureMs returns the last capture, or a negative
  // value if armed-but-never-triggered / never armed.
  static void ArmFirstRunCapture();
  static double FirstRunCaptureMs();

  // Schedules `cb` at absolute time `t`; `t` must not be in the past. The
  // returned handle may be ignored, or kept to Cancel() the event later.
  TimerHandle ScheduleAt(TimeNs t, Callback cb);

  TimerHandle ScheduleAfter(TimeNs delay, Callback cb) {
    OOBP_CHECK_GE(delay, 0);
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Removes a pending event; its callback is destroyed without running.
  // Returns false (and does nothing) if the event already fired, was already
  // cancelled, or the handle is default-constructed.
  bool Cancel(TimerHandle handle);

  // Processes events in timestamp order while the next event's time is
  // <= `limit`. Returns the number of events processed by this call.
  //
  // Clock semantics: with a finite `limit` the clock always ends at exactly
  // `limit` — whether the queue drained below it or the next event lies
  // beyond it — so back-to-back Run(t0), Run(t1) calls observe contiguous
  // simulated intervals. With the default (infinite) limit the clock rests
  // at the last processed event's timestamp.
  uint64_t Run(TimeNs limit = std::numeric_limits<TimeNs>::max());

  // Conservative-window advance: processes events with time < `t`, plus
  // events at exactly `t` whose seq is < `tie_seq_bound`, then sets the
  // clock to exactly `t` (which must be >= now()). With the default bound
  // of 0 the advance is exclusive — events at `t` stay pending. Returns the
  // number of events processed.
  //
  // This is the logical-process primitive: a shard may run ahead only to
  // the next externally visible sync point `t`, and the seq bound decides
  // which same-timestamp events belong before that sync point in the
  // engine-spanning (time, seq) total order.
  uint64_t RunUntil(TimeNs t, uint64_t tie_seq_bound = 0);

  // Processes a single event if one exists. Returns false on an empty queue.
  bool Step();

 private:
  static constexpr uint32_t kNone = std::numeric_limits<uint32_t>::max();

  // Heap entries are self-contained PODs so comparisons and sifts never
  // touch the slab.
  struct HeapEntry {
    TimeNs time;
    uint64_t seq;
    uint32_t slot;
  };
  struct EventSlot {
    Callback cb;
    uint64_t seq = 0;
    uint32_t heap_pos = kNone;  // kNone when the slot is free
    uint32_t next_free = kNone;
  };

  static bool EarlierThan(const HeapEntry& a, const HeapEntry& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);
  void SiftUp(size_t pos, HeapEntry entry);
  void SiftDown(size_t pos, HeapEntry entry);
  void RemoveHeapEntry(size_t pos);

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;  // 0 is reserved for null TimerHandles
  std::atomic<uint64_t>* seq_source_ = nullptr;  // non-null: shared counter
  uint64_t processed_ = 0;
  std::vector<HeapEntry> heap_;   // 4-ary min-heap by (time, seq)
  std::vector<EventSlot> slots_;  // callback slab, free-listed
  uint32_t free_head_ = kNone;
};

}  // namespace oobp

#endif  // OOBP_SRC_SIM_ENGINE_H_
