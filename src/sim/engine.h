// Discrete-event simulation engine.
//
// A single-threaded event queue ordered by (time, sequence number). The
// sequence number makes same-timestamp processing order deterministic, which
// in turn makes every experiment in this repository bit-reproducible.

#ifndef OOBP_SRC_SIM_ENGINE_H_
#define OOBP_SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace oobp {

class SimEngine {
 public:
  using Callback = std::function<void()>;

  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  TimeNs now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  uint64_t processed_events() const { return processed_; }

  // Schedules `cb` at absolute time `t`; `t` must not be in the past.
  void ScheduleAt(TimeNs t, Callback cb) {
    OOBP_CHECK_GE(t, now_);
    queue_.push(Event{t, next_seq_++, std::move(cb)});
  }

  void ScheduleAfter(TimeNs delay, Callback cb) {
    OOBP_CHECK_GE(delay, 0);
    ScheduleAt(now_ + delay, std::move(cb));
  }

  // Processes events in timestamp order until the queue drains or the clock
  // would pass `limit`. Returns the number of events processed by this call.
  uint64_t Run(TimeNs limit = std::numeric_limits<TimeNs>::max());

  // Processes a single event if one exists. Returns false on an empty queue.
  bool Step();

 private:
  struct Event {
    TimeNs time;
    uint64_t seq;
    Callback cb;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace oobp

#endif  // OOBP_SRC_SIM_ENGINE_H_
