// Move-only `void()` callable with inline small-buffer storage.
//
// std::function is the wrong tool for a discrete-event queue: it is copyable
// (which let the old priority_queue force a deep copy of every callback on
// pop), its inline buffer is two words on libstdc++ (a `[this, index,
// latency]` capture already heap-allocates), and it cannot hold move-only
// captures. SmallCallback stores any callable of up to kInlineBytes inline,
// relocates with a noexcept move (so the event slab can live in a growing
// std::vector), and heap-allocates only oversized or potentially-throwing
// targets.

#ifndef OOBP_SRC_SIM_SMALL_CALLBACK_H_
#define OOBP_SRC_SIM_SMALL_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace oobp {

class SmallCallback {
 public:
  // Large enough for a `this` pointer plus a handful of captured scalars —
  // every callback the simulator schedules today fits inline.
  static constexpr std::size_t kInlineBytes = 48;

  SmallCallback() = default;
  SmallCallback(std::nullptr_t) {}  // NOLINT: implicit like std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT: implicit like std::function
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { Reset(); }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  // True when the target lives in the inline buffer (no heap allocation);
  // meaningful only when the callback is non-empty. Exposed for tests.
  bool stored_inline() const { return ops_ != nullptr && ops_->is_inline; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
    bool is_inline;
  };

  template <typename F>
  static void InlineInvoke(void* p) {
    (*static_cast<F*>(p))();
  }
  template <typename F>
  static void InlineRelocate(void* dst, void* src) {
    ::new (dst) F(std::move(*static_cast<F*>(src)));
    static_cast<F*>(src)->~F();
  }
  template <typename F>
  static void InlineDestroy(void* p) {
    static_cast<F*>(p)->~F();
  }

  template <typename F>
  static void HeapInvoke(void* p) {
    (**static_cast<F**>(p))();
  }
  template <typename F>
  static void HeapRelocate(void* dst, void* src) {
    ::new (dst) F*(*static_cast<F**>(src));
  }
  template <typename F>
  static void HeapDestroy(void* p) {
    delete *static_cast<F**>(p);
  }

  template <typename F>
  static constexpr Ops kInlineOps = {&InlineInvoke<F>, &InlineRelocate<F>,
                                     &InlineDestroy<F>, true};
  template <typename F>
  static constexpr Ops kHeapOps = {&HeapInvoke<F>, &HeapRelocate<F>,
                                   &HeapDestroy<F>, false};

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace oobp

#endif  // OOBP_SRC_SIM_SMALL_CALLBACK_H_
