#include "src/sim/sharded.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/check.h"

namespace oobp {

namespace {

// splitmix64 finalizer, used to hash (seed, window, lp, worker) into a
// perturbation sleep without constructing an Rng per task.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

ShardedSim::ShardedSim(int num_lps, int num_threads)
    : pool_(std::min(num_threads, num_lps)) {
  OOBP_CHECK_GE(num_lps, 0);
  control_.SetSeqSource(&shared_seq_);
  lps_.reserve(static_cast<size_t>(num_lps));
  for (int i = 0; i < num_lps; ++i) {
    lps_.push_back(std::make_unique<SimEngine>());
    lps_.back()->SetSeqSource(&shared_seq_);
  }
}

ShardedSim::~ShardedSim() = default;

uint64_t ShardedSim::processed_events() const {
  uint64_t total = control_.processed_events();
  for (const auto& lp : lps_) {
    total += lp->processed_events();
  }
  return total;
}

void ShardedSim::MaybePerturb(int worker, int lp) {
  if (perturb_seed_ == 0) {
    return;
  }
  const uint64_t h =
      Mix(perturb_seed_ + window_ * 0x9E3779B97F4A7C15ULL +
          static_cast<uint64_t>(lp) * 0xD1342543DE82EF95ULL +
          static_cast<uint64_t>(worker));
  std::this_thread::sleep_for(std::chrono::microseconds(h % 200));
}

void ShardedSim::RunOne(const Task& task) {
  SimEngine& e = *lps_[static_cast<size_t>(task.lp)];
  if (task.t == kDrain) {
    e.Run();
  } else {
    e.RunUntil(task.t, task.seq_bound);
  }
}

void ShardedSim::RunTasks(std::vector<Task> staged) {
  ++window_;
  pool_.Run(staged.size(), [this, &staged](size_t i, int worker) {
    const Task& task = staged[i];
    if (worker >= 0) {
      // Inline executions skip the perturbation, matching the pre-pool
      // behavior the determinism battery pins.
      MaybePerturb(worker, task.lp);
    }
    RunOne(task);
  });
}

void ShardedSim::AdvanceAllTo(TimeNs t, uint64_t tie_seq_bound) {
  std::vector<Task> staged;
  for (size_t i = 0; i < lps_.size(); ++i) {
    SimEngine& e = *lps_[i];
    TimeNs next = 0;
    uint64_t seq = 0;
    const bool work = e.PeekNext(&next, &seq) &&
                      (next < t || (next == t && seq < tie_seq_bound));
    if (work) {
      staged.push_back({static_cast<int>(i), t, tie_seq_bound});
    } else if (e.now() < t) {
      e.RunUntil(t, tie_seq_bound);  // nothing qualifies: clock bump only
    }
  }
  RunTasks(std::move(staged));
}

void ShardedSim::DrainAll() {
  std::vector<Task> staged;
  for (size_t i = 0; i < lps_.size(); ++i) {
    if (!lps_[i]->empty()) {
      staged.push_back({static_cast<int>(i), kDrain, 0});
    }
  }
  RunTasks(std::move(staged));
}

void ShardedSim::RunConservative(
    const std::vector<CrossLpChannel*>& channels) {
  const int n = num_lps();
  std::vector<std::vector<CrossLpChannel*>> incoming(
      static_cast<size_t>(n));
  for (CrossLpChannel* c : channels) {
    OOBP_CHECK_GE(c->src_lp(), 0);
    OOBP_CHECK_LT(c->src_lp(), n);
    OOBP_CHECK_GE(c->dst_lp(), 0);
    OOBP_CHECK_LT(c->dst_lp(), n);
    incoming[static_cast<size_t>(c->dst_lp())].push_back(c);
  }

  while (true) {
    bool pending = false;
    for (const auto& lp : lps_) {
      pending = pending || !lp->empty();
    }
    for (CrossLpChannel* c : channels) {
      pending = pending || c->undelivered() > 0;
    }
    if (!pending) {
      break;
    }

    // Safe horizon per LP: the earliest incoming time (EIT), the greatest
    // fixed point of the Chandy–Misra equations (see sharded.h). Iterating
    // downward from "no bound" converges because bounds only decrease and
    // each pass reads monotonically non-increasing values; the recursion
    // through eit[src] keeps idle-but-reachable sources sound. LPs with no
    // incoming channels (or none transitively reachable) drain freely.
    std::vector<TimeNs> eit(static_cast<size_t>(n), kDrain);
    bool changed = true;
    while (changed) {
      changed = false;
      for (int j = 0; j < n; ++j) {
        TimeNs v = kDrain;
        for (CrossLpChannel* c : incoming[static_cast<size_t>(j)]) {
          const size_t src = static_cast<size_t>(c->src_lp());
          const TimeNs ready =
              std::min(lps_[src]->NextEventTime(), eit[src]);
          const TimeNs lookahead = c->latency();
          const TimeNs horizon =
              ready >= kDrain - lookahead ? kDrain : ready + lookahead;
          v = std::min(v, std::min(c->PendingBound(), horizon));
        }
        if (v < eit[static_cast<size_t>(j)]) {
          eit[static_cast<size_t>(j)] = v;
          changed = true;
        }
      }
    }

    const uint64_t before = processed_events();
    std::vector<Task> staged;
    for (int i = 0; i < n; ++i) {
      const TimeNs bound = eit[static_cast<size_t>(i)];
      SimEngine& e = *lps_[static_cast<size_t>(i)];
      if (bound == kDrain) {
        if (!e.empty()) {
          staged.push_back({i, kDrain, 0});
        }
        continue;
      }
      if (bound <= e.now()) {
        continue;  // another LP must move first
      }
      if (e.NextEventTime() < bound) {
        staged.push_back({i, bound, 0});
      } else {
        e.RunUntil(bound);  // clock bump up to the horizon
      }
    }
    RunTasks(std::move(staged));
    uint64_t progress = processed_events() - before;
    for (CrossLpChannel* c : channels) {
      progress += c->DrainInto(lp(c->dst_lp()));
    }
    if (progress > 0) {
      continue;
    }

    // Exact-time stall: every live LP's horizon equals the global minimum
    // event time t* (possible on symmetric channel cycles). Process all
    // events at t*, serially in LP index order — the round structure is
    // fixed by simulation state alone, so results stay independent of
    // thread count. Channel latency >= 1ns guarantees any deliveries this
    // creates land strictly after t*.
    TimeNs tstar = kDrain;
    for (const auto& e : lps_) {
      tstar = std::min(tstar, e->NextEventTime());
    }
    OOBP_CHECK_LT(tstar, kDrain);
    for (const auto& e : lps_) {
      while (e->NextEventTime() == tstar) {
        e->Step();
      }
    }
    for (CrossLpChannel* c : channels) {
      c->DrainInto(lp(c->dst_lp()));
    }
  }
}

}  // namespace oobp
