// Persistent worker pool shared by the parallel simulation paths.
//
// Extracted from ShardedSim (PR 7) so other deterministic fan-outs — the
// sharded coordinator's LP advances, the search module's portfolio
// trajectories — run on one battle-tested protocol instead of growing their
// own. The contract is deliberately tiny:
//
//   WorkerPool pool(n);                 // spawns n threads iff n > 1
//   pool.Run(count, [&](size_t i, int worker) { ... });
//
// Run() executes fn(i, worker) for every i in [0, count); it returns only
// after all calls completed, establishing happens-before in both directions
// (workers see all caller writes made before Run; the caller sees all worker
// writes on return). When the pool has no workers or count <= 1 the calls
// run inline on the caller's thread in index order with worker == -1 — the
// reference path the byte-identity batteries compare against. Tasks are
// claimed from a shared cursor under one mutex; tasks are coarse (an LP
// window advance, a whole search trajectory), so contention is nil and the
// protocol is trivially race-free (see DESIGN.md §11).
//
// Determinism note: callers must not let results depend on which worker ran
// a task or in what order tasks finished. Both in-tree users satisfy this
// structurally — tasks share no mutable state and results are merged in
// task-index order after Run() returns.

#ifndef OOBP_SRC_SIM_WORKER_POOL_H_
#define OOBP_SRC_SIM_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oobp {

class WorkerPool {
 public:
  // Spawns `num_threads` workers when num_threads > 1; otherwise the pool is
  // inert and Run() always takes the inline path.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Executes fn(i, worker) for i in [0, count); blocks until all complete.
  // Inline (worker == -1, index order) when the pool is inert or count <= 1.
  // Not reentrant: fn must not call Run on the same pool.
  void Run(size_t count, const std::function<void(size_t, int)>& fn);

 private:
  void WorkerLoop(int worker);

  std::vector<std::thread> workers_;
  // Pool state, all guarded by mu_ — including every read of fn_/count_,
  // because a worker that overslept one batch can wake during the next
  // batch's publication and inspect it.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(size_t, int)>* fn_ = nullptr;
  size_t count_ = 0;
  size_t next_task_ = 0;
  size_t done_tasks_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace oobp

#endif  // OOBP_SRC_SIM_WORKER_POOL_H_
