// Fluid (processor-sharing) resource model.
//
// A FluidProcessor owns `capacity` abstract rate units (for a GPU: thread
// block slots; for a shared bus: bytes/ns of bandwidth). Active jobs carry a
// total amount of work and a maximum rate they can absorb (for a kernel: its
// thread block count — a kernel with 448 blocks cannot use 1520 slots).
// Allocation is greedy in priority order, which models how the GPU execution
// engine favours a high-priority stream: the highest-priority job takes
// min(max_rate, remaining capacity), then the next, and so on.
//
// Progress accrues continuously between events. Whenever the active set
// changes the processor recomputes rates and schedules the next completion.
// This "fluid" approximation reproduces the phenomena the paper relies on:
//  * a low-occupancy kernel co-running with another low-occupancy kernel
//    finishes in nearly the same wall time as running alone (free speedup);
//  * a kernel that already saturates the slots gains nothing from co-running;
//  * total throughput never exceeds capacity (work conservation).
//
// Implementation: jobs live in a flat vector kept sorted by (priority, seq),
// so Reallocate() is a single allocation pass instead of the former
// sort-the-whole-map-per-call, and the pending completion wake-up is a
// cancellable SimEngine timer — superseded wake-ups are retracted from the
// event queue rather than left behind as generation-guarded dead events
// (which used to add one ghost event per Add/Cancel to every simulation).

#ifndef OOBP_SRC_SIM_FLUID_H_
#define OOBP_SRC_SIM_FLUID_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/engine.h"

namespace oobp {

using FluidJobId = uint64_t;

// One term of the busy-integral accumulation: at simulation time `time`,
// `value` (rate*ns of work progressed by one job since the previous update)
// was added to the running integral. The steady-state replay optimization
// (src/runtime) records these to re-fold the exact floating-point sum a
// longer simulation would have produced — summation order is what makes the
// double bit-reproducible, so increments are replayed, never re-associated.
struct BusyIncrement {
  TimeNs time;
  double value;
};

class FluidProcessor {
 public:
  // `capacity` is the total rate the processor can hand out; must be > 0.
  FluidProcessor(SimEngine* engine, double capacity);
  FluidProcessor(const FluidProcessor&) = delete;
  FluidProcessor& operator=(const FluidProcessor&) = delete;

  // Adds an active job. `work` is total rate*time units (e.g. slot-ns),
  // `max_rate` caps how much capacity the job can use at once, lower
  // `priority` values run first. `on_complete` fires when the work drains.
  FluidJobId Add(double work, double max_rate, int priority,
                 SimEngine::Callback on_complete);

  // Cancels an active job (no completion callback). Returns false if the job
  // already completed.
  bool Cancel(FluidJobId id);

  size_t active_jobs() const { return jobs_.size(); }
  double capacity() const { return capacity_; }

  // Integral of allocated rate over time, in rate*ns. busy_integral /
  // (capacity * elapsed) is the utilization of this resource.
  double busy_integral() const;

  // Current allocated rate of a job (0 if starved); for tests and traces.
  double RateOf(FluidJobId id) const;

  // Sum of all jobs' current rates; never exceeds capacity (validators
  // assert this at every simulation event).
  double allocated_rate() const;

  // Streams every nonzero busy-integral increment into `recorder` in
  // accumulation order (zero increments are exact no-ops of the fold and are
  // skipped). Pass nullptr to detach; when detached the hot path pays one
  // predicted-not-taken branch.
  void set_busy_recorder(std::vector<BusyIncrement>* recorder) {
    busy_recorder_ = recorder;
  }

 private:
  struct Job {
    double remaining;      // work left, in rate*ns
    double max_rate;       // occupancy cap
    int priority;          // lower runs first
    uint64_t seq;          // FIFO tie-break within a priority level; == id
    double rate = 0.0;     // current allocation
    SimEngine::Callback on_complete;
  };

  // Applies progress accrued since `last_update_`, completing drained jobs.
  void Advance();
  // Recomputes allocations and (re)schedules the next completion event,
  // cancelling any previously scheduled wake-up.
  void Reallocate();

  SimEngine* engine_;
  double capacity_;
  TimeNs last_update_ = 0;
  uint64_t next_id_ = 1;
  mutable double busy_integral_ = 0.0;
  // Sorted by (priority, seq): the greedy allocation order. Job counts are
  // small (concurrent kernels on a device), so inserts are cheap and every
  // Reallocate() pass is branch-predictable sequential access.
  std::vector<Job> jobs_;
  std::vector<BusyIncrement>* busy_recorder_ = nullptr;
  SimEngine::TimerHandle wake_;  // pending completion wake-up, if any
  // Scratch for Advance()/busy_integral(): reused across calls so the per-
  // event hot path performs no allocation. Only touched while no user code
  // runs (completion callbacks use the swap idiom in Advance()).
  mutable std::vector<std::pair<uint64_t, double>> contrib_scratch_;
  std::vector<std::pair<uint64_t, SimEngine::Callback>> completions_scratch_;
};

}  // namespace oobp

#endif  // OOBP_SRC_SIM_FLUID_H_
