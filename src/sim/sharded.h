// Parallel discrete-event simulation: sharded SimEngines under conservative
// synchronization.
//
// A ShardedSim partitions one simulation into logical processes (LPs), each
// owning its own SimEngine event heap, advanced concurrently on a persistent
// worker pool. An LP may only run ahead to the next externally visible sync
// point — the classic conservative (Chandy–Misra-style) discipline — so the
// parallel execution is not merely race-free but produces byte-identical
// results to a single-threaded run. Two sync disciplines are provided:
//
//  1. Windowed sync (AdvanceAllTo): a coordinator-owned control engine holds
//     the externally scheduled timeline (pre-generated arrival traces,
//     autoscaler ticks). Between consecutive control events every LP is
//     independent, so the coordinator repeatedly advances all LPs to the
//     next control event's (time, seq) and then processes that one control
//     event. Used by FleetEngine, where replicas only interact through the
//     router/autoscaler reads made by control events.
//
//  2. Chandy–Misra lookahead (RunConservative): LPs exchange messages over
//     CommChannels (src/hw/comm_channel.h), whose Link latency bounds how
//     soon anything sent in the future can arrive. Each round the
//     coordinator computes a safe horizon per LP — the earliest incoming
//     time (EIT) — as the greatest fixed point of
//
//        eit[j] = min over incoming channels c (src i -> j) of
//                 min(c->PendingBound(),
//                     min(next_event_time[i], eit[i]) + c->latency())
//
//     The recursion through eit[i] is what makes an *idle* source safe: an
//     LP with an empty heap can still be reactivated by a delivery from a
//     third LP, and the earliest it could then send is its own EIT plus the
//     channel latency. The coordinator advances LPs in parallel below these
//     horizons, then drains channel outboxes into destination engines.
//     Exact-time cyclic ties — where no LP can advance because every
//     horizon equals the global minimum event time t* — are broken by a
//     serial microstep that processes all events at t* in LP index order.
//     Used by cluster-scale engines (parameter-server data parallelism).
//
// Determinism argument (DESIGN.md §11 has the full version): every engine
// in a ShardedSim draws event sequence numbers from one shared atomic
// counter, so the (time, seq) pairs that break same-timestamp ties are
// comparable across engines. Orderings that are observable — events of one
// LP against each other, and LP events against control events — are fully
// determined by program order and the sync-point structure, never by thread
// scheduling; orderings that thread scheduling can perturb (relative seq
// values of events scheduled by different LPs inside one window) are
// between events on different engines that share no state, hence
// unobservable. The inline num_threads <= 1 path executes the identical
// per-LP calls in the identical order and is the reference the tests and
// the differential fuzzer compare against.

#ifndef OOBP_SRC_SIM_SHARDED_H_
#define OOBP_SRC_SIM_SHARDED_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "src/common/time.h"
#include "src/sim/engine.h"
#include "src/sim/worker_pool.h"

namespace oobp {

// Coordinator-facing view of a cross-LP message channel (implemented by
// hw's CommChannel over a latency/bandwidth Link). The source LP fills the
// channel during its advance; the coordinator reads bounds and drains
// deliveries between rounds, when all workers are quiesced.
class CrossLpChannel {
 public:
  virtual ~CrossLpChannel() = default;
  virtual int src_lp() const = 0;
  virtual int dst_lp() const = 0;
  // Positive lookahead: a message submitted by a future source event is
  // delivered no earlier than that event's time plus this latency.
  virtual TimeNs latency() const = 0;
  // Lower bound on the delivery time of messages already committed to this
  // channel — buffered in the outbox or in flight on the link; TimeNs max
  // when there are none. (In-flight completions are source heap events, so
  // the next source event time bounds them with no latency credit.)
  virtual TimeNs PendingBound() const = 0;
  // Injects buffered deliveries into `dst` (the destination LP's engine);
  // returns how many were injected.
  virtual size_t DrainInto(SimEngine* dst) = 0;
  // Buffered deliveries plus in-flight transfers — nonzero means the
  // simulation cannot terminate yet even if every heap looks drained.
  virtual size_t undelivered() const = 0;
};

class ShardedSim {
 public:
  // `num_lps` logical processes plus one control engine, all drawing seqs
  // from the shared counter. `num_threads` <= 1 (or a single LP) executes
  // inline on the caller's thread; otherwise min(num_threads, num_lps)
  // workers are spawned. num_lps == 0 constructs an inert coordinator (no
  // engines, no threads) so callers can embed one unconditionally.
  ShardedSim(int num_lps, int num_threads);
  ~ShardedSim();
  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  int num_lps() const { return static_cast<int>(lps_.size()); }
  int num_workers() const { return pool_.num_workers(); }
  SimEngine* lp(int i) { return lps_[static_cast<size_t>(i)].get(); }
  SimEngine* control_engine() { return &control_; }

  // Windowed sync: advances every LP to time `t`, processing events with
  // time < t plus events at t with seq < `tie_seq_bound` (normally the seq
  // of the control event about to run). Blocks until all LPs reach `t`.
  void AdvanceAllTo(TimeNs t, uint64_t tie_seq_bound);

  // Runs every LP's queue to empty (clocks rest at each LP's last event).
  void DrainAll();

  // Chandy–Misra loop: advances LPs inside per-channel lookahead bounds
  // until every LP heap and every channel drains. Channels must connect LPs
  // of this ShardedSim; deliveries are injected between rounds in channel
  // index order. See src/hw/comm_channel.h for the lookahead accounting.
  void RunConservative(const std::vector<CrossLpChannel*>& channels);

  // Test-only: seeds a deterministic pseudo-random per-task sleep in the
  // worker loop, deliberately perturbing thread scheduling. Results must
  // not change — the determinism battery runs with and without this.
  void SetPerturbSeed(uint64_t seed) { perturb_seed_ = seed; }

  // Events processed across all LPs plus the control engine so far.
  uint64_t processed_events() const;

 private:
  struct Task {
    int lp = 0;
    TimeNs t = 0;            // advance bound; kDrain = run queue to empty
    uint64_t seq_bound = 0;  // tie bound for RunUntil
  };
  static constexpr TimeNs kDrain = std::numeric_limits<TimeNs>::max();

  void RunOne(const Task& task);
  // Executes `staged` on the shared WorkerPool (inline in LP index order
  // when the pool is inert or the batch has a single task — the reference
  // path). The pool's Run establishes happens-before in both directions:
  // workers see all coordinator writes made before the call; the coordinator
  // sees all worker writes on return.
  void RunTasks(std::vector<Task> staged);
  void MaybePerturb(int worker, int lp);

  SimEngine control_;
  std::vector<std::unique_ptr<SimEngine>> lps_;
  std::atomic<uint64_t> shared_seq_{1};  // 0 is the null-TimerHandle seq

  // Shared persistent pool (src/sim/worker_pool.h); tasks are coarse — one
  // LP window advance — so contention is nil.
  WorkerPool pool_;

  uint64_t perturb_seed_ = 0;
  uint64_t window_ = 0;  // barrier counter, feeds the perturbation hash
};

}  // namespace oobp

#endif  // OOBP_SRC_SIM_SHARDED_H_
