#include "src/sim/fluid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace oobp {

namespace {
// Work below this many rate*ns counts as drained; absorbs the rounding that
// integer-nanosecond completion times introduce.
constexpr double kWorkEpsilon = 1e-6;

// Insertion sort ascending by .first; the inputs are concatenations of a few
// already-ascending runs (jobs are stored in (priority, seq) order), so this
// is near-linear and allocation-free for the tiny active sets we see.
template <typename Pair>
void SortBySeq(std::vector<Pair>* v) {
  for (size_t i = 1; i < v->size(); ++i) {
    size_t j = i;
    while (j > 0 && (*v)[j].first < (*v)[j - 1].first) {
      std::swap((*v)[j], (*v)[j - 1]);
      --j;
    }
  }
}
}  // namespace

FluidProcessor::FluidProcessor(SimEngine* engine, double capacity)
    : engine_(engine), capacity_(capacity) {
  OOBP_CHECK(engine != nullptr);
  OOBP_CHECK_GT(capacity, 0.0);
  last_update_ = engine->now();
}

FluidJobId FluidProcessor::Add(double work, double max_rate, int priority,
                               SimEngine::Callback on_complete) {
  OOBP_CHECK_GE(work, 0.0);
  OOBP_CHECK_GT(max_rate, 0.0);
  Advance();
  const FluidJobId id = next_id_++;
  Job job;
  job.remaining = work;
  job.max_rate = max_rate;
  job.priority = priority;
  job.seq = id;
  job.on_complete = std::move(on_complete);
  // Insert after every job with priority <= `priority`: seq grows
  // monotonically, so this keeps (priority, seq) order with one shift.
  const auto pos = std::upper_bound(
      jobs_.begin(), jobs_.end(), priority,
      [](int p, const Job& j) { return p < j.priority; });
  jobs_.insert(pos, std::move(job));
  Reallocate();
  return id;
}

bool FluidProcessor::Cancel(FluidJobId id) {
  Advance();
  const auto it = std::find_if(jobs_.begin(), jobs_.end(),
                               [id](const Job& j) { return j.seq == id; });
  if (it == jobs_.end()) {
    return false;
  }
  jobs_.erase(it);
  Reallocate();
  return true;
}

double FluidProcessor::busy_integral() const {
  double total = busy_integral_;
  const double dt = static_cast<double>(engine_->now() - last_update_);
  // Ascending-seq accumulation keeps the floating-point sum identical to the
  // former per-job-id map iteration, bit for bit.
  std::vector<std::pair<uint64_t, double>>& contrib = contrib_scratch_;
  contrib.clear();
  for (const Job& job : jobs_) {
    contrib.emplace_back(job.seq, job.rate * dt);
  }
  SortBySeq(&contrib);
  for (const auto& [seq, c] : contrib) {
    total += c;
  }
  return total;
}

double FluidProcessor::RateOf(FluidJobId id) const {
  const auto it = std::find_if(jobs_.begin(), jobs_.end(),
                               [id](const Job& j) { return j.seq == id; });
  return it == jobs_.end() ? 0.0 : it->rate;
}

double FluidProcessor::allocated_rate() const {
  double total = 0.0;
  for (const Job& job : jobs_) {
    total += job.rate;
  }
  return total;
}

void FluidProcessor::Advance() {
  const TimeNs now = engine_->now();
  OOBP_CHECK_GE(now, last_update_);
  const double dt = static_cast<double>(now - last_update_);
  last_update_ = now;

  if (dt > 0.0) {
    // Integer-ns wake-ups can overshoot a completion by a fraction of a
    // nanosecond; only count work that actually existed. The busy integral
    // is accumulated in ascending job-id order so the floating-point sum is
    // bit-identical to the original map-ordered implementation. No user code
    // runs in this phase, so the shared scratch needs no reentrancy guard.
    std::vector<std::pair<uint64_t, double>>& contrib = contrib_scratch_;
    contrib.clear();
    for (Job& job : jobs_) {
      contrib.emplace_back(job.seq, std::min(job.rate * dt, job.remaining));
      job.remaining = std::max(0.0, job.remaining - job.rate * dt);
    }
    SortBySeq(&contrib);
    for (const auto& [seq, c] : contrib) {
      busy_integral_ += c;
      if (busy_recorder_ != nullptr && c != 0.0) {
        busy_recorder_->push_back({now, c});
      }
    }
  }

  // Completion order is deterministic: ascending job id. Take the scratch
  // buffer by value (swap idiom): completion callbacks may re-enter Add()
  // and thus Advance(), which must not clobber the list being iterated — a
  // nested call starts from a fresh (empty) scratch instead.
  std::vector<std::pair<uint64_t, SimEngine::Callback>> completions =
      std::move(completions_scratch_);
  completions.clear();
  for (Job& job : jobs_) {
    if (job.remaining <= kWorkEpsilon) {
      completions.emplace_back(job.seq, std::move(job.on_complete));
    }
  }
  if (completions.empty()) {
    completions_scratch_ = std::move(completions);
    return;
  }
  jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                             [](const Job& j) {
                               return j.remaining <= kWorkEpsilon;
                             }),
              jobs_.end());
  SortBySeq(&completions);
  // Callbacks run after the job table is consistent: they may re-enter Add().
  for (auto& [seq, cb] : completions) {
    if (cb) {
      cb();
    }
  }
  completions.clear();
  completions_scratch_ = std::move(completions);
}

void FluidProcessor::Reallocate() {
  // Retract the superseded wake-up (no-op if it already fired).
  engine_->Cancel(wake_);
  wake_ = SimEngine::TimerHandle();
  if (jobs_.empty()) {
    return;
  }

  // Priority-ordered greedy allocation (lower priority value first, FIFO
  // within a level) — this is the GPU stream-priority semantics. jobs_ is
  // already in that order; find the next completion in the same pass.
  double free = capacity_;
  double min_tta = -1.0;
  for (Job& job : jobs_) {
    job.rate = std::min(job.max_rate, free);
    free -= job.rate;
    if (job.rate > 0.0) {
      const double tta = job.remaining / job.rate;
      if (min_tta < 0.0 || tta < min_tta) {
        min_tta = tta;
      }
    }
  }
  if (min_tta < 0.0) {
    return;  // every active job is starved; a future Add/Cancel re-triggers
  }
  // A starved-then-fed job with a tiny rate can make min_tta exceed the
  // TimeNs range; the float->int conversion would be undefined. Clamp the
  // wake-up to the end of simulated time (the job cannot finish anyway).
  const TimeNs max_delay =
      std::numeric_limits<TimeNs>::max() - engine_->now();
  TimeNs delay;
  if (min_tta >= static_cast<double>(max_delay)) {
    delay = max_delay;
  } else {
    delay = std::max<TimeNs>(1, static_cast<TimeNs>(std::ceil(min_tta)));
  }
  wake_ = engine_->ScheduleAt(engine_->now() + delay, [this] {
    wake_ = SimEngine::TimerHandle();  // consumed; nothing left to cancel
    Advance();
    Reallocate();
  });
}

}  // namespace oobp
