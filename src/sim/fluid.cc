#include "src/sim/fluid.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace oobp {

namespace {
// Work below this many rate*ns counts as drained; absorbs the rounding that
// integer-nanosecond completion times introduce.
constexpr double kWorkEpsilon = 1e-6;
}  // namespace

FluidProcessor::FluidProcessor(SimEngine* engine, double capacity)
    : engine_(engine), capacity_(capacity) {
  OOBP_CHECK(engine != nullptr);
  OOBP_CHECK_GT(capacity, 0.0);
  last_update_ = engine->now();
}

FluidJobId FluidProcessor::Add(double work, double max_rate, int priority,
                               std::function<void()> on_complete) {
  OOBP_CHECK_GE(work, 0.0);
  OOBP_CHECK_GT(max_rate, 0.0);
  Advance();
  const FluidJobId id = next_id_++;
  Job job;
  job.remaining = work;
  job.max_rate = max_rate;
  job.priority = priority;
  job.seq = id;
  job.on_complete = std::move(on_complete);
  jobs_.emplace(id, std::move(job));
  Reallocate();
  return id;
}

bool FluidProcessor::Cancel(FluidJobId id) {
  Advance();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return false;
  }
  jobs_.erase(it);
  Reallocate();
  return true;
}

double FluidProcessor::busy_integral() const {
  double total = busy_integral_;
  const double dt = static_cast<double>(engine_->now() - last_update_);
  for (const auto& [id, job] : jobs_) {
    total += job.rate * dt;
  }
  return total;
}

double FluidProcessor::RateOf(FluidJobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? 0.0 : it->second.rate;
}

void FluidProcessor::Advance() {
  const TimeNs now = engine_->now();
  OOBP_CHECK_GE(now, last_update_);
  const double dt = static_cast<double>(now - last_update_);
  last_update_ = now;

  std::vector<std::function<void()>> completions;
  if (dt > 0.0) {
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      Job& job = it->second;
      // Integer-ns wake-ups can overshoot a completion by a fraction of a
      // nanosecond; only count work that actually existed.
      busy_integral_ += std::min(job.rate * dt, job.remaining);
      job.remaining = std::max(0.0, job.remaining - job.rate * dt);
      ++it;
    }
  }
  // Completion order is deterministic: ascending job id.
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= kWorkEpsilon) {
      completions.push_back(std::move(it->second.on_complete));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  // Callbacks run after the job table is consistent: they may re-enter Add().
  for (auto& cb : completions) {
    if (cb) {
      cb();
    }
  }
}

void FluidProcessor::Reallocate() {
  ++generation_;
  if (jobs_.empty()) {
    return;
  }

  // Priority-ordered greedy allocation (lower priority value first, FIFO
  // within a level) — this is the GPU stream-priority semantics.
  std::vector<Job*> order;
  order.reserve(jobs_.size());
  for (auto& [id, job] : jobs_) {
    order.push_back(&job);
  }
  std::sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    if (a->priority != b->priority) {
      return a->priority < b->priority;
    }
    return a->seq < b->seq;
  });

  double free = capacity_;
  for (Job* job : order) {
    job->rate = std::min(job->max_rate, free);
    free -= job->rate;
  }

  // Next completion among jobs that are making progress.
  double min_tta = -1.0;
  for (const Job* job : order) {
    if (job->rate > 0.0) {
      const double tta = job->remaining / job->rate;
      if (min_tta < 0.0 || tta < min_tta) {
        min_tta = tta;
      }
    }
  }
  if (min_tta < 0.0) {
    return;  // every active job is starved; a future Add/Cancel re-triggers
  }
  const TimeNs wake =
      engine_->now() + std::max<TimeNs>(1, static_cast<TimeNs>(std::ceil(min_tta)));
  const uint64_t gen = generation_;
  engine_->ScheduleAt(wake, [this, gen] {
    if (gen != generation_) {
      return;  // allocation changed since this wake-up was scheduled
    }
    Advance();
    Reallocate();
  });
}

}  // namespace oobp
