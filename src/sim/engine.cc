#include "src/sim/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

namespace oobp {

namespace {
// Flushed (not incremented per event) so the hot path stays atomic-free.
std::atomic<uint64_t> g_total_processed{0};
constexpr size_t kAry = 4;  // heap fan-out; shallow trees, cache-dense sifts

// First-run capture (see header). The armed flag is the only thing the Run
// hot path touches; the timestamp and result are guarded by the
// exchange(false) that exactly one Run() call wins.
std::atomic<bool> g_first_run_armed{false};
std::chrono::steady_clock::time_point g_first_run_armed_at;
std::atomic<double> g_first_run_ms{-1.0};

void MaybeCaptureFirstRun() {
  if (!g_first_run_armed.load(std::memory_order_relaxed)) {
    return;
  }
  if (g_first_run_armed.exchange(false, std::memory_order_acq_rel)) {
    g_first_run_ms.store(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - g_first_run_armed_at)
            .count(),
        std::memory_order_relaxed);
  }
}
}  // namespace

void SimEngine::ArmFirstRunCapture() {
  g_first_run_ms.store(-1.0, std::memory_order_relaxed);
  g_first_run_armed_at = std::chrono::steady_clock::now();
  g_first_run_armed.store(true, std::memory_order_release);
}

double SimEngine::FirstRunCaptureMs() {
  return g_first_run_ms.load(std::memory_order_relaxed);
}

SimEngine::~SimEngine() {
  g_total_processed.fetch_add(processed_, std::memory_order_relaxed);
}

uint64_t SimEngine::TotalProcessedEvents() {
  return g_total_processed.load(std::memory_order_relaxed);
}

uint32_t SimEngine::AcquireSlot() {
  if (free_head_ != kNone) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void SimEngine::ReleaseSlot(uint32_t slot) {
  EventSlot& s = slots_[slot];
  s.heap_pos = kNone;
  s.next_free = free_head_;
  free_head_ = slot;
}

void SimEngine::SiftUp(size_t pos, HeapEntry entry) {
  while (pos > 0) {
    const size_t parent = (pos - 1) / kAry;
    if (!EarlierThan(entry, heap_[parent])) {
      break;
    }
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
}

void SimEngine::SiftDown(size_t pos, HeapEntry entry) {
  const size_t size = heap_.size();
  while (true) {
    const size_t first_child = pos * kAry + 1;
    if (first_child >= size) {
      break;
    }
    const size_t last_child = std::min(first_child + kAry, size);
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (EarlierThan(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!EarlierThan(heap_[best], entry)) {
      break;
    }
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = static_cast<uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slots_[entry.slot].heap_pos = static_cast<uint32_t>(pos);
}

void SimEngine::RemoveHeapEntry(size_t pos) {
  const HeapEntry tail = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) {
    return;  // removed the physical tail
  }
  // Re-seat the tail entry at `pos`: it may need to move either direction.
  if (pos > 0 && EarlierThan(tail, heap_[(pos - 1) / kAry])) {
    SiftUp(pos, tail);
  } else {
    SiftDown(pos, tail);
  }
}

SimEngine::TimerHandle SimEngine::ScheduleAt(TimeNs t, Callback cb) {
  OOBP_CHECK_GE(t, now_);
  const uint32_t slot = AcquireSlot();
  const uint64_t seq =
      seq_source_ != nullptr
          ? seq_source_->fetch_add(1, std::memory_order_relaxed)
          : next_seq_++;
  EventSlot& s = slots_[slot];
  s.cb = std::move(cb);
  s.seq = seq;
  heap_.push_back(HeapEntry{t, seq, slot});
  SiftUp(heap_.size() - 1, heap_.back());
  return TimerHandle(slot, seq);
}

bool SimEngine::Cancel(TimerHandle handle) {
  if (handle.seq_ == 0 || handle.slot_ >= slots_.size()) {
    return false;
  }
  EventSlot& s = slots_[handle.slot_];
  if (s.heap_pos == kNone || s.seq != handle.seq_) {
    return false;  // already fired, already cancelled, or slot reused
  }
  RemoveHeapEntry(s.heap_pos);
  s.cb.Reset();
  ReleaseSlot(handle.slot_);
  return true;
}

bool SimEngine::Step() {
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry top = heap_[0];
  RemoveHeapEntry(0);
  // Move the callback out and free the slot before invoking: the callback
  // may schedule new events (reusing the slot) or grow the slab.
  Callback cb = std::move(slots_[top.slot].cb);
  ReleaseSlot(top.slot);
  OOBP_CHECK_GE(top.time, now_);
  now_ = top.time;
  ++processed_;
  cb();
  return true;
}

uint64_t SimEngine::Run(TimeNs limit) {
  MaybeCaptureFirstRun();
  uint64_t count = 0;
  while (!heap_.empty() && heap_[0].time <= limit) {
    if (!Step()) {
      break;
    }
    ++count;
  }
  // Finite-limit runs leave the clock at exactly `limit` (see header).
  if (limit != std::numeric_limits<TimeNs>::max() && now_ < limit) {
    now_ = limit;
  }
  return count;
}

uint64_t SimEngine::RunUntil(TimeNs t, uint64_t tie_seq_bound) {
  MaybeCaptureFirstRun();
  OOBP_CHECK_GE(t, now_);
  uint64_t count = 0;
  while (!heap_.empty() &&
         (heap_[0].time < t ||
          (heap_[0].time == t && heap_[0].seq < tie_seq_bound))) {
    Step();
    ++count;
  }
  if (now_ < t) {
    now_ = t;
  }
  return count;
}

}  // namespace oobp
