#include "src/sim/engine.h"

#include <utility>

namespace oobp {

uint64_t SimEngine::Run(TimeNs limit) {
  uint64_t count = 0;
  while (!queue_.empty() && queue_.top().time <= limit) {
    if (!Step()) {
      break;
    }
    ++count;
  }
  return count;
}

bool SimEngine::Step() {
  if (queue_.empty()) {
    return false;
  }
  // The queue holds const references; move out via a copy of the callback.
  Event ev = queue_.top();
  queue_.pop();
  OOBP_CHECK_GE(ev.time, now_);
  now_ = ev.time;
  ++processed_;
  ev.cb();
  return true;
}

}  // namespace oobp
