// Execution trace recording.
//
// Engines record one TraceEvent per kernel execution, communication, or
// stall. Traces serve three purposes: Chrome-trace JSON export for visual
// inspection (chrome://tracing / Perfetto), timeline analysis for the
// figure-reproduction benches (e.g. Figure 2's issue-masking breakdown), and
// utilization metrics.

#ifndef OOBP_SRC_TRACE_TRACE_H_
#define OOBP_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace oobp {

struct TraceEvent {
  std::string name;       // e.g. "dW[conv4_2]"
  std::string category;   // "fwd", "dO", "dW", "update", "comm", "issue", ...
  int track = 0;          // device/stream id the event ran on
  TimeNs start = 0;
  TimeNs duration = 0;
  std::map<std::string, std::string> args;  // free-form annotations

  TimeNs end() const { return start + duration; }
};

class TraceRecorder {
 public:
  void Add(TraceEvent ev) { events_.push_back(std::move(ev)); }
  void Clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  // Events on one track, sorted by start time.
  std::vector<TraceEvent> TrackEvents(int track) const;

  // Total busy time on a track within [begin, end), counting overlapping
  // events once (union of intervals).
  TimeNs BusyTime(int track, TimeNs begin, TimeNs end) const;

  // Latest event end over all tracks (0 when empty).
  TimeNs Makespan() const;

  // Serializes to the Chrome trace-event JSON array format. `track_names`
  // maps track ids to thread names shown by the viewer.
  std::string ToChromeJson(const std::map<int, std::string>& track_names) const;

  // Writes ToChromeJson to a file; returns false on I/O failure.
  bool WriteChromeJson(const std::string& path,
                       const std::map<int, std::string>& track_names) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace oobp

#endif  // OOBP_SRC_TRACE_TRACE_H_
