#include "src/trace/trace.h"

#include <algorithm>
#include <fstream>

#include "src/common/str_util.h"

namespace oobp {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<TraceEvent> TraceRecorder::TrackEvents(int track) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_) {
    if (ev.track == track) {
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start < b.start;
  });
  return out;
}

TimeNs TraceRecorder::BusyTime(int track, TimeNs begin, TimeNs end) const {
  std::vector<std::pair<TimeNs, TimeNs>> intervals;
  for (const TraceEvent& ev : events_) {
    if (ev.track != track) {
      continue;
    }
    const TimeNs s = std::max(begin, ev.start);
    const TimeNs e = std::min(end, ev.end());
    if (s < e) {
      intervals.emplace_back(s, e);
    }
  }
  std::sort(intervals.begin(), intervals.end());
  TimeNs busy = 0;
  TimeNs cursor = begin;
  for (const auto& [s, e] : intervals) {
    const TimeNs from = std::max(cursor, s);
    if (e > from) {
      busy += e - from;
      cursor = e;
    }
  }
  return busy;
}

TimeNs TraceRecorder::Makespan() const {
  TimeNs last = 0;
  for (const TraceEvent& ev : events_) {
    last = std::max(last, ev.end());
  }
  return last;
}

std::string TraceRecorder::ToChromeJson(
    const std::map<int, std::string>& track_names) const {
  std::string out = "[\n";
  bool first = true;
  for (const auto& [track, name] : track_names) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        track, JsonEscape(name).c_str());
  }
  for (const TraceEvent& ev : events_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    // Chrome traces use microsecond floats; nanoseconds divide cleanly.
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f",
        JsonEscape(ev.name).c_str(), JsonEscape(ev.category).c_str(), ev.track,
        ToUs(ev.start), ToUs(ev.duration));
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : ev.args) {
        if (!first_arg) {
          out += ",";
        }
        first_arg = false;
        out += StrFormat("\"%s\":\"%s\"", JsonEscape(k).c_str(),
                         JsonEscape(v).c_str());
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

bool TraceRecorder::WriteChromeJson(
    const std::string& path, const std::map<int, std::string>& track_names) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << ToChromeJson(track_names);
  return static_cast<bool>(f);
}

}  // namespace oobp
