// Deterministic pseudo-random number generation.
//
// Experiments must be bit-reproducible across runs and machines, so every
// component that needs randomness owns an explicitly seeded Rng. The
// generator is splitmix64 — small, fast, and with well-understood statistical
// quality for simulation jitter (we never use randomness for cryptography).

#ifndef OOBP_SRC_COMMON_RNG_H_
#define OOBP_SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace oobp {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value (splitmix64 step).
  uint64_t NextU64() {
    state_ += 0x9E3779B97f4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    OOBP_CHECK_LE(lo, hi);
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n) {
    OOBP_CHECK_GT(n, 0u);
    return NextU64() % n;
  }

 private:
  uint64_t state_;
};

}  // namespace oobp

#endif  // OOBP_SRC_COMMON_RNG_H_
