// Small statistics helpers used by benches and metric reporting.

#ifndef OOBP_SRC_COMMON_STATS_H_
#define OOBP_SRC_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace oobp {

// Online accumulator for mean / stddev / min / max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) {
      min_ = x;
    }
    if (count_ == 1 || x > max_) {
      max_ = x;
    }
  }

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  // Standard error of the mean, as reported by the paper for throughput.
  double stderr_mean() const {
    return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

inline double Mean(const std::vector<double>& xs) {
  OOBP_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) {
    s += x;
  }
  return s / static_cast<double>(xs.size());
}

// Exact order-statistic (nearest-rank) percentile: the smallest element of
// `sorted` (ascending) whose rank r satisfies r >= ceil(p/100 * n). The
// result is always an element of the sample — no interpolation — so tail
// percentiles (p99 of latencies) never invent values between two samples
// and stay bit-deterministic. p = 0 returns the minimum, p = 100 the
// maximum.
inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  OOBP_CHECK(!sorted.empty());
  OOBP_CHECK_GE(p, 0.0);
  OOBP_CHECK_LE(p, 100.0);
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > n) {
    rank = n;
  }
  return sorted[rank - 1];
}

// Same, over an unsorted sample (sorts a copy).
inline double Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return PercentileSorted(xs, p);
}

// Counts of small non-negative integer values (batch sizes, queue depths):
// one bucket per value in [0, max_value], with out-of-range adds clamped
// into the edge buckets.
class IntHistogram {
 public:
  explicit IntHistogram(int max_value) : counts_(max_value + 1, 0) {
    OOBP_CHECK_GE(max_value, 0);
  }

  void Add(int value) {
    const int v = std::clamp(value, 0, max_value());
    ++counts_[static_cast<size_t>(v)];
    ++total_;
    sum_ += v;
  }

  int max_value() const { return static_cast<int>(counts_.size()) - 1; }
  int64_t count(int value) const {
    OOBP_CHECK_GE(value, 0);
    OOBP_CHECK_LE(value, max_value());
    return counts_[static_cast<size_t>(value)];
  }
  int64_t total() const { return total_; }
  // Mean of the clamped values.
  double mean() const {
    return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
  }

 private:
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  double sum_ = 0.0;
};

// Geometric mean of strictly positive samples; the paper reports average
// speedups that are geometric in nature.
inline double GeoMean(const std::vector<double>& xs) {
  OOBP_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    OOBP_CHECK_GT(x, 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace oobp

#endif  // OOBP_SRC_COMMON_STATS_H_
