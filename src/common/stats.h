// Small statistics helpers used by benches and metric reporting.

#ifndef OOBP_SRC_COMMON_STATS_H_
#define OOBP_SRC_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "src/common/check.h"

namespace oobp {

// Online accumulator for mean / stddev / min / max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) {
      min_ = x;
    }
    if (count_ == 1 || x > max_) {
      max_ = x;
    }
  }

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  // Standard error of the mean, as reported by the paper for throughput.
  double stderr_mean() const {
    return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

inline double Mean(const std::vector<double>& xs) {
  OOBP_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) {
    s += x;
  }
  return s / static_cast<double>(xs.size());
}

// Geometric mean of strictly positive samples; the paper reports average
// speedups that are geometric in nature.
inline double GeoMean(const std::vector<double>& xs) {
  OOBP_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    OOBP_CHECK_GT(x, 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace oobp

#endif  // OOBP_SRC_COMMON_STATS_H_
