// Simulation time representation.
//
// All simulated durations and timestamps are int64_t nanoseconds. Integer
// nanoseconds keep event ordering exact (no float comparison hazards) while
// covering ~292 years of simulated time, far beyond any training run we
// model. Helpers convert to/from the microsecond and millisecond quantities
// that appear in the paper's text.

#ifndef OOBP_SRC_COMMON_TIME_H_
#define OOBP_SRC_COMMON_TIME_H_

#include <cstdint>

namespace oobp {

using TimeNs = int64_t;

constexpr TimeNs kNsPerUs = 1000;
constexpr TimeNs kNsPerMs = 1000 * 1000;
constexpr TimeNs kNsPerSec = 1000 * 1000 * 1000;

constexpr TimeNs Us(double us) { return static_cast<TimeNs>(us * kNsPerUs); }
constexpr TimeNs Ms(double ms) { return static_cast<TimeNs>(ms * kNsPerMs); }
constexpr TimeNs Sec(double s) { return static_cast<TimeNs>(s * kNsPerSec); }

constexpr double ToUs(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }
constexpr double ToMs(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }
constexpr double ToSec(TimeNs t) { return static_cast<double>(t) / kNsPerSec; }

}  // namespace oobp

#endif  // OOBP_SRC_COMMON_TIME_H_
