// String formatting helpers shared by benches, traces and examples.

#ifndef OOBP_SRC_COMMON_STR_UTIL_H_
#define OOBP_SRC_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace oobp {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins the elements with the separator: {"a","b"} + "," -> "a,b".
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Human-readable byte count: 1536 -> "1.5KiB".
std::string HumanBytes(int64_t bytes);

// Fixed-width left/right padding for the plain-text tables the benches print.
std::string PadLeft(const std::string& s, size_t width);
std::string PadRight(const std::string& s, size_t width);

}  // namespace oobp

#endif  // OOBP_SRC_COMMON_STR_UTIL_H_
