// Lightweight CHECK macros for invariant enforcement.
//
// These are always-on (release builds included): the simulator's correctness
// depends on schedule invariants, and a silently-corrupted schedule would
// produce plausible-looking but wrong throughput numbers. Failures print the
// expression, location, and an optional streamed message, then abort.

#ifndef OOBP_SRC_COMMON_CHECK_H_
#define OOBP_SRC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace oobp {

namespace check_internal {

// Collects a streamed message and aborts on destruction. Used as the
// right-hand side of the CHECK macros so call sites can write
// `OOBP_CHECK(x) << "detail " << v;`.
class FailureStream {
 public:
  FailureStream(const char* expr, const char* file, int line) {
    stream_ << "CHECK failed: " << expr << " at " << file << ":" << line << " ";
  }
  FailureStream(const FailureStream&) = delete;
  FailureStream& operator=(const FailureStream&) = delete;

  [[noreturn]] ~FailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace check_internal

// Streaming form: `OOBP_CHECK(x) << "detail";`. The dangling-else shape is
// intentional (glog-style); wrap call sites in braces as usual.
#define OOBP_CHECK(cond)                                                    \
  if (cond)                                                                 \
    ::oobp::check_internal::NullStream();                                   \
  else                                                                      \
    ::oobp::check_internal::FailureStream(#cond, __FILE__, __LINE__)

#define OOBP_CHECK_EQ(a, b) OOBP_CHECK((a) == (b))
#define OOBP_CHECK_NE(a, b) OOBP_CHECK((a) != (b))
#define OOBP_CHECK_LT(a, b) OOBP_CHECK((a) < (b))
#define OOBP_CHECK_LE(a, b) OOBP_CHECK((a) <= (b))
#define OOBP_CHECK_GT(a, b) OOBP_CHECK((a) > (b))
#define OOBP_CHECK_GE(a, b) OOBP_CHECK((a) >= (b))

}  // namespace oobp

#endif  // OOBP_SRC_COMMON_CHECK_H_
