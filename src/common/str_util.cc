#include "src/common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace oobp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string HumanBytes(int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) {
    return StrFormat("%lldB", static_cast<long long>(bytes));
  }
  return StrFormat("%.1f%s", value, units[unit]);
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

}  // namespace oobp
