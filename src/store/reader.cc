#include "src/store/reader.h"

#include <algorithm>
#include <cstring>

#include "src/store/hash.h"

namespace oobp {
namespace {

// Section payloads start 8-aligned (writer pads); records assert this via
// alignof so reinterpret_cast below is UBSan-clean.
template <typename Record>
const Record* RecordCast(const uint8_t* p) {
  static_assert(alignof(Record) <= 8);
  return reinterpret_cast<const Record*>(p);
}

}  // namespace

std::unique_ptr<SnapshotReader> SnapshotReader::Open(const std::string& path,
                                                     std::string* error) {
  auto reader = std::unique_ptr<SnapshotReader>(new SnapshotReader());
  if (!reader->mmap_.Open(path, error)) return nullptr;
  if (!reader->Validate(error)) return nullptr;
  return reader;
}

std::unique_ptr<SnapshotReader> SnapshotReader::OpenBytes(
    std::string bytes, std::string* error) {
  auto reader = std::unique_ptr<SnapshotReader>(new SnapshotReader());
  reader->owned_bytes_ = std::move(bytes);
  if (!reader->Validate(error)) return nullptr;
  return reader;
}

const uint8_t* SnapshotReader::base() const {
  if (mmap_.is_open()) return mmap_.data();
  return reinterpret_cast<const uint8_t*>(owned_bytes_.data());
}

size_t SnapshotReader::size() const {
  if (mmap_.is_open()) return mmap_.size();
  return owned_bytes_.size();
}

bool SnapshotReader::Validate(std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error) *error = "snapshot: " + msg;
    return false;
  };

  // 1. Size floor before touching any header field.
  if (size() < sizeof(SnapshotHeader)) {
    return fail("file too small for header (" + std::to_string(size()) +
                " bytes)");
  }
  // The header may be misaligned only if the owned-bytes string is; mmap
  // regions are page-aligned. Copy-free cast is fine either way because
  // std::string data is at least max_align_t-aligned.
  header_ = RecordCast<SnapshotHeader>(base());

  // 2. Magic, then version — a future version must be reported as a version
  // problem, not fall through to a confusing checksum mismatch.
  if (header_->magic != kSnapshotMagic) {
    return fail("bad magic (not a snapshot file)");
  }
  if (header_->format_version != kSnapshotFormatVersion) {
    return fail("format version " + std::to_string(header_->format_version) +
                " not supported (this binary reads version " +
                std::to_string(kSnapshotFormatVersion) +
                "); rebuild the snapshot");
  }
  if (header_->file_size != size()) {
    return fail("file size mismatch: header says " +
                std::to_string(header_->file_size) + ", file has " +
                std::to_string(size()) + " bytes (truncated?)");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(header_->section_count) * sizeof(SectionEntry);
  if (sizeof(SnapshotHeader) + table_bytes > size()) {
    return fail("section table extends past end of file");
  }
  table_ = RecordCast<SectionEntry>(base() + sizeof(SnapshotHeader));

  // 3. Table checksum over header (field zeroed) + table.
  {
    SnapshotHeader for_hash = *header_;
    for_hash.table_checksum = 0;
    HashAccumulator acc;
    acc.Bytes(&for_hash, sizeof(for_hash));
    acc.Bytes(table_, table_bytes);
    if (acc.Digest() != header_->table_checksum) {
      return fail("header/table checksum mismatch (corrupt file)");
    }
  }

  // 4. Per-section bounds + payload checksums.
  for (uint32_t i = 0; i < header_->section_count; ++i) {
    const SectionEntry& entry = table_[i];
    if (entry.offset % 8 != 0) {
      return fail("section " + std::string(SectionKindName(
                      static_cast<SectionKind>(entry.kind))) +
                  " misaligned");
    }
    if (entry.offset > size() || entry.length > size() - entry.offset) {
      return fail("section " + std::string(SectionKindName(
                      static_cast<SectionKind>(entry.kind))) +
                  " out of bounds");
    }
    if (SnapshotHash64(base() + entry.offset, entry.length) !=
        entry.checksum) {
      return fail("section " + std::string(SectionKindName(
                      static_cast<SectionKind>(entry.kind))) +
                  " checksum mismatch (corrupt file)");
    }
  }

  // Structural sanity of cross-section indices: every StrRef and pool index
  // reachable from the sorted arrays must land in bounds, so lookups never
  // have to re-validate.
  uint64_t pool_len = 0;
  Section(SectionKind::kStringPool, &pool_len);
  auto str_ok = [pool_len](StrRef ref) {
    return ref.offset <= pool_len && ref.length <= pool_len - ref.offset;
  };

  size_t layer_count = 0, model_count = 0;
  const LayerRecord* layer_arr =
      SectionArray<LayerRecord>(SectionKind::kLayers, &layer_count);
  const ModelRecord* model_arr =
      SectionArray<ModelRecord>(SectionKind::kModels, &model_count);
  for (size_t i = 0; i < model_count; ++i) {
    const ModelRecord& m = model_arr[i];
    if (!str_ok(m.key) || !str_ok(m.name) ||
        m.layer_begin > layer_count ||
        m.layer_count > layer_count - m.layer_begin) {
      return fail("model record " + std::to_string(i) + " has bad indices");
    }
  }
  for (size_t i = 0; i < layer_count; ++i) {
    if (!str_ok(layer_arr[i].name) || !str_ok(layer_arr[i].block)) {
      return fail("layer record " + std::to_string(i) + " has bad StrRef");
    }
  }

  size_t cost_count = 0;
  const CostModelRecord* cost_arr =
      SectionArray<CostModelRecord>(SectionKind::kCostModels, &cost_count);
  for (size_t i = 0; i < cost_count; ++i) {
    if (!str_ok(cost_arr[i].key) || !str_ok(cost_arr[i].gpu_name) ||
        !str_ok(cost_arr[i].profile_name)) {
      return fail("cost-model record " + std::to_string(i) +
                  " has bad StrRef");
    }
  }

  size_t op_count = 0, assigned_count = 0, sched_count = 0;
  SectionArray<ScheduleOpRecord>(SectionKind::kScheduleOps, &op_count);
  SectionArray<AssignedOpRecord>(SectionKind::kAssignedOps, &assigned_count);
  const ScheduleRecord* sched_arr =
      SectionArray<ScheduleRecord>(SectionKind::kSchedules, &sched_count);
  for (size_t i = 0; i < sched_count; ++i) {
    const ScheduleRecord& s = sched_arr[i];
    if (s.op_begin > op_count || s.op_count > op_count - s.op_begin ||
        s.assigned_begin > assigned_count ||
        s.assigned_count > assigned_count - s.assigned_begin) {
      return fail("schedule record " + std::to_string(i) +
                  " has bad indices");
    }
  }

  size_t check_count = 0, golden_count = 0;
  const GoldenCheckRecord* check_arr = SectionArray<GoldenCheckRecord>(
      SectionKind::kGoldenChecks, &check_count);
  const GoldenRecord* golden_arr =
      SectionArray<GoldenRecord>(SectionKind::kGoldens, &golden_count);
  for (size_t i = 0; i < golden_count; ++i) {
    const GoldenRecord& g = golden_arr[i];
    if (!str_ok(g.scenario) || g.check_begin > check_count ||
        g.check_count > check_count - g.check_begin) {
      return fail("golden record " + std::to_string(i) + " has bad indices");
    }
  }
  for (size_t i = 0; i < check_count; ++i) {
    if (!str_ok(check_arr[i].key)) {
      return fail("golden check " + std::to_string(i) + " has bad StrRef");
    }
  }

  return true;
}

const uint8_t* SnapshotReader::Section(SectionKind kind,
                                       uint64_t* length) const {
  for (uint32_t i = 0; i < header_->section_count; ++i) {
    if (table_[i].kind == static_cast<uint32_t>(kind)) {
      *length = table_[i].length;
      return base() + table_[i].offset;
    }
  }
  *length = 0;
  return nullptr;
}

template <typename Record>
const Record* SnapshotReader::SectionArray(SectionKind kind,
                                           size_t* count) const {
  uint64_t length = 0;
  const uint8_t* p = Section(kind, &length);
  *count = length / sizeof(Record);
  return p == nullptr ? nullptr : RecordCast<Record>(p);
}

std::string_view SnapshotReader::Str(StrRef ref) const {
  uint64_t length = 0;
  const uint8_t* p = Section(SectionKind::kStringPool, &length);
  // Bounds were proven in Validate; this is pure pointer math.
  return std::string_view(reinterpret_cast<const char*>(p) + ref.offset,
                          ref.length);
}

std::vector<SnapshotSectionInfo> SnapshotReader::Sections() const {
  std::vector<SnapshotSectionInfo> out;
  out.reserve(header_->section_count);
  for (uint32_t i = 0; i < header_->section_count; ++i) {
    const SectionEntry& entry = table_[i];
    SnapshotSectionInfo info;
    info.kind = static_cast<SectionKind>(entry.kind);
    info.offset = entry.offset;
    info.length = entry.length;
    info.checksum = entry.checksum;
    switch (info.kind) {
      case SectionKind::kLayers:
        info.entry_count = entry.length / sizeof(LayerRecord);
        break;
      case SectionKind::kModels:
        info.entry_count = entry.length / sizeof(ModelRecord);
        break;
      case SectionKind::kCostModels:
        info.entry_count = entry.length / sizeof(CostModelRecord);
        break;
      case SectionKind::kScheduleOps:
        info.entry_count = entry.length / sizeof(ScheduleOpRecord);
        break;
      case SectionKind::kAssignedOps:
        info.entry_count = entry.length / sizeof(AssignedOpRecord);
        break;
      case SectionKind::kSchedules:
        info.entry_count = entry.length / sizeof(ScheduleRecord);
        break;
      case SectionKind::kGoldenChecks:
        info.entry_count = entry.length / sizeof(GoldenCheckRecord);
        break;
      case SectionKind::kGoldens:
        info.entry_count = entry.length / sizeof(GoldenRecord);
        break;
      default:
        info.entry_count = 0;  // blob sections
    }
    out.push_back(info);
  }
  return out;
}

namespace {

// Binary search over records sorted by a string key resolved through the
// pool. Returns nullptr if absent.
template <typename Record, typename GetKey>
const Record* FindByKey(const Record* arr, size_t count, std::string_view key,
                        GetKey get_key) {
  size_t lo = 0, hi = count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    std::string_view mid_key = get_key(arr[mid]);
    if (mid_key < key) {
      lo = mid + 1;
    } else if (key < mid_key) {
      hi = mid;
    } else {
      return &arr[mid];
    }
  }
  return nullptr;
}

}  // namespace

std::optional<NnModel> SnapshotReader::FindModel(std::string_view key) const {
  size_t model_count = 0, layer_count = 0;
  const ModelRecord* models =
      SectionArray<ModelRecord>(SectionKind::kModels, &model_count);
  const LayerRecord* layers =
      SectionArray<LayerRecord>(SectionKind::kLayers, &layer_count);
  const ModelRecord* rec = FindByKey(
      models, model_count, key,
      [this](const ModelRecord& m) { return Str(m.key); });
  if (rec == nullptr) return std::nullopt;

  NnModel model;
  model.name = std::string(Str(rec->name));
  model.batch = rec->batch;
  model.layers.reserve(rec->layer_count);
  for (uint32_t i = 0; i < rec->layer_count; ++i) {
    const LayerRecord& lr = layers[rec->layer_begin + i];
    Layer layer;
    layer.name = std::string(Str(lr.name));
    layer.block = std::string(Str(lr.block));
    layer.fwd_flops = lr.fwd_flops;
    layer.dgrad_flops = lr.dgrad_flops;
    layer.wgrad_flops = lr.wgrad_flops;
    layer.fwd_bytes = lr.fwd_bytes;
    layer.dgrad_bytes = lr.dgrad_bytes;
    layer.wgrad_bytes = lr.wgrad_bytes;
    layer.fwd_blocks = lr.fwd_blocks;
    layer.dgrad_blocks = lr.dgrad_blocks;
    layer.wgrad_blocks = lr.wgrad_blocks;
    layer.param_bytes = lr.param_bytes;
    layer.output_bytes = lr.output_bytes;
    layer.stash_bytes = lr.stash_bytes;
    layer.workspace_bytes = lr.workspace_bytes;
    layer.fused_ops = lr.fused_ops;
    model.layers.push_back(std::move(layer));
  }
  return model;
}

uint64_t SnapshotReader::FindModelContentHash(std::string_view key) const {
  size_t model_count = 0;
  const ModelRecord* models =
      SectionArray<ModelRecord>(SectionKind::kModels, &model_count);
  const ModelRecord* rec = FindByKey(
      models, model_count, key,
      [this](const ModelRecord& m) { return Str(m.key); });
  return rec == nullptr ? 0 : rec->content_hash;
}

std::vector<std::string> SnapshotReader::ModelKeys() const {
  size_t count = 0;
  const ModelRecord* arr =
      SectionArray<ModelRecord>(SectionKind::kModels, &count);
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) keys.emplace_back(Str(arr[i].key));
  return keys;
}

std::optional<SnapshotReader::CostPoint> SnapshotReader::FindCostModel(
    std::string_view key) const {
  size_t count = 0;
  const CostModelRecord* arr =
      SectionArray<CostModelRecord>(SectionKind::kCostModels, &count);
  const CostModelRecord* rec = FindByKey(
      arr, count, key,
      [this](const CostModelRecord& c) { return Str(c.key); });
  if (rec == nullptr) return std::nullopt;

  CostPoint point;
  point.gpu.name = std::string(Str(rec->gpu_name));
  point.gpu.num_sms = rec->num_sms;
  point.gpu.blocks_per_sm = rec->blocks_per_sm;
  point.gpu.fp32_tflops = rec->fp32_tflops;
  point.gpu.mem_bandwidth_gbps = rec->mem_bandwidth_gbps;
  point.gpu.mem_bytes = rec->mem_bytes;
  point.gpu.kernel_exec_overhead = rec->kernel_exec_overhead;
  point.profile.name = std::string(Str(rec->profile_name));
  point.profile.compute_efficiency = rec->compute_efficiency;
  point.profile.mem_efficiency = rec->mem_efficiency;
  point.profile.issue_latency_per_op = rec->issue_latency_per_op;
  point.profile.graph_launch_latency = rec->graph_launch_latency;
  point.profile.fused = rec->fused != 0;
  point.profile.issue_queue_depth = rec->issue_queue_depth;
  point.profile.allocator_overhead = rec->allocator_overhead;
  return point;
}

std::vector<std::string> SnapshotReader::CostModelKeys() const {
  size_t count = 0;
  const CostModelRecord* arr =
      SectionArray<CostModelRecord>(SectionKind::kCostModels, &count);
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) keys.emplace_back(Str(arr[i].key));
  return keys;
}

std::optional<JointScheduleResult> SnapshotReader::FindSchedule(
    uint64_t key_hash) const {
  size_t sched_count = 0, op_count = 0, assigned_count = 0;
  const ScheduleRecord* scheds =
      SectionArray<ScheduleRecord>(SectionKind::kSchedules, &sched_count);
  const ScheduleOpRecord* ops =
      SectionArray<ScheduleOpRecord>(SectionKind::kScheduleOps, &op_count);
  const AssignedOpRecord* assigned = SectionArray<AssignedOpRecord>(
      SectionKind::kAssignedOps, &assigned_count);

  const ScheduleRecord* rec = nullptr;
  size_t lo = 0, hi = sched_count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (scheds[mid].key_hash < key_hash) {
      lo = mid + 1;
    } else if (key_hash < scheds[mid].key_hash) {
      hi = mid;
    } else {
      rec = &scheds[mid];
      break;
    }
  }
  if (rec == nullptr) return std::nullopt;

  JointScheduleResult result;
  result.schedule.ops.reserve(rec->op_count);
  for (uint32_t i = 0; i < rec->op_count; ++i) {
    const ScheduleOpRecord& sor = ops[rec->op_begin + i];
    ScheduledOp op;
    op.op.type = static_cast<TrainOpType>(sor.op_type);
    op.op.layer = sor.layer;
    op.stream = sor.stream;
    op.wait_for_index = sor.wait_for_index;
    result.schedule.ops.push_back(op);
  }
  result.assigned_ops.reserve(rec->assigned_count);
  result.assigned_region.reserve(rec->assigned_count);
  for (uint32_t i = 0; i < rec->assigned_count; ++i) {
    const AssignedOpRecord& aor = assigned[rec->assigned_begin + i];
    TrainOp op;
    op.type = static_cast<TrainOpType>(aor.op_type);
    op.layer = aor.layer;
    result.assigned_ops.push_back(op);
    result.assigned_region.push_back(aor.region);
  }
  result.pre_scheduled_regions = rec->pre_scheduled_regions;
  result.peak_memory = rec->peak_memory;
  return result;
}

size_t SnapshotReader::ScheduleCount() const {
  size_t count = 0;
  SectionArray<ScheduleRecord>(SectionKind::kSchedules, &count);
  return count;
}

std::optional<SnapshotReader::GoldenView> SnapshotReader::FindGolden(
    std::string_view scenario) const {
  size_t golden_count = 0, check_count = 0;
  const GoldenRecord* goldens =
      SectionArray<GoldenRecord>(SectionKind::kGoldens, &golden_count);
  const GoldenCheckRecord* checks = SectionArray<GoldenCheckRecord>(
      SectionKind::kGoldenChecks, &check_count);
  const GoldenRecord* rec = FindByKey(
      goldens, golden_count, scenario,
      [this](const GoldenRecord& g) { return Str(g.scenario); });
  if (rec == nullptr) return std::nullopt;

  GoldenView view;
  view.scenario = Str(rec->scenario);
  view.checks = checks + rec->check_begin;
  view.check_count = rec->check_count;
  return view;
}

std::vector<std::string> SnapshotReader::GoldenScenarios() const {
  size_t count = 0;
  const GoldenRecord* arr =
      SectionArray<GoldenRecord>(SectionKind::kGoldens, &count);
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) names.emplace_back(Str(arr[i].scenario));
  return names;
}

std::string_view SnapshotReader::perf_baseline() const {
  uint64_t length = 0;
  const uint8_t* p = Section(SectionKind::kPerfBaseline, &length);
  if (p == nullptr) return {};
  return std::string_view(reinterpret_cast<const char*>(p), length);
}

}  // namespace oobp
