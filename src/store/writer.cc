#include "src/store/writer.h"

#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "src/store/format.h"
#include "src/store/hash.h"
#include "src/store/snapshot.h"

namespace oobp {
namespace {

// Accumulates payload bytes for one section, padding to 8-byte alignment so
// successive sections (and the records within them) stay aligned.
class SectionBuilder {
 public:
  template <typename Record>
  void Add(const Record& record) {
    static_assert(std::is_standard_layout_v<Record>);
    bytes_.append(reinterpret_cast<const char*>(&record), sizeof(record));
  }
  void AddRaw(const std::string& raw) { bytes_.append(raw); }

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

// Deduplicating string pool. Interning order is the order of first
// reference, which is itself deterministic because the writer walks sorted
// maps in a fixed section order.
class StringPool {
 public:
  StrRef Intern(const std::string& s) {
    auto it = refs_.find(s);
    if (it != refs_.end()) return it->second;
    StrRef ref{static_cast<uint32_t>(bytes_.size()),
               static_cast<uint32_t>(s.size())};
    bytes_.append(s);
    refs_.emplace(s, ref);
    return ref;
  }

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
  std::unordered_map<std::string, StrRef> refs_;
};

std::string PadTo8(std::string s) {
  while (s.size() % 8 != 0) s.push_back('\0');
  return s;
}

}  // namespace

const char* SectionKindName(SectionKind kind) {
  switch (kind) {
    case SectionKind::kStringPool: return "string_pool";
    case SectionKind::kLayers: return "layers";
    case SectionKind::kModels: return "models";
    case SectionKind::kCostModels: return "cost_models";
    case SectionKind::kScheduleOps: return "schedule_ops";
    case SectionKind::kAssignedOps: return "assigned_ops";
    case SectionKind::kSchedules: return "schedules";
    case SectionKind::kGoldenChecks: return "golden_checks";
    case SectionKind::kGoldens: return "goldens";
    case SectionKind::kPerfBaseline: return "perf_baseline";
  }
  return "unknown";
}

std::string BuildSnapshotBytes(const SnapshotContents& contents) {
  StringPool pool;
  SectionBuilder layers, models, cost_models, schedule_ops, assigned_ops,
      schedules, golden_checks, goldens;

  // Models + their layer runs. Map order == sorted cache-key order.
  uint32_t layer_cursor = 0;
  for (const auto& [key, model] : contents.models) {
    ModelRecord rec;
    rec.key = pool.Intern(key);
    rec.name = pool.Intern(model.name);
    rec.batch = model.batch;
    rec.layer_begin = layer_cursor;
    rec.layer_count = static_cast<uint32_t>(model.layers.size());
    rec.content_hash = ModelContentHash(model);
    models.Add(rec);
    for (const Layer& layer : model.layers) {
      LayerRecord lr;
      lr.name = pool.Intern(layer.name);
      lr.block = pool.Intern(layer.block);
      lr.fwd_flops = layer.fwd_flops;
      lr.dgrad_flops = layer.dgrad_flops;
      lr.wgrad_flops = layer.wgrad_flops;
      lr.fwd_bytes = layer.fwd_bytes;
      lr.dgrad_bytes = layer.dgrad_bytes;
      lr.wgrad_bytes = layer.wgrad_bytes;
      lr.fwd_blocks = layer.fwd_blocks;
      lr.dgrad_blocks = layer.dgrad_blocks;
      lr.wgrad_blocks = layer.wgrad_blocks;
      lr.param_bytes = layer.param_bytes;
      lr.output_bytes = layer.output_bytes;
      lr.stash_bytes = layer.stash_bytes;
      lr.workspace_bytes = layer.workspace_bytes;
      lr.fused_ops = layer.fused_ops;
      layers.Add(lr);
    }
    layer_cursor += rec.layer_count;
  }

  for (const auto& [key, entry] : contents.cost_models) {
    CostModelRecord rec;
    rec.key = pool.Intern(key);
    rec.gpu_name = pool.Intern(entry.gpu.name);
    rec.num_sms = entry.gpu.num_sms;
    rec.blocks_per_sm = entry.gpu.blocks_per_sm;
    rec.fp32_tflops = entry.gpu.fp32_tflops;
    rec.mem_bandwidth_gbps = entry.gpu.mem_bandwidth_gbps;
    rec.mem_bytes = entry.gpu.mem_bytes;
    rec.kernel_exec_overhead = entry.gpu.kernel_exec_overhead;
    rec.profile_name = pool.Intern(entry.profile.name);
    rec.compute_efficiency = entry.profile.compute_efficiency;
    rec.mem_efficiency = entry.profile.mem_efficiency;
    rec.issue_latency_per_op = entry.profile.issue_latency_per_op;
    rec.graph_launch_latency = entry.profile.graph_launch_latency;
    rec.fused = entry.profile.fused ? 1 : 0;
    rec.issue_queue_depth = entry.profile.issue_queue_depth;
    rec.allocator_overhead = entry.profile.allocator_overhead;
    cost_models.Add(rec);
  }

  uint32_t op_cursor = 0;
  uint32_t assigned_cursor = 0;
  for (const auto& [key_hash, result] : contents.schedules) {
    ScheduleRecord rec;
    rec.key_hash = key_hash;
    rec.op_begin = op_cursor;
    rec.op_count = static_cast<uint32_t>(result.schedule.ops.size());
    rec.assigned_begin = assigned_cursor;
    rec.assigned_count = static_cast<uint32_t>(result.assigned_ops.size());
    rec.pre_scheduled_regions = result.pre_scheduled_regions;
    rec.peak_memory = result.peak_memory;
    schedules.Add(rec);
    for (const ScheduledOp& op : result.schedule.ops) {
      ScheduleOpRecord sor;
      sor.op_type = static_cast<int32_t>(op.op.type);
      sor.layer = op.op.layer;
      sor.stream = op.stream;
      sor.wait_for_index = op.wait_for_index;
      schedule_ops.Add(sor);
    }
    for (size_t i = 0; i < result.assigned_ops.size(); ++i) {
      AssignedOpRecord aor;
      aor.op_type = static_cast<int32_t>(result.assigned_ops[i].type);
      aor.layer = result.assigned_ops[i].layer;
      aor.region = i < result.assigned_region.size()
                       ? result.assigned_region[i]
                       : -1;
      assigned_ops.Add(aor);
    }
    op_cursor += rec.op_count;
    assigned_cursor += rec.assigned_count;
  }

  uint32_t check_cursor = 0;
  for (const auto& [scenario, golden] : contents.goldens) {
    GoldenRecord rec;
    rec.scenario = pool.Intern(scenario);
    rec.check_begin = check_cursor;
    rec.check_count = static_cast<uint32_t>(golden.checks.size());
    goldens.Add(rec);
    for (const SnapshotGoldenCheck& check : golden.checks) {
      GoldenCheckRecord gcr;
      gcr.key = pool.Intern(check.key);
      gcr.flags = check.flags;
      gcr.expect = check.expect;
      gcr.rel_tol = check.rel_tol;
      gcr.abs_tol = check.abs_tol;
      gcr.min = check.min;
      gcr.max = check.max;
      golden_checks.Add(gcr);
    }
    check_cursor += rec.check_count;
  }

  // Assemble payloads in fixed kind order. Empty sections are omitted from
  // the table entirely (their absence is a valid "no entries" state).
  struct Payload {
    SectionKind kind;
    std::string bytes;
  };
  std::vector<Payload> payloads;
  auto add_payload = [&payloads](SectionKind kind, std::string bytes) {
    if (!bytes.empty()) payloads.push_back({kind, std::move(bytes)});
  };
  add_payload(SectionKind::kStringPool, pool.bytes());
  add_payload(SectionKind::kLayers, layers.bytes());
  add_payload(SectionKind::kModels, models.bytes());
  add_payload(SectionKind::kCostModels, cost_models.bytes());
  add_payload(SectionKind::kScheduleOps, schedule_ops.bytes());
  add_payload(SectionKind::kAssignedOps, assigned_ops.bytes());
  add_payload(SectionKind::kSchedules, schedules.bytes());
  add_payload(SectionKind::kGoldenChecks, golden_checks.bytes());
  add_payload(SectionKind::kGoldens, goldens.bytes());
  add_payload(SectionKind::kPerfBaseline, contents.perf_baseline_json);

  SnapshotHeader header;
  header.section_count = static_cast<uint32_t>(payloads.size());
  header.registry_hash = contents.registry_hash;

  std::vector<SectionEntry> table(payloads.size());
  uint64_t offset =
      sizeof(SnapshotHeader) + payloads.size() * sizeof(SectionEntry);
  // The header + table region is already 8-aligned (40 + n*32).
  for (size_t i = 0; i < payloads.size(); ++i) {
    table[i].kind = static_cast<uint32_t>(payloads[i].kind);
    table[i].offset = offset;
    table[i].length = payloads[i].bytes.size();
    table[i].checksum = SnapshotHash64(payloads[i].bytes);
    // Pad the stored payload so the next section starts 8-aligned; the
    // table length stays the unpadded size (checksummed bytes only).
    payloads[i].bytes = PadTo8(std::move(payloads[i].bytes));
    offset += payloads[i].bytes.size();
  }
  header.file_size = offset;

  // table_checksum covers the header (with the field itself zeroed) and the
  // whole section table.
  {
    SnapshotHeader for_hash = header;
    for_hash.table_checksum = 0;
    HashAccumulator acc;
    acc.Bytes(&for_hash, sizeof(for_hash));
    if (!table.empty()) {
      acc.Bytes(table.data(), table.size() * sizeof(SectionEntry));
    }
    header.table_checksum = acc.Digest();
  }

  std::string out;
  out.reserve(header.file_size);
  out.append(reinterpret_cast<const char*>(&header), sizeof(header));
  if (!table.empty()) {
    out.append(reinterpret_cast<const char*>(table.data()),
               table.size() * sizeof(SectionEntry));
  }
  for (const Payload& payload : payloads) out.append(payload.bytes);
  return out;
}

bool WriteSnapshotFile(const std::string& path,
                       const SnapshotContents& contents, std::string* error) {
  const std::string bytes = BuildSnapshotBytes(contents);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error) *error = tmp + ": cannot open for writing";
    return false;
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    if (error) *error = tmp + ": short write";
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace oobp
