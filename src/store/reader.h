// Validating zero-copy reader over a snapshot mapping.
//
// Open() runs the full integrity ladder from format.h (size → magic →
// version → table checksum → per-section bounds + checksums) before any
// lookup is offered, so a reader that exists is a reader whose every byte
// has been checksum-verified. Lookups are binary searches over the sorted
// record arrays in the mapping; the returned records/string_views alias the
// mapping and stay valid for the reader's lifetime. All lookups are const
// on an immutable mapping — safe from any number of threads concurrently.

#ifndef OOBP_SRC_STORE_READER_H_
#define OOBP_SRC_STORE_READER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/joint_scheduler.h"
#include "src/hw/gpu_spec.h"
#include "src/nn/cost_model.h"
#include "src/nn/layer.h"
#include "src/store/format.h"
#include "src/store/mmap_file.h"

namespace oobp {

struct SnapshotSectionInfo {
  SectionKind kind;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
  uint64_t entry_count = 0;  // 0 for blob sections
};

class SnapshotReader {
 public:
  // Maps and fully validates `path`. nullptr (with *error describing the
  // first failed check) on any I/O, corruption, or version problem.
  static std::unique_ptr<SnapshotReader> Open(const std::string& path,
                                              std::string* error);

  // Validates an in-memory image; used by the corruption tests to flip
  // bytes without touching disk. Same checks as Open.
  static std::unique_ptr<SnapshotReader> OpenBytes(std::string bytes,
                                                   std::string* error);

  uint64_t registry_hash() const { return header_->registry_hash; }
  uint64_t file_size() const { return header_->file_size; }
  std::vector<SnapshotSectionInfo> Sections() const;

  // Materializes the model stored under the model_cache key, or nullopt.
  std::optional<NnModel> FindModel(std::string_view key) const;
  // Content hash stored with that model (0 if absent); lets callers verify
  // a hit matches the in-process builder without materializing.
  uint64_t FindModelContentHash(std::string_view key) const;
  std::vector<std::string> ModelKeys() const;

  // (GpuSpec, SystemProfile) stored under the CostModelCacheKey.
  struct CostPoint {
    GpuSpec gpu;
    SystemProfile profile;
  };
  std::optional<CostPoint> FindCostModel(std::string_view key) const;
  std::vector<std::string> CostModelKeys() const;

  // Precomputed MakeOooSchedule output stored under ScheduleKeyHash.
  std::optional<JointScheduleResult> FindSchedule(uint64_t key_hash) const;
  size_t ScheduleCount() const;

  // Golden checks for a scenario, in stored order. Returned as the raw
  // records plus an accessor for their keys; runner converts to GoldenSpec.
  struct GoldenView {
    std::string_view scenario;
    const GoldenCheckRecord* checks = nullptr;
    size_t check_count = 0;
  };
  std::optional<GoldenView> FindGolden(std::string_view scenario) const;
  std::vector<std::string> GoldenScenarios() const;

  // Raw perf_baseline.json bytes; empty view if the section is absent.
  std::string_view perf_baseline() const;

  // String-pool resolution for record fields (bounds already validated).
  std::string_view Str(StrRef ref) const;

 private:
  SnapshotReader() = default;
  bool Validate(std::string* error);
  const uint8_t* base() const;
  size_t size() const;
  // Section payload by kind; nullptr + *length 0 when absent.
  const uint8_t* Section(SectionKind kind, uint64_t* length) const;
  template <typename Record>
  const Record* SectionArray(SectionKind kind, size_t* count) const;

  // Exactly one of these backs the reader.
  MmapFile mmap_;
  std::string owned_bytes_;

  const SnapshotHeader* header_ = nullptr;
  const SectionEntry* table_ = nullptr;
};

}  // namespace oobp

#endif  // OOBP_SRC_STORE_READER_H_
