// Read-only memory mapping of a file. The mapping is shared (MAP_SHARED +
// PROT_READ), so every thread — and every forked worker — of a process sees
// one physical copy of the snapshot; this is the zero-copy substrate the
// reader hands out string_views and record pointers into.

#ifndef OOBP_SRC_STORE_MMAP_FILE_H_
#define OOBP_SRC_STORE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace oobp {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Close(); }

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  // Maps `path` read-only. False (with *error filled) on any failure,
  // including an empty file (a valid snapshot is never empty).
  bool Open(const std::string& path, std::string* error);
  void Close();

  bool is_open() const { return data_ != nullptr; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace oobp

#endif  // OOBP_SRC_STORE_MMAP_FILE_H_
