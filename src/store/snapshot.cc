#include "src/store/snapshot.h"

#include <mutex>
#include <utility>

#include "src/nn/model_cache.h"
#include "src/store/hash.h"

namespace oobp {
namespace {

struct SnapshotState {
  std::mutex mu;
  std::shared_ptr<const SnapshotReader> reader;  // null = inactive
  bool recording = false;
  SnapshotContents recorded;
};

SnapshotState& State() {
  static auto* state = new SnapshotState();
  return *state;
}

// One hooks installation serves both roles: find consults the active
// reader, record feeds the recording contents. Installed whenever either is
// live, removed when both are gone.
void ReinstallHooks() {
  SnapshotState& state = State();  // caller holds state.mu
  if (state.reader == nullptr && !state.recording) {
    ClearModelCacheHooks();
    return;
  }
  ModelCacheHooks hooks;
  hooks.find_model =
      [](const std::string& key) -> std::shared_ptr<const NnModel> {
    std::shared_ptr<const SnapshotReader> reader = ActiveSnapshot();
    if (reader == nullptr) return nullptr;
    std::optional<NnModel> model = reader->FindModel(key);
    if (!model.has_value()) return nullptr;
    return std::make_shared<const NnModel>(*std::move(model));
  };
  hooks.record_model = [](const std::string& key, const NnModel& model) {
    SnapshotState& s = State();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.recording) s.recorded.models.emplace(key, model);
  };
  hooks.record_cost_model = [](const std::string& key, const GpuSpec& gpu,
                               const SystemProfile& profile) {
    SnapshotState& s = State();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.recording) s.recorded.cost_models.emplace(key,
                                                    SnapshotCostEntry{gpu, profile});
  };
  SetModelCacheHooks(std::move(hooks));
}

}  // namespace

uint64_t ModelContentHash(const NnModel& model) {
  HashAccumulator acc(/*seed=*/0x6F6F6270u);  // "oobp"
  acc.Str(model.name);
  acc.I32(model.batch);
  acc.U64(model.layers.size());
  for (const Layer& layer : model.layers) {
    acc.Str(layer.name);
    acc.Str(layer.block);
    acc.I64(layer.fwd_flops);
    acc.I64(layer.dgrad_flops);
    acc.I64(layer.wgrad_flops);
    acc.I64(layer.fwd_bytes);
    acc.I64(layer.dgrad_bytes);
    acc.I64(layer.wgrad_bytes);
    acc.F64(layer.fwd_blocks);
    acc.F64(layer.dgrad_blocks);
    acc.F64(layer.wgrad_blocks);
    acc.I64(layer.param_bytes);
    acc.I64(layer.output_bytes);
    acc.I64(layer.stash_bytes);
    acc.I64(layer.workspace_bytes);
    acc.I32(layer.fused_ops);
  }
  return acc.Digest();
}

uint64_t ScheduleKeyHash(const NnModel& model, const GpuSpec& gpu,
                         const SystemProfile& profile,
                         double memory_cap_factor) {
  HashAccumulator acc(/*seed=*/0x73636864u);  // "schd"
  acc.U64(ModelContentHash(model));
  acc.Str(CostModelCacheKey(gpu, profile));
  acc.F64(memory_cap_factor);
  return acc.Digest();
}

uint64_t SearchKeyHash(const NnModel& model, const GpuSpec& gpu,
                       const SystemProfile& profile, int beam, uint64_t seed,
                       int budget, double memory_cap_factor,
                       int evaluator_version) {
  HashAccumulator acc(/*seed=*/0x73726368u);  // "srch"
  acc.U64(ModelContentHash(model));
  acc.Str(CostModelCacheKey(gpu, profile));
  acc.I32(beam);
  acc.U64(seed);
  acc.I32(budget);
  acc.F64(memory_cap_factor);
  acc.I32(evaluator_version);
  return acc.Digest();
}

SnapshotActivation ActivateSnapshot(const std::string& path,
                                    uint64_t expected_registry_hash,
                                    bool check_registry, std::string* error) {
  std::string open_error;
  std::unique_ptr<SnapshotReader> reader =
      SnapshotReader::Open(path, &open_error);
  if (reader == nullptr) {
    if (error) *error = open_error;
    return SnapshotActivation::kError;
  }
  if (check_registry && reader->registry_hash() != expected_registry_hash) {
    if (error) {
      *error = "snapshot " + path +
               " was built for a different scenario registry; falling back "
               "to in-process build (rerun `oobp snapshot build`)";
    }
    return SnapshotActivation::kStale;
  }
  SnapshotState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.reader = std::shared_ptr<const SnapshotReader>(std::move(reader));
  ReinstallHooks();
  return SnapshotActivation::kActive;
}

void DeactivateSnapshot() {
  SnapshotState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.reader = nullptr;
  ReinstallHooks();
}

bool SnapshotActive() { return ActiveSnapshot() != nullptr; }

std::shared_ptr<const SnapshotReader> ActiveSnapshot() {
  SnapshotState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.reader;
}

JointScheduleResult SnapshotOooSchedule(const TrainGraph& graph,
                                        const GpuSpec& gpu,
                                        const SystemProfile& profile,
                                        double memory_cap_factor) {
  const uint64_t key =
      ScheduleKeyHash(graph.model(), gpu, profile, memory_cap_factor);
  if (std::shared_ptr<const SnapshotReader> reader = ActiveSnapshot()) {
    if (std::optional<JointScheduleResult> hit = reader->FindSchedule(key)) {
      return *std::move(hit);
    }
  }
  JointScheduleResult result =
      MakeOooSchedule(graph, gpu, profile, memory_cap_factor);
  SnapshotState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.recording) {
    state.recorded.schedules.emplace(key, result);
    // The scheduling call pins a (gpu, profile) point even when the cost
    // model was built outside CachedCostModel; capture it for the
    // kCostModels section.
    state.recorded.cost_models.emplace(CostModelCacheKey(gpu, profile),
                                       SnapshotCostEntry{gpu, profile});
  }
  return result;
}

void RecordSnapshotSchedule(uint64_t key, const JointScheduleResult& result,
                            const GpuSpec& gpu, const SystemProfile& profile) {
  SnapshotState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.recording) return;
  state.recorded.schedules.emplace(key, result);
  state.recorded.cost_models.emplace(CostModelCacheKey(gpu, profile),
                                     SnapshotCostEntry{gpu, profile});
}

void StartSnapshotRecording(uint64_t registry_hash) {
  SnapshotState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.recording = true;
  state.recorded = SnapshotContents{};
  state.recorded.registry_hash = registry_hash;
  ReinstallHooks();
}

bool SnapshotRecording() {
  SnapshotState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.recording;
}

SnapshotContents TakeSnapshotRecording() {
  SnapshotState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.recording = false;
  SnapshotContents out = std::move(state.recorded);
  state.recorded = SnapshotContents{};
  ReinstallHooks();
  return out;
}

}  // namespace oobp
