// On-disk layout of the oobp snapshot: a binary, versioned, checksummed,
// mmap-able store for the model zoo, cost-model points, precomputed ooo
// schedules, golden specs, and the perf baseline (ROADMAP "mmap snapshot
// store"; DESIGN.md §12).
//
// Layout (all little-endian, all offsets from byte 0 of the file):
//
//   +--------------------+  0
//   | SnapshotHeader     |  magic, format version, schema version,
//   |                    |  registry hash, section count, file size,
//   |                    |  table checksum
//   +--------------------+  sizeof(SnapshotHeader)
//   | SectionEntry[n]    |  kind, offset, length, payload checksum
//   +--------------------+  8-byte aligned
//   | section payloads   |  flat records + string pool, no pointers
//   |  ...               |
//   +--------------------+  header.file_size
//
// Every cross-record reference is an index or a (offset, length) pair into a
// sibling section, so the file is position-independent: one read-only
// mapping is shared by every --jobs worker and --sim-threads logical
// process with no fix-up pass. Records are standard-layout, explicitly
// padded, and 8-byte aligned so reinterpret_cast from an aligned mapping is
// well-defined (no misaligned loads under UBSan).
//
// Integrity story (validated in this order by SnapshotReader::Open):
//   1. size: file at least sizeof(SnapshotHeader), and == header.file_size
//      (catches truncation before any offset is trusted);
//   2. magic, then format version (a future version is reported as such,
//      not as corruption);
//   3. table checksum: XXH64 over the header (with the checksum field
//      zeroed) plus the section table — catches flipped header/table bytes;
//   4. per-section bounds and XXH64 payload checksums.
// Staleness (scenario registry changed since the build) is separate from
// corruption: the registry hash mismatching the running binary's is a clean
// "rebuild me" signal handled by ActivateSnapshot, not an Open failure.

#ifndef OOBP_SRC_STORE_FORMAT_H_
#define OOBP_SRC_STORE_FORMAT_H_

#include <bit>
#include <cstdint>
#include <type_traits>

namespace oobp {

static_assert(std::endian::native == std::endian::little,
              "snapshot files are little-endian; big-endian hosts would need "
              "a byte-swapping reader");

// "OOBPSNP1" as a u64 (little-endian: 'O' is the lowest byte).
inline constexpr uint64_t kSnapshotMagic = 0x31504E5350424F4FULL;

// Bump when the file layout changes (header/table/record shapes). Readers
// reject any other value.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

// Bump when the *meaning* of stored content changes without a layout change
// — e.g. a model-zoo builder starts producing different layer tables for
// the same cache key, or cost-model semantics shift. Folded into the
// registry hash, so a bump invalidates existing snapshots cleanly.
inline constexpr uint64_t kSnapshotSchemaVersion = 1;

enum class SectionKind : uint32_t {
  kStringPool = 1,    // raw bytes; all StrRefs point here
  kLayers = 2,        // LayerRecord[], shared pool indexed by models
  kModels = 3,        // ModelRecord[], sorted by cache key
  kCostModels = 4,    // CostModelRecord[], sorted by cache key
  kScheduleOps = 5,   // ScheduleOpRecord[], pool indexed by schedules
  kAssignedOps = 6,   // AssignedOpRecord[], pool indexed by schedules
  kSchedules = 7,     // ScheduleRecord[], sorted by key_hash
  kGoldenChecks = 8,  // GoldenCheckRecord[], pool indexed by goldens
  kGoldens = 9,       // GoldenRecord[], sorted by scenario name
  kPerfBaseline = 10, // raw bytes of bench/perf_baseline.json
};

const char* SectionKindName(SectionKind kind);

struct SnapshotHeader {
  uint64_t magic = kSnapshotMagic;
  uint32_t format_version = kSnapshotFormatVersion;
  uint32_t section_count = 0;
  // Identity of the producing binary's scenario registry + schema version;
  // see ComputeScenarioRegistryHash.
  uint64_t registry_hash = 0;
  uint64_t file_size = 0;
  // XXH64 over (header with this field zeroed) ++ section table.
  uint64_t table_checksum = 0;
};
static_assert(sizeof(SnapshotHeader) == 40);
static_assert(std::is_standard_layout_v<SnapshotHeader>);

struct SectionEntry {
  uint32_t kind = 0;  // SectionKind
  uint32_t reserved = 0;
  uint64_t offset = 0;  // from file start; 8-byte aligned
  uint64_t length = 0;  // bytes
  uint64_t checksum = 0;  // XXH64 of the payload
};
static_assert(sizeof(SectionEntry) == 32);
static_assert(std::is_standard_layout_v<SectionEntry>);

// Reference into the string-pool section. Not NUL-terminated.
struct StrRef {
  uint32_t offset = 0;
  uint32_t length = 0;
};
static_assert(sizeof(StrRef) == 8);

// One nn::Layer, doubles stored as raw bits so materialized models are
// bit-identical to the built-in-process originals.
struct LayerRecord {
  StrRef name;
  StrRef block;
  int64_t fwd_flops = 0;
  int64_t dgrad_flops = 0;
  int64_t wgrad_flops = 0;
  int64_t fwd_bytes = 0;
  int64_t dgrad_bytes = 0;
  int64_t wgrad_bytes = 0;
  double fwd_blocks = 1.0;
  double dgrad_blocks = 1.0;
  double wgrad_blocks = 1.0;
  int64_t param_bytes = 0;
  int64_t output_bytes = 0;
  int64_t stash_bytes = 0;
  int64_t workspace_bytes = 0;
  int32_t fused_ops = 1;
  int32_t pad = 0;
};
static_assert(sizeof(LayerRecord) == 128);
static_assert(std::is_standard_layout_v<LayerRecord>);

// One model-zoo entry: `key` is the model_cache cache key ("resnet:L50:B32"),
// layers are a contiguous run in the kLayers section. `content_hash` is
// ModelContentHash over every materially relevant field — the key by which
// schedules reference the model, so a zoo change orphans (never mis-serves)
// stored schedules.
struct ModelRecord {
  StrRef key;
  StrRef name;
  int32_t batch = 0;
  uint32_t layer_begin = 0;  // index into kLayers
  uint32_t layer_count = 0;
  uint32_t pad = 0;
  uint64_t content_hash = 0;
};
static_assert(sizeof(ModelRecord) == 40);
static_assert(std::is_standard_layout_v<ModelRecord>);

// One (GpuSpec, SystemProfile) cost-model point, keyed by the
// CostModelCacheKey string. Every field of both structs is stored so `oobp
// snapshot info` can print the point and tests can verify exact roundtrip.
struct CostModelRecord {
  StrRef key;
  // GpuSpec
  StrRef gpu_name;
  int32_t num_sms = 0;
  int32_t blocks_per_sm = 0;
  double fp32_tflops = 0.0;
  double mem_bandwidth_gbps = 0.0;
  int64_t mem_bytes = 0;
  int64_t kernel_exec_overhead = 0;
  // SystemProfile
  StrRef profile_name;
  double compute_efficiency = 0.0;
  double mem_efficiency = 0.0;
  int64_t issue_latency_per_op = 0;
  int64_t graph_launch_latency = 0;
  int32_t fused = 0;
  int32_t issue_queue_depth = 0;
  double allocator_overhead = 0.0;
};
static_assert(sizeof(CostModelRecord) == 112);
static_assert(std::is_standard_layout_v<CostModelRecord>);

// One ScheduledOp of an IterationSchedule.
struct ScheduleOpRecord {
  int32_t op_type = 0;  // TrainOpType
  int32_t layer = 0;
  int32_t stream = 0;
  int32_t wait_for_index = -1;
};
static_assert(sizeof(ScheduleOpRecord) == 16);

// One entry of JointScheduleResult::assigned_ops / assigned_region.
struct AssignedOpRecord {
  int32_t op_type = 0;
  int32_t layer = 0;
  int32_t region = 0;
  int32_t pad = 0;
};
static_assert(sizeof(AssignedOpRecord) == 16);

// One precomputed MakeOooSchedule output. `key_hash` is ScheduleKeyHash
// (model content hash + cost-model key + raw memory-cap factor), so a hit
// is only possible when model, hardware point, and cap all match exactly.
struct ScheduleRecord {
  uint64_t key_hash = 0;
  uint32_t op_begin = 0;  // index into kScheduleOps
  uint32_t op_count = 0;
  uint32_t assigned_begin = 0;  // index into kAssignedOps
  uint32_t assigned_count = 0;
  int32_t pre_scheduled_regions = 0;
  int32_t pad = 0;
  int64_t peak_memory = 0;
};
static_assert(sizeof(ScheduleRecord) == 40);

// Golden checks mirror runner::GoldenCheck (store cannot depend on runner;
// the runner converts). Doubles raw so comparisons are bit-equal to the
// JSON-parsed originals.
struct GoldenCheckRecord {
  StrRef key;
  uint32_t flags = 0;  // kGoldenHasExpect | kGoldenHasMin | kGoldenHasMax
  uint32_t pad = 0;
  double expect = 0.0;
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  double min = 0.0;
  double max = 0.0;
};
static_assert(sizeof(GoldenCheckRecord) == 56);

inline constexpr uint32_t kGoldenHasExpect = 1u << 0;
inline constexpr uint32_t kGoldenHasMin = 1u << 1;
inline constexpr uint32_t kGoldenHasMax = 1u << 2;

struct GoldenRecord {
  StrRef scenario;
  uint32_t check_begin = 0;  // index into kGoldenChecks
  uint32_t check_count = 0;
};
static_assert(sizeof(GoldenRecord) == 16);

}  // namespace oobp

#endif  // OOBP_SRC_STORE_FORMAT_H_
