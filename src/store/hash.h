// 64-bit checksum used throughout the snapshot store (src/store/format.h):
// an implementation of the XXH64 algorithm (Yann Collet's xxHash, the
// public-domain spec). Chosen over a CRC because section payloads are
// megabytes of flat records and XXH64 runs at memory speed while still
// catching any single flipped byte; chosen over a cryptographic hash because
// snapshots are a local cache, not a trust boundary.
//
// The streaming accumulator exists so content keys (model layer tables,
// schedule identities) can be hashed field-by-field without first
// serializing into a scratch buffer.

#ifndef OOBP_SRC_STORE_HASH_H_
#define OOBP_SRC_STORE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace oobp {

// One-shot XXH64 of `len` bytes with the given seed.
uint64_t SnapshotHash64(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t SnapshotHash64(std::string_view s, uint64_t seed = 0) {
  return SnapshotHash64(s.data(), s.size(), seed);
}

// Order-sensitive streaming accumulator. Not bit-compatible with one-shot
// XXH64 over the concatenation (it buffers into a string and hashes at
// Digest()); it only promises determinism and full sensitivity to every
// appended byte, which is all content keys need.
class HashAccumulator {
 public:
  explicit HashAccumulator(uint64_t seed = 0) : seed_(seed) {}

  void Bytes(const void* data, size_t len) {
    buffer_.append(static_cast<const char*>(data), len);
  }
  // Length-prefixed so {"ab","c"} and {"a","bc"} accumulate differently.
  void Str(std::string_view s) {
    U64(s.size());
    buffer_.append(s.data(), s.size());
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void I32(int32_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }  // raw bits, exact

  uint64_t Digest() const { return SnapshotHash64(buffer_, seed_); }

 private:
  uint64_t seed_;
  std::string buffer_;
};

}  // namespace oobp

#endif  // OOBP_SRC_STORE_HASH_H_
