// Snapshot serialization. The writer takes fully materialized contents
// (collected by the recording hooks in src/store/snapshot.h during a
// scenario sweep) and emits the flat section-table file described in
// src/store/format.h.
//
// Determinism contract (tested by store_format_test): BuildSnapshotBytes is
// a pure function of its input — contents are held in sorted maps, sections
// are emitted in fixed kind order, the string pool is deduplicated in
// first-reference order, and nothing environmental (timestamps, paths,
// pointer values) enters the output. Identical inputs → bit-identical
// bytes.

#ifndef OOBP_SRC_STORE_WRITER_H_
#define OOBP_SRC_STORE_WRITER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/joint_scheduler.h"
#include "src/hw/gpu_spec.h"
#include "src/nn/cost_model.h"
#include "src/nn/layer.h"

namespace oobp {

// Store-side mirror of runner::GoldenCheck/GoldenSpec. The store cannot
// depend on src/runner (layering: runner links store, not vice versa), so
// the runner converts at the boundary; fields and semantics are identical.
struct SnapshotGoldenCheck {
  std::string key;
  uint32_t flags = 0;  // kGoldenHasExpect | kGoldenHasMin | kGoldenHasMax
  double expect = 0.0;
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct SnapshotGolden {
  std::string scenario;
  std::vector<SnapshotGoldenCheck> checks;
};

struct SnapshotCostEntry {
  GpuSpec gpu;
  SystemProfile profile;
};

struct SnapshotContents {
  // Identity of the scenario registry (plus kSnapshotSchemaVersion) that
  // produced these contents; readers compare against the running binary's.
  uint64_t registry_hash = 0;
  // Model-zoo cache key -> model. Sorted map keeps emission order stable.
  std::map<std::string, NnModel> models;
  // CostModelCacheKey -> (gpu, profile) point.
  std::map<std::string, SnapshotCostEntry> cost_models;
  // ScheduleKeyHash -> precomputed MakeOooSchedule output.
  std::map<uint64_t, JointScheduleResult> schedules;
  // Scenario name -> golden spec.
  std::map<std::string, SnapshotGolden> goldens;
  // Raw bytes of bench/perf_baseline.json (empty = section omitted).
  std::string perf_baseline_json;
};

// Serializes to the complete file image (header + table + payloads).
std::string BuildSnapshotBytes(const SnapshotContents& contents);

// BuildSnapshotBytes + atomic write via rename (tmp file in the same
// directory), so a crashed build never leaves a half-written snapshot at
// `path`. False (with *error filled) on I/O failure.
bool WriteSnapshotFile(const std::string& path,
                       const SnapshotContents& contents, std::string* error);

}  // namespace oobp

#endif  // OOBP_SRC_STORE_WRITER_H_
