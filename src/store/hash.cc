#include "src/store/hash.h"

#include <cstring>

namespace oobp {
namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t ReadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian host asserted in format.h
}

inline uint32_t ReadU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

inline uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

uint64_t SnapshotHash64(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    const unsigned char* const limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed + 0;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, ReadU64(p));
      v2 = Round(v2, ReadU64(p + 8));
      v3 = Round(v3, ReadU64(p + 16));
      v4 = Round(v4, ReadU64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h ^= Round(0, ReadU64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(ReadU32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }

  return Avalanche(h);
}

}  // namespace oobp
