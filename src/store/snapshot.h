// Process-wide snapshot integration: activation (mmap + validate + install
// model-cache hooks), recording (collect contents during a scenario sweep
// for `oobp snapshot build`), content-addressed keys, and the
// snapshot-aware MakeOooSchedule front door.
//
// Staleness model (DESIGN.md §12):
//  * The registry hash (scenario names + kSnapshotSchemaVersion, computed
//    by the runner) guards whole-file relevance: a binary whose scenario
//    registry differs from the builder's silently falls back to in-process
//    construction (ActivateSnapshot returns kStale and installs nothing).
//  * Model hits are guarded per-entry by ModelContentHash: the CLI's
//    `snapshot verify` recomputes hashes, and schedules reference models by
//    content, so a zoo change can orphan stored schedules but never serve a
//    wrong one.
//  * Schedule hits are content-addressed by ScheduleKeyHash = XXH64 over
//    (model content hash, cost-model cache key, raw memory-cap factor):
//    any change to the model, hardware point, profile, or cap misses.
//
// Thread-safety: Activate/Deactivate/StartRecording are startup/teardown
// operations; once installed, the reader is immutable and hook lookups take
// a shared_ptr under a mutex (cheap, off the simulation hot path — hits
// land in the model_cache maps and are never re-fetched).

#ifndef OOBP_SRC_STORE_SNAPSHOT_H_
#define OOBP_SRC_STORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/joint_scheduler.h"
#include "src/nn/train_graph.h"
#include "src/store/reader.h"
#include "src/store/writer.h"

namespace oobp {

// Default artifact location relative to the repo root (gitignored).
inline constexpr const char* kDefaultSnapshotPath = "bench/oobp.snapshot";

// Hash over every field of the model that scheduling depends on (name,
// batch, all per-layer fields). Two models with equal hashes are — up to
// hash collision — the same scheduling problem.
uint64_t ModelContentHash(const NnModel& model);

// Content-addressed identity of one MakeOooSchedule call.
uint64_t ScheduleKeyHash(const NnModel& model, const GpuSpec& gpu,
                         const SystemProfile& profile,
                         double memory_cap_factor);

// Content-addressed identity of one SearchSchedule call (src/search): the
// scheduling problem plus every knob the search result depends on. Lives in
// the same key space as ScheduleKeyHash (distinct hash seed), so searched
// schedules share the snapshot's kSchedules section. `evaluator_version`
// identifies the candidate-scoring pipeline (0 = exact simulator; the
// analytic evaluator's version constant in two-tier mode) — it is always
// hashed, so a pipeline revision makes previously stored searches stale
// (silent re-search) rather than replaying results the new pipeline would
// not produce. Thread count is deliberately absent: results are
// byte-identical at any `threads`.
uint64_t SearchKeyHash(const NnModel& model, const GpuSpec& gpu,
                       const SystemProfile& profile, int beam, uint64_t seed,
                       int budget, double memory_cap_factor,
                       int evaluator_version);

enum class SnapshotActivation {
  kActive,  // validated, hooks installed
  kStale,   // valid file, registry hash differs — silent fallback
  kError,   // unreadable / corrupt / version mismatch
};

// Maps + validates `path` and, on success, installs the model-cache hooks
// so CachedModel misses consult the snapshot before building. With
// `check_registry`, a registry-hash mismatch yields kStale and leaves the
// process exactly as before the call (the caller decides whether to warn).
// kError fills *error with the reader's diagnostic.
SnapshotActivation ActivateSnapshot(const std::string& path,
                                    uint64_t expected_registry_hash,
                                    bool check_registry = true,
                                    std::string* error = nullptr);
void DeactivateSnapshot();
bool SnapshotActive();
// The active reader (nullptr when inactive). The shared_ptr keeps the
// mapping alive across a concurrent Deactivate.
std::shared_ptr<const SnapshotReader> ActiveSnapshot();

// MakeOooSchedule with snapshot fall-through: a stored schedule whose
// content key matches is materialized from the mapping; otherwise the
// scheduler runs as today (and the result is captured when recording).
// Value-identical to MakeOooSchedule by construction — the stored record
// holds every field of JointScheduleResult exactly.
JointScheduleResult SnapshotOooSchedule(const TrainGraph& graph,
                                        const GpuSpec& gpu,
                                        const SystemProfile& profile,
                                        double memory_cap_factor = 1.1);

// Captures an externally computed schedule under `key` when recording (the
// hook SnapshotOooSchedule uses internally, exposed for higher layers such
// as src/search that compute their own JointScheduleResult-shaped records).
// Also pins the (gpu, profile) cost-model point. No-op when not recording.
void RecordSnapshotSchedule(uint64_t key, const JointScheduleResult& result,
                            const GpuSpec& gpu, const SystemProfile& profile);

// Recording: between Start and Take, every model built through CachedModel,
// every cost-model point built through CachedCostModel, and every schedule
// computed through SnapshotOooSchedule is collected into a
// SnapshotContents. Used by `oobp snapshot build`, which replays the golden
// scenario sweep with recording on and serializes the result.
void StartSnapshotRecording(uint64_t registry_hash);
bool SnapshotRecording();
// Stops recording and returns everything collected.
SnapshotContents TakeSnapshotRecording();

}  // namespace oobp

#endif  // OOBP_SRC_STORE_SNAPSHOT_H_
