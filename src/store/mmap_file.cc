#include "src/store/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace oobp {

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

bool MmapFile::Open(const std::string& path, std::string* error) {
  Close();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (error) *error = path + ": open failed: " + std::strerror(errno);
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    if (error) *error = path + ": fstat failed: " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (st.st_size <= 0) {
    if (error) *error = path + ": empty file";
    ::close(fd);
    return false;
  }
  void* p = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                   MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (p == MAP_FAILED) {
    if (error) *error = path + ": mmap failed: " + std::strerror(errno);
    return false;
  }
  data_ = static_cast<uint8_t*>(p);
  size_ = static_cast<size_t>(st.st_size);
  return true;
}

void MmapFile::Close() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace oobp
