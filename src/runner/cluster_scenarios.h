// Registration of the cluster-scale parameter-server scenarios.
//
// Two scenarios over the cluster PS engine (src/runtime/cluster_ps_engine.h),
// sharing model, fleet shape, links, and straggler draw so their golden
// files isolate the gradient-ordering effect:
//   cluster_ps_conv_16 — 16 workers, conventional top-down weight gradients,
//       FIFO pushes: layer 0's synchronization sits fully exposed between
//       iterations.
//   cluster_ps_ooo_16 — same cluster, reverse-first weight gradients with
//       layer-index priorities on the preemptive links: low-layer updates
//       return while the remaining backward pass still computes.
//
// These are also the Chandy–Misra demonstration for the sharded simulator:
// each worker GPU and the server is a logical process, and Link::latency is
// the cross-LP lookahead (`--sim-threads N`, byte-identical for all N).

#ifndef OOBP_SRC_RUNNER_CLUSTER_SCENARIOS_H_
#define OOBP_SRC_RUNNER_CLUSTER_SCENARIOS_H_

namespace oobp {

// Registers all cluster scenarios (label "cluster") into
// ScenarioRegistry::Global(); idempotent.
void RegisterClusterScenarios();

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_CLUSTER_SCENARIOS_H_
