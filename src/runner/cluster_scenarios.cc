#include "src/runner/cluster_scenarios.h"

#include <mutex>
#include <string>
#include <utility>

#include "src/common/str_util.h"
#include "src/nn/model_cache.h"
#include "src/nn/model_zoo.h"
#include "src/runner/registry.h"
#include "src/runtime/cluster_ps_engine.h"

namespace oobp {
namespace {

// 16 V100 workers training ResNet-50 through a parameter server over 10GbE
// (commodity Ethernet: gradient traffic is load-bearing, as in the paper's
// cluster evaluation).
// The straggler spread keeps the cluster mildly heterogeneous, so the
// server's all-arrived barrier is load-bearing in both orderings.
ScenarioResult RunClusterPs(const ScenarioParams& params, bool ooo) {
  ScenarioResult result;
  ClusterPsConfig cfg;
  cfg.gpu = GpuSpec::V100();
  cfg.profile = SystemProfile::TensorFlowXla();
  cfg.uplink = LinkSpec::Eth10G();
  cfg.downlink = LinkSpec::Eth10G();
  cfg.workers = params.GetInt("workers", 16);
  cfg.iterations = params.GetInt("iterations", 3);
  cfg.ooo = ooo;
  cfg.straggler_spread = params.GetDouble("straggler_spread", 0.15);
  cfg.reverse_k = params.GetInt("reverse_k", -1);
  cfg.sim_threads = params.GetInt("sim_threads", 1);
  cfg.sim_perturb_seed =
      static_cast<uint64_t>(params.GetInt("sim_perturb_seed", 0));

  const std::shared_ptr<const NnModel> model =
      CachedModel("resnet:L50:B32", [] { return ResNet(50, 32, 224); });
  result.AddNote(StrFormat(
      "%d workers x %s over %s, %d iterations, straggler spread %.2f, "
      "%s gradient order",
      cfg.workers, model->name.c_str(), cfg.uplink.name.c_str(),
      cfg.iterations, cfg.straggler_spread,
      ooo ? "reverse-first (ooo)" : "conventional"));

  const ClusterPsEngine engine(std::move(cfg));
  const ClusterPsMetrics m = engine.Run(*model);
  result.Set("iteration_time_ms", ToMs(m.iteration_time));
  result.Set("worker_iter_min_ms", ToMs(m.worker_iter_min));
  result.Set("worker_iter_max_ms", ToMs(m.worker_iter_max));
  result.Set("makespan_ms", ToMs(m.makespan));
  result.Set("sync_stall_frac", m.sync_stall_frac);
  result.Set("bytes_pushed_mb",
             static_cast<double>(m.bytes_pushed) / (1024.0 * 1024.0));
  result.Set("uplink_busy_frac", m.uplink_busy_frac);
  result.Set("slowest_factor", m.slowest_factor);
  result.Set("processed_events", static_cast<double>(m.processed_events));
  return result;
}

}  // namespace

void RegisterClusterScenarios() {
  static std::once_flag once;
  std::call_once(once, [] {
    ScenarioRegistry& reg = ScenarioRegistry::Global();
    reg.Register({"cluster_ps_conv_16", "Cluster",
                  "16-worker parameter server, conventional gradient order, "
                  "ResNet-50 over 10GbE",
                  [](const ScenarioParams& params) {
                    return RunClusterPs(params, /*ooo=*/false);
                  },
                  "cluster"});
    reg.Register({"cluster_ps_ooo_16", "Cluster",
                  "16-worker parameter server, reverse-first gradients with "
                  "priority links, ResNet-50 over 10GbE",
                  [](const ScenarioParams& params) {
                    return RunClusterPs(params, /*ooo=*/true);
                  },
                  "cluster"});
  });
}

}  // namespace oobp
