// Scenario registry: every paper experiment registers as a named,
// parameterized function so the runner (and `oobp bench`) can enumerate,
// filter, and execute them — serially or across a thread pool.
//
// Scenarios must be pure: they read their ScenarioParams, run simulations
// (each simulation builds its own SimEngine, so scenarios share no mutable
// state), and return a ScenarioResult. That purity is what makes parallel
// execution produce byte-identical output to serial execution.

#ifndef OOBP_SRC_RUNNER_REGISTRY_H_
#define OOBP_SRC_RUNNER_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/runner/glob.h"
#include "src/runner/result.h"

namespace oobp {

// String-typed parameter bag with typed getters; CLI --param key=value
// overrides land here.
class ScenarioParams {
 public:
  void Set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string GetString(const std::string& key, const std::string& def) const;
  int GetInt(const std::string& key, int def) const;
  double GetDouble(const std::string& key, double def) const;
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

struct Scenario {
  std::string name;         // unique id, e.g. "fig05_mp_unit"
  std::string figure;       // paper anchor, e.g. "Figure 5"
  std::string description;  // one line, shown by --list
  std::function<ScenarioResult(const ScenarioParams&)> run;
  // Scenario group, mirroring the CTest label taxonomy: "train" for the
  // paper's training experiments, "serve" for the inference-serving
  // subsystem. --list prints scenarios grouped by label. Declared after
  // `run` so the existing positional aggregate initializers keep working.
  std::string label = "train";
};

class ScenarioRegistry {
 public:
  // Process-wide registry used by the runner and `oobp bench`.
  static ScenarioRegistry& Global();

  // Aborts on duplicate names: scenario ids key golden files and JSON
  // output, so a collision is a programming error.
  void Register(Scenario scenario);

  const Scenario* Find(const std::string& name) const;
  // All scenarios whose name matches `glob` (a comma-separated glob list;
  // see src/runner/glob.h), in registration order.
  std::vector<const Scenario*> Match(const std::string& glob) const;
  const std::vector<Scenario>& scenarios() const { return scenarios_; }
  size_t size() const { return scenarios_.size(); }

  // Test-only: drops all registrations.
  void Clear() { scenarios_.clear(); }

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_REGISTRY_H_
