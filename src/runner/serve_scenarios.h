// Registration of the inference-serving scenarios.
//
// Three scenario families over the serving subsystem (src/serve):
//   serve_only_*           — inference alone at a sweep of offered loads
//   serve_corun_baseline_* — inference + in-order (conventional) training
//   serve_corun_ooo_*      — inference + ooo-backprop training
// The corun pairs share model, arrival trace and batcher configuration, so
// comparing their golden files isolates the scheduling effect: ooo-backprop
// demotes weight-gradient kernels below the inference stream's priority and
// the serving tail (p99) tightens at near-equal training throughput.

#ifndef OOBP_SRC_RUNNER_SERVE_SCENARIOS_H_
#define OOBP_SRC_RUNNER_SERVE_SCENARIOS_H_

namespace oobp {

// Registers all serving scenarios (label "serve") into
// ScenarioRegistry::Global(); idempotent.
void RegisterServeScenarios();

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_SERVE_SCENARIOS_H_
