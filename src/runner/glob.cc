#include "src/runner/glob.h"

#include <fnmatch.h>

namespace oobp {

bool GlobMatch(const std::string& pattern, const std::string& text) {
  return fnmatch(pattern.c_str(), text.c_str(), 0) == 0;
}

std::vector<std::string> SplitGlobList(const std::string& patterns) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= patterns.size()) {
    size_t comma = patterns.find(',', start);
    if (comma == std::string::npos) {
      comma = patterns.size();
    }
    if (comma > start) {
      out.push_back(patterns.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return out;
}

bool MatchAnyGlob(const std::string& patterns, const std::string& text) {
  for (const std::string& pattern : SplitGlobList(patterns)) {
    if (GlobMatch(pattern, text)) {
      return true;
    }
  }
  return false;
}

}  // namespace oobp
