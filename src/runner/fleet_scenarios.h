// Registration of the fleet-scale serving scenarios.
//
// Two scenario families over the fleet engine (src/serve/fleet_engine.h):
//   fleet_{rr,ll,p2c}_{4,16,64} — serve-only autoscaled fleets under a
//       diurnal load envelope, one scenario per routing policy x fleet size
//   fleet_corun_{baseline,ooo}_64 — a pinned 64-replica fleet where every
//       GPU co-runs ResNet-50 training, measured at a load point and at
//       double that load. The pair shares arrival traces, so comparing the
//       two golden files isolates the paper's serving-side claim at cluster
//       scale: with ooo-backprop demoting weight-gradient kernels, the
//       fleet-wide p99 stays flat as load doubles while the in-order
//       baseline's tail degrades.

#ifndef OOBP_SRC_RUNNER_FLEET_SCENARIOS_H_
#define OOBP_SRC_RUNNER_FLEET_SCENARIOS_H_

namespace oobp {

// Registers all fleet scenarios (label "fleet") into
// ScenarioRegistry::Global(); idempotent.
void RegisterFleetScenarios();

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_FLEET_SCENARIOS_H_
