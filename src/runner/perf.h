// Wall-clock performance harness for the simulator core.
//
// `oobp bench --perf` (also tools/perf.sh) runs the selected scenarios with
// warm-up iterations followed by timed repeats, all serially on one thread so
// the numbers are not polluted by co-scheduling, and emits
// `BENCH_sim_perf.json`:
//
//   {
//     "warmup": 1,
//     "repeats": 3,
//     "scenarios": {
//       "fig07_resnet50": {
//         "wall_ms_best": ...,     // fastest repeat (headline number)
//         "wall_ms_mean": ...,
//         "events": ...,           // simulator events processed per run
//         "events_per_sec": ...    // events / best wall time
//       }, ...
//     },
//     "total": { "wall_ms_best": ..., "events": ..., "events_per_sec": ... }
//   }
//
// Event counts come from SimEngine::TotalProcessedEvents() deltas; they are
// deterministic per scenario, so events/sec is comparable across machines of
// the same class and across commits — this file seeds the repo's perf
// trajectory (see DESIGN.md §6). Wall-clock fields are intentionally NOT
// golden-gated: only the simulation *results* (BENCH_<scenario>.json) must be
// byte-identical across commits.

#ifndef OOBP_SRC_RUNNER_PERF_H_
#define OOBP_SRC_RUNNER_PERF_H_

#include <string>

#include "src/runner/registry.h"

namespace oobp {

struct PerfOptions {
  std::string filter = "fig07_*";  // hot single-GPU scenarios by default
  int warmup = 1;                  // untimed runs per scenario
  int repeats = 3;                 // timed runs per scenario
  std::string output_dir = ".";    // BENCH_sim_perf.json lands here
  ScenarioParams params;           // forwarded to every scenario
  bool print = true;
};

// Runs the harness; returns a process exit code (0 = every scenario ran and
// the JSON file was written).
int RunPerf(const PerfOptions& opts);

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_PERF_H_
