// Wall-clock performance harness for the simulator core.
//
// `oobp bench --perf` (also tools/perf.sh) runs the selected scenarios with
// warm-up iterations followed by timed repeats, all serially on one thread so
// the numbers are not polluted by co-scheduling, and emits
// `BENCH_sim_perf.json`:
//
//   {
//     "warmup": 1,
//     "repeats": 3,
//     "scenarios": {
//       "fig07_resnet50": {
//         "wall_ms_best": ...,     // fastest repeat (headline number)
//         "wall_ms_mean": ...,
//         "events": ...,           // simulator events processed per run
//         "events_per_sec": ...    // events / best wall time
//       }, ...
//     },
//     "total": { "wall_ms_best": ..., "events": ..., "events_per_sec": ... }
//   }
//
// Event counts come from SimEngine::TotalProcessedEvents() deltas; they are
// deterministic per scenario, so events/sec is comparable across machines of
// the same class and across commits — this file seeds the repo's perf
// trajectory (see DESIGN.md §6/§9). Wall-clock fields are intentionally NOT
// golden-gated: only the simulation *results* (BENCH_<scenario>.json) must be
// byte-identical across commits.
//
// `--check` adds the perf regression gate: measured per-scenario event
// counts are compared against the committed bench/perf_baseline.json. Event
// counts are exact and machine-independent, so an INCREASE over the baseline
// hard-fails (someone made every simulation do more work — e.g. broke the
// steady-state replay); a decrease is an improvement and only prompts a
// baseline re-seed. Wall-clock bands are informational and only evaluated on
// Release builds (sanitizer builds are arbitrarily slower).

#ifndef OOBP_SRC_RUNNER_PERF_H_
#define OOBP_SRC_RUNNER_PERF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runner/registry.h"

namespace oobp {

struct PerfOptions {
  // Default perf suite: the single-GPU figure-7 scenarios plus the
  // data-parallel, pipeline-scaling, serving, steady-state, fleet and
  // cluster families — every simulation path whose throughput the repo
  // tracks. The fleet/cluster scenarios honour --sim-threads, so the same
  // suite measures the sharded coordinator at any worker count against the
  // same event-count baseline (counts are thread-invariant by design).
  // search_eval_perf tracks the analytic schedule evaluator (src/search):
  // its throughput is measured in analytic evaluations/sec rather than
  // simulator events/sec and gated by the baseline's floor entry.
  std::string filter =
      "fig07_*,fig10_*,fig13_*,serve_*,steady_*,fleet_rr_64,"
      "fleet_corun_ooo_64,cluster_ps_*,search_eval_perf";
  int warmup = 1;                  // untimed runs per scenario
  int repeats = 3;                 // timed runs per scenario
  std::string output_dir = ".";    // BENCH_sim_perf.json lands here
  ScenarioParams params;           // forwarded to every scenario
  bool print = true;
  // Perf regression gate: compare against `baseline_path` and fail on
  // event-count inflation (`oobp bench --perf --check`).
  bool check = false;
  std::string baseline_path = "bench/perf_baseline.json";
};

// One measured scenario, as fed to the baseline gate.
struct PerfSample {
  std::string scenario;
  uint64_t events = 0;      // deterministic event count of a single run
  double wall_ms_best = 0;  // fastest timed repeat
  // Analytic schedule evaluations (FastScheduleEvaluator) of a single run;
  // 0 for scenarios that never touch the search's fast path.
  uint64_t analytic_evals = 0;
  double analytic_per_sec = 0;  // analytic_evals / best wall time
};

// Outcome of a baseline comparison. `failures` break the build (exit 1);
// `notices` are printed but do not affect the exit code.
struct PerfCheckReport {
  std::vector<std::string> failures;
  std::vector<std::string> notices;
  bool ok() const { return failures.empty(); }
};

// Compares measured samples against a baseline document (the content of
// bench/perf_baseline.json):
//
//   {
//     "wall_band_frac": 0.5,
//     "scenarios": { "fig07_resnet50": {"events": N, "wall_ms_best": X}, ... }
//   }
//
// Hard failures: unparsable baseline; measured events above the baseline
// count; measured analytic_evals differing from a baseline "analytic_evals"
// entry (the count is bit-deterministic, so any drift means the search
// explored different candidates); and — only when `wall_bands`, i.e. on
// Release builds — analytic throughput below the baseline's
// "analytic_per_sec_floor" (the ISSUE-10 evals/sec floor; wall-clock
// dependent, so sanitizer builds skip it). Notices: measured events below
// baseline (improvement — re-seed the baseline), scenarios missing on
// either side, and (only when `wall_bands`) wall time above
// baseline * (1 + wall_band_frac). Exposed separately from RunPerf so the
// gate's policy is unit-testable without timing anything.
PerfCheckReport CheckPerfBaseline(const std::string& baseline_json,
                                  const std::vector<PerfSample>& measured,
                                  bool wall_bands);

// Runs the harness; returns a process exit code (0 = every scenario ran,
// the JSON file was written, and — with `check` — the baseline gate passed).
int RunPerf(const PerfOptions& opts);

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_PERF_H_
