// Registration of the scheduler-optimality scenarios (label "search"):
// for representative (model, GPU) points of the fig07/fig10/fig13 sweeps,
// run the search-based scheduler baseline (src/search) against
// MakeOooSchedule and the in-order schedule, and report the heuristic's
// optimality gap as golden-pinned metrics. Every schedule — heuristic and
// searched — is fed through CheckIterationSchedule; a violation aborts the
// scenario (machine-verified schedules, DESIGN.md §13).

#ifndef OOBP_SRC_RUNNER_SEARCH_SCENARIOS_H_
#define OOBP_SRC_RUNNER_SEARCH_SCENARIOS_H_

namespace oobp {

// Registers search_gap_{fig07,fig10,fig13} into ScenarioRegistry::Global();
// idempotent (safe from multiple entry points).
void RegisterSearchScenarios();

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_SEARCH_SCENARIOS_H_
