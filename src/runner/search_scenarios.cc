#include "src/runner/search_scenarios.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/common/time.h"
#include "src/core/schedule.h"
#include "src/nn/model_cache.h"
#include "src/nn/model_zoo.h"
#include "src/runner/registry.h"
#include "src/runner/sweep_scenarios.h"
#include "src/search/evaluator.h"
#include "src/search/search.h"
#include "src/store/snapshot.h"
#include "src/validate/schedule_checker.h"

namespace oobp {
namespace {

// One scheduling point: a cached model on a GPU from the paper's testbeds.
struct GapConfig {
  std::string name;  // metric prefix, e.g. "densenet121"
  std::shared_ptr<const NnModel> model;
  GpuSpec gpu;
};

// Runs the three schedulers — in-order, MakeOooSchedule, SearchSchedule —
// on every config and reports simulated iteration times plus the
// heuristic-vs-searched gap. All three are scored by the same
// ScheduleEvaluator, and the searched schedule always comes through the
// snapshot front door, so a snapshot hit reproduces the metrics
// byte-for-byte (the evaluator re-scores; evaluation counts are never
// reported).
ScenarioResult RunSearchGap(const std::vector<GapConfig>& configs,
                            const ScenarioParams& params) {
  SearchOptions options;
  options.beam = params.GetInt("beam", 4);
  options.seed = static_cast<uint64_t>(params.GetInt("seed", 1));
  options.budget = params.GetInt("budget", 400);
  const SystemProfile profile = SystemProfile::TensorFlowXla();

  ScenarioResult result;
  result.AddNote(StrFormat("search: beam=%d budget=%d seed=%d (portfolio "
                           "local search, DESIGN.md section 13)",
                           options.beam, options.budget,
                           static_cast<int>(options.seed)));
  double max_gap = 0.0;
  double sum_gap = 0.0;
  for (const GapConfig& config : configs) {
    const TrainGraph graph(config.model.get());
    ScheduleEvaluator eval(config.model.get(), config.gpu, profile);
    const TimeNs conventional_time =
        eval.IterationTime(ConventionalIteration(graph));

    const JointScheduleResult ooo =
        SnapshotOooSchedule(graph, config.gpu, profile);
    const ScheduleCheckReport ooo_check =
        CheckIterationSchedule(graph, ooo.schedule);
    OOBP_CHECK(ooo_check.ok())
        << config.name << " ooo schedule: " << ooo_check.ToString();
    const TimeNs ooo_time = eval.IterationTime(ooo.schedule);

    const JointScheduleResult searched =
        SnapshotSearchSchedule(graph, config.gpu, profile, options);
    const ScheduleCheckReport search_check =
        CheckIterationSchedule(graph, searched.schedule);
    OOBP_CHECK(search_check.ok())
        << config.name << " searched schedule: " << search_check.ToString();
    const TimeNs search_time = eval.IterationTime(searched.schedule);

    // The heuristic's optimality gap: how far MakeOooSchedule sits above
    // the searched best (negative when the budgeted search never caught
    // the heuristic). Measured, not asserted — the golden pins whatever
    // the search finds.
    const double gap = 100.0 *
                       (static_cast<double>(ooo_time) - search_time) /
                       static_cast<double>(search_time);
    result.Set(config.name + ".conventional_ms", ToMs(conventional_time));
    result.Set(config.name + ".ooo_ms", ToMs(ooo_time));
    result.Set(config.name + ".search_ms", ToMs(search_time));
    result.Set(config.name + ".speedup_ooo_over_conv",
               static_cast<double>(conventional_time) / ooo_time);
    result.Set(config.name + ".speedup_search_over_conv",
               static_cast<double>(conventional_time) / search_time);
    result.Set(config.name + ".gap_pct", gap);
    max_gap = std::max(max_gap, gap);
    sum_gap += gap;
  }
  result.Set("max_gap_pct", max_gap);
  result.Set("mean_gap_pct", sum_gap / static_cast<double>(configs.size()));
  return result;
}

ScenarioResult SearchGapFig07(const ScenarioParams& params) {
  // Cache keys follow the fig07/steady conventions so these points share
  // one zoo (and one snapshot) entry with the figure scenarios.
  const std::vector<GapConfig> configs = {
      {"densenet121",
       CachedModel("densenet:L121:k24:B32:I32",
                   [] { return DenseNet(121, 24, 32, 32); }),
       GpuSpec::V100()},
      {"mobilenet",
       CachedModel("mobilenet:a0.75:B32:I224",
                   [] { return MobileNetV3Large(0.75, 32, 224); }),
       GpuSpec::V100()},
      {"resnet50",
       CachedModel("resnet:L50:B32", [] { return ResNet(50, 32, 224); }),
       GpuSpec::V100()},
  };
  return RunSearchGap(configs, params);
}

ScenarioResult SearchGapFig10(const ScenarioParams& params) {
  // Single-GPU scheduling points on the Figure 10 clusters' hardware:
  // Priv-A trains on Titan XP, Priv-B on P100.
  const std::vector<GapConfig> configs = {
      {"resnet50_titanxp",
       CachedModel("resnet:L50:B64", [] { return ResNet(50, 64, 224); }),
       GpuSpec::TitanXp()},
      {"resnet101_p100",
       CachedModel("resnet:L101:B64", [] { return ResNet(101, 64, 224); }),
       GpuSpec::P100()},
  };
  return RunSearchGap(configs, params);
}

ScenarioResult SearchGapFig13(const ScenarioParams& params) {
  // Pre-training micro-batch points from the Figure 13 scaling sweeps
  // (sharded-head BERT/GPT-3 on the V100-based Pub-B cluster).
  const std::vector<GapConfig> configs = {
      {"bert12", Fig13ShardedBert(12, 32), GpuSpec::V100()},
      {"bert24", Fig13ShardedBert(24, 16), GpuSpec::V100()},
      {"gpt3m", Fig13ShardedGpt3(6), GpuSpec::V100()},
  };
  return RunSearchGap(configs, params);
}

}  // namespace

void RegisterSearchScenarios() {
  static std::once_flag once;
  std::call_once(once, [] {
    ScenarioRegistry& registry = ScenarioRegistry::Global();
    registry.Register(
        {"search_gap_fig07", "Figure 7",
         "scheduler-optimality gap: search vs MakeOooSchedule on the fig07 "
         "single-GPU models (V100)",
         SearchGapFig07, "search"});
    registry.Register(
        {"search_gap_fig10", "Figure 10",
         "scheduler-optimality gap on the fig10 cluster GPUs (Titan XP, "
         "P100)",
         SearchGapFig10, "search"});
    registry.Register(
        {"search_gap_fig13", "Figure 13",
         "scheduler-optimality gap on the fig13 pre-training models "
         "(sharded BERT/GPT-3, V100)",
         SearchGapFig13, "search"});
  });
}

}  // namespace oobp
