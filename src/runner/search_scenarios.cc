#include "src/runner/search_scenarios.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/str_util.h"
#include "src/common/time.h"
#include "src/core/schedule.h"
#include "src/nn/model_cache.h"
#include "src/nn/model_zoo.h"
#include "src/runner/registry.h"
#include "src/runner/sweep_scenarios.h"
#include "src/search/evaluator.h"
#include "src/search/fast_eval.h"
#include "src/search/search.h"
#include "src/store/snapshot.h"
#include "src/validate/schedule_checker.h"

namespace oobp {
namespace {

// One scheduling point: a cached model on a GPU from the paper's testbeds.
struct GapConfig {
  std::string name;  // metric prefix, e.g. "densenet121"
  std::shared_ptr<const NnModel> model;
  GpuSpec gpu;
};

// Search knobs shared by the search_* scenarios. `--sim-threads N` (or
// --param threads=N) parallelizes the trajectory portfolio; results are
// byte-identical at any value, so the thread count never appears in notes
// or metrics.
SearchOptions BaseOptions(const ScenarioParams& params) {
  SearchOptions options;
  options.beam = params.GetInt("beam", 4);
  options.seed = static_cast<uint64_t>(params.GetInt("seed", 1));
  options.budget = params.GetInt("budget", 400);
  options.threads =
      std::max(1, params.GetInt("threads", params.GetInt("sim_threads", 1)));
  return options;
}

// Runs the three schedulers — in-order, MakeOooSchedule, SearchSchedule —
// on every config and reports simulated iteration times plus the
// heuristic-vs-searched gap. All three are scored by the same
// ScheduleEvaluator, and the searched schedule always comes through the
// snapshot front door, so a snapshot hit reproduces the metrics
// byte-for-byte (the evaluator re-scores; evaluation counts are never
// reported).
ScenarioResult RunSearchGap(const std::vector<GapConfig>& configs,
                            const ScenarioParams& params) {
  const SearchOptions options = BaseOptions(params);
  const SystemProfile profile = SystemProfile::TensorFlowXla();

  ScenarioResult result;
  result.AddNote(StrFormat("search: beam=%d budget=%d seed=%d (portfolio "
                           "local search, DESIGN.md section 13)",
                           options.beam, options.budget,
                           static_cast<int>(options.seed)));
  double max_gap = 0.0;
  double sum_gap = 0.0;
  for (const GapConfig& config : configs) {
    const TrainGraph graph(config.model.get());
    ScheduleEvaluator eval(config.model.get(), config.gpu, profile);
    const TimeNs conventional_time =
        eval.IterationTime(ConventionalIteration(graph));

    const JointScheduleResult ooo =
        SnapshotOooSchedule(graph, config.gpu, profile);
    const ScheduleCheckReport ooo_check =
        CheckIterationSchedule(graph, ooo.schedule);
    OOBP_CHECK(ooo_check.ok())
        << config.name << " ooo schedule: " << ooo_check.ToString();
    const TimeNs ooo_time = eval.IterationTime(ooo.schedule);

    const JointScheduleResult searched =
        SnapshotSearchSchedule(graph, config.gpu, profile, options);
    const ScheduleCheckReport search_check =
        CheckIterationSchedule(graph, searched.schedule);
    OOBP_CHECK(search_check.ok())
        << config.name << " searched schedule: " << search_check.ToString();
    const TimeNs search_time = eval.IterationTime(searched.schedule);

    // The heuristic's optimality gap: how far MakeOooSchedule sits above
    // the searched best (negative when the budgeted search never caught
    // the heuristic). Measured, not asserted — the golden pins whatever
    // the search finds.
    const double gap = 100.0 *
                       (static_cast<double>(ooo_time) - search_time) /
                       static_cast<double>(search_time);
    result.Set(config.name + ".conventional_ms", ToMs(conventional_time));
    result.Set(config.name + ".ooo_ms", ToMs(ooo_time));
    result.Set(config.name + ".search_ms", ToMs(search_time));
    result.Set(config.name + ".speedup_ooo_over_conv",
               static_cast<double>(conventional_time) / ooo_time);
    result.Set(config.name + ".speedup_search_over_conv",
               static_cast<double>(conventional_time) / search_time);
    result.Set(config.name + ".gap_pct", gap);
    max_gap = std::max(max_gap, gap);
    sum_gap += gap;
  }
  result.Set("max_gap_pct", max_gap);
  result.Set("mean_gap_pct", sum_gap / static_cast<double>(configs.size()));
  return result;
}

// The deep-budget sweep: the two-tier pipeline (analytic Tier A, simulator
// Tier B) spends an order of magnitude more candidate evaluations inside
// the wall-clock envelope of the exact-mode scenarios, tightening the
// reported optimality gap. best_time is Tier-B simulator-scored inside the
// search; re-scoring through this scenario's own evaluator must reproduce
// it bit-for-bit, which the OOBP_CHECK pins on every run.
ScenarioResult RunSearchDeep(const std::vector<GapConfig>& configs,
                             const ScenarioParams& params) {
  SearchOptions options = BaseOptions(params);
  options.budget = params.GetInt("budget", 4000);
  options.eval_mode = SearchEvalMode::kTwoTier;
  options.audit_interval = params.GetInt("audit_interval", 256);
  const SystemProfile profile = SystemProfile::TensorFlowXla();

  ScenarioResult result;
  result.AddNote(StrFormat("two-tier search: beam=%d budget=%d seed=%d "
                           "audit=1/%d (analytic Tier A + simulator Tier B, "
                           "DESIGN.md section 14)",
                           options.beam, options.budget,
                           static_cast<int>(options.seed),
                           options.audit_interval));
  double max_gap = 0.0;
  double sum_gap = 0.0;
  double total_analytic = 0.0;
  double total_sim = 0.0;
  double total_hits = 0.0;
  double total_misses = 0.0;
  double total_audits = 0.0;
  double audit_max = 0.0;
  for (const GapConfig& config : configs) {
    const TrainGraph graph(config.model.get());
    ScheduleEvaluator eval(config.model.get(), config.gpu, profile);
    const TimeNs conventional_time =
        eval.IterationTime(ConventionalIteration(graph));

    const JointScheduleResult ooo =
        SnapshotOooSchedule(graph, config.gpu, profile);
    const TimeNs ooo_time = eval.IterationTime(ooo.schedule);

    const SearchResult searched =
        SearchSchedule(graph, config.gpu, profile, options);
    const ScheduleCheckReport check =
        CheckIterationSchedule(graph, searched.schedule);
    OOBP_CHECK(check.ok())
        << config.name << " searched schedule: " << check.ToString();
    const TimeNs search_time = eval.IterationTime(searched.schedule);
    // Tier-B contract: the search already scored its winner with the exact
    // simulator, so an independent evaluator must agree to the bit.
    OOBP_CHECK(search_time == searched.best_time)
        << config.name << ": two-tier best_time is not a simulator score";

    const double gap = 100.0 *
                       (static_cast<double>(ooo_time) - search_time) /
                       static_cast<double>(search_time);
    const SearchStats& stats = searched.stats;
    result.Set(config.name + ".conventional_ms", ToMs(conventional_time));
    result.Set(config.name + ".ooo_ms", ToMs(ooo_time));
    result.Set(config.name + ".search_ms", ToMs(search_time));
    result.Set(config.name + ".speedup_search_over_conv",
               static_cast<double>(conventional_time) / search_time);
    result.Set(config.name + ".gap_pct", gap);
    result.Set(config.name + ".analytic_evals",
               static_cast<double>(stats.analytic_evals));
    result.Set(config.name + ".sim_evals",
               static_cast<double>(stats.sim_evals));
    result.Set(config.name + ".cache_hits",
               static_cast<double>(stats.cache_hits));
    result.Set(config.name + ".audit_max_rel_err", stats.audit_max_rel_err);
    max_gap = std::max(max_gap, gap);
    sum_gap += gap;
    total_analytic += static_cast<double>(stats.analytic_evals);
    total_sim += static_cast<double>(stats.sim_evals);
    total_hits += static_cast<double>(stats.cache_hits);
    total_misses += static_cast<double>(stats.cache_misses);
    total_audits += static_cast<double>(stats.audit_samples);
    audit_max = std::max(audit_max, stats.audit_max_rel_err);
  }
  result.Set("max_gap_pct", max_gap);
  result.Set("mean_gap_pct", sum_gap / static_cast<double>(configs.size()));
  result.Set("analytic_evals", total_analytic);
  result.Set("sim_evals", total_sim);
  result.Set("cache_hits", total_hits);
  result.Set("cache_hit_rate",
             total_hits + total_misses > 0.0
                 ? total_hits / (total_hits + total_misses)
                 : 0.0);
  result.Set("audit_samples", total_audits);
  result.Set("audit_max_rel_err", audit_max);
  return result;
}

// Genotype sampler shared with the fast_eval fidelity tests: uniform slot
// within the dependency window, uniform stream.
Genotype RandomGenotype(const TrainGraph& graph, Rng& rng) {
  Genotype genotype;
  for (int layer = graph.num_layers() - 1; layer >= 0; --layer) {
    if (!graph.HasWgrad(layer)) continue;
    const int span = MaxSlot(graph, layer) - MinSlot(graph, layer) + 1;
    const int slot =
        MinSlot(graph, layer) +
        static_cast<int>(rng.NextBelow(static_cast<uint64_t>(span)));
    const int stream = rng.NextBelow(2) == 0 ? kMainStream : kSubStream;
    genotype.push_back({layer, slot, stream});
  }
  return genotype;
}

// Spearman rank correlation with average ranks for ties. The analytic
// evaluator replays the simulator's arithmetic exactly, so this is 1.0 by
// construction; the golden pins it so any future drift between the two
// implementations trips a gate, not just a slow search.
double SpearmanRankCorr(const std::vector<TimeNs>& a,
                        const std::vector<TimeNs>& b) {
  const size_t n = a.size();
  OOBP_CHECK_EQ(n, b.size());
  OOBP_CHECK_GE(n, 2u);
  const auto ranks = [n](const std::vector<TimeNs>& v) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&v](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> rank(n, 0.0);
    for (size_t i = 0; i < n;) {
      size_t j = i;
      while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
      const double avg = 0.5 * (static_cast<double>(i) +
                                static_cast<double>(j));
      for (size_t k = i; k <= j; ++k) rank[order[k]] = avg;
      i = j + 1;
    }
    return rank;
  };
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += ra[i];
    mean_b += rb[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cov += (ra[i] - mean_a) * (rb[i] - mean_b);
    var_a += (ra[i] - mean_a) * (ra[i] - mean_a);
    var_b += (rb[i] - mean_b) * (rb[i] - mean_b);
  }
  // A constant ranking (all candidates tie) correlates perfectly with
  // itself; both sides degenerate together or not at all here.
  if (var_a == 0.0 && var_b == 0.0) return 1.0;
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

// Analytic-vs-simulator fidelity over the gap zoo: conventional plus
// `candidates` random genotypes per config, each scored by both evaluators.
// Reported per config and in aggregate; EXPERIMENTS.md cites the aggregate
// row and the golden pins it.
ScenarioResult RunEvalFidelity(const std::vector<GapConfig>& configs,
                               const ScenarioParams& params) {
  const int candidates = params.GetInt("candidates", 24);
  const uint64_t seed = static_cast<uint64_t>(params.GetInt("seed", 7));
  const SystemProfile profile = SystemProfile::TensorFlowXla();

  ScenarioResult result;
  result.AddNote(StrFormat("fast-eval fidelity: %d random candidates + "
                           "conventional per config, rank correlation and "
                           "relative error vs the exact simulator",
                           candidates));
  double min_corr = 1.0;
  double err_sum = 0.0;
  double err_max = 0.0;
  double scored = 0.0;
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    const GapConfig& config = configs[ci];
    const TrainGraph graph(config.model.get());
    ScheduleEvaluator sim(config.model.get(), config.gpu, profile);
    FastScheduleEvaluator fast(config.model.get(), config.gpu, profile);
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + ci);
    std::vector<TimeNs> fast_times;
    std::vector<TimeNs> sim_times;
    double config_err_sum = 0.0;
    double config_err_max = 0.0;
    for (int k = 0; k <= candidates; ++k) {
      const IterationSchedule schedule =
          k == 0 ? ConventionalIteration(graph)
                 : DecodeGenotype(graph, RandomGenotype(graph, rng));
      const TimeNs f = fast.IterationTime(schedule);
      const TimeNs s = sim.IterationTime(schedule);
      fast_times.push_back(f);
      sim_times.push_back(s);
      const double err =
          s > 0 ? std::abs(static_cast<double>(f) - static_cast<double>(s)) /
                      static_cast<double>(s)
                : (f == s ? 0.0 : 1.0);
      config_err_sum += err;
      config_err_max = std::max(config_err_max, err);
    }
    const double corr = SpearmanRankCorr(fast_times, sim_times);
    result.Set(config.name + ".rank_corr", corr);
    result.Set(config.name + ".mean_rel_err",
               config_err_sum / static_cast<double>(candidates + 1));
    result.Set(config.name + ".max_rel_err", config_err_max);
    min_corr = std::min(min_corr, corr);
    err_sum += config_err_sum;
    err_max = std::max(err_max, config_err_max);
    scored += static_cast<double>(candidates + 1);
  }
  result.Set("min_rank_corr", min_corr);
  result.Set("mean_rel_err", err_sum / scored);
  result.Set("max_rel_err", err_max);
  result.Set("candidates_scored", scored);
  return result;
}

std::vector<GapConfig> Fig07Configs() {
  // Cache keys follow the fig07/steady conventions so these points share
  // one zoo (and one snapshot) entry with the figure scenarios.
  return {
      {"densenet121",
       CachedModel("densenet:L121:k24:B32:I32",
                   [] { return DenseNet(121, 24, 32, 32); }),
       GpuSpec::V100()},
      {"mobilenet",
       CachedModel("mobilenet:a0.75:B32:I224",
                   [] { return MobileNetV3Large(0.75, 32, 224); }),
       GpuSpec::V100()},
      {"resnet50",
       CachedModel("resnet:L50:B32", [] { return ResNet(50, 32, 224); }),
       GpuSpec::V100()},
  };
}

std::vector<GapConfig> Fig10Configs() {
  // Single-GPU scheduling points on the Figure 10 clusters' hardware:
  // Priv-A trains on Titan XP, Priv-B on P100.
  return {
      {"resnet50_titanxp",
       CachedModel("resnet:L50:B64", [] { return ResNet(50, 64, 224); }),
       GpuSpec::TitanXp()},
      {"resnet101_p100",
       CachedModel("resnet:L101:B64", [] { return ResNet(101, 64, 224); }),
       GpuSpec::P100()},
  };
}

std::vector<GapConfig> Fig13Configs() {
  // Pre-training micro-batch points from the Figure 13 scaling sweeps
  // (sharded-head BERT/GPT-3 on the V100-based Pub-B cluster).
  return {
      {"bert12", Fig13ShardedBert(12, 32), GpuSpec::V100()},
      {"bert24", Fig13ShardedBert(24, 16), GpuSpec::V100()},
      {"gpt3m", Fig13ShardedGpt3(6), GpuSpec::V100()},
  };
}

ScenarioResult SearchGapFig07(const ScenarioParams& params) {
  return RunSearchGap(Fig07Configs(), params);
}

ScenarioResult SearchGapFig10(const ScenarioParams& params) {
  return RunSearchGap(Fig10Configs(), params);
}

ScenarioResult SearchGapFig13(const ScenarioParams& params) {
  return RunSearchGap(Fig13Configs(), params);
}

ScenarioResult SearchDeepFig07(const ScenarioParams& params) {
  return RunSearchDeep(Fig07Configs(), params);
}

ScenarioResult SearchEvalFidelity(const ScenarioParams& params) {
  std::vector<GapConfig> configs = Fig07Configs();
  for (std::vector<GapConfig> (*family)() : {&Fig10Configs, &Fig13Configs}) {
    std::vector<GapConfig> extra = family();
    std::move(extra.begin(), extra.end(), std::back_inserter(configs));
  }
  return RunEvalFidelity(configs, params);
}

// Perf smoke for the analytic pipeline: one deep two-tier search on the
// fig07 headline model. The perf harness (`oobp bench --perf`) measures
// FastScheduleEvaluator throughput around this scenario and gates it
// against the analytic-evals count and evals/sec floor in
// bench/perf_baseline.json.
ScenarioResult SearchEvalPerf(const ScenarioParams& params) {
  SearchOptions options = BaseOptions(params);
  options.beam = params.GetInt("beam", 2);
  options.budget = params.GetInt("budget", 2000);
  options.eval_mode = SearchEvalMode::kTwoTier;
  options.audit_interval = params.GetInt("audit_interval", 0);
  const SystemProfile profile = SystemProfile::TensorFlowXla();
  const std::shared_ptr<const NnModel> model =
      CachedModel("densenet:L121:k24:B32:I32",
                  [] { return DenseNet(121, 24, 32, 32); });
  const TrainGraph graph(model.get());
  const SearchResult searched =
      SearchSchedule(graph, GpuSpec::V100(), profile, options);
  ScenarioResult result;
  result.AddNote(StrFormat("analytic-evaluator perf smoke: two-tier search, "
                           "beam=%d budget=%d on densenet121/V100",
                           options.beam, options.budget));
  result.Set("analytic_evals",
             static_cast<double>(searched.stats.analytic_evals));
  result.Set("sim_evals", static_cast<double>(searched.stats.sim_evals));
  result.Set("cache_hits", static_cast<double>(searched.stats.cache_hits));
  result.Set("search_ms", ToMs(searched.best_time));
  result.Set("conventional_ms", ToMs(searched.conventional_time));
  return result;
}

}  // namespace

void RegisterSearchScenarios() {
  static std::once_flag once;
  std::call_once(once, [] {
    ScenarioRegistry& registry = ScenarioRegistry::Global();
    registry.Register(
        {"search_gap_fig07", "Figure 7",
         "scheduler-optimality gap: search vs MakeOooSchedule on the fig07 "
         "single-GPU models (V100)",
         SearchGapFig07, "search"});
    registry.Register(
        {"search_gap_fig10", "Figure 10",
         "scheduler-optimality gap on the fig10 cluster GPUs (Titan XP, "
         "P100)",
         SearchGapFig10, "search"});
    registry.Register(
        {"search_gap_fig13", "Figure 13",
         "scheduler-optimality gap on the fig13 pre-training models "
         "(sharded BERT/GPT-3, V100)",
         SearchGapFig13, "search"});
    registry.Register(
        {"search_deep_fig07", "Figure 7",
         "deep-budget two-tier search (analytic Tier A + simulator Tier B) "
         "on the fig07 models: tightened optimality gap + pipeline stats",
         SearchDeepFig07, "search"});
    registry.Register(
        {"search_eval_fidelity", "Figure 7",
         "analytic-vs-simulator fidelity over the gap zoo: rank correlation "
         "and relative error of the fast schedule evaluator",
         SearchEvalFidelity, "search"});
    registry.Register(
        {"search_eval_perf", "Figure 7",
         "analytic-evaluator perf smoke: deep two-tier search on "
         "densenet121, gated by the perf baseline's evals/sec floor",
         SearchEvalPerf, "search"});
  });
}

}  // namespace oobp
