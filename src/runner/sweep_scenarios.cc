#include "src/runner/sweep_scenarios.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/str_util.h"
#include "src/core/corun_profiler.h"
#include "src/core/joint_scheduler.h"
#include "src/core/k_search.h"
#include "src/core/region.h"
#include "src/core/reverse_k.h"
#include "src/core/schedule.h"
#include "src/nn/model_cache.h"
#include "src/nn/model_zoo.h"
#include "src/runner/registry.h"
#include "src/runtime/data_parallel_engine.h"
#include "src/runtime/pipeline_engine.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/store/snapshot.h"

namespace oobp {
namespace {

// ---------------------------------------------------------------------------
// Figure 13 (a/b): pipeline-parallel scaling on the Pub-B cluster. Shared
// helpers mirror bench/fig13_scaling.cc, which is now a thin wrapper.

PipelineEngine MakePubBEngine(int gpus, int micro_batches) {
  PipelineConfig config;
  config.cluster = ClusterSpec::PubB(5);
  config.num_gpus = gpus;
  config.num_micro_batches = micro_batches;
  return PipelineEngine(config);
}

// Pre-training runs shard the input/output embedding GEMMs across a
// tensor-parallel group (Megatron-style; the paper dedicates 4 GPUs to
// GPT-3's embedding). Model that by quartering the head layer's cost —
// applied to every system equally.
NnModel WithShardedHead(NnModel model) {
  Layer& head = model.layers.back();
  head.fwd_flops /= 4;
  head.dgrad_flops /= 4;
  head.wgrad_flops /= 4;
  head.fwd_bytes /= 4;
  head.dgrad_bytes /= 4;
  head.wgrad_bytes /= 4;
  head.fwd_blocks /= 4;
  head.stash_bytes /= 4;
  return model;
}

// BERT with a sharded head, memoized: a scaling sweep evaluates the same
// (layers, micro-batch) point once per strategy and the perf suite repeats
// the whole scenario, so the layer table is built once process-wide.
std::shared_ptr<const NnModel> ShardedBert(int layers, int micro_batch) {
  return CachedModel(
      StrFormat("sharded-bert:L%d:B%d", layers, micro_batch),
      [layers, micro_batch] {
        return WithShardedHead(Bert(layers, micro_batch));
      });
}

ScenarioResult Fig13WeakScaling(const ScenarioParams&) {
  ScenarioResult result;
  result.AddNote("weak scaling: BERT-{12,24,48} on 8/16/32 V100 (Pub-B)");
  struct WeakPoint {
    int gpus;
    int bert;
    int global_batch;
  };
  const std::vector<WeakPoint> weak = {{8, 12, 512}, {16, 24, 768},
                                       {32, 48, 1024}};
  for (const WeakPoint& p : weak) {
    const int micro_batches = p.gpus;
    const std::shared_ptr<const NnModel> micro =
        ShardedBert(p.bert, std::max(1, p.global_batch / micro_batches));
    const PipelineEngine engine = MakePubBEngine(p.gpus, micro_batches);
    const double gpipe =
        engine.Run(*micro, PipelineStrategy::kGPipe).metrics.throughput;
    const PipelineResult pd = engine.Run(*micro, PipelineStrategy::kPipeDream);
    const double ooo =
        engine.Run(*micro, PipelineStrategy::kOooPipe2).metrics.throughput;
    const std::string prefix = StrFormat("g%d.", p.gpus);
    result.Set(prefix + "gpipe_throughput", gpipe);
    result.Set(prefix + "pipedream_throughput", pd.metrics.throughput);
    result.Set(prefix + "pipedream_weight_versions", pd.weight_versions);
    result.Set(prefix + "ooo_throughput", ooo);
    result.Set(prefix + "ooo_over_gpipe", ooo / gpipe);
    result.Set(prefix + "ooo_over_pd", ooo / pd.metrics.throughput);
  }
  return result;
}

ScenarioResult Fig13StrongBert(const ScenarioParams&) {
  ScenarioResult result;
  result.AddNote("strong scaling: BERT-24/48, OOO-Pipe2, 8-32 V100 (Pub-B)");
  for (const int bert : {24, 48}) {
    double tp8 = 0.0;
    for (const int gpus : {8, 16, 32}) {
      if (gpus > bert) {
        continue;  // more GPUs than transformer layers
      }
      const int micro_batches = 2 * gpus;
      const std::shared_ptr<const NnModel> micro =
          ShardedBert(bert, std::max(1, 512 / micro_batches));
      const double tp = MakePubBEngine(gpus, micro_batches)
                            .Run(*micro, PipelineStrategy::kOooPipe2)
                            .metrics.throughput;
      result.Set(StrFormat("b%d.g%d.throughput", bert, gpus), tp);
      if (gpus == 8) {
        tp8 = tp;
      } else if (tp8 > 0) {
        result.Set(StrFormat("b%d.scaling_8_to_%d", bert, gpus), tp / tp8);
      }
    }
  }
  return result;
}

ScenarioResult Fig13StrongGpt3(const ScenarioParams&) {
  ScenarioResult result;
  result.AddNote("strong scaling: GPT-3 Medium (sharded head), OOO-Pipe2");
  // 26 pipeline layers (embed + 24 decoders + head) bound the stage count.
  for (const int gpus : {8, 12, 16, 24}) {
    const int micro_batches = 2 * gpus;
    const int micro_batch = std::max(1, 96 / micro_batches);
    const std::shared_ptr<const NnModel> micro = CachedModel(
        StrFormat("sharded-gpt3m:B%d", micro_batch),
        [micro_batch] { return WithShardedHead(Gpt3Medium(micro_batch)); });
    const double tp = MakePubBEngine(gpus, micro_batches)
                          .Run(*micro, PipelineStrategy::kOooPipe2)
                          .metrics.throughput;
    result.Set(StrFormat("g%d.throughput", gpus), tp);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Section 8.4.2: Megatron-2 interleaved schedule vs OOO-Pipe2, BERT-48.

ScenarioResult AnaMegatron(const ScenarioParams&) {
  ScenarioResult result;
  result.AddNote("Megatron-2 interleaved vs OOO-Pipe2, BERT-48 (Pub-B)");
  std::vector<double> ff_gains, ooo_vs_mega;
  for (const int gpus : {8, 16, 24}) {
    const int micro_batches = gpus;
    const std::shared_ptr<const NnModel> micro =
        ShardedBert(48, std::max(1, 512 / micro_batches));
    const PipelineEngine engine = MakePubBEngine(gpus, micro_batches);
    const double gpipe =
        engine.Run(*micro, PipelineStrategy::kGPipe).metrics.throughput;
    const double mega =
        engine.Run(*micro, PipelineStrategy::kMegatron).metrics.throughput;
    const double mega_ff =
        engine.Run(*micro, PipelineStrategy::kMegatronFF).metrics.throughput;
    const double ooo =
        engine.Run(*micro, PipelineStrategy::kOooPipe2).metrics.throughput;
    const std::string p = StrFormat("g%d.", gpus);
    result.Set(p + "gpipe_throughput", gpipe);
    result.Set(p + "megatron_throughput", mega);
    result.Set(p + "megatron_ff_throughput", mega_ff);
    result.Set(p + "ooo_throughput", ooo);
    result.Set(p + "ooo_over_megatron", ooo / mega);
    result.Set(p + "ff_gain", mega_ff / mega);
    ff_gains.push_back(mega_ff / mega);
    ooo_vs_mega.push_back(ooo / mega);
  }
  double ff_avg = 0.0, ooo_max = 0.0;
  for (size_t i = 0; i < ff_gains.size(); ++i) {
    ff_avg += ff_gains[i] / ff_gains.size();
    ooo_max = std::max(ooo_max, ooo_vs_mega[i]);
  }
  result.Set("ff_gain_avg", ff_avg);
  result.Set("ooo_over_megatron_max", ooo_max);
  return result;
}

// Note: bench/ana_megatron.cc historically did NOT quarter fwd_blocks when
// sharding the head, while fig13 did. The registry scenario uses the fig13
// variant (WithShardedHead) for both so the cached model can be shared; the
// occupancy of one GEMM head has no measurable effect on these ratios.

// ---------------------------------------------------------------------------
// Section 8.3: reverse first-k on ResNet-50 over Pub-A data parallelism.

ScenarioResult AnaReverseK(const ScenarioParams&) {
  ScenarioResult result;
  result.AddNote("reverse first-k, ResNet-50 batch 128, 16/32x V100 (Pub-A)");
  const std::shared_ptr<const NnModel> model =
      CachedModel("resnet:L50:B128", [] { return ResNet(50, 128); });
  const TrainGraph graph(model.get());

  DataParallelConfig config;
  config.cluster = ClusterSpec::PubA();
  config.num_gpus = 16;
  const DataParallelEngine engine(config);

  int64_t total_volume = 0;
  for (int l = 0; l < model->num_layers(); ++l) {
    total_volume += engine.SyncVolume(*model, l);
  }
  result.Set("total_sync_mb", static_cast<double>(total_volume) / 1e6);
  result.Set("channel_gbps", engine.ChannelBandwidthGbps());

  const TrainMetrics base = engine.Run(*model, graph.ConventionalBackprop());
  result.SetMetrics("byteps.", base);

  for (int k : {0, 10, 20, 30, 45, 53}) {
    const ReverseFirstKResult rk = ReverseFirstK(graph, k);
    const TrainMetrics m = engine.Run(*model, rk.order);
    result.Set(StrFormat("k%d.gain", rk.effective_k),
               m.throughput / base.throughput);
  }

  const KSearchResult search = SearchBestK(model->num_layers(), [&](int k) {
    return engine.Run(*model, ReverseFirstK(graph, k).order).throughput;
  });
  const TrainMetrics best =
      engine.Run(*model, ReverseFirstK(graph, search.best_k).order);
  result.Set("g16.best_k", search.best_k);
  result.Set("g16.probes", static_cast<double>(search.evaluations.size()));
  result.Set("g16.gain", best.throughput / base.throughput);

  DataParallelConfig config32 = config;
  config32.num_gpus = 32;
  const DataParallelEngine engine32(config32);
  const TrainMetrics base32 =
      engine32.Run(*model, graph.ConventionalBackprop());
  const KSearchResult search32 = SearchBestK(model->num_layers(), [&](int k) {
    return engine32.Run(*model, ReverseFirstK(graph, k).order).throughput;
  });
  result.Set("g32.best_k", search32.best_k);
  result.Set("g32.gain", search32.best_throughput / base32.throughput);
  return result;
}

// ---------------------------------------------------------------------------
// Section 8.2: per-region co-run capacity for DenseNet-121 on the V100.

ScenarioResult AnaCorun(const ScenarioParams&) {
  ScenarioResult result;
  result.AddNote("per-region co-run capacity, DenseNet-121(k32) on V100");
  const std::shared_ptr<const NnModel> model = CachedModel(
      "densenet:L121:k32:B32:I224", [] { return DenseNet(121, 32, 32, 224); });
  const TrainGraph graph(model.get());
  const GpuSpec gpu = GpuSpec::V100();
  const std::shared_ptr<const CostModel> cost =
      CachedCostModel(gpu, SystemProfile::TensorFlowXla());
  const CorunProfiler profiler(graph, *cost, BuildRegions(graph));
  const double capacity = gpu.slot_capacity();

  double best_low_occ = 0.0;   // regions with free slots
  double best_high_occ = 0.0;  // saturated regions
  for (int r = 0; r < profiler.num_regions(); ++r) {
    const Region& region = profiler.region(r);
    double occ_sum = 0.0;
    for (const TrainOp& op : region.main_ops) {
      const KernelCost kc = cost->Cost(model->layers[op.layer], op.type);
      occ_sum += EffectiveOccupancy(kc.thread_blocks, capacity) / capacity;
    }
    const double avg_occ = occ_sum / region.main_ops.size();

    double best = 1.0;
    for (int l = 0; l < model->num_layers(); ++l) {
      if (!graph.HasWgrad(l)) {
        continue;
      }
      best = std::max(
          best, profiler.SpeedupAt(r, {TrainOpType::kWeightGrad, l}, 0));
    }
    const std::string p = StrFormat("r%d.", r);
    result.Set(p + "main_ms", ToMs(profiler.MainDuration(r)));
    result.Set(p + "avg_occupancy", avg_occ);
    result.Set(p + "best_speedup", best);
    if (avg_occ > 0.9) {
      best_high_occ = std::max(best_high_occ, best);
    } else {
      best_low_occ = std::max(best_low_occ, best);
    }
  }
  result.Set("best_low_occ_speedup", best_low_occ);
  result.Set("best_high_occ_speedup", best_high_occ);
  return result;
}

// ---------------------------------------------------------------------------
// Steady-state scenarios: long training runs whose event timelines become
// iteration-periodic, exercising the replay fast path end to end. Their
// goldens pin `replayed == 1` alongside the metrics, so a regression that
// silently disables replay (or one that changes any extrapolated value)
// fails the golden gate.

ScenarioResult SteadySingleGpu(const ScenarioParams& params,
                               const std::shared_ptr<const NnModel>& model) {
  ScenarioResult result;
  const int measured = params.GetInt("measured_iterations", 24);
  result.AddNote(StrFormat("%s on V100, %d measured iterations",
                           model->name.c_str(), measured));
  const TrainGraph graph(model.get());
  const GpuSpec gpu = GpuSpec::V100();
  const SystemProfile xla = SystemProfile::TensorFlowXla();

  SingleGpuConfig config;
  config.gpu = gpu;
  config.profile = xla;
  config.precompiled_issue = true;
  config.measured_iterations = measured;

  ReplayStats conv_stats;
  const TrainMetrics conv = SingleGpuEngine(config).Run(
      *model, ConventionalIteration(graph), nullptr, &conv_stats);
  result.SetMetrics("conv.", conv);
  result.Set("conv.replayed", conv_stats.replayed ? 1 : 0);
  result.Set("conv.simulated_iterations", conv_stats.simulated_iterations);

  const JointScheduleResult sched = SnapshotOooSchedule(graph, gpu, xla);
  ReplayStats ooo_stats;
  const TrainMetrics ooo = SingleGpuEngine(config).Run(
      *model, sched.schedule, nullptr, &ooo_stats);
  result.SetMetrics("ooo.", ooo);
  result.Set("ooo.replayed", ooo_stats.replayed ? 1 : 0);
  result.Set("ooo.simulated_iterations", ooo_stats.simulated_iterations);
  result.Set("ooo_over_conv", ooo.throughput / conv.throughput);
  return result;
}

ScenarioResult SteadyResnet50(const ScenarioParams& params) {
  return SteadySingleGpu(
      params, CachedModel("resnet:L50:B32", [] { return ResNet(50, 32); }));
}

ScenarioResult SteadyDensenet121(const ScenarioParams& params) {
  return SteadySingleGpu(params,
                         CachedModel("densenet:L121:k24:B32:I32", [] {
                           return DenseNet(121, 24, 32, 32);
                         }));
}

ScenarioResult SteadyPipedreamBert12(const ScenarioParams& params) {
  ScenarioResult result;
  const int measured = params.GetInt("measured_iterations", 16);
  result.AddNote(StrFormat(
      "BERT-12 PipeDream on 4x V100 (Pub-B), %d measured iterations",
      measured));
  const std::shared_ptr<const NnModel> micro = ShardedBert(12, 8);

  PipelineConfig config;
  config.cluster = ClusterSpec::PubB(5);
  config.num_gpus = 4;
  config.num_micro_batches = 4;
  config.measured_iterations = measured;

  ReplayStats stats;
  const PipelineResult pd = PipelineEngine(config).Run(
      *micro, PipelineStrategy::kPipeDream, nullptr, &stats);
  result.SetMetrics("pd.", pd.metrics);
  result.Set("pd.replayed", stats.replayed ? 1 : 0);
  result.Set("pd.simulated_iterations", stats.simulated_iterations);
  result.Set("pd.weight_versions", pd.weight_versions);
  return result;
}

void RegisterSweep(ScenarioRegistry& reg, Scenario scenario) {
  scenario.label = "sweep";
  reg.Register(std::move(scenario));
}

void RegisterSteady(ScenarioRegistry& reg, Scenario scenario) {
  scenario.label = "steady";
  reg.Register(std::move(scenario));
}

}  // namespace

std::shared_ptr<const NnModel> Fig13ShardedBert(int layers, int micro_batch) {
  return ShardedBert(layers, micro_batch);
}

std::shared_ptr<const NnModel> Fig13ShardedGpt3(int micro_batch) {
  return CachedModel(
      StrFormat("sharded-gpt3m:B%d", micro_batch),
      [micro_batch] { return WithShardedHead(Gpt3Medium(micro_batch)); });
}

void RegisterSweepScenarios() {
  static std::once_flag once;
  std::call_once(once, [] {
    ScenarioRegistry& reg = ScenarioRegistry::Global();
    RegisterSweep(reg, {"fig13_weak_scaling", "Figure 13a",
                        "weak scaling: BERT-{12,24,48} on 8/16/32 V100, "
                        "GPipe vs PipeDream vs OOO-Pipe2",
                        Fig13WeakScaling});
    RegisterSweep(reg, {"fig13_strong_bert", "Figure 13b",
                        "strong scaling: BERT-24/48 from 8 to 32 GPUs, "
                        "OOO-Pipe2",
                        Fig13StrongBert});
    RegisterSweep(reg, {"fig13_strong_gpt3", "Figure 13b",
                        "strong scaling: GPT-3 Medium on 8-24 GPUs (+4 "
                        "embedding), OOO-Pipe2",
                        Fig13StrongGpt3});
    RegisterSweep(reg, {"ana_megatron", "Section 8.4.2",
                        "Megatron-2 interleaved vs OOO-Pipe2, BERT-48 "
                        "pre-training",
                        AnaMegatron});
    RegisterSweep(reg, {"ana_reverse_k", "Section 8.3",
                        "reverse first-k response curve and concave search, "
                        "ResNet-50 on Pub-A",
                        AnaReverseK});
    RegisterSweep(reg, {"ana_corun", "Section 8.2",
                        "per-region co-run capacity analysis, DenseNet-121",
                        AnaCorun});
    RegisterSteady(reg, {"steady_resnet50", "DESIGN.md §9",
                         "long-run ResNet-50 training under steady-state "
                         "iteration replay",
                         SteadyResnet50});
    RegisterSteady(reg, {"steady_densenet121", "DESIGN.md §9",
                         "long-run DenseNet-121(k24) training under "
                         "steady-state iteration replay",
                         SteadyDensenet121});
    RegisterSteady(reg, {"steady_pipedream_bert12", "DESIGN.md §9",
                         "long-run BERT-12 PipeDream pipeline under "
                         "steady-state iteration replay",
                         SteadyPipedreamBert12});
  });
}

}  // namespace oobp
