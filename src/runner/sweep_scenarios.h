// Registration of the scaling sweeps and analysis experiments as runner
// scenarios (label "sweep"), plus the long-horizon steady-state training
// scenarios (label "steady") that exercise the iteration-replay fast path.
//
// The former standalone bench binaries for Figure 13 and the Section 8
// analyses are thin wrappers over these registrations; hosting the sweep
// loops here lets `oobp bench --jobs N` spread the scaling points over the
// thread pool, puts them under the golden gate and the validator replay,
// and shares model/cost-model construction through src/nn/model_cache.h.

#ifndef OOBP_SRC_RUNNER_SWEEP_SCENARIOS_H_
#define OOBP_SRC_RUNNER_SWEEP_SCENARIOS_H_

#include <memory>

#include "src/nn/layer.h"

namespace oobp {

// Registers all sweep and steady-state scenarios into
// ScenarioRegistry::Global(); idempotent (safe from multiple entry points).
void RegisterSweepScenarios();

// The Figure 13 pre-training models (BERT / GPT-3-medium with the embedding
// GEMMs sharded across a tensor-parallel group), memoized under the same
// zoo keys the fig13 sweeps use so scenarios elsewhere (e.g. the search_gap
// suite) share one cached — and one snapshot — entry per point.
std::shared_ptr<const NnModel> Fig13ShardedBert(int layers, int micro_batch);
std::shared_ptr<const NnModel> Fig13ShardedGpt3(int micro_batch);

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_SWEEP_SCENARIOS_H_
