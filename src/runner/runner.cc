#include "src/runner/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <thread>

#include "src/common/str_util.h"
#include "src/runner/cluster_scenarios.h"
#include "src/runner/fleet_scenarios.h"
#include "src/runner/json.h"
#include "src/runner/paper_scenarios.h"
#include "src/runner/perf.h"
#include "src/runner/search_scenarios.h"
#include "src/runner/serve_scenarios.h"
#include "src/runner/snapshot_build.h"
#include "src/runner/sweep_scenarios.h"
#include "src/store/snapshot.h"

namespace oobp {

std::string ScenarioJson(const Scenario& scenario,
                         const ScenarioResult& result) {
  JsonValue doc = JsonValue::Object();
  doc.Set("scenario", JsonValue::Str(scenario.name));
  doc.Set("figure", JsonValue::Str(scenario.figure));
  doc.Set("description", JsonValue::Str(scenario.description));
  JsonValue values = JsonValue::Object();
  for (const MetricKv& kv : result.values) {
    values.Set(kv.key, JsonValue::Number(kv.value));
  }
  doc.Set("values", std::move(values));
  JsonValue notes = JsonValue::Array();
  for (const std::string& note : result.notes) {
    notes.Append(JsonValue::Str(note));
  }
  doc.Set("notes", std::move(notes));
  return doc.Dump();
}

namespace {

int ResolveJobs(int jobs, size_t num_scenarios) {
  int n = jobs;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) {
      n = 1;
    }
  }
  if (static_cast<size_t>(n) > num_scenarios) {
    n = static_cast<int>(num_scenarios);
  }
  return n < 1 ? 1 : n;
}

void RunOne(const Scenario& scenario, const ScenarioParams& params,
            ScenarioRun* run) {
  const auto start = std::chrono::steady_clock::now();
  try {
    run->result = scenario.run(params);
    run->ok = true;
  } catch (const std::exception& e) {
    run->ok = false;
    run->error = e.what();
  } catch (...) {
    run->ok = false;
    run->error = "unknown exception";
  }
  run->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (run->ok) {
    run->json = ScenarioJson(scenario, run->result);
  }
}

void PrintRun(const ScenarioRun& run) {
  std::printf("== %s", run.scenario->name.c_str());
  if (!run.scenario->figure.empty()) {
    std::printf(" (%s)", run.scenario->figure.c_str());
  }
  std::printf(" — %s  [%.2fs]\n", run.scenario->description.c_str(),
              run.wall_seconds);
  if (!run.ok) {
    std::printf("  FAILED: %s\n", run.error.c_str());
    return;
  }
  for (const std::string& note : run.result.notes) {
    std::printf("  # %s\n", note.c_str());
  }
  for (const MetricKv& kv : run.result.values) {
    std::printf("  %-44s %s\n", kv.key.c_str(),
                JsonNumberToString(kv.value).c_str());
  }
  if (run.golden_compared) {
    if (run.golden_failures.empty()) {
      std::printf("  golden: OK\n");
    } else {
      for (const std::string& f : run.golden_failures) {
        std::printf("  golden MISMATCH: %s\n", f.c_str());
      }
    }
  }
}

}  // namespace

RunnerReport RunScenarios(const RunnerOptions& opts) {
  RunnerReport report;
  const std::vector<const Scenario*> matched =
      ScenarioRegistry::Global().Match(opts.filter);
  report.runs.resize(matched.size());
  for (size_t i = 0; i < matched.size(); ++i) {
    report.runs[i].scenario = matched[i];
  }

  const int jobs = ResolveJobs(opts.jobs, matched.size());
  if (jobs <= 1) {
    for (ScenarioRun& run : report.runs) {
      RunOne(*run.scenario, opts.params, &run);
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs));
    for (int t = 0; t < jobs; ++t) {
      pool.emplace_back([&report, &opts, &next] {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= report.runs.size()) {
            return;
          }
          ScenarioRun& run = report.runs[i];
          RunOne(*run.scenario, opts.params, &run);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  // Post-processing stays single-threaded and in registration order so the
  // printed report and any written files are deterministic.
  for (ScenarioRun& run : report.runs) {
    if (!run.ok) {
      ++report.num_scenario_failures;
    }
    if (run.ok && !opts.golden_dir.empty()) {
      std::string error;
      if (const auto spec =
              LoadGoldenSpec(opts.golden_dir, run.scenario->name, &error);
          spec.has_value()) {
        run.golden_compared = true;
        run.golden_failures = CheckAgainstGolden(*spec, run.result);
        if (!run.golden_failures.empty()) {
          ++report.num_golden_failures;
        }
      }
      // A scenario without a golden file is simply not compared.
    }
    if (run.ok && !opts.output_dir.empty()) {
      const std::string path =
          opts.output_dir + "/BENCH_" + run.scenario->name + ".json";
      std::ofstream out(path, std::ios::binary);
      if (out) {
        out << run.json;
      } else if (opts.print) {
        std::printf("warning: cannot write %s\n", path.c_str());
      }
    }
    if (opts.print) {
      PrintRun(run);
    }
  }
  if (opts.print) {
    int compared = 0;
    for (const ScenarioRun& run : report.runs) {
      compared += run.golden_compared ? 1 : 0;
    }
    std::printf("\n%zu scenario(s), %d failed", report.runs.size(),
                report.num_scenario_failures);
    if (compared > 0) {
      std::printf("; %d golden-checked, %d mismatched", compared,
                  report.num_golden_failures);
    }
    std::printf("\n");
  }
  return report;
}

namespace {

// Scenarios grouped by label (the CTest-style train/serve taxonomy), each
// group in registration order. Labels print in first-appearance order, so
// adding a group never reshuffles existing output.
int ListScenarios() {
  const std::vector<Scenario>& all = ScenarioRegistry::Global().scenarios();
  std::vector<std::string> labels;
  for (const Scenario& s : all) {
    if (std::find(labels.begin(), labels.end(), s.label) == labels.end()) {
      labels.push_back(s.label);
    }
  }
  for (const std::string& label : labels) {
    std::printf("[%s]\n", label.c_str());
    for (const Scenario& s : all) {
      if (s.label == label) {
        std::printf("  %-32s %-10s %s\n", s.name.c_str(), s.figure.c_str(),
                    s.description.c_str());
      }
    }
  }
  std::printf("[perf]\n");
  std::printf("  %-32s %-10s %s\n", "(--perf harness)", "",
              "wall-clock timing over any --filter; see --help");
  return 0;
}

int BenchUsage() {
  std::fprintf(stderr,
               "usage: oobp bench [--list] [--filter=GLOB] [--jobs=N]\n"
               "                  [--out=DIR] [--golden[=DIR]] [--param k=v]\n"
               "                  [--perf] [--warmup=N] [--repeats=N]\n"
               "  --list         print scenarios grouped by label\n"
               "                 (train = paper figures, serve = inference\n"
               "                 serving, sweep = scaling/analysis sweeps,\n"
               "                 steady = long-horizon replay scenarios,\n"
               "                 fleet = multi-replica serving fleets,\n"
               "                 cluster = parameter-server training)\n"
               "  --filter=GLOB  run scenarios matching GLOB (default '*';\n"
               "                 with --perf: "
               "'fig07_*,fig10_*,fig13_*,serve_*,steady_*')\n"
               "  --jobs=N       thread-pool size; 0 = all cores (default 1)\n"
               "  --out=DIR      write BENCH_<scenario>.json files (default .)\n"
               "  --golden[=DIR] compare against golden files "
               "(default bench/golden)\n"
               "  --param k=v    forward a parameter to every scenario\n"
               "  --sim-threads=N  worker threads INSIDE one simulation for\n"
               "                 scenarios with sharded engines (fleet_*,\n"
               "                 cluster_*); results are byte-identical to\n"
               "                 N=1 (shorthand for --param sim_threads=N)\n"
               "  --perf         wall-clock harness: warm-up + timed repeats,\n"
               "                 emits BENCH_sim_perf.json (see src/runner/"
               "perf.h)\n"
               "  --warmup=N     untimed runs per scenario (default 1)\n"
               "  --repeats=N    timed runs per scenario (default 3)\n"
               "  --check[=PATH] with --perf: gate event counts against the\n"
               "                 committed baseline (default "
               "bench/perf_baseline.json);\n"
               "                 inflation fails, wall-clock bands are\n"
               "                 informational (Release builds only)\n"
               "  --snapshot[=PATH] activate a prebuilt snapshot (default\n"
               "                 bench/oobp.snapshot; also via the\n"
               "                 OOBP_SNAPSHOT env var): models, schedules,\n"
               "                 goldens, and the perf baseline load from the\n"
               "                 mapping instead of being rebuilt — results\n"
               "                 are byte-identical; a stale snapshot falls\n"
               "                 back silently, a corrupt one is an error\n");
  return 2;
}

// Shared --snapshot / OOBP_SNAPSHOT activation policy: corruption is a hard
// error (the user named a file and it is broken — hiding that would mask
// bit rot), staleness falls back to in-process builds with a notice (the
// registry simply moved on; results stay correct either way).
int ActivateSnapshotOrExplain(const std::string& path) {
  std::string error;
  switch (ActivateSnapshot(path, ComputeScenarioRegistryHash(),
                           /*check_registry=*/true, &error)) {
    case SnapshotActivation::kActive:
      return 0;
    case SnapshotActivation::kStale:
      std::fprintf(stderr, "note: %s\n", error.c_str());
      return 0;
    case SnapshotActivation::kError:
      std::fprintf(stderr, "snapshot: %s\n", error.c_str());
      return 2;
  }
  return 2;
}

}  // namespace

int BenchMain(int argc, char** argv) {
  RegisterPaperScenarios();
  RegisterServeScenarios();
  RegisterSweepScenarios();
  RegisterFleetScenarios();
  RegisterClusterScenarios();
  RegisterSearchScenarios();

  RunnerOptions opts;
  opts.output_dir = ".";
  bool list = false;
  bool perf = false;
  bool filter_given = false;
  std::string snapshot_path;
  PerfOptions perf_opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      continue;  // binary name / "bench" subcommand / stray positionals
    }
    arg = arg.substr(2);
    std::string value;
    const size_t eq = arg.find('=');
    const bool has_value = eq != std::string::npos;
    if (has_value) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    // `--flag value` form for flags that require a value.
    auto next_value = [&]() -> std::string {
      if (has_value) {
        return value;
      }
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        return argv[++i];
      }
      return "";
    };
    if (arg == "list") {
      list = true;
    } else if (arg == "perf") {
      perf = true;
    } else if (arg == "warmup") {
      perf_opts.warmup = std::atoi(next_value().c_str());
    } else if (arg == "repeats") {
      perf_opts.repeats = std::atoi(next_value().c_str());
    } else if (arg == "check") {
      perf_opts.check = true;
      if (has_value && !value.empty()) {
        perf_opts.baseline_path = value;
      }
    } else if (arg == "filter") {
      opts.filter = next_value();
      filter_given = true;
    } else if (arg == "jobs") {
      opts.jobs = std::atoi(next_value().c_str());
    } else if (arg == "out") {
      opts.output_dir = next_value();
    } else if (arg == "golden") {
      const std::string dir = next_value();
      opts.golden_dir = dir.empty() ? "bench/golden" : dir;
    } else if (arg == "snapshot") {
      const std::string p = next_value();
      snapshot_path = p.empty() ? kDefaultSnapshotPath : p;
    } else if (arg == "sim-threads") {
      // Sugar for --param sim_threads=N: intra-scenario parallelism for
      // engines that support sharded simulation (fleet_*, cluster_*).
      opts.params.Set("sim_threads", next_value());
    } else if (arg == "param") {
      const std::string kv = next_value();
      const size_t split = kv.find('=');
      if (split == std::string::npos) {
        std::fprintf(stderr, "--param needs key=value, got '%s'\n",
                     kv.c_str());
        return BenchUsage();
      }
      opts.params.Set(kv.substr(0, split), kv.substr(split + 1));
    } else if (arg == "help") {
      return BenchUsage();
    } else {
      std::fprintf(stderr, "unknown flag --%s\n", arg.c_str());
      return BenchUsage();
    }
  }
  if (snapshot_path.empty()) {
    if (const char* env = std::getenv("OOBP_SNAPSHOT");
        env != nullptr && env[0] != '\0') {
      snapshot_path = env;
    }
  }
  if (!snapshot_path.empty()) {
    if (const int rc = ActivateSnapshotOrExplain(snapshot_path); rc != 0) {
      return rc;
    }
  }
  if (list) {
    return ListScenarios();
  }
  if (perf) {
    if (filter_given) {
      perf_opts.filter = opts.filter;
    }
    perf_opts.output_dir = opts.output_dir;
    perf_opts.params = opts.params;
    return RunPerf(perf_opts);
  }
  const RunnerReport report = RunScenarios(opts);
  if (report.runs.empty()) {
    std::fprintf(stderr, "no scenario matches filter '%s'\n",
                 opts.filter.c_str());
    return 2;
  }
  return report.ok() ? 0 : 1;
}

int RunStandaloneBench(const std::string& filter) {
  RegisterPaperScenarios();
  RegisterServeScenarios();
  RegisterSweepScenarios();
  RegisterFleetScenarios();
  RegisterClusterScenarios();
  RegisterSearchScenarios();
  RunnerOptions opts;
  opts.filter = filter;
  opts.jobs = 1;
  const RunnerReport report = RunScenarios(opts);
  if (report.runs.empty()) {
    std::fprintf(stderr, "no scenario matches filter '%s'\n", filter.c_str());
    return 2;
  }
  return report.ok() ? 0 : 1;
}

}  // namespace oobp
