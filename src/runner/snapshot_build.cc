#include "src/runner/snapshot_build.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/str_util.h"
#include "src/nn/model_cache.h"
#include "src/runner/cluster_scenarios.h"
#include "src/runner/fleet_scenarios.h"
#include "src/runner/golden.h"
#include "src/runner/json.h"
#include "src/runner/paper_scenarios.h"
#include "src/runner/registry.h"
#include "src/runner/runner.h"
#include "src/runner/search_scenarios.h"
#include "src/runner/serve_scenarios.h"
#include "src/runner/sweep_scenarios.h"
#include "src/sim/engine.h"
#include "src/store/format.h"
#include "src/store/hash.h"
#include "src/store/reader.h"
#include "src/store/snapshot.h"
#include "src/store/writer.h"

namespace oobp {

namespace {

// Idempotent registration: SnapshotMain may run in a process that already
// registered the families (e.g. when dispatched after BenchMain in a test).
void RegisterAllScenarios() {
  if (ScenarioRegistry::Global().size() > 0) {
    return;
  }
  RegisterPaperScenarios();
  RegisterServeScenarios();
  RegisterSweepScenarios();
  RegisterFleetScenarios();
  RegisterClusterScenarios();
  RegisterSearchScenarios();
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

SnapshotGolden ConvertGolden(const GoldenSpec& spec,
                             const std::string& scenario) {
  SnapshotGolden g;
  g.scenario = scenario;
  g.checks.reserve(spec.checks.size());
  for (const GoldenCheck& c : spec.checks) {
    SnapshotGoldenCheck sc;
    sc.key = c.key;
    sc.flags = (c.has_expect ? kGoldenHasExpect : 0u) |
               (c.has_min ? kGoldenHasMin : 0u) |
               (c.has_max ? kGoldenHasMax : 0u);
    sc.expect = c.expect;
    sc.rel_tol = c.rel_tol;
    sc.abs_tol = c.abs_tol;
    sc.min = c.min;
    sc.max = c.max;
    g.checks.push_back(std::move(sc));
  }
  return g;
}

int SnapshotBuild(const std::string& out_path, const std::string& golden_dir,
                  const std::string& baseline_path) {
  RegisterAllScenarios();
  const uint64_t registry_hash = ComputeScenarioRegistryHash();

  // A clean slate makes the sweep record every model/cost point/schedule it
  // uses, independent of anything this process did earlier.
  DeactivateSnapshot();
  ClearModelCaches();
  StartSnapshotRecording(registry_hash);

  std::map<std::string, SnapshotGolden> goldens;
  int ran = 0;
  int failed = 0;
  for (const Scenario& s : ScenarioRegistry::Global().scenarios()) {
    const auto spec = LoadGoldenFile(GoldenPathFor(golden_dir, s.name));
    if (!spec.has_value()) {
      continue;  // no golden file → not part of the snapshot sweep
    }
    goldens.emplace(s.name, ConvertGolden(*spec, s.name));
    try {
      s.run(ScenarioParams());
      ++ran;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "snapshot build: scenario %s failed: %s\n",
                   s.name.c_str(), e.what());
      ++failed;
    }
  }
  SnapshotContents contents = TakeSnapshotRecording();
  if (failed > 0) {
    std::fprintf(stderr,
                 "snapshot build: %d scenario(s) failed; not writing %s\n",
                 failed, out_path.c_str());
    return 1;
  }
  if (ran == 0) {
    std::fprintf(stderr,
                 "snapshot build: no scenario has a golden file under %s\n",
                 golden_dir.c_str());
    return 1;
  }
  contents.goldens = std::move(goldens);
  if (!ReadFileBytes(baseline_path, &contents.perf_baseline_json)) {
    // Embedding the baseline is best-effort: a missing file just means the
    // perf gate reads from disk as before.
    std::fprintf(stderr,
                 "snapshot build: note: no perf baseline at %s; "
                 "section omitted\n",
                 baseline_path.c_str());
  }

  std::string error;
  if (!WriteSnapshotFile(out_path, contents, &error)) {
    std::fprintf(stderr, "snapshot build: %s\n", error.c_str());
    return 1;
  }
  std::unique_ptr<SnapshotReader> reader = SnapshotReader::Open(out_path,
                                                                &error);
  if (reader == nullptr) {
    std::fprintf(stderr,
                 "snapshot build: wrote %s but it fails validation: %s\n",
                 out_path.c_str(), error.c_str());
    return 1;
  }
  std::printf("snapshot build: %s (%llu bytes)\n", out_path.c_str(),
              static_cast<unsigned long long>(reader->file_size()));
  std::printf("  registry hash  %016llx\n",
              static_cast<unsigned long long>(registry_hash));
  std::printf("  scenarios ran  %d\n", ran);
  std::printf("  models         %zu\n", contents.models.size());
  std::printf("  cost models    %zu\n", contents.cost_models.size());
  std::printf("  schedules      %zu\n", contents.schedules.size());
  std::printf("  goldens        %zu\n", contents.goldens.size());
  std::printf("  perf baseline  %zu bytes\n",
              contents.perf_baseline_json.size());
  return 0;
}

int SnapshotInfo(const std::string& path) {
  std::string error;
  const std::unique_ptr<SnapshotReader> reader =
      SnapshotReader::Open(path, &error);
  if (reader == nullptr) {
    std::fprintf(stderr, "snapshot info: %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  RegisterAllScenarios();
  const uint64_t expect = ComputeScenarioRegistryHash();
  std::printf("snapshot %s\n", path.c_str());
  std::printf("  file size      %llu bytes\n",
              static_cast<unsigned long long>(reader->file_size()));
  std::printf("  registry hash  %016llx (%s)\n",
              static_cast<unsigned long long>(reader->registry_hash()),
              reader->registry_hash() == expect ? "fresh" : "STALE");
  std::printf("  %-14s %10s %10s %16s %8s\n", "section", "offset", "length",
              "checksum", "entries");
  for (const SnapshotSectionInfo& s : reader->Sections()) {
    std::printf("  %-14s %10llu %10llu %016llx %8llu\n",
                SectionKindName(s.kind),
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.length),
                static_cast<unsigned long long>(s.checksum),
                static_cast<unsigned long long>(s.entry_count));
  }
  std::printf("  models: ");
  const std::vector<std::string> keys = reader->ModelKeys();
  for (size_t i = 0; i < keys.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ", ", keys[i].c_str());
  }
  std::printf("\n");
  return 0;
}

int SnapshotVerify(const std::string& path) {
  std::string error;
  const std::unique_ptr<SnapshotReader> reader =
      SnapshotReader::Open(path, &error);
  if (reader == nullptr) {
    std::fprintf(stderr, "snapshot verify: %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  // Checksums passed inside Open; additionally recompute every stored
  // model's content hash so a record that is bitwise intact but internally
  // inconsistent (writer bug, not bit rot) is also caught.
  for (const std::string& key : reader->ModelKeys()) {
    const auto model = reader->FindModel(key);
    if (!model.has_value() ||
        ModelContentHash(*model) != reader->FindModelContentHash(key)) {
      std::fprintf(stderr,
                   "snapshot verify: %s: model '%s' content hash does not "
                   "match its stored layers (corrupt file)\n",
                   path.c_str(), key.c_str());
      return 1;
    }
  }
  RegisterAllScenarios();
  const uint64_t expect = ComputeScenarioRegistryHash();
  if (reader->registry_hash() != expect) {
    std::printf("snapshot verify: %s is STALE (built for registry %016llx, "
                "this binary is %016llx); rerun `oobp snapshot build`\n",
                path.c_str(),
                static_cast<unsigned long long>(reader->registry_hash()),
                static_cast<unsigned long long>(expect));
    return 2;
  }
  std::printf("snapshot verify: %s OK (%zu models, %zu cost models, "
              "%zu schedules, %zu goldens)\n",
              path.c_str(), reader->ModelKeys().size(),
              reader->CostModelKeys().size(), reader->ScheduleCount(),
              reader->GoldenScenarios().size());
  return 0;
}

struct StartupTiming {
  double pre_first_event_ms = -1.0;  // arm → first SimEngine::Run anywhere
  double total_ms = 0.0;             // full filtered sweep
  size_t scenarios = 0;
  bool ok = false;
};

StartupTiming RunStartupPass(const std::string& filter) {
  // Model/cost caches would otherwise carry warm state from the previous
  // pass; clearing them makes each pass measure true from-scratch startup.
  ClearModelCaches();
  RunnerOptions opts;
  opts.filter = filter;
  opts.jobs = 1;
  opts.print = false;
  StartupTiming t;
  SimEngine::ArmFirstRunCapture();
  const auto start = std::chrono::steady_clock::now();
  const RunnerReport report = RunScenarios(opts);
  t.total_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  t.pre_first_event_ms = SimEngine::FirstRunCaptureMs();
  t.scenarios = report.runs.size();
  t.ok = report.ok() && !report.runs.empty();
  return t;
}

int SnapshotStartup(const std::string& path, const std::string& filter,
                    const std::string& out_dir) {
  RegisterAllScenarios();
  const uint64_t registry_hash = ComputeScenarioRegistryHash();

  DeactivateSnapshot();
  const StartupTiming cold = RunStartupPass(filter);
  if (!cold.ok) {
    std::fprintf(stderr,
                 "snapshot startup: cold pass failed or matched nothing "
                 "(filter '%s')\n",
                 filter.c_str());
    return 1;
  }

  std::string error;
  const SnapshotActivation act =
      ActivateSnapshot(path, registry_hash, /*check_registry=*/true, &error);
  if (act == SnapshotActivation::kError) {
    std::fprintf(stderr, "snapshot startup: %s\n", error.c_str());
    return 1;
  }
  if (act == SnapshotActivation::kStale) {
    std::fprintf(stderr, "snapshot startup: %s\n", error.c_str());
    return 2;
  }
  const StartupTiming warm = RunStartupPass(filter);
  DeactivateSnapshot();
  if (!warm.ok) {
    std::fprintf(stderr, "snapshot startup: warm pass failed (filter '%s')\n",
                 filter.c_str());
    return 1;
  }

  std::printf("snapshot startup (filter '%s', %zu scenario(s)):\n",
              filter.c_str(), cold.scenarios);
  std::printf("  %-24s %12s %12s\n", "", "cold", "snapshot");
  std::printf("  %-24s %9.3f ms %9.3f ms\n", "pre-first-event",
              cold.pre_first_event_ms, warm.pre_first_event_ms);
  std::printf("  %-24s %9.3f ms %9.3f ms\n", "total sweep", cold.total_ms,
              warm.total_ms);

  JsonValue doc = JsonValue::Object();
  doc.Set("filter", JsonValue::Str(filter));
  doc.Set("snapshot", JsonValue::Str(path));
  doc.Set("scenarios", JsonValue::Number(static_cast<double>(cold.scenarios)));
  JsonValue cold_j = JsonValue::Object();
  cold_j.Set("pre_first_event_ms", JsonValue::Number(cold.pre_first_event_ms));
  cold_j.Set("total_ms", JsonValue::Number(cold.total_ms));
  doc.Set("cold", std::move(cold_j));
  JsonValue warm_j = JsonValue::Object();
  warm_j.Set("pre_first_event_ms", JsonValue::Number(warm.pre_first_event_ms));
  warm_j.Set("total_ms", JsonValue::Number(warm.total_ms));
  doc.Set("warm", std::move(warm_j));
  doc.Set("speedup_pre_first_event",
          JsonValue::Number(warm.pre_first_event_ms > 0.0
                                ? cold.pre_first_event_ms /
                                      warm.pre_first_event_ms
                                : 0.0));
  const std::string out_path = out_dir + "/BENCH_startup.json";
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "snapshot startup: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << doc.Dump();
  std::printf("  -> %s\n", out_path.c_str());
  return 0;
}

int SnapshotUsage() {
  std::fprintf(
      stderr,
      "usage: oobp snapshot <build|info|verify|startup> [flags]\n"
      "  build    replay the golden scenario sweep with recording on and\n"
      "           write the artifact; bit-deterministic\n"
      "    --out=PATH       artifact path (default bench/oobp.snapshot)\n"
      "    --golden=DIR     goldens that select the sweep "
      "(default bench/golden)\n"
      "    --baseline=PATH  perf baseline to embed "
      "(default bench/perf_baseline.json)\n"
      "  info     print header, section table, and model keys\n"
      "    --path=PATH      artifact (default bench/oobp.snapshot)\n"
      "  verify   validate checksums + model content hashes + registry\n"
      "           freshness; exit 0 = fresh, 1 = corrupt, 2 = stale\n"
      "    --path=PATH\n"
      "  startup  measure cold vs snapshot-warm startup, write "
      "BENCH_startup.json\n"
      "    --path=PATH --filter=GLOB (default 'fig07*') --out=DIR "
      "(default .)\n");
  return 2;
}

}  // namespace

uint64_t ComputeScenarioRegistryHash() {
  HashAccumulator acc;
  acc.U64(kSnapshotSchemaVersion);
  const std::vector<Scenario>& all = ScenarioRegistry::Global().scenarios();
  acc.U64(all.size());
  for (const Scenario& s : all) {
    acc.Str(s.name);
    acc.Str(s.label);
  }
  return acc.Digest();
}

int SnapshotMain(int argc, char** argv) {
  // argv: oobp snapshot <subcommand> [--flags]
  std::string sub;
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        flags[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        flags[arg] = argv[++i];
      } else {
        flags[arg] = "";
      }
    } else if (sub.empty()) {
      sub = arg;
    }
  }
  auto flag = [&](const char* name, const char* def) -> std::string {
    const auto it = flags.find(name);
    return it != flags.end() && !it->second.empty() ? it->second : def;
  };
  if (sub == "build") {
    return SnapshotBuild(flag("out", kDefaultSnapshotPath),
                         flag("golden", "bench/golden"),
                         flag("baseline", "bench/perf_baseline.json"));
  }
  if (sub == "info") {
    return SnapshotInfo(flag("path", kDefaultSnapshotPath));
  }
  if (sub == "verify") {
    return SnapshotVerify(flag("path", kDefaultSnapshotPath));
  }
  if (sub == "startup") {
    return SnapshotStartup(flag("path", kDefaultSnapshotPath),
                           flag("filter", "fig07*"), flag("out", "."));
  }
  if (!sub.empty()) {
    std::fprintf(stderr, "unknown snapshot subcommand '%s'\n", sub.c_str());
  }
  return SnapshotUsage();
}

}  // namespace oobp
