// Glob matching shared by every name filter in the harness: `oobp bench
// --filter`, the `--perf` scenario selection, and `oobp fuzz --checks`.
//
// Patterns are fnmatch(3)-style globs — `*`, `?`, and `[...]` classes — and
// a filter may be a comma-separated list of them ("fig07_*,fig10_*"), which
// matches when any element matches. Keeping the one implementation here
// guarantees the CLI surfaces agree on filter semantics.

#ifndef OOBP_SRC_RUNNER_GLOB_H_
#define OOBP_SRC_RUNNER_GLOB_H_

#include <string>
#include <vector>

namespace oobp {

// fnmatch-style glob: `*`, `?`, and `[...]` classes (e.g. "fig0[456]*").
bool GlobMatch(const std::string& pattern, const std::string& text);

// Splits a comma-separated filter into its glob elements; empty elements
// (",," or a trailing comma) are dropped.
std::vector<std::string> SplitGlobList(const std::string& patterns);

// True when any comma-separated element of `patterns` glob-matches `text`.
// An empty or all-empty pattern list matches nothing.
bool MatchAnyGlob(const std::string& patterns, const std::string& text);

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_GLOB_H_
