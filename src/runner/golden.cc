#include "src/runner/golden.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/common/str_util.h"
#include "src/runner/json.h"
#include "src/store/format.h"
#include "src/store/snapshot.h"

namespace oobp {

std::string GoldenPathFor(const std::string& dir, const std::string& scenario) {
  return dir + "/" + scenario + ".json";
}

std::optional<GoldenSpec> LoadGoldenFile(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  const auto doc = JsonValue::Parse(buf.str(), &parse_error);
  if (!doc.has_value() || !doc->is_object()) {
    if (error != nullptr) {
      *error = path + ": " +
               (parse_error.empty() ? "not a JSON object" : parse_error);
    }
    return std::nullopt;
  }

  GoldenSpec spec;
  if (const JsonValue* name = doc->Find("scenario");
      name != nullptr && name->is_string()) {
    spec.scenario = name->string_value();
  }
  const JsonValue* checks = doc->Find("checks");
  if (checks == nullptr || !checks->is_array()) {
    if (error != nullptr) {
      *error = path + ": missing \"checks\" array";
    }
    return std::nullopt;
  }
  for (const JsonValue& item : checks->array_items()) {
    GoldenCheck check;
    if (const JsonValue* v = item.Find("key"); v != nullptr && v->is_string()) {
      check.key = v->string_value();
    }
    if (const JsonValue* v = item.Find("expect");
        v != nullptr && v->is_number()) {
      check.has_expect = true;
      check.expect = v->number_value();
    }
    if (const JsonValue* v = item.Find("rel_tol");
        v != nullptr && v->is_number()) {
      check.rel_tol = v->number_value();
    }
    if (const JsonValue* v = item.Find("abs_tol");
        v != nullptr && v->is_number()) {
      check.abs_tol = v->number_value();
    }
    if (const JsonValue* v = item.Find("min"); v != nullptr && v->is_number()) {
      check.has_min = true;
      check.min = v->number_value();
    }
    if (const JsonValue* v = item.Find("max"); v != nullptr && v->is_number()) {
      check.has_max = true;
      check.max = v->number_value();
    }
    if (check.key.empty() ||
        (!check.has_expect && !check.has_min && !check.has_max)) {
      if (error != nullptr) {
        *error = path + ": check needs a \"key\" and one of expect/min/max";
      }
      return std::nullopt;
    }
    spec.checks.push_back(std::move(check));
  }
  return spec;
}

std::optional<GoldenSpec> LoadGoldenSpec(const std::string& dir,
                                         const std::string& scenario,
                                         std::string* error) {
  if (const std::shared_ptr<const SnapshotReader> reader = ActiveSnapshot()) {
    if (const auto view = reader->FindGolden(scenario)) {
      GoldenSpec spec;
      spec.scenario = std::string(view->scenario);
      spec.checks.reserve(view->check_count);
      for (size_t i = 0; i < view->check_count; ++i) {
        const GoldenCheckRecord& rec = view->checks[i];
        GoldenCheck check;
        check.key = std::string(reader->Str(rec.key));
        check.has_expect = (rec.flags & kGoldenHasExpect) != 0;
        check.expect = rec.expect;
        check.rel_tol = rec.rel_tol;
        check.abs_tol = rec.abs_tol;
        check.has_min = (rec.flags & kGoldenHasMin) != 0;
        check.min = rec.min;
        check.has_max = (rec.flags & kGoldenHasMax) != 0;
        check.max = rec.max;
        spec.checks.push_back(std::move(check));
      }
      return spec;
    }
    // Scenario absent from the snapshot: fall through to the file so a
    // partially-populated snapshot never hides a checked-in golden.
  }
  return LoadGoldenFile(GoldenPathFor(dir, scenario), error);
}

bool GoldenCheckPasses(const GoldenCheck& check, double value) {
  if (check.has_expect) {
    const double tol =
        check.abs_tol + check.rel_tol * std::fabs(check.expect);
    if (std::fabs(value - check.expect) > tol) {
      return false;
    }
  }
  if (check.has_min && value < check.min) {
    return false;
  }
  if (check.has_max && value > check.max) {
    return false;
  }
  return true;
}

std::vector<std::string> CheckAgainstGolden(const GoldenSpec& spec,
                                            const ScenarioResult& result) {
  std::vector<std::string> failures;
  for (const GoldenCheck& check : spec.checks) {
    const double* value = result.Find(check.key);
    if (value == nullptr) {
      failures.push_back(StrFormat("key '%s' missing from result",
                                   check.key.c_str()));
      continue;
    }
    if (GoldenCheckPasses(check, *value)) {
      continue;
    }
    // A check may carry an expect and a band; report every constraint so a
    // band-only violation doesn't print as a (passing) tolerance failure.
    std::string detail;
    if (check.has_expect) {
      detail = StrFormat("expected %.6g (rel_tol %.3g, abs_tol %.3g)",
                         check.expect, check.rel_tol, check.abs_tol);
    }
    if (check.has_min || check.has_max) {
      if (!detail.empty()) {
        detail += ", ";
      }
      detail += StrFormat(
          "band [%s, %s]",
          check.has_min ? StrFormat("%.6g", check.min).c_str() : "-inf",
          check.has_max ? StrFormat("%.6g", check.max).c_str() : "+inf");
    }
    failures.push_back(StrFormat("%s = %.6g, %s", check.key.c_str(), *value,
                                 detail.c_str()));
  }
  return failures;
}

}  // namespace oobp
