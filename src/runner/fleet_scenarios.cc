#include "src/runner/fleet_scenarios.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/str_util.h"
#include "src/core/joint_scheduler.h"
#include "src/core/schedule.h"
#include "src/nn/model_cache.h"
#include "src/nn/model_zoo.h"
#include "src/runner/registry.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/serve/fleet_engine.h"
#include "src/store/snapshot.h"

namespace oobp {
namespace {

NnModel InferResNet50(int batch) { return ResNet(50, batch, 224); }

FleetConfig BaseFleetConfig(const ScenarioParams& params, int replicas,
                            RoutingPolicy policy, double horizon_ms) {
  FleetConfig cfg;
  cfg.gpu = GpuSpec::V100();
  cfg.profile = SystemProfile::TensorFlowXla();
  cfg.horizon = Ms(params.GetDouble("horizon_ms", horizon_ms));
  cfg.slo = Ms(params.GetDouble("slo_ms", 40.0));
  cfg.batcher.max_batch = params.GetInt("max_batch", 8);
  cfg.batcher.max_queue_delay =
      Ms(params.GetDouble("max_queue_delay_ms", 1.0));
  cfg.batcher.max_inflight = 1;
  cfg.router.policy = policy;
  cfg.router.seed = 0xF1EE7ull * 1000003ull +
                    static_cast<uint64_t>(replicas) * 8ull +
                    static_cast<uint64_t>(policy);
  cfg.autoscaler.max_replicas = replicas;
  cfg.make_model = InferResNet50;
  // `--sim-threads N` lands here: N > 1 shards the fleet into per-replica
  // logical processes with byte-identical results (see fleet_engine.h).
  cfg.sim_threads = params.GetInt("sim_threads", 1);
  cfg.sim_perturb_seed =
      static_cast<uint64_t>(params.GetInt("sim_perturb_seed", 0));
  return cfg;
}

// Flattens a FleetMetrics into the scenario's key/value map under `prefix`:
// the fleet-wide ServeMetrics keys plus router/autoscaler outcome and the
// completion spread across ever-routable replicas.
void SetFleetOutcome(ScenarioResult* result, const std::string& prefix,
                     const FleetMetrics& m) {
  for (const MetricKv& kv : ServeMetricsToKv(m.serve, prefix)) {
    result->values.push_back(kv);
  }
  result->Set(prefix + "imbalance", m.imbalance);
  result->Set(prefix + "router_decisions",
              static_cast<double>(m.router_decisions));
  result->Set(prefix + "scale_ups", m.scale_ups);
  result->Set(prefix + "scale_downs", m.scale_downs);
  result->Set(prefix + "min_routable", m.min_routable);
  result->Set(prefix + "max_routable", m.max_routable);
  result->Set(prefix + "mean_routable", m.mean_routable);
  result->Set(prefix + "timeline_events",
              static_cast<double>(m.replica_timeline.size()));

  int served = 0;
  int64_t completed_min = 0, completed_max = 0;
  for (int r = 0; r < m.max_routable; ++r) {
    const int64_t c = m.replica_completed[static_cast<size_t>(r)];
    if (r == 0) {
      completed_min = completed_max = c;
    } else {
      completed_min = std::min(completed_min, c);
      completed_max = std::max(completed_max, c);
    }
    served += c > 0 ? 1 : 0;
  }
  result->Set(prefix + "replicas_served", served);
  result->Set(prefix + "replica_completed_min",
              static_cast<double>(completed_min));
  result->Set(prefix + "replica_completed_max",
              static_cast<double>(completed_max));
}

// Compact replica-count timeline for the scenario notes (the full event list
// is in FleetMetrics; goldens pin the summary stats instead).
std::string TimelineNote(const FleetMetrics& m) {
  const auto& tl = m.replica_timeline;
  std::string s = "routable timeline:";
  const size_t show = std::min<size_t>(tl.size(), 12);
  for (size_t i = 0; i < show; ++i) {
    s += StrFormat(" %d@%.1fms", tl[i].second, ToMs(tl[i].first));
  }
  if (tl.size() > show) {
    s += StrFormat(" ... (%zu events)", tl.size());
  }
  return s;
}

// Serve-only autoscaled fleet under a diurnal envelope. Aggregate load is
// sized per replica, so the three fleet sizes stress the same per-device
// regime and the scenarios differ in control-plane dynamics, not saturation.
ScenarioResult RunFleetGrid(const ScenarioParams& params,
                            RoutingPolicy policy, int replicas) {
  ScenarioResult result;
  FleetConfig cfg = BaseFleetConfig(params, replicas, policy,
                                    /*horizon_ms=*/200.0);
  const double per_rps = params.GetDouble("per_replica_rps", 500.0);
  cfg.arrivals.kind = ArrivalKind::kPoisson;
  cfg.arrivals.rate_rps = per_rps * replicas;
  // Per-scenario seed: distinct deterministic traces across the grid.
  cfg.arrivals.seed = 0xF1EEDull * 1000003ull +
                      static_cast<uint64_t>(replicas) * 8ull +
                      static_cast<uint64_t>(policy);
  cfg.envelope = MakeDiurnalEnvelope(
      Ms(params.GetDouble("diurnal_period_ms", 100.0)), /*trough=*/0.5,
      /*peak=*/1.5, /*steps=*/8);
  cfg.autoscaler.min_replicas = std::max(1, replicas / 4);
  cfg.autoscaler.scale_up_depth = 6.0;
  cfg.autoscaler.scale_down_depth = 1.0;
  cfg.autoscaler.evaluate_every = Ms(1);
  cfg.autoscaler.cooldown = Ms(2);
  cfg.autoscaler.warmup = Ms(5);

  result.AddNote(StrFormat(
      "%d replicas (floor %d), %s routing, %.0f rps/replica diurnal x%.1f, "
      "horizon %.0f ms",
      replicas, cfg.autoscaler.min_replicas, RoutingPolicyName(policy),
      per_rps, 1.5, ToMs(cfg.horizon)));

  const FleetEngine engine(std::move(cfg));
  const FleetMetrics m = engine.RunServeOnly();
  result.AddNote(TimelineNote(m));
  SetFleetOutcome(&result, "", m);
  return result;
}

// Pinned 64-replica co-run fleet at a load point and at double that load.
// The ooo and baseline variants share arrival traces (seeds depend only on
// the load point), so their golden files differ only by the training
// schedule's effect on the serving tail.
ScenarioResult RunFleetCorun(const ScenarioParams& params, bool ooo) {
  ScenarioResult result;
  const int replicas = params.GetInt("replicas", 64);
  FleetConfig base = BaseFleetConfig(params, replicas,
                                     RoutingPolicy::kLeastLoaded,
                                     /*horizon_ms=*/250.0);
  base.autoscaler.min_replicas = replicas;  // min == max: fixed fleet

  const std::shared_ptr<const NnModel> train_model =
      CachedModel("resnet:L50:B32", [] { return ResNet(50, 32, 224); });
  const TrainGraph graph(train_model.get());
  const IterationSchedule schedule =
      ooo ? SnapshotOooSchedule(graph, base.gpu, base.profile).schedule
          : ConventionalIteration(graph);
  const TrainMetrics solo =
      SingleGpuEngine({base.gpu, base.profile, /*precompiled_issue=*/true})
          .Run(*train_model, schedule);
  result.SetMetrics("solo.", solo);
  const int cover = static_cast<int>(
      std::ceil(static_cast<double>(base.horizon) /
                static_cast<double>(solo.iteration_time)));
  const int train_iterations = std::max(3, cover + 2);

  const double per_rps = params.GetDouble("per_replica_rps", 30.0);
  result.AddNote(StrFormat(
      "%d replicas co-running %s (%s schedule, %d iterations); load points "
      "%.0f and %.0f rps/replica, horizon %.0f ms",
      replicas, train_model->name.c_str(), ooo ? "ooo" : "in-order",
      train_iterations, per_rps, 2 * per_rps, ToMs(base.horizon)));

  double p99[2] = {0, 0}, goodput[2] = {0, 0}, slo_att[2] = {0, 0};
  for (int point = 0; point < 2; ++point) {
    FleetConfig cfg = base;
    cfg.arrivals.kind = ArrivalKind::kPoisson;
    cfg.arrivals.rate_rps = per_rps * (point + 1) * replicas;
    cfg.arrivals.seed = 0xF1EECull * 1000003ull +
                        static_cast<uint64_t>(point);  // shared across ooo
    const FleetEngine engine(std::move(cfg));
    const FleetMetrics m = engine.RunCorun(*train_model, schedule,
                                           train_iterations);
    const std::string prefix = StrFormat("load%d.", point + 1);
    SetFleetOutcome(&result, prefix, m);
    result.SetMetrics(prefix + "train.", m.train);
    result.Set(prefix + "train_overhead",
               static_cast<double>(m.train.iteration_time) /
                   static_cast<double>(solo.iteration_time));
    result.Set(prefix + "train_iter_spread_ms",
               ToMs(m.train_iter_max - m.train_iter_min));
    p99[point] = ToMs(m.serve.p99_latency);
    goodput[point] = m.serve.goodput_rps;
    slo_att[point] = m.serve.slo_attainment;
  }

  // Headline indicators: tail growth and goodput scaling under the load
  // doubling (goodput_scaling == 2 means every extra request still lands
  // inside the SLO).
  result.Set("p99_growth", p99[0] > 0 ? p99[1] / p99[0] : 0.0);
  result.Set("goodput_scaling", goodput[0] > 0 ? goodput[1] / goodput[0]
                                               : 0.0);
  result.Set("slo_drop", slo_att[0] - slo_att[1]);
  return result;
}

}  // namespace

void RegisterFleetScenarios() {
  static std::once_flag once;
  std::call_once(once, [] {
    ScenarioRegistry& reg = ScenarioRegistry::Global();

    const struct {
      RoutingPolicy policy;
      const char* tag;
    } kPolicies[] = {{RoutingPolicy::kRoundRobin, "rr"},
                     {RoutingPolicy::kLeastLoaded, "ll"},
                     {RoutingPolicy::kPowerOfTwo, "p2c"}};
    for (const auto& p : kPolicies) {
      for (const int replicas : {4, 16, 64}) {
        reg.Register(
            {StrFormat("fleet_%s_%d", p.tag, replicas), "Fleet",
             StrFormat("%d-replica autoscaled fleet, %s routing, diurnal "
                       "ResNet-50 serving",
                       replicas, p.tag),
             [policy = p.policy, replicas](const ScenarioParams& params) {
               return RunFleetGrid(params, policy, replicas);
             },
             "fleet"});
      }
    }

    reg.Register({"fleet_corun_baseline_64", "Fleet",
                  "64-replica fleet: ResNet-50 serving + in-order training, "
                  "load doubling",
                  [](const ScenarioParams& params) {
                    return RunFleetCorun(params, /*ooo=*/false);
                  },
                  "fleet"});
    reg.Register({"fleet_corun_ooo_64", "Fleet",
                  "64-replica fleet: ResNet-50 serving + ooo-backprop "
                  "training, load doubling",
                  [](const ScenarioParams& params) {
                    return RunFleetCorun(params, /*ooo=*/true);
                  },
                  "fleet"});
  });
}

}  // namespace oobp
