#include "src/runner/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace oobp {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

std::string JsonNumberToString(double v) {
  if (!std::isfinite(v)) {
    return "null";  // JSON has no inf/nan; the runner never emits them
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Indent(std::string* out, int n) { out->append(static_cast<size_t>(n), ' '); }

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += JsonNumberToString(number_);
      return;
    case Type::kString:
      EscapeString(string_, out);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        Indent(out, indent + 2);
        array_[i].DumpTo(out, indent + 2);
        *out += i + 1 < array_.size() ? ",\n" : "\n";
      }
      Indent(out, indent);
      *out += "]";
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < object_.size(); ++i) {
        Indent(out, indent + 2);
        EscapeString(object_[i].first, out);
        *out += ": ";
        object_[i].second.DumpTo(out, indent + 2);
        *out += i + 1 < object_.size() ? ",\n" : "\n";
      }
      Indent(out, indent);
      *out += "}";
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out += "\n";
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> Run() {
    auto v = ParseValue();
    if (!v.has_value()) {
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return v;
  }

 private:
  std::optional<JsonValue> Fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      auto s = ParseString();
      if (!s.has_value()) {
        return std::nullopt;
      }
      return JsonValue::Str(std::move(*s));
    }
    if (ConsumeLiteral("true")) {
      return JsonValue::Bool(true);
    }
    if (ConsumeLiteral("false")) {
      return JsonValue::Bool(false);
    }
    if (ConsumeLiteral("null")) {
      return JsonValue::Null();
    }
    return ParseNumber();
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) {
      Fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return std::nullopt;
          }
          const long cp = std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // ASCII only; anything beyond is replaced (the runner never emits
          // non-ASCII).
          out.push_back(cp > 0 && cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default:
          Fail("bad escape character");
          return std::nullopt;
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number '" + tok + "'");
    }
    return JsonValue::Number(v);
  }

  std::optional<JsonValue> ParseArray() {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) {
      return arr;
    }
    while (true) {
      auto v = ParseValue();
      if (!v.has_value()) {
        return std::nullopt;
      }
      arr.Append(std::move(*v));
      if (Consume(']')) {
        return arr;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']' in array");
      }
    }
  }

  std::optional<JsonValue> ParseObject() {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) {
      return obj;
    }
    while (true) {
      SkipWs();
      auto key = ParseString();
      if (!key.has_value()) {
        return std::nullopt;
      }
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      auto v = ParseValue();
      if (!v.has_value()) {
        return std::nullopt;
      }
      obj.Set(*key, std::move(*v));
      if (Consume('}')) {
        return obj;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}' in object");
      }
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::Parse(const std::string& text,
                                          std::string* error) {
  return Parser(text, error).Run();
}

}  // namespace oobp
