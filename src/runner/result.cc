#include "src/runner/result.h"

namespace oobp {

void ScenarioResult::Set(const std::string& key, double value) {
  for (MetricKv& kv : values) {
    if (kv.key == key) {
      kv.value = value;
      return;
    }
  }
  values.push_back({key, value});
}

void ScenarioResult::SetMetrics(const std::string& prefix,
                                const TrainMetrics& m) {
  for (const MetricKv& kv : MetricsToKv(m, prefix)) {
    Set(kv.key, kv.value);
  }
}

const double* ScenarioResult::Find(const std::string& key) const {
  for (const MetricKv& kv : values) {
    if (kv.key == key) {
      return &kv.value;
    }
  }
  return nullptr;
}

double ScenarioResult::Get(const std::string& key, double def) const {
  const double* v = Find(key);
  return v != nullptr ? *v : def;
}

}  // namespace oobp
