#include "src/runner/perf.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/runner/json.h"
#include "src/runner/registry.h"
#include "src/sim/engine.h"

namespace oobp {

namespace {

struct PerfRow {
  const Scenario* scenario = nullptr;
  double wall_best_ms = 0.0;
  double wall_mean_ms = 0.0;
  uint64_t events = 0;  // per single run
  double events_per_sec = 0.0;
  bool ok = true;
  std::string error;
};

bool MeasureScenario(const Scenario& scenario, const PerfOptions& opts,
                     PerfRow* row) {
  using Clock = std::chrono::steady_clock;
  row->scenario = &scenario;
  try {
    for (int i = 0; i < opts.warmup; ++i) {
      scenario.run(opts.params);
    }
    double best_s = -1.0;
    double sum_s = 0.0;
    for (int i = 0; i < opts.repeats; ++i) {
      const uint64_t events_before = SimEngine::TotalProcessedEvents();
      const auto start = Clock::now();
      scenario.run(opts.params);
      const double s =
          std::chrono::duration<double>(Clock::now() - start).count();
      row->events = SimEngine::TotalProcessedEvents() - events_before;
      sum_s += s;
      if (best_s < 0.0 || s < best_s) {
        best_s = s;
      }
    }
    row->wall_best_ms = best_s * 1e3;
    row->wall_mean_ms = sum_s / opts.repeats * 1e3;
    row->events_per_sec =
        best_s > 0.0 ? static_cast<double>(row->events) / best_s : 0.0;
    return true;
  } catch (const std::exception& e) {
    row->ok = false;
    row->error = e.what();
    return false;
  } catch (...) {
    row->ok = false;
    row->error = "unknown exception";
    return false;
  }
}

}  // namespace

int RunPerf(const PerfOptions& opts) {
  if (opts.warmup < 0 || opts.repeats < 1) {
    std::fprintf(stderr, "perf: need --warmup >= 0 and --repeats >= 1\n");
    return 2;
  }
  const std::vector<const Scenario*> matched =
      ScenarioRegistry::Global().Match(opts.filter);
  if (matched.empty()) {
    std::fprintf(stderr, "perf: no scenario matches filter '%s'\n",
                 opts.filter.c_str());
    return 2;
  }

  std::vector<PerfRow> rows(matched.size());
  int failures = 0;
  for (size_t i = 0; i < matched.size(); ++i) {
    if (!MeasureScenario(*matched[i], opts, &rows[i])) {
      ++failures;
    }
    if (opts.print) {
      const PerfRow& r = rows[i];
      if (r.ok) {
        std::printf("perf %-24s %8.2f ms best  %8.2f ms mean  %12llu events"
                    "  %10.0f ev/s\n",
                    r.scenario->name.c_str(), r.wall_best_ms, r.wall_mean_ms,
                    static_cast<unsigned long long>(r.events),
                    r.events_per_sec);
      } else {
        std::printf("perf %-24s FAILED: %s\n", r.scenario->name.c_str(),
                    r.error.c_str());
      }
    }
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("warmup", JsonValue::Number(opts.warmup));
  doc.Set("repeats", JsonValue::Number(opts.repeats));
  JsonValue scenarios = JsonValue::Object();
  double total_best_ms = 0.0;
  uint64_t total_events = 0;
  for (const PerfRow& r : rows) {
    if (!r.ok) {
      continue;
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("wall_ms_best", JsonValue::Number(r.wall_best_ms));
    entry.Set("wall_ms_mean", JsonValue::Number(r.wall_mean_ms));
    entry.Set("events", JsonValue::Number(static_cast<double>(r.events)));
    entry.Set("events_per_sec", JsonValue::Number(r.events_per_sec));
    scenarios.Set(r.scenario->name, std::move(entry));
    total_best_ms += r.wall_best_ms;
    total_events += r.events;
  }
  doc.Set("scenarios", std::move(scenarios));
  JsonValue total = JsonValue::Object();
  total.Set("wall_ms_best", JsonValue::Number(total_best_ms));
  total.Set("events", JsonValue::Number(static_cast<double>(total_events)));
  total.Set("events_per_sec",
            JsonValue::Number(total_best_ms > 0.0
                                  ? static_cast<double>(total_events) /
                                        (total_best_ms / 1e3)
                                  : 0.0));
  doc.Set("total", std::move(total));

  const std::string path = opts.output_dir + "/BENCH_sim_perf.json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "perf: cannot write %s\n", path.c_str());
    return 1;
  }
  out << doc.Dump();
  out.close();
  if (opts.print) {
    std::printf("perf: %zu scenario(s), %d failed; total %.2f ms, "
                "%llu events, %.0f ev/s -> %s\n",
                rows.size(), failures, total_best_ms,
                static_cast<unsigned long long>(total_events),
                total_best_ms > 0.0
                    ? static_cast<double>(total_events) / (total_best_ms / 1e3)
                    : 0.0,
                path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace oobp
