#include "src/runner/perf.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "src/common/str_util.h"
#include "src/runner/json.h"
#include "src/runner/registry.h"
#include "src/search/fast_eval.h"
#include "src/sim/engine.h"
#include "src/store/snapshot.h"

// Baked in by the root CMakeLists so the gate knows whether wall-clock
// bands are meaningful (Release) or noise (sanitizer / debug builds).
#ifndef OOBP_BUILD_TYPE
#define OOBP_BUILD_TYPE ""
#endif

namespace oobp {

namespace {

struct PerfRow {
  const Scenario* scenario = nullptr;
  double wall_best_ms = 0.0;
  double wall_mean_ms = 0.0;
  uint64_t events = 0;  // per single run
  double events_per_sec = 0.0;
  uint64_t analytic_evals = 0;  // per single run; 0 off the search fast path
  double analytic_per_sec = 0.0;
  bool ok = true;
  std::string error;
};

bool MeasureScenario(const Scenario& scenario, const PerfOptions& opts,
                     PerfRow* row) {
  using Clock = std::chrono::steady_clock;
  row->scenario = &scenario;
  try {
    for (int i = 0; i < opts.warmup; ++i) {
      scenario.run(opts.params);
    }
    double best_s = -1.0;
    double sum_s = 0.0;
    for (int i = 0; i < opts.repeats; ++i) {
      const uint64_t events_before = SimEngine::TotalProcessedEvents();
      const uint64_t analytic_before =
          FastScheduleEvaluator::TotalAnalyticEvals();
      const auto start = Clock::now();
      scenario.run(opts.params);
      const double s =
          std::chrono::duration<double>(Clock::now() - start).count();
      row->events = SimEngine::TotalProcessedEvents() - events_before;
      row->analytic_evals =
          FastScheduleEvaluator::TotalAnalyticEvals() - analytic_before;
      sum_s += s;
      if (best_s < 0.0 || s < best_s) {
        best_s = s;
      }
    }
    row->wall_best_ms = best_s * 1e3;
    row->wall_mean_ms = sum_s / opts.repeats * 1e3;
    row->events_per_sec =
        best_s > 0.0 ? static_cast<double>(row->events) / best_s : 0.0;
    row->analytic_per_sec =
        best_s > 0.0 ? static_cast<double>(row->analytic_evals) / best_s
                     : 0.0;
    return true;
  } catch (const std::exception& e) {
    row->ok = false;
    row->error = e.what();
    return false;
  } catch (...) {
    row->ok = false;
    row->error = "unknown exception";
    return false;
  }
}

}  // namespace

PerfCheckReport CheckPerfBaseline(const std::string& baseline_json,
                                  const std::vector<PerfSample>& measured,
                                  bool wall_bands) {
  PerfCheckReport report;
  std::string error;
  const std::optional<JsonValue> doc = JsonValue::Parse(baseline_json, &error);
  if (!doc.has_value() || !doc->is_object()) {
    report.failures.push_back("perf baseline unparsable: " +
                              (error.empty() ? "not an object" : error));
    return report;
  }
  double band = 0.5;
  if (const JsonValue* b = doc->Find("wall_band_frac");
      b != nullptr && b->is_number()) {
    band = b->number_value();
  }
  const JsonValue* scenarios = doc->Find("scenarios");
  if (scenarios == nullptr || !scenarios->is_object()) {
    report.failures.push_back("perf baseline has no 'scenarios' object");
    return report;
  }

  std::map<std::string, bool> seen;
  for (const auto& [name, entry] : scenarios->object_items()) {
    seen[name] = false;
  }
  for (const PerfSample& m : measured) {
    const JsonValue* entry = scenarios->Find(m.scenario);
    if (entry == nullptr || !entry->is_object()) {
      report.notices.push_back(StrFormat(
          "%s: not in baseline (%llu events) — re-seed perf_baseline.json",
          m.scenario.c_str(), static_cast<unsigned long long>(m.events)));
      continue;
    }
    seen[m.scenario] = true;
    const JsonValue* events = entry->Find("events");
    if (events == nullptr || !events->is_number()) {
      report.failures.push_back(m.scenario + ": baseline entry has no event "
                                "count");
      continue;
    }
    const uint64_t expect = static_cast<uint64_t>(events->number_value());
    if (m.events > expect) {
      // Event counts are deterministic; growth means every simulation of
      // this scenario now does strictly more work.
      report.failures.push_back(StrFormat(
          "%s: event count inflated %llu -> %llu (+%.1f%%)",
          m.scenario.c_str(), static_cast<unsigned long long>(expect),
          static_cast<unsigned long long>(m.events),
          100.0 * (static_cast<double>(m.events) - static_cast<double>(expect)) /
              static_cast<double>(expect)));
    } else if (m.events < expect) {
      report.notices.push_back(StrFormat(
          "%s: event count improved %llu -> %llu — re-seed "
          "perf_baseline.json to lock it in",
          m.scenario.c_str(), static_cast<unsigned long long>(expect),
          static_cast<unsigned long long>(m.events)));
    }
    // Analytic-evaluator gates (search fast path). The count is
    // bit-deterministic, so any drift from the baseline hard-fails in both
    // directions — fewer analytic evals is not an improvement, it means the
    // search explored different candidates. The throughput floor is the
    // evals/sec contract of the two-tier pipeline; wall-clock dependent, so
    // only Release builds (wall_bands) enforce it.
    if (const JsonValue* analytic = entry->Find("analytic_evals");
        analytic != nullptr && analytic->is_number()) {
      const uint64_t expect_evals =
          static_cast<uint64_t>(analytic->number_value());
      if (m.analytic_evals != expect_evals) {
        report.failures.push_back(StrFormat(
            "%s: analytic eval count drifted %llu -> %llu (deterministic; "
            "re-derive the baseline only with a deliberate search change)",
            m.scenario.c_str(), static_cast<unsigned long long>(expect_evals),
            static_cast<unsigned long long>(m.analytic_evals)));
      }
    }
    if (const JsonValue* floor = entry->Find("analytic_per_sec_floor");
        wall_bands && floor != nullptr && floor->is_number() &&
        floor->number_value() > 0.0 &&
        m.analytic_per_sec < floor->number_value()) {
      report.failures.push_back(StrFormat(
          "%s: analytic evaluator throughput %.0f evals/s below the floor "
          "%.0f evals/s",
          m.scenario.c_str(), m.analytic_per_sec, floor->number_value()));
    }
    const JsonValue* wall = entry->Find("wall_ms_best");
    if (wall_bands && wall != nullptr && wall->is_number() &&
        wall->number_value() > 0.0 &&
        m.wall_ms_best > wall->number_value() * (1.0 + band)) {
      report.notices.push_back(StrFormat(
          "%s: wall %.2f ms vs baseline %.2f ms (band +%.0f%%) — "
          "informational",
          m.scenario.c_str(), m.wall_ms_best, wall->number_value(),
          100.0 * band));
    }
  }
  for (const auto& [name, was_measured] : seen) {
    if (!was_measured) {
      report.notices.push_back(name +
                               ": in baseline but not measured by this run");
    }
  }
  return report;
}

int RunPerf(const PerfOptions& opts) {
  if (opts.warmup < 0 || opts.repeats < 1) {
    std::fprintf(stderr, "perf: need --warmup >= 0 and --repeats >= 1\n");
    return 2;
  }
  const std::vector<const Scenario*> matched =
      ScenarioRegistry::Global().Match(opts.filter);
  if (matched.empty()) {
    std::fprintf(stderr, "perf: no scenario matches filter '%s'\n",
                 opts.filter.c_str());
    return 2;
  }

  std::vector<PerfRow> rows(matched.size());
  int failures = 0;
  for (size_t i = 0; i < matched.size(); ++i) {
    if (!MeasureScenario(*matched[i], opts, &rows[i])) {
      ++failures;
    }
    if (opts.print) {
      const PerfRow& r = rows[i];
      if (r.ok) {
        std::printf("perf %-24s %8.2f ms best  %8.2f ms mean  %12llu events"
                    "  %10.0f ev/s\n",
                    r.scenario->name.c_str(), r.wall_best_ms, r.wall_mean_ms,
                    static_cast<unsigned long long>(r.events),
                    r.events_per_sec);
        if (r.analytic_evals > 0) {
          std::printf("perf %-24s %38llu analytic evals  %10.0f evals/s\n",
                      "", static_cast<unsigned long long>(r.analytic_evals),
                      r.analytic_per_sec);
        }
      } else {
        std::printf("perf %-24s FAILED: %s\n", r.scenario->name.c_str(),
                    r.error.c_str());
      }
    }
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("warmup", JsonValue::Number(opts.warmup));
  doc.Set("repeats", JsonValue::Number(opts.repeats));
  JsonValue scenarios = JsonValue::Object();
  double total_best_ms = 0.0;
  uint64_t total_events = 0;
  for (const PerfRow& r : rows) {
    if (!r.ok) {
      continue;
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("wall_ms_best", JsonValue::Number(r.wall_best_ms));
    entry.Set("wall_ms_mean", JsonValue::Number(r.wall_mean_ms));
    entry.Set("events", JsonValue::Number(static_cast<double>(r.events)));
    entry.Set("events_per_sec", JsonValue::Number(r.events_per_sec));
    if (r.analytic_evals > 0) {
      entry.Set("analytic_evals",
                JsonValue::Number(static_cast<double>(r.analytic_evals)));
      entry.Set("analytic_per_sec", JsonValue::Number(r.analytic_per_sec));
    }
    scenarios.Set(r.scenario->name, std::move(entry));
    total_best_ms += r.wall_best_ms;
    total_events += r.events;
  }
  doc.Set("scenarios", std::move(scenarios));
  JsonValue total = JsonValue::Object();
  total.Set("wall_ms_best", JsonValue::Number(total_best_ms));
  total.Set("events", JsonValue::Number(static_cast<double>(total_events)));
  total.Set("events_per_sec",
            JsonValue::Number(total_best_ms > 0.0
                                  ? static_cast<double>(total_events) /
                                        (total_best_ms / 1e3)
                                  : 0.0));
  doc.Set("total", std::move(total));
  // Host metadata so archived perf JSONs are comparable: wall-clock numbers
  // only mean something relative to the machine and build that produced them.
  JsonValue host = JsonValue::Object();
  host.Set("hardware_concurrency",
           JsonValue::Number(static_cast<double>(
               std::thread::hardware_concurrency())));
  host.Set("compiler", JsonValue::Str(__VERSION__));
  host.Set("build_type", JsonValue::Str(OOBP_BUILD_TYPE));
  doc.Set("host", std::move(host));

  const std::string path = opts.output_dir + "/BENCH_sim_perf.json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "perf: cannot write %s\n", path.c_str());
    return 1;
  }
  out << doc.Dump();
  out.close();
  if (opts.print) {
    std::printf("perf: %zu scenario(s), %d failed; total %.2f ms, "
                "%llu events, %.0f ev/s -> %s\n",
                rows.size(), failures, total_best_ms,
                static_cast<unsigned long long>(total_events),
                total_best_ms > 0.0
                    ? static_cast<double>(total_events) / (total_best_ms / 1e3)
                    : 0.0,
                path.c_str());
  }

  if (opts.check) {
    // Baseline source: an active snapshot carries the exact bytes of
    // bench/perf_baseline.json from build time, so the gate runs without
    // touching the repo checkout; otherwise read the file as before.
    std::string baseline_source = opts.baseline_path;
    std::ostringstream baseline;
    if (const std::shared_ptr<const SnapshotReader> reader = ActiveSnapshot();
        reader != nullptr && !reader->perf_baseline().empty()) {
      baseline << reader->perf_baseline();
      baseline_source = "snapshot";
    } else {
      std::ifstream in(opts.baseline_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "perf: cannot read baseline %s\n",
                     opts.baseline_path.c_str());
        return 1;
      }
      baseline << in.rdbuf();
    }
    std::vector<PerfSample> samples;
    for (const PerfRow& r : rows) {
      if (r.ok) {
        samples.push_back({r.scenario->name, r.events, r.wall_best_ms,
                           r.analytic_evals, r.analytic_per_sec});
      }
    }
    const bool wall_bands = std::string(OOBP_BUILD_TYPE) == "Release";
    const PerfCheckReport report =
        CheckPerfBaseline(baseline.str(), samples, wall_bands);
    for (const std::string& n : report.notices) {
      std::printf("perf-check NOTICE  %s\n", n.c_str());
    }
    for (const std::string& f : report.failures) {
      std::printf("perf-check FAIL    %s\n", f.c_str());
    }
    std::printf("perf-check: %zu failure(s), %zu notice(s) vs %s "
                "(wall bands %s)\n",
                report.failures.size(), report.notices.size(),
                baseline_source.c_str(), wall_bands ? "on" : "off");
    if (!report.ok()) {
      return 1;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace oobp
