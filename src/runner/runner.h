// Parallel scenario runner.
//
// Executes every registered scenario matching a glob across a std::thread
// pool. Simulations are deterministic and share no state, so the full suite
// is embarrassingly parallel; results are collected into registration-order
// slots, which makes the emitted JSON byte-identical whatever --jobs is.
//
// CLI (wired as `oobp bench`, also behind the thin bench/ wrappers):
//
//   oobp bench --list
//   oobp bench --filter='fig0[456]*' --jobs=8
//   oobp bench --filter='fig10_*' --out=results --golden=bench/golden
//   oobp bench --param k=3 --param batch=64
//
// Each scenario writes `<out>/BENCH_<scenario>.json`; --golden compares
// results against `<golden>/<scenario>.json` tolerance files and the exit
// code reports any scenario error or golden mismatch.

#ifndef OOBP_SRC_RUNNER_RUNNER_H_
#define OOBP_SRC_RUNNER_RUNNER_H_

#include <string>
#include <vector>

#include "src/runner/golden.h"
#include "src/runner/registry.h"
#include "src/runner/result.h"

namespace oobp {

struct RunnerOptions {
  std::string filter = "*";
  int jobs = 1;             // <= 0 selects std::thread::hardware_concurrency
  std::string output_dir;   // empty: do not write BENCH_*.json files
  std::string golden_dir;   // empty: skip golden comparison
  ScenarioParams params;    // forwarded to every scenario
  bool print = true;        // human-readable report on stdout
};

struct ScenarioRun {
  const Scenario* scenario = nullptr;
  ScenarioResult result;
  std::string json;  // deterministic serialization of `result`
  bool ok = true;    // scenario body completed
  std::string error;
  bool golden_compared = false;
  std::vector<std::string> golden_failures;
  double wall_seconds = 0.0;  // host time; reporting only, never serialized
};

struct RunnerReport {
  std::vector<ScenarioRun> runs;  // registration order
  int num_scenario_failures = 0;
  int num_golden_failures = 0;
  bool ok() const {
    return num_scenario_failures == 0 && num_golden_failures == 0;
  }
};

// Serializes one scenario's result (stable field and key order).
std::string ScenarioJson(const Scenario& scenario, const ScenarioResult& result);

// Runs all scenarios matching opts.filter on a thread pool of opts.jobs.
RunnerReport RunScenarios(const RunnerOptions& opts);

// `oobp bench` entry point; parses flags (any leading non-flag tokens such
// as the binary name and the "bench" subcommand are skipped), registers the
// paper scenarios, and returns a process exit code.
int BenchMain(int argc, char** argv);

// Serial convenience used by the thin bench/ figure wrappers: registers the
// paper scenarios, runs `filter`, prints, writes no files. Returns exit code.
int RunStandaloneBench(const std::string& filter);

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_RUNNER_H_
