#include "src/runner/registry.h"

#include <cstdlib>

#include "src/common/check.h"
#include "src/runner/glob.h"

namespace oobp {

std::string ScenarioParams::GetString(const std::string& key,
                                      const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int ScenarioParams::GetInt(const std::string& key, int def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::atoi(it->second.c_str());
}

double ScenarioParams::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::atof(it->second.c_str());
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

void ScenarioRegistry::Register(Scenario scenario) {
  OOBP_CHECK(!scenario.name.empty());
  OOBP_CHECK(scenario.run != nullptr) << scenario.name;
  OOBP_CHECK(Find(scenario.name) == nullptr)
      << "duplicate scenario '" << scenario.name << "'";
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::Match(
    const std::string& glob) const {
  std::vector<const Scenario*> out;
  for (const Scenario& s : scenarios_) {
    if (MatchAnyGlob(glob, s.name)) {
      out.push_back(&s);
    }
  }
  return out;
}

}  // namespace oobp
