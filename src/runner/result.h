// Scenario results: an ordered, serializable key/value map produced by each
// registered experiment, alongside the TrainMetrics of its headline runs.
//
// Keys are flat dotted strings (`"c.throughput"`, `"speedup_c_over_a"`).
// Order is insertion order and is part of the serialized form, so a
// scenario's JSON is byte-stable across runs and across --jobs settings.

#ifndef OOBP_SRC_RUNNER_RESULT_H_
#define OOBP_SRC_RUNNER_RESULT_H_

#include <string>
#include <utility>
#include <vector>

#include "src/runtime/metrics.h"

namespace oobp {

struct ScenarioResult {
  // Ordered measurement map; the scenario's machine-readable payload.
  std::vector<MetricKv> values;
  // Free-form annotations carried into the JSON (model names, configs).
  std::vector<std::string> notes;

  // Appends, or overwrites in place when the key already exists.
  void Set(const std::string& key, double value);
  // Records all TrainMetrics fields under `prefix` (e.g. "a.iteration_ms").
  void SetMetrics(const std::string& prefix, const TrainMetrics& m);
  void AddNote(std::string note) { notes.push_back(std::move(note)); }

  // nullptr when absent.
  const double* Find(const std::string& key) const;
  double Get(const std::string& key, double def = 0.0) const;
};

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_RESULT_H_
