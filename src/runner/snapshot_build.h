// `oobp snapshot` CLI: build / info / verify / startup.
//
//   oobp snapshot build   [--out=PATH] [--golden=DIR] [--baseline=PATH]
//   oobp snapshot info    [--path=PATH]
//   oobp snapshot verify  [--path=PATH]
//   oobp snapshot startup [--path=PATH] [--filter=GLOB] [--out=DIR]
//
// `build` replays every scenario that has a golden file with snapshot
// recording on, then serializes the collected model zoo, cost-model points,
// precomputed schedules, golden specs, and the raw perf baseline into the
// artifact (default bench/oobp.snapshot). The build is bit-deterministic:
// same binary + same repo state → identical bytes.
//
// `verify` exit codes: 0 = valid and fresh, 1 = corrupt/unreadable,
// 2 = valid but stale (built for a different scenario registry).
//
// `startup` measures the headline win: time from process start to the first
// simulated event for a --filter sweep, cold (in-process model/schedule
// construction) vs warm (snapshot active), and writes BENCH_startup.json.

#ifndef OOBP_SRC_RUNNER_SNAPSHOT_BUILD_H_
#define OOBP_SRC_RUNNER_SNAPSHOT_BUILD_H_

#include <cstdint>

namespace oobp {

// Identity of the running binary's scenario registry: the snapshot schema
// version plus every registered scenario's (name, label) in registration
// order. A snapshot records the builder's value; a mismatch at activation
// means the snapshot was built for a different scenario set and is stale.
// Scenarios must be registered before calling.
uint64_t ComputeScenarioRegistryHash();

// `oobp snapshot ...` entry point (argv[1] == "snapshot"). Registers the
// scenario families itself. Returns a process exit code.
int SnapshotMain(int argc, char** argv);

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_SNAPSHOT_BUILD_H_
