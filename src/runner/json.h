// Minimal JSON reader/writer for the scenario runner.
//
// The runner emits BENCH_<scenario>.json result files and reads checked-in
// golden-value files; both use a small JSON subset (objects, arrays,
// numbers, strings, booleans, null). Object key order is preserved and the
// number formatter is deterministic, so two runs that compute identical
// values serialize to byte-identical files — the property the parallel
// runner and the determinism tests rely on.

#ifndef OOBP_SRC_RUNNER_JSON_H_
#define OOBP_SRC_RUNNER_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace oobp {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  std::vector<JsonValue>* mutable_array() { return &array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  // Object access; Find returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  void Set(const std::string& key, JsonValue value);  // appends or replaces
  void Append(JsonValue value) { array_.push_back(std::move(value)); }

  // Serializes with 2-space indentation and a deterministic number format
  // (integers without a decimal point, otherwise shortest round-trip via
  // "%.12g").
  std::string Dump() const;

  // Strict parse of a complete document; returns nullopt and fills *error
  // (when non-null) on malformed input.
  static std::optional<JsonValue> Parse(const std::string& text,
                                        std::string* error = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  void DumpTo(std::string* out, int indent) const;
};

// Deterministic formatting for a JSON number (shared with tests).
std::string JsonNumberToString(double v);

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_JSON_H_
