#include "src/runner/serve_scenarios.h"

#include <cmath>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/str_util.h"
#include "src/core/joint_scheduler.h"
#include "src/core/schedule.h"
#include "src/nn/model_cache.h"
#include "src/nn/model_zoo.h"
#include "src/runner/registry.h"
#include "src/runtime/single_gpu_engine.h"
#include "src/serve/serve_engine.h"
#include "src/store/snapshot.h"

namespace oobp {
namespace {

// One load point of a serving sweep.
struct LoadPoint {
  int rps;
  ArrivalKind kind;
};

std::string PointPrefix(const LoadPoint& p) {
  return StrFormat(p.kind == ArrivalKind::kBursty ? "burst%d." : "rps%d.",
                   p.rps);
}

struct ServeFamilySpec {
  std::function<NnModel(int)> make_infer;  // inference model at batch b
  std::vector<LoadPoint> loads;            // sweep, in increasing-rate order
  double slo_ms;
  // Training co-run; null make_train = serve-only. Returns a cache-shared
  // model so the zoo entry (and snapshot record) is built once per process.
  std::function<std::shared_ptr<const NnModel>()> make_train;
  bool ooo = false;  // joint (ooo) schedule vs conventional in-order
  // Longer default horizon for co-run families: requests are sparser there
  // and the percentiles need a few dozen samples per load point.
  double horizon_ms = 250.0;
};

ScenarioResult RunServeFamily(const ScenarioParams& params,
                              const ServeFamilySpec& spec) {
  ScenarioResult result;
  const GpuSpec gpu = GpuSpec::V100();
  const SystemProfile xla = SystemProfile::TensorFlowXla();

  ServeConfig base;
  base.gpu = gpu;
  base.profile = xla;
  base.horizon = Ms(params.GetDouble("horizon_ms", spec.horizon_ms));
  base.slo = Ms(params.GetDouble("slo_ms", spec.slo_ms));
  base.batcher.max_batch = params.GetInt("max_batch", 8);
  base.batcher.max_queue_delay =
      Ms(params.GetDouble("max_queue_delay_ms", 1.0));
  base.batcher.max_inflight = params.GetInt("max_inflight", 1);
  base.make_model = spec.make_infer;

  // Training side: pick the schedule, measure it solo (no inference), and
  // size the co-run iteration count so training covers the serving horizon
  // with margin — requests must face contention for the whole sweep.
  std::shared_ptr<const NnModel> train_model;
  IterationSchedule train_schedule;
  int train_iterations = 0;
  TimeNs solo_iter = 0;
  if (spec.make_train) {
    train_model = spec.make_train();
    const TrainGraph graph(train_model.get());
    train_schedule = spec.ooo ? SnapshotOooSchedule(graph, gpu, xla).schedule
                              : ConventionalIteration(graph);
    const TrainMetrics solo =
        SingleGpuEngine({gpu, xla, /*precompiled_issue=*/true})
            .Run(*train_model, train_schedule);
    result.SetMetrics("solo.", solo);
    solo_iter = solo.iteration_time;
    const int cover = static_cast<int>(
        std::ceil(static_cast<double>(base.horizon) /
                  static_cast<double>(solo.iteration_time)));
    train_iterations = std::max(3, cover + 2);
    result.AddNote(StrFormat("train %s, %d iterations (%s schedule)",
                             train_model->name.c_str(), train_iterations,
                             spec.ooo ? "ooo" : "in-order"));
  }
  result.AddNote(StrFormat("serve %s, slo %.1f ms, horizon %.0f ms, "
                           "max_batch %d",
                           spec.make_infer(1).name.c_str(), ToMs(base.slo),
                           ToMs(base.horizon), base.batcher.max_batch));

  std::vector<double> poisson_p50, poisson_p99;
  for (const LoadPoint& point : spec.loads) {
    ServeConfig cfg = base;
    cfg.arrivals.kind = point.kind;
    cfg.arrivals.rate_rps = point.rps;
    // Per-point seed: distinct deterministic traces across the sweep.
    cfg.arrivals.seed = 0x5EEDull * 1000003ull +
                        static_cast<uint64_t>(point.rps) * 2ull +
                        (point.kind == ArrivalKind::kBursty ? 1ull : 0ull);
    const ServeEngine engine(std::move(cfg));

    const std::string prefix = PointPrefix(point);
    ServeMetrics sm;
    if (spec.make_train) {
      const ServeCorunResult r =
          engine.RunCorun(*train_model, train_schedule, train_iterations);
      sm = r.serve;
      result.SetMetrics(prefix + "train.", r.train);
      result.Set(prefix + "train_overhead",
                 static_cast<double>(r.train.iteration_time) /
                     static_cast<double>(solo_iter));
    } else {
      sm = engine.RunServeOnly();
    }
    for (const MetricKv& kv : ServeMetricsToKv(sm, prefix)) {
      result.values.push_back(kv);
    }
    if (point.kind == ArrivalKind::kPoisson) {
      poisson_p50.push_back(ToMs(sm.p50_latency));
      poisson_p99.push_back(ToMs(sm.p99_latency));
    }
  }

  // Sanity indicators pinned by the golden files: latency percentiles must
  // not decrease as offered load increases (within the Poisson sweep).
  const auto monotonic = [](const std::vector<double>& xs) {
    for (size_t i = 1; i < xs.size(); ++i) {
      if (xs[i] < xs[i - 1]) {
        return 0.0;
      }
    }
    return 1.0;
  };
  result.Set("p50_monotonic", monotonic(poisson_p50));
  result.Set("p99_monotonic", monotonic(poisson_p99));
  return result;
}

void RegisterFamily(ScenarioRegistry& reg, const char* name,
                    const char* description, ServeFamilySpec spec) {
  reg.Register({name, "Serving", description,
                [spec = std::move(spec)](const ScenarioParams& params) {
                  return RunServeFamily(params, spec);
                },
                "serve"});
}

}  // namespace

void RegisterServeScenarios() {
  static std::once_flag once;
  std::call_once(once, [] {
    ScenarioRegistry& reg = ScenarioRegistry::Global();

    const auto infer_mobilenet = [](int b) {
      return MobileNetV3Large(1.0, b, 224);
    };
    const auto infer_resnet50 = [](int b) { return ResNet(50, b, 224); };

    // Serve-only load points sit in the contended regime (the device is a
    // meaningful fraction busy), so queueing — not the batching deadline —
    // dominates and percentiles grow with offered load.
    RegisterFamily(reg, "serve_only_mobilenet",
                   "MobileNetV3 inference alone: load sweep + bursty trace",
                   {infer_mobilenet,
                    {{5000, ArrivalKind::kPoisson},
                     {8000, ArrivalKind::kPoisson},
                     {12000, ArrivalKind::kPoisson},
                     {8000, ArrivalKind::kBursty}},
                    /*slo_ms=*/20.0,
                    /*make_train=*/nullptr});
    RegisterFamily(reg, "serve_only_resnet50",
                   "ResNet-50 inference alone: load sweep + bursty trace",
                   {infer_resnet50,
                    {{200, ArrivalKind::kPoisson},
                     {400, ArrivalKind::kPoisson},
                     {800, ArrivalKind::kPoisson},
                     {400, ArrivalKind::kBursty}},
                    /*slo_ms=*/40.0,
                    /*make_train=*/nullptr});

    const auto train_resnet50 = [] {
      return CachedModel("resnet:L50:B32", [] { return ResNet(50, 32, 224); });
    };
    RegisterFamily(reg, "serve_corun_baseline_resnet50",
                   "ResNet-50 inference + in-order ResNet-50 training",
                   {infer_resnet50,
                    {{50, ArrivalKind::kPoisson}, {90, ArrivalKind::kPoisson}},
                    /*slo_ms=*/40.0, train_resnet50, /*ooo=*/false,
                    /*horizon_ms=*/2000.0});
    RegisterFamily(reg, "serve_corun_ooo_resnet50",
                   "ResNet-50 inference + ooo-backprop ResNet-50 training",
                   {infer_resnet50,
                    {{50, ArrivalKind::kPoisson}, {90, ArrivalKind::kPoisson}},
                    /*slo_ms=*/40.0, train_resnet50, /*ooo=*/true,
                    /*horizon_ms=*/2000.0});

    const auto train_densenet = [] {
      return CachedModel("densenet:L121:k24:B32:I224",
                         [] { return DenseNet(121, 24, 32, 224); });
    };
    RegisterFamily(reg, "serve_corun_baseline_densenet121",
                   "ResNet-50 inference + in-order DenseNet-121 training",
                   {infer_resnet50,
                    {{50, ArrivalKind::kPoisson}, {120, ArrivalKind::kPoisson}},
                    /*slo_ms=*/40.0, train_densenet, /*ooo=*/false,
                    /*horizon_ms=*/2000.0});
    RegisterFamily(reg, "serve_corun_ooo_densenet121",
                   "ResNet-50 inference + ooo-backprop DenseNet-121 training",
                   {infer_resnet50,
                    {{50, ArrivalKind::kPoisson}, {120, ArrivalKind::kPoisson}},
                    /*slo_ms=*/40.0, train_densenet, /*ooo=*/true,
                    /*horizon_ms=*/2000.0});
  });
}

}  // namespace oobp
