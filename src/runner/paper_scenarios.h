// Registration of the paper's figure experiments as runner scenarios.
//
// The former standalone bench binaries for Figures 4, 5, 6, 7 and 10 are
// thin wrappers over these registrations; `oobp bench` runs any subset of
// them. Heavyweight figures are split into several scenarios (Figure 7 per
// model, Figure 10 per cluster) so the thread pool can spread them.

#ifndef OOBP_SRC_RUNNER_PAPER_SCENARIOS_H_
#define OOBP_SRC_RUNNER_PAPER_SCENARIOS_H_

namespace oobp {

// Registers all paper scenarios into ScenarioRegistry::Global(); idempotent
// (safe to call from multiple entry points).
void RegisterPaperScenarios();

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_PAPER_SCENARIOS_H_
