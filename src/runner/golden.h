// Golden-value comparison: checked-in expected values with tolerances that
// guard the paper's headline numbers against regression.
//
// A golden file is JSON named `<scenario>.json` inside the --golden
// directory:
//
//   {
//     "scenario": "fig05_mp_unit",
//     "checks": [
//       {"key": "unit_a", "expect": 23, "abs_tol": 0.05},
//       {"key": "speedup_c", "expect": 1.32, "rel_tol": 0.05},
//       {"key": "b.throughput", "min": 1000.0, "max": 40000.0}
//     ]
//   }
//
// A check may pin a value (`expect` with `rel_tol` and/or `abs_tol`; both
// default to 0 = exact) or bound it (`min` / `max`, inclusive). A key
// missing from the scenario's result always fails.

#ifndef OOBP_SRC_RUNNER_GOLDEN_H_
#define OOBP_SRC_RUNNER_GOLDEN_H_

#include <optional>
#include <string>
#include <vector>

#include "src/runner/result.h"

namespace oobp {

struct GoldenCheck {
  std::string key;
  bool has_expect = false;
  double expect = 0.0;
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  bool has_min = false;
  double min = 0.0;
  bool has_max = false;
  double max = 0.0;
};

struct GoldenSpec {
  std::string scenario;
  std::vector<GoldenCheck> checks;
};

// `<dir>/<scenario>.json`.
std::string GoldenPathFor(const std::string& dir, const std::string& scenario);

// Parses a golden file; nullopt (with *error filled) on I/O or parse
// failure. A check entry with neither expect nor min/max is a parse error.
std::optional<GoldenSpec> LoadGoldenFile(const std::string& path,
                                         std::string* error = nullptr);

// Snapshot-aware load: when a snapshot is active and holds this scenario's
// golden, the spec is materialized from the mapping (values are the raw
// double bits of the original JSON parse, so comparisons are bit-identical);
// otherwise `<dir>/<scenario>.json` is parsed as before.
std::optional<GoldenSpec> LoadGoldenSpec(const std::string& dir,
                                         const std::string& scenario,
                                         std::string* error = nullptr);

// Evaluates one check; true = pass.
bool GoldenCheckPasses(const GoldenCheck& check, double value);

// All failing checks as human-readable messages; empty vector = pass.
std::vector<std::string> CheckAgainstGolden(const GoldenSpec& spec,
                                            const ScenarioResult& result);

}  // namespace oobp

#endif  // OOBP_SRC_RUNNER_GOLDEN_H_
