#include "src/runner/paper_scenarios.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/str_util.h"
#include "src/core/corun_profiler.h"
#include "src/core/joint_scheduler.h"
#include "src/core/k_search.h"
#include "src/core/memory_model.h"
#include "src/core/region.h"
#include "src/core/reverse_k.h"
#include "src/core/schedule.h"
#include "src/nn/model_cache.h"
#include "src/nn/model_zoo.h"
#include "src/runner/registry.h"
#include "src/store/snapshot.h"
#include "src/runtime/data_parallel_engine.h"
#include "src/runtime/pipeline_engine.h"
#include "src/runtime/single_gpu_engine.h"

namespace oobp {
namespace {

// ---------------------------------------------------------------------------
// Figure 4: data-parallel schedules on a uniform toy model — (a) conventional
// wait-free backprop + FIFO comm, (b) prioritized comm, (c) + reordered
// computation (reverse first-k). Reported both under the analytic cost model
// (ms) and in the paper's unit-time mode.

ScenarioResult Fig04DpUnit(const ScenarioParams& params) {
  ScenarioResult result;
  const int k = params.GetInt("k", 3);  // the paper reverses 3 of 5 layers
  const std::shared_ptr<const NnModel> model_ptr =
      CachedModel("ffnn:L5:B512:H8192", [] { return Ffnn(5, 512, 8192); });
  const NnModel& model = *model_ptr;
  const TrainGraph graph(&model);
  result.AddNote(StrFormat("model %s, 8 GPUs, reverse first k=%d",
                           model.name.c_str(), k));

  DataParallelConfig config;
  // A single NVLink node keeps per-layer sync comparable to per-layer
  // gradient compute, matching the figure's unit-time proportions.
  config.cluster = ClusterSpec::PubB(1);
  config.num_gpus = 8;
  config.commit_window_bytes = 96LL << 20;

  auto run_three = [&](const DataParallelConfig& base, const char* suffix,
                       TimeNs unit) {
    // (a) FIFO: Horovod with immediate per-tensor flush (no batching delay).
    DataParallelConfig fifo = base;
    fifo.scheme = CommScheme::kHorovod;
    fifo.fusion_cycle = 1;
    fifo.fusion_buffer_bytes = 1;
    const TrainMetrics a =
        DataParallelEngine(fifo).Run(model, graph.ConventionalBackprop());

    // (b) prioritized communication (BytePS), conventional order.
    DataParallelConfig prio = base;
    prio.scheme = CommScheme::kBytePS;
    const DataParallelEngine byteps(prio);
    const TrainMetrics b = byteps.Run(model, graph.ConventionalBackprop());

    // (c) + reordered computation.
    const TrainMetrics c = byteps.Run(model, ReverseFirstK(graph, k).order);

    if (unit > 0) {
      result.Set(StrFormat("unit_a%s", suffix),
                 static_cast<double>(a.iteration_time) / unit);
      result.Set(StrFormat("unit_b%s", suffix),
                 static_cast<double>(b.iteration_time) / unit);
      result.Set(StrFormat("unit_c%s", suffix),
                 static_cast<double>(c.iteration_time) / unit);
    } else {
      result.SetMetrics("a.", a);
      result.SetMetrics("b.", b);
      result.SetMetrics("c.", c);
    }
    result.Set(StrFormat("speedup_c_over_a%s", suffix),
               c.throughput / a.throughput);
    result.Set(StrFormat("speedup_c_over_b%s", suffix),
               c.throughput / b.throughput);
  };

  run_three(config, "", 0);

  // Unit-time toy: every op is one unit, per-layer sync `sync_units` units,
  // and the commit window admits a single message so priorities can act.
  DataParallelConfig unit_config = config;
  unit_config.unit_time = Ms(1);
  // Three sync units per layer congest the channel enough that FIFO ordering
  // hurts (a) and the reordered schedule (c) wins: 22 / 21 / 20 units, the
  // paper's strict (a) > (b) > (c) ordering.
  unit_config.unit_sync_units = params.GetDouble("unit_sync_units", 3.0);
  unit_config.commit_window_bytes = 1 << 20;
  run_three(unit_config, "_unit", unit_config.unit_time);
  return result;
}

// ---------------------------------------------------------------------------
// Figures 5 and 6: the 8-layer / 2-GPU toy — cross-layer model parallelism
// (M = 1, Figure 5) and pipeline parallelism with two micro-batches
// (Figure 6). (a) conventional / GPipe, (b) + gradient fast-forwarding,
// (c) + modulo allocation. Unit-time mode pins the paper's exact makespans
// (Figure 5: 23 / 19 / 16 units).

ScenarioResult PipeToy(int micro_batches, int batch) {
  ScenarioResult result;
  const std::shared_ptr<const NnModel> model_ptr =
      CachedModel(StrFormat("ffnn:L8:B%d:H4096", batch),
                  [batch] { return Ffnn(8, batch, 4096); });
  const NnModel& model = *model_ptr;
  result.AddNote(StrFormat("model %s, 2 GPUs, %d micro-batch(es)",
                           model.name.c_str(), micro_batches));

  PipelineConfig config;
  config.cluster = ClusterSpec::PubB(1);
  config.num_gpus = 2;
  config.num_micro_batches = micro_batches;
  config.use_link_override = true;
  config.link_override = {"ideal", 10000.0, 0};

  const PipelineEngine engine(config);
  const PipelineResult a = engine.Run(model, PipelineStrategy::kGPipe);
  const PipelineResult b = engine.Run(model, PipelineStrategy::kOooPipe1);
  const PipelineResult c = engine.Run(model, PipelineStrategy::kOooPipe2);
  result.SetMetrics("a.", a.metrics);
  result.SetMetrics("b.", b.metrics);
  result.SetMetrics("c.", c.metrics);
  result.Set("speedup_b", static_cast<double>(a.metrics.iteration_time) /
                              static_cast<double>(b.metrics.iteration_time));
  result.Set("speedup_c", static_cast<double>(a.metrics.iteration_time) /
                              static_cast<double>(c.metrics.iteration_time));

  // Unit-time mode: op = 1 unit, near-infinite link so the unit counts are
  // exactly the paper's figure makespans.
  PipelineConfig unit_config = config;
  unit_config.unit_time = Ms(1);
  unit_config.link_override = {"unit-ideal", 1e6, 0};
  const PipelineEngine unit_engine(unit_config);
  const double unit = static_cast<double>(unit_config.unit_time);
  const PipelineResult ua = unit_engine.Run(model, PipelineStrategy::kGPipe);
  const PipelineResult ub = unit_engine.Run(model, PipelineStrategy::kOooPipe1);
  const PipelineResult uc = unit_engine.Run(model, PipelineStrategy::kOooPipe2);
  result.Set("unit_a", static_cast<double>(ua.metrics.iteration_time) / unit);
  result.Set("unit_b", static_cast<double>(ub.metrics.iteration_time) / unit);
  result.Set("unit_c", static_cast<double>(uc.metrics.iteration_time) / unit);
  return result;
}

ScenarioResult Fig05MpUnit(const ScenarioParams&) { return PipeToy(1, 256); }
ScenarioResult Fig06PipeUnit(const ScenarioParams&) { return PipeToy(2, 128); }

// ---------------------------------------------------------------------------
// Figure 7: single-GPU training throughput vs XLA on a V100 — XLA, XLA+Opt1
// (pre-compiled issue), OOO-XLA (= +Opt2 multi-stream ooo), and Nimble.
// Split per model family so the runner can parallelize.

struct SingleGpuRow {
  double xla = 0, opt1 = 0, ooo = 0;
  std::optional<double> nimble;
  bool ooo_oom = false;
  TrainMetrics ooo_metrics;
};

SingleGpuRow RunSingleGpuConfig(const NnModel& model) {
  const TrainGraph graph(&model);
  const GpuSpec gpu = GpuSpec::V100();
  const SystemProfile xla = SystemProfile::TensorFlowXla();
  SingleGpuRow r;

  const IterationSchedule conventional = ConventionalIteration(graph);
  const TrainMetrics m_xla =
      SingleGpuEngine({gpu, xla, /*precompiled_issue=*/false})
          .Run(model, conventional);
  const TrainMetrics m_opt1 =
      SingleGpuEngine({gpu, xla, /*precompiled_issue=*/true})
          .Run(model, conventional);

  const JointScheduleResult sched = SnapshotOooSchedule(graph, gpu, xla);
  const TrainMetrics m_ooo =
      SingleGpuEngine({gpu, xla, /*precompiled_issue=*/true})
          .Run(model, sched.schedule);

  const TrainMetrics m_nimble =
      SingleGpuEngine({gpu, SystemProfile::PyTorchNimble(), true})
          .Run(model, conventional);

  r.xla = m_xla.oom ? 0 : m_xla.throughput;
  r.opt1 = m_opt1.oom ? 0 : m_opt1.throughput;
  r.ooo = m_ooo.oom ? 0 : m_ooo.throughput;
  r.ooo_oom = m_ooo.oom;
  r.ooo_metrics = m_ooo;
  if (!m_nimble.oom) {
    r.nimble = m_nimble.throughput;
  }
  return r;
}

ScenarioResult Fig07Model(
    const std::function<std::shared_ptr<const NnModel>(int)>& make,
    const std::string& label) {
  ScenarioResult result;
  result.AddNote(label + " on V100, batch 32 and 64");
  double max_gain = 0.0;
  for (int batch : {32, 64}) {
    const SingleGpuRow r = RunSingleGpuConfig(*make(batch));
    const std::string p = StrFormat("b%d.", batch);
    result.Set(p + "xla_throughput", r.xla);
    result.Set(p + "opt1_over_xla", r.xla > 0 ? r.opt1 / r.xla : 0);
    result.Set(p + "ooo_over_xla", r.xla > 0 ? r.ooo / r.xla : 0);
    result.Set(p + "nimble_over_xla",
               r.nimble.has_value() && r.xla > 0 ? *r.nimble / r.xla : 0);
    result.Set(p + "nimble_oom", r.nimble.has_value() ? 0 : 1);
    result.SetMetrics(p + "ooo.", r.ooo_metrics);
    max_gain = std::max(max_gain, r.xla > 0 ? r.ooo / r.xla : 0);
  }
  result.Set("max_ooo_over_xla", max_gain);
  return result;
}

// The maximum-speedup configurations the paper calls out separately, plus
// Nimble's memory behaviour at batch 64.
ScenarioResult Fig07MaxGain(const ScenarioParams&) {
  ScenarioResult result;
  const SingleGpuRow k12 =
      RunSingleGpuConfig(*CachedModel("densenet:L121:k12:B32:I32", [] {
        return DenseNet(121, 12, 32, 32);
      }));
  const SingleGpuRow a025 =
      RunSingleGpuConfig(*CachedModel("mobilenet:a0.25:B32:I224", [] {
        return MobileNetV3Large(0.25, 32);
      }));
  const SingleGpuRow nimble64 = RunSingleGpuConfig(
      *CachedModel("resnet:L101:B64", [] { return ResNet(101, 64); }));
  result.Set("densenet121_k12_b32_gain",
             k12.xla > 0 ? k12.ooo / k12.xla : 0);
  result.Set("mobilenet_a025_b32_gain",
             a025.xla > 0 ? a025.ooo / a025.xla : 0);
  result.Set("nimble_resnet101_b64_oom", nimble64.nimble.has_value() ? 0 : 1);
  return result;
}

// ---------------------------------------------------------------------------
// Figure 10: data-parallel scaling — Horovod / BytePS / OOO-BytePS (reverse
// first-k with concave k search) on the three clusters of Table 2. Split per
// cluster.

ScenarioResult Fig10Cluster(const ClusterSpec& cluster,
                            const std::vector<int>& gpu_counts, int batch50,
                            int batch101) {
  ScenarioResult result;
  result.AddNote(StrFormat("cluster %s, ResNet-50 batch %d / ResNet-101 "
                           "batch %d per GPU",
                           cluster.name.c_str(), batch50, batch101));
  double min_gain_16plus = 0.0, max_gain_16plus = 0.0;
  bool any_16plus = false;
  for (const int depth : {50, 101}) {
    const int batch = depth == 50 ? batch50 : batch101;
    const std::shared_ptr<const NnModel> model_ptr =
        CachedModel(StrFormat("resnet:L%d:B%d", depth, batch),
                    [depth, batch] { return ResNet(depth, batch); });
    const NnModel& model = *model_ptr;
    const TrainGraph graph(&model);
    for (int gpus : gpu_counts) {
      DataParallelConfig config;
      config.cluster = cluster;
      config.num_gpus = gpus;

      config.scheme = CommScheme::kHorovod;
      const double hvd = DataParallelEngine(config)
                             .Run(model, graph.ConventionalBackprop())
                             .throughput;
      config.scheme = CommScheme::kBytePS;
      const DataParallelEngine byteps(config);
      const double bps =
          byteps.Run(model, graph.ConventionalBackprop()).throughput;
      const KSearchResult search =
          SearchBestK(model.num_layers(), [&](int k) {
            return byteps.Run(model, ReverseFirstK(graph, k).order).throughput;
          });
      const double ooo = search.best_throughput;
      const double gain = bps > 0 ? ooo / bps : 0;

      const std::string p = StrFormat("r%d.g%d.", depth, gpus);
      result.Set(p + "horovod_throughput", hvd);
      result.Set(p + "byteps_throughput", bps);
      result.Set(p + "ooo_throughput", ooo);
      result.Set(p + "best_k", search.best_k);
      result.Set(p + "gain", gain);
      if (gpus >= 16) {
        min_gain_16plus =
            any_16plus ? std::min(min_gain_16plus, gain) : gain;
        max_gain_16plus =
            any_16plus ? std::max(max_gain_16plus, gain) : gain;
        any_16plus = true;
      }
    }
  }
  if (any_16plus) {
    result.Set("min_gain_16plus", min_gain_16plus);
    result.Set("max_gain_16plus", max_gain_16plus);
  }
  return result;
}

}  // namespace

void RegisterPaperScenarios() {
  static std::once_flag once;
  std::call_once(once, [] {
    ScenarioRegistry& reg = ScenarioRegistry::Global();
    reg.Register(
        {"fig04_dp_unit", "Figure 4",
         "data-parallel schedules on a uniform toy model (+ unit-time mode)",
         Fig04DpUnit});
    reg.Register({"fig05_mp_unit", "Figure 5",
                  "cross-layer model parallelism, 8 layers / 2 GPUs "
                  "(23/19/16 unit times)",
                  Fig05MpUnit});
    reg.Register({"fig06_pipe_unit", "Figure 6",
                  "pipeline parallelism with 2 micro-batches (+ unit-time "
                  "mode)",
                  Fig06PipeUnit});

    struct Fig07Entry {
      const char* name;
      const char* label;
      std::shared_ptr<const NnModel> (*make)(int);
    };
    // Cache keys follow the sweep/steady conventions so a batch-32 fig07
    // model and its steady_* twin share one zoo (and one snapshot) entry.
    const std::vector<Fig07Entry> fig07 = {
        {"fig07_densenet121", "DenseNet-121(k24)",
         [](int b) {
           return CachedModel(StrFormat("densenet:L121:k24:B%d:I32", b),
                              [b] { return DenseNet(121, 24, b, 32); });
         }},
        {"fig07_densenet169", "DenseNet-169(k32)",
         [](int b) {
           return CachedModel(StrFormat("densenet:L169:k32:B%d:I32", b),
                              [b] { return DenseNet(169, 32, b, 32); });
         }},
        {"fig07_mobilenet", "MobileNetV3(a.75)",
         [](int b) {
           return CachedModel(StrFormat("mobilenet:a0.75:B%d:I224", b),
                              [b] { return MobileNetV3Large(0.75, b, 224); });
         }},
        {"fig07_resnet50", "ResNet-50",
         [](int b) {
           return CachedModel(StrFormat("resnet:L50:B%d", b),
                              [b] { return ResNet(50, b, 224); });
         }},
        {"fig07_resnet101", "ResNet-101",
         [](int b) {
           return CachedModel(StrFormat("resnet:L101:B%d", b),
                              [b] { return ResNet(101, b, 224); });
         }},
    };
    for (const Fig07Entry& e : fig07) {
      const std::string label = e.label;
      auto make = e.make;
      reg.Register({e.name, "Figure 7",
                    StrFormat("single-GPU throughput vs XLA: %s", e.label),
                    [make, label](const ScenarioParams&) {
                      return Fig07Model(make, label);
                    }});
    }
    reg.Register({"fig07_max_gain", "Figure 7",
                  "maximum-speedup configs (DenseNet k=12, MobileNet a=0.25) "
                  "and Nimble OOM",
                  Fig07MaxGain});

    reg.Register({"fig10_priva", "Figure 10",
                  "data-parallel scaling on Priv-A (8x Titan XP, PCIe+10GbE)",
                  [](const ScenarioParams&) {
                    return Fig10Cluster(ClusterSpec::PrivA(), {1, 2, 4, 8}, 64,
                                        64);
                  }});
    reg.Register({"fig10_privb", "Figure 10",
                  "data-parallel scaling on Priv-B (20x P100, PCIe+20GbE)",
                  [](const ScenarioParams&) {
                    return Fig10Cluster(ClusterSpec::PrivB(), {1, 4, 8, 16, 20},
                                        64, 64);
                  }});
    reg.Register({"fig10_puba", "Figure 10",
                  "data-parallel scaling on Pub-A (48x V100, NVLink+10GbE)",
                  [](const ScenarioParams&) {
                    return Fig10Cluster(ClusterSpec::PubA(),
                                        {1, 4, 8, 16, 32, 48}, 128, 96);
                  }});
  });
}

}  // namespace oobp
