# Empty dependencies file for bert_pipeline.
# This may be replaced when dependencies are built.
