file(REMOVE_RECURSE
  "CMakeFiles/bert_pipeline.dir/bert_pipeline.cc.o"
  "CMakeFiles/bert_pipeline.dir/bert_pipeline.cc.o.d"
  "bert_pipeline"
  "bert_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
