file(REMOVE_RECURSE
  "CMakeFiles/resnet_data_parallel.dir/resnet_data_parallel.cc.o"
  "CMakeFiles/resnet_data_parallel.dir/resnet_data_parallel.cc.o.d"
  "resnet_data_parallel"
  "resnet_data_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_data_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
