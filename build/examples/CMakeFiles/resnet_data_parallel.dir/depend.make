# Empty dependencies file for resnet_data_parallel.
# This may be replaced when dependencies are built.
