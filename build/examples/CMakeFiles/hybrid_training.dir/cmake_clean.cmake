file(REMOVE_RECURSE
  "CMakeFiles/hybrid_training.dir/hybrid_training.cc.o"
  "CMakeFiles/hybrid_training.dir/hybrid_training.cc.o.d"
  "hybrid_training"
  "hybrid_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
