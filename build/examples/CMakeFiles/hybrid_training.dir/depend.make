# Empty dependencies file for hybrid_training.
# This may be replaced when dependencies are built.
