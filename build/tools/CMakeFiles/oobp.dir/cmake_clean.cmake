file(REMOVE_RECURSE
  "CMakeFiles/oobp.dir/oobp_sim.cc.o"
  "CMakeFiles/oobp.dir/oobp_sim.cc.o.d"
  "oobp"
  "oobp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oobp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
