# Empty compiler generated dependencies file for oobp.
# This may be replaced when dependencies are built.
