file(REMOVE_RECURSE
  "CMakeFiles/model_zoo_test.dir/model_zoo_test.cc.o"
  "CMakeFiles/model_zoo_test.dir/model_zoo_test.cc.o.d"
  "model_zoo_test"
  "model_zoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
