# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for megatron_strategy_test.
