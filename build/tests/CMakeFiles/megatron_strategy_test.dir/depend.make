# Empty dependencies file for megatron_strategy_test.
# This may be replaced when dependencies are built.
