file(REMOVE_RECURSE
  "CMakeFiles/megatron_strategy_test.dir/megatron_strategy_test.cc.o"
  "CMakeFiles/megatron_strategy_test.dir/megatron_strategy_test.cc.o.d"
  "megatron_strategy_test"
  "megatron_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megatron_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
