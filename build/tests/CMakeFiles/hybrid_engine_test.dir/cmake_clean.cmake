file(REMOVE_RECURSE
  "CMakeFiles/hybrid_engine_test.dir/hybrid_engine_test.cc.o"
  "CMakeFiles/hybrid_engine_test.dir/hybrid_engine_test.cc.o.d"
  "hybrid_engine_test"
  "hybrid_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
