# Empty dependencies file for hybrid_engine_test.
# This may be replaced when dependencies are built.
