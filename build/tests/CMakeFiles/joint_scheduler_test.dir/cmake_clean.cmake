file(REMOVE_RECURSE
  "CMakeFiles/joint_scheduler_test.dir/joint_scheduler_test.cc.o"
  "CMakeFiles/joint_scheduler_test.dir/joint_scheduler_test.cc.o.d"
  "joint_scheduler_test"
  "joint_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joint_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
