# Empty dependencies file for joint_scheduler_test.
# This may be replaced when dependencies are built.
