# Empty dependencies file for reverse_k_test.
# This may be replaced when dependencies are built.
