file(REMOVE_RECURSE
  "CMakeFiles/reverse_k_test.dir/reverse_k_test.cc.o"
  "CMakeFiles/reverse_k_test.dir/reverse_k_test.cc.o.d"
  "reverse_k_test"
  "reverse_k_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
