file(REMOVE_RECURSE
  "CMakeFiles/link_test.dir/link_test.cc.o"
  "CMakeFiles/link_test.dir/link_test.cc.o.d"
  "link_test"
  "link_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
