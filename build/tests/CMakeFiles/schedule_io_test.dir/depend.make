# Empty dependencies file for schedule_io_test.
# This may be replaced when dependencies are built.
