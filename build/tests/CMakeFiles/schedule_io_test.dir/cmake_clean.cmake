file(REMOVE_RECURSE
  "CMakeFiles/schedule_io_test.dir/schedule_io_test.cc.o"
  "CMakeFiles/schedule_io_test.dir/schedule_io_test.cc.o.d"
  "schedule_io_test"
  "schedule_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
