# Empty compiler generated dependencies file for train_graph_test.
# This may be replaced when dependencies are built.
