file(REMOVE_RECURSE
  "CMakeFiles/train_graph_test.dir/train_graph_test.cc.o"
  "CMakeFiles/train_graph_test.dir/train_graph_test.cc.o.d"
  "train_graph_test"
  "train_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
