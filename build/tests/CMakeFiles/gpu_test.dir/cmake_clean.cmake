file(REMOVE_RECURSE
  "CMakeFiles/gpu_test.dir/gpu_test.cc.o"
  "CMakeFiles/gpu_test.dir/gpu_test.cc.o.d"
  "gpu_test"
  "gpu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
