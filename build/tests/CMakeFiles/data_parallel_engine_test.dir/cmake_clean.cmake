file(REMOVE_RECURSE
  "CMakeFiles/data_parallel_engine_test.dir/data_parallel_engine_test.cc.o"
  "CMakeFiles/data_parallel_engine_test.dir/data_parallel_engine_test.cc.o.d"
  "data_parallel_engine_test"
  "data_parallel_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_parallel_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
