# Empty compiler generated dependencies file for data_parallel_engine_test.
# This may be replaced when dependencies are built.
