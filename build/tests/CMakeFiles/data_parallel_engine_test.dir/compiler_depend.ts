# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for data_parallel_engine_test.
