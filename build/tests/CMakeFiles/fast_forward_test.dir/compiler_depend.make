# Empty compiler generated dependencies file for fast_forward_test.
# This may be replaced when dependencies are built.
