file(REMOVE_RECURSE
  "CMakeFiles/fast_forward_test.dir/fast_forward_test.cc.o"
  "CMakeFiles/fast_forward_test.dir/fast_forward_test.cc.o.d"
  "fast_forward_test"
  "fast_forward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_forward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
