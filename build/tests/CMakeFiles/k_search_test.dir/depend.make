# Empty dependencies file for k_search_test.
# This may be replaced when dependencies are built.
