file(REMOVE_RECURSE
  "CMakeFiles/k_search_test.dir/k_search_test.cc.o"
  "CMakeFiles/k_search_test.dir/k_search_test.cc.o.d"
  "k_search_test"
  "k_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
