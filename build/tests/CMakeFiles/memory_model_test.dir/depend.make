# Empty dependencies file for memory_model_test.
# This may be replaced when dependencies are built.
