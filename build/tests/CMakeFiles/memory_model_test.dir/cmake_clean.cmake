file(REMOVE_RECURSE
  "CMakeFiles/memory_model_test.dir/memory_model_test.cc.o"
  "CMakeFiles/memory_model_test.dir/memory_model_test.cc.o.d"
  "memory_model_test"
  "memory_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
