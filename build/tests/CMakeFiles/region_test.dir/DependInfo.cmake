
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/region_test.cc" "tests/CMakeFiles/region_test.dir/region_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/oobp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/oobp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/oobp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/oobp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oobp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oobp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oobp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
