file(REMOVE_RECURSE
  "CMakeFiles/pipeline_engine_test.dir/pipeline_engine_test.cc.o"
  "CMakeFiles/pipeline_engine_test.dir/pipeline_engine_test.cc.o.d"
  "pipeline_engine_test"
  "pipeline_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
