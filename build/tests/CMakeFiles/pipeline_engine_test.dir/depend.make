# Empty dependencies file for pipeline_engine_test.
# This may be replaced when dependencies are built.
