# Empty dependencies file for list_dp_scheduler_test.
# This may be replaced when dependencies are built.
