file(REMOVE_RECURSE
  "CMakeFiles/list_dp_scheduler_test.dir/list_dp_scheduler_test.cc.o"
  "CMakeFiles/list_dp_scheduler_test.dir/list_dp_scheduler_test.cc.o.d"
  "list_dp_scheduler_test"
  "list_dp_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_dp_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
