file(REMOVE_RECURSE
  "CMakeFiles/corun_profiler_test.dir/corun_profiler_test.cc.o"
  "CMakeFiles/corun_profiler_test.dir/corun_profiler_test.cc.o.d"
  "corun_profiler_test"
  "corun_profiler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corun_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
