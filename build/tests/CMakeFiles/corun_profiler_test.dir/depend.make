# Empty dependencies file for corun_profiler_test.
# This may be replaced when dependencies are built.
