file(REMOVE_RECURSE
  "CMakeFiles/single_gpu_engine_test.dir/single_gpu_engine_test.cc.o"
  "CMakeFiles/single_gpu_engine_test.dir/single_gpu_engine_test.cc.o.d"
  "single_gpu_engine_test"
  "single_gpu_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_gpu_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
