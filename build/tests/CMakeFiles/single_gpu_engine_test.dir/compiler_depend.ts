# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for single_gpu_engine_test.
