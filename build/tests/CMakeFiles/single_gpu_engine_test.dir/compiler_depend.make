# Empty compiler generated dependencies file for single_gpu_engine_test.
# This may be replaced when dependencies are built.
