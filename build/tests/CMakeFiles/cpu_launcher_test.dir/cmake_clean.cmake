file(REMOVE_RECURSE
  "CMakeFiles/cpu_launcher_test.dir/cpu_launcher_test.cc.o"
  "CMakeFiles/cpu_launcher_test.dir/cpu_launcher_test.cc.o.d"
  "cpu_launcher_test"
  "cpu_launcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_launcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
