# Empty dependencies file for cpu_launcher_test.
# This may be replaced when dependencies are built.
