file(REMOVE_RECURSE
  "CMakeFiles/recompute_test.dir/recompute_test.cc.o"
  "CMakeFiles/recompute_test.dir/recompute_test.cc.o.d"
  "recompute_test"
  "recompute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recompute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
