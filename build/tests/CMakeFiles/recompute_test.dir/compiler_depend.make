# Empty compiler generated dependencies file for recompute_test.
# This may be replaced when dependencies are built.
