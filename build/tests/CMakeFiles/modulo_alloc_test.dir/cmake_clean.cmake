file(REMOVE_RECURSE
  "CMakeFiles/modulo_alloc_test.dir/modulo_alloc_test.cc.o"
  "CMakeFiles/modulo_alloc_test.dir/modulo_alloc_test.cc.o.d"
  "modulo_alloc_test"
  "modulo_alloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modulo_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
