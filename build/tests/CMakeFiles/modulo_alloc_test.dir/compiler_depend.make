# Empty compiler generated dependencies file for modulo_alloc_test.
# This may be replaced when dependencies are built.
