file(REMOVE_RECURSE
  "CMakeFiles/fig10_data_parallel.dir/fig10_data_parallel.cc.o"
  "CMakeFiles/fig10_data_parallel.dir/fig10_data_parallel.cc.o.d"
  "fig10_data_parallel"
  "fig10_data_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_data_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
