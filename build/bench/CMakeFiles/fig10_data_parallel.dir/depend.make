# Empty dependencies file for fig10_data_parallel.
# This may be replaced when dependencies are built.
