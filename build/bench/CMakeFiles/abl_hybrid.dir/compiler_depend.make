# Empty compiler generated dependencies file for abl_hybrid.
# This may be replaced when dependencies are built.
