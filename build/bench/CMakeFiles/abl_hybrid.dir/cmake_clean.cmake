file(REMOVE_RECURSE
  "CMakeFiles/abl_hybrid.dir/abl_hybrid.cc.o"
  "CMakeFiles/abl_hybrid.dir/abl_hybrid.cc.o.d"
  "abl_hybrid"
  "abl_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
