file(REMOVE_RECURSE
  "CMakeFiles/ana_corun.dir/ana_corun.cc.o"
  "CMakeFiles/ana_corun.dir/ana_corun.cc.o.d"
  "ana_corun"
  "ana_corun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ana_corun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
