# Empty dependencies file for ana_corun.
# This may be replaced when dependencies are built.
