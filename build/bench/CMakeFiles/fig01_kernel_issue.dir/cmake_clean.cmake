file(REMOVE_RECURSE
  "CMakeFiles/fig01_kernel_issue.dir/fig01_kernel_issue.cc.o"
  "CMakeFiles/fig01_kernel_issue.dir/fig01_kernel_issue.cc.o.d"
  "fig01_kernel_issue"
  "fig01_kernel_issue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_kernel_issue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
