# Empty compiler generated dependencies file for fig01_kernel_issue.
# This may be replaced when dependencies are built.
