# Empty dependencies file for fig11b_interconnect.
# This may be replaced when dependencies are built.
