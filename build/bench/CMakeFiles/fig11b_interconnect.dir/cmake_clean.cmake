file(REMOVE_RECURSE
  "CMakeFiles/fig11b_interconnect.dir/fig11b_interconnect.cc.o"
  "CMakeFiles/fig11b_interconnect.dir/fig11b_interconnect.cc.o.d"
  "fig11b_interconnect"
  "fig11b_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
