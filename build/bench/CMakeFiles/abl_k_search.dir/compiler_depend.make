# Empty compiler generated dependencies file for abl_k_search.
# This may be replaced when dependencies are built.
