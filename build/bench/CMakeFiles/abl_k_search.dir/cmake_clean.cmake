file(REMOVE_RECURSE
  "CMakeFiles/abl_k_search.dir/abl_k_search.cc.o"
  "CMakeFiles/abl_k_search.dir/abl_k_search.cc.o.d"
  "abl_k_search"
  "abl_k_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_k_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
