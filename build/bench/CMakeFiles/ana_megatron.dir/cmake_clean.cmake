file(REMOVE_RECURSE
  "CMakeFiles/ana_megatron.dir/ana_megatron.cc.o"
  "CMakeFiles/ana_megatron.dir/ana_megatron.cc.o.d"
  "ana_megatron"
  "ana_megatron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ana_megatron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
