# Empty compiler generated dependencies file for ana_megatron.
# This may be replaced when dependencies are built.
