file(REMOVE_RECURSE
  "CMakeFiles/fig06_pipe_unit.dir/fig06_pipe_unit.cc.o"
  "CMakeFiles/fig06_pipe_unit.dir/fig06_pipe_unit.cc.o.d"
  "fig06_pipe_unit"
  "fig06_pipe_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pipe_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
