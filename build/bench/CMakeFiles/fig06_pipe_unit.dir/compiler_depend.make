# Empty compiler generated dependencies file for fig06_pipe_unit.
# This may be replaced when dependencies are built.
