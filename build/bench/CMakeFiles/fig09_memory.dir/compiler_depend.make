# Empty compiler generated dependencies file for fig09_memory.
# This may be replaced when dependencies are built.
