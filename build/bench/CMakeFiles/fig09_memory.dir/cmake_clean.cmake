file(REMOVE_RECURSE
  "CMakeFiles/fig09_memory.dir/fig09_memory.cc.o"
  "CMakeFiles/fig09_memory.dir/fig09_memory.cc.o.d"
  "fig09_memory"
  "fig09_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
