file(REMOVE_RECURSE
  "CMakeFiles/abl_list_scheduling.dir/abl_list_scheduling.cc.o"
  "CMakeFiles/abl_list_scheduling.dir/abl_list_scheduling.cc.o.d"
  "abl_list_scheduling"
  "abl_list_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_list_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
