# Empty compiler generated dependencies file for abl_list_scheduling.
# This may be replaced when dependencies are built.
