# Empty dependencies file for abl_joint_vs_naive.
# This may be replaced when dependencies are built.
