file(REMOVE_RECURSE
  "CMakeFiles/abl_joint_vs_naive.dir/abl_joint_vs_naive.cc.o"
  "CMakeFiles/abl_joint_vs_naive.dir/abl_joint_vs_naive.cc.o.d"
  "abl_joint_vs_naive"
  "abl_joint_vs_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_joint_vs_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
