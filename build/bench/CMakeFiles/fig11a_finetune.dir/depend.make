# Empty dependencies file for fig11a_finetune.
# This may be replaced when dependencies are built.
