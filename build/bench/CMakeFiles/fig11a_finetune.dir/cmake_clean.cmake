file(REMOVE_RECURSE
  "CMakeFiles/fig11a_finetune.dir/fig11a_finetune.cc.o"
  "CMakeFiles/fig11a_finetune.dir/fig11a_finetune.cc.o.d"
  "fig11a_finetune"
  "fig11a_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
