# Empty compiler generated dependencies file for abl_modulo_granularity.
# This may be replaced when dependencies are built.
