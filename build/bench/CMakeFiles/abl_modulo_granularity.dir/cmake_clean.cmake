file(REMOVE_RECURSE
  "CMakeFiles/abl_modulo_granularity.dir/abl_modulo_granularity.cc.o"
  "CMakeFiles/abl_modulo_granularity.dir/abl_modulo_granularity.cc.o.d"
  "abl_modulo_granularity"
  "abl_modulo_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_modulo_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
