# Empty dependencies file for fig05_mp_unit.
# This may be replaced when dependencies are built.
