file(REMOVE_RECURSE
  "CMakeFiles/fig05_mp_unit.dir/fig05_mp_unit.cc.o"
  "CMakeFiles/fig05_mp_unit.dir/fig05_mp_unit.cc.o.d"
  "fig05_mp_unit"
  "fig05_mp_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_mp_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
