# Empty compiler generated dependencies file for fig08_regions.
# This may be replaced when dependencies are built.
