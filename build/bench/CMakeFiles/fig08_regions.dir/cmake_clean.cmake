file(REMOVE_RECURSE
  "CMakeFiles/fig08_regions.dir/fig08_regions.cc.o"
  "CMakeFiles/fig08_regions.dir/fig08_regions.cc.o.d"
  "fig08_regions"
  "fig08_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
