# Empty dependencies file for fig13_scaling.
# This may be replaced when dependencies are built.
