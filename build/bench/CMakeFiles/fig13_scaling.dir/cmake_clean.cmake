file(REMOVE_RECURSE
  "CMakeFiles/fig13_scaling.dir/fig13_scaling.cc.o"
  "CMakeFiles/fig13_scaling.dir/fig13_scaling.cc.o.d"
  "fig13_scaling"
  "fig13_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
