# Empty dependencies file for fig04_dp_unit.
# This may be replaced when dependencies are built.
