file(REMOVE_RECURSE
  "CMakeFiles/fig04_dp_unit.dir/fig04_dp_unit.cc.o"
  "CMakeFiles/fig04_dp_unit.dir/fig04_dp_unit.cc.o.d"
  "fig04_dp_unit"
  "fig04_dp_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_dp_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
