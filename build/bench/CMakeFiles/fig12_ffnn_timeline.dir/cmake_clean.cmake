file(REMOVE_RECURSE
  "CMakeFiles/fig12_ffnn_timeline.dir/fig12_ffnn_timeline.cc.o"
  "CMakeFiles/fig12_ffnn_timeline.dir/fig12_ffnn_timeline.cc.o.d"
  "fig12_ffnn_timeline"
  "fig12_ffnn_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ffnn_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
