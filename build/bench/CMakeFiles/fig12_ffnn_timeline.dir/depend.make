# Empty dependencies file for fig12_ffnn_timeline.
# This may be replaced when dependencies are built.
