# Empty dependencies file for ana_reverse_k.
# This may be replaced when dependencies are built.
