file(REMOVE_RECURSE
  "CMakeFiles/ana_reverse_k.dir/ana_reverse_k.cc.o"
  "CMakeFiles/ana_reverse_k.dir/ana_reverse_k.cc.o.d"
  "ana_reverse_k"
  "ana_reverse_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ana_reverse_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
