file(REMOVE_RECURSE
  "CMakeFiles/fig07_single_gpu.dir/fig07_single_gpu.cc.o"
  "CMakeFiles/fig07_single_gpu.dir/fig07_single_gpu.cc.o.d"
  "fig07_single_gpu"
  "fig07_single_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_single_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
