# Empty compiler generated dependencies file for fig07_single_gpu.
# This may be replaced when dependencies are built.
