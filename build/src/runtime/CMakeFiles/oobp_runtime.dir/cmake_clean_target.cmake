file(REMOVE_RECURSE
  "liboobp_runtime.a"
)
