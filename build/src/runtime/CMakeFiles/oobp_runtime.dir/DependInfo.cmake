
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/data_parallel_engine.cc" "src/runtime/CMakeFiles/oobp_runtime.dir/data_parallel_engine.cc.o" "gcc" "src/runtime/CMakeFiles/oobp_runtime.dir/data_parallel_engine.cc.o.d"
  "/root/repo/src/runtime/hybrid_engine.cc" "src/runtime/CMakeFiles/oobp_runtime.dir/hybrid_engine.cc.o" "gcc" "src/runtime/CMakeFiles/oobp_runtime.dir/hybrid_engine.cc.o.d"
  "/root/repo/src/runtime/pipeline_engine.cc" "src/runtime/CMakeFiles/oobp_runtime.dir/pipeline_engine.cc.o" "gcc" "src/runtime/CMakeFiles/oobp_runtime.dir/pipeline_engine.cc.o.d"
  "/root/repo/src/runtime/single_gpu_engine.cc" "src/runtime/CMakeFiles/oobp_runtime.dir/single_gpu_engine.cc.o" "gcc" "src/runtime/CMakeFiles/oobp_runtime.dir/single_gpu_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oobp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/oobp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/oobp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oobp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oobp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oobp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
