file(REMOVE_RECURSE
  "CMakeFiles/oobp_runtime.dir/data_parallel_engine.cc.o"
  "CMakeFiles/oobp_runtime.dir/data_parallel_engine.cc.o.d"
  "CMakeFiles/oobp_runtime.dir/hybrid_engine.cc.o"
  "CMakeFiles/oobp_runtime.dir/hybrid_engine.cc.o.d"
  "CMakeFiles/oobp_runtime.dir/pipeline_engine.cc.o"
  "CMakeFiles/oobp_runtime.dir/pipeline_engine.cc.o.d"
  "CMakeFiles/oobp_runtime.dir/single_gpu_engine.cc.o"
  "CMakeFiles/oobp_runtime.dir/single_gpu_engine.cc.o.d"
  "liboobp_runtime.a"
  "liboobp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oobp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
