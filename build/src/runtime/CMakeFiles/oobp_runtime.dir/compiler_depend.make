# Empty compiler generated dependencies file for oobp_runtime.
# This may be replaced when dependencies are built.
