
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/cost_model.cc" "src/nn/CMakeFiles/oobp_nn.dir/cost_model.cc.o" "gcc" "src/nn/CMakeFiles/oobp_nn.dir/cost_model.cc.o.d"
  "/root/repo/src/nn/densenet.cc" "src/nn/CMakeFiles/oobp_nn.dir/densenet.cc.o" "gcc" "src/nn/CMakeFiles/oobp_nn.dir/densenet.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/oobp_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/oobp_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/layer_builder.cc" "src/nn/CMakeFiles/oobp_nn.dir/layer_builder.cc.o" "gcc" "src/nn/CMakeFiles/oobp_nn.dir/layer_builder.cc.o.d"
  "/root/repo/src/nn/mobilenet.cc" "src/nn/CMakeFiles/oobp_nn.dir/mobilenet.cc.o" "gcc" "src/nn/CMakeFiles/oobp_nn.dir/mobilenet.cc.o.d"
  "/root/repo/src/nn/resnet.cc" "src/nn/CMakeFiles/oobp_nn.dir/resnet.cc.o" "gcc" "src/nn/CMakeFiles/oobp_nn.dir/resnet.cc.o.d"
  "/root/repo/src/nn/rnn_ffnn.cc" "src/nn/CMakeFiles/oobp_nn.dir/rnn_ffnn.cc.o" "gcc" "src/nn/CMakeFiles/oobp_nn.dir/rnn_ffnn.cc.o.d"
  "/root/repo/src/nn/train_graph.cc" "src/nn/CMakeFiles/oobp_nn.dir/train_graph.cc.o" "gcc" "src/nn/CMakeFiles/oobp_nn.dir/train_graph.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/nn/CMakeFiles/oobp_nn.dir/transformer.cc.o" "gcc" "src/nn/CMakeFiles/oobp_nn.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oobp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/oobp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oobp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oobp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
