file(REMOVE_RECURSE
  "liboobp_nn.a"
)
