file(REMOVE_RECURSE
  "CMakeFiles/oobp_nn.dir/cost_model.cc.o"
  "CMakeFiles/oobp_nn.dir/cost_model.cc.o.d"
  "CMakeFiles/oobp_nn.dir/densenet.cc.o"
  "CMakeFiles/oobp_nn.dir/densenet.cc.o.d"
  "CMakeFiles/oobp_nn.dir/layer.cc.o"
  "CMakeFiles/oobp_nn.dir/layer.cc.o.d"
  "CMakeFiles/oobp_nn.dir/layer_builder.cc.o"
  "CMakeFiles/oobp_nn.dir/layer_builder.cc.o.d"
  "CMakeFiles/oobp_nn.dir/mobilenet.cc.o"
  "CMakeFiles/oobp_nn.dir/mobilenet.cc.o.d"
  "CMakeFiles/oobp_nn.dir/resnet.cc.o"
  "CMakeFiles/oobp_nn.dir/resnet.cc.o.d"
  "CMakeFiles/oobp_nn.dir/rnn_ffnn.cc.o"
  "CMakeFiles/oobp_nn.dir/rnn_ffnn.cc.o.d"
  "CMakeFiles/oobp_nn.dir/train_graph.cc.o"
  "CMakeFiles/oobp_nn.dir/train_graph.cc.o.d"
  "CMakeFiles/oobp_nn.dir/transformer.cc.o"
  "CMakeFiles/oobp_nn.dir/transformer.cc.o.d"
  "liboobp_nn.a"
  "liboobp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oobp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
