# Empty dependencies file for oobp_nn.
# This may be replaced when dependencies are built.
